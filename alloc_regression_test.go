package monge

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"monge/internal/core"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// BENCH_alloc.json (schema monge-allocs/v1) is the committed allocation
// baseline: steady-state and cold allocs/op for the gated benchmarks,
// plus hard AllocsPerRun budgets for the hot paths the scratch arenas
// were built for. The "gates" section is enforced here; the "benchmarks"
// section is reproduced (with tolerance) by the alloc-smoke CI job.
type allocBaseline struct {
	Schema     string          `json:"schema"`
	Benchmarks []allocBenchRow `json:"benchmarks"`
	Gates      []allocGate     `json:"gates"`
}

type allocBenchRow struct {
	Name                string `json:"name"`
	AllocsPerOp         int64  `json:"allocs_per_op"`
	BytesPerOp          int64  `json:"bytes_per_op"`
	CIAllocsPerOp       int64  `json:"ci_allocs_per_op"`
	BaselineAllocsPerOp int64  `json:"baseline_allocs_per_op"`
	BaselineBytesPerOp  int64  `json:"baseline_bytes_per_op"`
}

type allocGate struct {
	Name               string  `json:"name"`
	Runs               int     `json:"runs"`
	BudgetAllocsPerRun float64 `json:"budget_allocs_per_run"`
}

func loadAllocBaseline(t *testing.T) allocBaseline {
	t.Helper()
	raw, err := os.ReadFile("BENCH_alloc.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b allocBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_alloc.json: %v", err)
	}
	if b.Schema != "monge-allocs/v1" {
		t.Fatalf("BENCH_alloc.json schema %q, want monge-allocs/v1", b.Schema)
	}
	return b
}

// TestAllocationBudgets is the allocation-regression gate: after one
// warm-up run (which populates the workspace pools and machine arenas),
// the steady-state hot paths must stay within the budgets committed in
// BENCH_alloc.json. The budgets carry ~2x headroom over the measured
// steady state, so a failure here means a real regression — a hot path
// picked up a per-call make/append again — not measurement noise.
//
// testing.AllocsPerRun already performs one un-counted warm-up call of
// its own; the explicit warm-up before it exists so that the machine
// construction and first-touch arena growth are off the books for every
// probe, matching how the batched driver amortizes them in production.
func TestAllocationBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gates need full-size inputs")
	}
	base := loadAllocBaseline(t)
	gates := make(map[string]allocGate, len(base.Gates))
	for _, g := range base.Gates {
		gates[g.Name] = g
	}

	probes := map[string]func() func(){
		"smawk-rowminima-n512": func() func() {
			a := marray.RandomMonge(rand.New(rand.NewSource(20)), 512, 512)
			smawk.RowMinima(a) // warm the smawk workspace pool
			return func() { smawk.RowMinima(a) }
		},
		"staircase-rowminima-n512": func() func() {
			a := marray.RandomStaircaseMonge(rand.New(rand.NewSource(21)), 512, 512)
			smawk.StaircaseRowMinima(a)
			return func() { smawk.StaircaseRowMinima(a) }
		},
		"pram-rowminima-n256": func() func() {
			a := marray.RandomMonge(rand.New(rand.NewSource(22)), 256, 256)
			mach := pram.New(pram.CRCW, 256)
			mach.SetWorkers(1) // AllocsPerRun pins GOMAXPROCS(1); keep the probe serial
			core.RowMinima(mach, a)
			return func() { core.RowMinima(mach, a) }
		},
	}

	for name, setup := range probes {
		gate, ok := gates[name]
		if !ok {
			t.Fatalf("probe %q has no gate in BENCH_alloc.json", name)
		}
		t.Run(name, func(t *testing.T) {
			f := setup()
			got := testing.AllocsPerRun(gate.Runs, f)
			t.Logf("%s: %.1f allocs/run (budget %.0f)", name, got, gate.BudgetAllocsPerRun)
			if got > gate.BudgetAllocsPerRun {
				t.Errorf("%s allocates %.1f per run, budget %.0f (BENCH_alloc.json); a hot path regressed to per-call allocation",
					name, got, gate.BudgetAllocsPerRun)
			}
		})
	}
}
