package monge

// The complexity-regression harness: TestCheckBounds re-measures every
// row of Tables 1.1-1.3 on the simulated machines, asserts the measured
// time grows like the claimed bound (flat shape ratio across the size
// ladder), and exports the measurement as BENCH_monge.json.
// TestExperimentsGolden then machine-checks the tables committed in
// EXPERIMENTS.md against the same measurement, so the documentation can
// never drift silently from the code. Both tests share one measurement
// pass; both skip under fault injection, which inflates the charged
// counters by design.

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"monge/internal/checkbounds"
	"monge/internal/faults"
)

var (
	cbOnce   sync.Once
	cbReport checkbounds.Report
)

// measureTables runs the harness once per test binary. CHECKBOUNDS_MAXN
// caps the size ladders (the CI checkbounds job uses 256 to stay fast);
// unset or 0 measures every row in full.
func measureTables(t *testing.T) checkbounds.Report {
	t.Helper()
	if faults.Global().Enabled() {
		t.Skip("fault injection inflates charged counters; complexity harness needs a clean run")
	}
	cbOnce.Do(func() {
		maxN := 0
		if v := os.Getenv("CHECKBOUNDS_MAXN"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil {
				maxN = parsed
			}
		}
		cbReport = checkbounds.MeasureAll(maxN, checkbounds.Tolerance)
	})
	return cbReport
}

func TestCheckBounds(t *testing.T) {
	rep := measureTables(t)
	if len(rep.Rows) == 0 {
		t.Fatal("harness measured no rows")
	}
	for _, row := range rep.Rows {
		row := row
		t.Run("table"+row.Table+"/row"+strconv.Itoa(row.Row), func(t *testing.T) {
			if len(row.Points) == 0 {
				t.Fatalf("%s (%s): no ladder points measured", row.Model, row.Claim)
			}
			for _, p := range row.Points {
				t.Logf("n=%4d  t=%6d  procs=%7d  work=%10d  t/bound=%.2f",
					p.N, p.Time, p.Procs, p.Work, p.Ratio)
				if p.Time <= 0 {
					t.Errorf("n=%d: nonpositive charged time %d", p.N, p.Time)
				}
			}
			if !row.Pass {
				t.Errorf("%s %s: shape ratio not flat: flatness %.2f exceeds tolerance %.2f — "+
					"measured growth no longer matches the claimed %s",
					row.Model, row.Name, row.Flatness, rep.Tolerance, row.Claim)
			}
		})
	}

	f, err := os.Create("BENCH_monge.json")
	if err != nil {
		t.Fatalf("creating BENCH_monge.json: %v", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		t.Fatalf("writing BENCH_monge.json: %v", err)
	}
	t.Logf("wrote BENCH_monge.json (%d rows, tolerance %.1f, max_n %d)",
		len(rep.Rows), rep.Tolerance, rep.MaxN)

	// CHECKBOUNDS_MD=<path> additionally exports the tables as markdown —
	// the regeneration path for the golden tables in EXPERIMENTS.md.
	if path := os.Getenv("CHECKBOUNDS_MD"); path != "" {
		md, err := os.Create(path)
		if err != nil {
			t.Fatalf("creating %s: %v", path, err)
		}
		defer md.Close()
		if err := checkbounds.RenderMarkdown(md, rep); err != nil {
			t.Fatalf("rendering markdown: %v", err)
		}
		t.Logf("wrote markdown tables to %s", path)
	}
}

// goldenTolerance is how far a fresh measurement may drift from a number
// documented in EXPERIMENTS.md before the golden test fails. Measurements
// are deterministic, so any nonzero drift means the algorithms' charged
// costs changed; 25% is the documented threshold at which the tables must
// be regenerated.
const goldenTolerance = 0.25

func TestExperimentsGolden(t *testing.T) {
	rep := measureTables(t)
	doc, err := os.Open("EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("opening EXPERIMENTS.md: %v", err)
	}
	defer doc.Close()
	golden, err := checkbounds.ParseExperiments(doc)
	if err != nil {
		t.Fatalf("parsing EXPERIMENTS.md: %v", err)
	}
	if len(golden) == 0 {
		t.Fatal("EXPERIMENTS.md documents no checkbounds tables; regenerate with: go test -run TestCheckBounds -v")
	}

	measured := make(map[string]checkbounds.Result)
	for _, r := range rep.Rows {
		measured[r.Table+"/"+strconv.Itoa(r.Row)] = r
	}
	checked := 0
	for _, g := range golden {
		key := g.Table + "/" + strconv.Itoa(g.Row)
		r, ok := measured[key]
		if !ok {
			t.Errorf("EXPERIMENTS.md documents table %s row %d, but the harness has no such spec", g.Table, g.Row)
			continue
		}
		if r.Model != g.Model {
			t.Errorf("table %s row %d: documented model %q, harness says %q", g.Table, g.Row, g.Model, r.Model)
		}
		byN := make(map[int]int64)
		for _, p := range r.Points {
			byN[p.N] = p.Time
		}
		for n, docT := range g.Times {
			gotT, ok := byN[n]
			if !ok {
				// Ladder capped by CHECKBOUNDS_MAXN; nothing to compare.
				continue
			}
			drift := float64(gotT-docT) / float64(docT)
			if drift < 0 {
				drift = -drift
			}
			if drift > goldenTolerance {
				t.Errorf("table %s row %d (%s) n=%d: measured t=%d, EXPERIMENTS.md documents %d (drift %.0f%% > %.0f%%) — "+
					"if the cost change is intentional, regenerate the tables (see EXPERIMENTS.md)",
					g.Table, g.Row, g.Model, n, gotT, docT, drift*100, goldenTolerance*100)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no documented (row, size) pairs overlapped the measurement; is CHECKBOUNDS_MAXN too small?")
	}
	t.Logf("checked %d documented measurements against the harness", checked)
}
