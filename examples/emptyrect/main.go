// Application 1: largest empty rectangle among random points, solved
// exactly by the classical O(n^2) scan and compared to the O(lg n)-step
// parallel boundary-anchored solver built on All Nearest Smaller Values.
package main

import (
	"fmt"
	"math/rand"

	"monge/internal/pram"
	"monge/internal/rect"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	bounds := rect.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	n := 40
	pts := make([]rect.Point, n)
	for i := range pts {
		pts[i] = rect.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}

	best := rect.LargestEmptyRect(pts, bounds)
	fmt.Printf("largest empty rectangle: [%.2f, %.2f] x [%.2f, %.2f], area %.2f\n",
		best.X0, best.X1, best.Y0, best.Y1, best.Area())

	mach := pram.New(pram.CRCW, n)
	anch := rect.LargestAnchoredRect(mach, pts, bounds)
	fmt.Printf("largest boundary-anchored rectangle: area %.2f (parallel time %d steps)\n",
		anch.Area(), mach.Time())
	if anch.Area() == best.Area() {
		fmt.Println("the anchored family realises the global optimum on this input")
	}
}
