// Quickstart: define a Monge array implicitly, search it sequentially with
// SMAWK, then run the same search on a simulated CRCW PRAM and read the
// charged parallel-time counters.
package main

import (
	"fmt"

	"monge"
)

func main() {
	// a[i][j] = (i - j)^2 + j is Monge: convex in (i - j) plus a column
	// offset. Entries are computed on demand -- nothing is materialized.
	n := 16
	a := monge.NewFunc(n, n, func(i, j int) float64 {
		d := float64(i - j)
		return d*d + float64(j)
	})
	fmt.Println("IsMonge:", monge.IsMonge(a))

	// Sequential: Theta(m+n) row minima via SMAWK. The error-returning
	// form screens the input with a cheap sampled Monge validator and
	// returns typed errors (monge.ErrNotMonge etc.); MustRowMinima skips
	// the screen for arrays that are Monge by construction.
	idx, err := monge.RowMinima(a)
	if err != nil {
		panic(err)
	}
	fmt.Println("sequential row minima (leftmost argmin per row):")
	for i, j := range idx {
		fmt.Printf("  row %2d -> col %2d (value %g)\n", i, j, a.At(i, j))
	}

	// Parallel: the same search on a simulated n-processor CRCW PRAM
	// (Table 1.1 of the paper: O(lg n) time).
	mach := monge.NewPRAM(monge.CRCW, n)
	pidx, err := monge.RowMinimaPRAM(mach, a)
	if err != nil {
		panic(err)
	}
	same := true
	for i := range idx {
		if idx[i] != pidx[i] {
			same = false
		}
	}
	fmt.Printf("\nCRCW PRAM agrees with SMAWK: %v\n", same)
	fmt.Printf("charged parallel time: %d steps with %d processors (work %d)\n",
		mach.Time(), mach.Procs(), mach.Work())
}
