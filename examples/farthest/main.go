// Figure 1.1 of the paper: split a convex polygon into two chains P and Q;
// the chain-to-chain distance array is inverse-Monge by the quadrangle
// inequality, so all-farthest neighbors take Theta(m+n) sequential time
// (instead of the obvious O(mn)) and O(lg n) simulated CRCW time.
package main

import (
	"fmt"
	"math/rand"

	"monge/internal/geom"
	"monge/internal/marray"
	"monge/internal/pram"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	m, n := 10, 12
	p, q := marray.ConvexChainPair(rng, m, n)

	fmt.Println("inverse-Monge distance array:",
		marray.IsInverseMonge(marray.ChainDistanceMatrix(p, q)))

	far := geom.AllFarthestNeighbors(p, q)
	fmt.Println("farthest vertex of Q for each vertex of P (SMAWK):")
	for i, j := range far {
		fmt.Printf("  p[%2d] -> q[%2d]  distance %.2f\n", i, j, marray.Dist(p[i], q[j]))
	}

	brute := geom.AllFarthestNeighborsBrute(p, q)
	agree := 0
	for i := range far {
		if far[i] == brute[i] {
			agree++
		}
	}
	fmt.Printf("agreement with brute force: %d/%d\n", agree, m)

	mach := pram.New(pram.CRCW, m+n)
	geom.AllFarthestNeighborsPRAM(mach, p, q)
	fmt.Printf("CRCW PRAM time: %d steps with %d processors\n", mach.Time(), mach.Procs())
}
