// Application 4: string editing through the grid-DAG Monge machinery,
// compared against Wagner-Fischer and the wavefront parallel baseline.
package main

import (
	"fmt"

	hc "monge/internal/hypercube"
	"monge/internal/pram"
	"monge/internal/stredit"
)

func main() {
	x, y := "kitten", "sitting"
	c := stredit.UnitCosts()

	d, ops := stredit.DistanceWithScript(x, y, c)
	fmt.Printf("edit distance %q -> %q: %g\n", x, y, d)
	for _, op := range ops {
		switch op.Kind {
		case "del":
			fmt.Printf("  delete %q\n", op.X)
		case "ins":
			fmt.Printf("  insert %q\n", op.Y)
		case "sub":
			fmt.Printf("  substitute %q -> %q\n", op.X, op.Y)
		default:
			fmt.Printf("  keep %q\n", op.X)
		}
	}

	m1 := pram.New(pram.CRCW, len(x)*len(y))
	dm := stredit.DistancePRAM(m1, x, y, c)
	m2 := pram.New(pram.CRCW, len(x)*len(y))
	dw := stredit.DistanceWavefront(m2, x, y, c)
	fmt.Printf("\nMonge grid-DAG engine: distance %g in %d parallel steps\n", dm, m1.Time())
	fmt.Printf("wavefront baseline:    distance %g in %d parallel steps\n", dw, m2.Time())

	dh, rep := stredit.DistanceHypercube(hc.Cube, x, y, c)
	fmt.Printf("hypercube engine:      distance %g in %d charged steps\n", dh, rep.Time)
}
