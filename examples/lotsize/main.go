// The economic lot-size model [AP90]: production planning with setup and
// holding costs is a least-weight subsequence problem over a Monge weight
// matrix, solved in O(n lg n) by the concave-LWS machinery.
package main

import (
	"fmt"
	"math/rand"

	"monge/internal/dp"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	n := 12
	demand := make([]float64, n)
	setup := make([]float64, n)
	hold := make([]float64, n)
	for t := 0; t < n; t++ {
		demand[t] = float64(5 + rng.Intn(30))
		setup[t] = float64(40 + rng.Intn(60))
		hold[t] = 0.5 + rng.Float64()
	}

	plan := dp.LotSize(demand, setup, hold)
	fmt.Printf("demands: %v\n", demand)
	fmt.Printf("optimal cost: %.2f\n", plan.Cost)
	fmt.Printf("production runs in periods: %v\n", plan.Orders)

	ref := dp.LotSizeBrute(demand, setup, hold)
	fmt.Printf("O(n^2) Wagner-Whitin reference agrees: %v (%.2f)\n",
		plan.Cost == ref.Cost, ref.Cost)
}
