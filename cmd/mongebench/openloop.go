package main

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"monge/internal/admit"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/obs"
	"monge/internal/pram"
	"monge/internal/serve"
	"monge/internal/smawk"
)

// latencySchema is the version tag of the -latency-out JSON.
const latencySchema = "monge-latency/v1"

// latencyPoint is one open-loop rung: queries fired at TargetQPS
// regardless of completions, through the pool's admission front.
type latencyPoint struct {
	Multiplier    float64 `json:"multiplier"`
	TargetQPS     float64 `json:"target_qps"`
	AchievedQPS   float64 `json:"achieved_qps"` // completed successes per second of the rung
	Sent          int     `json:"sent"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"`
	Deadline      int64   `json:"deadline_expired"`
	RejectionRate float64 `json:"rejection_rate"`
	P50us         int64   `json:"p50_us"`
	P95us         int64   `json:"p95_us"`
	P99us         int64   `json:"p99_us"`
}

// latencyLadder is the committed BENCH_latency.json document.
type latencyLadder struct {
	Schema          string  `json:"schema"`
	Backend         string  `json:"backend"`
	Workers         int     `json:"workers"`
	CPUs            int     `json:"cpus"`
	BaseQPS         float64 `json:"base_qps"`
	QueriesPerPoint int     `json:"queries_per_point"`
	// MaxLowLoadRejection is the acceptance cap the drift test and the
	// CI latency-smoke gate enforce on the 0.5x rung's rejection rate:
	// at half the calibrated rate the front must admit essentially
	// everything.
	MaxLowLoadRejection float64        `json:"max_low_load_rejection"`
	Points              []latencyPoint `json:"points"`
}

// openLoopExp drives the serving stack open-loop: requests fire at a
// fixed arrival rate whether or not earlier ones have completed, which
// is what exposes queueing latency and forces the admission front to
// shed — a closed loop self-throttles and can never overload itself.
// Three rungs run at 0.5x, 1x, and 2x of -qps (the 2x rung deliberately
// saturates), each firing -queries requests through an admission front
// with default fail-fast policy. Successful answers are checked
// index-for-index against the sequential facade; failures must be typed
// (ErrOverloaded / ErrDeadlineExceeded / ErrCanceled), anything else
// aborts the experiment.
func openLoopExp() {
	rng := rand.New(rand.NewSource(seed))
	n := min(maxN, 256)
	tubeN := min(n, 16)

	type prep struct {
		q    serve.Query
		idx  []int
		tubJ [][]int
	}
	var mix []prep
	for i := 0; i < 3; i++ {
		a := marray.RandomMonge(rng, n, n)
		mix = append(mix, prep{q: serve.Query{Kind: serve.RowMinima, A: a}, idx: smawk.RowMinima(a)})
	}
	s := marray.RandomStaircaseMonge(rng, n, n)
	mix = append(mix, prep{q: serve.Query{Kind: serve.StaircaseRowMinima, A: s}, idx: smawk.StaircaseRowMinima(s)})
	c := marray.RandomComposite(rng, tubeN, tubeN, tubeN)
	tj, _ := smawk.TubeMaxima(c)
	mix = append(mix, prep{q: serve.Query{Kind: serve.TubeMaxima, C: c}, tubJ: tj})

	pool := serve.New(pram.CRCW, serve.Options{Workers: workersN, Context: benchCtx, Backend: backendBE})
	defer pool.Close()
	front := admit.New(pool, &serve.Admission{})

	printf("\n== Open-loop serving latency: %d queries per rung, %d workers, %s backend, base %.0f qps ==\n",
		queriesN, pool.Workers(), backendBE, qpsLimit)
	printf("%6s %10s %10s %10s %10s %10s %9s %6s %6s\n",
		"mult", "target", "achieved", "p50", "p95", "p99", "rejected", "ddl", "match")

	ladder := latencyLadder{
		Schema:              latencySchema,
		Backend:             backendF,
		Workers:             pool.Workers(),
		CPUs:                runtime.NumCPU(),
		BaseQPS:             qpsLimit,
		QueriesPerPoint:     queriesN,
		MaxLowLoadRejection: 0.05,
	}

	baseCtx := benchCtx
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	for _, mult := range []float64{0.5, 1, 2} {
		target := qpsLimit * mult
		interval := time.Duration(float64(time.Second) / target)
		var (
			hist       obs.Hist
			ok         atomic.Int64
			rejected   atomic.Int64
			ddl        atomic.Int64
			mismatches atomic.Int64
			badErr     atomic.Pointer[error]
			wg         sync.WaitGroup
		)
		start := time.Now()
		for i := 0; i < queriesN; i++ {
			// Open loop: the i-th arrival is pinned to start + i*interval
			// no matter how the previous requests are doing.
			time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				want := mix[i%len(mix)]
				t0 := time.Now()
				res := front.Do(baseCtx, admit.Request{Query: want.q})
				lat := time.Since(t0)
				switch {
				case res.Err == nil:
					hist.Observe(lat)
					ok.Add(1)
					for r := range want.idx {
						if res.Idx[r] != want.idx[r] {
							mismatches.Add(1)
						}
					}
					for x := range want.tubJ {
						for k := range want.tubJ[x] {
							if res.TubeJ[x][k] != want.tubJ[x][k] {
								mismatches.Add(1)
							}
						}
					}
				case errors.Is(res.Err, serve.ErrOverloaded):
					rejected.Add(1)
				case errors.Is(res.Err, serve.ErrDeadlineExceeded), errors.Is(res.Err, merr.ErrCanceled):
					ddl.Add(1)
				default:
					e := res.Err
					badErr.Store(&e)
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if e := badErr.Load(); e != nil {
			merr.Throwf(merr.ErrNotMonge, "openloop: untyped serving error: %v", *e)
		}
		if m := mismatches.Load(); m > 0 {
			merr.Throwf(merr.ErrNotMonge, "openloop: %d index mismatches against the sequential facade", m)
		}
		pt := latencyPoint{
			Multiplier:  mult,
			TargetQPS:   target,
			AchievedQPS: float64(ok.Load()) / elapsed.Seconds(),
			Sent:        queriesN,
			OK:          ok.Load(),
			Rejected:    rejected.Load(),
			Deadline:    ddl.Load(),
			P50us:       hist.Quantile(0.50).Microseconds(),
			P95us:       hist.Quantile(0.95).Microseconds(),
			P99us:       hist.Quantile(0.99).Microseconds(),
		}
		pt.RejectionRate = float64(pt.Rejected) / float64(pt.Sent)
		ladder.Points = append(ladder.Points, pt)
		printf("%5.1fx %10.0f %10.0f %10v %10v %10v %8.1f%% %6d %6s\n",
			mult, target, pt.AchievedQPS,
			time.Duration(pt.P50us)*time.Microsecond,
			time.Duration(pt.P95us)*time.Microsecond,
			time.Duration(pt.P99us)*time.Microsecond,
			100*pt.RejectionRate, pt.Deadline, "ok")
	}
	front.Drain()

	if latOut != "" {
		if err := writeLatencyLadder(&ladder, latOut); err != nil {
			merr.Throwf(merr.ErrNotMonge, "openloop: writing -latency-out: %v", err)
		}
	}
}

// writeLatencyLadder dumps the ladder as indented JSON ("-" = stdout).
func writeLatencyLadder(l *latencyLadder, path string) error {
	buf, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = out.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
