package main

// The -index mode records the preprocessing-vs-query-latency tradeoff
// of the submatrix-maximum index (internal/mindex): for each ladder
// size it builds the index once, fires a batch of random submatrix
// queries, and compares their per-query latency against the cost of an
// uncached single SMAWK row-minima call on the same matrix — the price
// a caller would pay per query without the index. The ladder is written
// as BENCH_index.json (schema monge-index/v1) and gated by the root
// TestIndexBaseline.

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/mindex"
	"monge/internal/smawk"
)

// indexSchema is the version tag of the -index-out JSON.
const indexSchema = "monge-index/v1"

var (
	indexOn  bool
	indexOut string
)

// indexPoint is one ladder size: build cost, index footprint, and the
// per-query latency distribution against the uncached SMAWK baseline.
type indexPoint struct {
	N           int   `json:"n"`
	BuildNS     int64 `json:"build_ns"`
	IndexBytes  int64 `json:"index_bytes"`
	Breakpoints int   `json:"breakpoints"`
	Queries     int   `json:"queries"`
	QueryP50NS  int64 `json:"query_p50_ns"`
	QueryP95NS  int64 `json:"query_p95_ns"`
	// SmawkRowMinimaNS is the median of several uncached
	// smawk.RowMinima calls on the same matrix: the no-index cost of
	// one fresh query.
	SmawkRowMinimaNS int64   `json:"smawk_row_minima_ns"`
	SpeedupP95       float64 `json:"speedup_p95"`
}

// indexLadder is the committed BENCH_index.json document.
type indexLadder struct {
	Schema  string `json:"schema"`
	CPUs    int    `json:"cpus"`
	Seed    int64  `json:"seed"`
	Queries int    `json:"queries_per_point"`
	// MinSpeedupP95 is the acceptance gate TestIndexBaseline enforces on
	// the largest ladder size: the indexed p95 must beat the uncached
	// SMAWK call by at least this factor. Raised from 10 to 12 with the
	// two-phase deferred-cut query (PR 9) — the weakest of five fresh
	// 1-CPU recordings sustained 12.2x.
	MinSpeedupP95 float64      `json:"min_speedup_p95"`
	Points        []indexPoint `json:"points"`
}

// indexExp runs the fixed ladder n ∈ {256, 1024, 4096}; the answers of
// the timed queries are spot-checked against the SMAWK maxima reduction
// so the recorded latencies can only come from correct answers.
func indexExp() {
	rng := rand.New(rand.NewSource(seed))
	queries := queriesN
	if queries < 64 {
		queries = 64
	}
	ladder := indexLadder{
		Schema:        indexSchema,
		CPUs:          runtime.NumCPU(),
		Seed:          seed,
		Queries:       queries,
		MinSpeedupP95: 12,
	}

	printf("\n== Submatrix-maximum index: preprocessing vs per-query latency, %d queries per size ==\n", queries)
	printf("%6s %12s %12s %12s %10s %12s %10s\n",
		"n", "build", "bytes", "p50/query", "p95/query", "smawk/query", "speedup")

	for _, n := range []int{256, 1024, 4096} {
		a := marray.RandomMongeInt(rng, n, n, 8)

		t0 := time.Now()
		ix := mindex.Build(a, mindex.Opts{})
		buildNS := time.Since(t0).Nanoseconds()

		// Spot-check: the full-matrix query must agree with the SMAWK
		// Monge row-maxima reduction before any latency is recorded.
		full := ix.SubmatrixMax(0, n-1, 0, n-1)
		maxIdx := smawk.MongeRowMaxima(a)
		bestR := 0
		for r := 1; r < n; r++ {
			if a.At(r, maxIdx[r]) > a.At(bestR, maxIdx[bestR]) {
				bestR = r
			}
		}
		if want := a.At(bestR, maxIdx[bestR]); full.Val != want {
			merr.Throwf(merr.ErrNotMonge, "indexbench: n=%d full-matrix max %g, SMAWK says %g", n, full.Val, want)
		}

		lats := make([]int64, queries)
		for q := 0; q < queries; q++ {
			r1, c1 := rng.Intn(n), rng.Intn(n)
			r2, c2 := r1+rng.Intn(n-r1), c1+rng.Intn(n-c1)
			t0 := time.Now()
			pos := ix.SubmatrixMax(r1, r2, c1, c2)
			lats[q] = time.Since(t0).Nanoseconds()
			if pos.Row < r1 || pos.Row > r2 || pos.Col < c1 || pos.Col > c2 {
				merr.Throwf(merr.ErrNotMonge, "indexbench: n=%d answer (%d,%d) outside [%d:%d,%d:%d]",
					n, pos.Row, pos.Col, r1, r2, c1, c2)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

		// The no-index baseline: a fresh, uncached SMAWK row-minima pass
		// per query. Median of 5 runs.
		var smawkNS []int64
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			smawk.RowMinima(a)
			smawkNS = append(smawkNS, time.Since(t0).Nanoseconds())
		}
		sort.Slice(smawkNS, func(i, j int) bool { return smawkNS[i] < smawkNS[j] })

		pt := indexPoint{
			N:                n,
			BuildNS:          buildNS,
			IndexBytes:       ix.Bytes(),
			Breakpoints:      ix.Breakpoints(),
			Queries:          queries,
			QueryP50NS:       lats[queries/2],
			QueryP95NS:       lats[queries*95/100],
			SmawkRowMinimaNS: smawkNS[2],
		}
		pt.SpeedupP95 = float64(pt.SmawkRowMinimaNS) / float64(pt.QueryP95NS)
		ladder.Points = append(ladder.Points, pt)
		printf("%6d %12v %12d %12v %10v %12v %9.0fx\n",
			n, time.Duration(pt.BuildNS), pt.IndexBytes,
			time.Duration(pt.QueryP50NS), time.Duration(pt.QueryP95NS),
			time.Duration(pt.SmawkRowMinimaNS), pt.SpeedupP95)
	}

	if indexOut != "" {
		if err := writeIndexLadder(&ladder, indexOut); err != nil {
			merr.Throwf(merr.ErrNotMonge, "indexbench: writing -index-out: %v", err)
		}
	}
}

// writeIndexLadder dumps the ladder as indented JSON ("-" = stdout).
func writeIndexLadder(l *indexLadder, path string) error {
	buf, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = out.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
