// Command mongebench regenerates the paper's tables and application
// results on the simulated machines, printing measured parallel time,
// processor counts, and work next to the claimed asymptotic bounds.
//
// Usage:
//
//	mongebench [-exp all|t11|t12|t13|fig11|app1|app2|app3|app4] [-maxn 2048] [-seed 1]
//	           [-batch N] [-serve] [-workers W] [-qps Q] [-queries N]
//	           [-timeout 30s] [-faults 0.05] [-fault-seed 1]
//	           [-metrics] [-trace-out trace.json] [-profile cpu.pprof]
//
// With -batch N, the command runs N same-shape queries per ladder size
// through the batched query driver (internal/batch) instead of the -exp
// experiments: one retained machine per shape class answers the whole
// batch, and each row reports the amortized per-query wall time next to
// the fresh-machine-per-query baseline with an index-exactness check.
//
// With -serve, the command drives a synthetic mix of row-minima,
// staircase, and tube queries through the concurrent driver pool
// (internal/serve): -workers shards, optionally throttled to -qps
// submissions per second, -queries total. It reports achieved
// queries/sec, the per-shard query split and imbalance, and the
// tile-cache hit rate, and checks every answer index-for-index against
// the sequential facade. -faults and -timeout compose with it like with
// every other experiment.
//
// Each row reports the charged time of the simulated machine at a ladder
// of sizes plus the "shape ratio" time/bound(n), which should stay roughly
// flat when the measured growth matches the claimed bound. See
// EXPERIMENTS.md for the recorded runs and deviations.
//
// With -trace, every simulated machine (including the recursive child
// machines that ParallelDo and Subcubes create) reports per-step runtime
// counters to a shared collector, and the aggregate is written as JSON
// ("-" for stdout) when the experiments finish. The schema is documented
// in README.md under "Instrumentation".
//
// With -metrics, the observability layer (internal/obs) is installed
// process-wide and the per-site counters — charged supersteps/time/work,
// shared-memory reads/writes, write conflicts by mode, link messages and
// bytes, fault recoveries — are printed as a table when the experiments
// finish; the same snapshot is published as the expvar variable
// "monge_obs". With -trace-out, every charged superstep additionally
// records a wall-clock span and the run is exported in Chrome trace_event
// format (load the file at chrome://tracing or ui.perfetto.dev). With
// -profile, a CPU profile of the whole run is written via runtime/pprof.
// See EXPERIMENTS.md "Observability" for the metrics glossary.
//
// With -faults (a rate in (0, 0.9]), every simulated machine runs under
// the deterministic fault injector of internal/faults — transient chunk
// stalls, dropped/garbled link messages, superstep timeouts — seeded by
// -fault-seed; results are index-identical to a fault-free run and the
// delivered-fault counts are reported at the end. With -timeout, the run
// is cancelled at the deadline: machines stop at the next superstep
// boundary, the worker pool drains cleanly, and the command exits
// non-zero reporting the typed ErrCanceled condition. See README.md
// "Fault model & error contract".
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime/pprof"
	"time"

	"monge/internal/batch"
	"monge/internal/core"
	"monge/internal/exec"
	"monge/internal/faults"
	"monge/internal/geom"
	"monge/internal/hcmonge"
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/obs"
	"monge/internal/pram"
	"monge/internal/rect"
	"monge/internal/serve"
	"monge/internal/smawk"
	"monge/internal/stredit"
)

// The flag values and output writers are package state so the experiment
// functions stay terse; mainImpl re-initialises all of them per
// invocation, which keeps the command testable (cmd tests call mainImpl
// with their own argv and buffers).
var (
	expFlag   string
	maxN      int
	seed      int64
	batchN    int
	serveOn   bool
	openLoop  bool
	latOut    string
	backendF  string
	backendBE batch.Backend
	workersN  int
	qpsLimit  float64
	queriesN  int
	traceFlag string
	timeout   time.Duration
	faultRate float64
	faultSeed int64
	metricsOn bool
	traceOut  string
	profile   string

	out  io.Writer = os.Stdout
	errw io.Writer = os.Stderr
)

func printf(format string, a ...any) { fmt.Fprintf(out, format, a...) }

// benchCtx carries the -timeout deadline into every machine the
// experiments create; nil when no deadline is set.
var benchCtx context.Context

// newPRAM returns a PRAM wired to the run's context (the process-global
// fault injector is attached by pram.New itself).
func newPRAM(mode pram.Mode, procs int) *pram.Machine {
	m := pram.New(mode, procs)
	if benchCtx != nil {
		m.SetContext(benchCtx)
	}
	return m
}

// tuned wires a network machine to the run's context.
func tuned(m *hc.Machine) *hc.Machine {
	if benchCtx != nil {
		m.SetContext(benchCtx)
	}
	return m
}

func main() {
	os.Exit(mainImpl(os.Args[1:], os.Stdout, os.Stderr))
}

// mainImpl is the whole command behind a testable seam: it parses args,
// installs the process-wide instrumentation the flags ask for (restoring
// the previous state on return), runs the selected experiments against
// stdout/stderr, and returns the process exit code — 1 when a run aborts
// on a typed condition such as ErrCanceled at the -timeout deadline,
// 2 on usage errors.
func mainImpl(args []string, stdout, stderr io.Writer) (code int) {
	out, errw = stdout, stderr
	fs := flag.NewFlagSet("mongebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&expFlag, "exp", "all", "experiment: all, t11, t12, t13, fig11, app1, app2, app3, app4")
	fs.IntVar(&maxN, "maxn", 2048, "largest problem size in the ladder")
	fs.Int64Var(&seed, "seed", 1, "workload seed")
	fs.IntVar(&batchN, "batch", 0, "run N same-shape queries per ladder size through the batched driver (internal/batch) instead of the -exp experiments, comparing amortized cost against fresh machines")
	fs.BoolVar(&serveOn, "serve", false, "drive a synthetic query mix through the concurrent driver pool (internal/serve) instead of the -exp experiments, reporting throughput, shard balance, and cache traffic")
	fs.BoolVar(&openLoop, "openloop", false, "with -serve: open-loop latency mode — fire queries at fixed -qps rungs (0.5x, 1x, 2x) regardless of completions, through the admission front, reporting p50/p95/p99 latency and rejection rate per rung")
	fs.StringVar(&latOut, "latency-out", "", "with -openloop: write the latency ladder as JSON (schema monge-latency/v1) to this file (\"-\" for stdout)")
	fs.StringVar(&backendF, "backend", "pram", "execution backend for -serve and -batch: pram (simulated machines) or native (direct goroutine kernels)")
	fs.IntVar(&workersN, "workers", 0, "driver-pool worker count for -serve (0 = GOMAXPROCS)")
	fs.Float64Var(&qpsLimit, "qps", 0, "throttle -serve submissions to this many queries per second (0 = unthrottled)")
	fs.IntVar(&queriesN, "queries", 256, "total queries submitted by -serve")
	fs.BoolVar(&indexOn, "index", false, "run the submatrix-maximum index ladder (build cost, index bytes, p50/p95 per-query latency vs an uncached SMAWK call at n in {256, 1024, 4096}) instead of the -exp experiments")
	fs.StringVar(&indexOut, "index-out", "", "with -index: write the ladder as JSON (schema monge-index/v1) to this file (\"-\" for stdout)")
	fs.BoolVar(&minplusOn, "minplus", false, "run the Monge (min,+) multiplication ladder (SMAWK engine vs naive O(n^3), M-link path vs reference DP, at n in {256, 1024, 4096}) instead of the -exp experiments")
	fs.StringVar(&minplusOut, "minplus-out", "", "with -minplus: write the ladder as JSON (schema monge-minplus/v1) to this file (\"-\" for stdout)")
	fs.StringVar(&traceFlag, "trace", "", "write aggregated per-step runtime counters as JSON to this file (\"-\" for stdout)")
	fs.DurationVar(&timeout, "timeout", 0, "cancel the run after this duration (0 = no deadline)")
	fs.Float64Var(&faultRate, "faults", 0, "per-unit fault injection rate in (0, 0.9]; 0 disables injection")
	fs.Int64Var(&faultSeed, "fault-seed", 1, "seed of the deterministic fault schedule")
	fs.BoolVar(&metricsOn, "metrics", false, "collect per-site observability counters and print them as a table (also published as expvar \"monge_obs\")")
	fs.StringVar(&traceOut, "trace-out", "", "record per-superstep spans and write them in Chrome trace_event format to this file")
	fs.StringVar(&profile, "profile", "", "write a CPU profile of the run to this file (runtime/pprof)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch backendF {
	case "pram":
		backendBE = batch.BackendPRAM
	case "native":
		backendBE = batch.BackendNative
	default:
		fmt.Fprintf(stderr, "mongebench: unknown -backend %q (want pram or native)\n", backendF)
		return 2
	}
	if qpsLimit < 0 {
		fmt.Fprintf(stderr, "mongebench: -qps %g is negative; pass a positive rate (or 0 for unthrottled closed-loop -serve)\n", qpsLimit)
		return 2
	}
	if openLoop && !serveOn {
		fmt.Fprintln(stderr, "mongebench: -openloop requires -serve (it drives the serving pool's admission front)")
		return 2
	}
	if openLoop && qpsLimit <= 0 {
		fmt.Fprintln(stderr, "mongebench: -openloop requires -qps > 0 (the base arrival rate of the 0.5x/1x/2x ladder)")
		return 2
	}
	if latOut != "" && !openLoop {
		fmt.Fprintln(stderr, "mongebench: -latency-out requires -openloop (it records the open-loop latency ladder)")
		return 2
	}
	if indexOut != "" && !indexOn {
		fmt.Fprintln(stderr, "mongebench: -index-out requires -index (it records the index ladder)")
		return 2
	}
	if minplusOut != "" && !minplusOn {
		fmt.Fprintln(stderr, "mongebench: -minplus-out requires -minplus (it records the (min,+) ladder)")
		return 2
	}
	if minplusOn && (indexOn || serveOn) {
		fmt.Fprintln(stderr, "mongebench: -minplus is its own mode; drop -index/-serve")
		return 2
	}

	var collector *exec.Collector
	if traceFlag != "" {
		collector = exec.NewCollector()
		prev := exec.GlobalSink()
		exec.SetGlobalSink(collector)
		defer exec.SetGlobalSink(prev)
	}
	var injector *faults.Injector
	if faultRate > 0 {
		injector = faults.New(faultSeed, faultRate)
		prev := faults.Global()
		faults.SetGlobal(injector)
		defer faults.SetGlobal(prev)
		printf("%s\n", injector)
	}
	var observer *obs.Observer
	if metricsOn || traceOut != "" {
		observer = obs.NewObserver()
		if traceOut != "" {
			observer.EnableTracing(0)
		}
		prev := obs.Global()
		obs.SetGlobal(observer)
		defer obs.SetGlobal(prev)
		if metricsOn {
			obs.PublishExpvar()
		}
	}
	if profile != "" {
		f, err := os.Create(profile)
		if err != nil {
			fmt.Fprintf(errw, "creating profile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(errw, "starting profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	benchCtx = nil
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		benchCtx = ctx
	}

	matched := false
	failed := false
	run := func(name string, f func()) {
		if failed || (expFlag != "all" && expFlag != name) {
			return
		}
		matched = true
		if err := runExperiment(f); err != nil {
			fmt.Fprintf(errw, "\nexperiment %s aborted: %v\n", name, err)
			failed = true
		}
	}
	if minplusOn {
		matched = true
		if err := runExperiment(minplusExp); err != nil {
			fmt.Fprintf(errw, "\nminplus experiment aborted: %v\n", err)
			failed = true
		}
	} else if indexOn {
		matched = true
		if err := runExperiment(indexExp); err != nil {
			fmt.Fprintf(errw, "\nindex experiment aborted: %v\n", err)
			failed = true
		}
	} else if openLoop {
		matched = true
		if err := runExperiment(openLoopExp); err != nil {
			fmt.Fprintf(errw, "\nopen-loop experiment aborted: %v\n", err)
			failed = true
		}
	} else if serveOn {
		matched = true
		if err := runExperiment(serveExp); err != nil {
			fmt.Fprintf(errw, "\nserve experiment aborted: %v\n", err)
			failed = true
		}
	} else if batchN > 0 {
		matched = true
		if err := runExperiment(func() { batchExp(batchN) }); err != nil {
			fmt.Fprintf(errw, "\nbatch experiment aborted: %v\n", err)
			failed = true
		}
	} else {
		run("t11", table11)
		run("t12", table12)
		run("t13", table13)
		run("fig11", figure11)
		run("app1", app1)
		run("app2", app2)
		run("app3", app3)
		run("app4", app4)
	}
	if failed {
		return 1
	}
	if !matched {
		fmt.Fprintf(errw, "unknown experiment %q\n", expFlag)
		return 2
	}
	if collector != nil {
		if err := writeTrace(collector, traceFlag); err != nil {
			fmt.Fprintf(errw, "writing trace: %v\n", err)
			return 1
		}
	}
	if injector != nil {
		s := injector.Stats()
		printf("\ninjected faults recovered: %d stalls, %d drops, %d garbles, %d timeouts\n",
			s.Stalls, s.Drops, s.Garbles, s.Timeouts)
		if s.QueueStalls+s.TicketDrops+s.SlowShards > 0 {
			printf("injected serving faults absorbed: %d queue stalls, %d ticket drops, %d slow shards\n",
				s.QueueStalls, s.TicketDrops, s.SlowShards)
		}
	}
	if observer != nil {
		if metricsOn {
			printf("\nobservability counters (expvar %q):\n", "monge_obs")
			if err := observer.WriteTable(out); err != nil {
				fmt.Fprintf(errw, "writing metrics table: %v\n", err)
				return 1
			}
		}
		if traceOut != "" {
			if err := writeChromeTrace(observer, traceOut); err != nil {
				fmt.Fprintf(errw, "writing chrome trace: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

// runExperiment executes one experiment, converting a thrown typed
// condition (ErrCanceled at the -timeout deadline, most commonly) into an
// ordinary error so the command can exit cleanly with the machines
// stopped at a superstep boundary and the pool drained.
func runExperiment(f func()) (err error) {
	defer merr.Catch(&err)
	f()
	return nil
}

// writeTrace dumps the collector's aggregates to path ("-" = stdout).
func writeTrace(c *exec.Collector, path string) error {
	if path == "-" {
		return c.WriteJSON(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeChromeTrace dumps the observer's span log in Chrome trace_event
// format to path ("-" = stdout).
func writeChromeTrace(o *obs.Observer, path string) error {
	tr := o.Tracer()
	if tr == nil {
		return nil
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(errw, "trace buffer full: %d spans dropped\n", d)
	}
	if path == "-" {
		return tr.WriteChromeTrace(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sizes(limit int) []int {
	var out []int
	for n := 128; n <= limit; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{limit}
	}
	return out
}

func lg(n int) float64 { return float64(pram.Log2Ceil(n)) }

func header(title, claim string) {
	printf("\n== %s ==\n   paper claim: %s\n", title, claim)
	printf("%8s %12s %12s %14s %12s\n", "n", "time", "procs", "work", "time/bound")
}

func table11() {
	rng := rand.New(rand.NewSource(seed))
	header("Table 1.1 row 1: CRCW row maxima, n x n Monge", "O(lg n) time, n processors")
	for _, n := range sizes(maxN) {
		a := marray.RandomMonge(rng, n, n)
		mach := newPRAM(pram.CRCW, n)
		core.MongeRowMaxima(mach, a)
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), mach.Procs(), mach.Work(), float64(mach.Time())/lg(n))
	}
	header("Table 1.1 row 2: CREW row maxima, n x n Monge", "O(lg n lglg n) time, n/lglg n processors")
	for _, n := range sizes(maxN) {
		a := marray.RandomMonge(rng, n, n)
		p := n / pram.LogLog2Ceil(n)
		mach := newPRAM(pram.CREW, p)
		core.MongeRowMaxima(mach, a)
		bound := lg(n) * float64(pram.LogLog2Ceil(n))
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), p, mach.Work(), float64(mach.Time())/bound)
	}
	header("Table 1.1 row 3: hypercube / CCC / shuffle-exchange row maxima (Thm 3.2)",
		"O(lg n lglg n) time, n/lglg n processors (we size machines at O(n); time is the reproduced claim)")
	for _, kind := range []hc.Kind{hc.Cube, hc.CCC, hc.Shuffle} {
		for _, n := range sizes(min(maxN, 1024)) {
			a := marray.RandomMonge(rng, n, n)
			v, w := idxVec(n), idxVec(n)
			mach := tuned(hcmonge.MachineFor(kind, n, n))
			hcmonge.MongeRowMaximaOn(mach, v, w, func(i, j int) float64 { return a.At(i, j) })
			bound := lg(n) * float64(pram.LogLog2Ceil(n))
			printf("%8d %12d %12d %14d %12.1f  (%s)\n", n, mach.Time(), mach.Size(), mach.Work(),
				float64(mach.Time())/bound, kind)
		}
	}
}

func idxVec(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

func table12() {
	rng := rand.New(rand.NewSource(seed))
	header("Table 1.2 row 1: CRCW staircase row minima (Thm 2.3)", "O(lg n) time, n processors")
	for _, n := range sizes(maxN) {
		a := marray.RandomStaircaseMonge(rng, n, n)
		mach := newPRAM(pram.CRCW, n)
		core.StaircaseRowMinima(mach, a)
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), n, mach.Work(), float64(mach.Time())/lg(n))
	}
	header("Table 1.2 row 2: CREW staircase row minima (Thm 2.3)", "O(lg n lglg n) time, n/lglg n processors")
	for _, n := range sizes(maxN) {
		a := marray.RandomStaircaseMonge(rng, n, n)
		p := n / pram.LogLog2Ceil(n)
		mach := newPRAM(pram.CREW, p)
		core.StaircaseRowMinima(mach, a)
		bound := lg(n) * float64(pram.LogLog2Ceil(n))
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), p, mach.Work(), float64(mach.Time())/bound)
	}
	header("Table 1.2 row 3: hypercube staircase row minima (Thm 3.3)",
		"O(lg n lglg n) time (proof omitted in the paper; see EXPERIMENTS.md)")
	for _, n := range sizes(min(maxN, 1024)) {
		a := marray.RandomStaircaseMonge(rng, n, n)
		bounds := make([]int, n)
		for i := 0; i < n; i++ {
			bounds[i] = marray.BoundaryOf(a, i)
		}
		v, w := idxVec(n), idxVec(n)
		mach := tuned(hcmonge.MachineFor(hc.Cube, n, n))
		hcmonge.StaircaseRowMinimaOn(mach, v, bounds, w, func(i, j int) float64 { return a.At(i, j) })
		bound := lg(n) * float64(pram.LogLog2Ceil(n))
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), mach.Size(), mach.Work(),
			float64(mach.Time())/bound)
	}
}

func table13() {
	rng := rand.New(rand.NewSource(seed))
	limit := min(maxN, 256)
	header("Table 1.3 row 1: CRCW tube maxima",
		"Theta(lglg n) time, n^2/lglg n procs [Ata89] -- our substitute measures O(lg n); deviation documented")
	for _, n := range sizes(limit) {
		c := marray.RandomComposite(rng, n, n, n)
		mach := newPRAM(pram.CRCW, 2*n*n)
		core.TubeMaxima(mach, c)
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), 2*n*n, mach.Work(), float64(mach.Time())/lg(n))
	}
	header("Table 1.3 row 2: CREW tube maxima", "Theta(lg n) time, n^2/lg n processors (ours: n*(q+r) groups)")
	for _, n := range sizes(limit) {
		c := marray.RandomComposite(rng, n, n, n)
		mach := newPRAM(pram.CREW, 2*n*n)
		core.TubeMaxima(mach, c)
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), 2*n*n, mach.Work(), float64(mach.Time())/lg(n))
	}
	header("Table 1.3 row 3: hypercube tube maxima (Thm 3.4)", "Theta(lg n) time, n^2 processors")
	for _, n := range sizes(min(limit, 128)) {
		c := marray.RandomComposite(rng, n, n, n)
		mach := tuned(hcmonge.TubeMachineFor(hc.Cube, c))
		hcmonge.TubeMaximaOn(mach, c)
		printf("%8d %12d %12d %14d %12.1f\n", n, mach.Time(), mach.Size(), mach.Work(), float64(mach.Time())/lg(n))
	}
}

func figure11() {
	rng := rand.New(rand.NewSource(seed))
	header("Figure 1.1: all-farthest neighbors across a split convex polygon",
		"Theta(m+n) sequential via row maxima; O(lg n) CRCW")
	for _, n := range sizes(maxN) {
		p, q := marray.ConvexChainPair(rng, n, n)
		start := time.Now()
		smawkIdx := geom.AllFarthestNeighbors(p, q)
		seqT := time.Since(start)
		start = time.Now()
		bruteIdx := geom.AllFarthestNeighborsBrute(p, q)
		bruteT := time.Since(start)
		agree := 0
		for i := range smawkIdx {
			if smawkIdx[i] == bruteIdx[i] {
				agree++
			}
		}
		mach := newPRAM(pram.CRCW, 2*n)
		geom.AllFarthestNeighborsPRAM(mach, p, q)
		printf("%8d  smawk %10v  brute %10v  speedup %6.1fx  CRCW time %5d (t/lg n %.1f)  agree %d/%d\n",
			n, seqT, bruteT, float64(bruteT)/float64(seqT), mach.Time(), float64(mach.Time())/lg(n), agree, n)
	}
}

func app1() {
	rng := rand.New(rand.NewSource(seed))
	header("Application 1: largest empty rectangle",
		"paper: O(lg^2 n) CRCW with n lg n procs; ours: exact O(n^2) sequential + O(lg n) anchored families via ANSV")
	bounds := rect.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}
	for _, n := range sizes(min(maxN, 1024)) {
		pts := make([]rect.Point, n)
		for i := range pts {
			pts[i] = rect.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		start := time.Now()
		full := rect.LargestEmptyRect(pts, bounds)
		seqT := time.Since(start)
		mach := newPRAM(pram.CRCW, n)
		anch := rect.LargestAnchoredRect(mach, pts, bounds)
		printf("%8d  exact area %12.1f (%8v)   anchored area %12.1f  CRCW time %5d (t/lg n %.1f)\n",
			n, full.Area(), seqT, anch.Area(), mach.Time(), float64(mach.Time())/lg(n))
	}
}

func app2() {
	rng := rand.New(rand.NewSource(seed))
	header("Application 2: largest-area two-corner rectangle (Melville)",
		"Theta(lg n) CRCW time, n processors")
	for _, n := range sizes(maxN) {
		pts := make([]rect.Point, n)
		for i := range pts {
			pts[i] = rect.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		start := time.Now()
		area, _, _ := rect.MaxCornerRect(pts)
		seqT := time.Since(start)
		mach := newPRAM(pram.CRCW, n)
		parea, _, _ := rect.MaxCornerRectPRAM(mach, pts)
		match := "ok"
		if area != parea {
			match = "MISMATCH"
		}
		printf("%8d  area %14.1f  seq %10v  CRCW time %5d (t/lg n %5.1f)  %s\n",
			n, area, seqT, mach.Time(), float64(mach.Time())/lg(n), match)
	}
}

func app3() {
	rng := rand.New(rand.NewSource(seed))
	header("Application 3: nearest/farthest (in)visible neighbors",
		"O(lg(m+n)) CRCW; invisible cases via staircase-Monge row minima (Thm 2.3)")
	for _, n := range sizes(min(maxN, 1024)) {
		p, q, ob := geom.ObstructedChains(rng, n, n)
		obstacles := []geom.Polygon{ob}
		for _, kind := range []geom.NeighborKind{geom.NearestInvisible, geom.FarthestInvisible} {
			mach := newPRAM(pram.CRCW, 2*n)
			res := geom.Neighbors(kind, mach, p, q, obstacles)
			printf("%8d  %-19s CRCW time %6d (t/lg n %6.1f)  staircase rows %5d, fallback %4d\n",
				n, kind, mach.Time(), float64(mach.Time())/lg(n), res.StaircaseRows, res.FallbackRows)
		}
	}
}

func app4() {
	rng := rand.New(rand.NewSource(seed))
	header("Application 4: string editing",
		"O(lg n lg m) time, nm-processor hypercube (vs wavefront baseline O(n+m))")
	c := stredit.UnitCosts()
	alphabet := 4
	for _, n := range sizes(min(maxN, 256)) {
		x := randStr(rng, n, alphabet)
		y := randStr(rng, n, alphabet)
		start := time.Now()
		want := stredit.Distance(x, y, c)
		dpT := time.Since(start)
		m1 := newPRAM(pram.CRCW, n*n)
		got := stredit.DistancePRAM(m1, x, y, c)
		m2 := newPRAM(pram.CRCW, n*n)
		stredit.DistanceWavefront(m2, x, y, c)
		match := "ok"
		if got != want {
			match = "MISMATCH"
		}
		bound := lg(n) * lg(n)
		printf("%8d  dist %6.0f  DP %8v  monge PRAM time %7d (t/lg^2 %5.1f)  wavefront time %7d  %s\n",
			n, want, dpT, m1.Time(), float64(m1.Time())/bound, m2.Time(), match)
	}
	printf("   hypercube engine (Theorem 3.4 machinery):\n")
	for _, n := range sizes(min(maxN, 64)) {
		x := randStr(rng, n, alphabet)
		y := randStr(rng, n, alphabet)
		d, rep := stredit.DistanceHypercubeCtx(benchCtx, hc.Cube, x, y, c)
		want := stredit.Distance(x, y, c)
		match := "ok"
		if d != want {
			match = "MISMATCH"
		}
		printf("%8d  dist %6.0f  hypercube time %8d (t/lg^2 %6.1f)  %s\n",
			n, d, rep.Time, float64(rep.Time)/(lg(n)*lg(n)), match)
	}
}

// batchExp exercises the batched query driver end to end: k row-minima
// queries (and, at small sizes, k tube-maxima queries) per ladder size
// run through one retained machine per shape class, timed against the
// fresh-machine-per-query path and checked index-for-index against it.
func batchExp(k int) {
	rng := rand.New(rand.NewSource(seed))
	d := batch.NewWithBackend(pram.CRCW, backendBE)
	if benchCtx != nil {
		d.SetContext(benchCtx)
	}
	defer d.Close()

	printf("\n== Batched row minima: %d queries per size, one machine per shape class (%s backend) ==\n", k, backendBE)
	printf("%8s %14s %14s %9s %8s\n", "n", "batch/query", "fresh/query", "speedup", "match")
	for _, n := range sizes(maxN) {
		arrays := make([]marray.Matrix, k)
		for i := range arrays {
			arrays[i] = marray.RandomMonge(rng, n, n)
		}
		start := time.Now()
		got := d.RowMinimaBatch(arrays)
		batchT := time.Since(start)
		match := "ok"
		start = time.Now()
		for i, a := range arrays {
			want := core.RowMinima(newPRAM(pram.CRCW, n), a)
			for r := range want {
				if got[i][r] != want[r] {
					match = "MISMATCH"
				}
			}
		}
		freshT := time.Since(start)
		printf("%8d %14v %14v %8.1fx %8s\n", n, batchT/time.Duration(k), freshT/time.Duration(k),
			float64(freshT)/float64(batchT), match)
	}

	printf("\n== Batched tube maxima: %d queries per size ==\n", k)
	printf("%8s %14s %14s %9s %8s\n", "n", "batch/query", "fresh/query", "speedup", "match")
	for _, n := range sizes(min(maxN, 128)) {
		comps := make([]marray.Composite, k)
		for i := range comps {
			comps[i] = marray.RandomComposite(rng, n, n, n)
		}
		start := time.Now()
		gotJ, _ := d.TubeMaximaBatch(comps)
		batchT := time.Since(start)
		match := "ok"
		start = time.Now()
		for i, c := range comps {
			wantJ, _ := core.TubeMaxima(newPRAM(pram.CRCW, 2*n*n), c)
			for x := range wantJ {
				for kk := range wantJ[x] {
					if gotJ[i][x][kk] != wantJ[x][kk] {
						match = "MISMATCH"
					}
				}
			}
		}
		freshT := time.Since(start)
		printf("%8d %14v %14v %8.1fx %8s\n", n, batchT/time.Duration(k), freshT/time.Duration(k),
			float64(freshT)/float64(batchT), match)
	}
}

// serveExp drives the concurrent driver pool (internal/serve) with a
// synthetic mix of row-minima, staircase, and tube queries, optionally
// throttled to -qps, and reports achieved throughput, shard balance,
// and tile-cache traffic. Every answer is checked index-for-index
// against the sequential facade computed up front — concurrency must
// never change an answer. The -faults and -timeout flags pass through:
// machines inside the pool attach the process-global injector and the
// run's context like every other experiment.
func serveExp() {
	rng := rand.New(rand.NewSource(seed))
	n := min(maxN, 512)
	tubeN := min(n, 24)

	// A small rotating set of distinct inputs, implicit-backed so the
	// per-shard tile caches participate.
	type prep struct {
		q    serve.Query
		idx  []int
		tubJ [][]int
	}
	var mix []prep
	for i := 0; i < 4; i++ {
		a := marray.RandomMonge(rng, n, n)
		f := marray.Func{M: n, N: n, F: a.At}
		mix = append(mix, prep{q: serve.Query{Kind: serve.RowMinima, A: f}, idx: smawk.RowMinima(a)})
	}
	s := marray.RandomStaircaseMonge(rng, n, n)
	sf := marray.Func{M: n, N: n, F: s.At}
	mix = append(mix, prep{q: serve.Query{Kind: serve.StaircaseRowMinima, A: sf}, idx: smawk.StaircaseRowMinima(s)})
	// Hostile traffic: ties split at 1e-9 (exact leftmost tie-breaking
	// or bust) and an inf-dominated staircase (mostly blocked rows, -1
	// answers). Both are implicit-backed so the shard tile caches — and
	// under the native backend the branchless scan kernels — see them.
	nt := marray.RandomNearTieMonge(rng, n, n)
	ntf := marray.Func{M: n, N: n, F: nt.At}
	mix = append(mix, prep{q: serve.Query{Kind: serve.RowMinima, A: ntf}, idx: smawk.RowMinima(nt)})
	ih := marray.RandomInfHeavyStaircase(rng, n, n)
	mix = append(mix, prep{q: serve.Query{Kind: serve.StaircaseRowMinima, A: ih}, idx: smawk.StaircaseRowMinima(ih)})
	c := marray.RandomComposite(rng, tubeN, tubeN, tubeN)
	tj, _ := smawk.TubeMaxima(c)
	mix = append(mix, prep{q: serve.Query{Kind: serve.TubeMaxima, C: c}, tubJ: tj})

	pool := serve.New(pram.CRCW, serve.Options{Workers: workersN, Context: benchCtx, Backend: backendBE})
	defer pool.Close()
	printf("\n== Concurrent serving: %d queries, %d workers, %s backend", queriesN, pool.Workers(), backendBE)
	if qpsLimit > 0 {
		printf(", throttled to %.0f qps", qpsLimit)
	}
	printf(" ==\n")

	var throttle <-chan time.Time
	if qpsLimit > 0 {
		tick := time.NewTicker(time.Duration(float64(time.Second) / qpsLimit))
		defer tick.Stop()
		throttle = tick.C
	}
	tickets := make([]*serve.Ticket, queriesN)
	start := time.Now()
	for i := 0; i < queriesN; i++ {
		if throttle != nil {
			<-throttle
		}
		t, err := pool.Submit(mix[i%len(mix)].q)
		if err != nil {
			merr.Throw(err)
		}
		tickets[i] = t
	}
	mismatches := 0
	for i, t := range tickets {
		res := t.Result()
		if res.Err != nil {
			merr.Throw(res.Err)
		}
		want := mix[i%len(mix)]
		for r := range want.idx {
			if res.Idx[r] != want.idx[r] {
				mismatches++
			}
		}
		for x := range want.tubJ {
			for k := range want.tubJ[x] {
				if res.TubeJ[x][k] != want.tubJ[x][k] {
					mismatches++
				}
			}
		}
	}
	elapsed := time.Since(start)

	st := pool.Stats()
	match := "ok"
	if mismatches > 0 {
		match = fmt.Sprintf("%d MISMATCHES", mismatches)
	}
	hitRate := 0.0
	if probes := st.CacheHits + st.CacheMisses; probes > 0 {
		hitRate = float64(st.CacheHits) / float64(probes)
	}
	printf("%10s %12s %10s %10s %12s %8s\n", "queries", "elapsed", "qps", "imbalance", "cache-hit%", "match")
	printf("%10d %12v %10.0f %10d %11.1f%% %8s\n", st.Queries, elapsed.Round(time.Millisecond),
		float64(st.Queries)/elapsed.Seconds(), st.Imbalance, 100*hitRate, match)
	printf("   per-shard queries:")
	for _, q := range st.PerWorker {
		printf(" %d", q)
	}
	printf("\n")
	if mismatches > 0 {
		merr.Throwf(merr.ErrNotMonge, "serve: %d index mismatches against the sequential facade", mismatches)
	}
}

func randStr(rng *rand.Rand, n, alpha int) string {
	b := make([]rune, n)
	for i := range b {
		b[i] = rune('a' + rng.Intn(alpha))
	}
	return string(b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
