package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"monge/internal/obs"
)

// run invokes the command exactly as main does, returning the exit code
// and both output streams.
func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var ob, eb bytes.Buffer
	code = mainImpl(args, &ob, &eb)
	return code, ob.String(), eb.String()
}

// TestTimeoutExitsNonzero pins the error contract of the command: a run
// cancelled at the -timeout deadline must report the abort and exit
// non-zero, for every experiment that simulates machines — including
// app4, whose hypercube string-edit phase creates its machines
// internally and historically ran to completion ignoring the deadline.
func TestTimeoutExitsNonzero(t *testing.T) {
	for _, exp := range []string{"t11", "app4"} {
		code, _, stderr := run(t, "-exp", exp, "-maxn", "128", "-timeout", "1ns")
		if code == 0 {
			t.Errorf("-exp %s -timeout 1ns exited 0; cancelled runs must fail", exp)
		}
		if !strings.Contains(stderr, "aborted") {
			t.Errorf("-exp %s stderr does not report the abort:\n%s", exp, stderr)
		}
	}
}

// TestServeModeReportsThroughput smoke-tests the -serve driver-pool
// mode: a small run must exit 0, report its throughput line with every
// answer matching the sequential facade, and honor -timeout with the
// standard non-zero abort.
func TestServeModeReportsThroughput(t *testing.T) {
	code, stdout, stderr := run(t, "-serve", "-maxn", "64", "-queries", "32", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Concurrent serving") || !strings.Contains(stdout, "ok") {
		t.Fatalf("missing throughput report:\n%s", stdout)
	}
	if strings.Contains(stdout, "MISMATCH") {
		t.Fatalf("served answers diverged from the sequential facade:\n%s", stdout)
	}
	code, _, stderr = run(t, "-serve", "-maxn", "64", "-queries", "8", "-timeout", "1ns")
	if code == 0 {
		t.Error("-serve -timeout 1ns exited 0; cancelled runs must fail")
	}
	if !strings.Contains(stderr, "aborted") {
		t.Errorf("-serve timeout stderr does not report the abort:\n%s", stderr)
	}
}

// TestServeModeNativeBackend covers the -backend flag end to end: a
// native-backend serve run exits 0, names the backend in its report,
// and keeps every answer matching the sequential facade (which checks
// against PRAM-derived expectations — a cross-backend differential at
// the CLI layer); a bogus backend is a usage error.
func TestServeModeNativeBackend(t *testing.T) {
	code, stdout, stderr := run(t, "-serve", "-backend", "native", "-maxn", "64", "-queries", "32", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "native backend") {
		t.Fatalf("report does not name the native backend:\n%s", stdout)
	}
	if strings.Contains(stdout, "MISMATCH") {
		t.Fatalf("native served answers diverged from the sequential facade:\n%s", stdout)
	}
	code, _, stderr = run(t, "-serve", "-backend", "bogus")
	if code != 2 {
		t.Fatalf("-backend bogus exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "bogus") {
		t.Fatalf("stderr does not name the bad backend:\n%s", stderr)
	}
}

func TestUnknownExperimentExitsUsage(t *testing.T) {
	code, _, stderr := run(t, "-exp", "nope")
	if code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "nope") {
		t.Fatalf("stderr does not name the bad experiment:\n%s", stderr)
	}
}

// metricsRow is one parsed line of the -metrics table; field positions
// follow the fixed column set of obs.(*Observer).WriteTable.
type metricsRow struct {
	supersteps, reads, writes, linkMsgs, linkBytes int64
}

func parseMetrics(t *testing.T, stdout string) map[string]metricsRow {
	t.Helper()
	rows := make(map[string]metricsRow)
	lines := strings.Split(stdout, "\n")
	start := -1
	for i, ln := range lines {
		if strings.Contains(ln, "observability counters") {
			start = i + 2 // skip the header line
			break
		}
	}
	if start < 0 {
		t.Fatalf("no metrics table in output:\n%s", stdout)
	}
	num := func(s string) int64 {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad counter %q: %v", s, err)
		}
		return v
	}
	for _, ln := range lines[start:] {
		f := strings.Fields(ln)
		if len(f) != 21 { // site + 20 counter columns (see obs.WriteTable)
			continue
		}
		rows[f[0]] = metricsRow{
			supersteps: num(f[1]), reads: num(f[4]), writes: num(f[5]),
			linkMsgs: num(f[7]), linkBytes: num(f[8]),
		}
	}
	return rows
}

// TestMetricsNonzeroAllModels is the acceptance check of the -metrics
// flag: after a t11 run, every machine model reports nonzero supersteps,
// the PRAM reports shared-memory traffic, and every network kind reports
// link traffic.
func TestMetricsNonzeroAllModels(t *testing.T) {
	code, stdout, stderr := run(t, "-exp", "t11", "-maxn", "128", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	rows := parseMetrics(t, stdout)
	pr, ok := rows["pram"]
	if !ok {
		t.Fatalf("no pram site in metrics table:\n%s", stdout)
	}
	if pr.supersteps == 0 || pr.reads == 0 || pr.writes == 0 {
		t.Errorf("pram counters not all nonzero: %+v", pr)
	}
	for _, kind := range []string{"hypercube", "cube-connected-cycles", "shuffle-exchange"} {
		r, ok := rows[kind]
		if !ok {
			t.Errorf("no %s site in metrics table", kind)
			continue
		}
		if r.supersteps == 0 || r.linkMsgs == 0 || r.linkBytes == 0 {
			t.Errorf("%s counters not all nonzero: %+v", kind, r)
		}
	}
	if obs.Global() != nil {
		t.Error("mainImpl leaked the global observer")
	}
}

// TestTraceOutWritesChromeTrace checks the -trace-out export is a valid
// Chrome trace_event document with complete events from machine sites.
func TestTraceOutWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, stderr := run(t, "-exp", "t11", "-maxn", "128", "-trace-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	sites := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			sites[ev.Cat] = true
		}
	}
	for _, want := range []string{"pram", "hypercube", "hcmonge"} {
		if !sites[want] {
			t.Errorf("trace has no spans from site %q (got %v)", want, sites)
		}
	}
}

// TestOpenLoopFlagValidation pins the usage contract of the open-loop
// latency mode: every invalid flag combination exits 2 with a message
// naming the offending flag, before any experiment work starts.
func TestOpenLoopFlagValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want string // substring the usage message must contain
	}{
		"openloop-without-serve": {
			args: []string{"-openloop", "-qps", "100"},
			want: "-openloop requires -serve",
		},
		"openloop-without-qps": {
			args: []string{"-serve", "-openloop"},
			want: "-openloop requires -qps > 0",
		},
		"latency-out-without-openloop": {
			args: []string{"-serve", "-latency-out", "x.json"},
			want: "-latency-out requires -openloop",
		},
		"negative-qps": {
			args: []string{"-serve", "-qps", "-5"},
			want: "-qps -5 is negative",
		},
	} {
		code, _, stderr := run(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, stderr)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr missing %q:\n%s", name, tc.want, stderr)
		}
	}
}

// TestOpenLoopWritesLatencyLadder smoke-tests the open-loop mode end to
// end: a light run exits 0 and writes a monge-latency/v1 document with
// the three rungs, consistent outcome counts, and monotone percentiles.
func TestOpenLoopWritesLatencyLadder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lat.json")
	code, stdout, stderr := run(t,
		"-serve", "-openloop", "-qps", "400", "-queries", "40",
		"-maxn", "64", "-workers", "2", "-latency-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Open-loop") {
		t.Fatalf("missing open-loop report:\n%s", stdout)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Points []struct {
			Multiplier float64 `json:"multiplier"`
			Sent       int64   `json:"sent"`
			OK         int64   `json:"ok"`
			Rejected   int64   `json:"rejected"`
			Deadline   int64   `json:"deadline_expired"`
			P50        float64 `json:"p50_us"`
			P95        float64 `json:"p95_us"`
			P99        float64 `json:"p99_us"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("latency ladder is not valid JSON: %v", err)
	}
	if doc.Schema != "monge-latency/v1" {
		t.Fatalf("schema %q, want monge-latency/v1", doc.Schema)
	}
	if len(doc.Points) != 3 {
		t.Fatalf("%d rungs, want 3 (0.5x, 1x, 2x)", len(doc.Points))
	}
	for _, p := range doc.Points {
		if p.Sent != p.OK+p.Rejected+p.Deadline {
			t.Errorf("rung %gx: sent %d != ok %d + rejected %d + deadline %d",
				p.Multiplier, p.Sent, p.OK, p.Rejected, p.Deadline)
		}
		if p.OK > 0 && !(p.P50 > 0 && p.P50 <= p.P95 && p.P95 <= p.P99) {
			t.Errorf("rung %gx: percentiles not positive/monotone: p50=%g p95=%g p99=%g",
				p.Multiplier, p.P50, p.P95, p.P99)
		}
	}
}
