package main

import (
	"strings"
	"testing"
)

// TestMinPlusFlagValidation pins the -minplus flag contract: the output
// flag is meaningless without the mode, and the mode is exclusive with
// the other top-level modes. Invalid combinations exit 2 (usage) with a
// message naming the offending flag, before any experiment runs.
func TestMinPlusFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"out-without-mode", []string{"-minplus-out", "x.json"}, "-minplus-out requires -minplus"},
		{"with-index", []string{"-minplus", "-index"}, "its own mode"},
		{"with-serve", []string{"-minplus", "-serve"}, "its own mode"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := run(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr does not explain the rejection (want %q):\n%s", tc.want, stderr)
			}
		})
	}
}

// TestMinPlusTimeoutExitsNonzero: the ladder honors -timeout with the
// standard non-zero abort, like every other mode.
func TestMinPlusTimeoutExitsNonzero(t *testing.T) {
	code, _, stderr := run(t, "-minplus", "-timeout", "1ns")
	if code == 0 {
		t.Fatal("-minplus -timeout 1ns exited 0; cancelled runs must fail")
	}
	if !strings.Contains(stderr, "aborted") {
		t.Fatalf("stderr does not report the abort:\n%s", stderr)
	}
}
