package main

// The -minplus mode records the Monge (min,+) multiplication engine
// (internal/minplus) against the naive O(n³) product, and the M-link
// path solver against the O(n²M) reference DP, at n ∈ {256, 1024,
// 4096}. The naive multiply is measured only up to n = 1024 — the 1-CPU
// O(n³) cost at 4096 is minutes, and the gate lives at 1024 anyway.
// Every timed product is witness-spot-checked (leftmost argmin, full
// candidate scan per sampled entry) before its latency is recorded, and
// the sizes with a naive run are additionally compared value- and
// witness-exact over the full product. The ladder is written as
// BENCH_minplus.json (schema monge-minplus/v1) and gated by the root
// TestMinPlusBaseline.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"monge/internal/batch"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/minplus"
)

// minplusSchema is the version tag of the -minplus-out JSON.
const minplusSchema = "monge-minplus/v1"

var (
	minplusOn  bool
	minplusOut string
)

// minplusPoint is one ladder size: the engine and naive multiply
// latencies, the product's core (run) sparsity, and the M-link solver
// against its reference DP.
type minplusPoint struct {
	N        int   `json:"n"`
	EngineNS int64 `json:"engine_ns"`
	// NaiveNS is 0 when the naive multiply was skipped (n > 1024).
	NaiveNS         int64   `json:"naive_ns"`
	EngineOverNaive float64 `json:"engine_over_naive"`
	// Runs is the product's core size: total witness runs across all
	// rows, against the n*n a dense representation would store.
	Runs         int     `json:"runs"`
	DenseCells   int     `json:"dense_cells"`
	MLinkM       int     `json:"mlink_m"`
	MLinkNS      int64   `json:"mlink_ns"`
	MLinkRefNS   int64   `json:"mlink_ref_ns"`
	MLinkSpeedup float64 `json:"mlink_speedup"`
}

// minplusLadder is the committed BENCH_minplus.json document.
type minplusLadder struct {
	Schema string `json:"schema"`
	CPUs   int    `json:"cpus"`
	Seed   int64  `json:"seed"`
	// GateN and MinEngineOverNaive are the acceptance gate
	// TestMinPlusBaseline enforces: at n = GateN the SMAWK-backed engine
	// must beat the naive O(n³) multiply by at least this factor. The
	// reduction is algorithmic — O(n²) vs O(n³) evaluations — so the
	// ratio holds on one CPU.
	GateN              int            `json:"gate_n"`
	MinEngineOverNaive float64        `json:"min_engine_over_naive"`
	Points             []minplusPoint `json:"points"`
}

// minplusExp runs the fixed ladder n ∈ {256, 1024, 4096} on the
// native-backend engine.
func minplusExp() {
	rng := rand.New(rand.NewSource(seed))
	ladder := minplusLadder{
		Schema:             minplusSchema,
		CPUs:               runtime.NumCPU(),
		Seed:               seed,
		GateN:              1024,
		MinEngineOverNaive: 20,
	}

	printf("\n== Monge (min,+) multiplication: SMAWK engine vs naive O(n³), M-link (M=16) vs reference DP ==\n")
	printf("%6s %12s %12s %9s %11s %12s %12s %9s\n",
		"n", "engine", "naive", "ratio", "runs/cell", "mlink", "mlink-ref", "ratio")

	for _, n := range []int{256, 1024, 4096} {
		a := marray.RandomMongeInt(rng, n, n, 8)
		b := marray.RandomMongeInt(rng, n, n, 8)

		e := minplus.New(batch.BackendNative)
		if benchCtx != nil {
			e.Driver().SetContext(benchCtx)
		}
		t0 := time.Now()
		p := e.Multiply(a, b)
		engineNS := time.Since(t0).Nanoseconds()

		// Witness spot-checks before the latency counts: each sampled
		// entry's stored witness must be the leftmost argmin over a full
		// candidate scan.
		spotCheckProduct(p, a, b, n, rng)

		pt := minplusPoint{
			N:          n,
			EngineNS:   engineNS,
			Runs:       p.Runs(),
			DenseCells: n * n,
			MLinkM:     16,
		}

		if n <= 1024 {
			t0 = time.Now()
			want, wit := minplus.MultiplyNaive(a, b)
			pt.NaiveNS = time.Since(t0).Nanoseconds()
			pt.EngineOverNaive = float64(pt.NaiveNS) / float64(pt.EngineNS)
			for i := 0; i < n; i++ {
				for k := 0; k < n; k++ {
					if p.At(i, k) != want.At(i, k) || p.Witness(i, k) != wit[i][k] {
						merr.Throwf(merr.ErrNotMonge,
							"minplusbench: n=%d product diverges from naive at (%d,%d)", n, i, k)
					}
				}
			}
		}
		e.Close()

		// M-link: the engine's solver against the O(n²M) reference DP,
		// exact cost agreement required. The weight is a convex-gap Monge
		// family with integer entries, so every strategy's float sums are
		// exact regardless of association order.
		off := make([]float64, n+1)
		for i := range off {
			off[i] = float64(rng.Intn(512))
		}
		w := minplus.Weight(func(i, j int) float64 {
			g := float64(j - i)
			return off[i] + off[j] + g*g
		})
		eng := minplus.New(batch.BackendNative)
		t0 = time.Now()
		cost, path := eng.MLinkPath(n, w, pt.MLinkM)
		pt.MLinkNS = time.Since(t0).Nanoseconds()
		eng.Close()
		t0 = time.Now()
		refCost, _ := minplus.MLinkBrute(n, w, pt.MLinkM)
		pt.MLinkRefNS = time.Since(t0).Nanoseconds()
		pt.MLinkSpeedup = float64(pt.MLinkRefNS) / float64(pt.MLinkNS)
		if math.Abs(cost-refCost) > 1e-6*(1+math.Abs(refCost)) {
			merr.Throwf(merr.ErrNotMonge,
				"minplusbench: n=%d M-link cost %g, reference DP %g", n, cost, refCost)
		}
		if len(path) != pt.MLinkM+1 || path[0] != 0 || path[pt.MLinkM] != n {
			merr.Throwf(merr.ErrNotMonge, "minplusbench: n=%d malformed M-link path (len %d)", n, len(path))
		}

		ladder.Points = append(ladder.Points, pt)
		naiveCol, ratioCol := "skipped", "-"
		if pt.NaiveNS > 0 {
			naiveCol = time.Duration(pt.NaiveNS).String()
			ratioCol = fmt.Sprintf("%.1fx", pt.EngineOverNaive)
		}
		printf("%6d %12v %12s %9s %11.4f %12v %12v %8.1fx\n",
			n, time.Duration(pt.EngineNS), naiveCol, ratioCol,
			float64(pt.Runs)/float64(pt.DenseCells),
			time.Duration(pt.MLinkNS), time.Duration(pt.MLinkRefNS), pt.MLinkSpeedup)
	}

	if minplusOut != "" {
		if err := writeMinplusLadder(&ladder, minplusOut); err != nil {
			merr.Throwf(merr.ErrNotMonge, "minplusbench: writing -minplus-out: %v", err)
		}
	}
}

// spotCheckProduct verifies ~64 sampled entries of p: the stored
// witness must be the leftmost argmin of a full O(n) candidate scan.
func spotCheckProduct(p *minplus.Product, a, b marray.Matrix, n int, rng *rand.Rand) {
	q := a.Cols()
	for s := 0; s < 64; s++ {
		i, k := rng.Intn(n), rng.Intn(n)
		best, bj := math.Inf(1), -1
		for j := 0; j < q; j++ {
			if v := a.At(i, j) + b.At(j, k); v < best {
				best, bj = v, j
			}
		}
		if got := p.Witness(i, k); got != bj {
			merr.Throwf(merr.ErrNotMonge,
				"minplusbench: n=%d witness(%d,%d) = %d, leftmost scan says %d", n, i, k, got, bj)
		}
		if bj >= 0 && p.At(i, k) != best {
			merr.Throwf(merr.ErrNotMonge,
				"minplusbench: n=%d value(%d,%d) = %g, scan says %g", n, i, k, p.At(i, k), best)
		}
	}
}

// writeMinplusLadder dumps the ladder as indented JSON ("-" = stdout).
func writeMinplusLadder(l *minplusLadder, path string) error {
	buf, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = out.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
