// Command mongesearch runs row-minima / row-maxima searches over generated
// or user-provided arrays and prints the argmin/argmax vectors, exercising
// every machine model.
//
// Usage:
//
//	mongesearch [-n 16] [-kind monge|staircase] [-op min|max] [-model seq|crcw|crew|hypercube] [-seed 1]
//
// Without -file the array is a random Monge (or staircase-Monge) array
// from the library's generator; with -file it is read as whitespace-
// separated rows ("inf" marks blocked staircase entries).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"monge/internal/core"
	"monge/internal/hcmonge"
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

var (
	n     = flag.Int("n", 16, "generated array size")
	kind  = flag.String("kind", "monge", "monge or staircase")
	op    = flag.String("op", "min", "min or max (max requires kind=monge)")
	model = flag.String("model", "seq", "seq, crcw, crew, or hypercube")
	seed  = flag.Int64("seed", 1, "generator seed")
	file  = flag.String("file", "", "read the array from a file instead of generating")
)

func main() {
	flag.Parse()
	var a marray.Matrix
	if *file != "" {
		var err error
		a, err = readMatrix(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		if *kind == "staircase" {
			a = marray.RandomStaircaseMonge(rng, *n, *n)
		} else {
			a = marray.RandomMonge(rng, *n, *n)
		}
	}
	validate(a)
	idx := search(a)
	fmt.Printf("%s per row (%s model):\n", *op, *model)
	for i, j := range idx {
		if j < 0 {
			fmt.Printf("  row %3d: blocked\n", i)
			continue
		}
		fmt.Printf("  row %3d: col %3d  value %g\n", i, j, a.At(i, j))
	}
}

func validate(a marray.Matrix) {
	if a.Rows() > 64 || a.Cols() > 64 {
		return // predicates are quadratic+; skip for big arrays
	}
	switch {
	case *kind == "staircase" && !marray.IsStaircaseMonge(a):
		fmt.Fprintln(os.Stderr, "warning: array is not staircase-Monge; results may be wrong")
	case *kind == "monge" && !marray.IsMonge(a):
		fmt.Fprintln(os.Stderr, "warning: array is not Monge; results may be wrong")
	}
}

func search(a marray.Matrix) []int {
	m := a.Rows()
	nn := a.Cols()
	switch *model {
	case "seq":
		if *kind == "staircase" {
			return smawk.StaircaseRowMinima(a)
		}
		if *op == "max" {
			return smawk.MongeRowMaxima(a)
		}
		return smawk.RowMinima(a)
	case "crcw", "crew":
		mode := pram.CRCW
		if *model == "crew" {
			mode = pram.CREW
		}
		mach := pram.New(mode, m+nn)
		defer func() { fmt.Printf("charged time: %d, work: %d\n", mach.Time(), mach.Work()) }()
		if *kind == "staircase" {
			return core.StaircaseRowMinima(mach, a)
		}
		if *op == "max" {
			return core.MongeRowMaxima(mach, a)
		}
		return core.RowMinima(mach, a)
	case "hypercube":
		v := make([]int, m)
		w := make([]int, nn)
		for i := range v {
			v[i] = i
		}
		for j := range w {
			w[j] = j
		}
		f := func(i, j int) float64 { return a.At(i, j) }
		var idx []int
		var mach *hc.Machine
		if *kind == "staircase" {
			bounds := make([]int, m)
			for i := range bounds {
				bounds[i] = marray.BoundaryOf(a, i)
			}
			idx, mach = hcmonge.StaircaseRowMinima(hc.Cube, v, bounds, w, f)
		} else if *op == "max" {
			idx, mach = hcmonge.MongeRowMaxima(hc.Cube, v, w, f)
		} else {
			idx, mach = hcmonge.RowMinima(hc.Cube, v, w, f)
		}
		fmt.Printf("charged time: %d, comm: %d values\n", mach.Time(), mach.Comm())
		return idx
	}
	fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
	os.Exit(2)
	return nil
}

func readMatrix(path string) (marray.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		row := make([]float64, len(fields))
		for i, fld := range fields {
			if strings.EqualFold(fld, "inf") {
				row[i] = math.Inf(1)
				continue
			}
			v, err := strconv.ParseFloat(fld, 64)
			if err != nil {
				return nil, fmt.Errorf("bad entry %q: %v", fld, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty matrix in %s", path)
	}
	return marray.FromRows(rows), nil
}
