// Command stredit computes edit distances with the repository's engines.
//
// Usage:
//
//	stredit [-engine dp|griddag|pram|wavefront|hypercube] [-script] SOURCE TARGET
//
// The dp engine is the Wagner-Fischer baseline; griddag runs the
// sequential strip-combination reduction; pram and hypercube run the
// parallel Monge engines on the simulated machines and report the charged
// step counts; wavefront runs the anti-diagonal parallel baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	hc "monge/internal/hypercube"
	"monge/internal/pram"
	"monge/internal/stredit"
)

var (
	engine = flag.String("engine", "dp", "dp, griddag, pram, wavefront, or hypercube")
	script = flag.Bool("script", false, "print an optimal edit script (dp engine)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: stredit [-engine dp|griddag|pram|wavefront|hypercube] [-script] SOURCE TARGET")
		os.Exit(2)
	}
	x, y := flag.Arg(0), flag.Arg(1)
	c := stredit.UnitCosts()
	switch *engine {
	case "dp":
		if *script {
			d, ops := stredit.DistanceWithScript(x, y, c)
			fmt.Printf("distance: %g\n", d)
			for _, op := range ops {
				switch op.Kind {
				case "del":
					fmt.Printf("  delete %q\n", op.X)
				case "ins":
					fmt.Printf("  insert %q\n", op.Y)
				case "sub":
					fmt.Printf("  substitute %q -> %q\n", op.X, op.Y)
				default:
					fmt.Printf("  keep %q\n", op.X)
				}
			}
			return
		}
		fmt.Printf("distance: %g\n", stredit.Distance(x, y, c))
	case "griddag":
		fmt.Printf("distance: %g\n", stredit.DistanceGridDAG(x, y, c))
	case "pram":
		mach := pram.New(pram.CRCW, len(x)*len(y)+1)
		d := stredit.DistancePRAM(mach, x, y, c)
		fmt.Printf("distance: %g\nparallel time: %d steps, work: %d (CRCW, %d processors)\n",
			d, mach.Time(), mach.Work(), mach.Procs())
	case "wavefront":
		mach := pram.New(pram.CRCW, len(x)+len(y)+1)
		d := stredit.DistanceWavefront(mach, x, y, c)
		fmt.Printf("distance: %g\nparallel time: %d steps (wavefront baseline)\n", d, mach.Time())
	case "hypercube":
		d, rep := stredit.DistanceHypercube(hc.Cube, x, y, c)
		fmt.Printf("distance: %g\nhypercube time: %d steps, %d values exchanged\n", d, rep.Time, rep.Comm)
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}
}
