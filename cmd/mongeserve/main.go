// Command mongeserve runs the load-disciplined JSON serving front end:
// a DriverPool behind admission control, exposed over HTTP.
//
//	mongeserve -addr :8080 -workers 4 -backend native \
//	    -max-inflight 64 -queue 128 -hedge-after 5ms
//
// Endpoints: POST /v1/query, GET /v1/stats, GET /debug/vars. See the
// README "Load discipline" section for the request schema and the
// typed-error-to-status mapping. SIGINT/SIGTERM drains the pool before
// exiting (in-flight queries finish; new submissions get 503).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"monge"
	"monge/internal/admit"
	"monge/internal/httpfront"
	"monge/internal/obs"
	"monge/internal/serve"
)

func main() { os.Exit(mainImpl(os.Args[1:], os.Stderr)) }

func mainImpl(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("mongeserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		backend     = fs.String("backend", "pram", "execution backend: pram or native")
		queue       = fs.Int("queue", 0, "queue depth (0 = 2x workers)")
		maxInflight = fs.Int("max-inflight", 0, "admission inflight cap (0 = 4x workers)")
		shedFrac    = fs.Float64("shed-fraction", 0, "shed priority<=0 work above this fraction of the cap (0 = 0.75)")
		tenantRate  = fs.Float64("tenant-rate", 0, "per-tenant quota tokens/sec (0 = no quotas)")
		tenantBurst = fs.Int("tenant-burst", 0, "per-tenant quota burst")
		retryMax    = fs.Int("retry-max", 1, "max attempts per request (1 = no retries)")
		hedgeAfter  = fs.Duration("hedge-after", 0, "issue a hedged attempt after this latency (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var be monge.Backend
	switch *backend {
	case "pram":
		be = monge.BackendPRAM
	case "native":
		be = monge.BackendNative
	default:
		fmt.Fprintf(stderr, "mongeserve: unknown -backend %q (want pram or native)\n", *backend)
		return 2
	}

	obs.SetGlobal(obs.NewObserver())
	pool := monge.NewDriverPoolOpts(monge.CRCW, monge.PoolOptions{
		Workers:    *workers,
		Backend:    be,
		QueueDepth: *queue,
		Admission: &serve.Admission{
			MaxInflight:  *maxInflight,
			ShedFraction: *shedFrac,
			TenantRate:   *tenantRate,
			TenantBurst:  *tenantBurst,
			RetryMax:     *retryMax,
			HedgeAfter:   *hedgeAfter,
		},
	})
	var front *admit.Front = pool.Front()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpfront.New(front).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stderr, "mongeserve: serving on %s (backend=%s workers=%d)\n", *addr, *backend, pool.Stats().Workers)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "mongeserve: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		fmt.Fprintln(stderr, "mongeserve: draining")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shctx)
		pool.Close()
	}
	return 0
}
