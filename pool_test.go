package monge

import (
	"errors"
	"math/rand"
	"testing"

	"monge/internal/marray"
)

// TestDriverPoolFacade covers the public serving surface: screened
// submissions, index-exact answers versus the sequential facade, the
// ordered stream, stats, and the closed-pool error.
func TestDriverPoolFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dp := NewDriverPool(CRCW, 2)

	a := marray.RandomMonge(rng, 20, 20)
	s := marray.RandomStaircaseMonge(rng, 12, 18)
	c := marray.RandomComposite(rng, 5, 5, 5)

	rt, err := dp.RowMinima(a)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dp.StaircaseRowMinima(s)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := dp.TubeMaxima(c)
	if err != nil {
		t.Fatal(err)
	}

	wantR := MustRowMinima(a)
	wantS := MustStaircaseRowMinima(s)
	wantTJ, wantTV := MustTubeMaxima(c)

	if res := rt.Result(); res.Err != nil {
		t.Fatalf("row ticket: %v", res.Err)
	} else {
		for i := range wantR {
			if res.Idx[i] != wantR[i] {
				t.Fatalf("row %d: pool %d, sequential %d", i, res.Idx[i], wantR[i])
			}
		}
	}
	if res := st.Result(); res.Err != nil {
		t.Fatalf("staircase ticket: %v", res.Err)
	} else {
		for i := range wantS {
			if res.Idx[i] != wantS[i] {
				t.Fatalf("staircase row %d: pool %d, sequential %d", i, res.Idx[i], wantS[i])
			}
		}
	}
	if res := tt.Result(); res.Err != nil {
		t.Fatalf("tube ticket: %v", res.Err)
	} else {
		for x := range wantTJ {
			for k := range wantTJ[x] {
				if res.TubeJ[x][k] != wantTJ[x][k] || res.TubeV[x][k] != wantTV[x][k] {
					t.Fatalf("tube (%d,%d): pool (%d,%g), sequential (%d,%g)", x, k,
						res.TubeJ[x][k], res.TubeV[x][k], wantTJ[x][k], wantTV[x][k])
				}
			}
		}
	}

	// The stream keeps submission order, and a non-Monge input yields an
	// in-band ErrNotMonge result at its position without derailing the
	// queries around it.
	bad := FromRows([][]float64{{9, 0}, {0, 9}})
	results := make([]PoolResult, 0, 3)
	for res := range dp.RowMinimaStream([]Matrix{a, bad, a}) {
		results = append(results, res)
	}
	if len(results) != 3 {
		t.Fatalf("stream yielded %d results, want 3", len(results))
	}
	if !errors.Is(results[1].Err, ErrNotMonge) {
		t.Fatalf("bad input err=%v, want ErrNotMonge", results[1].Err)
	}
	for _, k := range []int{0, 2} {
		if results[k].Err != nil {
			t.Fatalf("stream result %d: %v", k, results[k].Err)
		}
		for i := range wantR {
			if results[k].Idx[i] != wantR[i] {
				t.Fatalf("stream result %d row %d: %d, want %d", k, i, results[k].Idx[i], wantR[i])
			}
		}
	}

	dp.Wait()
	if stats := dp.Stats(); stats.Queries < 5 {
		t.Fatalf("stats counted %d queries, want >= 5", stats.Queries)
	}

	dp.Close()
	dp.Close()
	if _, err := dp.RowMinima(a); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after Close err=%v, want ErrPoolClosed", err)
	}
}

// TestDriverPoolScreens checks that structural validation happens on the
// calling goroutine: bad inputs are rejected before anything is
// enqueued.
func TestDriverPoolScreens(t *testing.T) {
	dp := NewDriverPool(CRCW, 1)
	defer dp.Close()
	bad := FromRows([][]float64{{9, 0}, {0, 9}})
	if _, err := dp.RowMinima(bad); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("RowMinima screen err=%v, want ErrNotMonge", err)
	}
	if _, err := dp.TubeMaxima(MustNewComposite(bad, bad)); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("TubeMaxima screen err=%v, want ErrNotMonge", err)
	}
	if st := dp.Stats(); st.Queries != 0 {
		t.Fatalf("screened-out inputs were served: %d queries", st.Queries)
	}
}
