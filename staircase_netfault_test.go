package monge

// Constant-degree network conformance for the staircase search (Theorem
// 3.3 machinery): the cube-connected-cycles and shuffle-exchange
// emulations must return exactly the CRCW PRAM result — leftmost minima,
// -1 on fully blocked rows — at conformance sizes, both fault-free and
// under link/stall/timeout injection. Only the charged counters may move
// under faults.

import (
	"fmt"
	"math/rand"
	"testing"

	"monge/internal/faults"
	"monge/internal/marray"
)

func TestStaircaseNetworkFaultConformance(t *testing.T) {
	const injSeed = 271828
	for _, n := range []int{64, 128} {
		for _, rate := range []float64{0, 0.05} {
			for _, nk := range []struct {
				name string
				kind NetworkKind
			}{{"ccc", CCC}, {"shuffle-exchange", ShuffleExchange}} {
				t.Run(fmt.Sprintf("%s/n=%d/rate=%g", nk.name, n, rate), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(n)))
					a := marray.RandomStaircaseMongeInt(rng, n, n, 3) // tie-rich
					want := MustStaircaseRowMinimaPRAM(NewPRAM(CRCW, n), a)

					v, w, f := netInputs(a)
					bound := make([]int, n)
					for i := range bound {
						bound[i] = marray.BoundaryOf(a, i)
					}
					inj := faults.New(injSeed, rate)
					mach := NewNetworkFor(nk.kind, n, n)
					mach.SetFaults(inj)
					got, err := StaircaseRowMinimaHypercube(mach, v, bound, w, f)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("row %d: %s says col %d, CRCW says %d", i, nk.name, got[i], want[i])
						}
					}
					if rate > 0 && faultedStats(inj) == 0 {
						t.Fatal("rate 0.05 delivered no faults; the run was not actually stressed")
					}
					if rate == 0 && faultedStats(inj) != 0 {
						t.Fatal("rate 0 delivered faults")
					}
				})
			}
		}
	}
}
