// Package monge is a Go library reproducing "Parallel Searching in
// Generalized Monge Arrays with Applications" (Aggarwal, Kravets, Park,
// Sen; SPAA 1990): sequential and parallel searching in Monge,
// staircase-Monge, and Monge-composite arrays, the parallel-machine
// substrates the paper evaluates on (CRCW/CREW PRAM, hypercube,
// cube-connected cycles, shuffle-exchange), and the paper's applications
// (geometric neighbor problems, rectangle problems, string editing, and
// Monge-powered dynamic programming).
//
// # Arrays
//
// Arrays are accessed through the Matrix interface with O(1) on-demand
// entry evaluation; see NewFunc, FromRows and the adapters (Transpose,
// Negate, ReverseCols). An m x n array A is Monge when
// A[i,j] + A[k,l] <= A[i,l] + A[k,j] for all i<k, j<l; staircase-Monge
// arrays additionally carry +Inf entries closed to the right and downward.
//
// # Searching
//
//	idx, err := RowMinima(a)          // SMAWK: leftmost row minima of a Monge array, Theta(m+n)
//	idx, err = RowMaxima(a)           // leftmost row maxima of an inverse-Monge array
//	idx, err = StaircaseRowMinima(a)  // leftmost finite row minima of a staircase-Monge array
//	tub, _, err := TubeMaxima(c)      // per-(i,k) best middle coordinate of a Monge-composite array
//
// The error-returning entry points screen their input with cheap sampled
// structural validators and return typed errors (ErrNotMonge,
// ErrDimensionMismatch, ...; match with errors.Is). The Must* variants
// (MustRowMinima etc.) skip validation and panic with the typed error on
// conditions detected during the computation — the zero-overhead form for
// inputs that are Monge by construction.
//
// Parallel counterparts run on simulated machines:
//
//	mach := NewPRAM(CRCW, n)
//	idx, err := RowMinimaPRAM(mach, a)         // O(lg n) charged time, Table 1.1
//	idx, err = StaircaseRowMinimaPRAM(mach, a) // Theorem 2.3, Table 1.2
//
// and on distributed-memory networks (hypercube, CCC, shuffle-exchange)
// via the hcmonge subpackage-backed entry points RowMinimaHypercube etc.
// (Theorems 3.2-3.4, Tables 1.1-1.3 "hypercube, etc." rows).
//
// The machines expose Time, Work, and communication counters; those
// counters are what the repository's benchmark harness compares against
// the paper's complexity tables (see EXPERIMENTS.md). They also carry the
// robustness hooks of this repository's runtime: SetContext attaches a
// context that cancels a long simulation at the next superstep (the entry
// point returns ErrCanceled), and SetFaults attaches a deterministic fault
// injector under which every algorithm still returns index-exact results
// (see the faults package and README's "Fault model & error contract").
package monge

import (
	"context"

	"monge/internal/admit"
	"monge/internal/batch"
	"monge/internal/core"
	"monge/internal/hcmonge"
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/mindex"
	"monge/internal/minplus"
	"monge/internal/pram"
	"monge/internal/serve"
	"monge/internal/smawk"
)

// Matrix is a read-only two-dimensional array with O(1) entry access.
type Matrix = marray.Matrix

// Staircase is a Matrix with an explicit blocked-column boundary per row.
type Staircase = marray.Staircase

// Dense is a materialized matrix.
type Dense = marray.Dense

// Composite is a p x q x r Monge-composite array c[i,j,k] = d[i,j]+e[j,k].
type Composite = marray.Composite

// Point is a planar point used by the geometric applications.
type Point = marray.Point

// NewFunc wraps an entry function as an implicit m x n Matrix.
func NewFunc(m, n int, f func(i, j int) float64) Matrix {
	return marray.Func{M: m, N: n, F: f}
}

// NewStair wraps an entry function and a per-row blocked boundary as an
// implicit staircase matrix (+Inf at and beyond the boundary).
func NewStair(m, n int, f func(i, j int) float64, bound func(i int) int) Staircase {
	return marray.StairFunc{M: m, N: n, F: f, Bound: bound}
}

// FromRows builds a Dense matrix from row slices.
func FromRows(rows [][]float64) *Dense { return marray.FromRows(rows) }

// NewComposite wraps the two factor matrices, checking that D's column
// count matches E's row count (ErrDimensionMismatch otherwise).
func NewComposite(d, e Matrix) (Composite, error) {
	var c Composite
	err := catchInto(func() { c = marray.NewComposite(d, e) })
	return c, err
}

// MustNewComposite is NewComposite panicking with the typed error on a
// dimension mismatch.
func MustNewComposite(d, e Matrix) Composite { return marray.NewComposite(d, e) }

// IsMonge reports whether a satisfies the Monge inequality.
func IsMonge(a Matrix) bool { return marray.IsMonge(a) }

// IsInverseMonge reports whether a satisfies the inverse-Monge inequality.
func IsInverseMonge(a Matrix) bool { return marray.IsInverseMonge(a) }

// IsStaircaseMonge reports whether a is staircase-Monge.
func IsStaircaseMonge(a Matrix) bool { return marray.IsStaircaseMonge(a) }

// CheckMonge verifies the Monge inequality on every adjacent 2x2 minor in
// O(m*n) and returns an error matching ErrNotMonge naming the first
// violated minor.
func CheckMonge(a Matrix) error { return marray.CheckMonge(a) }

// CheckInverseMonge is CheckMonge for the reversed inequality
// (ErrNotInverseMonge).
func CheckInverseMonge(a Matrix) error { return marray.CheckInverseMonge(a) }

// CheckStaircaseMonge verifies the staircase pattern (ErrNotStaircase) and
// the Monge inequality on finite adjacent minors (ErrNotMonge) in O(m*n).
func CheckStaircaseMonge(a Matrix) error { return marray.CheckStaircaseMonge(a) }

// catchInto runs f, converting a thrown merr failure into a returned
// error; it is the bridge between the internal panic transport and the
// public error-returning API.
func catchInto(f func()) (err error) {
	defer merr.Catch(&err)
	f()
	return nil
}

// Transpose returns the transposed view (Monge-ness is preserved).
func Transpose(a Matrix) Matrix { return marray.Transpose(a) }

// Negate returns the negated view (exchanges Monge and inverse-Monge, and
// the row-minima and row-maxima problems).
func Negate(a Matrix) Matrix { return marray.Negate(a) }

// ReverseCols returns the column-reversed view (exchanges Monge and
// inverse-Monge).
func ReverseCols(a Matrix) Matrix { return marray.ReverseCols(a) }

// ReverseRows returns the row-reversed view (exchanges Monge and
// inverse-Monge).
func ReverseRows(a Matrix) Matrix { return marray.ReverseRows(a) }

// --- Sequential searching -------------------------------------------------
//
// Each problem has two forms. The error-returning form screens the input
// with the corresponding sampled validator — O(m+n) deterministic probes
// that never reject a valid array — and recovers any typed condition the
// computation throws. The Must* form skips validation entirely (identical
// cost to the pre-error API) and panics with the typed error instead,
// for inputs that carry the structure by construction.

// RowMinima returns the leftmost row minima of a Monge array in
// Theta(m+n) time (SMAWK). Inputs failing the sampled Monge screen return
// ErrNotMonge.
func RowMinima(a Matrix) (idx []int, err error) {
	if err = marray.CheckMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = smawk.RowMinima(a) })
	return idx, err
}

// MustRowMinima is RowMinima without the validation screen.
func MustRowMinima(a Matrix) []int { return smawk.RowMinima(a) }

// RowMaxima returns the leftmost row maxima of an inverse-Monge array.
// Inputs failing the sampled inverse-Monge screen return
// ErrNotInverseMonge.
func RowMaxima(a Matrix) (idx []int, err error) {
	if err = marray.CheckInverseMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = smawk.RowMaxima(a) })
	return idx, err
}

// MustRowMaxima is RowMaxima without the validation screen.
func MustRowMaxima(a Matrix) []int { return smawk.RowMaxima(a) }

// MongeRowMaxima returns the leftmost row maxima of a Monge array (the
// Table 1.1 problem).
func MongeRowMaxima(a Matrix) (idx []int, err error) {
	if err = marray.CheckMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = smawk.MongeRowMaxima(a) })
	return idx, err
}

// MustMongeRowMaxima is MongeRowMaxima without the validation screen.
func MustMongeRowMaxima(a Matrix) []int { return smawk.MongeRowMaxima(a) }

// StaircaseRowMinima returns the leftmost finite row minima of a
// staircase-Monge array (-1 for fully blocked rows). Inputs failing the
// sampled staircase-Monge screen return ErrNotStaircase or ErrNotMonge.
func StaircaseRowMinima(a Matrix) (idx []int, err error) {
	if err = marray.CheckStaircaseMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = smawk.StaircaseRowMinima(a) })
	return idx, err
}

// MustStaircaseRowMinima is StaircaseRowMinima without the validation
// screen.
func MustStaircaseRowMinima(a Matrix) []int { return smawk.StaircaseRowMinima(a) }

// TubeMaxima returns, per (i,k) tube of a Monge-composite array, the
// smallest maximising middle coordinate and the maxima values. Factor
// matrices failing the sampled Monge screen return ErrNotMonge.
func TubeMaxima(c Composite) (idx [][]int, vals [][]float64, err error) {
	if err = marray.CheckMongeSampled(c.D); err != nil {
		return nil, nil, err
	}
	if err = marray.CheckMongeSampled(c.E); err != nil {
		return nil, nil, err
	}
	err = catchInto(func() { idx, vals = smawk.TubeMaxima(c) })
	return idx, vals, err
}

// MustTubeMaxima is TubeMaxima without the validation screen.
func MustTubeMaxima(c Composite) ([][]int, [][]float64) { return smawk.TubeMaxima(c) }

// TubeMinima is the minimisation analogue for inverse-Monge factors
// (ErrNotInverseMonge on the sampled screen).
func TubeMinima(c Composite) (idx [][]int, vals [][]float64, err error) {
	if err = marray.CheckInverseMongeSampled(c.D); err != nil {
		return nil, nil, err
	}
	if err = marray.CheckInverseMongeSampled(c.E); err != nil {
		return nil, nil, err
	}
	err = catchInto(func() { idx, vals = smawk.TubeMinima(c) })
	return idx, vals, err
}

// MustTubeMinima is TubeMinima without the validation screen.
func MustTubeMinima(c Composite) ([][]int, [][]float64) { return smawk.TubeMinima(c) }

// --- PRAM -----------------------------------------------------------------

// Mode selects the PRAM memory discipline.
type Mode = pram.Mode

// CRCW and CREW are the machine modes of the paper's tables.
const (
	CRCW = pram.CRCW
	CREW = pram.CREW
)

// PRAM is a simulated step-synchronous PRAM with time/work accounting.
type PRAM = pram.Machine

// NewPRAM returns a machine with the given mode and declared processor
// count (Brent scheduling of larger supersteps is automatic).
func NewPRAM(mode Mode, procs int) *PRAM { return pram.New(mode, procs) }

// RowMinimaPRAM computes leftmost row minima of a Monge array on mach:
// O(lg n) charged time with n processors on CRCW (Table 1.1 via negation).
// Besides the sampled ErrNotMonge screen, the error return surfaces every
// typed condition of the simulation: ErrCanceled when mach's context is
// cancelled, ErrWriteConflict on a CREW conflict, and so on.
func RowMinimaPRAM(mach *PRAM, a Matrix) (idx []int, err error) {
	if err = marray.CheckMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = core.RowMinima(mach, a) })
	return idx, err
}

// MustRowMinimaPRAM is RowMinimaPRAM without the validation screen,
// panicking with the typed error on simulation conditions.
func MustRowMinimaPRAM(mach *PRAM, a Matrix) []int { return core.RowMinima(mach, a) }

// RowMaximaPRAM computes leftmost row maxima of an inverse-Monge array.
func RowMaximaPRAM(mach *PRAM, a Matrix) (idx []int, err error) {
	if err = marray.CheckInverseMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = core.RowMaxima(mach, a) })
	return idx, err
}

// MustRowMaximaPRAM is RowMaximaPRAM without the validation screen.
func MustRowMaximaPRAM(mach *PRAM, a Matrix) []int { return core.RowMaxima(mach, a) }

// MongeRowMaximaPRAM computes leftmost row maxima of a Monge array
// (Table 1.1's problem statement).
func MongeRowMaximaPRAM(mach *PRAM, a Matrix) (idx []int, err error) {
	if err = marray.CheckMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = core.MongeRowMaxima(mach, a) })
	return idx, err
}

// MustMongeRowMaximaPRAM is MongeRowMaximaPRAM without the validation
// screen.
func MustMongeRowMaximaPRAM(mach *PRAM, a Matrix) []int { return core.MongeRowMaxima(mach, a) }

// StaircaseRowMinimaPRAM is Theorem 2.3: leftmost finite row minima of a
// staircase-Monge array, O(lg n) charged CRCW time with n processors
// (Table 1.2).
func StaircaseRowMinimaPRAM(mach *PRAM, a Matrix) (idx []int, err error) {
	if err = marray.CheckStaircaseMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = core.StaircaseRowMinima(mach, a) })
	return idx, err
}

// MustStaircaseRowMinimaPRAM is StaircaseRowMinimaPRAM without the
// validation screen.
func MustStaircaseRowMinimaPRAM(mach *PRAM, a Matrix) []int {
	return core.StaircaseRowMinima(mach, a)
}

// TubeMaximaPRAM solves the tube-maxima problem on mach (Table 1.3).
func TubeMaximaPRAM(mach *PRAM, c Composite) (idx [][]int, vals [][]float64, err error) {
	if err = marray.CheckMongeSampled(c.D); err != nil {
		return nil, nil, err
	}
	if err = marray.CheckMongeSampled(c.E); err != nil {
		return nil, nil, err
	}
	err = catchInto(func() { idx, vals = core.TubeMaxima(mach, c) })
	return idx, vals, err
}

// MustTubeMaximaPRAM is TubeMaximaPRAM without the validation screen.
func MustTubeMaximaPRAM(mach *PRAM, c Composite) ([][]int, [][]float64) {
	return core.TubeMaxima(mach, c)
}

// TubeMinimaPRAM is the minimisation analogue for inverse-Monge factors.
func TubeMinimaPRAM(mach *PRAM, c Composite) (idx [][]int, vals [][]float64, err error) {
	if err = marray.CheckInverseMongeSampled(c.D); err != nil {
		return nil, nil, err
	}
	if err = marray.CheckInverseMongeSampled(c.E); err != nil {
		return nil, nil, err
	}
	err = catchInto(func() { idx, vals = core.TubeMinima(mach, c) })
	return idx, vals, err
}

// MustTubeMinimaPRAM is TubeMinimaPRAM without the validation screen.
func MustTubeMinimaPRAM(mach *PRAM, c Composite) ([][]int, [][]float64) {
	return core.TubeMinima(mach, c)
}

// --- Batched queries --------------------------------------------------------

// BatchDriver amortizes simulated-machine construction across many PRAM
// searches: it keeps one machine per shape class (distinct processor
// count) and routes every query of that shape through it, so the
// machine's scratch arenas reach steady state once and later same-shape
// queries run essentially allocation-free. Results are index-exact with
// the corresponding one-at-a-time entry points.
//
// A BatchDriver is not goroutine-safe. Call Close when the batch is done
// to release the retained machines' arenas; the driver is reusable
// afterwards.
type BatchDriver struct{ d *batch.Driver }

// NewBatchDriver returns a driver whose machines use the given PRAM mode.
func NewBatchDriver(mode Mode) *BatchDriver { return &BatchDriver{d: batch.New(mode)} }

// Backend selects the execution engine of a BatchDriver or DriverPool:
// BackendPRAM (the default) answers queries on the simulated machines of
// the paper's models, BackendNative directly on goroutines with no
// simulation overhead. Answers are index-exact across backends — the
// differential conformance suites enforce it — so the choice trades the
// simulator's charged-cost observability and fault injection for raw
// serving speed. See README "Execution backends".
type Backend = batch.Backend

const (
	// BackendPRAM serves queries on the simulated PRAM machines.
	BackendPRAM = batch.BackendPRAM
	// BackendNative serves queries on native goroutine kernels.
	BackendNative = batch.BackendNative
)

// NewBatchDriverBackend returns a driver routing queries to the given
// backend. For BackendPRAM it is NewBatchDriver; for BackendNative the
// driver runs internal/native kernels and retains no machines. To select
// the backend of a DriverPool, set PoolOptions.Backend.
func NewBatchDriverBackend(mode Mode, be Backend) *BatchDriver {
	return &BatchDriver{d: batch.NewWithBackend(mode, be)}
}

// SetContext attaches ctx to every machine the driver holds or later
// creates; cancellation aborts the running query with ErrCanceled.
func (b *BatchDriver) SetContext(ctx context.Context) { b.d.SetContext(ctx) }

// RowMinima is RowMinimaPRAM on the driver's machine for a's shape class.
func (b *BatchDriver) RowMinima(a Matrix) (idx []int, err error) {
	if err = marray.CheckMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = b.d.RowMinima(a) })
	return idx, err
}

// RowMinimaBatch answers every query through the per-shape machines.
// All inputs are screened before any query runs, so a bad array in the
// middle of the batch cannot leave half the answers computed.
func (b *BatchDriver) RowMinimaBatch(as []Matrix) (idx [][]int, err error) {
	for _, a := range as {
		if err = marray.CheckMongeSampled(a); err != nil {
			return nil, err
		}
	}
	err = catchInto(func() { idx = b.d.RowMinimaBatch(as) })
	return idx, err
}

// StaircaseRowMinima is StaircaseRowMinimaPRAM on the driver's machine
// for a's shape class (or the native staircase kernel on BackendNative).
func (b *BatchDriver) StaircaseRowMinima(a Matrix) (idx []int, err error) {
	if err = marray.CheckStaircaseMongeSampled(a); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = b.d.StaircaseRowMinima(a) })
	return idx, err
}

// TubeMaxima is TubeMaximaPRAM on the driver's machine for c's shape
// class (or the native tube kernel on BackendNative).
func (b *BatchDriver) TubeMaxima(c Composite) (idx [][]int, vals [][]float64, err error) {
	if err = marray.CheckMongeSampled(c.D); err != nil {
		return nil, nil, err
	}
	if err = marray.CheckMongeSampled(c.E); err != nil {
		return nil, nil, err
	}
	err = catchInto(func() { idx, vals = b.d.TubeMaxima(c) })
	return idx, vals, err
}

// TubeMaximaBatch is TubeMaximaPRAM for a batch of Monge-composite
// arrays, one retained machine per shape class.
func (b *BatchDriver) TubeMaximaBatch(cs []Composite) (idx [][][]int, vals [][][]float64, err error) {
	for _, c := range cs {
		if err = marray.CheckMongeSampled(c.D); err != nil {
			return nil, nil, err
		}
		if err = marray.CheckMongeSampled(c.E); err != nil {
			return nil, nil, err
		}
	}
	err = catchInto(func() { idx, vals = b.d.TubeMaximaBatch(cs) })
	return idx, vals, err
}

// Close resets the retained machines, releasing their scratch arenas.
// Close is idempotent; the driver is reusable afterwards.
func (b *BatchDriver) Close() { b.d.Close() }

// QueryStats is the simulated cost one driver query charged to its
// shape-class machine (the per-query diff of the cumulative counters).
type QueryStats = batch.QueryStats

// RowMinimaStats is RowMinima plus the query's charged cost.
func (b *BatchDriver) RowMinimaStats(a Matrix) (idx []int, st QueryStats, err error) {
	if err = marray.CheckMongeSampled(a); err != nil {
		return nil, QueryStats{}, err
	}
	err = catchInto(func() { idx, st = b.d.RowMinimaStats(a) })
	return idx, st, err
}

// --- Monge (min,+) multiplication and M-link paths --------------------------

// MinPlusProduct is the run-sparse result of a Monge (min,+)
// multiplication C = A ⊗ B, C[i][k] = min_j A[i][j] + B[j][k]: it
// stores only the columns where the witness (the argmin row of B)
// changes, recomputes entries on demand, and is itself a Matrix — so
// products chain without ever materializing an n x n value array. See
// internal/minplus for the representation.
type MinPlusProduct = minplus.Product

// LinkWeight is a link weight w(i, j) for 0 <= i < j <= n over the
// complete DAG on nodes 0..n, required to satisfy the Monge (concave
// quadrangle) inequality w(i,j) + w(i',j') <= w(i,j') + w(i',j) for
// i < i' < j < j'.
type LinkWeight = minplus.Weight

// minPlusScreen validates one (min,+) factor with the sampled
// validator matching its blocking structure: staircase-Monge for
// factors carrying blocked entries (probed like BuildIndex), plain
// Monge otherwise.
func minPlusScreen(a Matrix) error {
	in := stairProbe(a)
	if _, stair := in.(Staircase); stair {
		return marray.CheckStaircaseMongeSampled(in)
	}
	return marray.CheckMongeSampled(in)
}

// checkLinkWeightSampled screens an M-link weight with O(n) deterministic
// adjacent-quadruple probes of the concave quadrangle inequality; like
// the matrix screens it never rejects a valid weight.
func checkLinkWeightSampled(n int, w LinkWeight) error {
	if w == nil {
		return merr.Errorf(merr.ErrDimensionMismatch, "monge: nil link weight")
	}
	step := n / 32
	if step < 1 {
		step = 1
	}
	for i := 0; i+3 <= n; i += step {
		for _, j := range [3]int{i + 2, (i + 2 + n) / 2, n - 1} {
			if j < i+2 || j+1 > n {
				continue
			}
			if w(i, j)+w(i+1, j+1) > w(i, j+1)+w(i+1, j) {
				return merr.Errorf(merr.ErrNotMonge,
					"monge: link weight violates the Monge inequality at quadruple (%d,%d,%d,%d)", i, i+1, j, j+1)
			}
		}
	}
	return nil
}

// MinPlus returns the Monge (min,+) product A ⊗ B — A m x q, B q x r,
// both Monge or staircase-Monge — as a run-sparse MinPlusProduct, in
// O(m(q+r)) evaluations via batched SMAWK row-minima queries against
// the naive O(mqr). Factors failing the sampled screens return
// ErrNotMonge / ErrNotStaircase; shape mismatches ErrDimensionMismatch.
func MinPlus(a, b Matrix) (p *MinPlusProduct, err error) {
	if err = minPlusScreen(a); err != nil {
		return nil, err
	}
	if err = minPlusScreen(b); err != nil {
		return nil, err
	}
	err = catchInto(func() { p = MustMinPlus(a, b) })
	return p, err
}

// MustMinPlus is MinPlus without the validation screens, panicking with
// the typed error on conditions detected during the computation.
func MustMinPlus(a, b Matrix) *MinPlusProduct {
	e := minplus.New(batch.BackendNative)
	defer e.Close()
	return e.Multiply(a, b)
}

// MLinkPath returns the cost of the cheapest path from node 0 to node
// n using exactly M forward links under the Monge weight w, and its
// node sequence (length M+1). The solver picks between repeated
// ⊗-squaring of the link matrix and a Lagrangian (λ-parametrized)
// search over the least-weight subsequence DP; both are exact. No
// M-link path (M > n) yields (+Inf, nil, nil); a weight failing the
// sampled quadrangle screen returns ErrNotMonge.
func MLinkPath(n int, w LinkWeight, M int) (cost float64, path []int, err error) {
	if err = checkLinkWeightSampled(n, w); err != nil {
		return 0, nil, err
	}
	err = catchInto(func() { cost, path = MustMLinkPath(n, w, M) })
	if err != nil {
		return 0, nil, err
	}
	return cost, path, nil
}

// MustMLinkPath is MLinkPath without the validation screen.
func MustMLinkPath(n int, w LinkWeight, M int) (float64, []int) {
	e := minplus.New(batch.BackendNative)
	defer e.Close()
	return e.MLinkPath(n, w, M)
}

// --- Concurrent serving -----------------------------------------------------

// ErrPoolClosed reports a DriverPool submission after Close.
var ErrPoolClosed = serve.ErrClosed

// ErrOverloaded reports a submission rejected by load discipline: full
// queue, inflight cap, shed low-priority work, or an exhausted tenant
// quota. Match with errors.Is; the message names the specific gate.
var ErrOverloaded = serve.ErrOverloaded

// ErrDeadlineExceeded reports a query whose deadline passed before (or
// while) it was evaluated. It also matches context.DeadlineExceeded.
var ErrDeadlineExceeded = serve.ErrDeadlineExceeded

// PoolResult is one served query's answer; see DriverPool.
type PoolResult = serve.Result

// PoolTicket is the future a DriverPool submission returns.
type PoolTicket = serve.Ticket

// PoolStats is a snapshot of a DriverPool's serving counters.
type PoolStats = serve.Stats

// PoolOptions configures a DriverPool; the zero value means GOMAXPROCS
// workers, background context, inherited fault injector, default-sized
// tile caches, fail-fast default admission. Set Admission to shape the
// load-discipline policy (inflight cap, shedding, tenant quotas,
// retries, hedging); see README "Load discipline".
type PoolOptions = serve.Options

// PoolAdmission is the load-discipline policy block of PoolOptions.
type PoolAdmission = serve.Admission

// PoolRequest is one admitted request: the query's input plus admission
// metadata (tenant for quotas, priority for shedding order).
type PoolRequest = admit.Request

// FrontStats snapshots a pool front's admission counters.
type FrontStats = admit.Stats

// DriverPool is the goroutine-safe counterpart of BatchDriver: it
// shards a stream of row-minima / staircase / tube queries across
// worker goroutines, each owning a private BatchDriver-equivalent (so
// the per-shape machine arenas are never shared) plus tile caches that
// memoize implicit-matrix entries within each query. Results are
// index-exact with the sequential entry points. Submissions may come
// from any number of goroutines; answers arrive on per-query tickets.
//
// Use a BatchDriver for a single-goroutine batch; use a DriverPool when
// queries arrive concurrently or you want to spend multiple cores on a
// stream of many small queries. See README "Serving queries
// concurrently" for the decision table.
type DriverPool struct {
	p *serve.Pool
	f *admit.Front
}

// NewDriverPool returns a running pool with the given PRAM mode and
// worker count (workers <= 0 means GOMAXPROCS).
func NewDriverPool(mode Mode, workers int) *DriverPool {
	return NewDriverPoolOpts(mode, PoolOptions{Workers: workers})
}

// NewDriverPoolContext is NewDriverPool with a pool context: cancelling
// ctx aborts in-flight and queued queries, whose tickets then resolve
// with ErrCanceled.
func NewDriverPoolContext(ctx context.Context, mode Mode, workers int) *DriverPool {
	return NewDriverPoolOpts(mode, PoolOptions{Workers: workers, Context: ctx})
}

// NewDriverPoolOpts is the fully configurable constructor. The pool
// always carries an admission front (Do, Front); with opt.Admission nil
// the front applies the zero policy — fail-fast rejection at the
// default inflight cap, no quotas, no retries, no hedging.
func NewDriverPoolOpts(mode Mode, opt PoolOptions) *DriverPool {
	p := serve.New(mode, opt)
	return &DriverPool{p: p, f: admit.New(p, opt.Admission)}
}

// RowMinima submits a row-minima query, returning its ticket. The
// sampled Monge screen runs on the calling goroutine before anything is
// enqueued, so structural errors surface immediately, not on the ticket.
func (dp *DriverPool) RowMinima(a Matrix) (*PoolTicket, error) {
	if err := marray.CheckMongeSampled(a); err != nil {
		return nil, err
	}
	return dp.p.Submit(serve.Query{Kind: serve.RowMinima, A: a})
}

// RowMinimaCtx is RowMinima with a per-query context: if ctx is done
// before the query is evaluated the ticket resolves with
// ErrDeadlineExceeded (deadline) or ErrCanceled (cancellation) instead
// of being computed, and a deadline firing mid-evaluation aborts the
// simulation at its next superstep.
func (dp *DriverPool) RowMinimaCtx(ctx context.Context, a Matrix) (*PoolTicket, error) {
	if err := marray.CheckMongeSampled(a); err != nil {
		return nil, err
	}
	return dp.p.SubmitCtx(ctx, serve.Query{Kind: serve.RowMinima, A: a})
}

// StaircaseRowMinima submits a staircase row-minima query (sampled
// staircase-Monge screen on the calling goroutine).
func (dp *DriverPool) StaircaseRowMinima(a Matrix) (*PoolTicket, error) {
	if err := marray.CheckStaircaseMongeSampled(a); err != nil {
		return nil, err
	}
	return dp.p.Submit(serve.Query{Kind: serve.StaircaseRowMinima, A: a})
}

// StaircaseRowMinimaCtx is StaircaseRowMinima with a per-query context;
// see RowMinimaCtx for the deadline semantics.
func (dp *DriverPool) StaircaseRowMinimaCtx(ctx context.Context, a Matrix) (*PoolTicket, error) {
	if err := marray.CheckStaircaseMongeSampled(a); err != nil {
		return nil, err
	}
	return dp.p.SubmitCtx(ctx, serve.Query{Kind: serve.StaircaseRowMinima, A: a})
}

// TubeMaxima submits a tube-maxima query (sampled Monge screens on both
// factors, on the calling goroutine).
func (dp *DriverPool) TubeMaxima(c Composite) (*PoolTicket, error) {
	if err := marray.CheckMongeSampled(c.D); err != nil {
		return nil, err
	}
	if err := marray.CheckMongeSampled(c.E); err != nil {
		return nil, err
	}
	return dp.p.Submit(serve.Query{Kind: serve.TubeMaxima, C: c})
}

// TubeMaximaCtx is TubeMaxima with a per-query context; see
// RowMinimaCtx for the deadline semantics.
func (dp *DriverPool) TubeMaximaCtx(ctx context.Context, c Composite) (*PoolTicket, error) {
	if err := marray.CheckMongeSampled(c.D); err != nil {
		return nil, err
	}
	if err := marray.CheckMongeSampled(c.E); err != nil {
		return nil, err
	}
	return dp.p.SubmitCtx(ctx, serve.Query{Kind: serve.TubeMaxima, C: c})
}

// Index is a prebuilt submatrix max/min query structure over one Monge
// (or staircase-Monge) matrix: near-linear preprocessing, then cheap
// point/range queries answered from stored envelopes without re-running
// SMAWK. Safe for concurrent queries after Build.
type Index = mindex.Index

// IndexPos is a submatrix-maximum answer: position plus value, with the
// lexicographically smallest (row, col) among tied maxima. A fully
// blocked staircase rectangle answers {-1, -1, -Inf}.
type IndexPos = mindex.Pos

// IndexOpts configures BuildIndexOpts; the zero value is fine.
type IndexOpts = mindex.Opts

// BuildIndex preprocesses a into a submatrix-maximum index. The input
// is screened with the sampled validator (staircase-Monge when a
// carries the Staircase interface, plain Monge otherwise) before any
// preprocessing work.
func BuildIndex(a Matrix) (*Index, error) {
	return BuildIndexOpts(a, IndexOpts{})
}

// BuildIndexOpts is BuildIndex with explicit options (tile-cache size
// for implicit inputs, fault injector for the build path). Inputs that
// do not carry the Staircase interface are probed for +Inf blocking, so
// dense staircase matrices build the staircase solvers too.
func BuildIndexOpts(a Matrix, opt IndexOpts) (ix *Index, err error) {
	in := stairProbe(a)
	if _, stair := in.(Staircase); stair {
		err = marray.CheckStaircaseMongeSampled(in)
	} else {
		err = marray.CheckMongeSampled(in)
	}
	if err != nil {
		return nil, err
	}
	err = catchInto(func() { ix = mindex.Build(in, opt) })
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// stairProbe returns a as-is when it already implements Staircase or
// carries no blocked entries; otherwise (a dense staircase matrix) it
// probes every row's blocked boundary and wraps a as a StairFunc, so
// the staircase validators and solvers see the structure they expect.
func stairProbe(a Matrix) Matrix {
	if _, ok := a.(Staircase); ok || a.Rows() <= 0 || a.Cols() <= 0 {
		return a
	}
	m, n := a.Rows(), a.Cols()
	bound := make([]int, m)
	blocked := false
	for i := range bound {
		bound[i] = marray.BoundaryOf(a, i)
		if bound[i] < n {
			blocked = true
		}
	}
	if !blocked {
		return a
	}
	return marray.StairFunc{M: m, N: n, F: a.At, Bound: func(i int) int { return bound[i] }}
}

// IndexSubmatrixMax answers a submatrix-maximum query on the calling
// goroutine, without going through a pool.
func IndexSubmatrixMax(ix *Index, r1, r2, c1, c2 int) (pos IndexPos, err error) {
	if err = checkIndex(ix, func() error { return ix.CheckSubmatrix(r1, r2, c1, c2) }); err != nil {
		return IndexPos{}, err
	}
	err = catchInto(func() { pos = ix.SubmatrixMax(r1, r2, c1, c2) })
	return pos, err
}

// IndexRangeRowMinima answers a row-range minima query on the calling
// goroutine, without going through a pool.
func IndexRangeRowMinima(ix *Index, r1, r2 int) (idx []int, err error) {
	if err = checkIndex(ix, func() error { return ix.CheckRowRange(r1, r2) }); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = ix.RangeRowMinima(r1, r2) })
	return idx, err
}

// checkIndex guards the nil index before running the range check.
func checkIndex(ix *Index, rangeCheck func() error) error {
	if ix == nil {
		return merr.Errorf(merr.ErrDimensionMismatch, "monge: nil index")
	}
	return rangeCheck()
}

// SubmatrixMax submits a submatrix-maximum query against a prebuilt
// index. The range check runs on the calling goroutine, so malformed
// rectangles surface immediately, not on the ticket.
func (dp *DriverPool) SubmatrixMax(ix *Index, r1, r2, c1, c2 int) (*PoolTicket, error) {
	if err := checkIndex(ix, func() error { return ix.CheckSubmatrix(r1, r2, c1, c2) }); err != nil {
		return nil, err
	}
	return dp.p.Submit(serve.Query{Kind: serve.SubmatrixMax, Index: ix, R1: r1, R2: r2, C1: c1, C2: c2})
}

// SubmatrixMaxCtx is SubmatrixMax with a per-query context; see
// RowMinimaCtx for the deadline semantics.
func (dp *DriverPool) SubmatrixMaxCtx(ctx context.Context, ix *Index, r1, r2, c1, c2 int) (*PoolTicket, error) {
	if err := checkIndex(ix, func() error { return ix.CheckSubmatrix(r1, r2, c1, c2) }); err != nil {
		return nil, err
	}
	return dp.p.SubmitCtx(ctx, serve.Query{Kind: serve.SubmatrixMax, Index: ix, R1: r1, R2: r2, C1: c1, C2: c2})
}

// RangeRowMinima submits a row-range minima query against a prebuilt
// index (range check on the calling goroutine).
func (dp *DriverPool) RangeRowMinima(ix *Index, r1, r2 int) (*PoolTicket, error) {
	if err := checkIndex(ix, func() error { return ix.CheckRowRange(r1, r2) }); err != nil {
		return nil, err
	}
	return dp.p.Submit(serve.Query{Kind: serve.RangeRowMinima, Index: ix, R1: r1, R2: r2})
}

// RangeRowMinimaCtx is RangeRowMinima with a per-query context; see
// RowMinimaCtx for the deadline semantics.
func (dp *DriverPool) RangeRowMinimaCtx(ctx context.Context, ix *Index, r1, r2 int) (*PoolTicket, error) {
	if err := checkIndex(ix, func() error { return ix.CheckRowRange(r1, r2) }); err != nil {
		return nil, err
	}
	return dp.p.SubmitCtx(ctx, serve.Query{Kind: serve.RangeRowMinima, Index: ix, R1: r1, R2: r2})
}

// MinPlus submits a Monge (min,+) multiplication query; the ticket's
// result carries the run-sparse product in Prod. The sampled screens
// run on the calling goroutine, like every Submit-style method.
func (dp *DriverPool) MinPlus(a, b Matrix) (*PoolTicket, error) {
	if err := minPlusScreen(a); err != nil {
		return nil, err
	}
	if err := minPlusScreen(b); err != nil {
		return nil, err
	}
	return dp.p.Submit(serve.Query{Kind: serve.MinPlus, A: a, B: b})
}

// MinPlusCtx is MinPlus with a per-query context; see RowMinimaCtx for
// the deadline semantics.
func (dp *DriverPool) MinPlusCtx(ctx context.Context, a, b Matrix) (*PoolTicket, error) {
	if err := minPlusScreen(a); err != nil {
		return nil, err
	}
	if err := minPlusScreen(b); err != nil {
		return nil, err
	}
	return dp.p.SubmitCtx(ctx, serve.Query{Kind: serve.MinPlus, A: a, B: b})
}

// MLinkPath submits an M-link path query; the ticket's result carries
// the cost in Cost and the node sequence in Idx (nil when no M-link
// path exists).
func (dp *DriverPool) MLinkPath(n int, w LinkWeight, M int) (*PoolTicket, error) {
	if err := checkLinkWeightSampled(n, w); err != nil {
		return nil, err
	}
	return dp.p.Submit(serve.Query{Kind: serve.MLinkPath, W: w, N: n, M: M})
}

// MLinkPathCtx is MLinkPath with a per-query context; see RowMinimaCtx
// for the deadline semantics.
func (dp *DriverPool) MLinkPathCtx(ctx context.Context, n int, w LinkWeight, M int) (*PoolTicket, error) {
	if err := checkLinkWeightSampled(n, w); err != nil {
		return nil, err
	}
	return dp.p.SubmitCtx(ctx, serve.Query{Kind: serve.MLinkPath, W: w, N: n, M: M})
}

// Do runs one request through the pool's full load-discipline
// lifecycle: admission gates (inflight cap, shedding, tenant quota),
// the deadline carried by ctx, budgeted retries, and hedging when
// configured. The result either carries an index-exact answer or a
// typed error (ErrOverloaded, ErrDeadlineExceeded, ErrCanceled,
// ErrPoolClosed, or a structural error). The input is screened with the
// sampled validator before admission, like the Submit-style methods.
func (dp *DriverPool) Do(ctx context.Context, req PoolRequest) PoolResult {
	switch req.Query.Kind {
	case serve.RowMinima:
		if err := marray.CheckMongeSampled(req.Query.A); err != nil {
			return PoolResult{Err: err}
		}
	case serve.StaircaseRowMinima:
		if err := marray.CheckStaircaseMongeSampled(req.Query.A); err != nil {
			return PoolResult{Err: err}
		}
	case serve.TubeMaxima:
		if err := marray.CheckMongeSampled(req.Query.C.D); err != nil {
			return PoolResult{Err: err}
		}
		if err := marray.CheckMongeSampled(req.Query.C.E); err != nil {
			return PoolResult{Err: err}
		}
	case serve.SubmatrixMax:
		q := req.Query
		if err := checkIndex(q.Index, func() error { return q.Index.CheckSubmatrix(q.R1, q.R2, q.C1, q.C2) }); err != nil {
			return PoolResult{Err: err}
		}
	case serve.RangeRowMinima:
		q := req.Query
		if err := checkIndex(q.Index, func() error { return q.Index.CheckRowRange(q.R1, q.R2) }); err != nil {
			return PoolResult{Err: err}
		}
	case serve.MinPlus:
		if err := minPlusScreen(req.Query.A); err != nil {
			return PoolResult{Err: err}
		}
		if err := minPlusScreen(req.Query.B); err != nil {
			return PoolResult{Err: err}
		}
	case serve.MLinkPath:
		if err := checkLinkWeightSampled(req.Query.N, req.Query.W); err != nil {
			return PoolResult{Err: err}
		}
	}
	return dp.f.Do(ctx, req)
}

// RowMinimaRequest builds the PoolRequest for a row-minima Do call.
func RowMinimaRequest(a Matrix) PoolRequest {
	return PoolRequest{Query: serve.Query{Kind: serve.RowMinima, A: a}}
}

// StaircaseRowMinimaRequest builds the PoolRequest for a staircase
// row-minima Do call.
func StaircaseRowMinimaRequest(a Matrix) PoolRequest {
	return PoolRequest{Query: serve.Query{Kind: serve.StaircaseRowMinima, A: a}}
}

// TubeMaximaRequest builds the PoolRequest for a tube-maxima Do call.
func TubeMaximaRequest(c Composite) PoolRequest {
	return PoolRequest{Query: serve.Query{Kind: serve.TubeMaxima, C: c}}
}

// SubmatrixMaxRequest builds the PoolRequest for a submatrix-maximum Do
// call against a prebuilt index.
func SubmatrixMaxRequest(ix *Index, r1, r2, c1, c2 int) PoolRequest {
	return PoolRequest{Query: serve.Query{Kind: serve.SubmatrixMax, Index: ix, R1: r1, R2: r2, C1: c1, C2: c2}}
}

// RangeRowMinimaRequest builds the PoolRequest for a row-range minima Do
// call against a prebuilt index.
func RangeRowMinimaRequest(ix *Index, r1, r2 int) PoolRequest {
	return PoolRequest{Query: serve.Query{Kind: serve.RangeRowMinima, Index: ix, R1: r1, R2: r2}}
}

// MinPlusRequest builds the PoolRequest for a (min,+) multiplication
// Do call.
func MinPlusRequest(a, b Matrix) PoolRequest {
	return PoolRequest{Query: serve.Query{Kind: serve.MinPlus, A: a, B: b}}
}

// MLinkPathRequest builds the PoolRequest for an M-link path Do call.
func MLinkPathRequest(n int, w LinkWeight, M int) PoolRequest {
	return PoolRequest{Query: serve.Query{Kind: serve.MLinkPath, W: w, N: n, M: M}}
}

// Front exposes the pool's admission front for callers that want the
// lower-level Admit/Do/Stats API directly.
func (dp *DriverPool) Front() *admit.Front { return dp.f }

// FrontStats snapshots the admission counters (admitted, rejected,
// shed, hedged, retried, deadline-expired, inflight).
func (dp *DriverPool) FrontStats() FrontStats { return dp.f.Stats() }

// RowMinimaStream submits one row-minima query per matrix and returns a
// channel yielding results in submission order, closed after the last.
// Matrices failing the sampled screen, and submissions after Close,
// yield in-band results with Err set so the channel stays aligned with
// the input slice.
func (dp *DriverPool) RowMinimaStream(as []Matrix) <-chan PoolResult {
	// The screens run here, synchronously; failing inputs are dropped
	// from the submitted slice and their errors re-inserted in order.
	errs := make([]error, len(as))
	ok := make([]Matrix, 0, len(as))
	for i, a := range as {
		if err := marray.CheckMongeSampled(a); err != nil {
			errs[i] = err
		} else {
			ok = append(ok, a)
		}
	}
	inner := dp.p.RowMinimaStream(ok)
	out := make(chan PoolResult)
	go func() {
		defer close(out)
		for i := range as {
			if errs[i] != nil {
				out <- PoolResult{Err: errs[i]}
				continue
			}
			out <- <-inner
		}
	}()
	return out
}

// Wait blocks until every query submitted so far has resolved; the pool
// keeps serving afterwards.
func (dp *DriverPool) Wait() { dp.p.Wait() }

// Stats snapshots the pool's serving counters (queries per shard,
// imbalance, tile-cache hits/misses).
func (dp *DriverPool) Stats() PoolStats { return dp.p.Stats() }

// Close drains pending queries, stops the worker goroutines, and
// releases their machines. Idempotent and safe to call concurrently;
// submissions after Close return ErrPoolClosed. While draining,
// Stats().State reports "draining"; once Close returns it reports
// "closed" and the admission front's watcher goroutines have exited.
func (dp *DriverPool) Close() {
	dp.p.Close()
	dp.f.Drain()
}

// --- Hypercube and constant-degree networks -------------------------------

// NetworkKind selects the distributed-memory network.
type NetworkKind = hc.Kind

// Hypercube, CCC and ShuffleExchange are the network kinds of Section 3.
const (
	Hypercube       = hc.Cube
	CCC             = hc.CCC
	ShuffleExchange = hc.Shuffle
)

// Network is a simulated distributed-memory machine.
type Network = hc.Machine

// NewNetworkFor returns a machine of the given kind sized for an m x n
// search, for callers that want to attach a context (Network.SetContext),
// fault injector (Network.SetFaults), or instrumentation sink before
// passing it to the *Hypercube entry points.
func NewNetworkFor(kind NetworkKind, m, n int) *Network {
	return hcmonge.MachineFor(kind, m, n)
}

// RowMinimaHypercube computes leftmost row minima of the Monge array
// a[i,j] = f(v[i], w[j]) in the paper's distributed input model (processor
// i holds v[i] and w[i]) on mach (use NewNetworkFor, or any machine at
// least that large — ErrMachineTooSmall otherwise), returning the answers
// (Theorem 3.2's time bound; see EXPERIMENTS.md for the processor-count
// deviation). The error surfaces the sampled ErrNotMonge screen and every
// typed simulation condition, including ErrCanceled from mach's context.
func RowMinimaHypercube(mach *Network, v, w []float64, f func(vi, wj float64) float64) (idx []int, err error) {
	if err = marray.CheckMongeSampled(distArray(v, w, f)); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = hcmonge.RowMinimaOn(mach, v, w, f) })
	return idx, err
}

// MustRowMinimaHypercube runs on a freshly sized machine with no
// validation screen, returning the machine for counter inspection (the
// pre-error-API form).
func MustRowMinimaHypercube(kind NetworkKind, v, w []float64, f func(vi, wj float64) float64) ([]int, *Network) {
	return hcmonge.RowMinima(kind, v, w, f)
}

// MongeRowMaximaHypercube is the Table 1.1 row-maxima problem on the
// distributed networks.
func MongeRowMaximaHypercube(mach *Network, v, w []float64, f func(vi, wj float64) float64) (idx []int, err error) {
	if err = marray.CheckMongeSampled(distArray(v, w, f)); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = hcmonge.MongeRowMaximaOn(mach, v, w, f) })
	return idx, err
}

// MustMongeRowMaximaHypercube runs on a freshly sized machine with no
// validation screen.
func MustMongeRowMaximaHypercube(kind NetworkKind, v, w []float64, f func(vi, wj float64) float64) ([]int, *Network) {
	return hcmonge.MongeRowMaxima(kind, v, w, f)
}

// StaircaseRowMinimaHypercube is Theorem 3.3: staircase-Monge row minima
// on the distributed networks; bound[i] is row i's first blocked column
// (nonincreasing, ErrNotStaircase otherwise).
func StaircaseRowMinimaHypercube(mach *Network, v []float64, bound []int, w []float64, f func(vi, wj float64) float64) (idx []int, err error) {
	stair := NewStair(len(v), len(w), func(i, j int) float64 { return f(v[i], w[j]) }, func(i int) int {
		b := bound[i]
		if b < 0 {
			b = 0
		}
		if b > len(w) {
			b = len(w)
		}
		return b
	})
	if err = marray.CheckStaircaseMongeSampled(stair); err != nil {
		return nil, err
	}
	err = catchInto(func() { idx = hcmonge.StaircaseRowMinimaOn(mach, v, bound, w, f) })
	return idx, err
}

// MustStaircaseRowMinimaHypercube runs on a freshly sized machine with no
// validation screen.
func MustStaircaseRowMinimaHypercube(kind NetworkKind, v []float64, bound []int, w []float64, f func(vi, wj float64) float64) ([]int, *Network) {
	return hcmonge.StaircaseRowMinima(kind, v, bound, w, f)
}

// NewTubeNetworkFor returns a machine of the given kind sized for the tube
// search on composite c (one subcube per slice of the first dimension).
func NewTubeNetworkFor(kind NetworkKind, c Composite) *Network {
	return hcmonge.TubeMachineFor(kind, c)
}

// TubeMaximaHypercube is Theorem 3.4: tube maxima of a Monge-composite
// array on an O(n^2)-processor network in O(lg n) charged time. Size mach
// with NewTubeNetworkFor.
func TubeMaximaHypercube(mach *Network, c Composite) (idx [][]int, vals [][]float64, err error) {
	if err = marray.CheckMongeSampled(c.D); err != nil {
		return nil, nil, err
	}
	if err = marray.CheckMongeSampled(c.E); err != nil {
		return nil, nil, err
	}
	err = catchInto(func() { idx, vals = hcmonge.TubeMaximaOn(mach, c) })
	return idx, vals, err
}

// MustTubeMaximaHypercube runs on a freshly sized machine with no
// validation screen.
func MustTubeMaximaHypercube(kind NetworkKind, c Composite) ([][]int, [][]float64, *Network) {
	return hcmonge.TubeMaxima(kind, c)
}

// distArray views the distributed inputs as the implicit matrix they
// define, for the boundary validators.
func distArray(v, w []float64, f func(vi, wj float64) float64) Matrix {
	return marray.Func{M: len(v), N: len(w), F: func(i, j int) float64 { return f(v[i], w[j]) }}
}
