// Package monge is a Go library reproducing "Parallel Searching in
// Generalized Monge Arrays with Applications" (Aggarwal, Kravets, Park,
// Sen; SPAA 1990): sequential and parallel searching in Monge,
// staircase-Monge, and Monge-composite arrays, the parallel-machine
// substrates the paper evaluates on (CRCW/CREW PRAM, hypercube,
// cube-connected cycles, shuffle-exchange), and the paper's applications
// (geometric neighbor problems, rectangle problems, string editing, and
// Monge-powered dynamic programming).
//
// # Arrays
//
// Arrays are accessed through the Matrix interface with O(1) on-demand
// entry evaluation; see NewFunc, FromRows and the adapters (Transpose,
// Negate, ReverseCols). An m x n array A is Monge when
// A[i,j] + A[k,l] <= A[i,l] + A[k,j] for all i<k, j<l; staircase-Monge
// arrays additionally carry +Inf entries closed to the right and downward.
//
// # Searching
//
//	RowMinima(a)            // SMAWK: leftmost row minima of a Monge array, Theta(m+n)
//	RowMaxima(a)            // leftmost row maxima of an inverse-Monge array
//	StaircaseRowMinima(a)   // leftmost finite row minima of a staircase-Monge array
//	TubeMaxima(c)           // per-(i,k) best middle coordinate of a Monge-composite array
//
// Parallel counterparts run on simulated machines:
//
//	mach := NewPRAM(CRCW, n)
//	idx := RowMinimaPRAM(mach, a)         // O(lg n) charged time, Table 1.1
//	idx = StaircaseRowMinimaPRAM(mach, a) // Theorem 2.3, Table 1.2
//
// and on distributed-memory networks (hypercube, CCC, shuffle-exchange)
// via the hcmonge subpackage-backed entry points RowMinimaHypercube etc.
// (Theorems 3.2-3.4, Tables 1.1-1.3 "hypercube, etc." rows).
//
// The machines expose Time, Work, and communication counters; those
// counters are what the repository's benchmark harness compares against
// the paper's complexity tables (see EXPERIMENTS.md).
package monge

import (
	"monge/internal/core"
	"monge/internal/hcmonge"
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// Matrix is a read-only two-dimensional array with O(1) entry access.
type Matrix = marray.Matrix

// Staircase is a Matrix with an explicit blocked-column boundary per row.
type Staircase = marray.Staircase

// Dense is a materialized matrix.
type Dense = marray.Dense

// Composite is a p x q x r Monge-composite array c[i,j,k] = d[i,j]+e[j,k].
type Composite = marray.Composite

// Point is a planar point used by the geometric applications.
type Point = marray.Point

// NewFunc wraps an entry function as an implicit m x n Matrix.
func NewFunc(m, n int, f func(i, j int) float64) Matrix {
	return marray.Func{M: m, N: n, F: f}
}

// NewStair wraps an entry function and a per-row blocked boundary as an
// implicit staircase matrix (+Inf at and beyond the boundary).
func NewStair(m, n int, f func(i, j int) float64, bound func(i int) int) Staircase {
	return marray.StairFunc{M: m, N: n, F: f, Bound: bound}
}

// FromRows builds a Dense matrix from row slices.
func FromRows(rows [][]float64) *Dense { return marray.FromRows(rows) }

// NewComposite validates and wraps the two factor matrices.
func NewComposite(d, e Matrix) Composite { return marray.NewComposite(d, e) }

// IsMonge reports whether a satisfies the Monge inequality.
func IsMonge(a Matrix) bool { return marray.IsMonge(a) }

// IsInverseMonge reports whether a satisfies the inverse-Monge inequality.
func IsInverseMonge(a Matrix) bool { return marray.IsInverseMonge(a) }

// IsStaircaseMonge reports whether a is staircase-Monge.
func IsStaircaseMonge(a Matrix) bool { return marray.IsStaircaseMonge(a) }

// Transpose returns the transposed view (Monge-ness is preserved).
func Transpose(a Matrix) Matrix { return marray.Transpose(a) }

// Negate returns the negated view (exchanges Monge and inverse-Monge, and
// the row-minima and row-maxima problems).
func Negate(a Matrix) Matrix { return marray.Negate(a) }

// ReverseCols returns the column-reversed view (exchanges Monge and
// inverse-Monge).
func ReverseCols(a Matrix) Matrix { return marray.ReverseCols(a) }

// ReverseRows returns the row-reversed view (exchanges Monge and
// inverse-Monge).
func ReverseRows(a Matrix) Matrix { return marray.ReverseRows(a) }

// --- Sequential searching -------------------------------------------------

// RowMinima returns the leftmost row minima of a Monge array in
// Theta(m+n) time (SMAWK).
func RowMinima(a Matrix) []int { return smawk.RowMinima(a) }

// RowMaxima returns the leftmost row maxima of an inverse-Monge array.
func RowMaxima(a Matrix) []int { return smawk.RowMaxima(a) }

// MongeRowMaxima returns the leftmost row maxima of a Monge array (the
// Table 1.1 problem).
func MongeRowMaxima(a Matrix) []int { return smawk.MongeRowMaxima(a) }

// StaircaseRowMinima returns the leftmost finite row minima of a
// staircase-Monge array (-1 for fully blocked rows).
func StaircaseRowMinima(a Matrix) []int { return smawk.StaircaseRowMinima(a) }

// TubeMaxima returns, per (i,k) tube of a Monge-composite array, the
// smallest maximising middle coordinate and the maxima values.
func TubeMaxima(c Composite) ([][]int, [][]float64) { return smawk.TubeMaxima(c) }

// TubeMinima is the minimisation analogue for inverse-Monge factors.
func TubeMinima(c Composite) ([][]int, [][]float64) { return smawk.TubeMinima(c) }

// --- PRAM -----------------------------------------------------------------

// Mode selects the PRAM memory discipline.
type Mode = pram.Mode

// CRCW and CREW are the machine modes of the paper's tables.
const (
	CRCW = pram.CRCW
	CREW = pram.CREW
)

// PRAM is a simulated step-synchronous PRAM with time/work accounting.
type PRAM = pram.Machine

// NewPRAM returns a machine with the given mode and declared processor
// count (Brent scheduling of larger supersteps is automatic).
func NewPRAM(mode Mode, procs int) *PRAM { return pram.New(mode, procs) }

// RowMinimaPRAM computes leftmost row minima of a Monge array on mach:
// O(lg n) charged time with n processors on CRCW (Table 1.1 via negation).
func RowMinimaPRAM(mach *PRAM, a Matrix) []int { return core.RowMinima(mach, a) }

// RowMaximaPRAM computes leftmost row maxima of an inverse-Monge array.
func RowMaximaPRAM(mach *PRAM, a Matrix) []int { return core.RowMaxima(mach, a) }

// MongeRowMaximaPRAM computes leftmost row maxima of a Monge array
// (Table 1.1's problem statement).
func MongeRowMaximaPRAM(mach *PRAM, a Matrix) []int { return core.MongeRowMaxima(mach, a) }

// StaircaseRowMinimaPRAM is Theorem 2.3: leftmost finite row minima of a
// staircase-Monge array, O(lg n) charged CRCW time with n processors
// (Table 1.2).
func StaircaseRowMinimaPRAM(mach *PRAM, a Matrix) []int {
	return core.StaircaseRowMinima(mach, a)
}

// TubeMaximaPRAM solves the tube-maxima problem on mach (Table 1.3).
func TubeMaximaPRAM(mach *PRAM, c Composite) ([][]int, [][]float64) {
	return core.TubeMaxima(mach, c)
}

// TubeMinimaPRAM is the minimisation analogue for inverse-Monge factors.
func TubeMinimaPRAM(mach *PRAM, c Composite) ([][]int, [][]float64) {
	return core.TubeMinima(mach, c)
}

// --- Hypercube and constant-degree networks -------------------------------

// NetworkKind selects the distributed-memory network.
type NetworkKind = hc.Kind

// Hypercube, CCC and ShuffleExchange are the network kinds of Section 3.
const (
	Hypercube       = hc.Cube
	CCC             = hc.CCC
	ShuffleExchange = hc.Shuffle
)

// Network is a simulated distributed-memory machine.
type Network = hc.Machine

// RowMinimaHypercube computes leftmost row minima of the Monge array
// a[i,j] = f(v[i], w[j]) in the paper's distributed input model (processor
// i holds v[i] and w[i]) on a freshly sized network of the given kind,
// returning the answers and the machine for counter inspection
// (Theorem 3.2's time bound; see EXPERIMENTS.md for the processor-count
// deviation).
func RowMinimaHypercube(kind NetworkKind, v, w []float64, f func(vi, wj float64) float64) ([]int, *Network) {
	return hcmonge.RowMinima(kind, v, w, f)
}

// MongeRowMaximaHypercube is the Table 1.1 row-maxima problem on the
// distributed networks.
func MongeRowMaximaHypercube(kind NetworkKind, v, w []float64, f func(vi, wj float64) float64) ([]int, *Network) {
	return hcmonge.MongeRowMaxima(kind, v, w, f)
}

// StaircaseRowMinimaHypercube is Theorem 3.3: staircase-Monge row minima
// on the distributed networks; bound[i] is row i's first blocked column
// (nonincreasing).
func StaircaseRowMinimaHypercube(kind NetworkKind, v []float64, bound []int, w []float64, f func(vi, wj float64) float64) ([]int, *Network) {
	return hcmonge.StaircaseRowMinima(kind, v, bound, w, f)
}

// TubeMaximaHypercube is Theorem 3.4: tube maxima of a Monge-composite
// array on an O(n^2)-processor network in O(lg n) charged time.
func TubeMaximaHypercube(kind NetworkKind, c Composite) ([][]int, [][]float64, *Network) {
	return hcmonge.TubeMaxima(kind, c)
}
