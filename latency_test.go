package monge

import (
	"encoding/json"
	"os"
	"testing"
)

// BENCH_latency.json (schema monge-latency/v1) is the committed
// open-loop serving-latency baseline, recorded by
//
//	mongebench -serve -openloop -backend pram -workers 1 \
//	           -qps 400 -queries 200 -maxn 256 -latency-out BENCH_latency.json
//
// It records the p50/p95/p99 latency and rejection rate at three
// arrival-rate rungs (0.5x, 1x, 2x the base qps), calibrated so the 2x
// rung drives the admission front past saturation: the point of the
// baseline is that overload is *visible* — queries shed with a typed
// rejection and bounded latency for the rest — not absorbed into an
// unbounded queue. This test keeps the file honest: schema, the full
// rung ladder, internal count consistency, and the load-discipline
// acceptance the recording can express on any machine — the low-load
// rung must stay essentially rejection-free (the committed
// max_low_load_rejection), and the saturated rung must actually have
// shed load rather than pretending infinite capacity. Absolute latency
// numbers are machine-dependent and deliberately not gated here; the CI
// serve-chaos job gates a fresh run's low-load rejection rate instead.
type latencyBaseline struct {
	Schema              string  `json:"schema"`
	Backend             string  `json:"backend"`
	Workers             int     `json:"workers"`
	CPUs                int     `json:"cpus"`
	BaseQPS             float64 `json:"base_qps"`
	QueriesPerPoint     int     `json:"queries_per_point"`
	MaxLowLoadRejection float64 `json:"max_low_load_rejection"`
	Points              []struct {
		Multiplier    float64 `json:"multiplier"`
		TargetQPS     float64 `json:"target_qps"`
		AchievedQPS   float64 `json:"achieved_qps"`
		Sent          int64   `json:"sent"`
		OK            int64   `json:"ok"`
		Rejected      int64   `json:"rejected"`
		Deadline      int64   `json:"deadline_expired"`
		RejectionRate float64 `json:"rejection_rate"`
		P50us         float64 `json:"p50_us"`
		P95us         float64 `json:"p95_us"`
		P99us         float64 `json:"p99_us"`
	} `json:"points"`
}

func loadLatencyBaseline(t *testing.T) latencyBaseline {
	t.Helper()
	raw, err := os.ReadFile("BENCH_latency.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b latencyBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_latency.json: %v", err)
	}
	if b.Schema != "monge-latency/v1" {
		t.Fatalf("BENCH_latency.json schema %q, want monge-latency/v1", b.Schema)
	}
	return b
}

// TestLatencyBaseline validates the committed open-loop latency
// baseline: the three-rung ladder is complete and self-consistent, and
// the committed numbers demonstrate load discipline — a clean low-load
// rung and a genuinely saturated 2x rung.
func TestLatencyBaseline(t *testing.T) {
	b := loadLatencyBaseline(t)
	if b.Backend == "" || b.Workers < 1 || b.CPUs < 1 {
		t.Fatalf("baseline provenance incomplete: backend=%q workers=%d cpus=%d",
			b.Backend, b.Workers, b.CPUs)
	}
	if b.BaseQPS <= 0 || b.QueriesPerPoint <= 0 {
		t.Fatalf("baseline load incomplete: base_qps=%g queries_per_point=%d",
			b.BaseQPS, b.QueriesPerPoint)
	}
	if b.MaxLowLoadRejection <= 0 || b.MaxLowLoadRejection >= 0.5 {
		t.Fatalf("max_low_load_rejection %g is not a meaningful acceptance bound",
			b.MaxLowLoadRejection)
	}
	if len(b.Points) != 3 {
		t.Fatalf("%d rungs, want 3 (0.5x, 1x, 2x)", len(b.Points))
	}
	wantMult := []float64{0.5, 1, 2}
	for i, p := range b.Points {
		if p.Multiplier != wantMult[i] {
			t.Fatalf("rung %d multiplier %g, want %g", i, p.Multiplier, wantMult[i])
		}
		if p.TargetQPS != b.BaseQPS*p.Multiplier {
			t.Errorf("rung %gx target_qps %g, want %g", p.Multiplier, p.TargetQPS, b.BaseQPS*p.Multiplier)
		}
		if p.AchievedQPS <= 0 {
			t.Errorf("rung %gx achieved_qps %g, want > 0", p.Multiplier, p.AchievedQPS)
		}
		if p.Sent != int64(b.QueriesPerPoint) {
			t.Errorf("rung %gx sent %d, want %d", p.Multiplier, p.Sent, b.QueriesPerPoint)
		}
		if p.Sent != p.OK+p.Rejected+p.Deadline {
			t.Errorf("rung %gx: sent %d != ok %d + rejected %d + deadline_expired %d",
				p.Multiplier, p.Sent, p.OK, p.Rejected, p.Deadline)
		}
		if p.RejectionRate < 0 || p.RejectionRate > 1 {
			t.Errorf("rung %gx rejection_rate %g outside [0,1]", p.Multiplier, p.RejectionRate)
		}
		wantRate := float64(p.Rejected+p.Deadline) / float64(p.Sent)
		if diff := p.RejectionRate - wantRate; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("rung %gx rejection_rate %g inconsistent with counts (%g)",
				p.Multiplier, p.RejectionRate, wantRate)
		}
		if p.OK > 0 && !(p.P50us > 0 && p.P50us <= p.P95us && p.P95us <= p.P99us) {
			t.Errorf("rung %gx percentiles not positive and monotone: p50=%g p95=%g p99=%g",
				p.Multiplier, p.P50us, p.P95us, p.P99us)
		}
	}
	// The load-discipline acceptance on the committed numbers.
	if low := b.Points[0]; low.RejectionRate > b.MaxLowLoadRejection {
		t.Errorf("0.5x rung rejection rate %g exceeds the committed bound %g — the baseline was recorded overloaded",
			low.RejectionRate, b.MaxLowLoadRejection)
	}
	if sat := b.Points[2]; sat.Rejected == 0 {
		t.Errorf("2x rung recorded zero rejections — the baseline does not demonstrate saturation; re-record with a higher -qps")
	}
}
