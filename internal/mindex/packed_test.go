package mindex

// Internal tests for the packed predecessor structure: findInterval
// must agree with the binary-search definition on every column, for
// every breakpoint layout — clustered starts, starts straddling word
// boundaries, and interval counts on both sides of packedMinIvals.

import (
	"math/rand"
	"sort"
	"testing"
)

// refFindInterval is the pre-packing definition: smallest index with
// bp[idx] > j, minus one.
func refFindInterval(bp []int32, j int) int32 {
	idx := sort.Search(len(bp), func(i int) bool { return int(bp[i]) > j })
	return int32(idx - 1)
}

func TestFindIntervalMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	layouts := [][]int32{
		{0, 200},                                 // single interval, below threshold
		{0, 1, 2, 3, 4, 5, 6, 200},               // clustered at zero, K=7
		{0, 63, 64, 65, 127, 128, 129, 191, 200}, // word boundaries, K=8
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 200},         // dense prefix, K=9
	}
	for trial := 0; trial < 40; trial++ {
		n := 65 + rng.Intn(400)
		k := 2 + rng.Intn(20)
		starts := map[int32]bool{0: true}
		for len(starts) < k {
			starts[int32(1+rng.Intn(n-1))] = true
		}
		bp := make([]int32, 0, len(starts)+1)
		for s := range starts {
			bp = append(bp, s)
		}
		sort.Slice(bp, func(a, b int) bool { return bp[a] < bp[b] })
		bp = append(bp, int32(n))
		layouts = append(layouts, bp)
	}
	for li, bp := range layouts {
		n := int(bp[len(bp)-1])
		nd := node{bp: bp, own: make([]int32, len(bp)-1)}
		nd.buildPacked(n)
		if len(nd.own) >= packedMinIvals && nd.pw == nil {
			t.Fatalf("layout %d: K=%d node did not build packed structure", li, len(nd.own))
		}
		if len(nd.own) < packedMinIvals && nd.pw != nil {
			t.Fatalf("layout %d: K=%d node built packed structure below threshold", li, len(nd.own))
		}
		for j := 0; j < n; j++ {
			if got, want := nd.findInterval(j), refFindInterval(bp, j); got != want {
				t.Fatalf("layout %d: findInterval(%d) = %d, want %d (bp=%v, packed=%v)",
					li, j, got, want, bp, nd.pw != nil)
			}
		}
	}
}
