package mindex

// Random Monge inputs produce degenerate envelopes — a handful of rows
// dominate every node, so per-node interval counts stay in the
// forward-walk regime (K <= 3 observed at n=4096) and the packed
// predecessor structure never builds. This test constructs the
// adversarial opposite: rows that are tangent lines to a parabola
// (column-reversed so the construction is Monge rather than
// inverse-Monge), where every row of a node wins its own envelope
// interval. The root carries one interval per row, well past
// packedMinIvals, so the bitmap regime of findInterval is exercised by
// a real build end-to-end — packed_test.go covers the same code on
// synthetic layouts — and every answer is checked against the brute
// oracle.

import (
	"math"
	"math/rand"
	"testing"

	"monge/internal/marray"
)

func TestPackedEngagesOnTangentLines(t *testing.T) {
	const m, n = 256, 512
	c := func(i int) float64 { return float64(i) * float64(n-1) / float64(m-1) }
	a := marray.Func{M: m, N: n, F: func(i, j int) float64 {
		jr := float64(n - 1 - j)
		return 2*c(i)*jr - c(i)*c(i)
	}}
	ix := Build(a, Opts{})

	packed, maxK := 0, 0
	for i := range ix.nodes {
		if k := len(ix.nodes[i].own); k > maxK {
			maxK = k
		}
		if ix.nodes[i].pw != nil {
			packed++
		}
	}
	if packed == 0 || maxK < packedMinIvals {
		t.Fatalf("packed structure never engaged: %d packed nodes, max %d intervals/node (threshold %d)",
			packed, maxK, packedMinIvals)
	}
	t.Logf("nodes=%d packed=%d maxIvals=%d", len(ix.nodes), packed, maxK)

	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 300; q++ {
		r1 := rng.Intn(m)
		r2 := r1 + rng.Intn(m-r1)
		c1 := rng.Intn(n)
		c2 := c1 + rng.Intn(n-c1)
		got := ix.SubmatrixMax(r1, r2, c1, c2)
		best := Pos{Row: -1, Col: -1, Val: math.Inf(-1)}
		for i := r1; i <= r2; i++ {
			for j := c1; j <= c2; j++ {
				if v := a.At(i, j); v > best.Val {
					best = Pos{Row: i, Col: j, Val: v}
				}
			}
		}
		if got != best {
			t.Fatalf("query %d [%d,%d]x[%d,%d]: got %+v want %+v", q, r1, r2, c1, c2, got, best)
		}
	}
}
