package mindex_test

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/mindex"
	"monge/internal/smawk"
)

// catchErr runs f under the repository's panic transport and returns
// the typed error it throws, if any.
func catchErr(f func()) (err error) {
	defer merr.Catch(&err)
	f()
	return nil
}

// stairOf wraps a dense staircase-Monge matrix (finite entries then
// +Inf, right/down-closed) in a StairFunc so the index sees the
// Staircase interface, as serving inputs do.
func stairOf(d *marray.Dense) marray.Matrix {
	m := d.Rows()
	bound := make([]int, m)
	for i := 0; i < m; i++ {
		bound[i] = marray.BoundaryOf(d, i)
	}
	return marray.StairFunc{M: m, N: d.Cols(), F: d.At, Bound: func(i int) int { return bound[i] }}
}

// infHeavyStair is a staircase-Monge matrix whose blocked region
// dominates: boundaries hug the left edge, so most entries are +Inf and
// some rows are fully blocked.
func infHeavyStair(rng *rand.Rand, m, n int) marray.Matrix {
	d := marray.RandomStaircaseMonge(rng, m, n)
	bound := make([]int, m)
	b := n/4 + 1
	for i := range bound {
		if i > 0 && b > 0 && rng.Intn(2) == 0 {
			b -= rng.Intn(b + 1)
		}
		if lim := marray.BoundaryOf(d, i); b > lim {
			b = lim
		}
		bound[i] = b
	}
	return marray.StairFunc{M: m, N: n, F: d.At, Bound: func(i int) int { return bound[i] }}
}

// The table suite's matrix families. Every generator yields a Monge or
// staircase-Monge array of the requested shape.
var families = []struct {
	name string
	gen  func(rng *rand.Rand, m, n int) marray.Matrix
}{
	{"dense-int-ties", func(rng *rand.Rand, m, n int) marray.Matrix {
		return marray.RandomMongeInt(rng, m, n, 12)
	}},
	{"func", func(rng *rand.Rand, m, n int) marray.Matrix {
		d := marray.RandomMonge(rng, m, n)
		return marray.Func{M: m, N: n, F: d.At}
	}},
	{"inf-heavy-staircase", infHeavyStair},
	{"all-ties", func(rng *rand.Rand, m, n int) marray.Matrix {
		return marray.Func{M: m, N: n, F: func(i, j int) float64 { return 7 }}
	}},
}

// shapes is the size grid of the differential table suite: the
// degenerate shapes, both sides of the power-of-two boundary, and one
// large instance.
var shapes = []struct{ m, n int }{
	{1, 1},
	{1, 37},
	{37, 1},
	{63, 63},
	{64, 64},
	{1024, 1024},
}

// queryRect draws a random inclusive rectangle inside an m x n array.
func queryRect(rng *rand.Rand, m, n int) (r1, r2, c1, c2 int) {
	r1 = rng.Intn(m)
	r2 = r1 + rng.Intn(m-r1)
	c1 = rng.Intn(n)
	c2 = c1 + rng.Intn(n-c1)
	return
}

// cornerRects enumerates the deterministic rectangles every instance is
// checked on: full span, single cells, single rows/columns, and the
// quadrant cuts that cross block and breakpoint boundaries.
func cornerRects(m, n int) [][4]int {
	rs := [][4]int{
		{0, m - 1, 0, n - 1},
		{0, 0, 0, 0},
		{m - 1, m - 1, n - 1, n - 1},
		{0, 0, 0, n - 1},
		{0, m - 1, 0, 0},
		{m / 2, m / 2, 0, n - 1},
		{0, m - 1, n / 2, n / 2},
		{m / 2, m - 1, n / 2, n - 1},
		{0, m / 2, 0, n / 2},
	}
	if m >= 2 && n >= 2 {
		rs = append(rs, [4]int{1, m - 1, 1, n - 2}, [4]int{m / 3, 2 * m / 3, n / 3, 2 * n / 3})
	}
	return rs
}

func checkRect(t *testing.T, ix *mindex.Index, a marray.Matrix, r1, r2, c1, c2 int) {
	t.Helper()
	got := ix.SubmatrixMax(r1, r2, c1, c2)
	want := mindex.SubmatrixMaxBrute(a, r1, r2, c1, c2)
	if got != want {
		t.Fatalf("SubmatrixMax[%d:%d, %d:%d] = %+v, brute oracle %+v", r1, r2, c1, c2, got, want)
	}
}

func checkRowRange(t *testing.T, ix *mindex.Index, oracle []int, r1, r2 int) {
	t.Helper()
	got := ix.RangeRowMinima(r1, r2)
	if len(got) != r2-r1+1 {
		t.Fatalf("RangeRowMinima[%d:%d] length %d, want %d", r1, r2, len(got), r2-r1+1)
	}
	for i, j := range got {
		if j != oracle[r1+i] {
			t.Fatalf("RangeRowMinima[%d:%d][%d] = %d, oracle %d", r1, r2, i, j, oracle[r1+i])
		}
	}
}

// rowMinOracle is the brute row-minima oracle matching the index's
// contract: leftmost minima, -1 for fully blocked rows.
func rowMinOracle(a marray.Matrix) []int {
	if _, stair := a.(marray.Staircase); stair {
		return smawk.StaircaseRowMinimaBrute(a)
	}
	return smawk.RowMinimaBrute(a)
}

// TestIndexMatchesBruteTable is the differential table suite: every
// shape x family instance is indexed and checked — corner rectangles
// plus random ones — against the O(area) brute oracle and the brute
// row-minima oracle, index-exact.
func TestIndexMatchesBruteTable(t *testing.T) {
	for _, sh := range shapes {
		for _, fam := range families {
			t.Run(fam.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(41*sh.m + sh.n)))
				a := fam.gen(rng, sh.m, sh.n)
				ix := mindex.Build(a, mindex.Opts{})
				if ix.Rows() != sh.m || ix.Cols() != sh.n {
					t.Fatalf("index is %dx%d, want %dx%d", ix.Rows(), ix.Cols(), sh.m, sh.n)
				}
				for _, r := range cornerRects(sh.m, sh.n) {
					checkRect(t, ix, a, r[0], r[1], r[2], r[3])
				}
				queries := 60
				if sh.m*sh.n > 100_000 {
					queries = 25 // the brute oracle is O(area)
				}
				for q := 0; q < queries; q++ {
					r1, r2, c1, c2 := queryRect(rng, sh.m, sh.n)
					checkRect(t, ix, a, r1, r2, c1, c2)
				}
				oracle := rowMinOracle(a)
				checkRowRange(t, ix, oracle, 0, sh.m-1)
				for q := 0; q < 20; q++ {
					r1 := rng.Intn(sh.m)
					r2 := r1 + rng.Intn(sh.m-r1)
					checkRowRange(t, ix, oracle, r1, r2)
				}
			})
		}
	}
}

// TestIndexAgainstSMAWKWindow cross-checks the index against the
// repository's SMAWK kernels on whole windows: the window's row maxima
// reduce to the submatrix maximum under the same leftmost contract.
func TestIndexAgainstSMAWKWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := marray.RandomMongeInt(rng, 200, 171, 9)
	ix := mindex.Build(a, mindex.Opts{})
	for q := 0; q < 50; q++ {
		r1, r2, c1, c2 := queryRect(rng, 200, 171)
		w := marray.Window(a, r1, c1, r2-r1+1, c2-c1+1)
		maxima := smawk.MongeRowMaxima(w)
		want := mindex.Pos{Row: -1, Col: -1, Val: math.Inf(-1)}
		for i, j := range maxima {
			if v := w.At(i, j); v > want.Val {
				want = mindex.Pos{Row: r1 + i, Col: c1 + j, Val: v}
			}
		}
		if got := ix.SubmatrixMax(r1, r2, c1, c2); got != want {
			t.Fatalf("SubmatrixMax[%d:%d, %d:%d] = %+v, SMAWK window oracle %+v", r1, r2, c1, c2, got, want)
		}
	}
}

// TestIndexBlockedRectangle pins the fully blocked contract: a
// rectangle of +Inf entries answers {-1, -1, -Inf}.
func TestIndexBlockedRectangle(t *testing.T) {
	a := marray.StairFunc{M: 8, N: 8, F: func(i, j int) float64 { return float64(i + j) },
		Bound: func(i int) int { return 2 }}
	ix := mindex.Build(a, mindex.Opts{})
	got := ix.SubmatrixMax(0, 7, 3, 7)
	if got.Row != -1 || got.Col != -1 || !math.IsInf(got.Val, -1) {
		t.Fatalf("fully blocked rectangle answered %+v, want {-1 -1 -Inf}", got)
	}
	// The finite part is still served exactly.
	checkRect(t, ix, a, 0, 7, 0, 7)
	mins := ix.RangeRowMinima(0, 7)
	for i, j := range mins {
		if j != 0 {
			t.Fatalf("row %d leftmost minimum %d, want 0", i, j)
		}
	}
}

// TestIndexQueryValidation pins the typed out-of-range errors on both
// query kinds and on Build.
func TestIndexQueryValidation(t *testing.T) {
	ix := mindex.Build(marray.RandomMonge(rand.New(rand.NewSource(1)), 10, 10), mindex.Opts{})
	for _, r := range [][4]int{{-1, 0, 0, 0}, {0, 10, 0, 0}, {3, 2, 0, 0}, {0, 0, -1, 0}, {0, 0, 0, 10}, {0, 0, 5, 4}} {
		err := catchErr(func() { ix.SubmatrixMax(r[0], r[1], r[2], r[3]) })
		if !errors.Is(err, merr.ErrDimensionMismatch) {
			t.Fatalf("SubmatrixMax%v error = %v, want ErrDimensionMismatch", r, err)
		}
	}
	for _, r := range [][2]int{{-1, 0}, {0, 10}, {5, 4}} {
		err := catchErr(func() { ix.RangeRowMinima(r[0], r[1]) })
		if !errors.Is(err, merr.ErrDimensionMismatch) {
			t.Fatalf("RangeRowMinima%v error = %v, want ErrDimensionMismatch", r, err)
		}
	}
	if err := ix.CheckSubmatrix(0, 9, 0, 9); err != nil {
		t.Fatalf("CheckSubmatrix on a valid range: %v", err)
	}
	for _, shape := range [][2]int{{0, 5}, {5, 0}, {0, 0}} {
		err := catchErr(func() {
			mindex.Build(marray.Func{M: shape[0], N: shape[1], F: func(i, j int) float64 { return 0 }}, mindex.Opts{})
		})
		if !errors.Is(err, merr.ErrDimensionMismatch) {
			t.Fatalf("Build(%dx%d) error = %v, want ErrDimensionMismatch", shape[0], shape[1], err)
		}
	}
}

// TestIndexBuildUnderFaults drives the build path at a heavy fault rate
// and requires bitwise-identical answers to a clean build: build units
// are pure, so recompute-on-fault recovery is index-exact. It also
// checks the injector actually fired.
func TestIndexBuildUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := marray.RandomMongeInt(rng, 300, 200, 10)
	clean := mindex.Build(a, mindex.Opts{Faults: faults.New(0, 0)})
	inj := faults.New(7, 0.2)
	faulty := mindex.Build(a, mindex.Opts{Faults: inj})
	if inj.Stats().BuildFaults == 0 {
		t.Fatal("injector at rate 0.2 delivered no build faults")
	}
	qrng := rand.New(rand.NewSource(6))
	for q := 0; q < 300; q++ {
		r1, r2, c1, c2 := queryRect(qrng, 300, 200)
		if g, w := faulty.SubmatrixMax(r1, r2, c1, c2), clean.SubmatrixMax(r1, r2, c1, c2); g != w {
			t.Fatalf("faulty-build answer %+v differs from clean build %+v", g, w)
		}
	}
	for i := 0; i < 300; i++ {
		if g, w := faulty.RangeRowMinima(i, i)[0], clean.RangeRowMinima(i, i)[0]; g != w {
			t.Fatalf("row %d: faulty-build minimum %d differs from clean %d", i, g, w)
		}
	}
}

// TestIndexConcurrentQueries hammers one index from many goroutines
// under -race: the index is immutable after Build, so every answer must
// equal the precomputed sequential one.
func TestIndexConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := marray.RandomMonge(rng, 96, 96)
	a := marray.Func{M: 96, N: 96, F: d.At} // implicit: exercises the shared tile cache
	ix := mindex.Build(a, mindex.Opts{})
	type qa struct {
		r [4]int
		p mindex.Pos
	}
	qs := make([]qa, 400)
	for i := range qs {
		r1, r2, c1, c2 := queryRect(rng, 96, 96)
		qs[i] = qa{r: [4]int{r1, r2, c1, c2}, p: ix.SubmatrixMax(r1, r2, c1, c2)}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(qs); i += 2 {
				q := qs[i]
				if got := ix.SubmatrixMax(q.r[0], q.r[1], q.r[2], q.r[3]); got != q.p {
					select {
					case errs <- "concurrent answer drifted from sequential":
					default:
					}
					return
				}
				if got := ix.RangeRowMinima(q.r[0], q.r[1]); got[0] != ix.RangeRowMinima(q.r[0], q.r[0])[0] {
					select {
					case errs <- "row-range answers disagree":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestIndexFootprint sanity-checks the reported footprint: positive,
// and the envelope storage stays near-linear (O(m log m) intervals).
func TestIndexFootprint(t *testing.T) {
	m, n := 1024, 1024
	a := marray.RandomMonge(rand.New(rand.NewSource(3)), m, n)
	ix := mindex.Build(a, mindex.Opts{})
	if ix.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d, want > 0", ix.Bytes())
	}
	bpLimit := m * (11 + 2) // m rows x (log2(m)+2) levels
	if bp := ix.Breakpoints(); bp <= 0 || bp > bpLimit {
		t.Fatalf("Breakpoints() = %d, want in (0, %d]: envelope storage should be O(m log m)", bp, bpLimit)
	}
}
