// Package mindex implements an online submatrix-maximum index for Monge
// and staircase-Monge arrays, after Gawrychowski, Mozes, and Weimann
// ("Submatrix maximum queries in Monge matrices", arXiv 1307.2313;
// equivalence to predecessor search, arXiv 1502.07663): preprocess the
// array once, then answer arbitrary submatrix max and row-range minima
// queries cheaply, converting the repository's one-shot batch kernels
// into the read-heavy build-once/query-millions serving shape.
//
// # Structure
//
// The index is a canonical hierarchy (segment tree) over row blocks. For
// each node — a contiguous block of rows — it stores the block's upper
// envelope: for every column j, the smallest row of the block attaining
// the column maximum. By the Monge inequality any two rows cross at most
// once (a[i,j] - a[k,j] is nondecreasing in j for i < k), so the
// envelope's owner row is nonincreasing in j and is stored as O(rows)
// breakpoint intervals. Envelopes are built bottom-up: two children
// envelopes cross at most once, and the crossing column is found by
// binary search, so the whole hierarchy costs O(m log m log n) envelope
// work on top of one linear pass over the input. Each node also stores
// per-interval maxima with a sparse table over them, so the maximum of
// any run of whole intervals is found in O(1).
//
// A query [r1,r2] x [c1,c2] decomposes the row range into O(log m)
// canonical nodes. In each node the column range cuts at most two
// breakpoint intervals; whole intervals are answered by the sparse
// table, and the two cut intervals fall back to a per-row block-maxima
// table (one value per 64 columns, filled by the same linear input
// pass), giving O(log m log n) envelope steps plus O(B + n/B) boundary
// work per cut — polylogarithmic envelope navigation with a small,
// constant-bounded scan tail, never the O(m + n) of an uncached SMAWK
// call.
//
// # Contracts
//
// Answers are index-exact and deterministic: SubmatrixMax returns the
// maximum entry with the lexicographically smallest (row, col) among
// maximizers, matching the brute-force oracle entry for entry. Entries
// must be finite or +Inf; +Inf entries (staircase-blocked positions,
// right/down-closed) never win a maximum — a fully blocked rectangle
// answers {Row: -1, Col: -1, Val: -Inf}. RangeRowMinima returns each
// row's leftmost-minimum column exactly as smawk.RowMinima (or, for
// staircase inputs, smawk.StaircaseRowMinima with -1 for fully blocked
// rows) would.
//
// An Index is immutable after Build and safe for concurrent queries
// from any number of goroutines; implicit (non-Dense) inputs are
// evaluated through a private marray.TileCache view so repeated queries
// hit memoized tiles. The build path participates in the repository's
// deterministic fault discipline: an injector (Opts.Faults, defaulting
// to the process-wide one) can declare any build unit transiently
// faulty, and the builder recomputes that unit — results are pure, so
// recovery is index-exact by construction.
package mindex

import (
	"math"
	"math/bits"
	"sort"

	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/smawk"
)

// blockShift is lg of the per-row block-maxima width: 64 columns per
// block keeps the boundary scans of a query at most 128 entries while
// costing one stored value per 64 input entries.
const blockShift = 6

// walkMaxIvals and packedMinIvals split findInterval into three
// regimes by interval count K. Small nodes (K <= walkMaxIvals) walk
// their handful of breakpoints forward — fewer than one cache line of
// bp, and the walk beats any structure. Mid nodes binary-search bp,
// whose few hundred bytes the cut path pulls into cache anyway. Only
// large nodes (K >= packedMinIvals) carry the packed predecessor
// bitmap over their breakpoint columns, where locating an interval is
// one masked popcount — the predecessor-search view of the query
// (arXiv 1502.07663) — touching two cache lines where a binary search
// over a multi-KB bp would take log K cold probes. Only nodes spanning
// >= packedMinIvals rows can reach the packed regime, so the bitmaps
// cost O((m/packedMinIvals) * n/64) words and never crowd the caches
// the boundary cuts need.
const (
	walkMaxIvals   = 7
	packedMinIvals = 64
)

// autoTilesCap bounds the auto-sized tile cache wrapped around
// implicit inputs at build time: 1<<14 tiles is ~9.5 MiB of cached
// values, enough to cover a 1024x1024 input entirely so the build
// evaluates each entry once.
const autoTilesCap = 1 << 14

// Pos is one submatrix-maximum answer: the value and its position. A
// fully blocked (+Inf) rectangle has Row = Col = -1 and Val = -Inf.
type Pos struct {
	Row, Col int
	Val      float64
}

// Opts configures Build. The zero value is usable.
type Opts struct {
	// Tiles sizes the tile cache wrapped around implicit (non-Dense)
	// inputs for entry evaluation (rounded up to a power of two; <= 0
	// means marray.DefaultTiles). Dense inputs are read directly.
	Tiles int
	// Faults is the build-path fault injector. Nil inherits the
	// process-wide faults.Global injector, exactly as the simulated
	// machines do; a firing injector forces deterministic recomputation
	// of build units without ever changing the result.
	Faults *faults.Injector
}

// node is one canonical row block [lo, hi) of the hierarchy with its
// column-maxima envelope. bp holds K+1 breakpoints (bp[0] = 0, bp[K] =
// n); own[k] owns columns [bp[k], bp[k+1]) and is strictly decreasing
// in k. ivMax/ivArg hold each interval's maximum value and its leftmost
// column (-1 when the interval is entirely blocked), and sp is the
// flattened sparse table over intervals (spL levels, stride K). For
// nodes with >= packedMinIvals intervals, pw is a bitmap over the
// column space with one bit set per interval start and pr the per-word
// prefix ranks, so findInterval is a single masked popcount.
type node struct {
	lo, hi      int32
	left, right int32
	bp          []int32
	own         []int32
	ivMax       []float64
	ivArg       []int32
	sp          []int32
	spL         int32
	pw          []uint64
	pr          []int32
}

// Index answers submatrix maximum and row-range minima queries over one
// Monge or staircase-Monge array. Build it with Build; it is immutable
// afterwards and safe for concurrent use.
type Index struct {
	a    marray.Matrix // evaluation view (tile-cached for implicit inputs)
	d    *marray.Dense // non-nil for dense inputs: zero-copy row views
	m, n int

	nblk   int       // blocks per row
	blkVal []float64 // m*nblk per-row block maxima
	blkArg []int32   // m*nblk leftmost argmax columns (-1: block all blocked)

	rowMin []int32 // per-row leftmost full-row minima (-1: row all blocked)

	nodes []node
	bytes int64
}

// ev is the comparison value of entry (i, j): the entry itself, with
// +Inf (staircase-blocked) mapped to -Inf so blocked entries never win
// a maximum. All arithmetic on entries is comparison-only, so staircase
// inputs need no special cases downstream.
func (ix *Index) ev(i, j int) float64 {
	v := ix.a.At(i, j)
	if math.IsInf(v, 1) {
		return math.Inf(-1)
	}
	return v
}

// Build preprocesses a into an Index. The array must be Monge, or
// staircase-Monge with its +Inf region right/down-closed (callers reach
// this through the facade's sampled screens); entries must be finite or
// +Inf. Throws merr.ErrDimensionMismatch for an empty array.
func Build(a marray.Matrix, opt Opts) *Index {
	m, n := a.Rows(), a.Cols()
	if m <= 0 || n <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch, "mindex: Build: %dx%d array", m, n)
	}
	inj := opt.Faults
	if inj == nil {
		inj = faults.Global()
	}
	ix := &Index{a: a, m: m, n: n}
	if d, dense := a.(*marray.Dense); dense {
		ix.d = d
	} else {
		tiles := opt.Tiles
		if tiles <= 0 {
			// Auto-size to the input: the build sweeps every entry at
			// least once (row blocks) and the envelope merges re-probe
			// columns, so covering the whole array — up to a cap —
			// makes each implicit entry evaluate exactly once.
			ti := (m + marray.TileSide - 1) / marray.TileSide
			tj := (n + marray.TileSide - 1) / marray.TileSide
			tiles = ti * tj
			if tiles < marray.DefaultTiles {
				tiles = marray.DefaultTiles
			}
			if tiles > autoTilesCap {
				tiles = autoTilesCap
			}
		}
		ix.a = marray.NewTileCache(tiles).View(a)
	}

	// One linear pass over the input: per-row block maxima. Everything
	// later (leaf envelopes, merge straddlers, query boundary cuts)
	// resolves row-range maxima through this table instead of rescanning
	// the matrix.
	ix.nblk = (n + (1 << blockShift) - 1) >> blockShift
	ix.blkVal = make([]float64, m*ix.nblk)
	ix.blkArg = make([]int32, m*ix.nblk)
	for i := 0; i < m; i++ {
		buildUnit(inj, int64(i), func() { ix.fillRowBlocks(i) })
	}

	// Row minima for RangeRowMinima, via the smawk Into-variants (one
	// pooled-workspace call for the whole array).
	ix.rowMin = make([]int32, m)
	buildUnit(inj, int64(m), func() { ix.fillRowMinima() })

	// The canonical hierarchy, leaves first.
	ix.nodes = make([]node, 0, 2*m-1)
	ix.buildNode(inj, 0, m)

	ix.bytes = int64(len(ix.blkVal))*8 + int64(len(ix.blkArg))*4 + int64(len(ix.rowMin))*4
	for i := range ix.nodes {
		nd := &ix.nodes[i]
		ix.bytes += int64(len(nd.bp)+len(nd.own)+len(nd.ivArg)+len(nd.sp)+len(nd.pr))*4 +
			int64(len(nd.ivMax)+len(nd.pw))*8 + 32
	}
	return ix
}

// buildUnit runs one pure build unit under the fault discipline: a
// firing injector forces a deterministic recompute of the unit (the
// recovery mirrors the machines' recompute-on-fault), bounded by the
// injector's own attempt cap.
func buildUnit(inj *faults.Injector, unit int64, f func()) {
	for attempt := 0; ; attempt++ {
		f()
		if !inj.BuildFault(unit, attempt) {
			return
		}
	}
}

// fillRowBlocks computes row i's block maxima (leftmost argmax per
// 64-column block). Dense rows run the shared branchless kernel on the
// zero-copy row view — ArgMaxFinite skips +Inf (blocked) entries
// exactly as ev maps them to -Inf — and implicit rows pay one At per
// entry.
func (ix *Index) fillRowBlocks(i int) {
	base := i * ix.nblk
	var row []float64
	if ix.d != nil {
		row = ix.d.RowView(i)
	}
	for b := 0; b < ix.nblk; b++ {
		lo := b << blockShift
		hi := lo + (1 << blockShift)
		if hi > ix.n {
			hi = ix.n
		}
		if row != nil {
			ix.blkVal[base+b], ix.blkArg[base+b] = segMax(row, lo, hi)
			continue
		}
		best, barg := math.Inf(-1), int32(-1)
		for j := lo; j < hi; j++ {
			if v := ix.ev(i, j); v > best {
				best, barg = v, int32(j)
			}
		}
		ix.blkVal[base+b] = best
		ix.blkArg[base+b] = barg
	}
}

// segMax returns the maximum of row[x:y] and its leftmost column under
// the index contract: +Inf (blocked) never wins, an all-blocked
// segment answers (-Inf, -1). Segments here are at most one 64-column
// block, where a tight scalar loop over the slice beats the 4-wide
// branchless kernels (their lane setup and merge only amortize on long
// rows); the win over the generic path is skipping the per-entry
// interface call, not the loop shape.
func segMax(row []float64, x, y int) (float64, int32) {
	best, barg := math.Inf(-1), int32(-1)
	for j := x; j < y; j++ {
		v := row[j]
		if math.IsInf(v, 1) {
			continue
		}
		if v > best {
			best, barg = v, int32(j)
		}
	}
	return best, barg
}

// fillRowMinima computes the full-row leftmost minima table through the
// smawk Into-variants: the staircase solver for Staircase inputs (-1
// for fully blocked rows), plain SMAWK otherwise.
func (ix *Index) fillRowMinima() {
	out := make([]int, ix.m)
	if _, stair := ix.a.(marray.Staircase); stair {
		smawk.StaircaseRowMinimaInto(ix.a, out)
	} else {
		smawk.RowMinimaInto(ix.a, out)
	}
	for i, j := range out {
		ix.rowMin[i] = int32(j)
	}
}

// rowRangeMax returns the maximum of row r over columns [c1, c2]
// (inclusive) and its leftmost column, resolving whole blocks through
// the block-maxima table: O(B + n/B) work. Returns (-Inf, -1) when the
// range is entirely blocked.
func (ix *Index) rowRangeMax(r, c1, c2 int) (float64, int32) {
	b1, b2 := c1>>blockShift, c2>>blockShift
	if ix.d != nil {
		// Dense rows: the two boundary cuts run the branchless kernel
		// on subslices of the zero-copy row view, and the whole-block
		// run is one branchless scan over the stored block maxima.
		// Candidates fold in ascending column order under strict >,
		// which keeps the leftmost maximizer.
		row := ix.d.RowView(r)
		if b1 == b2 {
			return segMax(row, c1, c2+1)
		}
		best, barg := segMax(row, c1, (b1+1)<<blockShift)
		base := r * ix.nblk
		for b := base + b1 + 1; b < base+b2; b++ {
			if v := ix.blkVal[b]; v > best {
				best, barg = v, ix.blkArg[b]
			}
		}
		if v, j := segMax(row, b2<<blockShift, c2+1); v > best {
			best, barg = v, j
		}
		return best, barg
	}
	best, barg := math.Inf(-1), int32(-1)
	consider := func(v float64, j int32) {
		if v > best {
			best, barg = v, j
		}
	}
	if b1 == b2 {
		for j := c1; j <= c2; j++ {
			consider(ix.ev(r, j), int32(j))
		}
		return best, barg
	}
	for j := c1; j < (b1+1)<<blockShift; j++ {
		consider(ix.ev(r, j), int32(j))
	}
	base := r * ix.nblk
	for b := b1 + 1; b < b2; b++ {
		consider(ix.blkVal[base+b], ix.blkArg[base+b])
	}
	for j := b2 << blockShift; j <= c2; j++ {
		consider(ix.ev(r, j), int32(j))
	}
	return best, barg
}

// buildNode builds the hierarchy node for rows [lo, hi) and returns its
// index. Children are built first; the parent envelope is the merge of
// theirs.
func (ix *Index) buildNode(inj *faults.Injector, lo, hi int) int32 {
	v := int32(len(ix.nodes))
	ix.nodes = append(ix.nodes, node{lo: int32(lo), hi: int32(hi), left: -1, right: -1})
	if hi-lo == 1 {
		buildUnit(inj, int64(ix.m)+1+int64(v), func() { ix.leafEnvelope(v, lo) })
		return v
	}
	mid := (lo + hi) / 2
	l := ix.buildNode(inj, lo, mid)
	r := ix.buildNode(inj, mid, hi)
	ix.nodes[v].left, ix.nodes[v].right = l, r
	buildUnit(inj, int64(ix.m)+1+int64(v), func() { ix.mergeEnvelopes(v, l, r) })
	return v
}

// leafEnvelope fills node v for the single row lo: one interval owning
// every column.
func (ix *Index) leafEnvelope(v int32, lo int) {
	val, arg := ix.rowRangeMax(lo, 0, ix.n-1)
	nd := &ix.nodes[v]
	nd.bp = []int32{0, int32(ix.n)}
	nd.own = []int32{int32(lo)}
	nd.ivMax = []float64{val}
	nd.ivArg = []int32{arg}
	nd.buildSparse()
}

// envAt evaluates node v's envelope at column j: the value of the
// owning row there.
func (ix *Index) envAt(v int32, j int) float64 {
	nd := &ix.nodes[v]
	k := nd.findInterval(j)
	return ix.ev(int(nd.own[k]), j)
}

// mergeEnvelopes fills parent node v from children l (smaller rows) and
// r (larger rows). The two envelopes cross at most once: the smaller
// rows win a suffix of the columns (ties included — ties go to the
// smaller row), so the crossing column is found by binary search and
// the parent is r's envelope before it and l's from it on. Interval
// maxima are inherited except for the at-most-two intervals the
// crossing cuts, which are recomputed through the block-maxima table.
func (ix *Index) mergeEnvelopes(v, l, r int32) {
	n := ix.n
	cross := sort.Search(n, func(j int) bool {
		return ix.envAt(l, j) >= ix.envAt(r, j)
	})
	ln, rn := &ix.nodes[l], &ix.nodes[r]
	if cross == 0 {
		nd := &ix.nodes[v]
		nd.bp, nd.own, nd.ivMax, nd.ivArg = ln.bp, ln.own, ln.ivMax, ln.ivArg
		nd.sp, nd.spL = ln.sp, ln.spL
		nd.pw, nd.pr = ln.pw, ln.pr
		return
	}
	if cross == n {
		nd := &ix.nodes[v]
		nd.bp, nd.own, nd.ivMax, nd.ivArg = rn.bp, rn.own, rn.ivMax, rn.ivArg
		nd.sp, nd.spL = rn.sp, rn.spL
		nd.pw, nd.pr = rn.pw, rn.pr
		return
	}
	bp := make([]int32, 0, len(rn.own)+len(ln.own)+1)
	own := make([]int32, 0, len(rn.own)+len(ln.own))
	ivMax := make([]float64, 0, cap(own))
	ivArg := make([]int32, 0, cap(own))
	add := func(start int32, owner int32, val float64, arg int32) {
		bp = append(bp, start)
		own = append(own, owner)
		ivMax = append(ivMax, val)
		ivArg = append(ivArg, arg)
	}
	c := int32(cross)
	for k := range rn.own {
		start := rn.bp[k]
		if start >= c {
			break
		}
		if end := rn.bp[k+1]; end <= c {
			add(start, rn.own[k], rn.ivMax[k], rn.ivArg[k])
		} else {
			val, arg := ix.rowRangeMax(int(rn.own[k]), int(start), cross-1)
			add(start, rn.own[k], val, arg)
		}
	}
	for k := range ln.own {
		end := ln.bp[k+1]
		if end <= c {
			continue
		}
		if start := ln.bp[k]; start >= c {
			add(start, ln.own[k], ln.ivMax[k], ln.ivArg[k])
		} else {
			val, arg := ix.rowRangeMax(int(ln.own[k]), cross, int(end)-1)
			add(c, ln.own[k], val, arg)
		}
	}
	bp = append(bp, int32(n))
	nd := &ix.nodes[v]
	nd.bp, nd.own, nd.ivMax, nd.ivArg = bp, own, ivMax, ivArg
	nd.buildSparse()
	nd.buildPacked(n)
}

// buildPacked fills the node's packed predecessor structure when it
// has enough intervals to profit: one bit per interval start in a
// bitmap over the columns, plus per-word prefix ranks. findInterval is
// then rank(j) - 1 — a load, a mask, and a popcount.
func (nd *node) buildPacked(n int) {
	if len(nd.own) < packedMinIvals {
		return
	}
	words := (n + 63) >> 6
	nd.pw = make([]uint64, words)
	for _, start := range nd.bp[:len(nd.own)] {
		nd.pw[start>>6] |= 1 << (uint(start) & 63)
	}
	nd.pr = make([]int32, words)
	c := int32(0)
	for w, word := range nd.pw {
		nd.pr[w] = c
		c += int32(bits.OnesCount64(word))
	}
}

// buildSparse fills the node's sparse table: sp[l*K+k] is the best
// interval (largest maximum; ties to the smaller owner row, which is
// the larger interval index) among intervals [k, k+2^l).
func (nd *node) buildSparse() {
	k := len(nd.own)
	levels := 1
	for 1<<levels <= k {
		levels++
	}
	nd.spL = int32(levels)
	nd.sp = make([]int32, levels*k)
	for i := 0; i < k; i++ {
		nd.sp[i] = int32(i)
	}
	for l := 1; l < levels; l++ {
		half := 1 << (l - 1)
		for i := 0; i+(1<<l) <= k; i++ {
			nd.sp[l*k+i] = nd.betterInterval(nd.sp[(l-1)*k+i], nd.sp[(l-1)*k+i+half])
		}
	}
}

// betterInterval picks the winning interval: larger maximum, ties to
// the smaller owner row (owners are strictly decreasing in interval
// index, so distinct intervals never tie on both value and owner; a
// fully blocked pair resolves arbitrarily and is skipped at query
// time).
func (nd *node) betterInterval(x, y int32) int32 {
	vx, vy := nd.ivMax[x], nd.ivMax[y]
	if vy > vx || (vy == vx && nd.own[y] < nd.own[x]) {
		return y
	}
	return x
}

// rangeBest returns the best interval in [ka, kb] (inclusive, non-empty)
// via the sparse table: O(1).
func (nd *node) rangeBest(ka, kb int32) int32 {
	width := uint(kb - ka + 1)
	l := 0
	for 1<<(l+1) <= int(width) {
		l++
	}
	k := int32(len(nd.own))
	return nd.betterInterval(nd.sp[int32(l)*k+ka], nd.sp[int32(l)*k+kb+1-int32(1<<l)])
}

// findInterval returns the interval index containing column j: the
// number of interval starts at or before j, minus one. Packed nodes
// answer with one masked popcount (bp[0] = 0 guarantees rank >= 1);
// small nodes walk their breakpoints forward (the walk ends because
// bp[K] = n > j); mid nodes binary-search bp.
func (nd *node) findInterval(j int) int32 {
	if nd.pw != nil {
		w := j >> 6
		return int32(int(nd.pr[w])+smawk.Rank64(nd.pw[w], uint(j&63))) - 1
	}
	if len(nd.own) <= walkMaxIvals {
		k := int32(0)
		for int(nd.bp[k+1]) <= j {
			k++
		}
		return k
	}
	idx := sort.Search(len(nd.bp), func(i int) bool { return int(nd.bp[i]) > j })
	return int32(idx - 1)
}

// Rows returns the number of rows of the indexed array.
func (ix *Index) Rows() int { return ix.m }

// Cols returns the number of columns of the indexed array.
func (ix *Index) Cols() int { return ix.n }

// Bytes returns the index's approximate memory footprint, excluding the
// input array itself: the block-maxima and row-minima tables plus every
// node's envelope and sparse table.
func (ix *Index) Bytes() int64 { return ix.bytes }

// Breakpoints returns the total number of envelope intervals across all
// hierarchy nodes, the O(m log m) quantity that dominates the envelope
// storage.
func (ix *Index) Breakpoints() int {
	total := 0
	for i := range ix.nodes {
		total += len(ix.nodes[i].own)
	}
	return total
}

// CheckSubmatrix validates a SubmatrixMax query range without running
// it, for front ends that must fail fast on the calling goroutine.
func (ix *Index) CheckSubmatrix(r1, r2, c1, c2 int) error {
	if r1 < 0 || r2 < r1 || r2 >= ix.m || c1 < 0 || c2 < c1 || c2 >= ix.n {
		return merr.Errorf(merr.ErrDimensionMismatch,
			"mindex: SubmatrixMax[%d:%d, %d:%d] out of range for %dx%d index",
			r1, r2, c1, c2, ix.m, ix.n)
	}
	return nil
}

// CheckRowRange validates a RangeRowMinima query range without running
// it.
func (ix *Index) CheckRowRange(r1, r2 int) error {
	if r1 < 0 || r2 < r1 || r2 >= ix.m {
		return merr.Errorf(merr.ErrDimensionMismatch,
			"mindex: RangeRowMinima[%d:%d] out of range for %dx%d index",
			r1, r2, ix.m, ix.n)
	}
	return nil
}

// cutRef is one boundary cut deferred to a query's scan phase:
// interval k of node nd restricted to columns [x, y].
type cutRef struct {
	nd   *node
	k    int32
	x, y int32
}

// cutStack collects the deferred cuts of one query. Its fixed capacity
// covers two cuts for each of the at-most-2*lg(m) canonical nodes of
// any query against any practical m; if it ever fills, further cuts
// simply scan immediately, which is always correct.
type cutStack struct {
	n int
	c [128]cutRef
}

// SubmatrixMax returns the maximum entry of the inclusive rectangle
// [r1,r2] x [c1,c2] with the lexicographically smallest (row, col)
// among maximizers; +Inf entries never win, and a fully blocked
// rectangle answers {-1, -1, -Inf}. Throws merr.ErrDimensionMismatch
// for an out-of-range rectangle.
//
// The query runs in two phases. The descent phase resolves everything
// answerable from tables alone — whole-interval runs via the sparse
// tables, boundary cuts whose stored argmax survives the cut — and
// defers every cut that would have to rescan a row of the input. The
// scan phase then processes the deferred cuts best-first: almost all
// of them are pruned by the interval upper bound against the
// table-phase maximum, so a typical query touches the input array for
// at most one or two cuts. On inputs far larger than the caches those
// row touches are the only cache-cold traffic, which is what keeps
// tail latency near-flat in n. Candidate order never affects the
// answer: consider's order is total on (val, row, col).
func (ix *Index) SubmatrixMax(r1, r2, c1, c2 int) Pos {
	if err := ix.CheckSubmatrix(r1, r2, c1, c2); err != nil {
		merr.Throw(err)
	}
	best := Pos{Row: -1, Col: -1, Val: math.Inf(-1)}
	var st cutStack
	ix.query(0, r1, r2+1, c1, c2, &best, &st)
	if st.n > 0 {
		// Scan the largest upper bound first so the remaining cuts
		// prune against the strongest possible best.
		top := 0
		for i := 1; i < st.n; i++ {
			if st.c[i].nd.ivMax[st.c[i].k] > st.c[top].nd.ivMax[st.c[top].k] {
				top = i
			}
		}
		d := st.c[top]
		ix.scanCut(d.nd, d.k, int(d.x), int(d.y), &best)
		for i := 0; i < st.n; i++ {
			if i == top {
				continue
			}
			d := st.c[i]
			ix.scanCut(d.nd, d.k, int(d.x), int(d.y), &best)
		}
	}
	return best
}

// query descends the hierarchy from node v, resolving canonical nodes
// fully inside rows [r1, r2).
func (ix *Index) query(v int32, r1, r2, c1, c2 int, best *Pos, st *cutStack) {
	nd := &ix.nodes[v]
	if r1 <= int(nd.lo) && int(nd.hi) <= r2 {
		ix.scanNode(nd, c1, c2, best, st)
		return
	}
	mid := int(ix.nodes[nd.left].hi)
	if r1 < mid {
		ix.query(nd.left, r1, r2, c1, c2, best, st)
	}
	if r2 > mid {
		ix.query(nd.right, r1, r2, c1, c2, best, st)
	}
}

// consider merges one candidate into the running best under the
// deterministic contract: larger value, then smaller row, then smaller
// column. Blocked candidates (-Inf) are skipped so a fully blocked
// query keeps the {-1, -1} sentinel.
func consider(best *Pos, val float64, row, col int32) {
	if math.IsInf(val, -1) {
		return
	}
	if val > best.Val ||
		(val == best.Val && (int(row) < best.Row || (int(row) == best.Row && int(col) < best.Col))) {
		best.Val, best.Row, best.Col = val, int(row), int(col)
	}
}

// scanNode answers max over the node's whole row block restricted to
// columns [c1, c2]: the at-most-two cut intervals resolve through the
// stored interval maximum when its argmax survives the cut (O(1)) or
// the block-maxima table otherwise, and the run of whole intervals
// between them through the sparse table (O(1)).
func (ix *Index) scanNode(nd *node, c1, c2 int, best *Pos, st *cutStack) {
	kl := nd.findInterval(c1)
	kr := nd.findInterval(c2)
	if kl == kr {
		ix.cutInterval(nd, kl, c1, c2, best, st)
		return
	}
	if kl+1 <= kr-1 {
		k := nd.rangeBest(kl+1, kr-1)
		consider(best, nd.ivMax[k], nd.own[k], nd.ivArg[k])
	}
	ix.cutInterval(nd, kl, c1, int(nd.bp[kl+1])-1, best, st)
	ix.cutInterval(nd, kr, int(nd.bp[kr]), c2, best, st)
}

// cutInterval considers interval k restricted to columns [x, y]. When
// the restriction keeps the whole interval, or the stored leftmost
// argmax falls inside the cut (in which case it is also the cut's
// leftmost maximizer), the stored answer is reused; any other cut is
// deferred to the query's scan phase.
func (ix *Index) cutInterval(nd *node, k int32, x, y int, best *Pos, st *cutStack) {
	if arg := nd.ivArg[k]; (x == int(nd.bp[k]) && y == int(nd.bp[k+1])-1) ||
		(arg >= 0 && int(arg) >= x && int(arg) <= y) {
		consider(best, nd.ivMax[k], nd.own[k], arg)
		return
	}
	if st.n < len(st.c) {
		st.c[st.n] = cutRef{nd: nd, k: k, x: int32(x), y: int32(y)}
		st.n++
		return
	}
	ix.scanCut(nd, k, x, y, best)
}

// scanCut resolves one deferred cut: the stored interval maximum — an
// upper bound on the cut's maximum — prunes the scan whenever no value
// the cut could yield would improve best (any cut maximizer has row
// own[k] and column >= x, so the bound extends to the tie-breaking
// order); an unpruned cut recomputes the owner's row-range maximum
// from the block-maxima table and the row itself.
func (ix *Index) scanCut(nd *node, k int32, x, y int, best *Pos) {
	if v, row := nd.ivMax[k], int(nd.own[k]); v < best.Val ||
		(v == best.Val && (row > best.Row || (row == best.Row && x >= best.Col))) {
		return
	}
	val, arg := ix.rowRangeMax(int(nd.own[k]), x, y)
	consider(best, val, nd.own[k], arg)
}

// RangeRowMinima returns, for each row in the inclusive range [r1, r2],
// the column of its leftmost minimum over the full column span — index
// r1 first — exactly as smawk.RowMinima would answer row by row (for
// staircase inputs, smawk.StaircaseRowMinima: -1 marks fully blocked
// rows). The table is precomputed at Build; a query is one bounded
// copy. Throws merr.ErrDimensionMismatch for an out-of-range row range.
func (ix *Index) RangeRowMinima(r1, r2 int) []int {
	if err := ix.CheckRowRange(r1, r2); err != nil {
		merr.Throw(err)
	}
	out := make([]int, r2-r1+1)
	for i := range out {
		out[i] = int(ix.rowMin[r1+i])
	}
	return out
}

// SubmatrixMaxBrute is the O(area) oracle for SubmatrixMax: an
// exhaustive scan applying the identical value and tie-breaking
// contract. Tests compare the index against it entry for entry.
func SubmatrixMaxBrute(a marray.Matrix, r1, r2, c1, c2 int) Pos {
	best := Pos{Row: -1, Col: -1, Val: math.Inf(-1)}
	for i := r1; i <= r2; i++ {
		for j := c1; j <= c2; j++ {
			v := a.At(i, j)
			if math.IsInf(v, 1) {
				continue
			}
			if v > best.Val {
				best = Pos{Row: i, Col: j, Val: v}
			}
		}
	}
	return best
}
