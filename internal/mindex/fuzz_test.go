package mindex_test

// FuzzSubmatrixMaxMatchesBrute is the differential fuzz layer of the
// submatrix-maximum index: every fuzzed instance is checked three ways,
// all index-exact —
//
//   1. SubmatrixMax against the O(area) brute oracle (value, row, and
//      column, under the lexicographic tie contract);
//   2. the submatrix maximum re-derived through uncached SMAWK row
//      minima on BOTH execution backends (a simulated-PRAM batch driver
//      and a native-goroutine batch driver), via the
//      negate/reverse-columns adapter that turns window row maxima into
//      Monge row minima;
//   3. RangeRowMinima against the same two backends' full row-minima
//      answers (the staircase solvers for staircase inputs, -1 on fully
//      blocked rows included).
//
// This file is an external test package so it can import internal/batch
// (which depends on internal/native); the corpus under testdata/fuzz
// replays as plain tests. Run locally with
//
//	go test ./internal/mindex -run='^$' -fuzz=FuzzSubmatrixMaxMatchesBrute -fuzztime=30s

import (
	"math"
	"math/rand"
	"testing"

	"monge/internal/batch"
	"monge/internal/marray"
	"monge/internal/mindex"
	"monge/internal/pram"
)

// The cross-backend oracles: one driver per execution engine, reused
// across fuzz iterations exactly like a serving shard would reuse its
// driver. The fuzz body runs sequentially, matching the drivers'
// single-goroutine contract.
var (
	pramDrv   = batch.New(pram.CRCW)
	nativeDrv = batch.NewWithBackend(pram.CRCW, batch.BackendNative)
)

// fuzzDim maps an arbitrary fuzzed int to a dimension in [1, 96].
func fuzzDim(x int) int {
	if x < 0 {
		x = -x
	}
	return x%96 + 1
}

// fuzzRange maps two fuzzed ints to an inclusive index range in [0, size).
func fuzzRange(lo, hi, size int) (int, int) {
	if lo < 0 {
		lo = -lo
	}
	if hi < 0 {
		hi = -hi
	}
	a := lo % size
	return a, a + hi%(size-a)
}

// windowMaxViaDriver computes the submatrix maximum of the window
// through a batch driver's uncached SMAWK row minima: negating and
// column-reversing the Monge window makes its row maxima the driver's
// row minima. The returned position carries the smallest maximizing
// row; the column is the driver's (rightmost-max) pick, so callers
// compare value and row.
func windowMaxViaDriver(d *batch.Driver, a marray.Matrix, r1, r2, c1, c2 int) (float64, int) {
	w := marray.Window(a, r1, c1, r2-r1+1, c2-c1+1)
	idx := d.RowMinima(marray.ReverseCols(marray.Negate(w)))
	bestV, bestR := math.Inf(-1), -1
	wn := w.Cols()
	for i, j := range idx {
		if v := w.At(i, wn-1-j); v > bestV {
			bestV, bestR = v, r1+i
		}
	}
	return bestV, bestR
}

func FuzzSubmatrixMaxMatchesBrute(f *testing.F) {
	f.Add(int64(1), 8, 8, 0, 7, 0, 7)
	f.Add(int64(2), 1, 77, 0, 0, 3, 50)
	f.Add(int64(3), 77, 1, 5, 60, 0, 0)
	f.Add(int64(4), 63, 64, 7, 40, 9, 33)
	f.Add(int64(5), 64, 63, 0, 62, 62, 0)
	f.Add(int64(6), 96, 96, 17, 2, 95, 1)
	f.Add(int64(7), 96, 2, 90, 5, 1, 1)  // huge aspect ratio, tall
	f.Add(int64(8), 2, 96, 1, 0, 80, 15) // huge aspect ratio, wide
	f.Fuzz(func(t *testing.T, seed int64, rawM, rawN, rawR1, rawR2, rawC1, rawC2 int) {
		m, n := fuzzDim(rawM), fuzzDim(rawN)
		r1, r2 := fuzzRange(rawR1, rawR2, m)
		c1, c2 := fuzzRange(rawC1, rawC2, n)
		rng := rand.New(rand.NewSource(seed))
		heavy := infHeavyStair(rng, m, n)
		cases := []struct {
			name   string
			a      marray.Matrix
			finite bool // eligible for the Monge row-minima backend adapters
		}{
			{"real", marray.RandomMonge(rng, m, n), true},
			{"int-ties", marray.RandomMongeInt(rng, m, n, 2), true},
			{"all-ties", marray.Func{M: m, N: n, F: func(i, j int) float64 { return 5 }}, true},
			{"inf-heavy-staircase", heavy, false},
		}
		for _, tc := range cases {
			ix := mindex.Build(tc.a, mindex.Opts{})
			for _, r := range [][4]int{{r1, r2, c1, c2}, {0, m - 1, 0, n - 1}, {r1, r1, c1, c1}} {
				got := ix.SubmatrixMax(r[0], r[1], r[2], r[3])
				want := mindex.SubmatrixMaxBrute(tc.a, r[0], r[1], r[2], r[3])
				if got != want {
					t.Fatalf("seed=%d %s %dx%d [%d:%d,%d:%d]: index %+v, brute %+v",
						seed, tc.name, m, n, r[0], r[1], r[2], r[3], got, want)
				}
				if tc.finite {
					for drvName, d := range map[string]*batch.Driver{"pram": pramDrv, "native": nativeDrv} {
						v, row := windowMaxViaDriver(d, tc.a, r[0], r[1], r[2], r[3])
						if v != got.Val || row != got.Row {
							t.Fatalf("seed=%d %s %dx%d [%d:%d,%d:%d]: index (val=%g,row=%d), %s SMAWK backend (val=%g,row=%d)",
								seed, tc.name, m, n, r[0], r[1], r[2], r[3], got.Val, got.Row, drvName, v, row)
						}
					}
				}
			}
			// RangeRowMinima three ways: index vs both backends' uncached
			// full row minima, sliced to the query range.
			for drvName, d := range map[string]*batch.Driver{"pram": pramDrv, "native": nativeDrv} {
				var full []int
				if tc.finite {
					full = d.RowMinima(tc.a)
				} else {
					full = d.StaircaseRowMinima(tc.a)
				}
				got := ix.RangeRowMinima(r1, r2)
				for i, j := range got {
					if j != full[r1+i] {
						t.Fatalf("seed=%d %s %dx%d rows [%d:%d]: RangeRowMinima[%d] = %d, %s backend says %d",
							seed, tc.name, m, n, r1, r2, i, j, drvName, full[r1+i])
					}
				}
			}
		}
	})
}
