package core

import (
	"math/rand"
	"testing"

	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

func TestTubeMaximaMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 40; trial++ {
		p, q, r := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		c := marray.RandomComposite(rng, p, q, r)
		wantJ, wantV := smawk.TubeMaxima(c)
		for _, mach := range machines(p * (q + r)) {
			gotJ, gotV := TubeMaxima(mach, c)
			for i := 0; i < p; i++ {
				if !eqInts(gotJ[i], wantJ[i]) {
					t.Fatalf("trial %d (%v) slice %d: got %v want %v",
						trial, mach.Mode(), i, gotJ[i], wantJ[i])
				}
				for k := 0; k < r; k++ {
					if gotV[i][k] != wantV[i][k] {
						t.Fatalf("value mismatch at (%d,%d)", i, k)
					}
				}
			}
		}
	}
}

func TestTubeMinimaMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		p, q, r := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		c := marray.NewComposite(
			marray.RandomInverseMonge(rng, p, q),
			marray.RandomInverseMonge(rng, q, r),
		)
		wantJ, _ := smawk.TubeMinima(c)
		mach := pram.New(pram.CRCW, p*(q+r))
		gotJ, _ := TubeMinima(mach, c)
		for i := 0; i < p; i++ {
			if !eqInts(gotJ[i], wantJ[i]) {
				t.Fatalf("trial %d slice %d: got %v want %v", trial, i, gotJ[i], wantJ[i])
			}
		}
	}
}

func TestTubeMaximaTies(t *testing.T) {
	// All-zero factors: every j ties; smallest j must win.
	c := marray.NewComposite(marray.NewDense(3, 5), marray.NewDense(5, 4))
	mach := pram.New(pram.CREW, 3*9)
	argJ, _ := TubeMaxima(mach, c)
	for i := range argJ {
		for k := range argJ[i] {
			if argJ[i][k] != 0 {
				t.Fatalf("tie must pick smallest j, got %d", argJ[i][k])
			}
		}
	}
}

// TestTubeCREWLogTime checks the Table 1.3 CREW shape: time / lg n bounded
// as n grows (our processor groups give each slice q + r processors).
func TestTubeCREWLogTime(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	timeFor := func(n int) float64 {
		c := marray.RandomComposite(rng, n, n, n)
		mach := pram.New(pram.CREW, n*2*n)
		TubeMaxima(mach, c)
		return float64(mach.Time()) / float64(pram.Log2Ceil(n))
	}
	r64, r256 := timeFor(64), timeFor(256)
	if r256 > 3*r64 {
		t.Fatalf("tube CREW time/lg n grows too fast: %f -> %f", r64, r256)
	}
}
