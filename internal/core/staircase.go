package core

import (
	"math"

	"monge/internal/marray"
	"monge/internal/pram"
)

// StaircaseRowMinima computes, for each row of the staircase-Monge array a,
// the column of its leftmost finite minimum (-1 for fully blocked rows), on
// the given machine. This is Theorem 2.3 of the paper: on a CRCW machine
// with n processors the measured time is O(lg n) for an n x n array; on a
// CREW machine declaring n / lg lg n processors it runs within the
// O(lg n lg lg n) bound of Table 1.2.
//
// The algorithm samples every sqrt(k)-th row, solves the sampled staircase
// subarray recursively, and classifies the remaining rows' candidate
// columns into the two feasible-region classes of Figure 2.2: fully finite
// Monge rectangles between consecutive sampled minima (searched by the
// plain Monge recursion of RowMinima) and staircase tail regions beyond the
// next sampled row's boundary (solved recursively). Rows whose own
// boundary has crossed left of the upper sampled minimum ("bracketed"
// regions, identified in the paper via the ANSV relation) reopen a left
// window and also recurse. All regions of one level are searched by
// parallel processor groups whose sizes telescope to O(m + n).
func StaircaseRowMinima(mach *pram.Machine, a marray.Matrix) []int {
	m, n := a.Rows(), a.Cols()
	out := make([]int, m)
	if m == 0 || n == 0 {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	ws := getWS()
	defer putWS(ws)
	// Row boundaries: one superstep of m processors; binary search inside
	// the body costs lg n unless the matrix carries its boundary function.
	f := ws.ints.Alloc(m)
	if st, ok := a.(marray.Staircase); ok {
		mach.Step(m, func(id int) { f[id] = st.Boundary(id) })
	} else {
		mach.StepCost(m, pram.Log2Ceil(n)+1, func(id int) {
			f[id] = marray.BoundaryOf(a, id)
		})
	}
	s := &stairSearcher{a: a, f: f, ws: ws}
	rows := ws.ints.Alloc(m)
	for i := range rows {
		rows[i] = i
	}
	res := s.solve(mach, rows, 0, n)
	for i := range rows {
		out[i] = res[i].col
	}
	return out
}

// stairCand is a window-local answer: leftmost minimising column within
// the window (or -1) and its value.
type stairCand struct {
	col int
	val float64
}

func worstStair() stairCand { return stairCand{col: -1, val: math.Inf(1)} }

func (x stairCand) better(y stairCand) bool {
	if x.col == -1 {
		return false
	}
	if y.col == -1 {
		return true
	}
	if x.val != y.val {
		return x.val < y.val
	}
	return x.col < y.col
}

type stairSearcher struct {
	a  marray.Matrix
	f  []int // first blocked column per global row
	ws *coreWS
}

func (s *stairSearcher) eff(r, c1 int) int {
	if s.f[r] < c1 {
		return s.f[r]
	}
	return c1
}

// solve returns window-local minima of the given global rows over columns
// [c0, c1).
func (s *stairSearcher) solve(mach *pram.Machine, rows []int, c0, c1 int) []stairCand {
	res := s.ws.cands.Alloc(len(rows))
	for i := range res {
		res[i] = worstStair()
	}
	if len(rows) == 0 || c0 >= c1 {
		return res
	}
	if len(rows) <= 2 || c1-c0 <= 4 {
		s.baseScan(mach, rows, c0, c1, res)
		return res
	}
	// res is allocated above the mark; everything below is reclaimed when
	// this frame returns (see ws.go).
	mark := s.ws.mark()
	defer s.ws.rewind(mark)

	step := isqrt(len(rows))
	if step < 2 {
		step = 2
	}
	nS := 0
	for p := step - 1; p < len(rows); p += step {
		nS++
	}
	sampledPos := s.ws.ints.Alloc(nS)
	sampledRows := s.ws.ints.Alloc(nS)
	for i, p := 0, step-1; p < len(rows); i, p = i+1, p+step {
		sampledPos[i] = p
		sampledRows[i] = rows[p]
	}
	mach.Step(nS, func(int) {}) // B^t row extraction
	sres := s.solve(mach, sampledRows, c0, c1)
	for i, p := range sampledPos {
		res[p] = sres[i]
	}

	// Gap descriptors (one per unsampled run, as in the plain Monge
	// recursion). Each gap then fans out into up to three feasible-region
	// searches executed by parallel processor groups.
	nG := 0
	gapStart := 0
	for g := 0; g <= nS; g++ {
		gapEnd := len(rows)
		if g < nS {
			gapEnd = sampledPos[g]
		}
		if gapStart < gapEnd {
			nG++
		}
		if g < nS {
			gapStart = sampledPos[g] + 1
		}
	}
	gaps := s.ws.sgaps.Alloc(nG)
	procs := s.ws.ints.Alloc(nG)
	gi := 0
	gapStart = 0
	for g := 0; g <= nS; g++ {
		gapEnd := len(rows)
		if g < nS {
			gapEnd = sampledPos[g]
		}
		if gapStart < gapEnd {
			gaps[gi] = stairGap{start: gapStart, end: gapEnd, g: g}
			width := 0
			if g < nS && sres[g].col >= 0 {
				lo := c0
				if g > 0 && sres[g-1].col >= 0 {
					lo = sres[g-1].col
				}
				width = sres[g].col - lo + 1
			} else {
				width = c1 - c0
			}
			procs[gi] = (gapEnd - gapStart) + width
			gi++
		}
		if g < nS {
			gapStart = sampledPos[g] + 1
		}
	}

	results := s.ws.cslices.Alloc(nG)
	mach.ParallelDo(procs, func(b int, sub *pram.Machine) {
		results[b] = s.solveGap(sub, rows, gaps[b].start, gaps[b].end, gaps[b].g, sampledPos, sres, c0, c1)
	})
	for b, gp := range gaps {
		for i := gp.start; i < gp.end; i++ {
			if results[b][i-gp.start].better(res[i]) {
				res[i] = results[b][i-gp.start]
			}
		}
	}
	return res
}

// solveGap computes window-local minima for the gap rows at positions
// [gapStart, gapEnd) of rows, given the sampled answers bracketing the gap.
func (s *stairSearcher) solveGap(mach *pram.Machine, rows []int, gapStart, gapEnd, g int, sampledPos []int, sres []stairCand, c0, c1 int) []stairCand {
	k := gapEnd - gapStart
	res := s.ws.cands.Alloc(k)
	for i := range res {
		res[i] = worstStair()
	}
	mark := s.ws.mark()
	defer s.ws.rewind(mark)
	lb := c0
	if g > 0 && sres[g-1].col >= 0 {
		lb = sres[g-1].col
	}
	haveBelow := g < len(sampledPos) && sres[g].col >= 0
	var cq, effq int
	if haveBelow {
		cq = sres[g].col
		effq = s.eff(rows[sampledPos[g]], c1)
	}

	// Clean rows (boundary still right of lb) form a prefix of the gap;
	// crossed rows a suffix, because boundaries are nonincreasing.
	mach.Step(k, func(int) {}) // classification step
	nClean, nCrossed := 0, 0
	for p := gapStart; p < gapEnd; p++ {
		e := s.eff(rows[p], c1)
		if e <= c0 {
			continue
		}
		if e > lb {
			nClean++
		} else {
			nCrossed++
		}
	}
	cleanPos := s.ws.ints.Alloc(nClean)
	crossedPos := s.ws.ints.Alloc(nCrossed)
	ci, xi := 0, 0
	for p := gapStart; p < gapEnd; p++ {
		e := s.eff(rows[p], c1)
		if e <= c0 {
			continue
		}
		if e > lb {
			cleanPos[ci] = p
			ci++
		} else {
			crossedPos[xi] = p
			xi++
		}
	}

	merge := func(pos []int, sub []stairCand) {
		for i, p := range pos {
			if sub[i].better(res[p-gapStart]) {
				res[p-gapStart] = sub[i]
			}
		}
	}

	// At most three feasible-region jobs per gap (kinds documented on
	// stairJob in ws.go).
	jobs := s.ws.sjobs.Alloc(3)[:0]
	procs := s.ws.ints.Alloc(3)[:0]
	if haveBelow {
		if len(cleanPos) > 0 && lb <= cq {
			jobs = append(jobs, stairJob{kind: 0, pos: cleanPos, jLo: lb, jHi: cq})
			procs = append(procs, len(cleanPos)+(cq-lb+1))
		}
		if effq < c1 {
			all := s.ws.ints.Alloc(nClean + nCrossed)
			copy(all, cleanPos)
			copy(all[nClean:], crossedPos)
			if len(all) > 0 {
				jobs = append(jobs, stairJob{kind: 1, pos: all, jLo: effq, jHi: c1})
				procs = append(procs, len(all)+(c1-effq))
			}
		}
		if len(crossedPos) > 0 {
			hi := cq + 1
			if hi > c1 {
				hi = c1
			}
			jobs = append(jobs, stairJob{kind: 1, pos: crossedPos, jLo: c0, jHi: hi})
			procs = append(procs, len(crossedPos)+(hi-c0))
		}
	} else {
		if len(cleanPos) > 0 {
			jobs = append(jobs, stairJob{kind: 1, pos: cleanPos, jLo: lb, jHi: c1})
			procs = append(procs, len(cleanPos)+(c1-lb))
		}
		if len(crossedPos) > 0 {
			jobs = append(jobs, stairJob{kind: 1, pos: crossedPos, jLo: c0, jHi: c1})
			procs = append(procs, len(crossedPos)+(c1-c0))
		}
	}

	subResults := s.ws.cslices.Alloc(len(jobs))
	mach.ParallelDo(procs, func(b int, sub *pram.Machine) {
		jb := jobs[b]
		if jb.kind == 0 {
			subResults[b] = s.mongeRegion(sub, rows, jb.pos, jb.jLo, jb.jHi)
			return
		}
		subRows := s.ws.ints.Alloc(len(jb.pos))
		for i, p := range jb.pos {
			subRows[i] = rows[p]
		}
		subResults[b] = s.solve(sub, subRows, jb.jLo, jb.jHi)
	})
	mach.Step(k, func(int) {}) // merge step
	for b, jb := range jobs {
		merge(jb.pos, subResults[b])
	}
	return res
}

// mongeRegion searches the fully finite rectangle (rows at positions pos) x
// (columns [jLo, jHi] inclusive) with the plain Monge recursion.
func (s *stairSearcher) mongeRegion(mach *pram.Machine, rows []int, pos []int, jLo, jHi int) []stairCand {
	subRows := s.ws.ints.Alloc(len(pos))
	for i, p := range pos {
		subRows[i] = rows[p]
	}
	sr := &searcher{a: s.a, ws: s.ws}
	cols := sr.solve(mach, subRows, jLo, jHi)
	out := s.ws.cands.Alloc(len(pos))
	for i := range pos {
		out[i] = stairCand{col: cols[i], val: s.a.At(subRows[i], cols[i])}
	}
	return out
}

// baseScan resolves tiny subproblems with the lockstep reduction of the
// plain searcher; +Inf entries lose every comparison, and a row whose best
// value is +Inf is reported as blocked.
func (s *stairSearcher) baseScan(mach *pram.Machine, rows []int, c0, c1 int, res []stairCand) {
	sr := &searcher{a: s.a, ws: s.ws}
	cols := sr.base(mach, rows, c0, c1-1)
	for i, r := range rows {
		v := s.a.At(r, cols[i])
		if math.IsInf(v, 1) {
			res[i] = worstStair()
		} else {
			res[i] = stairCand{col: cols[i], val: v}
		}
	}
}
