package core

import (
	"monge/internal/marray"
	"monge/internal/pram"
)

// TubeMaxima solves the tube-maxima problem for the p x q x r
// Monge-composite array c[i,j,k] = d[i,j] + e[j,k] (D, E Monge) on the
// given machine: for every (i, k) it returns the smallest middle
// coordinate j among those maximising c[i,j,k], plus the maxima values.
//
// The i-slices W_i[k][j] = d[i,j] + e[j,k] are independent r x q Monge
// arrays, so the p slices are searched simultaneously by parallel
// processor groups of q + r processors each (p*(q+r) total, which is
// Theta(n^2) for a cubical array), each group running the two-dimensional
// Monge row-maxima recursion. Measured time is O(lg n) on both machine
// modes, matching the Theta(lg n) CREW row of Table 1.3.
//
// The CRCW row of Table 1.3 cites Atallah's Theta(lg lg n) algorithm
// [Ata89], an unpublished technical report whose details this repository
// does not reconstruct; on a CRCW machine this implementation still
// benefits from the doubly-logarithmic tournament in its leaf reductions
// but its overall step count remains O(lg n). EXPERIMENTS.md records this
// as a documented deviation; the doubly-logarithmic CRCW minimum itself is
// implemented and benchmarked as pram.CRCWMinIndex.
func TubeMaxima(mach *pram.Machine, c marray.Composite) (argJ [][]int, vals [][]float64) {
	return tubeSearch(mach, c, true)
}

// TubeMinima is the minimisation analogue of TubeMaxima for composites
// with inverse-Monge factors (the orientation used by shortest-path
// applications such as string editing).
func TubeMinima(mach *pram.Machine, c marray.Composite) (argJ [][]int, vals [][]float64) {
	return tubeSearch(mach, c, false)
}

func tubeSearch(mach *pram.Machine, c marray.Composite, maxima bool) ([][]int, [][]float64) {
	p, q, r := c.P(), c.Q(), c.R()
	vals := make([][]float64, p)
	procs := make([]int, p)
	for i := range procs {
		procs[i] = q + r
	}
	results := make([][]int, p)
	mach.ParallelDo(procs, func(i int, sub *pram.Machine) {
		wi := marray.Func{M: r, N: q, F: func(k, j int) float64 {
			return c.D.At(i, j) + c.E.At(j, k)
		}}
		if maxima {
			results[i] = MongeRowMaxima(sub, wi)
		} else {
			results[i] = InverseMongeRowMinima(sub, wi)
		}
	})
	for i := 0; i < p; i++ {
		vals[i] = make([]float64, r)
		for k := 0; k < r; k++ {
			vals[i][k] = c.At(i, results[i][k], k)
		}
	}
	return results, vals
}
