package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

func TestStaircaseRowMinimaMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 80; trial++ {
		m, n := 1+rng.Intn(35), 1+rng.Intn(35)
		a := marray.RandomStaircaseMonge(rng, m, n)
		want := smawk.StaircaseRowMinimaBrute(a)
		for _, mach := range machines(m + n) {
			got := StaircaseRowMinima(mach, a)
			if !eqInts(got, want) {
				t.Fatalf("trial %d (%dx%d, %v): got %v want %v",
					trial, m, n, mach.Mode(), got, want)
			}
		}
	}
}

func TestStaircaseRowMinimaPlainMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomMonge(rng, m, n)
		want := smawk.RowMinima(a)
		mach := pram.New(pram.CRCW, m+n)
		if got := StaircaseRowMinima(mach, a); !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestStaircaseRowMinimaLargerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	shapes := [][2]int{{150, 20}, {20, 150}, {100, 100}, {1, 40}, {40, 1}, {257, 63}}
	for _, sh := range shapes {
		for trial := 0; trial < 3; trial++ {
			a := marray.RandomStaircaseMonge(rng, sh[0], sh[1])
			want := smawk.StaircaseRowMinimaBrute(a)
			mach := pram.New(pram.CRCW, sh[0]+sh[1])
			if got := StaircaseRowMinima(mach, a); !eqInts(got, want) {
				t.Fatalf("shape %v trial %d mismatch", sh, trial)
			}
		}
	}
}

func TestStaircaseAllBlocked(t *testing.T) {
	a := marray.StairFunc{
		M: 6, N: 6,
		F:     func(i, j int) float64 { return 0 },
		Bound: func(i int) int { return 0 },
	}
	mach := pram.New(pram.CRCW, 12)
	got := StaircaseRowMinima(mach, a)
	for _, g := range got {
		if g != -1 {
			t.Fatalf("all-blocked must give -1, got %v", got)
		}
	}
}

func TestStaircaseUsesBoundaryInterface(t *testing.T) {
	// A StairFunc input exposes Boundary; the boundary step should then be
	// cost 1 rather than lg n. Verify via the time counter on a single-row
	// matrix (boundary + base scan only).
	mk := func(a marray.Matrix) int64 {
		mach := pram.New(pram.CREW, 4)
		StaircaseRowMinima(mach, a)
		return mach.Time()
	}
	n := 1 << 12
	impl := marray.StairFunc{
		M: 1, N: n,
		F:     func(i, j int) float64 { return float64(j) },
		Bound: func(i int) int { return n },
	}
	plain := marray.Func{M: 1, N: n, F: func(i, j int) float64 { return float64(j) }}
	if mk(impl) > mk(plain) {
		t.Fatalf("Staircase interface path should not be slower: %d vs %d", mk(impl), mk(plain))
	}
}

func TestStaircaseTies(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		d := marray.NewDense(m, n)
		prefix := make([]float64, n)
		for i := 0; i < m; i++ {
			acc := 0.0
			for j := 0; j < n; j++ {
				acc -= float64(rng.Intn(2))
				prefix[j] += acc
				d.Set(i, j, prefix[j])
			}
		}
		bounds := marray.RandomStaircaseBoundary(rng, m, n)
		for i := 0; i < m; i++ {
			for j := bounds[i]; j < n; j++ {
				d.Set(i, j, marray.Inf)
			}
		}
		want := smawk.StaircaseRowMinimaBrute(d)
		mach := pram.New(pram.CRCW, m+n)
		if got := StaircaseRowMinima(mach, d); !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestQuickStaircaseParallel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(50), 1+rng.Intn(50)
		a := marray.RandomStaircaseMonge(rng, m, n)
		mach := pram.New(pram.CRCW, m+n)
		return eqInts(StaircaseRowMinima(mach, a), smawk.StaircaseRowMinimaBrute(a))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStaircaseCRCWLogTime checks the Table 1.2 shape: CRCW time / lg n
// bounded as n grows.
func TestStaircaseCRCWLogTime(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	timeFor := func(n int) float64 {
		a := marray.RandomStaircaseMonge(rng, n, n)
		mach := pram.New(pram.CRCW, n)
		StaircaseRowMinima(mach, a)
		return float64(mach.Time()) / float64(pram.Log2Ceil(n))
	}
	r256, r2048 := timeFor(256), timeFor(2048)
	if r2048 > 3*r256 {
		t.Fatalf("staircase CRCW time/lg n grows too fast: %f -> %f", r256, r2048)
	}
}

// TestLemma22FeasibleRegionCounts validates the structural claims behind
// Lemma 2.2 on random instances: with u sampled rows, the per-level region
// fan-out stays linear (at most ~2 regions per gap plus the Monge
// rectangles), and the bracketing relation of sampled minima matches the
// ANSV left-smaller relation the paper uses for allocation.
func TestLemma22FeasibleRegionCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 20; trial++ {
		n := 64 + rng.Intn(64)
		a := marray.RandomStaircaseMonge(rng, n, n)
		// Sampled minima columns (true minima of every s-th row).
		all := smawk.StaircaseRowMinimaBrute(a)
		s := 8
		var cols []float64
		for i := s - 1; i < n; i += s {
			if all[i] >= 0 {
				cols = append(cols, float64(all[i]))
			}
		}
		if len(cols) == 0 {
			continue
		}
		left, _ := pram.ANSVSeq(cols)
		// The paper's "bracketed" relation: minimum m2 is bracketed by the
		// nearest preceding minimum strictly to its left; ANSV left-smaller
		// computes exactly that neighbour.
		for i, l := range left {
			if l >= 0 && cols[l] >= cols[i] {
				t.Fatalf("ANSV left neighbour not strictly smaller at %d", i)
			}
		}
	}
}
