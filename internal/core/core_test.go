package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func machines(n int) []*pram.Machine {
	return []*pram.Machine{
		pram.New(pram.CRCW, n),
		pram.New(pram.CREW, n),
	}
}

func TestRowMinimaMatchesSMAWK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		a := marray.RandomMonge(rng, m, n)
		want := smawk.RowMinima(a)
		for _, mach := range machines(m + n) {
			got := RowMinima(mach, a)
			if !eqInts(got, want) {
				t.Fatalf("trial %d (%dx%d, %v): got %v want %v",
					trial, m, n, mach.Mode(), got, want)
			}
		}
	}
}

func TestRowMinimaLeftmostTies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		// integer-valued Monge array with many ties
		d := marray.NewDense(m, n)
		prefix := make([]float64, n)
		for i := 0; i < m; i++ {
			acc := 0.0
			for j := 0; j < n; j++ {
				acc -= float64(rng.Intn(2))
				prefix[j] += acc
				d.Set(i, j, prefix[j])
			}
		}
		want := smawk.RowMinimaBrute(d)
		for _, mach := range machines(m + n) {
			got := RowMinima(mach, d)
			if !eqInts(got, want) {
				t.Fatalf("trial %d (%v): got %v want %v", trial, mach.Mode(), got, want)
			}
		}
	}
}

func TestRowMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomInverseMonge(rng, m, n)
		want := smawk.RowMaximaBrute(a)
		for _, mach := range machines(m + n) {
			if got := RowMaxima(mach, a); !eqInts(got, want) {
				t.Fatalf("trial %d (%v): got %v want %v", trial, mach.Mode(), got, want)
			}
		}
	}
}

func TestMongeRowMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomMonge(rng, m, n)
		want := smawk.RowMaximaBrute(a)
		for _, mach := range machines(m + n) {
			if got := MongeRowMaxima(mach, a); !eqInts(got, want) {
				t.Fatalf("trial %d (%v): got %v want %v", trial, mach.Mode(), got, want)
			}
		}
	}
}

func TestInverseMongeRowMinima(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomInverseMonge(rng, m, n)
		want := smawk.RowMinimaBrute(a)
		for _, mach := range machines(m + n) {
			if got := InverseMongeRowMinima(mach, a); !eqInts(got, want) {
				t.Fatalf("trial %d (%v): got %v want %v", trial, mach.Mode(), got, want)
			}
		}
	}
}

func TestRowMinimaRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	shapes := [][2]int{{1, 1}, {1, 64}, {64, 1}, {256, 8}, {8, 256}, {100, 100}}
	for _, sh := range shapes {
		a := marray.RandomMonge(rng, sh[0], sh[1])
		want := smawk.RowMinima(a)
		for _, mach := range machines(sh[0] + sh[1]) {
			if got := RowMinima(mach, a); !eqInts(got, want) {
				t.Fatalf("shape %v (%v) mismatch", sh, mach.Mode())
			}
		}
	}
}

func TestRowMinimaEmpty(t *testing.T) {
	mach := pram.New(pram.CRCW, 1)
	if got := RowMinima(mach, marray.NewDense(0, 0)); len(got) != 0 {
		t.Fatal("empty should give empty")
	}
}

func TestQuickRowMinima(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(60), 1+rng.Intn(60)
		a := marray.RandomMonge(rng, m, n)
		mach := pram.New(pram.CRCW, m+n)
		return eqInts(RowMinima(mach, a), smawk.RowMinima(a))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRowMinimaCRCWLogTime checks the Table 1.1 shape claim: with n
// processors on a CRCW machine, time/lg(n) stays bounded as n grows.
func TestRowMinimaCRCWLogTime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	timeFor := func(n int) float64 {
		a := marray.RandomMonge(rng, n, n)
		mach := pram.New(pram.CRCW, n)
		RowMinima(mach, a)
		return float64(mach.Time()) / float64(pram.Log2Ceil(n))
	}
	r256 := timeFor(256)
	r2048 := timeFor(2048)
	if r2048 > 3*r256 {
		t.Fatalf("time/lg n grows too fast: %f -> %f", r256, r2048)
	}
}

func TestRowMinimaWorkNearLinear(t *testing.T) {
	// Work (processor-time product) should stay within ~lg n of the
	// sequential O(n) bound.
	rng := rand.New(rand.NewSource(8))
	n := 1024
	a := marray.RandomMonge(rng, n, n)
	mach := pram.New(pram.CRCW, n)
	RowMinima(mach, a)
	maxWork := int64(40 * n * pram.Log2Ceil(n))
	if mach.Work() > maxWork {
		t.Fatalf("work %d exceeds %d", mach.Work(), maxWork)
	}
}
