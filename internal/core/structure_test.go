package core

import (
	"math/rand"
	"testing"

	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// TestLemma31CandidateCount verifies the counting argument of Lemma 3.1:
// for an m x n array with m >= n whose row maxima move rightward (the
// [AKM+87] total-monotonicity orientation the lemma implicitly uses, i.e.
// this paper's inverse-Monge), once the maxima of every floor(m/n)-th row
// are known, the remaining rows' candidates -- the subarrays A_i spanned
// by consecutive sampled maxima -- contain at most ~2m entries in total.
func TestLemma31CandidateCount(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(24)
		m := n * (2 + rng.Intn(6))
		a := marray.RandomInverseMonge(rng, m, n)
		s := m / n
		maxIdx := smawk.RowMaxima(a)
		// j(i) = column of the maximum of row i*s (1-based rows in the
		// paper; zero-based here: rows s-1, 2s-1, ...).
		var j []int
		j = append(j, 0)
		for r := s - 1; r < m; r += s {
			j = append(j, maxIdx[r])
		}
		j = append(j, n-1)
		total := 0
		for i := 1; i < len(j); i++ {
			lo, hi := j[i-1], j[i]
			if hi < lo {
				t.Fatalf("sampled maxima of a Monge array must be nonincreasing... got increase")
			}
			total += (s - 1) * (hi - lo + 1)
		}
		if total > 2*m+2*n {
			t.Fatalf("trial %d (m=%d n=%d): candidate count %d exceeds 2m+2n=%d",
				trial, m, n, total, 2*m+2*n)
		}
	}
}

// TestBrentScaling: halving the declared processor count must not increase
// charged time by more than ~2x plus additive step overhead (Brent).
func TestBrentScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 512
	a := marray.RandomMonge(rng, n, n)
	timeWith := func(p int) int64 {
		mach := pram.New(pram.CRCW, p)
		RowMinima(mach, a)
		return mach.Time()
	}
	tFull := timeWith(n)
	tHalf := timeWith(n / 2)
	tQuarter := timeWith(n / 4)
	if tHalf < tFull {
		t.Fatalf("fewer processors cannot be faster: %d < %d", tHalf, tFull)
	}
	if tHalf > 2*tFull+64 {
		t.Fatalf("halving processors more than doubled time: %d -> %d", tFull, tHalf)
	}
	if tQuarter > 2*tHalf+64 {
		t.Fatalf("quartering processors misbehaved: %d -> %d", tHalf, tQuarter)
	}
}

// TestCREWModeDetectsNoConflicts: every core algorithm must be genuinely
// exclusive-write when run in CREW mode (the machine panics otherwise, so
// completing is the assertion).
func TestCREWModeDetectsNoConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := marray.RandomMonge(rng, 60, 60)
	st := marray.RandomStaircaseMonge(rng, 60, 60)
	c := marray.RandomComposite(rng, 12, 12, 12)
	mach := pram.New(pram.CREW, 120)
	RowMinima(mach, a)
	MongeRowMaxima(mach, a)
	StaircaseRowMinima(mach, st)
	TubeMaxima(mach, c)
}

// TestMongeArgminMonotone validates the structural fact every recursion in
// this package leans on: the leftmost argmin column of a Monge array is
// nondecreasing in the row index.
func TestMongeArgminMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		m, n := 2+rng.Intn(30), 2+rng.Intn(30)
		a := marray.RandomMonge(rng, m, n)
		idx := smawk.RowMinimaBrute(a)
		for i := 1; i < m; i++ {
			if idx[i] < idx[i-1] {
				t.Fatalf("leftmost argmin decreased at row %d: %v", i, idx)
			}
		}
	}
}
