package core

import (
	"sync"

	"monge/internal/scratch"
)

// gapDesc describes one unsampled run of the plain Monge recursion: rows
// at positions [lo, hi) within the current row set, bracketed to the
// inclusive column interval [jLo, jHi].
type gapDesc struct {
	lo, hi   int
	jLo, jHi int
}

// stairGap describes one unsampled run of the staircase recursion:
// positions [start, end) within rows, below sampled row g.
type stairGap struct {
	start, end int
	g          int
}

// stairJob is one feasible-region search fanned out by a staircase gap:
// kind 0 is a fully finite Monge rectangle over inclusive columns
// [jLo, jHi], kind 1 a recursive staircase window [jLo, jHi).
type stairJob struct {
	kind     int
	pos      []int
	jLo, jHi int
}

// coreWS is the per-query scratch workspace threaded through the sampled
// recursions of searcher and stairSearcher. Every recursion-local slice
// (row/position vectors, gap and job descriptors, per-gap result slices)
// is bump-allocated here with stack discipline — a frame allocates its
// result first, marks, and rewinds on return — so a query at a size the
// workspace has already seen performs no heap allocation for recursion
// bookkeeping. ParallelDo branches execute sequentially on the
// coordinator, so a single workspace per query is race-free.
type coreWS struct {
	ints    scratch.Arena[int]
	slices  scratch.Arena[[]int]
	gaps    scratch.Arena[gapDesc]
	cands   scratch.Arena[stairCand]
	cslices scratch.Arena[[]stairCand]
	sgaps   scratch.Arena[stairGap]
	sjobs   scratch.Arena[stairJob]
}

type wsMark struct {
	ints    scratch.Mark
	slices  scratch.Mark
	gaps    scratch.Mark
	cands   scratch.Mark
	cslices scratch.Mark
	sgaps   scratch.Mark
	sjobs   scratch.Mark
}

func (w *coreWS) mark() wsMark {
	return wsMark{
		ints:    w.ints.Mark(),
		slices:  w.slices.Mark(),
		gaps:    w.gaps.Mark(),
		cands:   w.cands.Mark(),
		cslices: w.cslices.Mark(),
		sgaps:   w.sgaps.Mark(),
		sjobs:   w.sjobs.Mark(),
	}
}

func (w *coreWS) rewind(m wsMark) {
	w.ints.Rewind(m.ints)
	w.slices.Rewind(m.slices)
	w.gaps.Rewind(m.gaps)
	w.cands.Rewind(m.cands)
	w.cslices.Rewind(m.cslices)
	w.sgaps.Rewind(m.sgaps)
	w.sjobs.Rewind(m.sjobs)
}

func (w *coreWS) reset() {
	w.ints.Reset()
	w.slices.Reset()
	w.gaps.Reset()
	w.cands.Reset()
	w.cslices.Reset()
	w.sgaps.Reset()
	w.sjobs.Reset()
}

// wsPool recycles workspaces across queries; back-to-back queries of the
// same shape (the batch driver's case) reuse one warm workspace.
var wsPool = sync.Pool{New: func() any { return new(coreWS) }}

func getWS() *coreWS  { return wsPool.Get().(*coreWS) }
func putWS(w *coreWS) { w.reset(); wsPool.Put(w) }
