// Package core implements the paper's parallel array-searching algorithms
// on the simulated PRAM of internal/pram:
//
//   - row minima / maxima of two-dimensional Monge and inverse-Monge arrays
//     (Lemma 2.1 and the [AP89a] algorithms behind Table 1.1),
//   - row minima of staircase-Monge arrays (Theorem 2.3, Table 1.2),
//   - tube maxima / minima of Monge-composite arrays (Table 1.3; the CRCW
//     variant follows Atallah's doubly-logarithmic scheme [Ata89], the CREW
//     variant the [AP89a, AALM88] logarithmic one).
//
// All algorithms run on either machine mode; on a CRCW machine the inner
// minimum computations use the doubly-logarithmic Shiloach-Vishkin style
// block tournament, on a CREW machine binary-tree reductions. Time,
// processor, and work accounting is performed by the machine; the
// benchmark harness reads those counters to regenerate the paper's tables.
package core

import (
	"monge/internal/marray"
	"monge/internal/pram"
)

// RowMinima computes, for each row of the Monge array a, the column index
// of its leftmost minimum, on the given machine. On a CRCW machine with n
// processors the measured parallel time is O(lg n) for an n x n array
// (Lemma 2.1 / [AP89a]); on a CREW machine the same program runs within
// the O(lg n lg lg n) bound of Table 1.1 when the machine declares
// n / lg lg n processors (Brent scheduling is automatic).
func RowMinima(mach *pram.Machine, a marray.Matrix) []int {
	return searchRows(mach, a, false)
}

// RowMaxima computes leftmost row maxima of the inverse-Monge array a
// (negating reduces it to RowMinima on a Monge array, preserving leftmost
// tie-breaking).
func RowMaxima(mach *pram.Machine, a marray.Matrix) []int {
	return searchRows(mach, marray.Negate(a), false)
}

// MongeRowMaxima computes leftmost row maxima of a MONGE array (the
// Table 1.1 problem statement). For a Monge array the leftmost maximum
// column is nonincreasing in the row index, so the search runs with the
// reversed interval orientation.
func MongeRowMaxima(mach *pram.Machine, a marray.Matrix) []int {
	// Work on the reversed-column array, which is inverse-Monge; its
	// RIGHTMOST maxima correspond to a's leftmost maxima.
	rev := marray.ReverseCols(a)
	idx := searchRows(mach, marray.Negate(rev), true)
	n := a.Cols()
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = n - 1 - j
	}
	return out
}

// InverseMongeRowMinima computes leftmost row minima of an inverse-Monge
// array by the symmetric reduction.
func InverseMongeRowMinima(mach *pram.Machine, a marray.Matrix) []int {
	rev := marray.ReverseCols(a)
	idx := searchRows(mach, rev, true)
	n := a.Cols()
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = n - 1 - j
	}
	return out
}

// searchRows runs the sampled recursion over all rows of a (a Monge, minima
// sought). tieRight selects rightmost instead of leftmost tie-breaking.
func searchRows(mach *pram.Machine, a marray.Matrix, tieRight bool) []int {
	m, n := a.Rows(), a.Cols()
	out := make([]int, m)
	if m == 0 || n == 0 {
		return out
	}
	ws := getWS()
	defer putWS(ws)
	s := &searcher{a: a, tieRight: tieRight, ws: ws}
	rows := ws.ints.Alloc(m)
	for i := range rows {
		rows[i] = i
	}
	mach.Step(m, func(int) {}) // index-vector setup
	res := s.solve(mach, rows, 0, n-1)
	copy(out, res)
	return out
}

// searcher carries the array, tie rule, and scratch workspace through the
// recursion. Recursion-local slices live in ws (stack discipline, see
// ws.go); only the slice returned to the public caller is heap-allocated.
type searcher struct {
	a        marray.Matrix
	tieRight bool
	ws       *coreWS
}

// pick returns the better of two candidates under (smaller value, then tie
// rule) order.
func (s *searcher) pick(x, y pram.ValIdx) pram.ValIdx {
	if y.V < x.V {
		return y
	}
	if x.V < y.V {
		return x
	}
	if s.tieRight {
		if y.I > x.I {
			return y
		}
		return x
	}
	return pram.MinVI(x, y)
}

// solve returns, for each of the given global rows (increasing), the column
// of its best entry within the inclusive column interval [cLo, cHi]. It is
// the recursion of Lemma 2.1: sample every sqrt(k)-th row, solve the
// sampled subarray recursively, and then search each gap's rows inside the
// column interval bracketed by the neighbouring sampled answers (the
// leftmost-minimum column of a Monge array is nondecreasing in the row
// index, and the bracketing intervals telescope to O(n) total width). The
// gaps are processed by parallel processor groups via ParallelDo.
func (s *searcher) solve(mach *pram.Machine, rows []int, cLo, cHi int) []int {
	k := len(rows)
	w := cHi - cLo + 1
	if k == 0 || w <= 0 {
		return nil
	}
	if k <= 2 || w <= 4 {
		return s.base(mach, rows, cLo, cHi)
	}
	step := isqrt(k)
	if step < 2 {
		step = 2
	}
	// The frame's result is allocated before the mark so it survives the
	// rewind; everything after the mark (sampled vectors, gap descriptors,
	// child results) is reclaimed when this frame returns.
	out := s.ws.ints.Alloc(k)
	mark := s.ws.mark()
	defer s.ws.rewind(mark)

	nS := 0
	for p := step - 1; p < k; p += step {
		nS++
	}
	sampledPos := s.ws.ints.Alloc(nS)
	sampledRows := s.ws.ints.Alloc(nS)
	for i, p := 0, step-1; p < k; i, p = i+1, p+step {
		sampledPos[i] = p
		sampledRows[i] = rows[p]
	}
	mach.Step(nS, func(int) {}) // sampled-index construction
	sampledCols := s.solve(mach, sampledRows, cLo, cHi)

	for i, p := range sampledPos {
		out[p] = sampledCols[i]
	}

	// Build the gap descriptors. Gap g spans the unsampled rows between
	// sampled row g-1 and sampled row g; its column interval is bracketed
	// by the neighbouring sampled answers (argmin is monotone).
	nG := 0
	prevPos := -1
	for g := 0; g <= nS; g++ {
		endPos := k
		if g < nS {
			endPos = sampledPos[g]
		}
		if prevPos+1 < endPos {
			nG++
		}
		if g < nS {
			prevPos = sampledPos[g]
		}
	}
	gaps := s.ws.gaps.Alloc(nG)
	procs := s.ws.ints.Alloc(nG)
	gi := 0
	prevPos, prevCol := -1, cLo
	for g := 0; g <= nS; g++ {
		endPos := k
		jHi := cHi
		if g < nS {
			endPos = sampledPos[g]
			jHi = sampledCols[g]
		}
		if prevPos+1 < endPos {
			gp := gapDesc{lo: prevPos + 1, hi: endPos, jLo: prevCol, jHi: jHi}
			gaps[gi] = gp
			procs[gi] = (gp.hi - gp.lo) + (gp.jHi - gp.jLo + 1)
			gi++
		}
		if g < nS {
			prevPos = sampledPos[g]
			prevCol = sampledCols[g]
		}
	}

	results := s.ws.slices.Alloc(nG)
	mach.ParallelDo(procs, func(b int, sub *pram.Machine) {
		gp := gaps[b]
		gapRows := rows[gp.lo:gp.hi]
		results[b] = s.solve(sub, gapRows, gp.jLo, gp.jHi)
	})
	for b, gp := range gaps {
		copy(out[gp.lo:gp.hi], results[b])
	}
	return out
}

// base solves a small subproblem directly: on a CRCW machine with the
// doubly-logarithmic block tournament, otherwise with a binary-tree
// reduction. All rows proceed in lockstep supersteps.
func (s *searcher) base(mach *pram.Machine, rows []int, cLo, cHi int) []int {
	if mach.Mode() == pram.CRCW {
		return s.baseCRCW(mach, rows, cLo, cHi)
	}
	return s.baseTree(mach, rows, cLo, cHi)
}

// baseTree: ceil(lg w) halving supersteps over k*w virtual processors.
func (s *searcher) baseTree(mach *pram.Machine, rows []int, cLo, cHi int) []int {
	k := len(rows)
	w := cHi - cLo + 1
	arr := pram.NewArray[pram.ValIdx](mach, k*w)
	mach.Step(k*w, func(id int) {
		r, c := id/w, id%w
		arr.Write(id, id, pram.ValIdx{V: s.a.At(rows[r], cLo+c), I: cLo + c})
	})
	for width := w; width > 1; width = (width + 1) / 2 {
		half := (width + 1) / 2
		mach.Step(k*(width/2), func(id int) {
			r, c := id/(width/2), id%(width/2)
			x := arr.Read(r*w + c)
			y := arr.Read(r*w + c + half)
			arr.Write(id, r*w+c, s.pick(x, y))
		})
	}
	out := s.ws.ints.Alloc(k)
	for r := 0; r < k; r++ {
		out[r] = arr.Read(r * w).I
	}
	arr.Free()
	return out
}

// baseCRCW: the Shiloach-Vishkin style tournament. Candidates per row
// shrink as c -> c^2/w per round (after an initial pairing round), so the
// round count is O(lg lg w); each round uses at most 2*k*w virtual
// processors for the all-pairs comparisons inside blocks.
func (s *searcher) baseCRCW(mach *pram.Machine, rows []int, cLo, cHi int) []int {
	k := len(rows)
	w := cHi - cLo + 1
	arr := pram.NewArray[pram.ValIdx](mach, k*w)
	mach.Step(k*w, func(id int) {
		r, c := id/w, id%w
		arr.Write(id, id, pram.ValIdx{V: s.a.At(rows[r], cLo+c), I: cLo + c})
	})
	stride := 1
	count := w // surviving candidates per row, at positions 0, stride, ...
	for count > 1 {
		g := w / count // group size this round
		if g < 2 {
			g = 2
		}
		if g > count {
			g = count
		}
		blocks := (count + g - 1) / g
		loser := pram.NewArray[bool](mach, k*count)
		// All-pairs elimination inside each block of g candidates.
		mach.Step(k*count*g, func(id int) {
			r := id / (count * g)
			rest := id % (count * g)
			x := rest / g         // candidate index within the row
			y := (x/g)*g + rest%g // same-block rival candidate index
			if y >= count || x == y {
				return
			}
			cx := arr.Read(r*w + x*stride)
			cy := arr.Read(r*w + y*stride)
			if s.pick(cx, cy) == cy {
				loser.Write(id, r*count+x, true)
			}
		})
		// Winners move to their block-start slot: the survivor of block
		// x/g becomes the next round's candidate at raw position
		// (x/g) * (stride*g) = blockStart * stride.
		mach.Step(k*count, func(id int) {
			r, x := id/count, id%count
			if !loser.Read(r*count + x) {
				blockStart := (x / g) * g
				arr.Write(id, r*w+blockStart*stride, arr.Read(r*w+x*stride))
			}
		})
		// Recompute positions: survivors sit at block starts, i.e. at
		// positions that are multiples of stride*g.
		stride *= g
		count = blocks
		loser.Free()
	}
	out := s.ws.ints.Alloc(k)
	for r := 0; r < k; r++ {
		out[r] = arr.Read(r * w).I
	}
	arr.Free()
	return out
}

func isqrt(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}
