// Package checkbounds is the empirical complexity-regression harness: it
// re-measures every row of the paper's Tables 1.1-1.3 (model x algorithm
// x size ladder) on the simulated machines and checks that the measured
// charged time grows like the claimed bound.
//
// The check is a flatness assertion: for each row, the shape ratio
// t(n)/bound(n) is computed at every ladder size, and the row passes when
// max ratio / min ratio stays under a tolerance (2.0 by default). A
// correct O(lg n) implementation keeps the ratio flat; an accidental
// Theta(n) regression grows it by ~3.1x over the 128->512 ladder and
// fails. Inputs come from per-row deterministic seeds, so all measured
// values are exactly reproducible and can be pinned in EXPERIMENTS.md
// (see the golden test at the repository root).
//
// The harness is driven by TestCheckBounds at the repository root, which
// also exports the full measurement as BENCH_monge.json (schema
// documented on Report). Fault injection inflates the charged counters by
// design, so the harness refuses to run under FAULT_RATE.
package checkbounds

import (
	"encoding/json"
	"io"
	"math/rand"
	"runtime"

	"monge/internal/core"
	"monge/internal/hcmonge"
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/pram"
)

// Tolerance is the default flatness tolerance: a row fails when its
// largest shape ratio exceeds its smallest by more than this factor.
// Headroom over the observed flatness (~1.4 worst case) is deliberate —
// the assertion is meant to catch asymptotic regressions, not constant
// drift.
const Tolerance = 2.0

// Measured is one measurement: the charged counters of a simulated run.
type Measured struct {
	Time  int64
	Procs int64
	Work  int64
}

// Spec describes one table row: which machine runs which algorithm over
// which size ladder, the claimed bound, and the deterministic input seed.
type Spec struct {
	Table string // "1.1", "1.2", "1.3"
	Row   int    // 1-based row number within the table
	Model string // machine model, e.g. "CRCW PRAM", "hypercube"
	Name  string // algorithm, e.g. "row maxima"
	Claim string // asserted bound (annotated when it deviates from the paper)
	Sizes []int  // ladder of problem sizes, ascending
	Seed  int64  // per-row input seed

	Bound func(n int) float64                  // bound(n) of the claim
	Run   func(rng *rand.Rand, n int) Measured // one measurement
}

// Point is one measured ladder point of a row. AllocsPerOp is the
// process-wide heap-allocation count (runtime.MemStats Mallocs delta)
// of the one measured run; unlike the charged counters it is not
// bit-reproducible — GC timing and pool warm-up shift it slightly — so
// it is reported for the allocation profile in EXPERIMENTS.md rather
// than gated here (the gated budgets live in the root alloc-regression
// test against BENCH_alloc.json).
type Point struct {
	N           int     `json:"n"`
	Time        int64   `json:"time"`
	Procs       int64   `json:"procs"`
	Work        int64   `json:"work"`
	Bound       float64 `json:"bound"`
	Ratio       float64 `json:"ratio"` // Time / Bound
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Result is one fully measured row with its flatness verdict.
type Result struct {
	Table    string  `json:"table"`
	Row      int     `json:"row"`
	Model    string  `json:"model"`
	Name     string  `json:"name"`
	Claim    string  `json:"claim"`
	Seed     int64   `json:"seed"`
	Points   []Point `json:"points"`
	Flatness float64 `json:"flatness"` // max ratio / min ratio over Points
	Pass     bool    `json:"pass"`     // Flatness <= tolerance
}

// Report is the full harness output, the document written to
// BENCH_monge.json. Schema "monge-checkbounds/v1": {schema, tolerance,
// max_n (0 = unlimited), rows: [Result...]} with rows in table order and
// points in ladder order, so regenerated files are byte-identical.
type Report struct {
	Schema    string   `json:"schema"`
	Tolerance float64  `json:"tolerance"`
	MaxN      int      `json:"max_n"`
	Rows      []Result `json:"rows"`
}

// Schema is the identifier embedded in every report.
const Schema = "monge-checkbounds/v1"

func lg(n int) float64 { return float64(pram.Log2Ceil(n)) }

func lglglg(n int) float64 { return lg(n) * float64(pram.LogLog2Ceil(n)) }

func idxVec(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

// Rows returns the specs of every row of Tables 1.1-1.3, in table order.
// Ladders: the dense and staircase searches use {128, 256, 512}; the tube
// searches use smaller ladders (their machines have ~n^2 processors).
func Rows() []Spec {
	dense := []int{128, 256, 512}
	tube := []int{64, 128, 256}
	tubeHC := []int{32, 64, 128}

	t11pram := func(mode pram.Mode, procs func(n int) int) func(*rand.Rand, int) Measured {
		return func(rng *rand.Rand, n int) Measured {
			a := marray.RandomMonge(rng, n, n)
			mach := pram.New(mode, procs(n))
			core.MongeRowMaxima(mach, a)
			return Measured{Time: mach.Time(), Procs: int64(mach.Procs()), Work: mach.Work()}
		}
	}
	t11net := func(kind hc.Kind) func(*rand.Rand, int) Measured {
		return func(rng *rand.Rand, n int) Measured {
			a := marray.RandomMonge(rng, n, n)
			mach := hcmonge.MachineFor(kind, n, n)
			hcmonge.MongeRowMaximaOn(mach, idxVec(n), idxVec(n),
				func(i, j int) float64 { return a.At(i, j) })
			return Measured{Time: mach.Time(), Procs: int64(mach.Size()), Work: mach.Work()}
		}
	}
	t12pram := func(mode pram.Mode, procs func(n int) int) func(*rand.Rand, int) Measured {
		return func(rng *rand.Rand, n int) Measured {
			a := marray.RandomStaircaseMonge(rng, n, n)
			mach := pram.New(mode, procs(n))
			core.StaircaseRowMinima(mach, a)
			return Measured{Time: mach.Time(), Procs: int64(mach.Procs()), Work: mach.Work()}
		}
	}
	t13pram := func(mode pram.Mode) func(*rand.Rand, int) Measured {
		return func(rng *rand.Rand, n int) Measured {
			c := marray.RandomComposite(rng, n, n, n)
			mach := pram.New(mode, 2*n*n)
			core.TubeMaxima(mach, c)
			return Measured{Time: mach.Time(), Procs: int64(mach.Procs()), Work: mach.Work()}
		}
	}

	nProcs := func(n int) int { return n }
	crewProcs := func(n int) int { return n / pram.LogLog2Ceil(n) }

	return []Spec{
		{Table: "1.1", Row: 1, Model: "CRCW PRAM", Name: "row maxima",
			Claim: "O(lg n)", Sizes: dense, Seed: 1101, Bound: lg,
			Run: t11pram(pram.CRCW, nProcs)},
		{Table: "1.1", Row: 2, Model: "CREW PRAM", Name: "row maxima",
			Claim: "O(lg n lglg n)", Sizes: dense, Seed: 1102, Bound: lglglg,
			Run: t11pram(pram.CREW, crewProcs)},
		{Table: "1.1", Row: 3, Model: "hypercube", Name: "row maxima",
			Claim: "O(lg n lglg n)", Sizes: dense, Seed: 1103, Bound: lglglg,
			Run: t11net(hc.Cube)},
		{Table: "1.1", Row: 4, Model: "cube-connected-cycles", Name: "row maxima",
			Claim: "O(lg n lglg n)", Sizes: dense, Seed: 1104, Bound: lglglg,
			Run: t11net(hc.CCC)},
		{Table: "1.1", Row: 5, Model: "shuffle-exchange", Name: "row maxima",
			Claim: "O(lg n lglg n)", Sizes: dense, Seed: 1105, Bound: lglglg,
			Run: t11net(hc.Shuffle)},

		{Table: "1.2", Row: 1, Model: "CRCW PRAM", Name: "staircase row minima",
			Claim: "O(lg n)", Sizes: dense, Seed: 1201, Bound: lg,
			Run: t12pram(pram.CRCW, nProcs)},
		{Table: "1.2", Row: 2, Model: "CREW PRAM", Name: "staircase row minima",
			Claim: "O(lg n lglg n)", Sizes: dense, Seed: 1202, Bound: lglglg,
			Run: t12pram(pram.CREW, crewProcs)},
		{Table: "1.2", Row: 3, Model: "hypercube", Name: "staircase row minima",
			Claim: "O(lg n lglg n)", Sizes: dense, Seed: 1203, Bound: lglglg,
			Run: func(rng *rand.Rand, n int) Measured {
				a := marray.RandomStaircaseMonge(rng, n, n)
				bounds := make([]int, n)
				for i := 0; i < n; i++ {
					bounds[i] = marray.BoundaryOf(a, i)
				}
				mach := hcmonge.MachineFor(hc.Cube, n, n)
				hcmonge.StaircaseRowMinimaOn(mach, idxVec(n), bounds, idxVec(n),
					func(i, j int) float64 { return a.At(i, j) })
				return Measured{Time: mach.Time(), Procs: int64(mach.Size()), Work: mach.Work()}
			}},

		{Table: "1.3", Row: 1, Model: "CRCW PRAM", Name: "tube maxima",
			Claim: "O(lg n) (paper: Theta(lglg n), deviation documented)",
			Sizes: tube, Seed: 1301, Bound: lg, Run: t13pram(pram.CRCW)},
		{Table: "1.3", Row: 2, Model: "CREW PRAM", Name: "tube maxima",
			Claim: "Theta(lg n)", Sizes: tube, Seed: 1302, Bound: lg,
			Run: t13pram(pram.CREW)},
		{Table: "1.3", Row: 3, Model: "hypercube", Name: "tube maxima",
			Claim: "Theta(lg n)", Sizes: tubeHC, Seed: 1303, Bound: lg,
			Run: func(rng *rand.Rand, n int) Measured {
				c := marray.RandomComposite(rng, n, n, n)
				mach := hcmonge.TubeMachineFor(hc.Cube, c)
				hcmonge.TubeMaximaOn(mach, c)
				return Measured{Time: mach.Time(), Procs: int64(mach.Size()), Work: mach.Work()}
			}},
	}
}

// Measure runs one row's ladder (sizes above maxN are skipped when
// maxN > 0) and computes its flatness verdict. The row's rng stream is
// consumed in ladder order, so trimming the ladder never changes the
// measurements of the sizes that remain.
func Measure(s Spec, maxN int, tol float64) Result {
	res := Result{Table: s.Table, Row: s.Row, Model: s.Model, Name: s.Name,
		Claim: s.Claim, Seed: s.Seed}
	rng := rand.New(rand.NewSource(s.Seed))
	for _, n := range s.Sizes {
		if maxN > 0 && n > maxN {
			break
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		m := s.Run(rng, n)
		runtime.ReadMemStats(&after)
		b := s.Bound(n)
		res.Points = append(res.Points, Point{
			N: n, Time: m.Time, Procs: m.Procs, Work: m.Work,
			Bound: b, Ratio: float64(m.Time) / b,
			AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		})
	}
	res.Flatness = flatness(res.Points)
	res.Pass = len(res.Points) > 0 && res.Flatness <= tol
	return res
}

func flatness(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	lo, hi := pts[0].Ratio, pts[0].Ratio
	for _, p := range pts[1:] {
		if p.Ratio < lo {
			lo = p.Ratio
		}
		if p.Ratio > hi {
			hi = p.Ratio
		}
	}
	return hi / lo
}

// MeasureAll measures every row of Rows and assembles the report.
func MeasureAll(maxN int, tol float64) Report {
	rep := Report{Schema: Schema, Tolerance: tol, MaxN: maxN}
	for _, s := range Rows() {
		rep.Rows = append(rep.Rows, Measure(s, maxN, tol))
	}
	return rep
}

// WriteJSON writes the report as indented JSON (the BENCH_monge.json
// format). Output is deterministic: struct field order, rows in table
// order, points in ladder order.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
