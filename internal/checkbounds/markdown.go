package checkbounds

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file renders the measured report as the markdown tables committed
// in EXPERIMENTS.md and parses them back, so the golden test at the
// repository root can machine-check the documented numbers against a
// fresh measurement. Render and Parse are exact inverses over the row,
// model, and t(n) cells.

// tableTitles names the table sections in the rendered markdown.
var tableTitles = map[string]string{
	"1.1": "row maxima of an n x n Monge array",
	"1.2": "row minima of an n x n staircase-Monge array",
	"1.3": "tube maxima of an n x n x n Monge-composite array",
}

// RenderMarkdown writes the report as one markdown section per table:
// a "### Table X — title" heading followed by a table with row, model,
// claim, one t(n=...) column per ladder size, and the flatness ratio.
func RenderMarkdown(w io.Writer, rep Report) error {
	byTable := make(map[string][]Result)
	var order []string
	for _, r := range rep.Rows {
		if _, seen := byTable[r.Table]; !seen {
			order = append(order, r.Table)
		}
		byTable[r.Table] = append(byTable[r.Table], r)
	}
	for ti, id := range order {
		rows := byTable[id]
		sizeSet := map[int]bool{}
		for _, r := range rows {
			for _, p := range r.Points {
				sizeSet[p.N] = true
			}
		}
		sizes := make([]int, 0, len(sizeSet))
		for n := range sizeSet {
			sizes = append(sizes, n)
		}
		sort.Ints(sizes)

		if ti > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "### Table %s — %s\n\n", id, tableTitles[id])
		fmt.Fprint(w, "| row | model | claim |")
		for _, n := range sizes {
			fmt.Fprintf(w, " t(n=%d) |", n)
		}
		fmt.Fprintln(w, " flatness |")
		fmt.Fprint(w, "|----:|:------|:------|")
		for range sizes {
			fmt.Fprint(w, "-------:|")
		}
		fmt.Fprintln(w, "---------:|")
		for _, r := range rows {
			byN := make(map[int]int64, len(r.Points))
			for _, p := range r.Points {
				byN[p.N] = p.Time
			}
			fmt.Fprintf(w, "| %d | %s | %s |", r.Row, r.Model, r.Claim)
			for _, n := range sizes {
				if t, ok := byN[n]; ok {
					fmt.Fprintf(w, " %d |", t)
				} else {
					fmt.Fprint(w, " — |")
				}
			}
			fmt.Fprintf(w, " %.2f |\n", r.Flatness)
		}
	}
	return nil
}

// GoldenRow is one documented table row parsed back out of
// EXPERIMENTS.md: the charged times keyed by problem size.
type GoldenRow struct {
	Table string
	Row   int
	Model string
	Times map[int]int64
}

var (
	tableHeadRe = regexp.MustCompile(`^###\s+Table\s+(\d+\.\d+)`)
	sizeColRe   = regexp.MustCompile(`^t\(n=(\d+)\)$`)
)

// ParseExperiments scans a markdown document for the tables
// RenderMarkdown emits and returns every data row. Rows whose time cells
// are not integers (em-dash placeholders) omit those sizes.
func ParseExperiments(r io.Reader) ([]GoldenRow, error) {
	var out []GoldenRow
	var table string
	var sizeByCol map[int]int // header cell index -> n
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if m := tableHeadRe.FindStringSubmatch(line); m != nil {
			table = m[1]
			sizeByCol = nil
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Any other heading ends the current table section, so
			// unrelated numeric tables elsewhere in the document are
			// never misattributed to a checkbounds table.
			table = ""
			sizeByCol = nil
			continue
		}
		if table == "" || !strings.HasPrefix(line, "|") {
			continue
		}
		cells := splitCells(line)
		if len(cells) == 0 {
			continue
		}
		if cells[0] == "row" {
			sizeByCol = map[int]int{}
			for i, c := range cells {
				if m := sizeColRe.FindStringSubmatch(c); m != nil {
					n, _ := strconv.Atoi(m[1])
					sizeByCol[i] = n
				}
			}
			continue
		}
		if sizeByCol == nil {
			continue
		}
		rowNum, err := strconv.Atoi(cells[0])
		if err != nil {
			continue // separator or prose line
		}
		if len(cells) < 2 {
			return nil, fmt.Errorf("checkbounds: malformed table row %q", line)
		}
		g := GoldenRow{Table: table, Row: rowNum, Model: cells[1], Times: map[int]int64{}}
		for i, n := range sizeByCol {
			if i >= len(cells) {
				continue
			}
			if t, err := strconv.ParseInt(cells[i], 10, 64); err == nil {
				g.Times[n] = t
			}
		}
		out = append(out, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func splitCells(line string) []string {
	parts := strings.Split(strings.Trim(line, "|"), "|")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}
