package checkbounds

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRowsCoverAllTables(t *testing.T) {
	rows := Rows()
	count := map[string]int{}
	seen := map[string]bool{}
	for _, s := range rows {
		count[s.Table]++
		key := s.Table + "/" + s.Model
		if seen[key] {
			t.Errorf("duplicate spec %s", key)
		}
		seen[key] = true
		if len(s.Sizes) < 2 {
			t.Errorf("%s row %d: ladder %v too short for a flatness check", s.Table, s.Row, s.Sizes)
		}
		if s.Bound == nil || s.Run == nil {
			t.Fatalf("%s row %d: missing Bound or Run", s.Table, s.Row)
		}
	}
	if count["1.1"] != 5 || count["1.2"] != 3 || count["1.3"] != 3 {
		t.Fatalf("row counts per table = %v, want 5/3/3", count)
	}
}

// TestMeasureDeterministicAndTrimmed checks the two contracts Measure
// makes: identical reruns give identical charged counters, and capping
// the ladder with maxN never changes the measurements of surviving
// sizes. AllocsPerOp is excluded: it is a process-wide Mallocs delta
// and documented as not bit-reproducible (the gated allocation numbers
// live in BENCH_alloc.json, not here).
func TestMeasureDeterministicAndTrimmed(t *testing.T) {
	charged := func(p Point) Point { p.AllocsPerOp = 0; return p }
	spec := Rows()[0] // Table 1.1 CRCW — the fastest row
	full := Measure(spec, 256, Tolerance)
	again := Measure(spec, 256, Tolerance)
	if len(full.Points) != 2 {
		t.Fatalf("maxN=256 kept %d points, want 2", len(full.Points))
	}
	for i := range full.Points {
		if charged(full.Points[i]) != charged(again.Points[i]) {
			t.Fatalf("rerun diverged at point %d: %+v vs %+v", i, full.Points[i], again.Points[i])
		}
	}
	trimmed := Measure(spec, 128, Tolerance)
	if len(trimmed.Points) != 1 || charged(trimmed.Points[0]) != charged(full.Points[0]) {
		t.Fatalf("trimming the ladder changed the first point: %+v vs %+v",
			trimmed.Points, full.Points[0])
	}
	if !full.Pass || full.Flatness <= 0 {
		t.Fatalf("CRCW row maxima should pass flatly, got %+v", full)
	}
}

func TestFlatnessMath(t *testing.T) {
	pts := []Point{{Ratio: 2}, {Ratio: 3}, {Ratio: 2.5}}
	if got := flatness(pts); got != 1.5 {
		t.Fatalf("flatness = %v, want 1.5", got)
	}
	if flatness(nil) != 0 {
		t.Fatal("flatness of no points must be 0")
	}
}

// TestMarkdownRoundTrip renders a synthetic report and parses it back,
// pinning the contract between RenderMarkdown and ParseExperiments that
// the golden test depends on.
func TestMarkdownRoundTrip(t *testing.T) {
	rep := Report{Schema: Schema, Tolerance: Tolerance, Rows: []Result{
		{Table: "1.1", Row: 1, Model: "CRCW PRAM", Claim: "O(lg n)", Flatness: 1.18,
			Points: []Point{{N: 128, Time: 79}, {N: 256, Time: 98}}},
		{Table: "1.1", Row: 3, Model: "hypercube", Claim: "O(lg n lglg n)", Flatness: 1.3,
			Points: []Point{{N: 128, Time: 2061}, {N: 256, Time: 1793}}},
		{Table: "1.3", Row: 2, Model: "CREW PRAM", Claim: "Theta(lg n)", Flatness: 1.1,
			Points: []Point{{N: 64, Time: 105}}},
	}}
	var buf bytes.Buffer
	if err := RenderMarkdown(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ParseExperiments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d rows, want 3:\n%s", len(got), buf.String())
	}
	first := got[0]
	if first.Table != "1.1" || first.Row != 1 || first.Model != "CRCW PRAM" {
		t.Fatalf("row identity lost: %+v", first)
	}
	if first.Times[128] != 79 || first.Times[256] != 98 {
		t.Fatalf("times lost: %+v", first.Times)
	}
	last := got[2]
	if last.Table != "1.3" || last.Times[64] != 105 {
		t.Fatalf("table 1.3 row lost: %+v", last)
	}
	if _, ok := last.Times[128]; ok {
		t.Fatal("size never measured must not parse as a time")
	}
}

// TestParseIgnoresForeignTables pins that numeric markdown tables in
// other sections of EXPERIMENTS.md are never misread as golden rows.
func TestParseIgnoresForeignTables(t *testing.T) {
	doc := "### Table 1.1 — row maxima\n\n" +
		"| row | model | claim | t(n=128) | flatness |\n" +
		"|--|--|--|--|--|\n" +
		"| 1 | CRCW PRAM | O(lg n) | 79 | 1.1 |\n\n" +
		"## Runtime\n\n" +
		"| loop size n | pool |\n" +
		"|--|--|\n" +
		"| 256 | 3.3 µs |\n"
	rows, err := ParseExperiments(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Row != 1 || rows[0].Times[128] != 79 {
		t.Fatalf("parsed %+v, want exactly the one table 1.1 row", rows)
	}
}

func TestReportJSONSchema(t *testing.T) {
	rep := Report{Schema: Schema, Tolerance: Tolerance, Rows: []Result{{
		Table: "1.1", Row: 1, Model: "CRCW PRAM", Pass: true,
		Points: []Point{{N: 128, Time: 79, Bound: 7, Ratio: 79.0 / 7}},
	}}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Schema != Schema || len(back.Rows) != 1 || back.Rows[0].Points[0].Time != 79 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	for _, key := range []string{`"schema"`, `"tolerance"`, `"rows"`, `"ratio"`} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("JSON missing %s:\n%s", key, buf.String())
		}
	}
}
