package pram

// ParallelDo composes len(procs) independent sub-computations that the
// simulated machine executes simultaneously on disjoint processor groups:
// branch b runs on a child machine declaring procs[b] processors. The
// parent is charged the MAXIMUM child time (the groups run side by side)
// and the SUM of child work. This realizes the paper's processor-allocation
// arguments ("assign s + v_i processors to the i-th region") without a
// global renumbering step; the closed-form offsets that a real PRAM would
// compute are O(1) arithmetic per group.
//
// Branch bodies must allocate the arrays they write on the child machine
// they receive (reading parent arrays is fine: concurrent reads are free in
// both CREW and CRCW). Branches are executed sequentially in real time,
// which keeps the simulation deterministic; only the accounting is
// parallel. Child machines are created through the runtime (child), which
// hands them the parent's worker pool and instrumentation sink, so
// recursive subproblems can neither fall back to a default pool nor
// disappear from the trace.
func (m *Machine) ParallelDo(procs []int, body func(b int, sub *Machine)) {
	var maxTime, maxSteps, sumWork int64
	for b := range procs {
		sub := m.child(procs[b])
		body(b, sub)
		if sub.time > maxTime {
			maxTime = sub.time
		}
		if sub.steps > maxSteps {
			maxSteps = sub.steps
		}
		sumWork += sub.work
		m.releaseChild(sub)
	}
	m.time += maxTime
	m.steps += maxSteps
	m.work += sumWork
}

// EvenSplit returns a processor vector assigning ceil(total/branches)
// processors to each of the branches.
func EvenSplit(total, branches int) []int {
	if branches <= 0 {
		return nil
	}
	per := (total + branches - 1) / branches
	if per < 1 {
		per = 1
	}
	out := make([]int, branches)
	for i := range out {
		out[i] = per
	}
	return out
}
