package pram

import "monge/internal/merr"

// Bitonic sorting and merging on the PRAM: O(lg^2 n) and O(lg n)
// supersteps respectively with n/2 active processors per step. The paper's
// Lemma 2.2 allocation "ANSV followed by sorting" uses an O(lg n)-time
// sort (AKS/Cole); bitonic is the classical practical substitute and its
// extra lg factor is visible in the harness (the production algorithms in
// internal/core avoid sorting via closed-form offsets, so no headline
// bound depends on it).

// BitonicSort sorts the array in nondecreasing order under less, which
// must be a strict total order for determinism. The length must be a
// power of two; SortPadded handles general lengths.
func BitonicSort[T any](m *Machine, a *Array[T], less func(x, y T) bool) {
	n := a.Len()
	if n&(n-1) != 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"pram: BitonicSort requires a power-of-two length, got %d (use SortPadded)", n)
	}
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			kk, jj := k, j
			m.Step(n/2, func(id int) {
				// Enumerate pairs (i, i^j) with i's j-bit clear.
				low := id % jj
				blk := id / jj
				i := blk*2*jj + low
				partner := i + jj
				asc := i&kk == 0
				x, y := a.Read(i), a.Read(partner)
				if less(y, x) == asc {
					a.Write(id, i, y)
					a.Write(id, partner, x)
				}
			})
		}
	}
}

// BitonicMerge merges an array whose two halves are each sorted
// nondecreasing into a fully sorted array in O(lg n) supersteps. The
// length must be a power of two.
func BitonicMerge[T any](m *Machine, a *Array[T], less func(x, y T) bool) {
	n := a.Len()
	if n&(n-1) != 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"pram: BitonicMerge requires a power-of-two length, got %d", n)
	}
	if n < 2 {
		return
	}
	// Turn (asc, asc) into a bitonic sequence by reversing the second
	// half, then run the merging network.
	m.Step(n/4, func(id int) {
		i := n/2 + id
		j := n - 1 - id
		x, y := a.Read(i), a.Read(j)
		a.Write(id, i, y)
		a.Write(id, j, x)
	})
	for j := n / 2; j > 0; j /= 2 {
		jj := j
		m.Step(n/2, func(id int) {
			low := id % jj
			blk := id / jj
			i := blk*2*jj + low
			partner := i + jj
			x, y := a.Read(i), a.Read(partner)
			if less(y, x) {
				a.Write(id, i, y)
				a.Write(id, partner, x)
			}
		})
	}
}

// SortPadded sorts values of any length by padding to a power of two with
// sentinels that compare greater than everything, sorting bitonically,
// and truncating. Returns a fresh array of the original length.
func SortPadded[T any](m *Machine, vals []T, less func(x, y T) bool, maxSentinel T) *Array[T] {
	n := len(vals)
	size := 1
	for size < n {
		size *= 2
	}
	a := NewArray[T](m, size)
	for i := 0; i < size; i++ {
		if i < n {
			a.Set(i, vals[i])
		} else {
			a.Set(i, maxSentinel)
		}
	}
	BitonicSort(m, a, less)
	out := NewArray[T](m, n)
	m.Step(n, func(id int) { out.Write(id, id, a.Read(id)) })
	return out
}
