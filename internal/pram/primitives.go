package pram

import "math/bits"

// Log2Ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1. It is the
// step-count yardstick used throughout the cost accounting.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// LogLog2Ceil returns ceil(log2(max(2, ceil(log2 n)))), the lg lg n
// yardstick (at least 1).
func LogLog2Ceil(n int) int {
	l := Log2Ceil(n)
	if l < 2 {
		l = 2
	}
	return Log2Ceil(l)
}

// Scan replaces a with its inclusive prefix combination under op, using
// the Hillis-Steele doubling scheme: ceil(lg n) supersteps of n virtual
// processors. op must be associative. The end-of-step write buffering makes
// the in-place doubling exact: every read in a step observes the previous
// step's values.
func Scan[T any](m *Machine, a *Array[T], op func(T, T) T) {
	n := a.Len()
	for d := 1; d < n; d *= 2 {
		dd := d
		m.Step(n, func(id int) {
			if id >= dd {
				a.Write(id, id, op(a.Read(id-dd), a.Read(id)))
			}
		})
	}
}

// ScanExclusive writes into out the exclusive prefix combination of a
// (out[0] = identity). a and out must be distinct arrays of equal length.
// The final shift reads out[id-1] and writes out[id] in one step, which the
// end-of-step write buffering makes exact.
func ScanExclusive[T any](m *Machine, a, out *Array[T], identity T, op func(T, T) T) {
	n := a.Len()
	m.Step(n, func(id int) { out.Write(id, id, a.Read(id)) })
	Scan(m, out, op)
	m.Step(n, func(id int) {
		if id == 0 {
			out.Write(id, 0, identity)
		} else {
			out.Write(id, id, out.Read(id-1))
		}
	})
}

// Reduce combines all elements of a under op with a work-efficient
// binary-tree reduction (ceil(lg n) supersteps, halving processor counts)
// and returns the result. a is consumed as scratch space.
func Reduce[T any](m *Machine, a *Array[T], op func(T, T) T) T {
	n := a.Len()
	if n == 0 {
		var zero T
		return zero
	}
	for width := n; width > 1; width = (width + 1) / 2 {
		half := (width + 1) / 2
		m.Step(width/2, func(id int) {
			a.Write(id, id, op(a.Read(id), a.Read(half+id)))
		})
	}
	return a.Read(0)
}

// ValIdx pairs a value with its index; reductions over ValIdx implement
// argmin/argmax with deterministic leftmost tie-breaking.
type ValIdx struct {
	V float64
	I int
}

// MinVI returns the smaller of two ValIdx pairs, preferring the lower
// index on ties.
func MinVI(a, b ValIdx) ValIdx {
	if b.V < a.V || (b.V == a.V && b.I < a.I) {
		return b
	}
	return a
}

// MaxVI returns the larger of two ValIdx pairs, preferring the lower index
// on ties.
func MaxVI(a, b ValIdx) ValIdx {
	if b.V > a.V || (b.V == a.V && b.I < a.I) {
		return b
	}
	return a
}

// Pack computes the stable compaction of the elements of a whose flag is
// set: it returns a fresh array holding those elements in order and their
// count. O(lg n) supersteps.
func Pack[T any](m *Machine, a *Array[T], flag *Array[bool]) (*Array[T], int) {
	n := a.Len()
	pos := NewArray[int](m, n)
	m.Step(n, func(id int) {
		if flag.Read(id) {
			pos.Write(id, id, 1)
		} else {
			pos.Write(id, id, 0)
		}
	})
	Scan(m, pos, func(x, y int) int { return x + y })
	total := 0
	if n > 0 {
		total = pos.Read(n - 1)
	}
	out := NewArray[T](m, total)
	m.Step(n, func(id int) {
		if flag.Read(id) {
			out.Write(id, pos.Read(id)-1, a.Read(id))
		}
	})
	pos.Free()
	return out, total
}

// SegScan performs an inclusive segmented scan of a under op: positions
// where head is true start a new segment. O(lg n) supersteps.
func SegScan[T any](m *Machine, a *Array[T], head *Array[bool], op func(T, T) T) {
	n := a.Len()
	h := NewArray[bool](m, n)
	m.Step(n, func(id int) { h.Write(id, id, head.Read(id)) })
	for d := 1; d < n; d *= 2 {
		dd := d
		m.Step(n, func(id int) {
			if id >= dd && !h.Read(id) {
				a.Write(id, id, op(a.Read(id-dd), a.Read(id)))
				if h.Read(id - dd) {
					h.Write(id, id, true)
				}
			}
		})
	}
	h.Free()
}

// CRCWMinIndex returns the minimum of vals[0:n] with leftmost
// tie-breaking in O(lg lg n) supersteps on a CRCW machine, using the
// doubly-logarithmic block recursion (blocks of size sqrt(n) solved
// recursively, then an all-pairs O(1) round with ~n processors). On a CREW
// machine it falls back to the O(lg n) tree reduction. The array is not
// modified.
func CRCWMinIndex(m *Machine, vals *Array[float64]) ValIdx {
	n := vals.Len()
	if n == 0 {
		return ValIdx{V: 0, I: -1}
	}
	cur := NewArray[ValIdx](m, n)
	m.Step(n, func(id int) {
		cur.Write(id, id, ValIdx{V: vals.Read(id), I: id})
	})
	if m.Mode() != CRCW {
		v := Reduce(m, cur, MinVI)
		cur.Free()
		return v
	}
	for size := n; size > 4; {
		b := isqrt(size)
		nb := (size + b - 1) / b
		// All-pairs elimination inside each block: pair (x, y) in a block
		// marks the loser. This is the O(1) CRCW comparison round; it uses
		// about size*b <= size^{3/2} virtual processors but only O(1)
		// supersteps. The standard accounting (n processors, O(lg lg n)
		// time) applies blocks of sqrt at every level; we charge the true
		// processor count so Work reflects the simulation honestly.
		loser := NewArray[bool](m, size)
		m.Step(size*b, func(id int) {
			x := id / b
			blk := x / b
			y := blk*b + id%b
			if y >= size || x >= size || x == y {
				return
			}
			a, c := cur.Read(x), cur.Read(y)
			if MinVI(a, c) == c && (c.V != a.V || c.I != a.I) {
				loser.Write(id, x, true)
			}
		})
		// Each block's surviving element writes to the block slot.
		m.Step(size, func(id int) {
			if !loser.Read(id) {
				cur.Write(id, id/b, cur.Read(id))
			}
		})
		size = nb
		loser.Free()
	}
	// Finish the (constant-size) remainder with one tiny reduction.
	final := ValIdx{V: cur.Read(0).V, I: cur.Read(0).I}
	sz := 4
	if n < sz {
		sz = n
	}
	for i := 1; i < sz; i++ {
		final = MinVI(final, cur.Read(i))
	}
	cur.Free()
	return final
}

// isqrt returns floor(sqrt(x)).
func isqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}
