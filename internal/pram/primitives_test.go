package pram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogYardsticks(t *testing.T) {
	cases := []struct{ n, lg int }{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.lg {
			t.Fatalf("Log2Ceil(%d) = %d, want %d", c.n, got, c.lg)
		}
	}
	if LogLog2Ceil(65536) != 4 {
		t.Fatalf("LogLog2Ceil(65536) = %d, want 4", LogLog2Ceil(65536))
	}
	if LogLog2Ceil(2) < 1 {
		t.Fatal("LogLog2Ceil must be at least 1")
	}
}

func TestScanSum(t *testing.T) {
	m := New(CREW, 8)
	n := 100
	a := NewArray[int](m, n)
	for i := 0; i < n; i++ {
		a.Set(i, i+1)
	}
	Scan(m, a, func(x, y int) int { return x + y })
	for i := 0; i < n; i++ {
		want := (i + 1) * (i + 2) / 2
		if a.Read(i) != want {
			t.Fatalf("prefix[%d] = %d, want %d", i, a.Read(i), want)
		}
	}
	// lg(100) = 7 doubling rounds
	if m.Steps() != 7 {
		t.Fatalf("Scan used %d steps, want 7", m.Steps())
	}
}

func TestScanExclusive(t *testing.T) {
	m := New(CREW, 8)
	n := 37
	a := NewArray[int](m, n)
	out := NewArray[int](m, n)
	for i := 0; i < n; i++ {
		a.Set(i, 1)
	}
	ScanExclusive(m, a, out, 0, func(x, y int) int { return x + y })
	for i := 0; i < n; i++ {
		if out.Read(i) != i {
			t.Fatalf("exclusive[%d] = %d, want %d", i, out.Read(i), i)
		}
	}
}

func TestReduce(t *testing.T) {
	m := New(CREW, 8)
	for _, n := range []int{1, 2, 3, 7, 8, 100, 255} {
		a := NewArray[int](m, n)
		for i := 0; i < n; i++ {
			a.Set(i, i)
		}
		got := Reduce(m, a, func(x, y int) int {
			if y > x {
				return y
			}
			return x
		})
		if got != n-1 {
			t.Fatalf("Reduce max over %d = %d", n, got)
		}
	}
	empty := NewArray[int](m, 0)
	if Reduce(m, empty, func(x, y int) int { return x + y }) != 0 {
		t.Fatal("empty reduce should be zero value")
	}
}

func TestMinMaxVI(t *testing.T) {
	a := ValIdx{V: 1, I: 5}
	b := ValIdx{V: 1, I: 2}
	if MinVI(a, b).I != 2 || MaxVI(a, b).I != 2 {
		t.Fatal("ties must prefer lower index")
	}
	c := ValIdx{V: 0, I: 9}
	if MinVI(a, c).I != 9 || MaxVI(a, c).I != 5 {
		t.Fatal("value comparison wrong")
	}
}

func TestPack(t *testing.T) {
	m := New(CREW, 8)
	n := 50
	a := NewArray[int](m, n)
	f := NewArray[bool](m, n)
	for i := 0; i < n; i++ {
		a.Set(i, i)
		f.Set(i, i%3 == 0)
	}
	out, cnt := Pack(m, a, f)
	want := 0
	for i := 0; i < n; i += 3 {
		if out.Read(want) != i {
			t.Fatalf("packed[%d] = %d, want %d", want, out.Read(want), i)
		}
		want++
	}
	if cnt != want {
		t.Fatalf("count = %d, want %d", cnt, want)
	}
}

func TestPackEmpty(t *testing.T) {
	m := New(CREW, 8)
	a := NewArray[int](m, 10)
	f := NewArray[bool](m, 10)
	out, cnt := Pack(m, a, f)
	if cnt != 0 || out.Len() != 0 {
		t.Fatal("empty pack wrong")
	}
}

func TestSegScan(t *testing.T) {
	m := New(CREW, 8)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	heads := []bool{true, false, false, true, false, true, false, false}
	a := NewArray[int](m, len(vals))
	h := NewArray[bool](m, len(vals))
	for i := range vals {
		a.Set(i, vals[i])
		h.Set(i, heads[i])
	}
	SegScan(m, a, h, func(x, y int) int { return x + y })
	want := []int{1, 3, 6, 4, 9, 6, 13, 21}
	for i := range want {
		if a.Read(i) != want[i] {
			t.Fatalf("segscan[%d] = %d, want %d (all %v)", i, a.Read(i), want[i], a.Snapshot())
		}
	}
}

func TestQuickSegScanMatchesSequential(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		vals := make([]int, n)
		heads := make([]bool, n)
		for i := range vals {
			vals[i] = rng.Intn(100)
			heads[i] = rng.Intn(4) == 0
		}
		heads[0] = true
		m := New(CREW, 16)
		a := NewArray[int](m, n)
		h := NewArray[bool](m, n)
		for i := range vals {
			a.Set(i, vals[i])
			h.Set(i, heads[i])
		}
		SegScan(m, a, h, func(x, y int) int { return x + y })
		acc := 0
		for i := 0; i < n; i++ {
			if heads[i] {
				acc = vals[i]
			} else {
				acc += vals[i]
			}
			if a.Read(i) != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCRCWMinIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(500)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(50)) // ties likely
		}
		m := New(CRCW, n)
		a := NewArray[float64](m, n)
		a.Fill(vals)
		got := CRCWMinIndex(m, a)
		want := ValIdx{V: vals[0], I: 0}
		for i := 1; i < n; i++ {
			want = MinVI(want, ValIdx{V: vals[i], I: i})
		}
		if got != want {
			t.Fatalf("trial %d (n=%d): got %+v want %+v", trial, n, got, want)
		}
		// values must be untouched
		for i := range vals {
			if a.Read(i) != vals[i] {
				t.Fatal("CRCWMinIndex must not modify input")
			}
		}
	}
}

func TestCRCWMinIndexDoublyLogSteps(t *testing.T) {
	// The step count must grow like lg lg n, not lg n: compare two sizes.
	stepsFor := func(n int) int64 {
		m := New(CRCW, n)
		a := NewArray[float64](m, n)
		for i := 0; i < n; i++ {
			a.Set(i, float64(n-i))
		}
		CRCWMinIndex(m, a)
		return m.Steps()
	}
	s256, s65536 := stepsFor(256), stepsFor(65536)
	// lg lg 256 = 3, lg lg 65536 = 4; allow constant factors but the jump
	// from 256 to 65536 (256x) must stay small.
	if s65536 > s256+4 {
		t.Fatalf("steps grew too fast: %d -> %d", s256, s65536)
	}
}

func TestCRCWMinIndexCREWFallback(t *testing.T) {
	m := New(CREW, 8)
	a := NewArray[float64](m, 20)
	for i := 0; i < 20; i++ {
		a.Set(i, float64((i*7)%13))
	}
	got := CRCWMinIndex(m, a)
	if got.V != 0 || got.I != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestCRCWMinIndexEmpty(t *testing.T) {
	m := New(CRCW, 1)
	a := NewArray[float64](m, 0)
	if got := CRCWMinIndex(m, a); got.I != -1 {
		t.Fatalf("empty should give I=-1, got %+v", got)
	}
}

func TestIsqrt(t *testing.T) {
	for x := 0; x < 500; x++ {
		r := isqrt(x)
		if r*r > x || (r+1)*(r+1) <= x {
			t.Fatalf("isqrt(%d) = %d", x, r)
		}
	}
	if isqrt(-5) != 0 {
		t.Fatal("negative isqrt should be 0")
	}
}
