package pram

import (
	"testing"

	"monge/internal/obs"
)

// A freed array must be recycled by the next NewArray of the same element
// type that fits, and the recycled storage must be indistinguishable from
// a fresh allocation: zero values, working conflict detection.
func TestArenaRecyclesAndZeroes(t *testing.T) {
	m := New(CRCW, 8)
	a := NewArray[int](m, 8)
	m.Step(8, func(id int) { a.Write(id, id, id+1) })
	a.Free()

	b := NewArray[int](m, 6)
	for i := 0; i < b.Len(); i++ {
		if got := b.Read(i); got != 0 {
			t.Fatalf("recycled array not zeroed at %d: %d", i, got)
		}
	}
	// The recycled array must behave like a fresh one for conflict
	// bookkeeping too: a priority-CRCW conflict resolves to the lowest pid.
	m.Step(6, func(id int) { b.Write(id, 0, id+10) })
	if got := b.Read(0); got != 10 {
		t.Fatalf("priority resolution on recycled array: got %d, want 10", got)
	}
}

func TestArenaHitMissCounters(t *testing.T) {
	o := obs.NewObserver()
	m := New(CREW, 4)
	m.SetObserver(o)
	a := NewArray[float64](m, 16)
	a.Free()
	b := NewArray[float64](m, 16) // hit
	c := NewArray[float64](m, 64) // miss: nothing retained that large
	_, _ = b, c
	s := o.Snapshot()["pram"]
	if s.ArenaHits != 1 {
		t.Fatalf("ArenaHits = %d, want 1", s.ArenaHits)
	}
	if s.ArenaMisses < 1 {
		t.Fatalf("ArenaMisses = %d, want >= 1", s.ArenaMisses)
	}
	// 16 floats + 16 stamps (int64) + 16 owners (int32) = 16*(8+8+4).
	if want := int64(16 * 20); s.BytesRecycled != want {
		t.Fatalf("BytesRecycled = %d, want %d", s.BytesRecycled, want)
	}
}

func TestArenaResetReleases(t *testing.T) {
	m := New(CRCW, 4)
	NewArray[int](m, 32).Free()
	m.Reset()
	o := obs.NewObserver()
	m.SetObserver(o)
	NewArray[int](m, 32)
	if s := o.Snapshot()["pram"]; s.ArenaHits != 0 {
		t.Fatalf("arena survived Reset: %d hits", s.ArenaHits)
	}
}

// A dirty array (buffered writes in an open step) must refuse recycling:
// Free during a step body is a misuse the arena absorbs by dropping.
func TestArenaFreeDirtyDropped(t *testing.T) {
	m := New(CRCW, 4)
	a := NewArray[int](m, 4)
	m.Step(1, func(id int) {
		a.Write(id, 0, 7)
		a.Free() // dirty: must NOT enter the free list
	})
	if got := a.Read(0); got != 7 {
		t.Fatalf("write lost after in-step Free: %d", got)
	}
	b := NewArray[int](m, 4)
	o := obs.NewObserver() // counters unused; just exercise the path
	_ = o
	if b == a {
		t.Fatal("dirty array was recycled")
	}
}

// Child machines recycled across ParallelDo branches must keep the
// accounting contract: counters identical to the non-recycled semantics.
func TestChildRecyclingAccounting(t *testing.T) {
	run := func() (int64, int64) {
		m := New(CRCW, 8)
		for round := 0; round < 3; round++ {
			m.ParallelDo([]int{4, 4}, func(b int, sub *Machine) {
				arr := NewArray[int](sub, 4)
				sub.Step(4, func(id int) { arr.Write(id, id, id) })
				arr.Free()
			})
		}
		return m.Time(), m.Work()
	}
	t1, w1 := run()
	t2, w2 := run()
	if t1 != t2 || w1 != w2 {
		t.Fatalf("recycled-child accounting differs: (%d,%d) vs (%d,%d)", t1, w1, t2, w2)
	}
	if t1 == 0 || w1 == 0 {
		t.Fatal("no cost charged")
	}
}
