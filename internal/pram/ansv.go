package pram

import "math"

// The All Nearest Smaller Values problem (Berkman, Breslauer, Galil,
// Schieber, Vishkin [BBG+89]): given a list a[0..n), find for every i the
// nearest index to its left and to its right holding a strictly smaller
// value. The paper's Lemma 2.2 uses ANSV to identify, for each sampled-row
// minimum, its "bracketing" minimum (nearest north-west neighbour), which
// drives processor allocation for the feasible Monge regions.

// ANSVSeq solves ANSV sequentially with the classic stack scan. left[i] is
// the largest j < i with a[j] < a[i] (or -1), right[i] the smallest j > i
// with a[j] < a[i] (or n). O(n) time.
func ANSVSeq(a []float64) (left, right []int) {
	n := len(a)
	left = make([]int, n)
	right = make([]int, n)
	stack := make([]int, 0, n)
	for i := 0; i < n; i++ {
		for len(stack) > 0 && a[stack[len(stack)-1]] >= a[i] {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			left[i] = -1
		} else {
			left[i] = stack[len(stack)-1]
		}
		stack = append(stack, i)
	}
	stack = stack[:0]
	for i := n - 1; i >= 0; i-- {
		for len(stack) > 0 && a[stack[len(stack)-1]] >= a[i] {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			right[i] = n
		} else {
			right[i] = stack[len(stack)-1]
		}
		stack = append(stack, i)
	}
	return left, right
}

// ANSV solves ANSV on the machine in O(lg n) parallel time with n
// processors: a complete binary min-tree is built bottom-up in ceil(lg n)
// supersteps, then every element locates its nearest smaller neighbours
// with an O(lg n) tree walk (one superstep of cost 2*lg n). The
// work-optimal n/lg n-processor version of [BBG+89] is simulated by
// Brent's scheduling when the machine declares fewer processors.
func ANSV(m *Machine, a *Array[float64]) (left, right *Array[int]) {
	n := a.Len()
	left = NewArray[int](m, n)
	right = NewArray[int](m, n)
	if n == 0 {
		return left, right
	}
	// Pad to a power of two; tree[size+i] = a[i], internal node v covers
	// its subtree's minimum.
	size := 1
	for size < n {
		size *= 2
	}
	inf := math.Inf(1)
	tree := NewArray[float64](m, 2*size)
	m.Step(2*size, func(id int) {
		if id >= size && id-size < n {
			tree.Write(id, id, a.Read(id-size))
		} else {
			tree.Write(id, id, inf)
		}
	})
	for lvl := size / 2; lvl >= 1; lvl /= 2 {
		l := lvl
		m.Step(l, func(id int) {
			v := l + id
			x, y := tree.Read(2*v), tree.Read(2*v+1)
			if y < x {
				x = y
			}
			tree.Write(id, v, x)
		})
	}
	lg := Log2Ceil(size) + 1
	// Left pass: climb from the leaf until some left sibling's subtree
	// holds a smaller value, then descend to its rightmost smaller leaf.
	m.StepCost(n, 2*lg, func(id int) {
		x := a.Read(id)
		v := size + id
		for v > 1 {
			if v%2 == 1 && tree.Read(v-1) < x {
				// descend into v-1 seeking the rightmost leaf < x
				u := v - 1
				for u < size {
					if tree.Read(2*u+1) < x {
						u = 2*u + 1
					} else {
						u = 2 * u
					}
				}
				left.Write(id, id, u-size)
				return
			}
			v /= 2
		}
		left.Write(id, id, -1)
	})
	// Right pass, symmetric: leftmost smaller leaf to the right.
	m.StepCost(n, 2*lg, func(id int) {
		x := a.Read(id)
		v := size + id
		for v > 1 {
			if v%2 == 0 && tree.Read(v+1) < x {
				u := v + 1
				for u < size {
					if tree.Read(2*u) < x {
						u = 2 * u
					} else {
						u = 2*u + 1
					}
				}
				right.Write(id, id, u-size)
				return
			}
			v /= 2
		}
		right.Write(id, id, n)
	})
	return left, right
}
