package pram

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitonicSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 << (1 + rng.Intn(8))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()*100 + float64(i)*1e-9 // distinct
		}
		m := New(CREW, n)
		a := NewArray[float64](m, n)
		a.Fill(vals)
		BitonicSort(m, a, func(x, y float64) bool { return x < y })
		got := a.Snapshot()
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d): sort mismatch at %d", trial, n, i)
			}
		}
	}
}

func TestBitonicSortRequiresPow2(t *testing.T) {
	m := New(CREW, 4)
	a := NewArray[int](m, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two length must panic")
		}
	}()
	BitonicSort(m, a, func(x, y int) bool { return x < y })
}

func TestBitonicMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 1 << (1 + rng.Intn(8))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		sort.Float64s(vals[:n/2])
		sort.Float64s(vals[n/2:])
		m := New(CREW, n)
		a := NewArray[float64](m, n)
		a.Fill(vals)
		BitonicMerge(m, a, func(x, y float64) bool { return x < y })
		got := a.Snapshot()
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d): merge mismatch at %d: %v vs %v", trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestBitonicMergeStepCount(t *testing.T) {
	// Merge must be O(lg n) supersteps while a full sort is O(lg^2 n).
	n := 1 << 10
	mSort := New(CREW, n)
	aSort := NewArray[float64](mSort, n)
	for i := 0; i < n; i++ {
		aSort.Set(i, float64(n-i))
	}
	BitonicSort(mSort, aSort, func(x, y float64) bool { return x < y })

	mMerge := New(CREW, n)
	aMerge := NewArray[float64](mMerge, n)
	for i := 0; i < n; i++ {
		aMerge.Set(i, float64(i%(n/2)))
	}
	BitonicMerge(mMerge, aMerge, func(x, y float64) bool { return x < y })

	if mMerge.Steps() >= mSort.Steps()/3 {
		t.Fatalf("merge (%d steps) should be far cheaper than sort (%d steps)",
			mMerge.Steps(), mSort.Steps())
	}
	if mMerge.Steps() != int64(Log2Ceil(n))+1 {
		t.Fatalf("merge steps = %d, want lg n + 1 = %d", mMerge.Steps(), Log2Ceil(n)+1)
	}
}

func TestSortPadded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 50
		}
		m := New(CREW, n)
		out := SortPadded(m, vals, func(x, y float64) bool { return x < y }, math.Inf(1))
		if out.Len() != n {
			t.Fatalf("length %d, want %d", out.Len(), n)
		}
		got := out.Snapshot()
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d): mismatch at %d", trial, n, i)
			}
		}
	}
}

func TestQuickBitonicSort(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(1000)*n + i
		}
		m := New(CRCW, n)
		a := NewArray[int](m, n)
		a.Fill(vals)
		BitonicSort(m, a, func(x, y int) bool { return x < y })
		got := a.Snapshot()
		want := append([]int(nil), vals...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}
