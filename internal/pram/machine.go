// Package pram provides a step-synchronous PRAM simulator with CREW and
// CRCW modes, plus the standard PRAM primitives (parallel prefix, reduce,
// broadcast, pack, segmented scan, and All Nearest Smaller Values) used by
// the paper's algorithms.
//
// # Model
//
// A Machine is created with a declared processor count P and a memory
// access mode. An algorithm executes a sequence of supersteps via Step: all
// virtual processors of a superstep read the shared state as it was at the
// beginning of the step, and their writes take effect when the step ends
// (writes are buffered and flushed at a synchronization barrier). A
// superstep with n virtual processors whose body performs O(1) work costs
// ceil(n/P) time units, which is exactly Brent's scheduling of n virtual
// processors onto P physical ones; StepCost is used when a body performs t
// elementary operations so the accounting stays honest.
//
// In CREW mode the machine verifies that no two distinct processors write
// the same cell in the same step and throws a *ConflictError (matching
// merr.ErrWriteConflict, recoverable at the public error-returning APIs)
// otherwise. In CRCW mode concurrent writes are resolved by the priority
// rule (lowest processor id wins), which is deterministic and at least as
// strong as the common and arbitrary CRCW variants assumed by the paper.
//
// # Robustness
//
// SetContext attaches a context checked at every superstep boundary: a
// cancelled context discards the step's buffered writes and throws
// merr.ErrCanceled, so a long simulation stops within one superstep with
// the pool drained. SetFaults attaches a faults.Injector (the
// environment-configured faults.Global by default): injected chunk stalls
// are recovered by re-dispatch and injected superstep timeouts by
// re-execution, both charged to the time/work counters, while outputs
// stay index-exact because failed attempts are effect-free (writes are
// buffered until the barrier). Children inherit both.
//
// Supersteps execute on the persistent worker pool of internal/exec, so
// the simulation is itself parallel, but the reproduced quantities are the
// step/time/work counters, not wall-clock speed. The pool's deterministic
// chunking guarantees identical outputs and charged costs for any worker
// count; child machines created by ParallelDo inherit the parent's pool
// and instrumentation sink.
package pram

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"monge/internal/exec"
	"monge/internal/faults"
	"monge/internal/merr"
	"monge/internal/obs"
)

// Mode selects the memory access discipline of a Machine.
type Mode int

const (
	// CREW permits concurrent reads and exclusive writes; concurrent
	// writes to one cell in one step are reported as conflicts.
	CREW Mode = iota
	// CRCW permits concurrent reads and concurrent writes; write conflicts
	// are resolved by priority (lowest processor id wins).
	CRCW
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case CREW:
		return "CREW"
	case CRCW:
		return "CRCW"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ConflictError reports a CREW write conflict. A conflicting program is
// incorrect by definition, so the conflict is thrown (merr.Throw) from the
// step barrier of Machine.Step; error-returning entry points recover it
// with merr.Catch, and it matches merr.ErrWriteConflict under errors.Is.
type ConflictError struct {
	Index      int // memory cell index
	Pid1, Pid2 int // the two writers
}

// Error describes the conflict.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("%v: cell %d written by processors %d and %d",
		merr.ErrWriteConflict, e.Index, e.Pid1, e.Pid2)
}

// Unwrap matches the conflict to merr.ErrWriteConflict under errors.Is.
func (e *ConflictError) Unwrap() error { return merr.ErrWriteConflict }

// Machine is a simulated PRAM.
type Machine struct {
	mode  Mode
	procs int

	time  int64 // Brent-adjusted parallel time units
	steps int64 // number of supersteps
	work  int64 // total virtual processor activations

	stepID int64

	// pool executes the parallel loops of every superstep; ownPool marks a
	// private pool installed by SetWorkers, which Reset shuts down (the
	// shared exec.Default pool is left running for other machines).
	pool    *exec.Pool
	ownPool bool
	// sink, when non-nil, receives one instrumentation record per charged
	// superstep. Child machines inherit it.
	sink exec.Sink
	// obsC and tracer are the machine's observability handles (nil when
	// the layer is off): obsC is the "pram" counter site, tracer records
	// one wall-clock span per charged superstep. Captured from the
	// process-wide obs.Global at creation; child machines inherit both.
	obsC   *obs.Counters
	tracer *obs.Tracer

	// ctx, when non-nil, is polled at superstep boundaries; cancellation
	// throws merr.ErrCanceled. faults, when enabled, injects chunk stalls
	// and superstep timeouts. Child machines inherit both.
	ctx    context.Context
	faults *faults.Injector

	// dirty lists the arrays with pending writes in the current step; an
	// array registers itself on its first write of a step and is flushed
	// and cleared at the step barrier. Tracking only dirty arrays keeps
	// step cost independent of how many arrays were ever allocated and
	// lets abandoned temporaries be garbage collected. The backing slice
	// is retained across steps ([:0] at the barrier), so registration
	// itself stops allocating after the first step.
	dirtyMu sync.Mutex
	dirty   []flusher

	// arena recycles Array storage (see arena.go). ParallelDo children
	// share the parent's arena, so a subproblem's temporaries feed the
	// next subproblem; Reset releases it.
	arena *arrayArena
}

type flusher interface {
	// flush applies the pending writes and reports how many records were
	// applied plus the largest single-shard burst (contention proxy).
	flush(m *Machine) (writes, maxShard int)
	// discard drops the pending writes without applying them (cancelled
	// step: committed state must stay at the last completed barrier).
	discard()
}

// markDirty registers f for flushing at the end of the current step.
func (m *Machine) markDirty(f flusher) {
	m.dirtyMu.Lock()
	m.dirty = append(m.dirty, f)
	m.dirtyMu.Unlock()
}

// New returns a Machine with the given mode and declared processor count.
// The processor count only affects the time accounting (Brent scheduling);
// the simulation runs on the shared exec.Default worker pool (sized by
// GOMAXPROCS) unless SetWorkers installs a private one, and attaches the
// process-wide instrumentation sink if one is installed.
func New(mode Mode, procs int) *Machine {
	if procs < 1 {
		procs = 1
	}
	m := &Machine{
		mode: mode, procs: procs,
		pool: exec.Default(), sink: exec.GlobalSink(), faults: faults.Global(),
		arena: newArrayArena(),
	}
	if o := obs.Global(); o != nil {
		m.obsC = o.Site("pram")
		m.tracer = o.Tracer()
	}
	return m
}

// child returns a machine for a ParallelDo branch: same mode, the given
// declared processor count, and — crucially — the parent's pool and sink,
// so recursive subproblems stay on the persistent runtime and remain
// traced end-to-end instead of silently falling back to a default. The
// shell is recycled from the parent's arena when possible; ParallelDo
// returns it via releaseChild once the branch and its accounting are
// done.
func (m *Machine) child(procs int) *Machine {
	if procs < 1 {
		procs = 1
	}
	if ar := m.arena; ar != nil {
		if sub := ar.getMachine(); sub != nil {
			sub.mode = m.mode
			sub.procs = procs
			sub.time, sub.steps, sub.work, sub.stepID = 0, 0, 0, 0
			sub.pool, sub.ownPool = m.pool, false
			sub.sink = m.sink
			sub.obsC, sub.tracer = m.obsC, m.tracer
			sub.ctx, sub.faults = m.ctx, m.faults
			sub.arena = ar
			sub.dirty = sub.dirty[:0]
			return sub
		}
	}
	sub := New(m.mode, procs)
	sub.pool = m.pool
	sub.sink = m.sink
	sub.obsC = m.obsC
	sub.tracer = m.tracer
	sub.ctx = m.ctx
	sub.faults = m.faults
	sub.arena = m.arena
	return sub
}

// releaseChild retains a finished branch machine for reuse by a later
// child call. Arrays created on the branch stay readable (recycling
// never touches committed array state); writing them is already outside
// the ParallelDo contract.
func (m *Machine) releaseChild(sub *Machine) {
	if m.arena != nil && !sub.ownPool {
		m.arena.putMachine(sub)
	}
}

// SetWorkers installs a private worker pool with the given worker count,
// replacing the shared default. It exists for determinism and overhead
// experiments; outputs and charged costs are identical for any value (the
// runtime's chunking contract). A previous private pool is shut down.
func (m *Machine) SetWorkers(w int) {
	if m.ownPool {
		m.pool.Close()
	}
	m.pool = exec.NewPool(w)
	m.ownPool = true
}

// Workers returns the worker count of the machine's pool.
func (m *Machine) Workers() int { return m.pool.Workers() }

// SetSink attaches an instrumentation sink receiving one record per
// charged superstep (nil detaches). ParallelDo children inherit it.
func (m *Machine) SetSink(s exec.Sink) { m.sink = s }

// SetObserver attaches the machine to an observability layer: its "pram"
// counter site and, if tracing is enabled on o, its span tracer (nil
// detaches both). ParallelDo children inherit the handles.
func (m *Machine) SetObserver(o *obs.Observer) {
	m.obsC = o.Site("pram")
	m.tracer = o.Tracer()
}

// SetContext attaches a context polled at every superstep boundary: once
// it is cancelled the next Step discards its buffered writes and throws
// merr.ErrCanceled (also matching the context's own error), which the
// public error-returning APIs recover. Nil detaches. ParallelDo children
// inherit it.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// Context returns the attached context (nil when none).
func (m *Machine) Context() context.Context { return m.ctx }

// SetFaults attaches a fault injector (nil disables injection). Machines
// start with the environment-configured faults.Global injector; ParallelDo
// children inherit the parent's.
func (m *Machine) SetFaults(in *faults.Injector) { m.faults = in }

// Faults returns the attached fault injector (nil when none).
func (m *Machine) Faults() *faults.Injector { return m.faults }

// Mode returns the machine's memory access mode.
func (m *Machine) Mode() Mode { return m.mode }

// Procs returns the declared processor count.
func (m *Machine) Procs() int { return m.procs }

// Time returns the accumulated Brent-adjusted parallel time: the sum over
// supersteps of cost * ceil(n/P).
func (m *Machine) Time() int64 { return m.time }

// Steps returns the number of supersteps executed.
func (m *Machine) Steps() int64 { return m.steps }

// Work returns the total number of virtual processor activations, weighted
// by per-step cost (the processor-time product of the simulated program).
func (m *Machine) Work() int64 { return m.work }

// Cost is one reading of a machine's cumulative cost counters. Two
// readings subtract to the cost charged between them, which is how
// per-query stats are carved out of a long-lived machine.
type Cost struct {
	Steps int64
	Time  int64
	Work  int64
}

// Sub returns the cost charged between the earlier reading before and
// this one.
func (c Cost) Sub(before Cost) Cost {
	return Cost{Steps: c.Steps - before.Steps, Time: c.Time - before.Time, Work: c.Work - before.Work}
}

// CostSnapshot returns the current cumulative counters as one value, for
// before/after diffing around a query.
func (m *Machine) CostSnapshot() Cost {
	return Cost{Steps: m.steps, Time: m.time, Work: m.work}
}

// Reset clears the cost counters (registered arrays keep their contents),
// releases the scratch arena to the garbage collector, and shuts down the
// machine's private pool, if any; the pool restarts lazily if the machine
// is used again. The shared default pool is left running for other
// machines.
func (m *Machine) Reset() {
	m.time, m.steps, m.work = 0, 0, 0
	if m.arena != nil {
		m.arena.release()
	}
	if m.ownPool {
		m.pool.Close()
	}
}

// Step executes one superstep with n virtual processors, each running
// body(id) for its zero-based id. The body must perform O(1) work; use
// StepCost otherwise. Reads performed through Array handles observe the
// state at the beginning of the step; writes are applied when the step
// completes.
func (m *Machine) Step(n int, body func(id int)) {
	m.StepCost(n, 1, body)
}

// StepCost is Step for bodies that perform cost elementary operations
// each; the time charge is cost * ceil(n/P) and the work charge is
// cost * n.
func (m *Machine) StepCost(n, cost int, body func(id int)) {
	if n <= 0 {
		return
	}
	if cost < 1 {
		cost = 1
	}
	if m.ctx != nil {
		if cause := m.ctx.Err(); cause != nil {
			m.discardDirty()
			merr.Throw(merr.Canceled(cause))
		}
	}
	m.steps++
	base := int64(cost) * int64((n+m.procs-1)/m.procs)
	timeBefore, workBefore := m.time, m.work
	m.time += base
	m.work += int64(cost) * int64(n)
	m.stepID++

	var spanStart time.Time
	if m.tracer != nil {
		spanStart = m.tracer.Begin()
	}

	var chunks int
	var stalls int64
	if m.ctx == nil && !m.faults.Enabled() {
		// Fast path: no cancellation points, no injection hooks.
		chunks = m.pool.For(n, body)
	} else {
		res, err := m.pool.Run(exec.Loop{
			N: n, Body: body, Ctx: m.ctx, Stall: m.faults.StallFn(m.stepID),
		})
		chunks, stalls = res.Chunks, res.Stalls
		if err != nil {
			// The step is partial; drop its buffered writes so committed
			// state stays exactly as of the last completed barrier.
			m.discardDirty()
			merr.Throw(merr.Canceled(err))
		}
		if m.faults.Enabled() {
			// Charge the recoveries: each stalled chunk attempt re-executes
			// one chunk (one extra time unit per stall at full chunk work),
			// and each superstep timeout re-executes the whole step. The
			// failed attempts are effect-free, so only the counters move.
			if stalls > 0 {
				size, _ := exec.ChunkBounds(n)
				if size > n {
					size = n
				}
				m.time += int64(cost) * stalls
				m.work += int64(cost) * int64(size) * stalls
			}
			if t := m.faults.StepTimeouts(m.stepID); t > 0 {
				m.time += int64(t) * base
				m.work += int64(t) * int64(cost) * int64(n)
				if c := m.obsC; c != nil {
					c.FaultTimeouts.Add(int64(t))
				}
			}
		}
	}

	writes, maxShard := 0, 0
	for _, a := range m.dirty {
		w, ms := a.flush(m)
		writes += w
		if ms > maxShard {
			maxShard = ms
		}
	}
	m.dirty = m.dirty[:0]

	if c := m.obsC; c != nil {
		c.Supersteps.Add(1)
		c.ChargedTime.Add(m.time - timeBefore)
		c.ChargedWork.Add(m.work - workBefore)
		c.SharedWrites.Add(int64(writes))
		c.PoolChunks.Add(int64(chunks))
		if stalls > 0 {
			c.FaultStalls.Add(stalls)
		}
	}
	if m.tracer != nil {
		m.tracer.End("pram", "step", spanStart, n, cost, chunks)
	}
	if m.sink != nil {
		m.sink.Record(exec.StepStats{
			Model: "pram", Op: "step",
			N: n, Cost: cost, Chunks: chunks,
			Writes: writes, MaxShard: maxShard,
		})
	}
}

// discardDirty drops every buffered write of the current (abandoned) step
// without committing, leaving the arrays at the last completed barrier.
func (m *Machine) discardDirty() {
	m.dirtyMu.Lock()
	d := m.dirty
	m.dirty = m.dirty[:0]
	m.dirtyMu.Unlock()
	for _, f := range d {
		f.discard()
	}
}

// Sequential runs body outside the parallel cost model (for setup and
// verification code in tests and benchmarks). It costs nothing and flushes
// nothing; do not call Array.Write from it.
func (m *Machine) Sequential(body func()) { body() }

// shardCount is the number of write-buffer shards per array; writes are
// sharded by cell index to reduce lock contention.
const shardCount = 64

type writeRec[T any] struct {
	idx int
	pid int
	val T
}

type shard[T any] struct {
	mu   sync.Mutex
	recs []writeRec[T]
}

// Array is a shared-memory vector of T living on a Machine. Reads return
// the value committed at the last step boundary; writes become visible
// when the current step ends.
type Array[T any] struct {
	m      *Machine
	vals   []T
	stamp  []int64 // stepID of the last pending/committed write this step
	owner  []int32 // winning writer pid for the current step
	dirty  int32   // 1 while registered in the machine's dirty list
	shards [shardCount]shard[T]
}

// NewArray returns a shared array of length n filled with the zero value
// on machine m. Storage comes from the machine's scratch arena when a
// previously Freed array of the same element type fits (zeroed at
// checkout, so the zero-value contract holds either way); otherwise it is
// freshly allocated.
func NewArray[T any](m *Machine, n int) *Array[T] {
	if a := checkoutArray[T](m, n); a != nil {
		return a
	}
	return &Array[T]{
		m:     m,
		vals:  make([]T, n),
		stamp: make([]int64, n),
		owner: make([]int32, n),
	}
}

// Len returns the array length.
func (a *Array[T]) Len() int { return len(a.vals) }

// Read returns the committed value of cell i. When an observer is
// attached the read is counted as one shared-memory access; the disabled
// path is a single nil check on a cached field.
func (a *Array[T]) Read(i int) T {
	if c := a.m.obsC; c != nil {
		c.SharedReads.Add(1)
	}
	return a.vals[i]
}

// Write records a pending write of v to cell i by processor pid; it takes
// effect at the end of the current step.
func (a *Array[T]) Write(pid, i int, v T) {
	if atomic.CompareAndSwapInt32(&a.dirty, 0, 1) {
		a.m.markDirty(a)
	}
	s := &a.shards[i%shardCount]
	s.mu.Lock()
	s.recs = append(s.recs, writeRec[T]{idx: i, pid: pid, val: v})
	s.mu.Unlock()
}

// Fill sets every cell outside the parallel cost model (initial input
// placement, as the paper assumes inputs reside in memory at time zero).
func (a *Array[T]) Fill(vals []T) {
	copy(a.vals, vals)
}

// Set assigns one cell outside the parallel cost model.
func (a *Array[T]) Set(i int, v T) { a.vals[i] = v }

// Snapshot returns a copy of the committed contents.
func (a *Array[T]) Snapshot() []T {
	out := make([]T, len(a.vals))
	copy(out, a.vals)
	return out
}

// discard drops all pending writes without applying them.
func (a *Array[T]) discard() {
	atomic.StoreInt32(&a.dirty, 0)
	for si := range a.shards {
		s := &a.shards[si]
		s.mu.Lock()
		s.recs = s.recs[:0]
		s.mu.Unlock()
	}
}

// flush applies pending writes under the machine's conflict rules and
// reports the applied record count and the largest single shard.
func (a *Array[T]) flush(m *Machine) (writes, maxShard int) {
	atomic.StoreInt32(&a.dirty, 0)
	step := m.stepID
	for si := range a.shards {
		s := &a.shards[si]
		if len(s.recs) == 0 {
			continue
		}
		writes += len(s.recs)
		if len(s.recs) > maxShard {
			maxShard = len(s.recs)
		}
		for _, r := range s.recs {
			if a.stamp[r.idx] != step {
				a.stamp[r.idx] = step
				a.owner[r.idx] = int32(r.pid)
				a.vals[r.idx] = r.val
				continue
			}
			cur := int(a.owner[r.idx])
			switch {
			case r.pid == cur:
				// Later write by the same processor wins (program order
				// within one processor is preserved by the shard slice).
				a.vals[r.idx] = r.val
				if c := m.obsC; c != nil {
					c.ConflictsSamePid.Add(1)
				}
			case m.mode == CREW:
				if c := m.obsC; c != nil {
					c.ConflictsCREW.Add(1)
				}
				merr.Throw(&ConflictError{Index: r.idx, Pid1: cur, Pid2: r.pid})
			default:
				// Priority CRCW: the resolution between distinct writers is
				// counted whichever pid wins the cell.
				if c := m.obsC; c != nil {
					c.ConflictsPriority.Add(1)
				}
				if r.pid < cur {
					// Lowest pid wins.
					a.owner[r.idx] = int32(r.pid)
					a.vals[r.idx] = r.val
				}
			}
		}
		s.recs = s.recs[:0]
	}
	return writes, maxShard
}
