package pram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ansvBrute(a []float64) (left, right []int) {
	n := len(a)
	left = make([]int, n)
	right = make([]int, n)
	for i := range a {
		left[i] = -1
		for j := i - 1; j >= 0; j-- {
			if a[j] < a[i] {
				left[i] = j
				break
			}
		}
		right[i] = n
		for j := i + 1; j < n; j++ {
			if a[j] < a[i] {
				right[i] = j
				break
			}
		}
	}
	return left, right
}

func eqI(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestANSVSeqSmall(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	left, right := ANSVSeq(a)
	wl, wr := ansvBrute(a)
	if !eqI(left, wl) || !eqI(right, wr) {
		t.Fatalf("got %v %v want %v %v", left, right, wl, wr)
	}
}

func TestANSVSeqTies(t *testing.T) {
	// Equal values are NOT smaller: strictly smaller semantics.
	a := []float64{2, 2, 2}
	left, right := ANSVSeq(a)
	for i := range a {
		if left[i] != -1 || right[i] != 3 {
			t.Fatalf("ties must not count: %v %v", left, right)
		}
	}
}

func TestANSVSeqRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(20))
		}
		left, right := ANSVSeq(a)
		wl, wr := ansvBrute(a)
		if !eqI(left, wl) || !eqI(right, wr) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}

func TestANSVParallelMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(300)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(25))
		}
		m := New(CREW, n)
		a := NewArray[float64](m, n)
		a.Fill(vals)
		left, right := ANSV(m, a)
		wl, wr := ANSVSeq(vals)
		if !eqI(left.Snapshot(), wl) || !eqI(right.Snapshot(), wr) {
			t.Fatalf("trial %d (n=%d):\n got %v %v\nwant %v %v",
				trial, n, left.Snapshot(), right.Snapshot(), wl, wr)
		}
	}
}

func TestANSVParallelLogSteps(t *testing.T) {
	stepsFor := func(n int) int64 {
		m := New(CREW, n)
		a := NewArray[float64](m, n)
		for i := 0; i < n; i++ {
			a.Set(i, float64(i%17))
		}
		ANSV(m, a)
		return m.Steps()
	}
	// Supersteps: tree build lg n + 2 walk steps + init; ratio between
	// n=4096 and n=64 should be about 12/6 = 2, far from the 64x data ratio.
	s64, s4096 := stepsFor(64), stepsFor(4096)
	if s4096 > 2*s64 {
		t.Fatalf("ANSV steps not logarithmic: %d -> %d", s64, s4096)
	}
}

func TestANSVEmpty(t *testing.T) {
	m := New(CREW, 1)
	a := NewArray[float64](m, 0)
	left, right := ANSV(m, a)
	if left.Len() != 0 || right.Len() != 0 {
		t.Fatal("empty ANSV should give empty outputs")
	}
}

func TestQuickANSVParallel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(128)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 10
		}
		m := New(CRCW, n)
		a := NewArray[float64](m, n)
		a.Fill(vals)
		left, right := ANSV(m, a)
		wl, wr := ANSVSeq(vals)
		return eqI(left.Snapshot(), wl) && eqI(right.Snapshot(), wr)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
