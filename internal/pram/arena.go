package pram

import (
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// arrayArena recycles Array storage between supersteps and between
// queries on the same machine. Free-lists are keyed by element type;
// NewArray checks one out, Array.Free returns one, and Machine.Reset
// releases everything to the garbage collector.
//
// The recycled payload is substantial: besides the three backing slices
// (vals/stamp/owner), a reused *Array keeps the append capacity of its 64
// write-buffer shards, which is what makes steady-state supersteps
// allocation-free. Recycled storage is fully zeroed at checkout, so a
// recycled array is indistinguishable from a fresh one (the conformance
// suites are the guard): in particular stamp/owner must not carry values
// from a previous machine whose stepID sequence could collide with the
// current one.
type arrayArena struct {
	mu    sync.Mutex
	lists map[reflect.Type]any // *freeArrays[T] per element type

	// machines recycles child Machine shells between ParallelDo branches
	// (the branch bodies run sequentially, so a handful suffice for any
	// recursion). A recycled child keeps its dirty-list capacity.
	machines []*Machine
}

func newArrayArena() *arrayArena {
	return &arrayArena{lists: make(map[reflect.Type]any)}
}

// release drops every retained array and machine. Called by Machine.Reset.
func (ar *arrayArena) release() {
	ar.mu.Lock()
	ar.lists = make(map[reflect.Type]any)
	ar.machines = nil
	ar.mu.Unlock()
}

// getMachine pops a recycled child shell, or returns nil.
func (ar *arrayArena) getMachine() *Machine {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	n := len(ar.machines)
	if n == 0 {
		return nil
	}
	sub := ar.machines[n-1]
	ar.machines[n-1] = nil
	ar.machines = ar.machines[:n-1]
	return sub
}

// putMachine retains a finished child shell for reuse.
func (ar *arrayArena) putMachine(sub *Machine) {
	ar.mu.Lock()
	if len(ar.machines) < arenaListCap {
		ar.machines = append(ar.machines, sub)
	}
	ar.mu.Unlock()
}

// checkoutArray returns a recycled array of length n for machine m, or
// nil when the arena has nothing suitable (the caller then allocates).
func checkoutArray[T any](m *Machine, n int) *Array[T] {
	ar := m.arena
	if ar == nil {
		return nil
	}
	key := reflect.TypeFor[T]()
	ar.mu.Lock()
	l, ok := ar.lists[key]
	if !ok {
		ar.mu.Unlock()
		if c := m.obsC; c != nil {
			c.ArenaMisses.Add(1)
		}
		return nil
	}
	fl := l.(*freeArrays[T])
	var got *Array[T]
	for i := len(fl.free) - 1; i >= 0 && len(fl.free)-i <= arenaScanLimit; i-- {
		if a := fl.free[i]; cap(a.vals) >= n {
			last := len(fl.free) - 1
			fl.free[i] = fl.free[last]
			fl.free[last] = nil
			fl.free = fl.free[:last]
			got = a
			break
		}
	}
	ar.mu.Unlock()
	if got == nil {
		if c := m.obsC; c != nil {
			c.ArenaMisses.Add(1)
		}
		return nil
	}
	got.m = m
	got.vals = got.vals[:n]
	got.stamp = got.stamp[:n]
	got.owner = got.owner[:n]
	clear(got.vals)
	clear(got.stamp)
	clear(got.owner)
	got.dirty = 0
	if c := m.obsC; c != nil {
		c.ArenaHits.Add(1)
		c.BytesRecycled.Add(int64(n) * int64(unsafe.Sizeof(*new(T))+12))
	}
	return got
}

// freeArrays is the per-element-type free-list. A thin wrapper instead of
// scratch.FreeList because the recycled unit is the whole *Array (shard
// capacity included), not a bare slice.
type freeArrays[T any] struct{ free []*Array[T] }

const (
	arenaScanLimit = 16 // checkout candidates inspected per call
	arenaListCap   = 64 // retained arrays per element type
)

// Free returns the array's storage to its machine's arena for reuse by a
// later NewArray of the same element type. The caller asserts the array
// is dead: it must not be read or written afterwards, and it must have no
// writes buffered in the current step (such an array is dropped rather
// than recycled). Free is optional — arrays that are never freed are
// reclaimed by the garbage collector as before.
func (a *Array[T]) Free() {
	m := a.m
	if m == nil || m.arena == nil || atomic.LoadInt32(&a.dirty) != 0 {
		return
	}
	a.m = nil // double Free is a no-op; use-after-Free panics in Read/Write
	ar := m.arena
	key := reflect.TypeFor[T]()
	ar.mu.Lock()
	l, ok := ar.lists[key]
	if !ok {
		l = &freeArrays[T]{}
		ar.lists[key] = l
	}
	fl := l.(*freeArrays[T])
	if len(fl.free) < arenaListCap {
		fl.free = append(fl.free, a)
	}
	ar.mu.Unlock()
}
