package pram

import (
	"errors"
	"math/rand"
	"testing"

	"monge/internal/merr"
)

func TestModeString(t *testing.T) {
	if CREW.String() != "CREW" || CRCW.String() != "CRCW" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode formatting wrong")
	}
}

func TestStepBuffersWrites(t *testing.T) {
	m := New(CREW, 4)
	a := NewArray[int](m, 8)
	for i := 0; i < 8; i++ {
		a.Set(i, i)
	}
	// Classic shift: every processor reads its left neighbour and writes
	// itself; buffered writes must make all reads see the pre-step state.
	m.Step(8, func(id int) {
		if id > 0 {
			a.Write(id, id, a.Read(id-1))
		}
	})
	want := []int{0, 0, 1, 2, 3, 4, 5, 6}
	got := a.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shift result %v, want %v", got, want)
		}
	}
}

func TestTimeAccountingBrent(t *testing.T) {
	m := New(CREW, 4)
	m.Step(16, func(int) {})       // ceil(16/4) = 4
	m.Step(3, func(int) {})        // ceil(3/4) = 1
	m.StepCost(8, 5, func(int) {}) // 5 * ceil(8/4) = 10
	if m.Time() != 15 {
		t.Fatalf("Time = %d, want 15", m.Time())
	}
	if m.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", m.Steps())
	}
	if m.Work() != 16+3+40 {
		t.Fatalf("Work = %d, want %d", m.Work(), 16+3+40)
	}
	m.Reset()
	if m.Time() != 0 || m.Steps() != 0 || m.Work() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestStepZeroOrNegativeProcs(t *testing.T) {
	m := New(CRCW, 0) // clamped to 1
	if m.Procs() != 1 {
		t.Fatalf("procs = %d, want 1", m.Procs())
	}
	m.Step(0, func(int) { t.Fatal("body must not run for n <= 0") })
	if m.Steps() != 0 {
		t.Fatal("empty step should not count")
	}
}

func TestCREWConflictDetected(t *testing.T) {
	m := New(CREW, 4)
	a := NewArray[int](m, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected CREW conflict throw")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T, want a merr failure", r)
		}
		if !errors.Is(err, merr.ErrWriteConflict) {
			t.Fatalf("thrown error %v does not match merr.ErrWriteConflict", err)
		}
		var ce *ConflictError
		if !errors.As(err, &ce) {
			t.Fatalf("thrown error %T does not unwrap to *ConflictError", r)
		}
		if ce.Index != 2 {
			t.Fatalf("conflict index = %d, want 2", ce.Index)
		}
		if ce.Error() == "" {
			t.Fatal("empty error text")
		}
	}()
	m.Step(4, func(id int) {
		a.Write(id, 2, id) // everyone writes cell 2
	})
}

func TestCREWSameProcessorRewriteAllowed(t *testing.T) {
	m := New(CREW, 4)
	a := NewArray[int](m, 4)
	m.Step(4, func(id int) {
		a.Write(id, id, 1)
		a.Write(id, id, 2) // same processor, same cell: program order wins
	})
	if a.Read(0) != 2 {
		t.Fatalf("later same-pid write must win, got %d", a.Read(0))
	}
}

func TestCRCWPriorityResolution(t *testing.T) {
	m := New(CRCW, 8)
	a := NewArray[int](m, 1)
	m.Step(64, func(id int) {
		a.Write(id, 0, 1000+id)
	})
	if a.Read(0) != 1000 {
		t.Fatalf("priority CRCW should keep pid 0's value, got %d", a.Read(0))
	}
}

func TestCRCWPriorityWithSamePidRewrites(t *testing.T) {
	m := New(CRCW, 8)
	a := NewArray[int](m, 1)
	m.Step(16, func(id int) {
		a.Write(id, 0, id)
		a.Write(id, 0, 100+id)
	})
	if a.Read(0) != 100 {
		t.Fatalf("want pid 0's last write (100), got %d", a.Read(0))
	}
}

func TestArrayFillSetSnapshot(t *testing.T) {
	m := New(CREW, 2)
	a := NewArray[float64](m, 3)
	a.Fill([]float64{1, 2, 3})
	a.Set(1, 9)
	s := a.Snapshot()
	if s[0] != 1 || s[1] != 9 || s[2] != 3 {
		t.Fatalf("snapshot %v", s)
	}
	s[0] = 77
	if a.Read(0) == 77 {
		t.Fatal("snapshot must be a copy")
	}
	if a.Len() != 3 {
		t.Fatal("len wrong")
	}
}

func TestSequentialHelper(t *testing.T) {
	m := New(CREW, 2)
	ran := false
	m.Sequential(func() { ran = true })
	if !ran || m.Steps() != 0 {
		t.Fatal("Sequential must run body at zero cost")
	}
}

func TestManyStepsDirtyTracking(t *testing.T) {
	// Allocating many temporaries must not slow later steps (dirty list
	// only). This is a functional check that flushing still works after
	// temporaries are abandoned.
	m := New(CRCW, 8)
	for k := 0; k < 50; k++ {
		tmp := NewArray[int](m, 16)
		m.Step(16, func(id int) { tmp.Write(id, id, id*k) })
		if tmp.Read(3) != 3*k {
			t.Fatalf("iteration %d: flush failed", k)
		}
	}
}

func TestParallelForLargeN(t *testing.T) {
	m := New(CRCW, 1024)
	a := NewArray[int](m, 5000)
	m.Step(5000, func(id int) { a.Write(id, id, id*2) })
	for i := 0; i < 5000; i += 513 {
		if a.Read(i) != i*2 {
			t.Fatalf("cell %d = %d", i, a.Read(i))
		}
	}
}

func TestDeterministicUnderConcurrency(t *testing.T) {
	// Priority resolution must make concurrent-write outcomes reproducible
	// regardless of goroutine scheduling.
	rng := rand.New(rand.NewSource(42))
	targets := make([]int, 4096)
	for i := range targets {
		targets[i] = rng.Intn(64)
	}
	var first []int
	for rep := 0; rep < 3; rep++ {
		m := New(CRCW, 64)
		a := NewArray[int](m, 64)
		m.Step(4096, func(id int) {
			a.Write(id, targets[id], id)
		})
		snap := a.Snapshot()
		if rep == 0 {
			first = snap
			continue
		}
		for i := range snap {
			if snap[i] != first[i] {
				t.Fatalf("run %d differs at %d: %d vs %d", rep, i, snap[i], first[i])
			}
		}
	}
}

func TestParallelDo(t *testing.T) {
	m := New(CRCW, 16)
	times := []int{3, 7, 2}
	var workSum int64
	m.ParallelDo([]int{4, 4, 8}, func(b int, sub *Machine) {
		if sub.Mode() != CRCW {
			t.Error("child mode must match parent")
		}
		for s := 0; s < times[b]; s++ {
			sub.Step(sub.Procs(), func(int) {})
		}
		workSum += sub.Work()
	})
	// Parent charged the max child time (7 steps of cost 1 each).
	if m.Time() != 7 {
		t.Fatalf("parent time = %d, want 7 (max branch)", m.Time())
	}
	if m.Work() != workSum {
		t.Fatalf("parent work = %d, want sum %d", m.Work(), workSum)
	}
}

func TestEvenSplit(t *testing.T) {
	s := EvenSplit(10, 3)
	if len(s) != 3 || s[0] != 4 || s[1] != 4 || s[2] != 4 {
		t.Fatalf("EvenSplit(10,3) = %v", s)
	}
	if EvenSplit(10, 0) != nil {
		t.Fatal("zero branches should give nil")
	}
	s = EvenSplit(0, 2)
	if s[0] != 1 {
		t.Fatal("minimum one processor per branch")
	}
}
