package httpfront

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"monge/internal/obs"
)

func getMetrics(t *testing.T) (*http.Response, string) {
	t.Helper()
	ts, _, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsExposition pins the Prometheus text format: version 0.0.4
// content type, # TYPE headers, and one monge_<counter>{site="..."}
// sample per site with the counter's value, sites and metrics sorted.
func TestMetricsExposition(t *testing.T) {
	old := obs.Global()
	t.Cleanup(func() { obs.SetGlobal(old) })
	o := obs.NewObserver()
	o.Site("kernel").Supersteps.Add(5)
	o.Site("kernel").QueriesServed.Add(7)
	o.Site("batch").Supersteps.Add(11)
	obs.SetGlobal(o)

	resp, body := getMetrics(t)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE monge_supersteps gauge\n",
		"monge_supersteps{site=\"kernel\"} 5\n",
		"monge_supersteps{site=\"batch\"} 11\n",
		"# TYPE monge_queries_served gauge\n",
		"monge_queries_served{site=\"kernel\"} 7\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q:\n%s", want, body)
		}
	}
	// Sites under one metric are emitted in sorted order.
	if strings.Index(body, `supersteps{site="batch"}`) > strings.Index(body, `supersteps{site="kernel"}`) {
		t.Errorf("sites not sorted:\n%s", body)
	}
	// Every sample line parses as name{site="..."} value with our prefix.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "monge_") || !strings.Contains(line, `{site="`) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestMetricsNoObserver: with observability off the endpoint stays a
// valid scrape target — 200 with the right content type and no samples.
func TestMetricsNoObserver(t *testing.T) {
	old := obs.Global()
	t.Cleanup(func() { obs.SetGlobal(old) })
	obs.SetGlobal(nil)

	resp, body := getMetrics(t)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if body != "" {
		t.Fatalf("expected empty body, got %q", body)
	}
}
