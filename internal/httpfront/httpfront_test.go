package httpfront

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"monge/internal/admit"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/serve"
	"monge/internal/smawk"
)

func newTestServer(t *testing.T, opt *admit.Options) (*httptest.Server, *serve.Pool, *admit.Front) {
	t.Helper()
	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 8})
	f := admit.New(p, opt)
	ts := httptest.NewServer(New(f).Handler())
	t.Cleanup(func() {
		ts.Close()
		p.Close()
		f.Drain()
	})
	return ts, p, f
}

func postQuery(t *testing.T, ts *httptest.Server, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func rowsOf(a marray.Matrix) [][]float64 {
	out := make([][]float64, a.Rows())
	for i := range out {
		out[i] = make([]float64, a.Cols())
		for j := range out[i] {
			out[i][j] = a.At(i, j)
		}
	}
	return out
}

// TestQueryRowMinima pins the happy path: a Monge array in, the exact
// SMAWK row minima out.
func TestQueryRowMinima(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(1))
	a := marray.RandomMonge(rng, 12, 15)
	want := smawk.RowMinima(a)

	resp, body := postQuery(t, ts, map[string]any{"kind": "row-minima", "a": rowsOf(a)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Idx) != len(want) {
		t.Fatalf("got %d indices, want %d", len(qr.Idx), len(want))
	}
	for r := range want {
		if qr.Idx[r] != want[r] {
			t.Fatalf("row %d: %d, want %d", r, qr.Idx[r], want[r])
		}
	}
}

// TestQueryStaircaseNulls pins the JSON staircase encoding: null
// entries decode as +Inf and the answer matches the staircase kernel.
func TestQueryStaircaseNulls(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(2))
	s := marray.RandomStaircaseMonge(rng, 8, 8)
	want := smawk.StaircaseRowMinima(s)

	// Hand-build the JSON so blocked entries really are null tokens.
	var sb strings.Builder
	sb.WriteString(`{"kind":"staircase-row-minima","a":[`)
	for i := 0; i < s.Rows(); i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("[")
		for j := 0; j < s.Cols(); j++ {
			if j > 0 {
				sb.WriteString(",")
			}
			if v := s.At(i, j); v == v && !isInf(v) {
				fmt.Fprintf(&sb, "%g", v)
			} else {
				sb.WriteString("null")
			}
		}
		sb.WriteString("]")
	}
	sb.WriteString("]}")

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for r := range want {
		if qr.Idx[r] != want[r] {
			t.Fatalf("row %d: %d, want %d", r, qr.Idx[r], want[r])
		}
	}
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }

// TestQueryTubeMaxima pins the composite path end to end.
func TestQueryTubeMaxima(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(3))
	c := marray.RandomComposite(rng, 4, 5, 6)
	wantJ, wantV := smawk.TubeMaxima(c)

	resp, body := postQuery(t, ts, map[string]any{
		"kind": "tube-maxima", "d": rowsOf(c.D), "e": rowsOf(c.E),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	for x := range wantJ {
		for k := range wantJ[x] {
			if qr.TubeJ[x][k] != wantJ[x][k] || qr.TubeV[x][k] != wantV[x][k] {
				t.Fatalf("tube (%d,%d): j=%d v=%g, want j=%d v=%g",
					x, k, qr.TubeJ[x][k], qr.TubeV[x][k], wantJ[x][k], wantV[x][k])
			}
		}
	}
}

// TestBadRequests pins the 400 mapping: malformed JSON, unknown kind,
// ragged and non-Monge matrices all reject with code bad_request.
func TestBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	for name, body := range map[string]string{
		"malformed":     `{"kind": `,
		"unknown-kind":  `{"kind":"column-minima","a":[[1]]}`,
		"empty-matrix":  `{"kind":"row-minima","a":[]}`,
		"ragged":        `{"kind":"row-minima","a":[[1,2],[3]]}`,
		"unknown-field": `{"kind":"row-minima","a":[[1]],"bogus":1}`,
		"not-monge":     `{"kind":"row-minima","a":[[9,0],[0,9]]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, er := ErrorResponse{}, json.NewDecoder(resp.Body).Decode
		_ = er(&raw)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%+v)", name, resp.StatusCode, raw)
		}
		if raw.Code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", name, raw.Code)
		}
	}
}

// TestOverloadMapsTo429 pins the load-shedding mapping: a saturated
// front returns 429 with a Retry-After hint and code overloaded.
func TestOverloadMapsTo429(t *testing.T) {
	ts, _, front := newTestServer(t, &admit.Options{MaxInflight: 1, ShedFraction: 1})
	rng := rand.New(rand.NewSource(4))
	a := marray.RandomMonge(rng, 8, 8)

	// Hold the only inflight slot with a slow direct admission, then hit
	// the HTTP path: it must shed instantly.
	slow := marray.Func{M: 8, N: 8, F: func(i, j int) float64 {
		time.Sleep(200 * time.Microsecond)
		return a.At(i, j)
	}}
	if _, err := front.Admit(t.Context(), admit.Request{Query: serve.Query{Kind: serve.RowMinima, A: slow}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	resp, body := postQuery(t, ts, map[string]any{"kind": "row-minima", "a": rowsOf(a)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "overloaded" {
		t.Fatalf("code %q, want overloaded", er.Code)
	}
}

// TestDeadlineMapsTo504 pins the deadline mapping: an unmeetable
// deadline_ms returns 504 with code deadline_exceeded.
func TestDeadlineMapsTo504(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(5))
	a := marray.RandomMonge(rng, 32, 32)
	slow := make([][]float64, 32)
	base := rowsOf(a)
	for i := range slow {
		slow[i] = base[i]
	}
	// A 1ms deadline against a query whose entries each sleep: the
	// deadline fires while queued or mid-evaluation either way.
	resp, body := postQuery(t, ts, map[string]any{
		"kind": "row-minima", "a": slow, "deadline_ms": 1,
	})
	// Tiny matrices can still finish within 1ms on a fast machine; both
	// outcomes are legal, but a failure must be the typed 504.
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 200 or 504; body %s", resp.StatusCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Code != "deadline_exceeded" {
			t.Fatalf("code %q, want deadline_exceeded", er.Code)
		}
	}
}

// TestClosedMapsTo503 pins the draining/closed mapping.
func TestClosedMapsTo503(t *testing.T) {
	p := serve.New(pram.CRCW, serve.Options{Workers: 1})
	f := admit.New(p, nil)
	ts := httptest.NewServer(New(f).Handler())
	defer ts.Close()
	p.Close()
	f.Drain()

	rng := rand.New(rand.NewSource(6))
	resp, body := postQuery(t, ts, map[string]any{"kind": "row-minima", "a": rowsOf(marray.RandomMonge(rng, 6, 6))})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "closed" {
		t.Fatalf("code %q, want closed", er.Code)
	}
}

// TestStatsEndpoint pins /v1/stats: pool state and front counters are
// served as JSON and move with traffic.
func TestStatsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(7))
	postQuery(t, ts, map[string]any{"kind": "row-minima", "a": rowsOf(marray.RandomMonge(rng, 8, 8))})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Pool.State != serve.StateServing {
		t.Fatalf("pool state %q, want %q", st.Pool.State, serve.StateServing)
	}
	if st.Front.Admitted < 1 {
		t.Fatalf("front admitted %d, want >= 1", st.Front.Admitted)
	}
}

// TestExpvarEndpoint pins /debug/vars availability (the monge_obs
// variable is published on handler construction).
func TestExpvarEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["monge_obs"]; !ok {
		t.Fatal("/debug/vars has no monge_obs variable")
	}
}
