// Package httpfront exposes the load-disciplined serving stack over
// net/http as a small JSON API, so the library's typed serving errors
// become conventional HTTP status codes:
//
//	POST /v1/query   run one query        200 / 400 / 429 / 503 / 504
//	GET  /v1/stats   pool + front stats   200
//	GET  /debug/vars expvar (monge_obs)   200
//
// The mapping is exact: ErrOverloaded (full queue, inflight cap, shed,
// quota) is 429 with a Retry-After hint, ErrDeadlineExceeded is 504,
// merr.ErrCanceled and serve.ErrClosed are 503, structural input errors
// (ErrNotMonge, ErrNotStaircase, ErrDimensionMismatch, bad JSON) are
// 400. Per-query deadlines ride in the request body (deadline_ms) and
// compose with client disconnects through the request context.
package httpfront

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"monge/internal/admit"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/obs"
	"monge/internal/serve"
)

// maxBodyBytes bounds a query body; matrices past this belong in the
// batch API, not a JSON front end.
const maxBodyBytes = 64 << 20

// Entry is a JSON matrix entry that decodes null as +Inf, so staircase
// arrays (blocked entries) are expressible in plain JSON.
type Entry float64

// UnmarshalJSON decodes a number, or null as +Inf.
func (e *Entry) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*e = Entry(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*e = Entry(f)
	return nil
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Kind is "row-minima", "staircase-row-minima", or "tube-maxima".
	Kind string `json:"kind"`
	// A is the input array of the row problems (null entries are +Inf,
	// for the staircase problem).
	A [][]Entry `json:"a,omitempty"`
	// D and E are the factor matrices of the tube problem.
	D [][]Entry `json:"d,omitempty"`
	E [][]Entry `json:"e,omitempty"`
	// Tenant keys the per-tenant quota bucket; Priority orders shedding
	// (<= 0 is shed first under load).
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// DeadlineMS bounds the query end to end; 0 means no deadline
	// beyond the client connection.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// QueryResponse is the POST /v1/query success body.
type QueryResponse struct {
	Idx   []int       `json:"idx,omitempty"`
	TubeJ [][]int     `json:"tube_j,omitempty"`
	TubeV [][]float64 `json:"tube_v,omitempty"`
}

// ErrorResponse is the body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Pool  serve.Stats `json:"pool"`
	Front admit.Stats `json:"front"`
}

// Server serves the JSON API over an admission front.
type Server struct {
	front *admit.Front
}

// New returns a server answering queries through front.
func New(front *admit.Front) *Server { return &Server{front: front} }

// Handler returns the API's http.Handler. Installing it also publishes
// the obs counters as the expvar "monge_obs" (visible on /debug/vars).
func (s *Server) Handler() http.Handler {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var qr QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qr); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding body: %v", err))
		return
	}
	q, err := buildQuery(&qr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx := r.Context()
	if qr.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(qr.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	res := s.front.Do(ctx, admit.Request{Query: q, Tenant: qr.Tenant, Priority: qr.Priority})
	if res.Err != nil {
		status, code := classify(res.Err)
		writeError(w, status, code, res.Err.Error())
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Idx: res.Idx, TubeJ: res.TubeJ, TubeV: res.TubeV})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Pool:  s.front.Pool().Stats(),
		Front: s.front.Stats(),
	})
}

// buildQuery validates and converts the JSON request into a pool
// query, running the sampled structural screens on the handler
// goroutine so bad inputs are rejected before admission.
func buildQuery(qr *QueryRequest) (serve.Query, error) {
	switch qr.Kind {
	case "row-minima":
		a, err := denseOf(qr.A, "a")
		if err != nil {
			return serve.Query{}, err
		}
		if err := marray.CheckMongeSampled(a); err != nil {
			return serve.Query{}, err
		}
		return serve.Query{Kind: serve.RowMinima, A: a}, nil
	case "staircase-row-minima":
		a, err := denseOf(qr.A, "a")
		if err != nil {
			return serve.Query{}, err
		}
		if err := marray.CheckStaircaseMongeSampled(a); err != nil {
			return serve.Query{}, err
		}
		return serve.Query{Kind: serve.StaircaseRowMinima, A: a}, nil
	case "tube-maxima":
		d, err := denseOf(qr.D, "d")
		if err != nil {
			return serve.Query{}, err
		}
		e, err := denseOf(qr.E, "e")
		if err != nil {
			return serve.Query{}, err
		}
		if err := marray.CheckMongeSampled(d); err != nil {
			return serve.Query{}, err
		}
		if err := marray.CheckMongeSampled(e); err != nil {
			return serve.Query{}, err
		}
		var c marray.Composite
		if err := catch(func() { c = marray.NewComposite(d, e) }); err != nil {
			return serve.Query{}, err
		}
		return serve.Query{Kind: serve.TubeMaxima, C: c}, nil
	default:
		return serve.Query{}, fmt.Errorf("unknown kind %q (want row-minima, staircase-row-minima, or tube-maxima)", qr.Kind)
	}
}

// denseOf materializes the JSON rows, rejecting empty or ragged input.
func denseOf(rows [][]Entry, name string) (marray.Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("matrix %q is empty", name)
	}
	conv := make([][]float64, len(rows))
	n := len(rows[0])
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("matrix %q is ragged: row %d has %d entries, want %d", name, i, len(r), n)
		}
		conv[i] = make([]float64, n)
		for j, e := range r {
			conv[i][j] = float64(e)
		}
	}
	var d *marray.Dense
	if err := catch(func() { d = marray.FromRows(conv) }); err != nil {
		return nil, err
	}
	return d, nil
}

// catch converts a thrown merr failure into a returned error.
func catch(f func()) (err error) {
	defer merr.Catch(&err)
	f()
	return nil
}

// classify maps a serving error to its HTTP status and short code.
func classify(err error) (int, string) {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, serve.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, merr.ErrCanceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	case errors.Is(err, merr.ErrNotMonge),
		errors.Is(err, merr.ErrNotInverseMonge),
		errors.Is(err, merr.ErrNotStaircase),
		errors.Is(err, merr.ErrDimensionMismatch):
		return http.StatusBadRequest, "bad_request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests {
		// A fail-fast rejection clears quickly; hint an immediate retry
		// window rather than a long penalty box.
		w.Header().Set("Retry-After", strconv.Itoa(1))
	}
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
