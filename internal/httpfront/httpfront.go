// Package httpfront exposes the load-disciplined serving stack over
// net/http as a small JSON API, so the library's typed serving errors
// become conventional HTTP status codes:
//
//	POST /v1/query   run one query        200 / 400 / 404 / 413 / 429 / 503 / 504
//	POST /v1/index   preprocess an index  200 / 400 / 413 / 429
//	GET  /v1/stats   pool + front stats   200
//	GET  /debug/vars expvar (monge_obs)   200
//	GET  /metrics    Prometheus text exposition of the obs counters
//
// The mapping is exact: ErrOverloaded (full queue, inflight cap, shed,
// quota) is 429 with a Retry-After hint, ErrDeadlineExceeded is 504,
// merr.ErrCanceled and serve.ErrClosed are 503, structural input errors
// (ErrNotMonge, ErrNotStaircase, ErrDimensionMismatch, bad JSON) are
// 400, a body past the size cap is 413, and a query naming an unknown
// index_id is 404. Per-query deadlines ride in the request body
// (deadline_ms) and compose with client disconnects through the request
// context.
//
// POST /v1/index preprocesses a matrix once (null entries mark staircase
// blocking) and answers {"index_id", rows, cols, bytes, build_ns}; the
// id then serves the index-backed query kinds "submax" and
// "range-row-minima" on /v1/query until the registry (capacity
// maxIndexes, evicted never — build what you serve) fills.
package httpfront

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"monge/internal/admit"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/mindex"
	"monge/internal/obs"
	"monge/internal/serve"
)

// maxBodyBytes bounds a query body; matrices past this belong in the
// batch API, not a JSON front end. A var so tests can pin the 413 path
// without building a 64 MB body.
var maxBodyBytes int64 = 64 << 20

// Entry is a JSON matrix entry that decodes null as +Inf, so staircase
// arrays (blocked entries) are expressible in plain JSON.
type Entry float64

// MarshalJSON encodes finite values as numbers and either infinity as
// null (encoding/json rejects raw Inf), so blocked answers round-trip.
func (e Entry) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(e), 0) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(e))
}

// UnmarshalJSON decodes a number, or null as +Inf.
func (e *Entry) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*e = Entry(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*e = Entry(f)
	return nil
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Kind is "row-minima", "staircase-row-minima", "tube-maxima",
	// "submax", or "range-row-minima".
	Kind string `json:"kind"`
	// A is the input array of the row problems (null entries are +Inf,
	// for the staircase problem).
	A [][]Entry `json:"a,omitempty"`
	// D and E are the factor matrices of the tube problem.
	D [][]Entry `json:"d,omitempty"`
	E [][]Entry `json:"e,omitempty"`
	// IndexID names a prebuilt index (from POST /v1/index) for the
	// index-backed kinds; R1..C2 are its inclusive query ranges (the
	// column pair is ignored by "range-row-minima").
	IndexID string `json:"index_id,omitempty"`
	R1      int    `json:"r1,omitempty"`
	R2      int    `json:"r2,omitempty"`
	C1      int    `json:"c1,omitempty"`
	C2      int    `json:"c2,omitempty"`
	// Tenant keys the per-tenant quota bucket; Priority orders shedding
	// (<= 0 is shed first under load).
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// DeadlineMS bounds the query end to end; 0 means no deadline
	// beyond the client connection.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// PosJSON is a submatrix-maximum answer. Row and Col are -1 and Val is
// null when the queried rectangle is fully blocked.
type PosJSON struct {
	Row int   `json:"row"`
	Col int   `json:"col"`
	Val Entry `json:"val"`
}

// QueryResponse is the POST /v1/query success body.
type QueryResponse struct {
	Idx   []int       `json:"idx,omitempty"`
	TubeJ [][]int     `json:"tube_j,omitempty"`
	TubeV [][]float64 `json:"tube_v,omitempty"`
	Pos   *PosJSON    `json:"pos,omitempty"`
}

// IndexRequest is the POST /v1/index body: the matrix to preprocess
// (null entries mark staircase blocking, which must be right/down
// closed) and an optional tile-cache size for the build.
type IndexRequest struct {
	A     [][]Entry `json:"a"`
	Tiles int       `json:"tiles,omitempty"`
}

// IndexResponse is the POST /v1/index success body.
type IndexResponse struct {
	IndexID string `json:"index_id"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Bytes   int64  `json:"bytes"`
	BuildNS int64  `json:"build_ns"`
}

// ErrorResponse is the body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Pool  serve.Stats `json:"pool"`
	Front admit.Stats `json:"front"`
}

// maxIndexes caps the index registry; past it POST /v1/index rejects
// with 429 until the server restarts (indexes are never evicted — a
// served index must stay answerable).
const maxIndexes = 64

// Server serves the JSON API over an admission front.
type Server struct {
	front *admit.Front

	mu      sync.Mutex
	indexes map[string]*mindex.Index
	nextID  int
}

// New returns a server answering queries through front.
func New(front *admit.Front) *Server {
	return &Server{front: front, indexes: make(map[string]*mindex.Index)}
}

// Handler returns the API's http.Handler. Installing it also publishes
// the obs counters as the expvar "monge_obs" (visible on /debug/vars).
func (s *Server) Handler() http.Handler {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/index", s.handleIndex)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// promContentType is the Prometheus text exposition format version the
// /metrics endpoint speaks.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics renders the process-wide obs counters in Prometheus
// text exposition format: one metric per counter, one sample per site
// (the site riding in a label). With no observer installed the endpoint
// answers an empty, well-typed body — scrapes succeed either way.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	o := obs.Global()
	if o == nil {
		return
	}
	writePrometheus(w, o.Snapshot())
}

// writePrometheus renders a snapshot deterministically (metrics and
// sites in sorted order) as monge_<counter>{site="<site>"} <value>
// lines under # TYPE headers. The counter names are taken from the
// snapshot's JSON tags, so new obs fields show up without touching this
// renderer; non-scalar fields (the queue-wait histogram buckets) are
// skipped — their percentile summaries are scalar and do ship.
func writePrometheus(w io.Writer, snap map[string]obs.CounterSnapshot) {
	series := make(map[string]map[string]float64)
	for site, cs := range snap {
		raw, err := json.Marshal(cs)
		if err != nil {
			continue
		}
		var fields map[string]any
		if err := json.Unmarshal(raw, &fields); err != nil {
			continue
		}
		for name, v := range fields {
			f, ok := v.(float64)
			if !ok {
				continue
			}
			if series[name] == nil {
				series[name] = make(map[string]float64)
			}
			series[name][site] = f
		}
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE monge_%s gauge\n", name)
		sites := make([]string, 0, len(series[name]))
		for site := range series[name] {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		for _, site := range sites {
			fmt.Fprintf(w, "monge_%s{site=%q} %g\n", name, site, series[name][site])
		}
	}
}

// handleIndex preprocesses one matrix into a registered index. Inputs
// containing nulls must form a right/down-closed staircase; both shapes
// run their sampled structural screen before the build.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var ir IndexRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ir); err != nil {
		writeDecodeError(w, err)
		return
	}
	a, err := indexMatrixOf(ir.A)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.mu.Lock()
	full := len(s.indexes) >= maxIndexes
	s.mu.Unlock()
	if full {
		writeError(w, http.StatusTooManyRequests, "index_capacity",
			fmt.Sprintf("index registry is full (%d indexes)", maxIndexes))
		return
	}
	var ix *mindex.Index
	start := time.Now()
	if err := catch(func() { ix = mindex.Build(a, mindex.Opts{Tiles: ir.Tiles}) }); err != nil {
		status, code := classify(err)
		writeError(w, status, code, err.Error())
		return
	}
	buildNS := time.Since(start).Nanoseconds()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("ix-%d", s.nextID)
	s.indexes[id] = ix
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, IndexResponse{
		IndexID: id, Rows: ix.Rows(), Cols: ix.Cols(), Bytes: ix.Bytes(), BuildNS: buildNS,
	})
}

// lookupIndex resolves an index_id from the registry.
func (s *Server) lookupIndex(id string) (*mindex.Index, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok := s.indexes[id]
	return ix, ok
}

// indexMatrixOf converts the JSON rows for an index build: plain Monge
// matrices pass the sampled Monge screen; matrices with null (+Inf)
// entries must be exactly right/down-closed staircases and pass the
// sampled staircase screen, and come out carrying the Staircase
// interface so the index builds the staircase solvers.
func indexMatrixOf(rows [][]Entry) (marray.Matrix, error) {
	a, err := denseOf(rows, "a")
	if err != nil {
		return nil, err
	}
	m, n := a.Rows(), a.Cols()
	bound := make([]int, m)
	blocked := false
	prev := n
	for i := 0; i < m; i++ {
		b := 0
		for b < n && !math.IsInf(a.At(i, b), 1) {
			b++
		}
		for j := b; j < n; j++ {
			if !math.IsInf(a.At(i, j), 1) {
				return nil, fmt.Errorf("matrix \"a\": row %d has a finite entry at column %d after a null at column %d; staircase blocking must be right-closed", i, j, b)
			}
		}
		if b > prev {
			return nil, fmt.Errorf("matrix \"a\": row %d has %d finite entries, more than row %d's %d; staircase blocking must be down-closed", i, b, i-1, prev)
		}
		prev = b
		bound[i] = b
		if b < n {
			blocked = true
		}
	}
	if !blocked {
		if err := marray.CheckMongeSampled(a); err != nil {
			return nil, err
		}
		return a, nil
	}
	st := marray.StairFunc{M: m, N: n, F: a.At, Bound: func(i int) int { return bound[i] }}
	if err := marray.CheckStaircaseMongeSampled(st); err != nil {
		return nil, err
	}
	return st, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var qr QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&qr); err != nil {
		writeDecodeError(w, err)
		return
	}
	q, status, code, err := s.buildQuery(&qr)
	if err != nil {
		writeError(w, status, code, err.Error())
		return
	}
	ctx := r.Context()
	if qr.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(qr.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	res := s.front.Do(ctx, admit.Request{Query: q, Tenant: qr.Tenant, Priority: qr.Priority})
	if res.Err != nil {
		status, code := classify(res.Err)
		writeError(w, status, code, res.Err.Error())
		return
	}
	resp := QueryResponse{Idx: res.Idx, TubeJ: res.TubeJ, TubeV: res.TubeV}
	if q.Kind == serve.SubmatrixMax {
		resp.Pos = &PosJSON{Row: res.Pos.Row, Col: res.Pos.Col, Val: Entry(res.Pos.Val)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeDecodeError maps a request-body decode failure: a body past the
// MaxBytesReader cap is 413, anything else malformed is 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding body: %v", err))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Pool:  s.front.Pool().Stats(),
		Front: s.front.Stats(),
	})
}

// buildQuery validates and converts the JSON request into a pool
// query, running the sampled structural screens (and, for the
// index-backed kinds, the registry lookup and range checks) on the
// handler goroutine so bad inputs are rejected before admission. On
// failure it returns the HTTP status and short code alongside the
// error: 404/"not_found" for an unknown index_id, 400/"bad_request"
// otherwise.
func (s *Server) buildQuery(qr *QueryRequest) (serve.Query, int, string, error) {
	bad := func(err error) (serve.Query, int, string, error) {
		return serve.Query{}, http.StatusBadRequest, "bad_request", err
	}
	switch qr.Kind {
	case "row-minima":
		a, err := denseOf(qr.A, "a")
		if err != nil {
			return bad(err)
		}
		if err := marray.CheckMongeSampled(a); err != nil {
			return bad(err)
		}
		return serve.Query{Kind: serve.RowMinima, A: a}, 0, "", nil
	case "staircase-row-minima":
		a, err := denseOf(qr.A, "a")
		if err != nil {
			return bad(err)
		}
		if err := marray.CheckStaircaseMongeSampled(a); err != nil {
			return bad(err)
		}
		return serve.Query{Kind: serve.StaircaseRowMinima, A: a}, 0, "", nil
	case "tube-maxima":
		d, err := denseOf(qr.D, "d")
		if err != nil {
			return bad(err)
		}
		e, err := denseOf(qr.E, "e")
		if err != nil {
			return bad(err)
		}
		if err := marray.CheckMongeSampled(d); err != nil {
			return bad(err)
		}
		if err := marray.CheckMongeSampled(e); err != nil {
			return bad(err)
		}
		var c marray.Composite
		if err := catch(func() { c = marray.NewComposite(d, e) }); err != nil {
			return bad(err)
		}
		return serve.Query{Kind: serve.TubeMaxima, C: c}, 0, "", nil
	case "submax", "range-row-minima":
		ix, ok := s.lookupIndex(qr.IndexID)
		if !ok {
			return serve.Query{}, http.StatusNotFound, "not_found",
				fmt.Errorf("unknown index_id %q", qr.IndexID)
		}
		if qr.Kind == "submax" {
			if err := ix.CheckSubmatrix(qr.R1, qr.R2, qr.C1, qr.C2); err != nil {
				return bad(err)
			}
			return serve.Query{Kind: serve.SubmatrixMax, Index: ix,
				R1: qr.R1, R2: qr.R2, C1: qr.C1, C2: qr.C2}, 0, "", nil
		}
		if err := ix.CheckRowRange(qr.R1, qr.R2); err != nil {
			return bad(err)
		}
		return serve.Query{Kind: serve.RangeRowMinima, Index: ix, R1: qr.R1, R2: qr.R2}, 0, "", nil
	default:
		return bad(fmt.Errorf("unknown kind %q (want row-minima, staircase-row-minima, tube-maxima, submax, or range-row-minima)", qr.Kind))
	}
}

// denseOf materializes the JSON rows, rejecting empty or ragged input.
func denseOf(rows [][]Entry, name string) (marray.Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("matrix %q is empty", name)
	}
	conv := make([][]float64, len(rows))
	n := len(rows[0])
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("matrix %q is ragged: row %d has %d entries, want %d", name, i, len(r), n)
		}
		conv[i] = make([]float64, n)
		for j, e := range r {
			conv[i][j] = float64(e)
		}
	}
	var d *marray.Dense
	if err := catch(func() { d = marray.FromRows(conv) }); err != nil {
		return nil, err
	}
	return d, nil
}

// catch converts a thrown merr failure into a returned error.
func catch(f func()) (err error) {
	defer merr.Catch(&err)
	f()
	return nil
}

// classify maps a serving error to its HTTP status and short code.
func classify(err error) (int, string) {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, serve.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, merr.ErrCanceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	case errors.Is(err, merr.ErrNotMonge),
		errors.Is(err, merr.ErrNotInverseMonge),
		errors.Is(err, merr.ErrNotStaircase),
		errors.Is(err, merr.ErrDimensionMismatch):
		return http.StatusBadRequest, "bad_request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests {
		// A fail-fast rejection clears quickly; hint an immediate retry
		// window rather than a long penalty box.
		w.Header().Set("Retry-After", strconv.Itoa(1))
	}
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
