package httpfront

// Tests for the index endpoints and the error paths that previously
// lacked pins: malformed JSON bodies, oversized requests, and query
// kind dispatch — each asserting the exact status code and short error
// code of the typed mapping.

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"monge/internal/marray"
	"monge/internal/mindex"
)

// entriesOf converts a matrix for a JSON body; Entry's marshaller turns
// +Inf (blocked) entries into null tokens.
func entriesOf(a marray.Matrix) [][]Entry {
	out := make([][]Entry, a.Rows())
	for i := range out {
		out[i] = make([]Entry, a.Cols())
		for j := range out[i] {
			out[i][j] = Entry(a.At(i, j))
		}
	}
	return out
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// errCode decodes the short code of a non-200 body.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decoding error body %q: %v", body, err)
	}
	return er.Code
}

func buildIndexHTTP(t *testing.T, ts *httptest.Server, a marray.Matrix) IndexResponse {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/index", map[string]any{"a": entriesOf(a)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/index: status %d, body %s", resp.StatusCode, body)
	}
	var ir IndexResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	return ir
}

// TestIndexBuildAndSubmax pins the full index round trip: preprocess
// once over HTTP, then answer submatrix-maximum queries index-exact
// against the brute oracle.
func TestIndexBuildAndSubmax(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(21))
	a := marray.RandomMongeInt(rng, 24, 20, 4)
	ir := buildIndexHTTP(t, ts, a)
	if ir.Rows != 24 || ir.Cols != 20 || ir.Bytes <= 0 || ir.IndexID == "" {
		t.Fatalf("index response %+v", ir)
	}
	for k := 0; k < 20; k++ {
		r1, c1 := rng.Intn(24), rng.Intn(20)
		r2, c2 := r1+rng.Intn(24-r1), c1+rng.Intn(20-c1)
		want := mindex.SubmatrixMaxBrute(a, r1, r2, c1, c2)
		resp, body := postJSON(t, ts, "/v1/query", map[string]any{
			"kind": "submax", "index_id": ir.IndexID, "r1": r1, "r2": r2, "c1": c1, "c2": c2,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submax: status %d, body %s", resp.StatusCode, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Pos == nil || qr.Pos.Row != want.Row || qr.Pos.Col != want.Col || float64(qr.Pos.Val) != want.Val {
			t.Fatalf("submax [%d:%d,%d:%d]: got %+v, want %+v", r1, r2, c1, c2, qr.Pos, want)
		}
	}
}

// TestIndexRangeRowMinima pins the row-range kind against a scan
// oracle, over a staircase input sent with null tokens; fully blocked
// rows answer -1.
func TestIndexRangeRowMinima(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(22))
	s := marray.RandomStaircaseMonge(rng, 12, 10)
	ir := buildIndexHTTP(t, ts, s)
	resp, body := postJSON(t, ts, "/v1/query", map[string]any{
		"kind": "range-row-minima", "index_id": ir.IndexID, "r1": 2, "r2": 9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range-row-minima: status %d, body %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	for r := 2; r <= 9; r++ {
		best, bj := math.Inf(1), -1
		for j := 0; j < 10; j++ {
			if v := s.At(r, j); v < best {
				best, bj = v, j
			}
		}
		if qr.Idx[r-2] != bj {
			t.Fatalf("row %d: got %d, want %d", r, qr.Idx[r-2], bj)
		}
	}
}

// TestIndexErrorPaths pins the typed mapping around the index
// endpoints: unknown ids are 404, malformed rectangles and non-closed
// staircase blocking are 400.
func TestIndexErrorPaths(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	rng := rand.New(rand.NewSource(23))
	ir := buildIndexHTTP(t, ts, marray.RandomMonge(rng, 8, 8))

	resp, body := postJSON(t, ts, "/v1/query", map[string]any{
		"kind": "submax", "index_id": "ix-999", "r1": 0, "r2": 0, "c1": 0, "c2": 0,
	})
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "not_found" {
		t.Fatalf("unknown index: status %d code %q", resp.StatusCode, errCode(t, body))
	}

	for name, q := range map[string]map[string]any{
		"bad-rect":     {"kind": "submax", "index_id": ir.IndexID, "r1": 5, "r2": 2, "c1": 0, "c2": 7},
		"col-overflow": {"kind": "submax", "index_id": ir.IndexID, "r1": 0, "r2": 7, "c1": 0, "c2": 8},
		"bad-rows":     {"kind": "range-row-minima", "index_id": ir.IndexID, "r1": -1, "r2": 3},
	} {
		resp, body := postJSON(t, ts, "/v1/query", q)
		if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != "bad_request" {
			t.Fatalf("%s: status %d code %q", name, resp.StatusCode, errCode(t, body))
		}
	}

	// Blocking that is not right-closed (finite after null) is rejected
	// before any build work.
	resp, body = postJSON(t, ts, "/v1/index", map[string]any{
		"a": [][]Entry{{1, Entry(math.Inf(1)), 2}, {0, 1, 2}},
	})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != "bad_request" {
		t.Fatalf("non-right-closed: status %d code %q", resp.StatusCode, errCode(t, body))
	}
	// Blocking that widens downward is not down-closed.
	resp, body = postJSON(t, ts, "/v1/index", map[string]any{
		"a": [][]Entry{{1, Entry(math.Inf(1))}, {0, 1}},
	})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != "bad_request" {
		t.Fatalf("non-down-closed: status %d code %q", resp.StatusCode, errCode(t, body))
	}
}

// TestIndexRegistryCapacity pins the registry bound: build maxIndexes
// indexes, then the next POST /v1/index is 429 with its own code while
// queries against existing ids keep answering.
func TestIndexRegistryCapacity(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	tiny := marray.FromRows([][]float64{{1, 2}, {0, 1}})
	var last IndexResponse
	for i := 0; i < maxIndexes; i++ {
		last = buildIndexHTTP(t, ts, tiny)
	}
	resp, body := postJSON(t, ts, "/v1/index", map[string]any{"a": entriesOf(tiny)})
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, body) != "index_capacity" {
		t.Fatalf("over capacity: status %d code %q", resp.StatusCode, errCode(t, body))
	}
	resp, _ = postJSON(t, ts, "/v1/query", map[string]any{
		"kind": "submax", "index_id": last.IndexID, "r1": 0, "r2": 1, "c1": 0, "c2": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("existing index after capacity: status %d", resp.StatusCode)
	}
}

// TestQueryMalformedJSON pins the decode error path: a syntactically
// broken body is 400/"bad_request" on both POST endpoints.
func TestQueryMalformedJSON(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	for _, path := range []string{"/v1/query", "/v1/index"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(`{"kind": "row-minima", "a": [[1,`))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || errCode(t, out.Bytes()) != "bad_request" {
			t.Fatalf("%s: status %d code %q", path, resp.StatusCode, errCode(t, out.Bytes()))
		}
	}
}

// TestQueryOversizedBody pins the 413 path: a body past maxBodyBytes is
// rejected with "body_too_large" before reaching any kernel.
func TestQueryOversizedBody(t *testing.T) {
	old := maxBodyBytes
	maxBodyBytes = 256
	t.Cleanup(func() { maxBodyBytes = old })
	ts, _, _ := newTestServer(t, nil)
	big := `{"kind":"row-minima","a":[[` + strings.Repeat("1,", 400) + `1]]}`
	for _, path := range []string{"/v1/query", "/v1/index"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge || errCode(t, out.Bytes()) != "body_too_large" {
			t.Fatalf("%s: status %d code %q", path, resp.StatusCode, errCode(t, out.Bytes()))
		}
	}
}

// TestQueryKindDispatch pins dispatch: every known kind routes (missing
// payloads fail with 400, not 500), and an unknown kind is
// 400/"bad_request" naming the accepted kinds.
func TestQueryKindDispatch(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	for _, kind := range []string{"row-minima", "staircase-row-minima", "tube-maxima", "submax", "range-row-minima"} {
		resp, body := postJSON(t, ts, "/v1/query", map[string]any{"kind": kind})
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("kind %q with empty payload: status %d, body %s", kind, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts, "/v1/query", map[string]any{"kind": "nope"})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != "bad_request" {
		t.Fatalf("unknown kind: status %d code %q", resp.StatusCode, errCode(t, body))
	}
	if !strings.Contains(string(body), "submax") {
		t.Fatalf("unknown-kind error must name the accepted kinds, body %s", body)
	}
}
