package hcmonge

import (
	"math/rand"
	"testing"
	"testing/quick"

	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/smawk"
)

// stairInputs converts a dense staircase-Monge matrix into the distributed
// model: v[i] = i with boundary, w[j] = j, f reads the matrix.
func stairInputs(a marray.Matrix) ([]int, []int, []int, EntryFunc[int, int]) {
	m, n := a.Rows(), a.Cols()
	v := make([]int, m)
	bound := make([]int, m)
	w := make([]int, n)
	for i := range v {
		v[i] = i
		bound[i] = marray.BoundaryOf(a, i)
	}
	for j := range w {
		w[j] = j
	}
	return v, bound, w, func(i, j int) float64 { return a.At(i, j) }
}

func TestStaircaseMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 60; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomStaircaseMonge(rng, m, n)
		want := smawk.StaircaseRowMinimaBrute(a)
		v, bound, w, f := stairInputs(a)
		got, _ := StaircaseRowMinima(hc.Cube, v, bound, w, f)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestStaircaseAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		a := marray.RandomStaircaseMonge(rng, m, n)
		want := smawk.StaircaseRowMinimaBrute(a)
		v, bound, w, f := stairInputs(a)
		for _, kind := range []hc.Kind{hc.Cube, hc.CCC, hc.Shuffle} {
			got, _ := StaircaseRowMinima(kind, v, bound, w, f)
			if !eqInts(got, want) {
				t.Fatalf("trial %d kind %v: got %v want %v", trial, kind, got, want)
			}
		}
	}
}

func TestStaircaseLargerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	shapes := [][2]int{{100, 100}, {150, 20}, {20, 150}, {1, 30}, {30, 1}, {64, 64}}
	for _, sh := range shapes {
		for trial := 0; trial < 3; trial++ {
			a := marray.RandomStaircaseMonge(rng, sh[0], sh[1])
			want := smawk.StaircaseRowMinimaBrute(a)
			v, bound, w, f := stairInputs(a)
			got, _ := StaircaseRowMinima(hc.Cube, v, bound, w, f)
			if !eqInts(got, want) {
				t.Fatalf("shape %v trial %d mismatch", sh, trial)
			}
		}
	}
}

func TestStaircaseAllBlocked(t *testing.T) {
	v := []int{0, 1, 2}
	bound := []int{0, 0, 0}
	w := []int{0, 1}
	got, _ := StaircaseRowMinima(hc.Cube, v, bound, w, func(i, j int) float64 { return 0 })
	for _, g := range got {
		if g != -1 {
			t.Fatalf("all blocked must give -1: %v", got)
		}
	}
}

func TestStaircasePlainMongeSpecialCase(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		a := marray.RandomMonge(rng, m, n)
		v, bound, w, f := stairInputs(a)
		got, _ := StaircaseRowMinima(hc.Cube, v, bound, w, f)
		if !eqInts(got, smawk.RowMinima(a)) {
			t.Fatalf("trial %d: plain Monge mismatch", trial)
		}
	}
}

func TestTheorem33TimeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	timeFor := func(n int) int64 {
		a := marray.RandomStaircaseMonge(rng, n, n)
		v, bound, w, f := stairInputs(a)
		_, mach := StaircaseRowMinima(hc.Cube, v, bound, w, f)
		return mach.Time()
	}
	t128, t1024 := timeFor(128), timeFor(1024)
	if t1024 > 4*t128 {
		t.Fatalf("staircase hypercube time grows too fast: %d -> %d", t128, t1024)
	}
}

func TestQuickStaircaseHypercube(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		a := marray.RandomStaircaseMonge(rng, m, n)
		v, bound, w, f := stairInputs(a)
		got, _ := StaircaseRowMinima(hc.Cube, v, bound, w, f)
		return eqInts(got, smawk.StaircaseRowMinimaBrute(a))
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTubeMaximaHypercube(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 25; trial++ {
		p, q, r := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		c := marray.RandomComposite(rng, p, q, r)
		wantJ, wantV := smawk.TubeMaxima(c)
		gotJ, gotV, _ := TubeMaxima(hc.Cube, c)
		for i := 0; i < p; i++ {
			if !eqInts(gotJ[i], wantJ[i]) {
				t.Fatalf("trial %d slice %d: got %v want %v", trial, i, gotJ[i], wantJ[i])
			}
			for k := 0; k < r; k++ {
				if gotV[i][k] != wantV[i][k] {
					t.Fatalf("value mismatch at (%d,%d)", i, k)
				}
			}
		}
	}
}

func TestTubeMinimaHypercube(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 20; trial++ {
		p, q, r := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		c := marray.NewComposite(
			marray.RandomInverseMonge(rng, p, q),
			marray.RandomInverseMonge(rng, q, r),
		)
		wantJ, _ := smawk.TubeMinima(c)
		gotJ, _, _ := TubeMinima(hc.Cube, c)
		for i := 0; i < p; i++ {
			if !eqInts(gotJ[i], wantJ[i]) {
				t.Fatalf("trial %d slice %d: got %v want %v", trial, i, gotJ[i], wantJ[i])
			}
		}
	}
}

func TestTheorem34TimeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	timeFor := func(n int) int64 {
		c := marray.RandomComposite(rng, n, n, n)
		_, _, mach := TubeMaxima(hc.Cube, c)
		return mach.Time()
	}
	t32, t128 := timeFor(32), timeFor(128)
	if t128 > 3*t32 {
		t.Fatalf("tube hypercube time grows too fast: %d -> %d", t32, t128)
	}
}
