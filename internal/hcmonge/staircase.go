package hcmonge

import (
	"math"

	hc "monge/internal/hypercube"
	"monge/internal/merr"
)

// Theorem 3.3: row minima of staircase-Monge arrays on the hypercube (and,
// through the network adapters, on cube-connected cycles and
// shuffle-exchange). The paper omits the proof entirely; this
// implementation follows the same decomposition as the PRAM algorithm of
// Theorem 2.3 -- sample rows, recurse, and classify the remaining rows'
// candidates into Monge rectangles, staircase tails, and reopened
// ("crossed") staircase windows -- with the data movement realised by the
// hypercube primitives:
//
//   - sampled rows are concentrated by an isotone route;
//   - Monge-rectangle jobs have column windows that ascend across gaps, so
//     one ascending monotone read stages their inputs;
//   - staircase-tail jobs have windows that DESCEND across gaps (each
//     starts at the next sampled row's boundary); allocating their blocks
//     in reverse gap order makes the column read ascending and the row
//     read globally nonincreasing, which MonotoneReadDec handles, with an
//     in-block reversal (Reverse + shift) restoring row order;
//   - crossed jobs share their left edge, so no single allocation order
//     makes their reads monotone; their staging is relabelled directly and
//     charged the cost of one concentrate/distribute round trip (3d+3
//     steps), a documented simulation shortcut (EXPERIMENTS.md).

// stairV carries a row's input value and its blocked-column boundary,
// local to the current column window.
type stairV[V any] struct {
	v     V
	bound int
}

type stairProblem[V, W any] struct {
	f func(V, W) float64
}

// stairJob describes one feasible-region search.
type stairJob struct {
	rowLo, rk  int // global row range [rowLo, rowLo+rk)
	jLo, width int // column window, local to the current problem
	monge      bool
	rev        bool // staged with descending row order (tail jobs)
	base, size int  // staging block, filled by stageAscending
}

// StaircaseRowMinima computes, for each row of the m x n staircase-Monge
// array a[i,j] = f(v[i], w[j]) for j < bound[i] (+Inf beyond), the column
// of its leftmost finite minimum, or -1 for fully blocked rows. bound must
// be nonincreasing. Runs on a freshly sized machine of the given kind and
// returns it for counter inspection (Theorem 3.3 / Table 1.2, "hypercube,
// etc." row).
func StaircaseRowMinima[V, W any](kind hc.Kind, v []V, bound []int, w []W, f EntryFunc[V, W]) ([]int, *hc.Machine) {
	mach := MachineFor(kind, len(v), len(w))
	return StaircaseRowMinimaOn(mach, v, bound, w, f), mach
}

// StaircaseRowMinimaOn is StaircaseRowMinima on a caller-provided machine
// (at least MachineFor-sized; merr.ErrMachineTooSmall is thrown
// otherwise), the form that lets the caller attach a context or fault
// injector before the run.
func StaircaseRowMinimaOn[V, W any](mach *hc.Machine, v []V, bound []int, w []W, f EntryFunc[V, W]) []int {
	m, n := len(v), len(w)
	checkDim(mach, m, n)
	defer countSearch(mach, "staircase")()
	out := make([]int, m)
	if m == 0 || n == 0 {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	vvec := hc.NewVec(mach, func(p int) stairV[V] {
		if p < m {
			b := bound[p]
			if b > n {
				b = n
			}
			if b < 0 {
				b = 0
			}
			return stairV[V]{v: v[p], bound: b}
		}
		return stairV[V]{}
	})
	wvec := hc.NewVec(mach, func(p int) wcell[W] {
		if p < n {
			return wcell[W]{w: w[p], col: p}
		}
		return wcell[W]{col: -1}
	})
	pr := &stairProblem[V, W]{f: f}
	r := pr.solve(mach, m, n, vvec, wvec)
	snap := r.Snapshot()
	for i := 0; i < m; i++ {
		out[i] = snap[i].col
	}
	return out
}

func blockedRes() res { return res{val: math.Inf(1), col: -1, loc: math.MaxInt32} }

func pickStair(a, b res) res {
	if b.val < a.val {
		return b
	}
	if a.val < b.val {
		return a
	}
	if b.loc < a.loc {
		return b
	}
	return a
}

// clampBound rebases a row boundary into a [jLo, jLo+width) window.
func clampBound(bound, jLo, width int) int {
	b := bound - jLo
	if b < 0 {
		b = 0
	}
	if b > width {
		b = width
	}
	return b
}

// solve computes window-local minima of the k x nc staircase array on
// mach. Invariant: vvec cell i (i < k) holds row i's input and boundary
// (local to this window); wvec cell j (j < nc) holds column j. Results
// (col == -1 if the row is blocked in the window) land at cells 0..k-1.
func (pr *stairProblem[V, W]) solve(mach *hc.Machine, k, nc int, vvec *hc.Vec[stairV[V]], wvec *hc.Vec[wcell[W]]) *hc.Vec[res] {
	if k == 0 || nc == 0 {
		return hc.NewVec(mach, func(int) res { return blockedRes() })
	}
	if k <= 2 || nc <= 4 {
		return pr.base(mach, k, nc, vvec, wvec)
	}

	s := nextPow2(isqrt(k))
	if s < 2 {
		s = 2
	}
	u := k / s

	// Concentrate and solve the sampled rows (recursively, same window).
	svOpt := hc.Send(mach,
		func(p int) bool { return p < u*s && (p+1)%s == 0 },
		func(p int) stairV[V] { return vvec.Get(p) },
		func(p int) int { return (p+1)/s - 1 },
	)
	sv := hc.NewVec(mach, func(p int) stairV[V] {
		if o := svOpt.Get(p); o.Ok {
			return o.Val
		}
		return stairV[V]{}
	})
	sres := pr.solve(mach, u, nc, sv, wvec)
	sSnap := sres.Snapshot()[:u]
	svSnap := sv.Snapshot()[:u]

	// Classification (one charged local step, as in the PRAM version).
	mach.Local(1, func(int) {})
	vSnap := vvec.Snapshot()[:k]

	out := make([]res, k)
	for i := range out {
		out[i] = blockedRes()
	}
	for g := 0; g < u; g++ {
		out[(g+1)*s-1] = sSnap[g]
	}

	var mongeJobs, tailJobs, crossJobs []stairJob
	prevRow := -1
	for g := 0; g <= u; g++ {
		rowHi := k
		lb := 0
		var haveBelow bool
		var cq, effq int
		if g > 0 && sSnap[g-1].col >= 0 {
			lb = sSnap[g-1].loc
		}
		if g < u {
			rowHi = (g+1)*s - 1
			if sSnap[g].col >= 0 {
				haveBelow = true
				cq = sSnap[g].loc
				effq = minInt(svSnap[g].bound, nc)
			}
		}
		// The tail region beyond the lower sampled row's boundary can be
		// clipped at the UPPER sampled row's boundary (gap rows cannot
		// extend past it, boundaries being nonincreasing); the clipped
		// windows tile disjointly in reverse gap order, which keeps the
		// staging reads monotone.
		prevEff := nc
		if g > 0 {
			prevEff = minInt(svSnap[g-1].bound, nc)
		}
		lo := prevRow + 1
		prevRow = rowHi
		if lo >= rowHi {
			continue
		}
		split := lo
		for split < rowHi && minInt(vSnap[split].bound, nc) > lb {
			split++
		}
		nClean, nCross := split-lo, rowHi-split
		if haveBelow {
			if nClean > 0 && lb <= cq {
				mongeJobs = append(mongeJobs, stairJob{rowLo: lo, rk: nClean, jLo: lb, width: cq - lb + 1, monge: true})
			}
			if effq < prevEff {
				tailJobs = append(tailJobs, stairJob{rowLo: lo, rk: rowHi - lo, jLo: effq, width: prevEff - effq})
			}
			if nCross > 0 {
				crossJobs = append(crossJobs, stairJob{rowLo: split, rk: nCross, jLo: 0, width: minInt(cq+1, nc)})
			}
		} else {
			if nClean > 0 {
				crossJobs = append(crossJobs, stairJob{rowLo: lo, rk: nClean, jLo: lb, width: nc - lb})
			}
			if nCross > 0 {
				crossJobs = append(crossJobs, stairJob{rowLo: split, rk: nCross, jLo: 0, width: nc})
			}
		}
	}

	offer := func(jb stairJob, sub []res) {
		for t := 0; t < jb.rk; t++ {
			if sub[t].col >= 0 && pickStair(sub[t], out[jb.rowLo+t]) == sub[t] {
				out[jb.rowLo+t] = sub[t]
			}
		}
	}

	if len(mongeJobs) > 0 {
		// The windows of the Monge rectangles follow the sampled minima,
		// which in a staircase array are NOT monotone (the "bracketed"
		// minima of Figure 2.2); the paper's ANSV-based allocation handles
		// this on the PRAM, and here the staging is relabelled with a
		// charged concentrate/distribute round trip.
		mach.Local(3*mach.Dim()+3, func(int) {})
		results := make([][]res, len(mongeJobs))
		dims := make([]int, len(mongeJobs))
		for i, jb := range mongeJobs {
			dims[i] = dimFor(jb.rk, jb.width)
		}
		mach.ParallelDo(dims, func(i int, sub *hc.Machine) {
			jb := mongeJobs[i]
			results[i] = pr.runOneJob(sub, jb,
				func(q int) stairV[V] { return vSnap[jb.rowLo+q] },
				func(q int) wcell[W] { return wvec.Get(jb.jLo + q) },
			)
		})
		for i, jb := range mongeJobs {
			offer(jb, results[i])
		}
	}
	if len(tailJobs) > 0 {
		// Reverse gap order makes the column windows ascend; rows are
		// staged in descending order and restored inside each block.
		rev := make([]stairJob, len(tailJobs))
		for i := range tailJobs {
			rev[i] = tailJobs[len(tailJobs)-1-i]
			rev[i].rev = true
		}
		vF, wF := pr.stageAscending(mach, rev, vvec, wvec, k, nc)
		pr.runJobs(mach, rev, vF, wF, offer)
	}
	if len(crossJobs) > 0 {
		// Charged relabel (see package comment).
		mach.Local(3*mach.Dim()+3, func(int) {})
		results := make([][]res, len(crossJobs))
		dims := make([]int, len(crossJobs))
		for i, jb := range crossJobs {
			dims[i] = dimFor(jb.rk, jb.width)
		}
		mach.ParallelDo(dims, func(i int, sub *hc.Machine) {
			jb := crossJobs[i]
			results[i] = pr.runOneJob(sub, jb,
				func(q int) stairV[V] { return vSnap[jb.rowLo+q] },
				func(q int) wcell[W] { return wvec.Get(jb.jLo + q) },
			)
		})
		for i, jb := range crossJobs {
			offer(jb, results[i])
		}
	}

	return hc.NewVec(mach, func(p int) res {
		if p < k {
			return out[p]
		}
		return blockedRes()
	})
}

// stageAscending packs each job's inputs into consecutive blocks and
// fetches them with monotone reads. The caller orders jobs so the column
// windows ascend; rows ascend too unless the jobs are marked rev, in which
// case rows are staged in globally nonincreasing order (descending across
// blocks, descending within each block) and read via MonotoneReadDec.
func (pr *stairProblem[V, W]) stageAscending(mach *hc.Machine, jobs []stairJob, vvec *hc.Vec[stairV[V]], wvec *hc.Vec[wcell[W]], k, nc int) (vF *hc.Vec[stairV[V]], wF *hc.Vec[wcell[W]]) {
	off := 0
	for i := range jobs {
		jobs[i].base = off
		jobs[i].size = maxInt(jobs[i].rk, jobs[i].width)
		off += jobs[i].size
	}
	if off > mach.Size() {
		merr.Throwf(merr.ErrMachineTooSmall,
			"hcmonge: staircase staging needs %d processors, have %d", off, mach.Size())
	}
	// Offsets are a prefix scan over the job sizes; charge it.
	scratch := hc.NewVec(mach, func(p int) int {
		if p < len(jobs) {
			return jobs[p].size
		}
		return 0
	})
	hc.Scan(mach, scratch, func(a, b int) int { return a + b })

	// Descriptor spread: monotone route to block bases + segmented copy.
	descOpt := hc.Send(mach,
		func(p int) bool { return p < len(jobs) },
		func(p int) stairJob { return jobs[p] },
		func(p int) int { return jobs[p].base },
	)
	desc := hc.NewVec(mach, func(p int) hc.Opt[stairJob] { return descOpt.Get(p) })
	heads := hc.NewVec(mach, func(p int) bool { return descOpt.Get(p).Ok })
	hc.SegScan(mach, desc, heads, func(a, b hc.Opt[stairJob]) hc.Opt[stairJob] {
		if b.Ok {
			return b
		}
		return a
	})
	mach.Local(1, func(p int) {
		if d := desc.Get(p); d.Ok && p-d.Val.base >= d.Val.size {
			desc.Set(p, hc.Opt[stairJob]{})
		}
	})

	// Column fetch (ascending windows).
	idxW := hc.NewVec(mach, func(p int) int {
		if d := desc.Get(p); d.Ok {
			return d.Val.jLo + minInt(p-d.Val.base, d.Val.width-1)
		}
		return 0
	})
	hc.Scan(mach, idxW, maxInt)
	wF = hc.MonotoneRead(mach, wvec, idxW)

	// Row fetch.
	reversed := len(jobs) > 0 && jobs[0].rev
	if !reversed {
		idxV := hc.NewVec(mach, func(p int) int {
			if d := desc.Get(p); d.Ok {
				return d.Val.rowLo + minInt(p-d.Val.base, d.Val.rk-1)
			}
			return 0
		})
		hc.Scan(mach, idxV, maxInt)
		vF = hc.MonotoneRead(mach, vvec, idxV)
	} else {
		idxV := hc.NewVec(mach, func(p int) int {
			if d := desc.Get(p); d.Ok {
				return d.Val.rowLo + d.Val.rk - 1 - minInt(p-d.Val.base, d.Val.rk-1)
			}
			return k - 1
		})
		hc.Scan(mach, idxV, minInt)
		vF = hc.MonotoneReadDec(mach, vvec, idxV)
	}
	return vF, wF
}

// runJobs launches one sub-machine per job, restoring staged row order for
// rev jobs, and merges the results.
func (pr *stairProblem[V, W]) runJobs(mach *hc.Machine, jobs []stairJob, vF *hc.Vec[stairV[V]], wF *hc.Vec[wcell[W]], offer func(stairJob, []res)) {
	results := make([][]res, len(jobs))
	dims := make([]int, len(jobs))
	for i, jb := range jobs {
		dims[i] = dimFor(jb.rk, jb.width)
	}
	mach.ParallelDo(dims, func(i int, sub *hc.Machine) {
		jb := jobs[i]
		getV := func(q int) stairV[V] { return vF.Get(jb.base + q) }
		if jb.rev {
			// Staged rows are descending; reverse within the sub-machine
			// (d exchanges) and shift down (a monotone route).
			raw := hc.NewVec(sub, func(q int) stairV[V] {
				if q < jb.rk {
					return vF.Get(jb.base + q)
				}
				return stairV[V]{}
			})
			rv := hc.Reverse(sub, raw)
			shift := sub.Size() - jb.rk
			fixedOpt := hc.Send(sub,
				func(p int) bool { return p >= shift },
				func(p int) stairV[V] { return rv.Get(p) },
				func(p int) int { return p - shift },
			)
			getV = func(q int) stairV[V] {
				if o := fixedOpt.Get(q); o.Ok {
					return o.Val
				}
				return stairV[V]{}
			}
		}
		results[i] = pr.runOneJob(sub, jb, getV,
			func(q int) wcell[W] { return wF.Get(jb.base + q) },
		)
	})
	for i, jb := range jobs {
		offer(jb, results[i])
	}
}

// runOneJob executes one feasible-region search on its sub-machine: plain
// Monge recursion for rectangle jobs, staircase recursion otherwise.
// getV/getW supply the staged inputs by local index; boundaries are
// rebased into the job's window. Results come back in the PARENT's column
// space.
func (pr *stairProblem[V, W]) runOneJob(sub *hc.Machine, jb stairJob, getV func(int) stairV[V], getW func(int) wcell[W]) []res {
	lw := hc.NewVec(sub, func(q int) wcell[W] {
		if q < jb.width {
			return getW(q)
		}
		return wcell[W]{col: -1}
	})
	var snap []res
	if jb.monge {
		plain := &problem[stairV[V], W]{f: func(vc stairV[V], wj W) float64 {
			return pr.f(vc.v, wj)
		}}
		lv := hc.NewVec(sub, func(q int) stairV[V] {
			if q < jb.rk {
				return getV(q)
			}
			return stairV[V]{}
		})
		snap = plain.solve(sub, jb.rk, jb.width, lv, lw).Snapshot()
	} else {
		lv := hc.NewVec(sub, func(q int) stairV[V] {
			if q < jb.rk {
				vc := getV(q)
				vc.bound = clampBound(vc.bound, jb.jLo, jb.width)
				return vc
			}
			return stairV[V]{}
		})
		snap = pr.solve(sub, jb.rk, jb.width, lv, lw).Snapshot()
	}
	rr := make([]res, jb.rk)
	for t := 0; t < jb.rk; t++ {
		rr[t] = snap[t]
		if rr[t].col >= 0 {
			rr[t].loc += jb.jLo
		}
	}
	return rr
}

// base handles narrow or short subproblems. For nc <= 4 the few columns
// are broadcast and each row's processor scans them locally; for k <= 2
// each row is broadcast and a tree reduction over all dimensions finds its
// minimum.
func (pr *stairProblem[V, W]) base(mach *hc.Machine, k, nc int, vvec *hc.Vec[stairV[V]], wvec *hc.Vec[wcell[W]]) *hc.Vec[res] {
	out := make([]res, k)
	if nc <= 4 {
		cols := make([]*hc.Vec[wcell[W]], nc)
		for j := 0; j < nc; j++ {
			cj := hc.NewVec(mach, func(p int) wcell[W] { return wvec.Get(p) })
			hc.Broadcast(mach, j, cj)
			cols[j] = cj
		}
		resVec := hc.NewVec(mach, func(int) res { return blockedRes() })
		mach.Local(nc, func(p int) {
			if p >= k {
				return
			}
			vc := vvec.Get(p)
			best := blockedRes()
			for j := 0; j < nc && j < vc.bound; j++ {
				wc := cols[j].Get(p)
				best = pickStair(best, res{val: pr.f(vc.v, wc.w), col: wc.col, loc: j})
			}
			resVec.Set(p, best)
		})
		return resVec
	}
	// k <= 2: per-row broadcast + reduction.
	for r := 0; r < k; r++ {
		vr := hc.NewVec(mach, func(p int) stairV[V] { return vvec.Get(p) })
		hc.Broadcast(mach, r, vr)
		cand := hc.NewVec(mach, func(int) res { return blockedRes() })
		mach.Local(1, func(p int) {
			vc := vr.Get(p)
			if p >= nc || p >= vc.bound {
				return
			}
			wc := wvec.Get(p)
			cand.Set(p, res{val: pr.f(vc.v, wc.w), col: wc.col, loc: p})
		})
		for kd := 0; kd < mach.Dim(); kd++ {
			ex := hc.Exchange(mach, kd, cand)
			bit := 1 << kd
			mach.Local(1, func(p int) {
				if p&bit == 0 {
					cand.Set(p, pickStair(cand.Get(p), ex.Get(p)))
				}
			})
		}
		out[r] = cand.Get(0)
	}
	return hc.NewVec(mach, func(p int) res {
		if p < k {
			return out[p]
		}
		return blockedRes()
	})
}
