// Package hcmonge implements Section 3 of the paper: searching Monge,
// staircase-Monge, and Monge-composite arrays on the hypercube and its
// constant-degree relatives (Theorems 3.2, 3.3 and 3.4).
//
// # Input model
//
// Following the paper, a two-dimensional array is given implicitly by two
// distributed vectors: processor i initially holds v[i] and w[i], and a
// processor can evaluate a[i,j] = f(v[i], w[j]) in O(1) time once both
// values reside in its local memory. All data movement -- concentrating
// sampled rows, bracketing gap subproblems, delivering results -- happens
// through the isotone-routing, prefix, and broadcast primitives of
// internal/hypercube, so the machine's step counters reflect genuine
// communication costs.
//
// # Deviations from the paper (documented in EXPERIMENTS.md)
//
// The extended abstract omits the proofs of Theorems 3.2-3.4 and in
// particular the processor-reduction machinery (Brent-style rescheduling is
// unavailable on a hypercube). This implementation reproduces the TIME
// bounds with O(m+n)-processor machines (constant-factor slack for
// subproblem headroom) rather than the n/lg lg n processor counts:
// recursive subproblems run on fresh sub-machines charged at the maximum
// branch time, mirroring the paper's "assign each region to a complete
// sub-hypercube" argument without simulating the alignment arithmetic.
package hcmonge

import (
	"math"

	hc "monge/internal/hypercube"
	"monge/internal/merr"
)

// res is a row answer: the optimal value, the global column identity, and
// the column index local to the subproblem that produced it (used for
// bracketing).
type res struct {
	val float64
	col int
	loc int
}

func worstRes() res {
	return res{val: math.Inf(1), col: -1, loc: math.MaxInt32}
}

// wcell carries one column's input value and its global identity.
type wcell[W any] struct {
	w   W
	col int
}

// problem fixes the entry function and tie rule for one search.
type problem[V, W any] struct {
	f        func(V, W) float64
	tieRight bool
}

// pick returns the better (smaller) of two candidates under the tie rule.
func (pr *problem[V, W]) pick(a, b res) res {
	if b.val < a.val {
		return b
	}
	if a.val < b.val {
		return a
	}
	if pr.tieRight {
		if b.loc > a.loc {
			return b
		}
		return a
	}
	if b.loc < a.loc {
		return b
	}
	return a
}

// dimFor returns the machine dimension whose size is the smallest power of
// two >= 4*(m+n), the headroom one recursion level needs for its routing
// space.
func dimFor(m, n int) int {
	need := 4 * (m + n)
	d := 0
	for 1<<d < need {
		d++
	}
	return d
}

// solve computes row minima of the mr x nc Monge array a[i,j] =
// f(vvec[i], wvec[j].w) on mach. Invariant: vvec cell i (i < mr) holds row
// i's input, wvec cell j (j < nc) holds column j's input; the result Vec
// holds row i's answer at cell i.
func (pr *problem[V, W]) solve(mach *hc.Machine, mr, nc int, vvec *hc.Vec[V], wvec *hc.Vec[wcell[W]]) *hc.Vec[res] {
	if mr == 0 || nc == 0 {
		return hc.NewVec(mach, func(int) res { return worstRes() })
	}
	if mr <= 4 && nc <= 4 {
		return pr.base(mach, mr, nc, vvec, wvec)
	}
	mhat := nextPow2(mr)
	if nc >= 2*mhat {
		return pr.columnSplit(mach, mr, nc, mhat, vvec, wvec)
	}
	return pr.rowSample(mach, mr, nc, vvec, wvec)
}

// base solves tiny subproblems by an all-gather within the covering
// subcube followed by local scans.
func (pr *problem[V, W]) base(mach *hc.Machine, mr, nc int, vvec *hc.Vec[V], wvec *hc.Vec[wcell[W]]) *hc.Vec[res] {
	k := 0
	for 1<<k < mr || 1<<k < nc {
		k++
	}
	if k > mach.Dim() {
		k = mach.Dim()
	}
	wl := hc.AllGather(mach, k, wvec)
	out := hc.NewVec(mach, func(int) res { return worstRes() })
	mach.Local(nc, func(p int) {
		if p >= mr {
			return
		}
		v := vvec.Get(p)
		best := worstRes()
		for j, wc := range wl.Get(p) {
			if j >= nc {
				break
			}
			best = pr.pick(best, res{val: pr.f(v, wc.w), col: wc.col, loc: j})
		}
		out.Set(p, best)
	})
	return out
}

// columnSplit handles wide arrays (Lemma 2.1, Case 2): columns are cut
// into blocks of mhat, each block is solved on its own sub-machine with a
// replicated copy of v, and a tree reduction over the block dimension
// combines the per-block winners.
func (pr *problem[V, W]) columnSplit(mach *hc.Machine, mr, nc, mhat int, vvec *hc.Vec[V], wvec *hc.Vec[wcell[W]]) *hc.Vec[res] {
	nb := (nc + mhat - 1) / mhat
	lg := 0
	for 1<<lg < mhat {
		lg++
	}
	if nb*mhat > mach.Size() {
		merr.Throwf(merr.ErrMachineTooSmall,
			"hcmonge: column split needs %d processors, have %d", nb*mhat, mach.Size())
	}
	// Replicate v into every block's processor range.
	vrep := hc.NewVec(mach, func(p int) V { return vvec.Get(p) })
	hc.ReplicateLow(mach, lg, vrep)

	snaps := make([][]res, nb)
	dims := make([]int, nb)
	widths := make([]int, nb)
	for b := 0; b < nb; b++ {
		widths[b] = minInt(nc, (b+1)*mhat) - b*mhat
		dims[b] = dimFor(mr, widths[b])
	}
	mach.ParallelDo(dims, func(b int, sub *hc.Machine) {
		base := b * mhat
		lv := hc.NewVec(sub, func(q int) V {
			if base+q < mach.Size() && q < mhat {
				return vrep.Get(base + q)
			}
			var zero V
			return zero
		})
		lw := hc.NewVec(sub, func(q int) wcell[W] {
			if base+q < mach.Size() && q < widths[b] {
				return wvec.Get(base + q) // the global id travels with the cell
			}
			return wcell[W]{}
		})
		r := pr.solve(sub, mr, widths[b], lv, lw)
		snap := r.Snapshot()
		out := make([]res, mr)
		for t := 0; t < mr; t++ {
			out[t] = snap[t]
			out[t].loc += base // localise to the parent's column space
		}
		snaps[b] = out
	})

	// Tree-reduce the per-block winners across the block dimension.
	comb := hc.NewVec(mach, func(p int) res {
		b, t := p/mhat, p%mhat
		if b < nb && t < mr {
			return snaps[b][t]
		}
		return worstRes()
	})
	for k := lg; k < mach.Dim(); k++ {
		ex := hc.Exchange(mach, k, comb)
		bit := 1 << k
		mach.Local(1, func(p int) {
			if p&bit == 0 {
				comb.Set(p, pr.pick(comb.Get(p), ex.Get(p)))
			}
		})
	}
	return comb
}

// rowSample handles tall or roughly square arrays: every s-th row is
// concentrated and solved recursively, and the unsampled gaps -- whose
// answers are bracketed by the neighbouring sampled answers, with
// telescoping total width -- are routed into packed blocks and solved on
// parallel sub-machines (the recursion of Lemma 2.1 / Theorem 3.2).
func (pr *problem[V, W]) rowSample(mach *hc.Machine, mr, nc int, vvec *hc.Vec[V], wvec *hc.Vec[wcell[W]]) *hc.Vec[res] {
	s := nextPow2(isqrt(mr))
	if s < 2 {
		s = 2
	}
	u := mr / s
	if u == 0 {
		s = nextPow2(mr) / 2
		if s < 1 {
			s = 1
		}
		u = mr / s
	}

	// Concentrate the sampled rows' inputs to cells 0..u-1.
	svOpt := hc.Send(mach,
		func(p int) bool { return p < u*s && (p+1)%s == 0 },
		func(p int) V { return vvec.Get(p) },
		func(p int) int { return (p+1)/s - 1 },
	)
	sv := hc.NewVec(mach, func(p int) V {
		if o := svOpt.Get(p); o.Ok {
			return o.Val
		}
		var zero V
		return zero
	})
	sres := pr.solve(mach, u, nc, sv, wvec)
	sSnap := sres.Snapshot()[:u]

	// Gap descriptors. Gap g spans rows (R_{g-1}, R_g) with column window
	// [sSnap[g-1].loc, sSnap[g].loc]; windows telescope to nc + u total.
	type gapDesc struct {
		id          int
		rowLo, rows int
		jLo, width  int
		base, size  int
	}
	var gaps []gapDesc
	off := 0
	prevRow := -1
	prevLoc := 0
	for g := 0; g <= u; g++ {
		rowHi := mr
		jHi := nc - 1
		if g < u {
			rowHi = (g+1)*s - 1
			jHi = sSnap[g].loc
		}
		rows := rowHi - (prevRow + 1)
		width := jHi - prevLoc + 1
		if rows > 0 && width > 0 {
			size := maxInt(rows, width)
			gaps = append(gaps, gapDesc{
				id: len(gaps), rowLo: prevRow + 1, rows: rows,
				jLo: prevLoc, width: width, base: off, size: size,
			})
			off += size
		}
		if g < u {
			prevRow = rowHi
			prevLoc = sSnap[g].loc
		}
	}
	if off > mach.Size() {
		merr.Throwf(merr.ErrMachineTooSmall,
			"hcmonge: gap allocation needs %d processors, have %d (mr=%d nc=%d u=%d s=%d gaps=%d)",
			off, mach.Size(), mr, nc, u, s, len(gaps))
	}
	// Offset computation is a parallel prefix over the gap sizes; charge
	// the scan that a full implementation would run.
	scratch := hc.NewVec(mach, func(p int) int {
		if p < len(gaps) {
			return gaps[p].size
		}
		return 0
	})
	hc.Scan(mach, scratch, func(a, b int) int { return a + b })

	// Spread descriptors to their blocks: a monotone route to each base,
	// then a segmented copy along the (contiguous, unaligned) block ranges.
	descOpt := hc.Send(mach,
		func(p int) bool { return p < len(gaps) },
		func(p int) gapDesc { return gaps[p] },
		func(p int) int { return gaps[p].base },
	)
	desc := hc.NewVec(mach, func(p int) hc.Opt[gapDesc] { return descOpt.Get(p) })
	heads := hc.NewVec(mach, func(p int) bool { return descOpt.Get(p).Ok })
	hc.SegScan(mach, desc, heads, func(a, b hc.Opt[gapDesc]) hc.Opt[gapDesc] {
		if b.Ok {
			return b
		}
		return a
	})
	// Blocks are packed back to back, so only the tail past the last block
	// must be masked out.
	mach.Local(1, func(p int) {
		if d := desc.Get(p); d.Ok && p-d.Val.base >= d.Val.size {
			desc.Set(p, hc.Opt[gapDesc]{})
		}
	})

	// Fetch each block's row inputs and column inputs by monotone reads
	// (indices are made globally nondecreasing by a running prefix-max).
	idxV := hc.NewVec(mach, func(p int) int {
		if d := desc.Get(p); d.Ok {
			return d.Val.rowLo + minInt(p-d.Val.base, d.Val.rows-1)
		}
		return 0
	})
	hc.Scan(mach, idxV, maxInt)
	vF := hc.MonotoneRead(mach, vvec, idxV)

	idxW := hc.NewVec(mach, func(p int) int {
		if d := desc.Get(p); d.Ok {
			return d.Val.jLo + minInt(p-d.Val.base, d.Val.width-1)
		}
		return 0
	})
	hc.Scan(mach, idxW, maxInt)
	wF := hc.MonotoneRead(mach, wvec, idxW)

	// Solve the gaps on parallel sub-machines.
	snaps := make([][]res, len(gaps))
	dims := make([]int, len(gaps))
	for i, g := range gaps {
		dims[i] = dimFor(g.rows, g.width)
	}
	mach.ParallelDo(dims, func(i int, sub *hc.Machine) {
		g := gaps[i]
		lv := hc.NewVec(sub, func(q int) V {
			if q < g.rows {
				return vF.Get(g.base + q)
			}
			var zero V
			return zero
		})
		lw := hc.NewVec(sub, func(q int) wcell[W] {
			if q < g.width {
				return wF.Get(g.base + q)
			}
			return wcell[W]{}
		})
		r := pr.solve(sub, g.rows, g.width, lv, lw)
		snap := r.Snapshot()
		out := make([]res, g.rows)
		for t := 0; t < g.rows; t++ {
			out[t] = snap[t]
			out[t].loc += g.jLo // back to the parent's column space
		}
		snaps[i] = out
	})

	// Assemble: sampled answers and gap answers are both routed to their
	// home rows (two monotone routes over disjoint destination sets).
	sr := hc.Send(mach,
		func(p int) bool { return p < u },
		func(p int) res { return sSnap[p] },
		func(p int) int { return (p+1)*s - 1 },
	)
	gapRes := hc.NewVec(mach, func(p int) res {
		if d := desc.Get(p); d.Ok && p-d.Val.base < d.Val.rows {
			return snaps[d.Val.id][p-d.Val.base]
		}
		return worstRes()
	})
	gr := hc.Send(mach,
		func(p int) bool {
			d := desc.Get(p)
			return d.Ok && p-d.Val.base < d.Val.rows
		},
		func(p int) res { return gapRes.Get(p) },
		func(p int) int {
			d := desc.Get(p).Val
			return d.rowLo + (p - d.base)
		},
	)
	out := hc.NewVec(mach, func(p int) res { return worstRes() })
	mach.Local(1, func(p int) {
		if o := sr.Get(p); o.Ok {
			out.Set(p, o.Val)
		}
		if o := gr.Get(p); o.Ok {
			out.Set(p, o.Val)
		}
	})
	return out
}

func nextPow2(x int) int {
	p := 1
	for p < x {
		p *= 2
	}
	return p
}

func isqrt(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
