package hcmonge

import (
	"math/rand"
	"testing"
	"testing/quick"

	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/smawk"
)

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// denseInputs converts a dense matrix into the distributed input model:
// v[i] = i, w[j] = j, f reads the matrix.
func denseInputs(a marray.Matrix) ([]int, []int, EntryFunc[int, int]) {
	v := make([]int, a.Rows())
	w := make([]int, a.Cols())
	for i := range v {
		v[i] = i
	}
	for j := range w {
		w[j] = j
	}
	return v, w, func(i, j int) float64 { return a.At(i, j) }
}

func TestRowMinimaMatchesSMAWK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomMonge(rng, m, n)
		want := smawk.RowMinima(a)
		v, w, f := denseInputs(a)
		got, _ := RowMinima(hc.Cube, v, w, f)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestRowMinimaAllKindsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		a := marray.RandomMonge(rng, m, n)
		v, w, f := denseInputs(a)
		want := smawk.RowMinima(a)
		for _, kind := range []hc.Kind{hc.Cube, hc.CCC, hc.Shuffle} {
			got, _ := RowMinima(kind, v, w, f)
			if !eqInts(got, want) {
				t.Fatalf("trial %d kind %v: got %v want %v", trial, kind, got, want)
			}
		}
	}
}

func TestRowMinimaTies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		d := marray.NewDense(m, n)
		prefix := make([]float64, n)
		for i := 0; i < m; i++ {
			acc := 0.0
			for j := 0; j < n; j++ {
				acc -= float64(rng.Intn(2))
				prefix[j] += acc
				d.Set(i, j, prefix[j])
			}
		}
		want := smawk.RowMinimaBrute(d)
		v, w, f := denseInputs(d)
		got, _ := RowMinima(hc.Cube, v, w, f)
		if !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestRowMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		a := marray.RandomInverseMonge(rng, m, n)
		want := smawk.RowMaximaBrute(a)
		v, w, f := denseInputs(a)
		got, _ := RowMaxima(hc.Cube, v, w, f)
		if !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestMongeRowMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		a := marray.RandomMonge(rng, m, n)
		want := smawk.RowMaximaBrute(a)
		v, w, f := denseInputs(a)
		got, _ := MongeRowMaxima(hc.Cube, v, w, f)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestRowMinimaShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	shapes := [][2]int{{1, 1}, {1, 40}, {40, 1}, {64, 64}, {100, 10}, {10, 100}, {33, 57}}
	for _, sh := range shapes {
		a := marray.RandomMonge(rng, sh[0], sh[1])
		v, w, f := denseInputs(a)
		got, _ := RowMinima(hc.Cube, v, w, f)
		if !eqInts(got, smawk.RowMinima(a)) {
			t.Fatalf("shape %v mismatch", sh)
		}
	}
}

func TestRowMinimaEmpty(t *testing.T) {
	got, _ := RowMinima(hc.Cube, nil, nil, func(a, b int) float64 { return 0 })
	if len(got) != 0 {
		t.Fatal("empty should give empty")
	}
}

// TestTheorem32TimeShape checks that hypercube time grows like lg n times
// a slowly growing factor: time(2048)/time(128) should be far below the
// 16x data-size ratio (lg ratio is 11/7 ~ 1.6; allow up to 4x for the
// lg lg n style factors).
func TestTheorem32TimeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	timeFor := func(n int) int64 {
		a := marray.RandomMonge(rng, n, n)
		v, w, f := denseInputs(a)
		_, mach := RowMinima(hc.Cube, v, w, f)
		return mach.Time()
	}
	t128, t2048 := timeFor(128), timeFor(2048)
	if t2048 > 4*t128 {
		t.Fatalf("hypercube time grows too fast: %d -> %d", t128, t2048)
	}
}

// TestGeometricInputModel demonstrates the distributed model with
// non-trivial cell types: farthest-neighbor distances between convex
// chains (the Figure 1.1 array), with points as the local values.
func TestGeometricInputModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		m, n := 2+rng.Intn(30), 2+rng.Intn(30)
		p, q := marray.ConvexChainPair(rng, m, n)
		a := marray.ChainDistanceMatrix(p, q)
		want := smawk.RowMaximaBrute(a)
		got, _ := RowMaxima(hc.Cube, p, q, func(pp, qq marray.Point) float64 {
			return marray.Dist(pp, qq)
		})
		if !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestQuickRowMinima(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		a := marray.RandomMonge(rng, m, n)
		v, w, f := denseInputs(a)
		got, _ := RowMinima(hc.Cube, v, w, f)
		return eqInts(got, smawk.RowMinima(a))
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}
