package hcmonge

import (
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/merr"
)

// Theorem 3.4: tube maxima of a p x q x r Monge-composite array on an
// O(n^2)-processor hypercube in O(lg n) time. The p slices
// W_i[k][j] = d[i,j] + e[j,k] are independent r x q Monge arrays; each
// runs the two-dimensional recursion on its own sub-machine, all slices
// simultaneously. A charged local preamble of d steps per slice stands in
// for the butterfly distribution of d[i,*] and the E columns into the
// slice's subcube (the paper distributes D and E uniformly across local
// memories; the entry function then evaluates in O(1) as the model
// requires).

// TubeMachineFor returns a machine of the given kind sized for the tube
// search on composite c: one MachineFor-sized subcube per slice of the
// first dimension.
func TubeMachineFor(kind hc.Kind, c marray.Composite) *hc.Machine {
	subDim, lgP := tubeDims(c)
	return hc.New(kind, subDim+lgP)
}

func tubeDims(c marray.Composite) (subDim, lgP int) {
	subDim = dimFor(c.R(), c.Q())
	for 1<<lgP < c.P() {
		lgP++
	}
	return subDim, lgP
}

// TubeMaxima computes, for every (i, k), the smallest middle coordinate j
// maximising c[i,j,k] = d[i,j] + e[j,k] (D, E Monge), plus the values, on
// simulated networks of the given kind. Returns the parent machine for
// counter inspection.
func TubeMaxima(kind hc.Kind, c marray.Composite) (argJ [][]int, vals [][]float64, mach *hc.Machine) {
	mach = TubeMachineFor(kind, c)
	argJ, vals = TubeMaximaOn(mach, c)
	return argJ, vals, mach
}

// TubeMaximaOn is TubeMaxima on a caller-provided machine (at least
// TubeMachineFor-sized; merr.ErrMachineTooSmall is thrown otherwise), the
// form that lets the caller attach a context or fault injector first.
func TubeMaximaOn(mach *hc.Machine, c marray.Composite) ([][]int, [][]float64) {
	return tubeSearchOn(mach, c, true)
}

// TubeMinima is the minimisation analogue for composites with
// inverse-Monge factors (the shortest-path orientation).
func TubeMinima(kind hc.Kind, c marray.Composite) (argJ [][]int, vals [][]float64, mach *hc.Machine) {
	mach = TubeMachineFor(kind, c)
	argJ, vals = TubeMinimaOn(mach, c)
	return argJ, vals, mach
}

// TubeMinimaOn is TubeMinima on a caller-provided machine.
func TubeMinimaOn(mach *hc.Machine, c marray.Composite) ([][]int, [][]float64) {
	return tubeSearchOn(mach, c, false)
}

func tubeSearchOn(parent *hc.Machine, c marray.Composite, maxima bool) ([][]int, [][]float64) {
	p, q, r := c.P(), c.Q(), c.R()
	subDim, lgP := tubeDims(c)
	if parent.Dim() < subDim+lgP {
		merr.Throwf(merr.ErrMachineTooSmall,
			"hcmonge: tube search needs a %d-dimensional machine, have %d dimensions",
			subDim+lgP, parent.Dim())
	}
	defer countSearch(parent, "tube")()
	argJ := make([][]int, p)
	vals := make([][]float64, p)
	dims := make([]int, p)
	for i := range dims {
		dims[i] = subDim
	}
	parent.ParallelDo(dims, func(i int, sub *hc.Machine) {
		// Charged stand-in for distributing d[i,*] and the E columns into
		// this slice's subcube.
		sub.Local(sub.Dim(), func(int) {})
		vv := hc.NewVec(sub, func(pp int) int { return pp })
		wv := hc.NewVec(sub, func(pp int) wcell[int] {
			if pp < q {
				return wcell[int]{w: q - 1 - pp, col: q - 1 - pp}
			}
			return wcell[int]{col: -1}
		})
		sign := 1.0
		if maxima {
			sign = -1.0
		}
		pr := &problem[int, int]{
			f: func(k, j int) float64 {
				return sign * (c.D.At(i, j) + c.E.At(j, k))
			},
			tieRight: true, // rightmost in reversed order = leftmost j
		}
		res := pr.solve(sub, r, q, vv, wv)
		snap := res.Snapshot()
		argJ[i] = make([]int, r)
		vals[i] = make([]float64, r)
		for k := 0; k < r; k++ {
			argJ[i][k] = snap[k].col
			vals[i][k] = c.At(i, snap[k].col, k)
		}
	})
	return argJ, vals
}
