package hcmonge

import (
	hc "monge/internal/hypercube"
)

// EntryFunc evaluates one array entry from a row input and a column input,
// the O(1) evaluation the paper's distributed input model assumes.
type EntryFunc[V, W any] func(V, W) float64

// MachineFor returns a machine of the given kind sized for an m x n search
// (4*(m+n) processors rounded to a power of two, the routing headroom one
// recursion level uses).
func MachineFor(kind hc.Kind, m, n int) *hc.Machine {
	return hc.New(kind, dimFor(m, n))
}

// RowMinima computes, for each row i of the m x n Monge array
// a[i,j] = f(v[i], w[j]), the column index of its leftmost minimum, on a
// freshly sized machine of the given kind. It returns the answers and the
// machine, whose counters hold the charged time, communication, and work.
//
// With Theorem 3.2's bounds in mind: on an O(n)-processor hypercube the
// measured time is O(lg n) for an n x n array (the lg lg n factor in the
// paper's statement comes from processor reduction, which this simulation
// replaces by machine sizing; see the package comment).
func RowMinima[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W]) ([]int, *hc.Machine) {
	return search(kind, v, w, f, false, false)
}

// RowMaxima computes leftmost row maxima of the m x n INVERSE-Monge array
// a[i,j] = f(v[i], w[j]) (negation reduces to RowMinima).
func RowMaxima[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W]) ([]int, *hc.Machine) {
	return search(kind, v, w, f, true, false)
}

// MongeRowMaxima computes leftmost row maxima of a MONGE array (the
// Theorem 3.2 / Table 1.1 problem): the column order is reversed (making
// the array inverse-Monge), entries are negated, and the search runs with
// rightmost tie-breaking, which corresponds to leftmost in the original
// order. The returned indices are in the original column order.
func MongeRowMaxima[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W]) ([]int, *hc.Machine) {
	n := len(w)
	rev := make([]W, n)
	for j := range rev {
		rev[j] = w[n-1-j]
	}
	neg := func(vi V, wj W) float64 { return -f(vi, wj) }
	idx, mach := searchVW(kind, v, rev, neg, true, func(j int) int { return n - 1 - j })
	return idx, mach
}

// search negates when maxima is set and runs the generic driver.
func search[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W], maxima, tieRight bool) ([]int, *hc.Machine) {
	g := f
	if maxima {
		g = func(vi V, wj W) float64 { return -f(vi, wj) }
	}
	return searchVW(kind, v, w, g, tieRight, func(j int) int { return j })
}

// searchVW places the inputs in the paper's distributed model (v[i] and
// w[i] in processor i's memory), runs the recursion, and extracts the
// answers. colID maps local column positions to reported indices.
func searchVW[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W], tieRight bool, colID func(j int) int) ([]int, *hc.Machine) {
	m, n := len(v), len(w)
	mach := MachineFor(kind, m, n)
	out := make([]int, m)
	if m == 0 || n == 0 {
		return out, mach
	}
	vvec := hc.NewVec(mach, func(p int) V {
		if p < m {
			return v[p]
		}
		var zero V
		return zero
	})
	wvec := hc.NewVec(mach, func(p int) wcell[W] {
		if p < n {
			return wcell[W]{w: w[p], col: colID(p)}
		}
		return wcell[W]{col: -1}
	})
	pr := &problem[V, W]{f: f, tieRight: tieRight}
	r := pr.solve(mach, m, n, vvec, wvec)
	snap := r.Snapshot()
	for i := 0; i < m; i++ {
		out[i] = snap[i].col
	}
	return out, mach
}
