package hcmonge

import (
	hc "monge/internal/hypercube"
	"monge/internal/merr"
	"monge/internal/obs"
)

// countSearch bumps the driver-level Searches counter of the "hcmonge"
// observability site and opens a span named after the entry point on the
// machine's tracer; callers defer the returned closer around the whole
// search so the trace shows one algorithm-phase lane above the per-step
// machine lanes.
func countSearch(mach *hc.Machine, name string) func() {
	if o := obs.Global(); o != nil {
		o.Site("hcmonge").Searches.Add(1)
	}
	return mach.TraceSpan("hcmonge", name)
}

// EntryFunc evaluates one array entry from a row input and a column input,
// the O(1) evaluation the paper's distributed input model assumes.
type EntryFunc[V, W any] func(V, W) float64

// MachineFor returns a machine of the given kind sized for an m x n search
// (4*(m+n) processors rounded to a power of two, the routing headroom one
// recursion level uses).
func MachineFor(kind hc.Kind, m, n int) *hc.Machine {
	return hc.New(kind, dimFor(m, n))
}

// checkDim throws merr.ErrMachineTooSmall when mach cannot host an m x n
// search (it has fewer processors than MachineFor would allocate).
func checkDim(mach *hc.Machine, m, n int) {
	if need := dimFor(m, n); mach.Dim() < need {
		merr.Throwf(merr.ErrMachineTooSmall,
			"hcmonge: %d x %d search needs a %d-dimensional machine, have %d dimensions",
			m, n, need, mach.Dim())
	}
}

// RowMinima computes, for each row i of the m x n Monge array
// a[i,j] = f(v[i], w[j]), the column index of its leftmost minimum, on a
// freshly sized machine of the given kind. It returns the answers and the
// machine, whose counters hold the charged time, communication, and work.
//
// With Theorem 3.2's bounds in mind: on an O(n)-processor hypercube the
// measured time is O(lg n) for an n x n array (the lg lg n factor in the
// paper's statement comes from processor reduction, which this simulation
// replaces by machine sizing; see the package comment).
func RowMinima[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W]) ([]int, *hc.Machine) {
	mach := MachineFor(kind, len(v), len(w))
	return RowMinimaOn(mach, v, w, f), mach
}

// RowMinimaOn is RowMinima on a caller-provided machine — the form that
// lets the caller attach a context, fault injector, sink, or private pool
// before the run. The machine must be at least MachineFor-sized for the
// inputs (merr.ErrMachineTooSmall is thrown otherwise).
func RowMinimaOn[V, W any](mach *hc.Machine, v []V, w []W, f EntryFunc[V, W]) []int {
	return searchOn(mach, v, w, f, false, false)
}

// RowMaxima computes leftmost row maxima of the m x n INVERSE-Monge array
// a[i,j] = f(v[i], w[j]) (negation reduces to RowMinima).
func RowMaxima[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W]) ([]int, *hc.Machine) {
	mach := MachineFor(kind, len(v), len(w))
	return RowMaximaOn(mach, v, w, f), mach
}

// RowMaximaOn is RowMaxima on a caller-provided machine.
func RowMaximaOn[V, W any](mach *hc.Machine, v []V, w []W, f EntryFunc[V, W]) []int {
	return searchOn(mach, v, w, f, true, false)
}

// MongeRowMaxima computes leftmost row maxima of a MONGE array (the
// Theorem 3.2 / Table 1.1 problem): the column order is reversed (making
// the array inverse-Monge), entries are negated, and the search runs with
// rightmost tie-breaking, which corresponds to leftmost in the original
// order. The returned indices are in the original column order.
func MongeRowMaxima[V, W any](kind hc.Kind, v []V, w []W, f EntryFunc[V, W]) ([]int, *hc.Machine) {
	mach := MachineFor(kind, len(v), len(w))
	return MongeRowMaximaOn(mach, v, w, f), mach
}

// MongeRowMaximaOn is MongeRowMaxima on a caller-provided machine.
func MongeRowMaximaOn[V, W any](mach *hc.Machine, v []V, w []W, f EntryFunc[V, W]) []int {
	n := len(w)
	rev := make([]W, n)
	for j := range rev {
		rev[j] = w[n-1-j]
	}
	neg := func(vi V, wj W) float64 { return -f(vi, wj) }
	return searchVW(mach, v, rev, neg, true, func(j int) int { return n - 1 - j })
}

// searchOn negates when maxima is set and runs the generic driver.
func searchOn[V, W any](mach *hc.Machine, v []V, w []W, f EntryFunc[V, W], maxima, tieRight bool) []int {
	g := f
	if maxima {
		g = func(vi V, wj W) float64 { return -f(vi, wj) }
	}
	return searchVW(mach, v, w, g, tieRight, func(j int) int { return j })
}

// searchVW places the inputs in the paper's distributed model (v[i] and
// w[i] in processor i's memory), runs the recursion, and extracts the
// answers. colID maps local column positions to reported indices.
func searchVW[V, W any](mach *hc.Machine, v []V, w []W, f EntryFunc[V, W], tieRight bool, colID func(j int) int) []int {
	m, n := len(v), len(w)
	checkDim(mach, m, n)
	defer countSearch(mach, "search")()
	out := make([]int, m)
	if m == 0 || n == 0 {
		return out
	}
	vvec := hc.NewVec(mach, func(p int) V {
		if p < m {
			return v[p]
		}
		var zero V
		return zero
	})
	wvec := hc.NewVec(mach, func(p int) wcell[W] {
		if p < n {
			return wcell[W]{w: w[p], col: colID(p)}
		}
		return wcell[W]{col: -1}
	})
	pr := &problem[V, W]{f: f, tieRight: tieRight}
	r := pr.solve(mach, m, n, vvec, wvec)
	snap := r.Snapshot()
	for i := 0; i < m; i++ {
		out[i] = snap[i].col
	}
	return out
}
