// Differential tests between the sequential DP solvers in this package
// and the batched (min,+) engine in internal/minplus. The two sides
// share no code below their public surfaces — LWS runs the concave
// candidate-interval stack, the engine runs SMAWK sweeps / ⊗-squaring /
// Lagrangian bisection over the kernel drivers — so agreement here
// cross-checks both. External test package: minplus imports dp (the
// λ-bisection strategy calls LWS), so the reverse import has to stay
// out of package dp proper.
package dp_test

import (
	"math"
	"math/rand"
	"testing"

	"monge/internal/batch"
	"monge/internal/dp"
	"monge/internal/minplus"
)

// convexGapWeight builds a random integer convex-gap Monge weight
// off[i] + off[j] + g² (g = j−i). Integer entries keep every float sum
// exact regardless of association order.
func convexGapWeight(rng *rand.Rand, n int) dp.WeightFunc {
	off := make([]float64, n+1)
	for i := range off {
		off[i] = float64(rng.Intn(64))
	}
	return func(i, j int) float64 {
		g := float64(j - i)
		return off[i] + off[j] + g*g
	}
}

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(b))
}

// TestLWSMatchesMinPlusEngine: the unconstrained LWS optimum f(n) must
// equal (a) the M-link cost at exactly the link count the LWS chain
// used, and (b) the minimum of the M-link cost over all M — the
// link-constrained optimum is convex in M for Monge weights, with its
// floor at the unconstrained chain.
func TestLWSMatchesMinPlusEngine(t *testing.T) {
	e := minplus.New(batch.BackendNative)
	defer e.Close()
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(25)
		w := convexGapWeight(rng, n)
		f, pred := dp.LWS(n, w)
		chain := dp.Chain(pred)
		mStar := len(chain) - 1

		cost, path := e.MLinkPath(n, minplus.Weight(w), mStar)
		if !closeEnough(cost, f[n]) {
			t.Errorf("seed %d n=%d: MLinkPath(M=%d) = %g, LWS f(n) = %g", seed, n, mStar, cost, f[n])
		}
		if len(path) != mStar+1 {
			t.Errorf("seed %d n=%d: path has %d nodes, want %d", seed, n, len(path), mStar+1)
		}

		best := math.Inf(1)
		for m := 1; m <= n; m++ {
			if c, _ := e.MLinkPath(n, minplus.Weight(w), m); c < best {
				best = c
			}
		}
		if !closeEnough(best, f[n]) {
			t.Errorf("seed %d n=%d: min over M of MLinkPath = %g, LWS f(n) = %g", seed, n, best, f[n])
		}
	}
}

// TestLotSizeMatchesMinPlusEngine re-derives the Wagner-Whitin link
// weight from the raw instance and checks that the engine's M-link
// solver, pinned to the plan's production-run count, reproduces the
// LotSize cost — and that no other run count beats it.
func TestLotSizeMatchesMinPlusEngine(t *testing.T) {
	e := minplus.New(batch.BackendNative)
	defer e.Close()
	for _, seed := range []int64{3, 11, 29} {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		demand := make([]float64, n)
		setup := make([]float64, n)
		hold := make([]float64, n-1)
		for t := range demand {
			demand[t] = float64(rng.Intn(30))
			setup[t] = float64(10 + rng.Intn(90))
		}
		for t := range hold {
			hold[t] = float64(rng.Intn(5))
		}
		plan := dp.LotSize(demand, setup, hold)

		// Same prefix-sum construction LotSize uses internally: w(i,j) is
		// the cost of one run in period i+1 covering demand through period j.
		D := make([]float64, n+1)
		H := make([]float64, n+1)
		DH := make([]float64, n+1)
		for t := 1; t <= n; t++ {
			D[t] = D[t-1] + demand[t-1]
			rate := 0.0
			if t < n {
				rate = hold[t-1]
			}
			H[t] = H[t-1] + rate
			DH[t] = DH[t-1] + demand[t-1]*H[t-1]
		}
		w := minplus.Weight(func(i, j int) float64 {
			return setup[i] + (DH[j] - DH[i]) - H[i]*(D[j]-D[i])
		})

		cost, path := e.MLinkPath(n, w, len(plan.Orders))
		if !closeEnough(cost, plan.Cost) {
			t.Errorf("seed %d n=%d: MLinkPath(M=%d) = %g, LotSize cost = %g",
				seed, n, len(plan.Orders), cost, plan.Cost)
		}
		for idx, s := range plan.Orders {
			if path[idx] != s-1 {
				t.Errorf("seed %d n=%d: path node %d = %d, plan orders in period %d",
					seed, n, idx, path[idx], s)
				break
			}
		}
		for m := 1; m <= n; m++ {
			if c, _ := e.MLinkPath(n, w, m); c < plan.Cost-1e-6 {
				t.Errorf("seed %d n=%d: M=%d beats the LotSize plan: %g < %g", seed, n, m, c, plan.Cost)
			}
		}
	}
}
