package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
)

// randMongeWeight builds a random Monge weight over 0..n via the dense
// generator.
func randMongeWeight(rng *rand.Rand, n int) WeightFunc {
	d := marray.RandomMonge(rng, n+1, n+1)
	return func(i, j int) float64 { return d.At(i, j) }
}

// concaveWeight is a classic concave (Monge) family: g(j - i) for concave
// g plus linear node costs.
func concaveWeight(rng *rand.Rand, n int) WeightFunc {
	a := 1 + rng.Float64()*5
	b := rng.Float64() * 10
	node := make([]float64, n+1)
	for i := range node {
		node[i] = rng.Float64() * 3
	}
	return func(i, j int) float64 {
		d := float64(j - i)
		return a*math.Sqrt(d) + b + node[i]
	}
}

func eqF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*math.Max(1, math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func TestLWSMatchesBruteMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(60)
		w := randMongeWeight(rng, n)
		f1, _ := LWS(n, w)
		f2, _ := LWSBrute(n, w)
		if !eqF(f1, f2) {
			t.Fatalf("trial %d (n=%d): %v vs %v", trial, n, f1[n], f2[n])
		}
	}
}

func TestLWSMatchesBruteConcave(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(80)
		w := concaveWeight(rng, n)
		f1, _ := LWS(n, w)
		f2, _ := LWSBrute(n, w)
		if !eqF(f1, f2) {
			t.Fatalf("trial %d (n=%d)", trial, n)
		}
	}
}

func TestLWSChainIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(40)
		w := concaveWeight(rng, n)
		f, pred := LWS(n, w)
		chain := Chain(pred)
		if chain[0] != 0 || chain[len(chain)-1] != n {
			t.Fatalf("chain endpoints wrong: %v", chain)
		}
		total := 0.0
		for i := 1; i < len(chain); i++ {
			if chain[i] <= chain[i-1] {
				t.Fatalf("chain not increasing: %v", chain)
			}
			total += w(chain[i-1], chain[i])
		}
		if math.Abs(total-f[n]) > 1e-9*math.Max(1, f[n]) {
			t.Fatalf("chain cost %v != f[n] %v", total, f[n])
		}
	}
}

func TestLWSEdgeCases(t *testing.T) {
	f, _ := LWS(0, func(i, j int) float64 { return 1 })
	if f[0] != 0 {
		t.Fatal("n=0")
	}
	f, pred := LWS(1, func(i, j int) float64 { return 7 })
	if f[1] != 7 || pred[1] != 0 {
		t.Fatal("n=1")
	}
}

func TestLotSizeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(40)
		demand := make([]float64, n)
		setup := make([]float64, n)
		hold := make([]float64, n)
		for i := 0; i < n; i++ {
			demand[i] = float64(rng.Intn(20))
			setup[i] = 5 + float64(rng.Intn(50))
			hold[i] = 0.1 + rng.Float64()
		}
		got := LotSize(demand, setup, hold)
		want := LotSizeBrute(demand, setup, hold)
		if math.Abs(got.Cost-want.Cost) > 1e-9*math.Max(1, want.Cost) {
			t.Fatalf("trial %d: %v vs %v", trial, got.Cost, want.Cost)
		}
		if len(got.Orders) == 0 || got.Orders[0] != 1 {
			t.Fatalf("first order must be period 1: %v", got.Orders)
		}
	}
}

func TestLotSizeWeightIsMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20
	demand := make([]float64, n)
	setup := make([]float64, n)
	hold := make([]float64, n)
	for i := 0; i < n; i++ {
		demand[i] = float64(rng.Intn(10))
		setup[i] = float64(rng.Intn(20))
		hold[i] = rng.Float64()
	}
	D := make([]float64, n+1)
	H := make([]float64, n+1)
	DH := make([]float64, n+1)
	for t2 := 1; t2 <= n; t2++ {
		D[t2] = D[t2-1] + demand[t2-1]
		rate := 0.0
		if t2 < n {
			rate = hold[t2-1]
		}
		H[t2] = H[t2-1] + rate
		DH[t2] = DH[t2-1] + demand[t2-1]*H[t2-1]
	}
	a := marray.Func{M: n, N: n, F: func(i, j int) float64 {
		return setup[i] + (DH[j+1] - DH[i]) - H[i]*(D[j+1]-D[i])
	}}
	// Check the Monge inequality on valid index pairs (i < j+1 always used
	// in the DP; the full rectangular check suffices for the inequality).
	if !marray.IsMonge(a) {
		t.Fatal("lot-size weight matrix is not Monge")
	}
}

func TestLotSizeEmpty(t *testing.T) {
	p := LotSize(nil, nil, nil)
	if p.Cost != 0 || p.Orders != nil {
		t.Fatal("empty instance")
	}
}

func TestOptimalBSTMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(25)
		freq := make([]float64, n)
		for i := range freq {
			freq[i] = float64(1 + rng.Intn(20))
		}
		got := OptimalBST(freq)
		want := OptimalBSTBrute(freq)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
	}
	if OptimalBST(nil) != 0 {
		t.Fatal("empty BST")
	}
}

func TestQuickLWS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		var w WeightFunc
		if rng.Intn(2) == 0 {
			w = randMongeWeight(rng, n)
		} else {
			w = concaveWeight(rng, n)
		}
		f1, _ := LWS(n, w)
		f2, _ := LWSBrute(n, w)
		return eqF(f1, f2)
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}
