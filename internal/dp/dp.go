// Package dp implements the dynamic-programming applications of the Monge
// abstraction cited in Section 1.1 of the paper:
//
//   - the concave least-weight subsequence problem (Larmore-Schieber
//     [LS89] / Eppstein-Galil-Giancarlo-Italiano [EGGI90] territory):
//     f(j) = min_{i<j} f(i) + w(i,j) for a Monge (concave) weight, solved
//     in O(n lg n) with the candidate-interval stack that exploits total
//     monotonicity, against the O(n^2) reference DP;
//   - the economic lot-size model (Aggarwal-Park [AP90]): with
//     nonspeculative costs the planning recurrence is a concave LWS
//     instance;
//   - Yao's quadrangle-inequality speedup [Yao80] for optimal binary
//     search trees: the O(n^2) Knuth-Yao root-monotonicity DP against the
//     O(n^3) naive DP.
package dp

import (
	"math"
)

// WeightFunc is a link weight w(i, j) for 0 <= i < j <= n. It must
// satisfy the Monge (concave quadrangle) inequality
// w(i,j) + w(i',j') <= w(i,j') + w(i',j) for i < i' < j < j'.
type WeightFunc func(i, j int) float64

// LWS solves the least-weight subsequence problem: the cheapest chain
// 0 = i_0 < i_1 < ... < i_k = n under the Monge weight w, returning the
// optimal value per position and the predecessor links. O(n lg n) time via
// the concave candidate-interval stack.
func LWS(n int, w WeightFunc) (f []float64, pred []int) {
	f = make([]float64, n+1)
	pred = make([]int, n+1)
	for j := 1; j <= n; j++ {
		f[j] = math.Inf(1)
		pred[j] = -1
	}
	if n == 0 {
		return f, pred
	}
	// Stack of (cand, from): candidate cand is the best predecessor for
	// all positions in [from, next.from). Concavity makes the "ownership"
	// intervals of candidates a partition into consecutive runs whose
	// owners appear in increasing order.
	type seg struct {
		cand, from int
	}
	stack := []seg{{cand: 0, from: 1}}
	val := func(i, j int) float64 { return f[i] + w(i, j) }
	for j := 1; j <= n; j++ {
		// Pop segments that end before j.
		for len(stack) > 1 && stack[1].from <= j {
			stack = stack[1:]
		}
		f[j] = val(stack[0].cand, j)
		pred[j] = stack[0].cand
		if j == n {
			break
		}
		// Insert j as a candidate: by concavity it owns a suffix [h, n] of
		// the remaining positions (possibly empty), found by popping
		// dominated segments from the back and binary searching the
		// crossover inside the first surviving one.
		inserted := false
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			start := top.from
			if start <= j {
				start = j + 1
			}
			if start > n || val(j, start) <= val(top.cand, start) {
				// j dominates this whole remaining segment.
				stack = stack[:len(stack)-1]
				continue
			}
			if val(j, n) > val(top.cand, n) {
				// j never wins within this segment (hence nowhere).
				inserted = true
				break
			}
			// Binary search the crossover inside [start, n]:
			// val(j, lo) > val(cand, lo), val(j, hi) <= val(cand, hi).
			lo, hi := start, n
			for lo+1 < hi {
				mid := (lo + hi) / 2
				if val(j, mid) <= val(top.cand, mid) {
					hi = mid
				} else {
					lo = mid
				}
			}
			stack = append(stack, seg{cand: j, from: hi})
			inserted = true
			break
		}
		if !inserted && len(stack) == 0 {
			// j dominates everywhere from j+1 on.
			stack = append(stack, seg{cand: j, from: j + 1})
		}
	}
	return f, pred
}

// LWSBrute is the O(n^2) reference.
func LWSBrute(n int, w WeightFunc) (f []float64, pred []int) {
	f = make([]float64, n+1)
	pred = make([]int, n+1)
	for j := 1; j <= n; j++ {
		f[j] = math.Inf(1)
		pred[j] = -1
		for i := 0; i < j; i++ {
			if v := f[i] + w(i, j); v < f[j] {
				f[j] = v
				pred[j] = i
			}
		}
	}
	return f, pred
}

// Chain reconstructs the optimal chain ending at n from predecessor links.
func Chain(pred []int) []int {
	var rev []int
	for j := len(pred) - 1; j > 0; j = pred[j] {
		rev = append(rev, j)
		if pred[j] < 0 {
			break
		}
	}
	rev = append(rev, 0)
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// LotSizePlan is the solution of an economic lot-size instance.
type LotSizePlan struct {
	// Cost is the optimal total cost.
	Cost float64
	// Orders lists the periods (1-based) in which production runs.
	Orders []int
}

// LotSize solves the economic lot-size model (Wagner-Whitin with
// nonspeculative costs, the [AP90] application): demand[t] units are due
// in period t+1; a production run in period s costs setup[s-1] plus unit
// production, and inventory carried from period t to t+1 costs hold[t-1]
// per unit. The planning recurrence is a least-weight subsequence problem
// whose weight matrix is Monge, so LWS solves it in O(n lg n).
func LotSize(demand, setup, hold []float64) LotSizePlan {
	n := len(demand)
	if n == 0 {
		return LotSizePlan{}
	}
	// Prefix sums: D[t] = total demand of periods 1..t;
	// H[t] = cumulative holding rate from period 1 through t.
	D := make([]float64, n+1)
	H := make([]float64, n+1)
	for t := 1; t <= n; t++ {
		D[t] = D[t-1] + demand[t-1]
		rate := 0.0
		if t < n {
			rate = hold[t-1]
		}
		H[t] = H[t-1] + rate
	}
	// w(i, j): produce in period i+1 everything due in periods i+1..j.
	// The unit due in period t, produced in period i+1, pays the holding
	// rates of periods i+1..t-1, i.e. H[t-1] - H[i]; in prefix form
	// w(i,j) = setup[i] + (DH[j]-DH[i]) - H[i]*(D[j]-D[i]).
	DH := make([]float64, n+1)
	for t := 1; t <= n; t++ {
		DH[t] = DH[t-1] + demand[t-1]*H[t-1]
	}
	w := func(i, j int) float64 {
		return setup[i] + (DH[j] - DH[i]) - H[i]*(D[j]-D[i])
	}
	f, pred := LWS(n, w)
	plan := LotSizePlan{Cost: f[n]}
	chain := Chain(pred)
	for _, s := range chain[:len(chain)-1] {
		plan.Orders = append(plan.Orders, s+1)
	}
	return plan
}

// LotSizeBrute is the O(n^2) Wagner-Whitin reference.
func LotSizeBrute(demand, setup, hold []float64) LotSizePlan {
	n := len(demand)
	if n == 0 {
		return LotSizePlan{}
	}
	D := make([]float64, n+1)
	H := make([]float64, n+1)
	DH := make([]float64, n+1)
	for t := 1; t <= n; t++ {
		D[t] = D[t-1] + demand[t-1]
		rate := 0.0
		if t < n {
			rate = hold[t-1]
		}
		H[t] = H[t-1] + rate
		DH[t] = DH[t-1] + demand[t-1]*H[t-1]
	}
	w := func(i, j int) float64 {
		return setup[i] + (DH[j] - DH[i]) - H[i]*(D[j]-D[i])
	}
	f, pred := LWSBrute(n, w)
	plan := LotSizePlan{Cost: f[n]}
	chain := Chain(pred)
	for _, s := range chain[:len(chain)-1] {
		plan.Orders = append(plan.Orders, s+1)
	}
	return plan
}

// OptimalBST computes the cost of an optimal binary search tree over keys
// with the given access frequencies, using the Knuth-Yao quadrangle
// inequality speedup: the optimal root index is monotone in both interval
// endpoints, giving O(n^2) total time.
func OptimalBST(freq []float64) float64 {
	n := len(freq)
	if n == 0 {
		return 0
	}
	pre := make([]float64, n+1)
	for i, f := range freq {
		pre[i+1] = pre[i] + f
	}
	cost := make([][]float64, n+1)
	root := make([][]int, n+1)
	for i := range cost {
		cost[i] = make([]float64, n+1)
		root[i] = make([]int, n+1)
	}
	for i := 0; i < n; i++ {
		cost[i][i+1] = freq[i]
		root[i][i+1] = i
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length <= n; i++ {
			j := i + length
			lo, hi := root[i][j-1], root[i+1][j]
			best := math.Inf(1)
			bestR := lo
			for r := lo; r <= hi; r++ {
				v := cost[i][r] + cost[r+1][j]
				if v < best {
					best, bestR = v, r
				}
			}
			cost[i][j] = best + (pre[j] - pre[i])
			root[i][j] = bestR
		}
	}
	return cost[0][n]
}

// OptimalBSTBrute is the O(n^3) reference without root monotonicity.
func OptimalBSTBrute(freq []float64) float64 {
	n := len(freq)
	if n == 0 {
		return 0
	}
	pre := make([]float64, n+1)
	for i, f := range freq {
		pre[i+1] = pre[i] + f
	}
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, n+1)
	}
	for length := 1; length <= n; length++ {
		for i := 0; i+length <= n; i++ {
			j := i + length
			best := math.Inf(1)
			for r := i; r < j; r++ {
				v := cost[i][r] + cost[r+1][j]
				if v < best {
					best = v
				}
			}
			cost[i][j] = best + (pre[j] - pre[i])
		}
	}
	return cost[0][n]
}
