package hypercube

import (
	"testing"

	"monge/internal/obs"
)

// A freed Vec's storage must be recycled by the next checkout of the same
// element type, and a zero-semantics checkout (NewVec with nil init) must
// come back cleared.
func TestVecArenaRecyclesAndZeroes(t *testing.T) {
	m := New(Cube, 3)
	v := NewVec(m, func(p int) int { return p + 1 })
	v.Free()
	w := NewVec[int](m, nil)
	for p := 0; p < 8; p++ {
		if got := w.Get(p); got != 0 {
			t.Fatalf("recycled Vec not zeroed at %d: %d", p, got)
		}
	}
}

func TestVecArenaHitMissCounters(t *testing.T) {
	o := obs.NewObserver()
	m := New(Cube, 3)
	m.SetObserver(o)
	NewVec(m, func(p int) float64 { return float64(p) }).Free()
	NewVec[float64](m, nil)               // hit: 8 floats recycled
	NewVec(m, func(int) int { return 0 }) // miss: no int slice retained
	s := o.Snapshot()["hypercube"]
	if s.ArenaHits != 1 {
		t.Fatalf("ArenaHits = %d, want 1", s.ArenaHits)
	}
	if s.ArenaMisses < 1 {
		t.Fatalf("ArenaMisses = %d, want >= 1", s.ArenaMisses)
	}
	if want := int64(8 * 8); s.BytesRecycled != want {
		t.Fatalf("BytesRecycled = %d, want %d", s.BytesRecycled, want)
	}
}

func TestVecArenaResetReleases(t *testing.T) {
	m := New(Cube, 3)
	NewVec(m, func(p int) int { return p }).Free()
	m.Reset()
	o := obs.NewObserver()
	m.SetObserver(o)
	NewVec[int](m, nil)
	if s := o.Snapshot()["hypercube"]; s.ArenaHits != 0 {
		t.Fatalf("arena survived Reset: %d hits", s.ArenaHits)
	}
}

// Scan results must be identical whether or not the machine's buffers have
// been through the free list: a second identical run on a warm arena is
// the regression surface for stale-cell bugs.
func TestVecArenaWarmRunMatchesCold(t *testing.T) {
	run := func(m *Machine) []int {
		v := NewVec(m, func(p int) int { return p + 1 })
		tot := Scan(m, v, func(a, b int) int { return a + b })
		out := v.Snapshot()
		if got := tot.Get(0); got != 8*9/2 {
			t.Fatalf("total = %d, want 36", got)
		}
		tot.Free()
		v.Free()
		return out
	}
	m := New(Cube, 3)
	cold := run(m)
	warm := run(m)
	for p := range cold {
		if cold[p] != warm[p] {
			t.Fatalf("warm run diverged at %d: %d vs %d", p, cold[p], warm[p])
		}
	}
}

// Child machines recycled across Subcubes rounds must keep the accounting
// contract: counters identical run to run.
func TestVecArenaChildRecyclingAccounting(t *testing.T) {
	run := func() (int64, int64) {
		m := New(Cube, 4)
		for round := 0; round < 3; round++ {
			m.Subcubes(2, func(c int, sub *Machine) {
				v := NewVec(sub, func(p int) int { return p })
				Scan(sub, v, func(a, b int) int { return a + b }).Free()
				v.Free()
			})
		}
		return m.Time(), m.Comm()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("recycled-child accounting differs: (%d,%d) vs (%d,%d)", t1, c1, t2, c2)
	}
	if t1 == 0 || c1 == 0 {
		t.Fatal("no cost charged")
	}
}
