package hypercube

import (
	"math/rand"
	"testing"
)

func TestReverse(t *testing.T) {
	for d := 0; d <= 8; d++ {
		m := NewCube(d)
		m.SetFaults(nil) // this test pins clean charges
		v := NewVec(m, func(p int) int { return p * 3 })
		out := Reverse(m, v)
		n := m.Size()
		for p := 0; p < n; p++ {
			if out.Get(p) != (n-1-p)*3 {
				t.Fatalf("d=%d: Reverse[%d] = %d", d, p, out.Get(p))
			}
		}
		if d > 0 && m.Time() != int64(d) {
			t.Fatalf("Reverse must cost d steps, got %d", m.Time())
		}
	}
}

func TestMonotoneReadDec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		d := 3 + rng.Intn(5)
		m := NewCube(d)
		n := m.Size()
		src := NewVec(m, func(p int) int { return p*11 + 5 })
		// random NONINCREASING index vector
		idxs := make([]int, n)
		cur := n - 1
		for i := range idxs {
			if rng.Intn(3) == 0 && cur > 0 {
				cur -= rng.Intn(cur + 1)
			}
			idxs[i] = cur
		}
		idx := NewVec(m, func(p int) int { return idxs[p] })
		out := MonotoneReadDec(m, src, idx)
		for p := 0; p < n; p++ {
			if out.Get(p) != idxs[p]*11+5 {
				t.Fatalf("trial %d: read[%d] = %d, want src[%d]", trial, p, out.Get(p), idxs[p])
			}
		}
	}
}

func TestMonotoneReadDecConstant(t *testing.T) {
	m := NewCube(5)
	src := NewVec(m, func(p int) int { return p })
	idx := NewVec(m, func(p int) int { return 7 })
	out := MonotoneReadDec(m, src, idx)
	for p := 0; p < 32; p++ {
		if out.Get(p) != 7 {
			t.Fatalf("constant read failed at %d", p)
		}
	}
}

func TestRouteCollisionDetected(t *testing.T) {
	// A deliberately NON-monotone destination map must trip the
	// congestion assertion rather than deliver silently-wrong data.
	m := NewCube(4)
	defer func() {
		if recover() == nil {
			t.Skip("this particular non-monotone map routed without collision")
		}
	}()
	// Crossing routes: 0->15, 1->14, ..., 7->8 (strictly DECREASING dsts).
	Send(m,
		func(p int) bool { return p < 8 },
		func(p int) int { return p },
		func(p int) int { return 15 - p },
	)
}

func TestSubcubeWorkSums(t *testing.T) {
	m := NewCube(4)
	m.Subcubes(2, func(c int, sub *Machine) {
		sub.Local(1, func(int) {})
	})
	// 4 subcubes x 4 procs x 1 op = 16 work, but only max time = 1.
	if m.Work() != 16 || m.Time() != 1 {
		t.Fatalf("work %d (want 16), time %d (want 1)", m.Work(), m.Time())
	}
}
