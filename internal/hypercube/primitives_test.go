package hypercube

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScanSum(t *testing.T) {
	m := NewCube(5)
	v := NewVec(m, func(p int) int { return p + 1 })
	tot := Scan(m, v, func(a, b int) int { return a + b })
	for p := 0; p < 32; p++ {
		want := (p + 1) * (p + 2) / 2
		if v.Get(p) != want {
			t.Fatalf("prefix[%d] = %d, want %d", p, v.Get(p), want)
		}
		if tot.Get(p) != 32*33/2 {
			t.Fatalf("total at %d = %d", p, tot.Get(p))
		}
	}
}

func TestScanNonCommutativeOp(t *testing.T) {
	// String concatenation exposes operand-order bugs.
	m := NewCube(3)
	v := NewVec(m, func(p int) string { return string(rune('a' + p)) })
	Scan(m, v, func(a, b string) string { return a + b })
	if v.Get(7) != "abcdefgh" {
		t.Fatalf("prefix concat = %q", v.Get(7))
	}
	if v.Get(3) != "abcd" {
		t.Fatalf("prefix concat at 3 = %q", v.Get(3))
	}
}

func TestScanExclusive(t *testing.T) {
	m := NewCube(4)
	v := NewVec(m, func(p int) int { return 1 })
	tot := ScanExclusive(m, v, 0, func(a, b int) int { return a + b })
	for p := 0; p < 16; p++ {
		if v.Get(p) != p {
			t.Fatalf("exclusive[%d] = %d", p, v.Get(p))
		}
	}
	if tot.Get(5) != 16 {
		t.Fatal("total wrong")
	}
}

func TestShiftPrev(t *testing.T) {
	m := NewCube(4)
	v := NewVec(m, func(p int) int { return p * p })
	out := ShiftPrev(m, v, -7)
	if out.Get(0) != -7 {
		t.Fatalf("fill = %d", out.Get(0))
	}
	for p := 1; p < 16; p++ {
		if out.Get(p) != (p-1)*(p-1) {
			t.Fatalf("shift[%d] = %d", p, out.Get(p))
		}
	}
}

func TestSegScan(t *testing.T) {
	m := NewCube(3)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	heads := []bool{true, false, true, false, false, true, false, false}
	v := NewVec(m, func(p int) int { return vals[p] })
	h := NewVec(m, func(p int) bool { return heads[p] })
	SegScan(m, v, h, func(a, b int) int { return a + b })
	want := []int{1, 3, 3, 7, 12, 6, 13, 21}
	for p, w := range want {
		if v.Get(p) != w {
			t.Fatalf("segscan %v want %v", v.Snapshot(), want)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, src := range []int{0, 5, 15} {
		m := NewCube(4)
		v := NewVec(m, func(p int) int { return p * 100 })
		Broadcast(m, src, v)
		for p := 0; p < 16; p++ {
			if v.Get(p) != src*100 {
				t.Fatalf("broadcast from %d: proc %d has %d", src, p, v.Get(p))
			}
		}
	}
}

func TestReplicateLow(t *testing.T) {
	m := NewCube(5)
	v := NewVec(m, func(p int) int {
		if p < 8 {
			return 1000 + p
		}
		return -1
	})
	ReplicateLow(m, 3, v)
	for p := 0; p < 32; p++ {
		if v.Get(p) != 1000+p%8 {
			t.Fatalf("replicate: proc %d has %d", p, v.Get(p))
		}
	}
}

func TestAllGather(t *testing.T) {
	m := NewCube(4)
	v := NewVec(m, func(p int) int { return p })
	lists := AllGather(m, 2, v)
	for p := 0; p < 16; p++ {
		base := p &^ 3
		l := lists.Get(p)
		if len(l) != 4 {
			t.Fatalf("list len %d", len(l))
		}
		for i := 0; i < 4; i++ {
			if l[i] != base+i {
				t.Fatalf("proc %d list %v", p, l)
			}
		}
	}
}

func TestRouteMonotoneViaSend(t *testing.T) {
	m := NewCube(5)
	// every 3rd processor sends to processor 2*rank
	out := Send(m,
		func(p int) bool { return p%3 == 0 },
		func(p int) int { return p * 10 },
		func(p int) int { return (p / 3) * 2 },
	)
	for p := 0; p < 32; p++ {
		want := false
		if p%2 == 0 && p/2*3 < 32 {
			want = true
		}
		got := out.Get(p)
		if got.Ok != want {
			t.Fatalf("proc %d: ok=%v want %v", p, got.Ok, want)
		}
		if got.Ok && got.Val != (p/2*3)*10 {
			t.Fatalf("proc %d got %d", p, got.Val)
		}
	}
}

func TestSendOutOfRange(t *testing.T) {
	m := NewCube(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range destination should panic")
		}
	}()
	Send(m,
		func(p int) bool { return p == 0 },
		func(p int) int { return 1 },
		func(p int) int { return 9 },
	)
}

func TestConcentrate(t *testing.T) {
	m := NewCube(5)
	v := NewVec(m, func(p int) Opt[int] {
		if p%4 == 1 {
			return Some(p)
		}
		return Opt[int]{}
	})
	out, count := Concentrate(m, v)
	if count != 8 {
		t.Fatalf("count = %d", count)
	}
	for r := 0; r < 8; r++ {
		got := out.Get(r)
		if !got.Ok || got.Val != 4*r+1 {
			t.Fatalf("packed[%d] = %+v", r, got)
		}
	}
	for p := 8; p < 32; p++ {
		if out.Get(p).Ok {
			t.Fatalf("proc %d should be empty", p)
		}
	}
}

func TestMonotoneRead(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		d := 3 + rng.Intn(5)
		m := NewCube(d)
		n := m.Size()
		src := NewVec(m, func(p int) int { return p*7 + 1 })
		// random nondecreasing index vector
		idxs := make([]int, n)
		cur := 0
		for i := range idxs {
			if rng.Intn(3) == 0 && cur < n-1 {
				cur += 1 + rng.Intn(n-cur-1)
			}
			idxs[i] = cur
		}
		idx := NewVec(m, func(p int) int { return idxs[p] })
		out := MonotoneRead(m, src, idx)
		for p := 0; p < n; p++ {
			if out.Get(p) != idxs[p]*7+1 {
				t.Fatalf("trial %d: read[%d] = %d, want src[%d]=%d",
					trial, p, out.Get(p), idxs[p], idxs[p]*7+1)
			}
		}
	}
}

func TestMonotoneReadLogSteps(t *testing.T) {
	stepsFor := func(d int) int64 {
		m := NewCube(d)
		m.SetFaults(nil) // this test pins clean charges
		src := NewVec(m, func(p int) int { return p })
		idx := NewVec(m, func(p int) int { return p / 2 })
		MonotoneRead(m, src, idx)
		return m.Time()
	}
	s6, s12 := stepsFor(6), stepsFor(12)
	if s12 > 3*s6 {
		t.Fatalf("MonotoneRead not O(d): %d -> %d", s6, s12)
	}
}

func TestBitonicSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(6)
		m := NewCube(d)
		vals := make([]int, m.Size())
		for i := range vals {
			vals[i] = rng.Intn(1000)*64 + i // distinct keys
		}
		v := NewVec(m, func(p int) int { return vals[p] })
		BitonicSort(m, v, func(a, b int) bool { return a < b })
		got := v.Snapshot()
		want := append([]int(nil), vals...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sort mismatch at %d: %v", trial, i, got)
			}
		}
	}
}

func TestBitonicSortStepCount(t *testing.T) {
	m := NewCube(6)
	m.SetFaults(nil) // this test pins clean charges
	v := NewVec(m, func(p int) int { return -p })
	BitonicSort(m, v, func(a, b int) bool { return a < b })
	if m.Time() != 6*7/2 {
		t.Fatalf("bitonic steps = %d, want 21", m.Time())
	}
}

func TestQuickPrimitivesOnAllKinds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		vals := make([]int, 1<<d)
		for i := range vals {
			vals[i] = rng.Intn(100)
		}
		var ref []int
		for _, kind := range []Kind{Cube, CCC, Shuffle} {
			m := New(kind, d)
			v := NewVec(m, func(p int) int { return vals[p] })
			Scan(m, v, func(a, b int) int { return a + b })
			if ref == nil {
				ref = v.Snapshot()
				acc := 0
				for i, x := range vals {
					acc += x
					if ref[i] != acc {
						return false
					}
				}
			} else {
				s := v.Snapshot()
				for i := range ref {
					if s[i] != ref[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
