package hypercube

import (
	"reflect"
	"sync"
	"unsafe"

	"monge/internal/scratch"
)

// vecArena recycles Vec backing storage and child-machine shells between
// steps and between queries on one machine family. Slice free-lists are
// keyed by element type; Exchange, CondSwap and NewVec check slices out,
// Vec.Free returns them, and Machine.Reset releases everything. Children
// created by Subcubes/ParallelDo share the parent's arena, so a
// subproblem's route buffers feed the next subproblem.
//
// Zeroing contract: a checkout is cleared only when the caller exposes
// zero-value semantics (NewVec with nil init); Exchange and CondSwap
// overwrite every cell in their dispatch loop, so their checkouts skip
// the clear. Conformance and fuzz suites guard the distinction.
type vecArena struct {
	mu     sync.Mutex
	slices map[reflect.Type]any // *scratch.FreeList[T] per element type

	machines []*Machine
}

func newVecArena() *vecArena {
	return &vecArena{slices: make(map[reflect.Type]any)}
}

// release drops every retained slice and machine shell. Called by Reset.
func (ar *vecArena) release() {
	ar.mu.Lock()
	ar.slices = make(map[reflect.Type]any)
	ar.machines = nil
	ar.mu.Unlock()
}

func (ar *vecArena) getMachine() *Machine {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	n := len(ar.machines)
	if n == 0 {
		return nil
	}
	sub := ar.machines[n-1]
	ar.machines[n-1] = nil
	ar.machines = ar.machines[:n-1]
	return sub
}

func (ar *vecArena) putMachine(sub *Machine) {
	ar.mu.Lock()
	if len(ar.machines) < 64 {
		ar.machines = append(ar.machines, sub)
	}
	ar.mu.Unlock()
}

// vecScratch returns a slice of length n for machine m, recycled from the
// arena when possible. zero requests cleared contents; non-zeroed
// checkouts are only legal when the caller overwrites every cell before
// any read.
func vecScratch[T any](m *Machine, n int, zero bool) []T {
	ar := m.arena
	if ar == nil {
		return make([]T, n)
	}
	elem := unsafe.Sizeof(*new(T))
	key := reflect.TypeFor[T]()
	ar.mu.Lock()
	l, ok := ar.slices[key]
	if !ok {
		l = &scratch.FreeList[T]{}
		ar.slices[key] = l
	}
	fl := l.(*scratch.FreeList[T])
	s, hit := fl.Get(n, elem)
	ar.mu.Unlock()
	if c := m.obsC; c != nil {
		if hit {
			c.ArenaHits.Add(1)
			c.BytesRecycled.Add(int64(n) * int64(elem))
		} else {
			c.ArenaMisses.Add(1)
		}
	}
	if hit && zero {
		clear(s)
	}
	return s
}

// putVecScratch returns a slice to machine m's arena.
func putVecScratch[T any](m *Machine, s []T) {
	ar := m.arena
	if ar == nil || cap(s) == 0 {
		return
	}
	key := reflect.TypeFor[T]()
	ar.mu.Lock()
	if l, ok := ar.slices[key]; ok {
		l.(*scratch.FreeList[T]).Put(s)
	} else {
		fl := &scratch.FreeList[T]{}
		fl.Put(s)
		ar.slices[key] = fl
	}
	ar.mu.Unlock()
}

// Free returns the Vec's backing storage to its machine's arena for reuse
// by a later Vec of the same element type. The caller asserts the Vec is
// dead: Get/Set/Exchange on a freed Vec are invalid (Get panics on the
// nil slice). Free is optional — unfreed Vecs are garbage collected.
func (v *Vec[T]) Free() {
	if v == nil || v.m == nil || v.vals == nil {
		return
	}
	putVecScratch(v.m, v.vals)
	v.vals = nil
	v.m = nil
}
