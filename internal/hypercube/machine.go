// Package hypercube simulates the distributed-memory networks of Section 3
// of the paper: the hypercube itself plus its constant-degree relatives,
// the cube-connected cycles and the shuffle-exchange network.
//
// # Model
//
// A machine has 2^d processors, each with private local memory (the cells
// of Vec values). There is no shared memory: in one communication step
// every processor may exchange one value with its neighbour across a single
// hypercube dimension (Exchange); local computation steps touch only each
// processor's own cells (Local). This matches the paper's input model where
// a processor must receive both v[i] and w[j] before it can evaluate
// a[i,j].
//
// All algorithms in this repository are "normal": each step uses one
// dimension, and consecutive steps use adjacent dimensions. Normal
// algorithms run on the cube-connected cycles and the shuffle-exchange
// network with constant-factor slowdown (Leighton; [LLS89]); the CCC and
// shuffle-exchange machine kinds execute the same data movement while
// charging the emulation cost: a shuffle-exchange exchange on dimension t
// costs one shuffle per dimension of misalignment plus the exchange itself,
// and the CCC charges the cycle rotation that brings the cube edge into
// position. Time counters therefore reproduce the "hypercube, etc." rows
// of Tables 1.1-1.3.
//
// # Robustness
//
// SetContext attaches a context polled at every charged step: cancellation
// throws merr.ErrCanceled, recoverable at the public error-returning APIs,
// and the worker pool drains without executing further chunks. SetFaults
// attaches a faults.Injector (the environment-configured faults.Global by
// default): local steps suffer recoverable chunk stalls and superstep
// timeouts, and every Exchange/CondSwap suffers per-link message drops and
// garbles that the simulated protocol detects (receiver timeout / checksum)
// and repairs by retransmission with exponential backoff. Recoveries are
// charged to the time and communication counters — the step completes when
// its slowest link completes — while the delivered data is exact, so all
// algorithms return identical index vectors under any fault schedule.
// Children created by Subcubes and ParallelDo inherit both.
package hypercube

import (
	"context"
	"fmt"
	"time"

	"monge/internal/exec"
	"monge/internal/faults"
	"monge/internal/merr"
	"monge/internal/obs"
)

// Kind selects the interconnection network being simulated.
type Kind int

const (
	// Cube is the binary hypercube: 2^d nodes, d neighbours each.
	Cube Kind = iota
	// CCC is the cube-connected cycles network: each hypercube node is a
	// d-cycle; normal algorithms run with constant slowdown.
	CCC
	// Shuffle is the shuffle-exchange network: exchange edges plus the
	// perfect-shuffle permutation; normal algorithms run with constant
	// slowdown.
	Shuffle
)

// String names the network kind.
func (k Kind) String() string {
	switch k {
	case Cube:
		return "hypercube"
	case CCC:
		return "cube-connected-cycles"
	case Shuffle:
		return "shuffle-exchange"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Machine simulates a 2^d-processor network of the given kind.
type Machine struct {
	kind Kind
	d    int
	n    int

	time  int64 // charged step count (local + communication + emulation)
	comm  int64 // values exchanged (communication volume)
	local int64 // local operation count (work)

	// align is the hypercube dimension currently adjacent to the
	// shuffle-exchange / CCC "active" position; misaligned exchanges pay
	// rotation steps.
	align    int
	hasAlign bool

	// pool executes the per-processor loops of every step; ownPool marks a
	// private pool installed by SetWorkers, which Reset shuts down. sink,
	// when non-nil, receives one instrumentation record per charged step.
	// Child machines created by Subcubes and ParallelDo inherit both.
	pool    *exec.Pool
	ownPool bool
	sink    exec.Sink
	// obsC and tracer are the observability handles (nil when the layer
	// is off): obsC is the counter site named after the network kind,
	// tracer records one wall-clock span per charged step. Captured from
	// obs.Global at creation; children inherit both.
	obsC   *obs.Counters
	tracer *obs.Tracer

	// stepID numbers the charged steps for the fault injector's hash keys.
	stepID int64
	// ctx, when non-nil, is polled at step boundaries; cancellation throws
	// merr.ErrCanceled. faults, when enabled, injects stalls, timeouts, and
	// link faults. Children inherit both.
	ctx    context.Context
	faults *faults.Injector

	// arena recycles Vec storage and child shells (see arena.go); children
	// share the parent's, Reset releases it.
	arena *vecArena
}

// New returns a machine of the given kind with 2^d processors, running on
// the shared exec.Default worker pool and attached to the process-wide
// instrumentation sink if one is installed.
func New(kind Kind, d int) *Machine {
	if d < 0 {
		merr.Throwf(merr.ErrDimensionMismatch, "hypercube: negative dimension %d", d)
	}
	m := &Machine{
		kind: kind, d: d, n: 1 << d,
		pool: exec.Default(), sink: exec.GlobalSink(), faults: faults.Global(),
		arena: newVecArena(),
	}
	if o := obs.Global(); o != nil {
		m.obsC = o.Site(kind.String())
		m.tracer = o.Tracer()
	}
	return m
}

// child returns a machine for a recursive subproblem: the given kind and
// dimension with the parent's pool and sink, keeping recursion on the
// persistent runtime and in the trace. The shell is recycled from the
// parent's arena when possible; Subcubes/ParallelDo return it via
// releaseChild once the branch accounting is harvested.
func (m *Machine) child(kind Kind, d int) *Machine {
	if ar := m.arena; ar != nil && d >= 0 {
		if sub := ar.getMachine(); sub != nil {
			sub.kind = kind
			sub.d, sub.n = d, 1<<d
			sub.time, sub.comm, sub.local, sub.stepID = 0, 0, 0, 0
			sub.align, sub.hasAlign = 0, false
			sub.pool, sub.ownPool = m.pool, false
			sub.sink = m.sink
			sub.obsC, sub.tracer = m.obsC, m.tracer
			sub.ctx, sub.faults = m.ctx, m.faults
			sub.arena = ar
			return sub
		}
	}
	sub := New(kind, d)
	sub.pool = m.pool
	sub.sink = m.sink
	sub.obsC = m.obsC
	sub.tracer = m.tracer
	sub.ctx = m.ctx
	sub.faults = m.faults
	sub.arena = m.arena
	return sub
}

// releaseChild retains a finished branch machine for reuse. Vecs created
// on the branch stay readable (recycling never touches their cells).
func (m *Machine) releaseChild(sub *Machine) {
	if m.arena != nil && !sub.ownPool {
		m.arena.putMachine(sub)
	}
}

// SetWorkers installs a private worker pool with the given worker count,
// replacing the shared default. Outputs and charged costs are identical
// for any value (the runtime's chunking contract); the knob exists for
// determinism and overhead experiments. A previous private pool is shut
// down.
func (m *Machine) SetWorkers(w int) {
	if m.ownPool {
		m.pool.Close()
	}
	m.pool = exec.NewPool(w)
	m.ownPool = true
}

// Workers returns the worker count of the machine's pool.
func (m *Machine) Workers() int { return m.pool.Workers() }

// SetSink attaches an instrumentation sink receiving one record per
// charged step (nil detaches). Subcubes and ParallelDo children inherit it.
func (m *Machine) SetSink(s exec.Sink) { m.sink = s }

// SetObserver attaches the machine to an observability layer: the
// counter site named after its network kind and, if tracing is enabled
// on o, the span tracer (nil detaches both). Children inherit the
// handles.
func (m *Machine) SetObserver(o *obs.Observer) {
	m.obsC = o.Site(m.kind.String())
	m.tracer = o.Tracer()
}

// TraceSpan opens a driver-level span (an algorithm phase such as
// "RowMinima") on the machine's tracer and returns its closer; callers
// use `defer mach.TraceSpan("hcmonge", "RowMinima")()`. A no-op closure
// is returned when tracing is off.
func (m *Machine) TraceSpan(site, name string) func() {
	tr := m.tracer
	if tr == nil {
		return func() {}
	}
	t0 := tr.Begin()
	return func() { tr.End(site, name, t0, 0, 0, 0) }
}

// SetContext attaches a context polled at every charged step: once it is
// cancelled the next step throws merr.ErrCanceled (also matching the
// context's own error), which the public error-returning APIs recover. Nil
// detaches. Subcubes and ParallelDo children inherit it.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// Context returns the attached context (nil when none).
func (m *Machine) Context() context.Context { return m.ctx }

// SetFaults attaches a fault injector (nil disables injection). Machines
// start with the environment-configured faults.Global injector; children
// inherit the parent's.
func (m *Machine) SetFaults(in *faults.Injector) { m.faults = in }

// Faults returns the attached fault injector (nil when none).
func (m *Machine) Faults() *faults.Injector { return m.faults }

// checkCtx throws merr.ErrCanceled if the attached context is done.
func (m *Machine) checkCtx() {
	if m.ctx != nil {
		if cause := m.ctx.Err(); cause != nil {
			merr.Throw(merr.Canceled(cause))
		}
	}
}

// dispatch runs one charged per-processor loop, taking the plain fast path
// when no context or injector is attached and the cancellable, stall-aware
// pool path otherwise. Stall recoveries re-execute one chunk each and are
// charged accordingly.
func (m *Machine) dispatch(n int, body func(p int)) int {
	if m.ctx == nil && !m.faults.Enabled() {
		return m.pool.For(n, body)
	}
	res, err := m.pool.Run(exec.Loop{
		N: n, Body: body, Ctx: m.ctx, Stall: m.faults.StallFn(m.stepID),
	})
	if err != nil {
		merr.Throw(merr.Canceled(err))
	}
	if res.Stalls > 0 {
		size, _ := exec.ChunkBounds(n)
		if size > n {
			size = n
		}
		m.time += res.Stalls
		m.local += int64(size) * res.Stalls
		if c := m.obsC; c != nil {
			c.FaultStalls.Add(res.Stalls)
		}
	}
	return res.Chunks
}

// linkFaultCharge simulates the fault-repair protocol of one communication
// step: for every processor's link message the injector decides how many
// deliveries are dropped (receiver timeout) or garbled (checksum failure)
// before the clean one; each failure is retransmitted, charged as extra
// communication volume, and the step's completion is delayed by the
// exponential backoff of its worst link. The delivered values are exact,
// so only the counters move.
func (m *Machine) linkFaultCharge() {
	if !m.faults.Enabled() {
		return
	}
	var extra, dropsTot, garblesTot int64
	maxRetry := 0
	for p := 0; p < m.n; p++ {
		drops, garbles := m.faults.LinkFaults(m.stepID, p)
		dropsTot += int64(drops)
		garblesTot += int64(garbles)
		if r := drops + garbles; r > 0 {
			extra += int64(r)
			if r > maxRetry {
				maxRetry = r
			}
		}
	}
	m.comm += extra
	m.time += faults.BackoffTime(maxRetry)
	if c := m.obsC; c != nil && extra > 0 {
		c.FaultDrops.Add(dropsTot)
		c.FaultGarbles.Add(garblesTot)
		// Retransmissions are extra traffic on the same links.
		c.LinkMessages.Add(extra)
		c.LinkBytes.Add(extra * obs.WordBytes)
	}
}

// record emits one instrumentation record if a sink is attached.
func (m *Machine) record(op string, n, cost, chunks int) {
	if m.sink != nil {
		m.sink.Record(exec.StepStats{Model: m.kind.String(), Op: op, N: n, Cost: cost, Chunks: chunks})
	}
}

// beginStep snapshots the charged counters and opens a wall-clock span
// for one charged step; finishStep closes both and emits the sink
// record. Every charge between the two calls — emulation rotations,
// stall recoveries, timeout re-runs, link backoff — lands in the step's
// ChargedTime/ChargedWork delta.
func (m *Machine) beginStep() (timeBefore, workBefore int64, spanStart time.Time) {
	if m.tracer != nil {
		spanStart = m.tracer.Begin()
	}
	return m.time, m.local, spanStart
}

func (m *Machine) finishStep(op string, n, cost, chunks int, timeBefore, workBefore int64, spanStart time.Time) {
	if c := m.obsC; c != nil {
		c.Supersteps.Add(1)
		c.ChargedTime.Add(m.time - timeBefore)
		c.ChargedWork.Add(m.local - workBefore)
		c.PoolChunks.Add(int64(chunks))
	}
	if m.tracer != nil {
		m.tracer.End(m.kind.String(), op, spanStart, n, cost, chunks)
	}
	m.record(op, n, cost, chunks)
}

// NewCube returns a hypercube with 2^d processors.
func NewCube(d int) *Machine { return New(Cube, d) }

// Kind returns the machine's network kind.
func (m *Machine) Kind() Kind { return m.kind }

// Dim returns d, the hypercube dimension.
func (m *Machine) Dim() int { return m.d }

// Size returns 2^d, the processor count.
func (m *Machine) Size() int { return m.n }

// Time returns the charged parallel step count.
func (m *Machine) Time() int64 { return m.time }

// Comm returns the number of values exchanged across edges.
func (m *Machine) Comm() int64 { return m.comm }

// Work returns the total local-operation count.
func (m *Machine) Work() int64 { return m.local }

// Reset clears the counters, releases the scratch arena to the garbage
// collector, and shuts down the machine's private pool, if any (it
// restarts lazily on the next step; the shared default pool is left
// running for other machines).
func (m *Machine) Reset() {
	m.time, m.comm, m.local = 0, 0, 0
	m.hasAlign = false
	if m.arena != nil {
		m.arena.release()
	}
	if m.ownPool {
		m.pool.Close()
	}
}

// Local executes one local superstep: body(p) runs on every processor p,
// touching only processor p's cells. cost is the number of elementary
// operations each processor performs (>= 1).
func (m *Machine) Local(cost int, body func(p int)) {
	if cost < 1 {
		cost = 1
	}
	m.checkCtx()
	m.stepID++
	timeBefore, workBefore, spanStart := m.beginStep()
	m.time += int64(cost)
	m.local += int64(cost) * int64(m.n)
	chunks := m.dispatch(m.n, body)
	if t := m.faults.StepTimeouts(m.stepID); t > 0 {
		m.time += int64(t) * int64(cost)
		m.local += int64(t) * int64(cost) * int64(m.n)
		if c := m.obsC; c != nil {
			c.FaultTimeouts.Add(int64(t))
		}
	}
	m.finishStep("local", m.n, cost, chunks, timeBefore, workBefore, spanStart)
}

// exchangeCharge accounts for one exchange over dimension dim under the
// network's emulation model and returns nothing; the caller moves the data.
func (m *Machine) exchangeCharge(dim int) {
	if dim < 0 || dim >= m.d {
		merr.Throwf(merr.ErrDimensionMismatch,
			"hypercube: exchange on dimension %d of a %d-cube", dim, m.d)
	}
	m.checkCtx()
	m.stepID++
	switch m.kind {
	case Cube:
		m.time++
	case Shuffle, CCC:
		// Rotations needed to bring dim into the exchange position; normal
		// algorithms pay exactly one per step.
		rot := 0
		if m.hasAlign {
			fwd := (dim - m.align + m.d) % m.d
			bwd := (m.align - dim + m.d) % m.d
			rot = fwd
			if bwd < rot {
				rot = bwd
			}
		}
		m.align = dim
		m.hasAlign = true
		m.time += int64(rot) + 1
		if m.kind == CCC {
			m.time++ // the cycle hop onto the cube edge
		}
	}
	m.comm += int64(m.n)
	if c := m.obsC; c != nil {
		c.LinkMessages.Add(int64(m.n))
		c.LinkBytes.Add(int64(m.n) * obs.WordBytes)
	}
	m.linkFaultCharge()
}

// Subcubes partitions the machine into 2^k complete sub-hypercubes of
// dimension d-k (fixing the high k address bits) and runs body on each; the
// parent is charged the maximum child time (the subcubes operate
// simultaneously) and the summed work. Subcube c comprises parent
// processors c*2^(d-k) .. (c+1)*2^(d-k)-1; the body addresses them by their
// low d-k bits. This realises the paper's requirement that recursive
// subproblems be assigned to complete sub-hypercubes (Theorem 3.2).
func (m *Machine) Subcubes(k int, body func(c int, sub *Machine)) {
	if k < 0 || k > m.d {
		merr.Throwf(merr.ErrDimensionMismatch, "hypercube: Subcubes(%d) of a %d-cube", k, m.d)
	}
	var maxTime int64
	var sumComm, sumLocal int64
	for c := 0; c < 1<<k; c++ {
		sub := m.child(m.kind, m.d-k)
		body(c, sub)
		if sub.time > maxTime {
			maxTime = sub.time
		}
		sumComm += sub.comm
		sumLocal += sub.local
		m.releaseChild(sub)
	}
	m.time += maxTime
	m.comm += sumComm
	m.local += sumLocal
}

// ParallelDo composes independent sub-computations running simultaneously
// on disjoint processor groups: branch b runs on a fresh machine of
// dimension dims[b] and the same network kind. The parent is charged the
// maximum branch time and the summed work and communication, mirroring
// pram.ParallelDo. Branch data must first be routed into position on the
// parent (charged), after which identifying branch processors with a group
// of parent processors is pure relabelling.
func (m *Machine) ParallelDo(dims []int, body func(b int, sub *Machine)) {
	var maxTime, sumComm, sumLocal int64
	for b := range dims {
		sub := m.child(m.kind, dims[b])
		body(b, sub)
		if sub.time > maxTime {
			maxTime = sub.time
		}
		sumComm += sub.comm
		sumLocal += sub.local
		m.releaseChild(sub)
	}
	m.time += maxTime
	m.comm += sumComm
	m.local += sumLocal
}

// Vec is one local memory cell per processor.
type Vec[T any] struct {
	m    *Machine
	vals []T
}

// NewVec allocates a cell on every processor, initialised by init (nil
// gives zero values). Initialisation is input placement and costs nothing.
// Storage is recycled from the machine's arena when a freed Vec of the
// same element type fits.
func NewVec[T any](m *Machine, init func(p int) T) *Vec[T] {
	v := &Vec[T]{m: m, vals: vecScratch[T](m, m.n, init == nil)}
	if init != nil {
		for p := range v.vals {
			v.vals[p] = init(p)
		}
	}
	return v
}

// Get returns processor p's cell. Algorithm bodies must call it only with
// their own processor index (local memory!); cross-processor reads must go
// through Exchange.
func (v *Vec[T]) Get(p int) T { return v.vals[p] }

// Set assigns processor p's cell, with the same locality obligation.
func (v *Vec[T]) Set(p int, x T) { v.vals[p] = x }

// Snapshot copies all cells out (verification only).
func (v *Vec[T]) Snapshot() []T {
	out := make([]T, len(v.vals))
	copy(out, v.vals)
	return out
}

// Exchange performs one communication step across dimension dim: it
// returns a fresh Vec holding, at each processor p, the value the
// neighbour p XOR 2^dim held in v. One charged step (plus emulation
// overhead on CCC / shuffle-exchange).
func Exchange[T any](m *Machine, dim int, v *Vec[T]) *Vec[T] {
	timeBefore, workBefore, spanStart := m.beginStep()
	m.exchangeCharge(dim)
	out := &Vec[T]{m: m, vals: vecScratch[T](m, m.n, false)} // fully overwritten below
	mask := 1 << dim
	chunks := m.dispatch(m.n, func(p int) {
		out.vals[p] = v.vals[p^mask]
	})
	m.finishStep("exchange", m.n, 1, chunks, timeBefore, workBefore, spanStart)
	return out
}

// CondSwap performs one compare-exchange step across dimension dim:
// neighbours p < q = p XOR 2^dim exchange values, and keep(p, mine, theirs)
// decides what p retains. It is the building block of bitonic sorting. One
// charged step.
func CondSwap[T any](m *Machine, dim int, v *Vec[T], keep func(p int, mine, theirs T) T) {
	timeBefore, workBefore, spanStart := m.beginStep()
	m.exchangeCharge(dim)
	mask := 1 << dim
	next := vecScratch[T](m, m.n, false) // fully overwritten below
	chunks := m.dispatch(m.n, func(p int) {
		next[p] = keep(p, v.vals[p], v.vals[p^mask])
	})
	m.finishStep("exchange", m.n, 1, chunks, timeBefore, workBefore, spanStart)
	old := v.vals
	v.vals = next
	putVecScratch(m, old)
}
