package hypercube

import (
	"fmt"

	"monge/internal/merr"
)

// This file provides the normal-algorithm building blocks of [LLS89] used
// by Section 3 of the paper: parallel prefix (plain, exclusive, and
// segmented), broadcast, all-gather, bitonic sorting, monotone (isotone)
// routing, and monotone reads. Every primitive uses one dimension per
// step, so all of them run on the CCC and shuffle-exchange adapters with
// constant-factor slowdown.

// Opt is a possibly-absent local value, used by routing primitives.
type Opt[T any] struct {
	Val T
	Ok  bool
}

// Some wraps a present value.
func Some[T any](v T) Opt[T] { return Opt[T]{Val: v, Ok: true} }

// Scan replaces v with its inclusive prefix combination under the
// associative op and returns a Vec in which every processor holds the
// total. d communication steps.
func Scan[T any](m *Machine, v *Vec[T], op func(T, T) T) *Vec[T] {
	tot := NewVec(m, func(p int) T { return v.Get(p) })
	for k := 0; k < m.d; k++ {
		ntot := Exchange(m, k, tot)
		bit := 1 << k
		m.Local(1, func(p int) {
			if p&bit != 0 {
				v.Set(p, op(ntot.Get(p), v.Get(p)))
				tot.Set(p, op(ntot.Get(p), tot.Get(p)))
			} else {
				tot.Set(p, op(tot.Get(p), ntot.Get(p)))
			}
		})
		ntot.Free()
	}
	return tot
}

// ScanExclusive writes into v the exclusive prefix combination (identity at
// processor 0) and returns the total Vec.
func ScanExclusive[T any](m *Machine, v *Vec[T], identity T, op func(T, T) T) *Vec[T] {
	tot := NewVec(m, func(p int) T { return v.Get(p) })
	pre := NewVec(m, func(int) T { return identity })
	for k := 0; k < m.d; k++ {
		ntot := Exchange(m, k, tot)
		bit := 1 << k
		m.Local(1, func(p int) {
			if p&bit != 0 {
				pre.Set(p, op(ntot.Get(p), pre.Get(p)))
				tot.Set(p, op(ntot.Get(p), tot.Get(p)))
			} else {
				tot.Set(p, op(tot.Get(p), ntot.Get(p)))
			}
		})
		ntot.Free()
	}
	m.Local(1, func(p int) { v.Set(p, pre.Get(p)) })
	pre.Free()
	return tot
}

// ShiftPrev returns a Vec holding, at each processor p > 0, the value
// processor p-1 held in v, and fill at processor 0. It is the exclusive
// scan under the take-rightmost-present operation (Opt-wrapped, since
// take-right has no identity value).
func ShiftPrev[T any](m *Machine, v *Vec[T], fill T) *Vec[T] {
	out := NewVec(m, func(p int) Opt[T] { return Some(v.Get(p)) })
	ScanExclusive(m, out, Opt[T]{}, func(a, b Opt[T]) Opt[T] {
		if b.Ok {
			return b
		}
		return a
	}).Free()
	res := NewVec(m, func(p int) T {
		if o := out.Get(p); o.Ok {
			return o.Val
		}
		return fill
	})
	out.Free()
	return res
}

// segPair carries a segmented-scan state.
type segPair[T any] struct {
	val  T
	head bool
}

// SegScan replaces v with its inclusive segmented prefix combination:
// positions where head holds true start a new segment.
func SegScan[T any](m *Machine, v *Vec[T], head *Vec[bool], op func(T, T) T) {
	pairs := NewVec(m, func(p int) segPair[T] {
		return segPair[T]{val: v.Get(p), head: head.Get(p)}
	})
	Scan(m, pairs, func(a, b segPair[T]) segPair[T] {
		if b.head {
			return segPair[T]{val: b.val, head: true}
		}
		return segPair[T]{val: op(a.val, b.val), head: a.head}
	}).Free()
	m.Local(1, func(p int) { v.Set(p, pairs.Get(p).val) })
	pairs.Free()
}

// Broadcast spreads the value processor src holds in v to every processor.
// d communication steps.
func Broadcast[T any](m *Machine, src int, v *Vec[T]) {
	cur := NewVec(m, func(p int) Opt[T] {
		if p == src {
			return Some(v.Get(p))
		}
		return Opt[T]{}
	})
	for k := 0; k < m.d; k++ {
		ex := Exchange(m, k, cur)
		m.Local(1, func(p int) {
			if !cur.Get(p).Ok && ex.Get(p).Ok {
				cur.Set(p, ex.Get(p))
			}
		})
		ex.Free()
	}
	m.Local(1, func(p int) { v.Set(p, cur.Get(p).Val) })
	cur.Free()
}

// ReplicateLow copies the value held by the processor with the same low
// lowBits address bits in the lowest subcube (high bits zero) to every
// processor: after the call, processor p holds v[p mod 2^lowBits]. Used to
// replicate a small table into every subcube. d - lowBits steps.
func ReplicateLow[T any](m *Machine, lowBits int, v *Vec[T]) {
	for k := lowBits; k < m.d; k++ {
		ex := Exchange(m, k, v)
		bit := 1 << k
		m.Local(1, func(p int) {
			if p&bit != 0 {
				v.Set(p, ex.Get(p))
			}
		})
		ex.Free()
	}
}

// AllGather returns, at every processor of each 2^k-processor subcube, the
// slice of all values held within that subcube, ordered by processor
// index. Communication grows the lists dimension by dimension; intended
// for small subcubes (base cases).
func AllGather[T any](m *Machine, k int, v *Vec[T]) *Vec[[]T] {
	lists := NewVec(m, func(p int) []T { return []T{v.Get(p)} })
	for dim := 0; dim < k; dim++ {
		ex := Exchange(m, dim, lists)
		bit := 1 << dim
		m.Local(1<<dim, func(p int) {
			mine, theirs := lists.Get(p), ex.Get(p)
			merged := make([]T, 0, len(mine)+len(theirs))
			if p&bit == 0 {
				merged = append(append(merged, mine...), theirs...)
			} else {
				merged = append(append(merged, theirs...), mine...)
			}
			lists.Set(p, merged)
		})
		ex.Free()
	}
	return lists
}

// routeItem is a value in flight with its destination processor.
type routeItem[T any] struct {
	val T
	dst int
}

// routeBits performs greedy bit-fixing routing over all dimensions, in
// ascending order when ascending is true, else descending. Collisions
// panic: the callers only invoke it in the provably congestion-free
// patterns (Nassimi-Sahni): concentration fixes bits LSB to MSB,
// distribution MSB to LSB.
func routeBits[T any](m *Machine, items *Vec[Opt[routeItem[T]]], ascending bool) *Vec[Opt[routeItem[T]]] {
	cur := NewVec(m, func(p int) Opt[routeItem[T]] { return items.Get(p) })
	for step := 0; step < m.d; step++ {
		k := step
		if !ascending {
			k = m.d - 1 - step
		}
		ex := Exchange(m, k, cur)
		bit := 1 << k
		m.Local(1, func(p int) {
			mine := cur.Get(p)
			if mine.Ok && mine.Val.dst&bit != p&bit {
				mine = Opt[routeItem[T]]{} // departs across dimension k
			}
			in := ex.Get(p)
			if in.Ok && in.Val.dst&bit == p&bit {
				if mine.Ok {
					// Invariant violation on a worker goroutine: must stay a
					// panic (merr.Throw is caller-goroutine only).
					panic(fmt.Sprintf("monge: hypercube: routing collision at processor %d, dim %d", p, k))
				}
				mine = in
			}
			cur.Set(p, mine)
		})
		ex.Free()
	}
	m.pool.For(m.n, func(p int) {
		if it := cur.Get(p); it.Ok && it.Val.dst != p {
			panic(fmt.Sprintf("monge: hypercube: item for %d stranded at %d", it.Val.dst, p))
		}
	})
	return cur
}

// RouteMonotone delivers the present items to their destinations. The
// destination map must be strictly increasing on the set of holders (the
// isotone-routing setting of [LLS89] / Lemma 3.1). Implemented as a
// concentration (rank the items by a prefix sum and pack them LSB-first)
// followed by a distribution (MSB-first), both congestion-free; 3d
// communication steps total. Returns a Vec with the delivered items.
func RouteMonotone[T any](m *Machine, items *Vec[Opt[routeItem[T]]]) *Vec[Opt[T]] {
	ranks := NewVec(m, func(p int) int {
		if items.Get(p).Ok {
			return 1
		}
		return 0
	})
	Scan(m, ranks, func(a, b int) int { return a + b }).Free()
	// Concentration: send each item to its rank-1 slot, keeping its final
	// destination as payload.
	packedIn := NewVec(m, func(p int) Opt[routeItem[routeItem[T]]] {
		it := items.Get(p)
		if !it.Ok {
			return Opt[routeItem[routeItem[T]]]{}
		}
		return Some(routeItem[routeItem[T]]{val: it.Val, dst: ranks.Get(p) - 1})
	})
	ranks.Free()
	packed := routeBits(m, packedIn, true)
	packedIn.Free()
	// Distribution: from the packed prefix to the increasing destinations.
	spreadIn := NewVec(m, func(p int) Opt[routeItem[T]] {
		it := packed.Get(p)
		if !it.Ok {
			return Opt[routeItem[T]]{}
		}
		return Some(it.Val.val)
	})
	packed.Free()
	final := routeBits(m, spreadIn, false)
	spreadIn.Free()
	out := NewVec(m, func(p int) Opt[T] {
		it := final.Get(p)
		if !it.Ok {
			return Opt[T]{}
		}
		return Some(it.Val.val)
	})
	final.Free()
	return out
}

// Send wraps per-processor optional payloads and destinations for
// RouteMonotone: processor p contributes val(p) to dst(p) when has(p).
func Send[T any](m *Machine, has func(p int) bool, val func(p int) T, dst func(p int) int) *Vec[Opt[T]] {
	items := NewVec(m, func(p int) Opt[routeItem[T]] {
		if !has(p) {
			return Opt[routeItem[T]]{}
		}
		d := dst(p)
		if d < 0 || d >= m.n {
			merr.Throwf(merr.ErrDimensionMismatch,
				"hypercube: destination %d out of range for %d processors", d, m.n)
		}
		return Some(routeItem[T]{val: val(p), dst: d})
	})
	out := RouteMonotone(m, items)
	items.Free()
	return out
}

// Concentrate packs the present values to the lowest-numbered processors,
// preserving order, and returns the packed Vec and the total count (known
// to every processor). O(d) steps: a prefix sum computes ranks, then a
// monotone route delivers.
func Concentrate[T any](m *Machine, v *Vec[Opt[T]]) (*Vec[Opt[T]], int) {
	ranks := NewVec(m, func(p int) int {
		if v.Get(p).Ok {
			return 1
		}
		return 0
	})
	tot := Scan(m, ranks, func(a, b int) int { return a + b })
	items := NewVec(m, func(p int) Opt[routeItem[T]] {
		if !v.Get(p).Ok {
			return Opt[routeItem[T]]{}
		}
		return Some(routeItem[T]{val: v.Get(p).Val, dst: ranks.Get(p) - 1})
	})
	ranks.Free()
	routed := routeBits(m, items, true)
	items.Free()
	out := NewVec(m, func(p int) Opt[T] {
		it := routed.Get(p)
		if !it.Ok {
			return Opt[T]{}
		}
		return Some(it.Val.val)
	})
	routed.Free()
	n := tot.Get(0)
	tot.Free()
	return out, n
}

// MonotoneRead returns, at every processor p, the value src[idx(p)], where
// idx must be nondecreasing in p. O(d) steps: segment leaders (where idx
// changes) fetch the distinct values by a routed request/reply round trip,
// then a segmented copy spreads them. This is the read counterpart of
// isotone routing used by Lemma 3.1's data distribution.
func MonotoneRead[T any](m *Machine, src *Vec[T], idx *Vec[int]) *Vec[T] {
	prev := ShiftPrev(m, idx, -1)
	leader := NewVec(m, func(p int) bool { return idx.Get(p) != prev.Get(p) })
	prev.Free()
	// Request round: leaders send their own address to the source cell.
	reqs := Send(m,
		func(p int) bool { return leader.Get(p) },
		func(p int) int { return p },
		func(p int) int { return idx.Get(p) },
	)
	// Reply round: source cells send their value back to the requester.
	reps := Send(m,
		func(p int) bool { return reqs.Get(p).Ok },
		func(p int) T { return src.Get(p) },
		func(p int) int { return reqs.Get(p).Val },
	)
	reqs.Free()
	// Spread within segments.
	vals := NewVec(m, func(p int) Opt[T] { return reps.Get(p) })
	reps.Free()
	SegScan(m, vals, leader, func(a, b Opt[T]) Opt[T] {
		if b.Ok {
			return b
		}
		return a
	})
	leader.Free()
	out := NewVec(m, func(p int) T { return vals.Get(p).Val })
	vals.Free()
	return out
}

// Reverse returns a Vec holding v in reversed processor order:
// out[p] = v[n-1-p]. Index reversal is the all-dimensions bit complement,
// realised as one exchange per dimension (d steps).
func Reverse[T any](m *Machine, v *Vec[T]) *Vec[T] {
	out := NewVec(m, func(p int) T { return v.Get(p) })
	for k := 0; k < m.d; k++ {
		next := Exchange(m, k, out)
		out.Free()
		out = next
	}
	return out
}

// MonotoneReadDec is MonotoneRead for NONINCREASING index vectors: it
// reverses the source (d steps) and reads with the complemented, hence
// nondecreasing, indices.
func MonotoneReadDec[T any](m *Machine, src *Vec[T], idx *Vec[int]) *Vec[T] {
	rsrc := Reverse(m, src)
	ridx := NewVec(m, func(p int) int { return m.n - 1 - idx.Get(p) })
	out := MonotoneRead(m, rsrc, ridx)
	rsrc.Free()
	ridx.Free()
	return out
}

// BitonicSort sorts the n values of v in nondecreasing order under less
// (which must be a strict total order for determinism). The classic
// bitonic network: d(d+1)/2 compare-exchange steps, each on one dimension,
// hence normal.
func BitonicSort[T any](m *Machine, v *Vec[T], less func(a, b T) bool) {
	for k := 0; k < m.d; k++ {
		for j := k; j >= 0; j-- {
			bitJ := 1 << j
			ascMask := 1 << (k + 1)
			CondSwap(m, j, v, func(p int, mine, theirs T) T {
				asc := k == m.d-1 || p&ascMask == 0
				lowSide := p&bitJ == 0
				if lowSide == asc {
					// this side keeps the smaller value
					if less(theirs, mine) {
						return theirs
					}
					return mine
				}
				if less(mine, theirs) {
					return theirs
				}
				return mine
			})
		}
	}
}
