package hypercube

import (
	"testing"
)

func TestKindString(t *testing.T) {
	if Cube.String() != "hypercube" || CCC.String() != "cube-connected-cycles" ||
		Shuffle.String() != "shuffle-exchange" {
		t.Fatal("kind names wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestNewAndAccessors(t *testing.T) {
	m := NewCube(4)
	if m.Dim() != 4 || m.Size() != 16 || m.Kind() != Cube {
		t.Fatal("accessors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative dimension should panic")
		}
	}()
	New(Cube, -1)
}

func TestExchange(t *testing.T) {
	m := NewCube(3)
	v := NewVec(m, func(p int) int { return p })
	out := Exchange(m, 1, v)
	for p := 0; p < 8; p++ {
		if out.Get(p) != p^2 {
			t.Fatalf("exchange dim 1 at %d: got %d", p, out.Get(p))
		}
	}
	if m.Time() != 1 || m.Comm() != 8 {
		t.Fatalf("charges: time %d comm %d", m.Time(), m.Comm())
	}
}

func TestExchangeBadDim(t *testing.T) {
	m := NewCube(3)
	v := NewVec[int](m, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("bad dim should panic")
		}
	}()
	Exchange(m, 3, v)
}

func TestLocalCharges(t *testing.T) {
	m := NewCube(3)
	m.Local(5, func(p int) {})
	if m.Time() != 5 || m.Work() != 40 {
		t.Fatalf("time %d work %d", m.Time(), m.Work())
	}
	m.Reset()
	if m.Time() != 0 {
		t.Fatal("reset failed")
	}
}

func TestShuffleEmulationCharges(t *testing.T) {
	// A normal dimension sequence costs ~2 per step on the
	// shuffle-exchange network; the same sequence costs 1 per step on the
	// hypercube.
	run := func(kind Kind) int64 {
		m := New(kind, 6)
		m.SetFaults(nil) // this test pins clean charges
		v := NewVec(m, func(p int) int { return p })
		for k := 0; k < 6; k++ {
			v = Exchange(m, k, v)
		}
		return m.Time()
	}
	hc, se, ccc := run(Cube), run(Shuffle), run(CCC)
	if hc != 6 {
		t.Fatalf("hypercube time %d, want 6", hc)
	}
	if se < hc+5 || se > 3*hc {
		t.Fatalf("shuffle-exchange emulation charge out of range: %d", se)
	}
	if ccc <= se-6 || ccc > 4*hc {
		t.Fatalf("CCC emulation charge out of range: %d", ccc)
	}
}

func TestShuffleNonNormalPaysMore(t *testing.T) {
	m := New(Shuffle, 6)
	m.SetFaults(nil) // this test pins clean charges
	v := NewVec(m, func(p int) int { return p })
	v = Exchange(m, 0, v)
	t0 := m.Time()
	v = Exchange(m, 3, v) // jump of 3 dims: 3 rotations + exchange
	if m.Time()-t0 != 4 {
		t.Fatalf("misaligned exchange charged %d, want 4", m.Time()-t0)
	}
	_ = v
}

func TestSameResultsAcrossKinds(t *testing.T) {
	// Data movement must be identical on all three networks.
	results := make([][]int, 0, 3)
	for _, kind := range []Kind{Cube, CCC, Shuffle} {
		m := New(kind, 5)
		v := NewVec(m, func(p int) int { return p * p })
		Scan(m, v, func(a, b int) int { return a + b })
		results = append(results, v.Snapshot())
	}
	for i := 1; i < 3; i++ {
		for p := range results[0] {
			if results[i][p] != results[0][p] {
				t.Fatalf("kind %d differs at %d", i, p)
			}
		}
	}
}

func TestSubcubes(t *testing.T) {
	m := NewCube(4)
	got := make([]int, 4)
	m.Subcubes(2, func(c int, sub *Machine) {
		if sub.Size() != 4 || sub.Dim() != 2 {
			t.Fatalf("subcube %d has size %d", c, sub.Size())
		}
		v := NewVec(sub, func(p int) int { return c*4 + p })
		Scan(sub, v, func(a, b int) int { return a + b })
		got[c] = v.Get(3)
	})
	for c := 0; c < 4; c++ {
		want := (c*4 + c*4 + 3) * 4 / 2
		if got[c] != want {
			t.Fatalf("subcube %d sum = %d, want %d", c, got[c], want)
		}
	}
	// Parent charged the max child time, not the sum.
	var single int64
	{
		s := NewCube(2)
		v := NewVec(s, func(p int) int { return p })
		Scan(s, v, func(a, b int) int { return a + b })
		single = s.Time()
	}
	if m.Time() != single {
		t.Fatalf("parent time %d, want max child %d", m.Time(), single)
	}
}

func TestSubcubesBadK(t *testing.T) {
	m := NewCube(3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad k should panic")
		}
	}()
	m.Subcubes(4, func(int, *Machine) {})
}

func TestCondSwap(t *testing.T) {
	m := NewCube(2)
	v := NewVec(m, func(p int) int { return []int{3, 1, 2, 0}[p] })
	// compare-exchange on dim 0, lower index keeps min
	CondSwap(m, 0, v, func(p int, mine, theirs int) int {
		if p&1 == 0 {
			if theirs < mine {
				return theirs
			}
			return mine
		}
		if mine < theirs {
			return theirs
		}
		return mine
	})
	want := []int{1, 3, 0, 2}
	for p, w := range want {
		if v.Get(p) != w {
			t.Fatalf("condswap: %v want %v", v.Snapshot(), want)
		}
	}
}

func TestVecSnapshotIsCopy(t *testing.T) {
	m := NewCube(2)
	v := NewVec(m, func(p int) int { return p })
	s := v.Snapshot()
	s[0] = 99
	if v.Get(0) == 99 {
		t.Fatal("snapshot must copy")
	}
}

func TestParallelDoNetworks(t *testing.T) {
	m := New(Shuffle, 4)
	m.ParallelDo([]int{2, 3}, func(b int, sub *Machine) {
		if sub.Kind() != Shuffle {
			t.Error("child kind must match parent")
		}
		v := NewVec(sub, func(p int) int { return p })
		Scan(sub, v, func(a, b int) int { return a + b })
	})
	if m.Time() == 0 || m.Comm() == 0 {
		t.Fatal("parent must be charged max time and summed comm")
	}
	// Max-time semantics: a single dim-3 scan costs at least as much as
	// the parent was charged.
	single := New(Shuffle, 3)
	v := NewVec(single, func(p int) int { return p })
	Scan(single, v, func(a, b int) int { return a + b })
	if m.Time() != single.Time() {
		t.Fatalf("parent time %d, want max branch %d", m.Time(), single.Time())
	}
}
