// Package exec is the shared execution runtime of the simulated machines:
// a persistent worker pool with deterministic chunk assignment, plus the
// instrumentation hooks (per-step counters exportable as JSON) that the
// benchmark harness consumes.
//
// # Why a shared runtime
//
// Both simulated machine families (the PRAM of internal/pram and the
// networks of internal/hypercube) execute every charged superstep as a
// data-parallel loop over virtual processors. Spawning a fresh goroutine
// set per superstep charges the simulator a scheduler round-trip on every
// one of the (often thousands of) tiny steps a recursion performs. The
// Pool here is started lazily once, keeps its workers parked on a job
// channel between steps, and is reused by every superstep of every
// machine that shares it — including the child machines that ParallelDo
// and Subcubes create for recursive subproblems, which inherit the
// parent's pool and sink instead of falling back to a private (or worse,
// sequential) runtime.
//
// # Dispatch
//
// A parallel loop is cut at the ChunkBounds boundaries and published to
// the workers as one shared descriptor; workers (and the calling
// goroutine, which always participates) claim chunks with an atomic
// counter. Publishing is a handful of non-blocking channel sends, so a
// loop costs O(workers) dispatch work regardless of its chunk count, and
// when every worker is busy — or the process has a single CPU — the
// caller simply executes all chunks itself at inline-loop speed.
//
// # Determinism contract
//
// Chunk boundaries are a pure function of the iteration count n (see
// ChunkBounds): they do not depend on the worker count or on GOMAXPROCS.
// Within a chunk, iterations run in increasing index order on a single
// goroutine. Which goroutine claims a chunk is scheduling-dependent, so
// loop bodies must be independent — which machine supersteps are by
// construction: all cross-processor writes are buffered and committed at
// the step barrier, never observed mid-step. Under that discipline the
// simulated outputs and every charged counter are identical for any
// worker count, which TestWorkerCountDeterminism pins down.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// serialCutoff is the loop size below which dispatching to the pool
	// costs more than it saves; such loops run inline on the caller.
	serialCutoff = 128
	// minChunk is the smallest chunk a claimant takes: small enough to
	// split the few-hundred-processor steps row-minima recursions produce,
	// large enough that a chunk amortizes its atomic claim.
	minChunk = 128
	// maxChunks bounds the number of chunks per loop so claim traffic
	// stays bounded even for huge steps.
	maxChunks = 256
)

// ChunkBounds returns the deterministic chunk size and chunk count for a
// loop of n iterations. Both are functions of n only — never of the worker
// count — so the runtime's chunk boundaries are reproducible across
// machines and GOMAXPROCS settings.
func ChunkBounds(n int) (size, count int) {
	if n <= 0 {
		return 0, 0
	}
	size = (n + maxChunks - 1) / maxChunks
	if size < minChunk {
		size = minChunk
	}
	count = (n + size - 1) / size
	return size, count
}

// job is one parallel loop, shared by every goroutine helping with it.
// Chunk k covers indices [k*size, min((k+1)*size, n)); claimants take the
// next unclaimed chunk by incrementing next.
type job struct {
	next *int64
	n    int
	size int
	body func(i int)
	wg   *sync.WaitGroup
}

// run claims and executes chunks until none remain. Safe to call from any
// number of goroutines; each chunk is executed exactly once.
func (j job) run() {
	for {
		k := atomic.AddInt64(j.next, 1) - 1
		lo := int(k) * j.size
		if lo >= j.n {
			return
		}
		hi := lo + j.size
		if hi > j.n {
			hi = j.n
		}
		for i := lo; i < hi; i++ {
			j.body(i)
		}
		j.wg.Done()
	}
}

// Pool is a persistent worker pool. The zero value is not usable; create
// pools with NewPool or share the process-wide Default pool. Workers start
// lazily on the first parallel loop and park on the job channel between
// steps; Close stops them (idempotently), and a closed pool restarts
// lazily if used again, so Machine.Reset can shut the pool down without
// poisoning later runs.
type Pool struct {
	workers int

	// mu protects jobs: For holds the read side while publishing so that a
	// concurrent Close (write side) can never close the channel mid-send.
	mu   sync.RWMutex
	jobs chan job
}

// NewPool returns a pool with the given number of workers (values < 1 are
// clamped to 1; a one-worker pool runs every loop inline). The workers are
// not started until the first use. A finalizer closes the pool when it
// becomes unreachable, so abandoned machines cannot leak parked goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	// Workers hold only the job channel, not *Pool, so an unreachable pool
	// is collectable and its finalizer can release the parked goroutines.
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, sized by GOMAXPROCS at
// first use. Machines created without an explicit pool run on it.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = &Pool{workers: runtime.GOMAXPROCS(0)}
	})
	return defaultPool
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the pool's workers. It is idempotent and safe to call
// concurrently with For; a subsequent For restarts the workers lazily.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
	}
	p.mu.Unlock()
}

// ensure starts the workers if they are not running.
func (p *Pool) ensure() {
	p.mu.Lock()
	if p.jobs == nil {
		p.jobs = make(chan job, p.workers)
		for w := 0; w < p.workers; w++ {
			go worker(p.jobs)
		}
	}
	p.mu.Unlock()
}

func worker(jobs <-chan job) {
	for j := range jobs {
		j.run()
	}
}

// For executes body(0..n-1) on the pool and returns the number of chunks
// the loop was cut into (1 when it ran inline). The calling goroutine
// always participates, so a loop completes even if every worker is busy;
// For returns only after all iterations have completed, which is the step
// barrier of the simulated machines.
func (p *Pool) For(n int, body func(i int)) int {
	if n <= 0 {
		return 0
	}
	if p.workers <= 1 || n < serialCutoff {
		for i := 0; i < n; i++ {
			body(i)
		}
		return 1
	}
	size, count := ChunkBounds(n)
	if count == 1 {
		// A single chunk gains nothing from publishing to the workers.
		for i := 0; i < n; i++ {
			body(i)
		}
		return 1
	}

	var next int64
	var wg sync.WaitGroup
	wg.Add(count)
	j := job{next: &next, n: n, size: size, body: body, wg: &wg}

	p.mu.RLock()
	if p.jobs == nil {
		p.mu.RUnlock()
		p.ensure()
		p.mu.RLock()
	}
	// Publish one help request per worker that could usefully join, but
	// never block: if the buffer is full the workers are already saturated
	// and the caller's own run() below keeps the loop progressing. If a
	// concurrent Close nilled the channel, the caller just does all the
	// work itself. Workers draining a stale request after the loop has
	// finished find no chunk to claim and park again immediately.
	helpers := p.workers - 1
	if helpers > count-1 {
		helpers = count - 1
	}
publish:
	for h := 0; h < helpers && p.jobs != nil; h++ {
		select {
		case p.jobs <- j:
		default:
			break publish
		}
	}
	p.mu.RUnlock()

	j.run()
	wg.Wait()
	return count
}
