// Package exec is the shared execution runtime of the simulated machines:
// a persistent worker pool with deterministic chunk assignment, plus the
// instrumentation hooks (per-step counters exportable as JSON) that the
// benchmark harness consumes.
//
// # Why a shared runtime
//
// Both simulated machine families (the PRAM of internal/pram and the
// networks of internal/hypercube) execute every charged superstep as a
// data-parallel loop over virtual processors. Spawning a fresh goroutine
// set per superstep charges the simulator a scheduler round-trip on every
// one of the (often thousands of) tiny steps a recursion performs. The
// Pool here is started lazily once, keeps its workers parked on a job
// channel between steps, and is reused by every superstep of every
// machine that shares it — including the child machines that ParallelDo
// and Subcubes create for recursive subproblems, which inherit the
// parent's pool and sink instead of falling back to a private (or worse,
// sequential) runtime.
//
// # Dispatch
//
// A parallel loop is cut at the ChunkBounds boundaries and published to
// the workers as one shared descriptor; workers (and the calling
// goroutine, which always participates) claim chunks with an atomic
// counter. Publishing is a handful of non-blocking channel sends, so a
// loop costs O(workers) dispatch work regardless of its chunk count, and
// when every worker is busy — or the process has a single CPU — the
// caller simply executes all chunks itself at inline-loop speed.
//
// # Determinism contract
//
// Chunk boundaries are a pure function of the iteration count n (see
// ChunkBounds): they do not depend on the worker count or on GOMAXPROCS.
// Within a chunk, iterations run in increasing index order on a single
// goroutine. Which goroutine claims a chunk is scheduling-dependent, so
// loop bodies must be independent — which machine supersteps are by
// construction: all cross-processor writes are buffered and committed at
// the step barrier, never observed mid-step. Under that discipline the
// simulated outputs and every charged counter are identical for any
// worker count, which TestWorkerCountDeterminism pins down.
//
// # Faults and cancellation
//
// Run is the fault-aware, cancellable sibling of For: an optional Stall
// predicate injects transient per-chunk processor stalls that the claim
// loop detects and recovers by re-dispatching the chunk (attempts are
// effect-free, so recompute is exact), and an optional Context aborts the
// loop between chunks — remaining chunks are drained unexecuted so the
// barrier releases promptly and no worker is left mid-loop. Stall
// decisions are keyed by (chunk, attempt), never by the claiming
// goroutine, preserving the determinism contract under injection.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"monge/internal/obs"
)

const (
	// serialCutoff is the loop size below which dispatching to the pool
	// costs more than it saves; such loops run inline on the caller.
	serialCutoff = 128
	// minChunk is the smallest chunk a claimant takes: small enough to
	// split the few-hundred-processor steps row-minima recursions produce,
	// large enough that a chunk amortizes its atomic claim.
	minChunk = 128
	// maxChunks bounds the number of chunks per loop so claim traffic
	// stays bounded even for huge steps.
	maxChunks = 256
)

// ChunkBounds returns the deterministic chunk size and chunk count for a
// loop of n iterations. Both are functions of n only — never of the worker
// count — so the runtime's chunk boundaries are reproducible across
// machines and GOMAXPROCS settings.
func ChunkBounds(n int) (size, count int) {
	if n <= 0 {
		return 0, 0
	}
	size = (n + maxChunks - 1) / maxChunks
	if size < minChunk {
		size = minChunk
	}
	count = (n + size - 1) / size
	return size, count
}

// ChunkBoundsGrain is ChunkBounds for loops that declare their own grain:
// chunks cover grain iterations each (the last may be short), widened only
// if needed to respect the maxChunks claim-traffic bound. A grain <= 0
// falls back to the deterministic default sizing. Callers whose iterations
// are coarse units of work — the native backend dispatches row blocks, not
// rows — use this so a loop of a handful of blocks still yields one chunk
// per block instead of collapsing into a single inline chunk.
func ChunkBoundsGrain(n, grain int) (size, count int) {
	if grain <= 0 {
		return ChunkBounds(n)
	}
	if n <= 0 {
		return 0, 0
	}
	size = grain
	if min := (n + maxChunks - 1) / maxChunks; size < min {
		size = min
	}
	count = (n + size - 1) / size
	return size, count
}

// job is one parallel loop, shared by every goroutine helping with it.
// Chunk k covers indices [k*size, min((k+1)*size, n)); claimants take the
// next unclaimed chunk by incrementing next. The last three fields are nil
// on the For fast path: stall injects per-chunk processor stalls, stalls
// accumulates how many were delivered to this job, and abort (set on
// context cancellation) makes claimants drain remaining chunks without
// executing them, so the barrier releases promptly.
type job struct {
	next   *int64
	n      int
	size   int
	body   func(i int)
	wg     *sync.WaitGroup
	stall  func(chunk, attempt int) bool
	stalls *int64
	abort  *atomic.Bool
}

// runChunk recovers injected stalls for chunk k, then executes it.
func (j job) runChunk(k int64, lo int) {
	if j.stall != nil {
		st := 0
		for a := 0; j.stall(int(k), a); a++ {
			st++
		}
		if st > 0 {
			atomic.AddInt64(j.stalls, int64(st))
		}
	}
	hi := lo + j.size
	if hi > j.n {
		hi = j.n
	}
	for i := lo; i < hi; i++ {
		j.body(i)
	}
}

// run claims and executes chunks until none remain. Safe to call from any
// number of goroutines; each chunk is executed exactly once (or, after an
// abort, skipped exactly once).
func (j job) run() {
	for {
		k := atomic.AddInt64(j.next, 1) - 1
		lo := int(k) * j.size
		if lo >= j.n {
			return
		}
		if j.abort == nil || !j.abort.Load() {
			j.runChunk(k, lo)
		}
		j.wg.Done()
	}
}

// runCtx is run for the calling goroutine of a cancellable loop: it polls
// ctx between chunks and trips the shared abort flag on cancellation, so
// the workers drain the remaining chunks without executing them.
func (j job) runCtx(ctx context.Context) {
	for {
		k := atomic.AddInt64(j.next, 1) - 1
		lo := int(k) * j.size
		if lo >= j.n {
			return
		}
		aborted := j.abort.Load()
		if !aborted && ctx != nil && ctx.Err() != nil {
			j.abort.Store(true)
			aborted = true
		}
		if !aborted {
			j.runChunk(k, lo)
		}
		j.wg.Done()
	}
}

// Pool is a persistent worker pool. The zero value is not usable; create
// pools with NewPool or share the process-wide Default pool. Workers start
// lazily on the first parallel loop and park on the job channel between
// steps; Close stops them (idempotently) and waits for them to finish any
// chunks already claimed, and a closed pool restarts lazily if used again,
// so Machine.Reset can shut the pool down without poisoning later runs.
//
// # Lifetime contract
//
// Callers that own a pool should Close it when done: Close is the only
// deterministic shutdown point, and when it returns no pool goroutine is
// parked or mid-chunk. As a safety net, a pool that becomes unreachable
// without Close has its workers released by a runtime.AddCleanup hook:
// the channel/worker state lives in an inner poolState that the cleanup
// (and the workers) reference, never the Pool itself, so an abandoned
// Pool is collectable and its parked goroutines exit after the next GC
// cycle. The cleanup is asynchronous — tests that assert on goroutine
// counts must poll (see waitGoroutines in robust_test.go) rather than
// expect the workers gone the instant the Pool is dropped.
type Pool struct {
	workers int
	state   *poolState
}

// poolState is the shareable part of a Pool: everything the workers and
// the GC cleanup touch. It must not reference the owning Pool, or the
// cleanup would keep the Pool reachable and never run.
type poolState struct {
	// mu protects jobs and done: For/Run hold the read side while
	// publishing so that a concurrent close (write side) can never close
	// the channel mid-send.
	mu   sync.RWMutex
	jobs chan job
	// done counts the live workers of the current generation; close waits
	// on it so that, when close returns, no pool goroutine is parked or
	// mid-chunk.
	done *sync.WaitGroup
}

// NewPool returns a pool with the given number of workers (values < 1 are
// clamped to 1; a one-worker pool runs every loop inline). The workers are
// not started until the first use. See the Pool lifetime contract: Close
// deterministically, or let the AddCleanup hook reap an abandoned pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, state: &poolState{}}
	// The cleanup argument is the inner state, not p: workers and cleanup
	// hold only the job channel and the done group, so an unreachable pool
	// is collectable and the cleanup can release the parked goroutines.
	runtime.AddCleanup(p, func(st *poolState) { st.close() }, p.state)
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, sized by GOMAXPROCS at
// first use. Machines created without an explicit pool run on it.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = &Pool{workers: runtime.GOMAXPROCS(0), state: &poolState{}}
	})
	return defaultPool
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the pool's workers and waits for them to drain: any job
// already published is completed (a loop's caller always participates, so
// the loop finishes either way) and every worker goroutine has exited by
// the time Close returns. It is idempotent and safe to call concurrently
// with For/Run; a subsequent loop restarts the workers lazily. Do not call
// Close from inside a loop body — a worker cannot wait for itself.
func (p *Pool) Close() { p.state.close() }

func (st *poolState) close() {
	st.mu.Lock()
	jobs, done := st.jobs, st.done
	st.jobs, st.done = nil, nil
	st.mu.Unlock()
	if jobs != nil {
		close(jobs)
		done.Wait()
	}
}

// ensure starts the workers if they are not running.
func (p *Pool) ensure() {
	st := p.state
	st.mu.Lock()
	if st.jobs == nil {
		st.jobs = make(chan job, p.workers)
		st.done = new(sync.WaitGroup)
		st.done.Add(p.workers)
		for w := 0; w < p.workers; w++ {
			go worker(st.jobs, st.done)
		}
	}
	st.mu.Unlock()
}

func worker(jobs <-chan job, done *sync.WaitGroup) {
	defer done.Done()
	for j := range jobs {
		j.run()
	}
}

// publish offers the job to up to count-1 idle workers without ever
// blocking: if the buffer is full the workers are already saturated and
// the caller's own claim loop keeps the loop progressing. If a concurrent
// Close nilled the channel, the caller just does all the work itself.
// Workers draining a stale request after the loop has finished find no
// chunk to claim and park again immediately.
func (p *Pool) publish(j job, count int) {
	st := p.state
	st.mu.RLock()
	if st.jobs == nil {
		st.mu.RUnlock()
		p.ensure()
		st.mu.RLock()
	}
	helpers := p.workers - 1
	if helpers > count-1 {
		helpers = count - 1
	}
publish:
	for h := 0; h < helpers && st.jobs != nil; h++ {
		select {
		case st.jobs <- j:
		default:
			break publish
		}
	}
	st.mu.RUnlock()
}

// countLoop folds one dispatched loop into the process-wide observer's
// "exec.pool" site, when one is installed. The disabled path is a single
// atomic pointer load.
func countLoop(chunks int) {
	if o := obs.Global(); o != nil {
		c := o.Pool()
		c.PoolLoops.Add(1)
		c.PoolChunks.Add(int64(chunks))
		if chunks == 1 {
			c.PoolInline.Add(1)
		}
	}
}

// For executes body(0..n-1) on the pool and returns the number of chunks
// the loop was cut into (1 when it ran inline). The calling goroutine
// always participates, so a loop completes even if every worker is busy;
// For returns only after all iterations have completed, which is the step
// barrier of the simulated machines. This is the fast path with no fault
// or cancellation hooks; see Run for those.
func (p *Pool) For(n int, body func(i int)) int {
	if n <= 0 {
		return 0
	}
	if p.workers <= 1 || n < serialCutoff {
		for i := 0; i < n; i++ {
			body(i)
		}
		countLoop(1)
		return 1
	}
	size, count := ChunkBounds(n)
	if count == 1 {
		// A single chunk gains nothing from publishing to the workers.
		for i := 0; i < n; i++ {
			body(i)
		}
		countLoop(1)
		return 1
	}

	var next int64
	var wg sync.WaitGroup
	wg.Add(count)
	j := job{next: &next, n: n, size: size, body: body, wg: &wg}
	p.publish(j, count)
	j.run()
	wg.Wait()
	countLoop(count)
	return count
}

// Loop describes one parallel loop for Run: the iteration space and body,
// plus the optional robustness hooks the fast-path For omits.
type Loop struct {
	// N is the iteration count; Body runs for each i in [0, N).
	N    int
	Body func(i int)
	// Ctx, when non-nil, cancels the loop between chunks: once Ctx is done
	// no further chunk bodies start, the remaining chunks are drained
	// unexecuted, and Run returns Ctx.Err(). Chunks already executing
	// finish normally (they are effect-buffered machine steps).
	Ctx context.Context
	// Stall, when non-nil, reports whether the given chunk stalls on the
	// given zero-based attempt; the claimant retries until it reports
	// false, modelling detect-and-recompute recovery from transient
	// processor faults. It must be a pure function of its arguments (plus
	// injector seed/state) so the schedule is worker-count independent.
	Stall func(chunk, attempt int) bool
	// Grain, when positive, declares that each iteration is a coarse unit
	// of work: chunks are Grain iterations wide (ChunkBoundsGrain) and the
	// loop is dispatched to the workers even when N is below the serial
	// cutoff that inlines fine-grained loops. Zero keeps the default
	// deterministic sizing the simulated machines rely on.
	Grain int
}

// RunResult reports what a Run dispatch did.
type RunResult struct {
	// Chunks is the number of chunks the loop was cut into.
	Chunks int
	// Stalls is the number of stalled chunk attempts that were detected
	// and re-dispatched.
	Stalls int64
}

// Run executes the loop with fault injection and cancellation support.
// Unlike For, Run always uses the deterministic ChunkBounds structure —
// even inline on a single worker — so the injected fault schedule is
// identical for any worker count. On cancellation it returns the context
// error; the loop's effects are then partial and the caller must abandon
// the superstep (the machines throw ErrCanceled).
func (p *Pool) Run(l Loop) (RunResult, error) {
	if l.N <= 0 {
		return RunResult{}, nil
	}
	size, count := ChunkBoundsGrain(l.N, l.Grain)
	var next, stalls int64
	var abort atomic.Bool
	var wg sync.WaitGroup
	wg.Add(count)
	j := job{
		next: &next, n: l.N, size: size, body: l.Body, wg: &wg,
		stall: l.Stall, stalls: &stalls, abort: &abort,
	}
	if p.workers > 1 && count > 1 && (l.Grain > 0 || l.N >= serialCutoff) {
		p.publish(j, count)
	}
	j.runCtx(l.Ctx)
	wg.Wait()
	countLoop(count)
	res := RunResult{Chunks: count, Stalls: atomic.LoadInt64(&stalls)}
	if abort.Load() {
		return res, l.Ctx.Err()
	}
	return res, nil
}
