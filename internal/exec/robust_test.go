package exec

// Regression tests for the pool's shutdown and robustness paths: Close
// racing in-flight loops (and the GC cleanup), cancellation draining
// every chunk and leaking no goroutines, abandoned pools being reaped,
// and stall injection recomputing chunks without double-executing any
// iteration.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseConcurrentWithLoops hammers Close against in-flight For and Run
// loops. Every loop must still execute each iteration exactly once (the
// caller participates, so a loop finishes even if Close steals the
// workers), and the test must be race-clean — this is the regression test
// for Close racing the GC cleanup / publish during in-flight supersteps.
// It ends with a leak check: after the storm, Close must leave no worker
// goroutine behind.
func TestCloseConcurrentWithLoops(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(4)
	const (
		loops = 50
		n     = serialCutoff * 4
		gor   = 4
	)
	var total int64
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < loops; r++ {
				if g%2 == 0 {
					p.For(n, func(i int) { atomic.AddInt64(&total, 1) })
				} else {
					if _, err := p.Run(Loop{N: n, Body: func(i int) { atomic.AddInt64(&total, 1) }}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	for r := 0; r < 25; r++ {
		p.Close()
	}
	wg.Wait()
	if got, want := atomic.LoadInt64(&total), int64(gor*loops*n); got != want {
		t.Fatalf("executed %d iterations, want %d", got, want)
	}
	p.Close()
	waitGoroutines(t, base)
}

// waitGoroutines polls until the process goroutine count drops to at most
// limit, failing after a generous deadline. Workers exit asynchronously
// after Close returns their WaitGroup, so a bounded poll is needed.
func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still alive, want <= %d\n%s",
				runtime.NumGoroutine(), limit, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunCancelDrainsAndLeaksNothing verifies the cancellation contract:
// a pre-cancelled context executes no chunk body at all, a mid-run cancel
// stops promptly with the context error, and after Close the pool has
// released every goroutine it started.
func TestRunCancelDrainsAndLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed int64
	res, err := p.Run(Loop{N: 1 << 16, Body: func(i int) { atomic.AddInt64(&executed, 1) }, Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled Run returned %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&executed); got != 0 {
		t.Fatalf("pre-cancelled Run executed %d iterations, want 0", got)
	}
	if res.Chunks == 0 {
		t.Fatal("Run must still report the loop's chunk structure")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	var ran int64
	_, err = p.Run(Loop{N: 1 << 16, Body: func(i int) {
		if atomic.AddInt64(&ran, 1) == 1 {
			cancel2()
		}
	}, Ctx: ctx2})
	if err != context.Canceled {
		t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
	}
	if got, n := atomic.LoadInt64(&ran), int64(1<<16); got == 0 || got >= n {
		t.Fatalf("mid-run cancel executed %d of %d iterations, want partial", got, n)
	}

	p.Close()
	waitGoroutines(t, base)
}

// TestCleanupReleasesAbandonedPools abandons used pools without Close and
// checks the runtime.AddCleanup hook eventually releases their parked
// workers — the leak-regression half of the Pool lifetime contract. The
// cleanup runs asynchronously after a GC observes the Pool unreachable,
// so the test polls via waitGoroutines (which itself keeps triggering GC)
// rather than expecting the workers gone after a fixed number of cycles.
func TestCleanupReleasesAbandonedPools(t *testing.T) {
	base := runtime.NumGoroutine()
	for r := 0; r < 8; r++ {
		p := NewPool(2)
		p.For(serialCutoff*2, func(i int) {})
	}
	waitGoroutines(t, base)
}

// TestRunStallsRecompute checks the stall hook: each stalled attempt is
// counted, iterations still execute exactly once, and the schedule —
// being keyed by (chunk, attempt) only — is identical for any worker
// count.
func TestRunStallsRecompute(t *testing.T) {
	const n = serialCutoff * 8
	stallsFor := func(chunk, attempt int) bool { return chunk%3 == 1 && attempt < 2 }

	run := func(workers int) (hits []int32, stalls int64) {
		p := NewPool(workers)
		defer p.Close()
		h := make([]int32, n)
		res, err := p.Run(Loop{
			N:     n,
			Body:  func(i int) { atomic.AddInt32(&h[i], 1) },
			Stall: stallsFor,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h, res.Stalls
	}

	hits1, stalls1 := run(1)
	hits8, stalls8 := run(8)
	for i := range hits1 {
		if hits1[i] != 1 || hits8[i] != 1 {
			t.Fatalf("iteration %d executed %d/%d times, want exactly once", i, hits1[i], hits8[i])
		}
	}
	_, count := ChunkBounds(n)
	want := int64(0)
	for k := 0; k < count; k++ {
		if k%3 == 1 {
			want += 2
		}
	}
	if stalls1 != want || stalls8 != want {
		t.Fatalf("stall counts %d/%d, want %d for any worker count", stalls1, stalls8, want)
	}
}
