package exec

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// StepStats describes one charged superstep executed on the runtime. The
// machines emit one record per step to their Sink (when one is attached);
// the fields cover both machine families, with the PRAM-only write-buffer
// fields left zero by the network machines.
type StepStats struct {
	// Model identifies the emitting machine: "pram" or a network kind
	// ("hypercube", "cube-connected-cycles", "shuffle-exchange").
	Model string `json:"model"`
	// Op is the step flavour: "step" (PRAM superstep), "local" (network
	// compute step), or "exchange" (network communication step).
	Op string `json:"op"`
	// N is the number of virtual processors the step activated.
	N int `json:"n"`
	// Cost is the charged per-processor operation count.
	Cost int `json:"cost"`
	// Chunks is the number of pool chunks the loop was dispatched as
	// (1 means it ran inline on the calling goroutine).
	Chunks int `json:"chunks"`
	// Writes is the number of buffered writes flushed at the step barrier
	// (PRAM only).
	Writes int `json:"writes,omitempty"`
	// MaxShard is the largest number of writes that landed in a single
	// write-buffer shard this step — the contention proxy for the 64-way
	// sharded buffers (PRAM only).
	MaxShard int `json:"max_shard,omitempty"`
}

// Sink receives one record per charged superstep. Implementations must be
// safe for concurrent use: ParallelDo branches and independent machines
// may share one sink. Record is called at step barriers, never from inside
// a step body.
type Sink interface {
	Record(StepStats)
}

// OpStats is the aggregate a Collector keeps per (model, op) pair.
type OpStats struct {
	Model    string `json:"model"`
	Op       string `json:"op"`
	Steps    int64  `json:"steps"`     // records seen
	Items    int64  `json:"items"`     // sum of N
	MaxN     int    `json:"max_n"`     // largest single step
	Chunks   int64  `json:"chunks"`    // sum of dispatched chunks
	Writes   int64  `json:"writes"`    // sum of flushed writes
	MaxShard int    `json:"max_shard"` // worst single-shard burst
}

// Collector is a Sink that aggregates records per (model, op) pair. Its
// JSON export is the instrumentation format cmd/mongebench's -trace flag
// writes (see README "Instrumentation" for the schema).
type Collector struct {
	mu  sync.Mutex
	agg map[[2]string]*OpStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{agg: make(map[[2]string]*OpStats)}
}

// Record folds one step into the aggregates.
func (c *Collector) Record(s StepStats) {
	key := [2]string{s.Model, s.Op}
	c.mu.Lock()
	o := c.agg[key]
	if o == nil {
		o = &OpStats{Model: s.Model, Op: s.Op}
		c.agg[key] = o
	}
	o.Steps++
	o.Items += int64(s.N)
	if s.N > o.MaxN {
		o.MaxN = s.N
	}
	o.Chunks += int64(s.Chunks)
	o.Writes += int64(s.Writes)
	if s.MaxShard > o.MaxShard {
		o.MaxShard = s.MaxShard
	}
	c.mu.Unlock()
}

// Summary returns the aggregates sorted by (model, op).
func (c *Collector) Summary() []OpStats {
	c.mu.Lock()
	out := make([]OpStats, 0, len(c.agg))
	for _, o := range c.agg {
		out = append(out, *o)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// WriteJSON writes the aggregates as an indented JSON document:
//
//	{"ops": [{"model": ..., "op": ..., "steps": ..., ...}, ...]}
func (c *Collector) WriteJSON(w io.Writer) error {
	doc := struct {
		Ops []OpStats `json:"ops"`
	}{Ops: c.Summary()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

var (
	globalMu   sync.RWMutex
	globalSink Sink
)

// SetGlobalSink installs the sink that newly created machines attach by
// default (nil detaches). It exists for whole-process harnesses like
// cmd/mongebench, which cannot reach the machines that algorithms size and
// create internally; tests should prefer per-machine SetSink.
func SetGlobalSink(s Sink) {
	globalMu.Lock()
	globalSink = s
	globalMu.Unlock()
}

// GlobalSink returns the currently installed process-wide sink (nil when
// instrumentation is off).
func GlobalSink() Sink {
	globalMu.RLock()
	s := globalSink
	globalMu.RUnlock()
	return s
}
