package exec

import (
	"sync"
	"testing"
)

// The simulator-overhead question the runtime answers: a machine executes
// thousands of small supersteps, and the old implementation spawned a
// fresh goroutine set for every one of them. These benchmarks compare that
// pattern against the persistent pool on the same chunked loop, at the
// step sizes row-minima workloads actually produce (a few hundred to a few
// thousand virtual processors).

const benchWorkers = 4

// spawnFor is the deleted per-step implementation that pram.Machine and
// hypercube.Machine each used to carry: goroutine-per-worker, re-created
// on every loop. Kept here as the benchmark baseline only.
func spawnFor(workers, n int, body func(i int)) {
	if n < serialCutoff || workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	w := workers
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

func benchSizes() []int { return []int{256, 1024, 4096} }

func BenchmarkStepLoop_SpawnPerStep(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]int64, n)
			for i := 0; i < b.N; i++ {
				spawnFor(benchWorkers, n, func(j int) { buf[j]++ })
			}
		})
	}
}

func BenchmarkStepLoop_PersistentPool(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			p := NewPool(benchWorkers)
			defer p.Close()
			buf := make([]int64, n)
			p.For(n, func(int) {}) // warm the workers outside the timing loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(n, func(j int) { buf[j]++ })
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 256:
		return "n=256"
	case 1024:
		return "n=1024"
	default:
		return "n=4096"
	}
}
