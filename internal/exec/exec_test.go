package exec

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestChunkBoundsDeterministic(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 127, 128, 1000, 1 << 14, 1 << 20} {
		size, count := ChunkBounds(n)
		size2, count2 := ChunkBounds(n)
		if size != size2 || count != count2 {
			t.Fatalf("ChunkBounds(%d) not deterministic", n)
		}
		if n == 0 {
			if size != 0 || count != 0 {
				t.Fatalf("ChunkBounds(0) = (%d, %d), want (0, 0)", size, count)
			}
			continue
		}
		if size < 1 || count < 1 {
			t.Fatalf("ChunkBounds(%d) = (%d, %d)", n, size, count)
		}
		if count > maxChunks {
			t.Fatalf("ChunkBounds(%d): %d chunks exceeds cap %d", n, count, maxChunks)
		}
		if (count-1)*size >= n || count*size < n {
			t.Fatalf("ChunkBounds(%d) = (%d, %d) does not tile [0, n)", n, size, count)
		}
	}
}

func TestForCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{0, 1, 127, 128, 129, 1000, 1 << 14} {
			p := NewPool(workers)
			hits := make([]int32, n)
			chunks := p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, h)
				}
			}
			if n > 0 && chunks < 1 {
				t.Fatalf("workers=%d n=%d: reported %d chunks", workers, n, chunks)
			}
			p.Close()
		}
	}
}

func TestChunkCountIndependentOfWorkers(t *testing.T) {
	// The chunking contract: the dispatch pattern of a parallel loop is a
	// function of n only. (One-worker pools run inline, which is the
	// documented exception and does not affect outputs.)
	n := 1 << 13
	_, want := ChunkBounds(n)
	for _, workers := range []int{2, 3, 5, 8} {
		p := NewPool(workers)
		got := p.For(n, func(int) {})
		p.Close()
		if got != want {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, got, want)
		}
	}
}

func TestForAfterCloseRestarts(t *testing.T) {
	p := NewPool(4)
	var c1 int64
	p.For(1024, func(int) { atomic.AddInt64(&c1, 1) })
	p.Close()
	var c2 int64
	p.For(1024, func(int) { atomic.AddInt64(&c2, 1) })
	if c1 != 1024 || c2 != 1024 {
		t.Fatalf("got %d then %d iterations, want 1024 each", c1, c2)
	}
	p.Close()
	p.Close() // idempotent
}

func TestConcurrentForSharedPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				p.For(512, func(int) { atomic.AddInt64(&total, 1) })
			}
		}()
	}
	wg.Wait()
	if want := int64(8 * 20 * 512); total != want {
		t.Fatalf("total %d, want %d", total, want)
	}
}

func TestDefaultPoolShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() is not a singleton")
	}
	if w := Default().Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("default pool has %d workers, want GOMAXPROCS=%d", w, runtime.GOMAXPROCS(0))
	}
}

func TestCollectorAggregatesAndJSON(t *testing.T) {
	c := NewCollector()
	c.Record(StepStats{Model: "pram", Op: "step", N: 100, Cost: 1, Chunks: 2, Writes: 40, MaxShard: 3})
	c.Record(StepStats{Model: "pram", Op: "step", N: 300, Cost: 2, Chunks: 4, Writes: 10, MaxShard: 7})
	c.Record(StepStats{Model: "hypercube", Op: "exchange", N: 64, Cost: 1, Chunks: 1})
	sum := c.Summary()
	if len(sum) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(sum))
	}
	// Sorted by (model, op): hypercube/exchange first.
	if sum[0].Model != "hypercube" || sum[0].Op != "exchange" || sum[0].Steps != 1 || sum[0].Items != 64 {
		t.Fatalf("unexpected first aggregate: %+v", sum[0])
	}
	ps := sum[1]
	if ps.Steps != 2 || ps.Items != 400 || ps.MaxN != 300 || ps.Chunks != 6 || ps.Writes != 50 || ps.MaxShard != 7 {
		t.Fatalf("unexpected pram aggregate: %+v", ps)
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Ops []OpStats `json:"ops"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Ops) != 2 || doc.Ops[1].Writes != 50 {
		t.Fatalf("JSON round-trip mismatch: %+v", doc.Ops)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 1000; r++ {
				c.Record(StepStats{Model: "pram", Op: "step", N: 1, Chunks: 1})
			}
		}()
	}
	wg.Wait()
	sum := c.Summary()
	if len(sum) != 1 || sum[0].Steps != 8000 {
		t.Fatalf("got %+v, want 8000 steps", sum)
	}
}

func TestGlobalSink(t *testing.T) {
	if GlobalSink() != nil {
		t.Fatal("global sink unexpectedly set at test start")
	}
	c := NewCollector()
	SetGlobalSink(c)
	if GlobalSink() != Sink(c) {
		t.Fatal("SetGlobalSink did not install the sink")
	}
	SetGlobalSink(nil)
	if GlobalSink() != nil {
		t.Fatal("SetGlobalSink(nil) did not detach the sink")
	}
}
