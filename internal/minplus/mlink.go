package minplus

// The shortest M-link path problem (arXiv 2408.00227 territory): in
// the complete DAG on nodes 0..n with Monge edge weights w(i,j) for
// i < j, find the cheapest path from 0 to n using exactly M edges.
// Three exact strategies share the engine:
//
//   - Squaring: the 1-link weight matrix D (upper-triangular, +Inf
//     below the diagonal) is raised to D^⊗M by binary exponentiation
//     of run-sparse Products; the witness tree of the multiplication
//     order reconstructs the path. O(n² lg M) evaluations — the route
//     that exercises the ⊗ engine itself, right for small M.
//   - Layered: M SMAWK sweeps of the layer recurrence f_l(j) =
//     min_{i<j} f_{l-1}(i) + w(i,j). Each sweep is one (n+1)×(n+1)
//     totally monotone row-minima query (the same shape every layer,
//     so one retained machine serves all M), O(nM) evaluations total
//     against the O(n²M) reference DP.
//   - Lambda: the Lagrangian relaxation — bisect a per-link penalty λ
//     and solve the unconstrained least-weight subsequence for w+λ
//     (internal/dp.LWS, O(n lg n) per probe). When the probe lands on
//     exactly M links, complementary slackness makes
//     f_λ(n) − λM the exact M-link optimum; a duality gap (no λ hits
//     M) falls back to the layered sweep, keeping the strategy exact.
//
// All strategies use the same conventions: +Inf cost and a nil path
// when no M-link path exists (M > n, for instance), leftmost
// tie-breaking on predecessors.

import (
	"math"

	"monge/internal/dp"
	"monge/internal/marray"
	"monge/internal/merr"
)

// Weight is a link weight w(i, j) for 0 <= i < j <= n, required to
// satisfy the Monge (concave quadrangle) inequality
// w(i,j) + w(i',j') <= w(i,j') + w(i',j) for i < i' < j < j'.
type Weight func(i, j int) float64

// Strategy selects the M-link algorithm.
type Strategy int

const (
	// StrategyAuto squares for small M on small graphs (the regime
	// where O(n² lg M) is cheap and the ⊗ engine shines) and otherwise
	// runs the λ search with its layered fallback.
	StrategyAuto Strategy = iota
	// StrategySquaring forces repeated ⊗-squaring of the link matrix.
	StrategySquaring
	// StrategyLayered forces the M-sweep layered DP.
	StrategyLayered
	// StrategyLambda forces the Lagrangian bisection (layered fallback
	// on a duality gap).
	StrategyLambda
)

// String names the strategy as the bench output spells it.
func (s Strategy) String() string {
	switch s {
	case StrategySquaring:
		return "squaring"
	case StrategyLayered:
		return "layered"
	case StrategyLambda:
		return "lambda"
	}
	return "auto"
}

// MLinkPath returns the cost of the cheapest exactly-M-link path
// 0 -> n and its node sequence (length M+1), choosing the strategy
// automatically. No such path yields (+Inf, nil).
func (e *Engine) MLinkPath(n int, w Weight, M int) (float64, []int) {
	return e.MLinkPathStrategy(n, w, M, StrategyAuto)
}

// MLinkPathStrategy is MLinkPath under an explicit strategy.
func (e *Engine) MLinkPathStrategy(n int, w Weight, M int, s Strategy) (float64, []int) {
	if n < 1 || M < 1 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"minplus: MLinkPath(n=%d, M=%d); need n >= 1 and M >= 1", n, M)
	}
	if M > n {
		// A path of M forward links visits M+1 strictly increasing
		// nodes in [0, n] — impossible beyond M = n.
		return inf, nil
	}
	switch s {
	case StrategySquaring:
		return e.mlinkSquaring(n, w, M)
	case StrategyLayered:
		return e.mlinkLayered(n, w, M)
	case StrategyLambda:
		return e.mlinkLambda(n, w, M)
	}
	if M <= 8 && n <= 1024 {
		return e.mlinkSquaring(n, w, M)
	}
	return e.mlinkLambda(n, w, M)
}

// linkMatrix is the 1-link weight matrix D[i][j] = w(i,j) for i < j,
// +Inf at and below the diagonal, over nodes 0..n.
func linkMatrix(n int, w Weight) marray.Matrix {
	return marray.Func{M: n + 1, N: n + 1, F: func(i, j int) float64 {
		if i < j {
			return w(i, j)
		}
		return inf
	}}
}

// mlinkSquaring computes D^⊗M by binary exponentiation and walks the
// witness tree of the multiplication order to reconstruct the path.
func (e *Engine) mlinkSquaring(n int, w Weight, M int) (float64, []int) {
	// powNode records how each matrix in the exponentiation tree was
	// formed: a leaf is the 1-link base, an inner node the ⊗ of its
	// children, whose Product witnesses split any (i, k) pair.
	type powNode struct {
		mat         marray.Matrix
		prod        *Product // nil for the base
		left, right *powNode
	}
	mul := func(x, y *powNode) *powNode {
		p := e.multiply(x.mat, y.mat, false)
		return &powNode{mat: p, prod: p, left: x, right: y}
	}
	cur := &powNode{mat: linkMatrix(n, w)}
	var result *powNode
	for bits := M; ; {
		if bits&1 == 1 {
			if result == nil {
				result = cur
			} else {
				result = mul(result, cur)
			}
		}
		bits >>= 1
		if bits == 0 {
			break
		}
		cur = mul(cur, cur)
	}
	cost := result.mat.At(0, n)
	if math.IsInf(cost, 1) {
		return inf, nil
	}
	path := make([]int, 1, M+1)
	var rec func(nd *powNode, i, k int)
	rec = func(nd *powNode, i, k int) {
		if nd.prod == nil {
			path = append(path, k)
			return
		}
		j := nd.prod.Witness(i, k)
		rec(nd.left, i, j)
		rec(nd.right, j, k)
	}
	rec(result, 0, n)
	return cost, path
}

// mlinkLayered runs M row-minima sweeps of the layer matrix
// G_l[j][i] = f_{l-1}(i) + w(i,j) for i < j (+Inf otherwise). G_l is
// totally monotone for leftmost minima — the finite prefixes grow with
// j and the Monge inequality transfers the strict comparisons — so
// each sweep is one O(n)-evaluation SMAWK query of a fixed shape.
func (e *Engine) mlinkLayered(n int, w Weight, M int) (float64, []int) {
	nn := n + 1
	fPrev := make([]float64, nn)
	fNext := make([]float64, nn)
	for j := 1; j < nn; j++ {
		fPrev[j] = inf
	}
	var g marray.Matrix = marray.Func{M: nn, N: nn, F: func(j, i int) float64 {
		if i >= j {
			return inf
		}
		return fPrev[i] + w(i, j)
	}}
	pred := make([][]int32, M+1)
	wit := make([]int, nn)
	for l := 1; l <= M; l++ {
		e.d.RowMinimaInto(g, wit)
		pl := make([]int32, nn)
		for j := 0; j < nn; j++ {
			v := inf
			if i := wit[j]; i < j {
				v = fPrev[i] + w(i, j)
			}
			if math.IsInf(v, 1) {
				pl[j], fNext[j] = -1, inf
			} else {
				pl[j], fNext[j] = int32(wit[j]), v
			}
		}
		pred[l] = pl
		fPrev, fNext = fNext, fPrev
	}
	cost := fPrev[n]
	if math.IsInf(cost, 1) {
		return inf, nil
	}
	path := make([]int, M+1)
	path[M] = n
	for l := M; l >= 1; l-- {
		path[l-1] = int(pred[l][path[l]])
	}
	return cost, path
}

// mlinkLambda bisects the per-link penalty. The link count of the
// unconstrained optimum is nonincreasing in λ (from n links as
// λ → -∞ down to 1 as λ → +∞), so a bracket always exists; when no
// probe lands on exactly M links — a duality gap from non-strict
// concavity — the layered sweep answers exactly instead.
func (e *Engine) mlinkLambda(n int, w Weight, M int) (float64, []int) {
	solve := func(lambda float64) (cost float64, links int, chain []int) {
		f, pred := dp.LWS(n, func(i, j int) float64 { return w(i, j) + lambda })
		chain = dp.Chain(pred)
		return f[n], len(chain) - 1, chain
	}
	done := func(cost, lambda float64, chain []int) (float64, []int) {
		// Complementary slackness: subtracting the penalty actually
		// paid recovers the exact M-link cost.
		return cost - lambda*float64(M), chain
	}
	lo, hi := -1.0, 1.0
	for i := 0; ; i++ {
		cost, links, chain := solve(lo)
		if links == M {
			return done(cost, lo, chain)
		}
		if links > M || i >= 64 {
			break
		}
		lo *= 2
	}
	for i := 0; ; i++ {
		cost, links, chain := solve(hi)
		if links == M {
			return done(cost, hi, chain)
		}
		if links < M || i >= 64 {
			break
		}
		hi *= 2
	}
	for i := 0; i < 100 && lo < hi; i++ {
		mid := lo + (hi-lo)/2
		cost, links, chain := solve(mid)
		if links == M {
			return done(cost, mid, chain)
		}
		if links > M {
			lo = mid
		} else {
			hi = mid
		}
	}
	return e.mlinkLayered(n, w, M)
}

// MLinkBrute is the O(n²M) reference DP with the same conventions as
// the engine strategies: leftmost predecessor on ties, (+Inf, nil)
// when no M-link path exists. It accepts M > n (the DP yields +Inf
// naturally), so tests can pin the convention itself.
func MLinkBrute(n int, w Weight, M int) (float64, []int) {
	if n < 1 || M < 1 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"minplus: MLinkBrute(n=%d, M=%d); need n >= 1 and M >= 1", n, M)
	}
	nn := n + 1
	fPrev := make([]float64, nn)
	fNext := make([]float64, nn)
	for j := 1; j < nn; j++ {
		fPrev[j] = inf
	}
	pred := make([][]int32, M+1)
	for l := 1; l <= M; l++ {
		pl := make([]int32, nn)
		for j := 0; j < nn; j++ {
			best, bi := inf, int32(-1)
			for i := 0; i < j; i++ {
				if v := fPrev[i] + w(i, j); v < best {
					best, bi = v, int32(i)
				}
			}
			fNext[j], pl[j] = best, bi
		}
		pred[l] = pl
		fPrev, fNext = fNext, fPrev
	}
	cost := fPrev[n]
	if math.IsInf(cost, 1) {
		return inf, nil
	}
	path := make([]int, M+1)
	path[M] = n
	for l := M; l >= 1; l-- {
		path[l-1] = int(pred[l][path[l]])
	}
	return cost, path
}
