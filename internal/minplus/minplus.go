// Package minplus implements Monge (min,+) matrix multiplication and
// the shortest M-link path solver built on it.
//
// # The reduction
//
// The (min,+) product of an m x q matrix A and a q x r matrix B is
// C[i][k] = min_j A[i][j] + B[j][k]. Fixing an output row i and
// defining the r x q slice W_i[k][j] = A[i][j] + B[j][k], row k of W_i
// lists the candidates of output entry C[i][k] — so row i of the
// product is exactly one row-minima query on W_i. The A-row terms
// cancel in every 2x2 minor of W_i, so W_i is Monge whenever B is, and
// the whole multiplication becomes a stream of m same-shape totally
// monotone row-minima queries: O(m(q+r)) evaluations via SMAWK against
// the naive O(mqr). The queries run through an internal/batch Driver —
// one retained machine per shape class on the PRAM backend, the
// work-stealing block kernels of internal/native otherwise — and every
// answer lands in one reused witness buffer, so the engine allocates
// only the product's run arrays.
//
// # Blocked (+Inf) entries
//
// Two +Inf patterns arise and are both handled without padding:
//
//   - Staircase factors (right/down-closed +Inf regions): slice row k
//     then has a finite prefix and a blocked suffix whose boundary is
//     nonincreasing in k, i.e. W_i is staircase-Monge, and the engine
//     routes the slice through the staircase row-minima kernels.
//   - Upper-triangular DAG matrices (the M-link weight matrices
//     D[i][j] = w(i,j) for i < j, +Inf otherwise, and their ⊗ powers):
//     slice row k is finite exactly on a window whose left edge is
//     fixed and whose right edge grows with k. Such slices are totally
//     monotone for leftmost minima (the finite windows are Monge and
//     grow downward), so the plain SMAWK route applies.
//
// Wherever C[i][k] = +Inf the witness is normalized to -1; the naive
// oracle uses the identical convention, which is what makes witness
// agreement index-exact across naive/PRAM/native even on blocked
// entries.
//
// # Core-sparse products
//
// Because each W_i is totally monotone, the witness j*(i,k) is
// nondecreasing in k along every output row; a Product therefore
// stores only the run breaks — the columns where the argmin row of B
// changes — per arXiv 2408.04613's core representation. A product of
// two n x n Monge matrices carries at most min(q,r)+1 runs per row and
// typically far fewer, so repeated ⊗-squaring (the M-link solver)
// stays subquadratic in space while At/Witness remain O(lg runs)
// binary searches.
package minplus

import (
	"math"

	"monge/internal/batch"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/pram"
)

// inf is the blocked-entry sentinel, shared with marray.
var inf = math.Inf(1)

// Engine multiplies Monge matrices through a batch.Driver. An Engine
// is not goroutine-safe (it shares the driver's machines and its own
// witness scratch); concurrent callers use one Engine per goroutine,
// exactly like batch.Driver. The zero value is not usable; construct
// with New or NewWith.
type Engine struct {
	d     *batch.Driver
	owned bool
	wit   []int // reused per-row witness buffer
}

// New returns an Engine owning a private CRCW-mode driver on the given
// backend. Close releases the driver's retained machines.
func New(be batch.Backend) *Engine {
	return &Engine{d: batch.NewWithBackend(pram.CRCW, be), owned: true}
}

// NewWith returns an Engine borrowing d — the serving layer hands each
// pool worker's private driver to a per-worker engine. Close leaves a
// borrowed driver untouched.
func NewWith(d *batch.Driver) *Engine {
	return &Engine{d: d}
}

// Driver exposes the underlying driver (for fault/context wiring in
// tests and benches).
func (e *Engine) Driver() *batch.Driver { return e.d }

// Close releases an owned driver's retained machines; borrowed drivers
// stay with their owner. The Engine is reusable after Close.
func (e *Engine) Close() {
	if e.owned {
		e.d.Close()
	}
}

// Multiply returns the (min,+) product A ⊗ B as a run-sparse Product.
// A must be m x q and B q x r; both Monge (the facade validates, the
// engine trusts). Factors carrying blocked rows — a Staircase
// implementation or rows ending in +Inf — route through the staircase
// kernels; fully finite factors through plain SMAWK.
func (e *Engine) Multiply(a, b marray.Matrix) *Product {
	checkMul(a, b)
	return e.multiply(a, b, hasBlockedRows(a) || hasBlockedRows(b))
}

// checkMul rejects incompatible or degenerate shapes at the engine
// seam with the shared typed error.
func checkMul(a, b marray.Matrix) {
	if a.Cols() != b.Rows() {
		merr.Throwf(merr.ErrDimensionMismatch,
			"minplus: inner dimensions %d and %d differ", a.Cols(), b.Rows())
	}
	if a.Rows() <= 0 || a.Cols() <= 0 || b.Cols() <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"minplus: %dx%d ⊗ %dx%d; all dimensions must be positive",
			a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
}

// hasBlockedRows reports whether any row of x ends in +Inf — the
// staircase signature (a right/down-closed blocked region always
// reaches the last column of its rows). O(rows) entry probes, against
// the O(rows·cols) a full scan would cost.
func hasBlockedRows(x marray.Matrix) bool {
	if s, ok := x.(marray.Staircase); ok {
		// Boundaries are nonincreasing: the last row has the smallest.
		return s.Boundary(x.Rows()-1) < x.Cols()
	}
	n := x.Cols()
	for i := x.Rows() - 1; i >= 0; i-- {
		if math.IsInf(x.At(i, n-1), 1) {
			return true
		}
	}
	return false
}

// multiply is the shared core: one row-minima query per output row on
// the slice W_i[k][j] = A[i][j] + B[j][k], stair selecting the
// staircase kernels. The M-link solver calls it with stair=false on
// its triangular matrices (plain total monotonicity, see the package
// comment).
func (e *Engine) multiply(a, b marray.Matrix, stair bool) *Product {
	m, q, r := a.Rows(), a.Cols(), b.Cols()
	if cap(e.wit) < r {
		e.wit = make([]int, r)
	}
	wit := e.wit[:r]

	p := &Product{
		m: m, r: r, a: a, b: b,
		rowStart: make([]int32, m+1),
		runK:     make([]int32, 0, 2*m),
		runJ:     make([]int32, 0, 2*m),
	}
	// One slice view serves every output row: the interface conversion
	// and the closure are hoisted, so the loop body allocates nothing.
	row := 0
	var wi marray.Matrix = marray.Func{M: r, N: q, F: func(k, j int) float64 {
		return a.At(row, j) + b.At(j, k)
	}}
	for i := 0; i < m; i++ {
		row = i
		if stair {
			e.d.StaircaseRowMinimaInto(wi, wit)
		} else {
			e.d.RowMinimaInto(wi, wit)
		}
		// Normalize +Inf entries to witness -1 and run-length encode:
		// a run break wherever the argmin row of B changes.
		prev := int32(math.MinInt32)
		for k := 0; k < r; k++ {
			j := int32(wit[k])
			if j >= 0 && math.IsInf(a.At(i, int(j))+b.At(int(j), k), 1) {
				j = -1
			}
			if j != prev {
				p.runK = append(p.runK, int32(k))
				p.runJ = append(p.runJ, j)
				prev = j
			}
		}
		p.rowStart[i+1] = int32(len(p.runK))
	}
	return p
}

// Product is the run-sparse (core) representation of a (min,+)
// product: per output row, the columns where the witness (the argmin
// row of B) changes, plus the retained factors. Entries are recomputed
// on demand as A[i][j*] + B[j*][k], so a Product implements
// marray.Matrix and can itself be a factor of the next multiplication
// — repeated squaring never materializes an n x n value array. Safe
// for concurrent At/Witness calls, like every Matrix.
type Product struct {
	m, r int
	a, b marray.Matrix
	// rowStart[i]..rowStart[i+1] index row i's runs in runK/runJ:
	// runK holds each run's first column, runJ its witness (-1 for a
	// +Inf run).
	rowStart []int32
	runK     []int32
	runJ     []int32
}

// Rows returns the row count m of the product.
func (p *Product) Rows() int { return p.m }

// Cols returns the column count r of the product.
func (p *Product) Cols() int { return p.r }

// At returns C[i][k] = A[i][j*] + B[j*][k] for the stored witness j*,
// or +Inf on a blocked entry. O(lg runs-in-row) by binary search.
func (p *Product) At(i, k int) float64 {
	j := p.Witness(i, k)
	if j < 0 {
		return inf
	}
	return p.a.At(i, j) + p.b.At(j, k)
}

// Witness returns the leftmost argmin row of B for entry (i, k) — the
// j attaining C[i][k], identical to the naive oracle's leftmost scan —
// or -1 where C[i][k] = +Inf.
func (p *Product) Witness(i, k int) int {
	if i < 0 || i >= p.m || k < 0 || k >= p.r {
		merr.Throwf(merr.ErrDimensionMismatch,
			"minplus: Witness(%d, %d) out of range for %dx%d product", i, k, p.m, p.r)
	}
	lo, hi := p.rowStart[i], p.rowStart[i+1] // invariant: runK[lo] <= k < runK[hi]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if int(p.runK[mid]) <= k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int(p.runJ[lo])
}

// Runs returns the total run count across all rows — the core size the
// sparsity gate measures. A dense representation would be m*r.
func (p *Product) Runs() int { return len(p.runK) }

// Dense materializes the product's values (blocked entries +Inf).
func (p *Product) Dense() *marray.Dense { return marray.Materialize(p) }

// MultiplyNaive is the O(m·q·r) reference oracle: values and witnesses
// by exhaustive leftmost scan, with the same conventions as the engine
// (strict < keeps the leftmost minimum; witness -1 and value +Inf when
// no finite candidate exists).
func MultiplyNaive(a, b marray.Matrix) (*marray.Dense, [][]int) {
	checkMul(a, b)
	m, q, r := a.Rows(), a.Cols(), b.Cols()
	c := marray.NewDense(m, r)
	wit := make([][]int, m)
	wb := make([]int, m*r)
	for i := 0; i < m; i++ {
		wit[i] = wb[i*r : (i+1)*r : (i+1)*r]
		for k := 0; k < r; k++ {
			best, bj := inf, -1
			for j := 0; j < q; j++ {
				if v := a.At(i, j) + b.At(j, k); v < best {
					best, bj = v, j
				}
			}
			c.Set(i, k, best)
			wit[i][k] = bj
		}
	}
	return c, wit
}
