package minplus

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"monge/internal/batch"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/pram"
)

// backends enumerates both execution engines; every differential test
// runs on each.
var backends = []struct {
	name string
	be   batch.Backend
}{
	{"pram", batch.BackendPRAM},
	{"native", batch.BackendNative},
}

// mulPair holds one test instance: both factors Monge (possibly
// staircase-Monge).
type mulPair struct {
	name string
	a, b marray.Matrix
}

// testPairs builds the factor families the multiplication suite runs:
// dense and implicit Monge, tie-rich integer Monge, staircase on
// either or both sides, inf-heavy staircases, and huge-aspect shapes.
func testPairs(rng *rand.Rand) []mulPair {
	fn := func(d *marray.Dense) marray.Matrix {
		return marray.Func{M: d.Rows(), N: d.Cols(), F: d.At}
	}
	stairA := marray.RandomStaircaseMongeInt(rng, 20, 16, 3)
	infHeavy := marray.RandomInfHeavyStaircase(rng, 24, 18)
	return []mulPair{
		{"dense-square", marray.RandomMonge(rng, 24, 24), marray.RandomMonge(rng, 24, 24)},
		{"dense-rect", marray.RandomMonge(rng, 17, 29), marray.RandomMonge(rng, 29, 11)},
		{"int-ties", marray.RandomMongeInt(rng, 23, 23, 2), marray.RandomMongeInt(rng, 23, 23, 2)},
		{"near-tie", marray.RandomNearTieMonge(rng, 19, 21), marray.RandomNearTieMonge(rng, 21, 15)},
		{"func-backed", fn(marray.RandomMonge(rng, 16, 20)), fn(marray.RandomMonge(rng, 20, 16))},
		{"stair-second", marray.RandomMongeInt(rng, 18, 22, 3), marray.RandomStaircaseMongeInt(rng, 22, 17, 3)},
		{"stair-first", stairA, marray.RandomMongeInt(rng, 16, 19, 3)},
		{"stair-both", marray.RandomStaircaseMongeInt(rng, 15, 18, 2), marray.RandomStaircaseMongeInt(rng, 18, 14, 2)},
		{"inf-heavy", marray.RandomMongeInt(rng, 12, 24, 2), infHeavy},
		{"row-vector", marray.RandomMonge(rng, 1, 33), marray.RandomMonge(rng, 33, 27)},
		{"col-vector", marray.RandomMonge(rng, 31, 29), marray.RandomMonge(rng, 29, 1)},
		{"inner-one", marray.RandomMonge(rng, 13, 1), marray.RandomMonge(rng, 1, 13)},
	}
}

// checkAgainstNaive asserts value- and witness-exactness of a Product
// against the naive oracle.
func checkAgainstNaive(t *testing.T, p *Product, a, b marray.Matrix) {
	t.Helper()
	want, wit := MultiplyNaive(a, b)
	if p.Rows() != want.Rows() || p.Cols() != want.Cols() {
		t.Fatalf("product is %dx%d, want %dx%d", p.Rows(), p.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < p.Rows(); i++ {
		for k := 0; k < p.Cols(); k++ {
			gv, wv := p.At(i, k), want.At(i, k)
			if gv != wv && !(math.IsInf(gv, 1) && math.IsInf(wv, 1)) {
				t.Fatalf("C[%d][%d] = %g, naive %g", i, k, gv, wv)
			}
			if gj, wj := p.Witness(i, k), wit[i][k]; gj != wj {
				t.Fatalf("witness[%d][%d] = %d, naive %d (value %g)", i, k, gj, wj, wv)
			}
		}
	}
}

// TestMultiplyMatchesNaive is the core differential: every factor
// family, both backends, value- and witness-exact against the oracle.
func TestMultiplyMatchesNaive(t *testing.T) {
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			e := New(bk.be)
			defer e.Close()
			rng := rand.New(rand.NewSource(61))
			for _, tc := range testPairs(rng) {
				t.Run(tc.name, func(t *testing.T) {
					checkAgainstNaive(t, e.Multiply(tc.a, tc.b), tc.a, tc.b)
				})
			}
		})
	}
}

// TestProductAsFactor pins the squaring story: a run-sparse Product is
// itself a valid Monge factor, and chained engine products agree with
// chained naive products entry for entry. Integer factors keep float
// addition association irrelevant.
func TestProductAsFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := marray.RandomMongeInt(rng, 20, 20, 3)
	b := marray.RandomMongeInt(rng, 20, 20, 3)
	c := marray.RandomMongeInt(rng, 20, 20, 3)
	e := New(batch.BackendNative)
	defer e.Close()

	ab := e.Multiply(a, b)
	abc := e.Multiply(ab, c)
	nAB, _ := MultiplyNaive(a, b)
	checkAgainstNaive(t, abc, nAB, c)

	// Core sparsity: the run representation must undercut the dense
	// m*r footprint on random Monge inputs.
	if ab.Runs() >= ab.Rows()*ab.Cols() {
		t.Errorf("A⊗B carries %d runs, no sparser than dense %d", ab.Runs(), ab.Rows()*ab.Cols())
	}
	// Dense materialization round-trips.
	d := abc.Dense()
	for i := 0; i < d.Rows(); i++ {
		for k := 0; k < d.Cols(); k++ {
			if d.At(i, k) != abc.At(i, k) {
				t.Fatalf("Dense()[%d][%d] = %g, product says %g", i, k, d.At(i, k), abc.At(i, k))
			}
		}
	}
}

// TestMultiplyErrors pins the typed error contract of the engine seam.
func TestMultiplyErrors(t *testing.T) {
	e := New(batch.BackendNative)
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	tryMul := func(a, b marray.Matrix) (err error) {
		defer merr.Catch(&err)
		e.Multiply(a, b)
		return nil
	}
	if err := tryMul(marray.RandomMonge(rng, 4, 5), marray.RandomMonge(rng, 4, 5)); !errors.Is(err, merr.ErrDimensionMismatch) {
		t.Fatalf("inner mismatch: err=%v, want ErrDimensionMismatch", err)
	}
	if err := tryMul(marray.NewDense(0, 0), marray.NewDense(0, 4)); !errors.Is(err, merr.ErrDimensionMismatch) {
		t.Fatalf("empty factor: err=%v, want ErrDimensionMismatch", err)
	}
	p := e.Multiply(marray.RandomMonge(rng, 4, 4), marray.RandomMonge(rng, 4, 4))
	tryWit := func(i, k int) (err error) {
		defer merr.Catch(&err)
		p.Witness(i, k)
		return nil
	}
	if err := tryWit(4, 0); !errors.Is(err, merr.ErrDimensionMismatch) {
		t.Fatalf("row overflow: err=%v, want ErrDimensionMismatch", err)
	}
	if err := tryWit(0, -1); !errors.Is(err, merr.ErrDimensionMismatch) {
		t.Fatalf("negative col: err=%v, want ErrDimensionMismatch", err)
	}
}

// TestIntoSliceTooShort pins the driver-level answer-slice check both
// Into methods gained for the engine.
func TestIntoSliceTooShort(t *testing.T) {
	for _, bk := range backends {
		d := batch.NewWithBackend(pram.CRCW, bk.be)
		a := marray.RandomMonge(rand.New(rand.NewSource(1)), 8, 8)
		try := func(f func()) (err error) {
			defer merr.Catch(&err)
			f()
			return nil
		}
		short := make([]int, 4)
		if err := try(func() { d.RowMinimaInto(a, short) }); !errors.Is(err, merr.ErrDimensionMismatch) {
			t.Fatalf("%s RowMinimaInto short: err=%v, want ErrDimensionMismatch", bk.name, err)
		}
		if err := try(func() { d.StaircaseRowMinimaInto(a, short) }); !errors.Is(err, merr.ErrDimensionMismatch) {
			t.Fatalf("%s StaircaseRowMinimaInto short: err=%v, want ErrDimensionMismatch", bk.name, err)
		}
		d.Close()
	}
}
