package minplus

import (
	"math"
	"math/rand"
	"testing"

	"monge/internal/batch"
	"monge/internal/marray"
)

// FuzzMinPlusMatchesNaive drives the (min,+) engine with hostile factor
// families — tie-dense integer Monge, 1e-9 near-tie perturbations,
// inf-heavy staircases, and huge-aspect shapes down to 1×n and n×1 —
// and checks every product three ways: the naive O(mqr) oracle, the
// PRAM backend, and the native backend must agree on every value AND
// every witness index (leftmost ties, -1 on blocked entries).
//
// Run locally with
//
//	go test ./internal/minplus -run='^$' -fuzz=FuzzMinPlusMatchesNaive -fuzztime=30s
func FuzzMinPlusMatchesNaive(f *testing.F) {
	f.Add(int64(1), 8, 8, 8, 0)
	f.Add(int64(2), 5, 17, 9, 1)
	f.Add(int64(3), 12, 7, 20, 2)
	f.Add(int64(4), 9, 9, 9, 3)
	// Huge-aspect shapes: row-vector, column-vector, and unit inner
	// dimension, where slice shapes degenerate.
	f.Add(int64(5), 1, 48, 13, 0)
	f.Add(int64(6), 21, 48, 1, 2)
	f.Add(int64(7), 16, 1, 16, 1)
	// Boundary shapes at the dense-scan and block cutoffs.
	f.Add(int64(8), 31, 32, 33, 3)
	f.Fuzz(func(t *testing.T, seed int64, rawM, rawQ, rawR, rawFam int) {
		clamp := func(x, mod int) int {
			if x < 0 {
				x = -x
			}
			return x%mod + 1
		}
		m, q, r := clamp(rawM, 48), clamp(rawQ, 48), clamp(rawR, 48)
		fam := clamp(rawFam, 4) - 1
		rng := rand.New(rand.NewSource(seed))
		var a, b marray.Matrix
		switch fam {
		case 0: // plain Monge, real-valued
			a, b = marray.RandomMonge(rng, m, q), marray.RandomMonge(rng, q, r)
		case 1: // tie-dense near-tie factors
			a, b = marray.RandomNearTieMonge(rng, m, q), marray.RandomNearTieMonge(rng, q, r)
		case 2: // staircase second factor, integer-tie first
			a, b = marray.RandomMongeInt(rng, m, q, 2), marray.RandomStaircaseMongeInt(rng, q, r, 2)
		default: // inf-heavy staircases on both sides
			a = marray.Materialize(marray.RandomInfHeavyStaircase(rng, m, q))
			b = marray.RandomInfHeavyStaircase(rng, q, r)
		}
		want, wit := MultiplyNaive(a, b)
		for _, bk := range []struct {
			name string
			be   batch.Backend
		}{{"pram", batch.BackendPRAM}, {"native", batch.BackendNative}} {
			e := New(bk.be)
			p := e.Multiply(a, b)
			for i := 0; i < m; i++ {
				for k := 0; k < r; k++ {
					gv, wv := p.At(i, k), want.At(i, k)
					if gv != wv && !(math.IsInf(gv, 1) && math.IsInf(wv, 1)) {
						t.Fatalf("seed=%d fam=%d %s: C[%d][%d]=%g, naive %g", seed, fam, bk.name, i, k, gv, wv)
					}
					if gj, wj := p.Witness(i, k), wit[i][k]; gj != wj {
						t.Fatalf("seed=%d fam=%d %s: witness[%d][%d]=%d, naive %d", seed, fam, bk.name, i, k, gj, wj)
					}
				}
			}
			e.Close()
		}
	})
}
