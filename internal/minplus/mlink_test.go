package minplus

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"monge/internal/batch"
	"monge/internal/marray"
	"monge/internal/merr"
)

// mongeWeight derives a Monge link weight from a dense integer Monge
// matrix over nodes 0..n: every quadruple i<i'<j<j' is a Monge minor,
// so the concave quadrangle inequality holds, and integer entries keep
// every strategy's float sums exact regardless of association order.
func mongeWeight(rng *rand.Rand, n int) Weight {
	d := marray.RandomMongeInt(rng, n+1, n+1, 4)
	return func(i, j int) float64 { return d.At(i, j) }
}

// checkPath asserts p is a valid exactly-M-link path 0 -> n whose edge
// sum reproduces cost within tol.
func checkPath(t *testing.T, n int, w Weight, M int, cost float64, p []int, tol float64) {
	t.Helper()
	if len(p) != M+1 || p[0] != 0 || p[M] != n {
		t.Fatalf("path %v: want %d links from 0 to %d", p, M, n)
	}
	sum := 0.0
	for l := 0; l < M; l++ {
		if p[l] >= p[l+1] {
			t.Fatalf("path %v not strictly increasing at link %d", p, l)
		}
		sum += w(p[l], p[l+1])
	}
	if diff := math.Abs(sum - cost); diff > tol {
		t.Fatalf("path edge sum %g, reported cost %g (diff %g > tol %g)", sum, cost, diff, tol)
	}
}

// TestMLinkStrategiesMatchBrute cross-checks all three strategies and
// both backends against the O(n²M) reference DP across M values from a
// single link to the full chain. Layered shares the reference's
// leftmost-predecessor rule, so its paths must match node for node;
// squaring and lambda resolve ties by their own decompositions, so
// they are held to exact cost and path validity.
func TestMLinkStrategiesMatchBrute(t *testing.T) {
	const n = 34
	rng := rand.New(rand.NewSource(11))
	w := mongeWeight(rng, n)
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			e := New(bk.be)
			defer e.Close()
			for _, M := range []int{1, 2, 3, 5, 8, 17, n - 1, n} {
				wantCost, wantPath := MLinkBrute(n, w, M)
				gotCost, gotPath := e.MLinkPathStrategy(n, w, M, StrategyLayered)
				if gotCost != wantCost {
					t.Fatalf("M=%d layered cost %g, brute %g", M, gotCost, wantCost)
				}
				for l := range wantPath {
					if gotPath[l] != wantPath[l] {
						t.Fatalf("M=%d layered path %v, brute %v", M, gotPath, wantPath)
					}
				}
				sqCost, sqPath := e.MLinkPathStrategy(n, w, M, StrategySquaring)
				if sqCost != wantCost {
					t.Fatalf("M=%d squaring cost %g, brute %g", M, sqCost, wantCost)
				}
				checkPath(t, n, w, M, sqCost, sqPath, 0)
				laCost, laPath := e.MLinkPathStrategy(n, w, M, StrategyLambda)
				if math.Abs(laCost-wantCost) > 1e-6 {
					t.Fatalf("M=%d lambda cost %g, brute %g", M, laCost, wantCost)
				}
				checkPath(t, n, w, M, laCost, laPath, 1e-6)
				auCost, auPath := e.MLinkPath(n, w, M)
				if math.Abs(auCost-wantCost) > 1e-6 {
					t.Fatalf("M=%d auto cost %g, brute %g", M, auCost, wantCost)
				}
				checkPath(t, n, w, M, auCost, auPath, 1e-6)
			}
		})
	}
}

// TestMLinkGeometricWeights runs a real-valued convex-gap family (the
// Monge weights of the alignment literature) through every strategy,
// with float tolerance for the cross-association sums.
func TestMLinkGeometricWeights(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(19))
	off := make([]float64, n+1)
	for i := range off {
		off[i] = rng.Float64() * 10
	}
	w := Weight(func(i, j int) float64 {
		return off[i] + off[j] + math.Pow(float64(j-i), 1.5)
	})
	e := New(batch.BackendNative)
	defer e.Close()
	for _, M := range []int{1, 4, 9, 25, n} {
		wantCost, _ := MLinkBrute(n, w, M)
		for _, s := range []Strategy{StrategySquaring, StrategyLayered, StrategyLambda} {
			cost, path := e.MLinkPathStrategy(n, w, M, s)
			if math.Abs(cost-wantCost) > 1e-9*(1+math.Abs(wantCost)) {
				t.Fatalf("M=%d %s cost %g, brute %g", M, s, cost, wantCost)
			}
			checkPath(t, n, w, M, cost, path, 1e-6)
		}
	}
}

// TestMLinkNoPath pins the (+Inf, nil) convention when M exceeds the
// node span, on every strategy and on the reference DP.
func TestMLinkNoPath(t *testing.T) {
	w := Weight(func(i, j int) float64 { return 1 })
	e := New(batch.BackendNative)
	defer e.Close()
	for _, s := range []Strategy{StrategyAuto, StrategySquaring, StrategyLayered, StrategyLambda} {
		if cost, path := e.MLinkPathStrategy(6, w, 7, s); !math.IsInf(cost, 1) || path != nil {
			t.Fatalf("%s M>n: cost=%g path=%v, want +Inf, nil", s, cost, path)
		}
	}
	if cost, path := MLinkBrute(6, w, 7); !math.IsInf(cost, 1) || path != nil {
		t.Fatalf("brute M>n: cost=%g path=%v, want +Inf, nil", cost, path)
	}
	// M == n leaves exactly the unit chain.
	cost, path := e.MLinkPath(5, w, 5)
	if cost != 5 {
		t.Fatalf("unit chain cost %g, want 5", cost)
	}
	for l, v := range path {
		if v != l {
			t.Fatalf("unit chain path %v", path)
		}
	}
}

// TestMLinkErrors pins the typed validation of the solver seam.
func TestMLinkErrors(t *testing.T) {
	e := New(batch.BackendNative)
	defer e.Close()
	w := Weight(func(i, j int) float64 { return 1 })
	try := func(n, M int) (err error) {
		defer merr.Catch(&err)
		e.MLinkPath(n, w, M)
		return nil
	}
	if err := try(0, 1); !errors.Is(err, merr.ErrDimensionMismatch) {
		t.Fatalf("n=0: err=%v, want ErrDimensionMismatch", err)
	}
	if err := try(5, 0); !errors.Is(err, merr.ErrDimensionMismatch) {
		t.Fatalf("M=0: err=%v, want ErrDimensionMismatch", err)
	}
}
