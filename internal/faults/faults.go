// Package faults is the deterministic fault-injection runtime of the
// simulated machines. It decides, from a seed and a rate, which units of
// work misbehave: worker-pool chunks that stall (transient processor
// faults), hypercube / CCC / shuffle-exchange link messages that are
// dropped or garbled in flight, and whole supersteps that time out. The
// runtime detects every injected fault and recovers — stalled chunks are
// re-dispatched by the pool, faulty link deliveries are retransmitted with
// exponential backoff, timed-out supersteps are re-executed — so under any
// schedule the algorithms still return index-exact results; only the
// charged time / communication counters inflate.
//
// # Determinism contract
//
// Every decision is a pure hash of (seed, fault site, superstep id, unit
// id, attempt number) — never of wall-clock time, goroutine identity, or
// invocation order. Two runs with the same seed, rate, and workload see
// the identical fault schedule even with different GOMAXPROCS or pool
// worker counts, which keeps the repository's worker-count determinism
// tests valid under fault injection (the fault-matrix CI job relies on
// this). Decisions for successive attempts at one unit are independent
// hashes, so a unit stalls k times with probability rate^k and every
// retry loop terminates (attempts are additionally capped at
// MaxAttempts).
//
// # Process-wide injector
//
// Global returns an injector configured from the FAULT_RATE and
// FAULT_SEED environment variables (nil when unset), which newly created
// machines attach by default; this is how the CI fault matrix runs the
// entire test suite under injection without touching any test.
package faults

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MaxAttempts caps the retries any single unit of work can suffer, so a
// misconfigured rate close to 1 cannot stall the simulation forever.
const MaxAttempts = 64

// MaxRate is the largest accepted injection rate; New clamps above it.
// Rates beyond this make the retry-charged counters meaningless long
// before they endanger termination.
const MaxRate = 0.9

// Fault sites: independent hash domains so a step's chunk-stall schedule
// never correlates with its link or timeout schedule.
const (
	siteStall uint64 = 0x5354414c4c << 8 // "STALL"
	siteDrop  uint64 = 0x44524f50 << 8   // "DROP"
	siteGarb  uint64 = 0x47415242 << 8   // "GARB"
	siteTime  uint64 = 0x54494d45 << 8   // "TIME"

	// Serving-boundary fault sites (internal/serve and internal/admit):
	// admission-queue stalls, query results lost between worker and
	// caller ("ticket drops", recovered by resubmission — queries are
	// pure), and shards that serve one query pathologically slowly.
	siteQStall uint64 = 0x515354414c4c << 8 // "QSTALL"
	siteTDrop  uint64 = 0x5444524f50 << 8   // "TDROP"
	siteSlow   uint64 = 0x534c4f57 << 8     // "SLOW"

	// Preprocessing fault site (internal/mindex): build units that
	// transiently fail and are recomputed.
	siteBuild uint64 = 0x4255494c44 << 8 // "BUILD"
)

// Stats counts the faults an injector has delivered and the recoveries
// the runtime performed. All fields are updated atomically; read them
// through Injector.Stats.
type Stats struct {
	// Stalls is the number of chunk executions that stalled and were
	// re-dispatched by the worker pool.
	Stalls int64
	// Drops is the number of link messages lost in flight and
	// retransmitted.
	Drops int64
	// Garbles is the number of link messages corrupted in flight, caught
	// by the (simulated) checksum, and retransmitted.
	Garbles int64
	// Timeouts is the number of superstep executions that timed out and
	// were re-run.
	Timeouts int64
	// QueueStalls is the number of admission-queue enqueues the serving
	// boundary delayed (injected submit-path stalls).
	QueueStalls int64
	// TicketDrops is the number of served results lost between worker
	// and caller and recovered by resubmission.
	TicketDrops int64
	// SlowShards is the number of queries served with injected extra
	// shard latency.
	SlowShards int64
	// BuildFaults is the number of index-preprocessing units that
	// transiently failed and were recomputed.
	BuildFaults int64
}

// Injector decides and counts injected faults. A nil *Injector is valid
// and injects nothing, at the cost of one nil check per query; machines
// treat "no injector" and "rate 0" identically.
type Injector struct {
	seed  uint64
	rate  float64
	bar   uint64 // decision threshold: hash < bar ==> fault
	stats Stats
}

// New returns an injector with the given seed and per-unit fault rate.
// The rate is clamped to [0, MaxRate]; rate 0 returns a valid injector
// that never fires (useful for uniform wiring).
func New(seed int64, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > MaxRate {
		rate = MaxRate
	}
	var bar uint64
	if rate > 0 {
		bar = uint64(rate * float64(1<<63) * 2)
	}
	return &Injector{seed: uint64(seed), rate: rate, bar: bar}
}

// Rate returns the clamped per-unit fault rate (0 for a nil injector).
func (in *Injector) Rate() float64 {
	if in == nil {
		return 0
	}
	return in.rate
}

// Enabled reports whether the injector can fire at all.
func (in *Injector) Enabled() bool { return in != nil && in.bar > 0 }

// Stats returns a snapshot of the delivered-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Stalls:      atomic.LoadInt64(&in.stats.Stalls),
		Drops:       atomic.LoadInt64(&in.stats.Drops),
		Garbles:     atomic.LoadInt64(&in.stats.Garbles),
		Timeouts:    atomic.LoadInt64(&in.stats.Timeouts),
		QueueStalls: atomic.LoadInt64(&in.stats.QueueStalls),
		TicketDrops: atomic.LoadInt64(&in.stats.TicketDrops),
		SlowShards:  atomic.LoadInt64(&in.stats.SlowShards),
		BuildFaults: atomic.LoadInt64(&in.stats.BuildFaults),
	}
}

// String describes the injector configuration.
func (in *Injector) String() string {
	if !in.Enabled() {
		return "faults: off"
	}
	return fmt.Sprintf("faults: rate=%g seed=%d", in.rate, int64(in.seed))
}

// mix is splitmix64 over the xor-folded inputs: a well-dispersed 64-bit
// hash that makes per-attempt decisions independent.
func mix(a, b, c, d uint64) uint64 {
	z := a ^ b*0x9e3779b97f4a7c15 ^ c*0xbf58476d1ce4e5b9 ^ d*0x94d049bb133111eb
	z += 0x9e3779b97f4a7c15
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (in *Injector) fires(site, step, unit, attempt uint64) bool {
	return mix(in.seed^site, step, unit, attempt) < in.bar
}

// StallFn returns the chunk-stall predicate for one superstep, suitable
// for exec.Loop.Stall: it reports whether the given chunk's given attempt
// stalls, counting each stall. Returns nil for a disabled injector so the
// pool takes its fast path.
func (in *Injector) StallFn(step int64) func(chunk, attempt int) bool {
	if !in.Enabled() {
		return nil
	}
	return func(chunk, attempt int) bool {
		if attempt >= MaxAttempts || !in.fires(siteStall, uint64(step), uint64(chunk), uint64(attempt)) {
			return false
		}
		atomic.AddInt64(&in.stats.Stalls, 1)
		return true
	}
}

// LinkFaults returns how many deliveries of superstep step's message to
// processor p fail before the clean one: drops (message lost, receiver
// times out and requests retransmission) and garbles (message corrupted,
// checksum fails, retransmission requested). The clean delivery is not
// counted; a zero/zero return is the overwhelmingly common fault-free
// case.
func (in *Injector) LinkFaults(step int64, p int) (drops, garbles int) {
	if !in.Enabled() {
		return 0, 0
	}
	for a := 0; a < MaxAttempts; a++ {
		if in.fires(siteDrop, uint64(step), uint64(p), uint64(a)) {
			drops++
			continue
		}
		if in.fires(siteGarb, uint64(step), uint64(p), uint64(a)) {
			garbles++
			continue
		}
		break
	}
	if drops > 0 {
		atomic.AddInt64(&in.stats.Drops, int64(drops))
	}
	if garbles > 0 {
		atomic.AddInt64(&in.stats.Garbles, int64(garbles))
	}
	return drops, garbles
}

// StepTimeouts returns how many executions of superstep step time out
// before the one that completes, counting them. The machines charge a
// full re-execution per timeout; the effect-free failed attempts (writes
// are buffered, exchanges are pure) make the re-run invisible to outputs.
func (in *Injector) StepTimeouts(step int64) int {
	if !in.Enabled() {
		return 0
	}
	t := 0
	for t < MaxAttempts && in.fires(siteTime, uint64(step), 0, uint64(t)) {
		t++
	}
	if t > 0 {
		atomic.AddInt64(&in.stats.Timeouts, int64(t))
	}
	return t
}

// BackoffTime returns the total charged wait of the exponential
// retry-with-backoff policy after `retries` failed deliveries: the r-th
// retransmission waits 2^(r-1) time units, capped per retry at 2^10, so
// the total is 2^retries - 1 for small counts. Zero retries charge
// nothing.
func BackoffTime(retries int) int64 {
	var total, wait int64 = 0, 1
	for r := 0; r < retries; r++ {
		total += wait
		if wait < 1<<10 {
			wait <<= 1
		}
	}
	return total
}

// Serving-boundary chaos. These decisions follow the same determinism
// contract as the machine-level sites — pure hashes of (seed, site,
// unit, attempt), never of time or goroutine identity — so a chaos run
// of the serving layer sees the identical fault schedule at any worker
// count. The injected latencies are fixed small constants: large enough
// to reorder queue service and trip hedging thresholds in tests, small
// enough that a chaos suite at rate 0.05 stays fast.
const (
	// QueueStallLatency is the submit-path delay of one injected queue
	// stall (the serving analogue of a stalled chunk).
	QueueStallLatency = 200 * time.Microsecond
	// SlowShardLatency is the extra service latency of one injected
	// slow-shard fault.
	SlowShardLatency = 2 * time.Millisecond
)

// QueueStall returns the injected delay before enqueueing admission
// unit `unit` (0 in the overwhelmingly common clean case), counting
// delivered stalls.
func (in *Injector) QueueStall(unit int64) time.Duration {
	if !in.Enabled() || !in.fires(siteQStall, 0, uint64(unit), 0) {
		return 0
	}
	atomic.AddInt64(&in.stats.QueueStalls, 1)
	return QueueStallLatency
}

// TicketDrop reports whether the result of admission unit `unit`'s
// given delivery attempt is lost between worker and caller (the caller
// recovers by resubmitting — queries are pure, so the recomputed answer
// is identical). Decisions for successive attempts are independent
// hashes and attempts at MaxAttempts or beyond never drop, so recovery
// always terminates.
func (in *Injector) TicketDrop(unit int64, attempt int) bool {
	if !in.Enabled() || attempt >= MaxAttempts || !in.fires(siteTDrop, 0, uint64(unit), uint64(attempt)) {
		return false
	}
	atomic.AddInt64(&in.stats.TicketDrops, 1)
	return true
}

// SlowShard returns the extra service latency injected into shard
// `shard`'s service of its seq-th query (0 in the clean case), counting
// delivered slow-shard faults.
func (in *Injector) SlowShard(shard int, seq int64) time.Duration {
	if !in.Enabled() || !in.fires(siteSlow, uint64(shard), uint64(seq), 0) {
		return 0
	}
	atomic.AddInt64(&in.stats.SlowShards, 1)
	return SlowShardLatency
}

// BuildFault reports whether the given attempt at index-preprocessing
// unit `unit` transiently fails (the builder recovers by recomputing
// the unit — build units are pure, so the recomputed state is
// identical). Decisions for successive attempts are independent hashes
// and attempts at MaxAttempts or beyond never fail, so every build
// terminates.
func (in *Injector) BuildFault(unit int64, attempt int) bool {
	if !in.Enabled() || attempt >= MaxAttempts || !in.fires(siteBuild, 0, uint64(unit), uint64(attempt)) {
		return false
	}
	atomic.AddInt64(&in.stats.BuildFaults, 1)
	return true
}

var (
	globalOnce sync.Once
	globalInj  *Injector
)

// SetGlobal installs in as the process-wide injector that newly created
// machines attach (nil turns injection off for machines created later).
// It overrides the environment configuration; existing machines keep the
// injector they already attached. Command-line front ends (mongebench
// -faults) use this; tests should prefer per-machine SetFaults.
func SetGlobal(in *Injector) {
	globalOnce.Do(func() {})
	globalInj = in
}

// Global returns the process-wide injector configured from the
// environment, or nil when fault injection is off. FAULT_RATE (a float in
// (0, MaxRate]) enables it; FAULT_SEED (default 1) seeds it. Parsed once;
// newly created machines attach it by default, mirroring
// exec.GlobalSink.
func Global() *Injector {
	globalOnce.Do(func() {
		v := os.Getenv("FAULT_RATE")
		if v == "" {
			return
		}
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil || rate <= 0 {
			return
		}
		seed := int64(1)
		if s := os.Getenv("FAULT_SEED"); s != "" {
			if n, err := strconv.ParseInt(s, 10, 64); err == nil {
				seed = n
			}
		}
		globalInj = New(seed, rate)
	})
	return globalInj
}
