package faults

import (
	"testing"
	"time"
)

// TestServingSitesDeterministic pins the pure-hash contract of the
// serving-boundary fault sites: same seed and rate reproduce the exact
// schedule, a different seed diverges somewhere, and the three sites
// draw from independent streams.
func TestServingSitesDeterministic(t *testing.T) {
	a, b := New(7, 0.3), New(7, 0.3)
	other := New(9, 0.3)
	sameAsOther := true
	for unit := int64(0); unit < 200; unit++ {
		da := a.QueueStall(unit)
		if da != b.QueueStall(unit) {
			t.Fatalf("unit %d: queue-stall schedule differs for same seed", unit)
		}
		if da != other.QueueStall(unit) {
			sameAsOther = false
		}
		for attempt := 0; attempt < 3; attempt++ {
			if a.TicketDrop(unit, attempt) != b.TicketDrop(unit, attempt) {
				t.Fatalf("unit %d attempt %d: ticket-drop schedule differs for same seed", unit, attempt)
			}
		}
		if a.SlowShard(int(unit)%4, unit) != b.SlowShard(int(unit)%4, unit) {
			t.Fatalf("unit %d: slow-shard schedule differs for same seed", unit)
		}
	}
	if sameAsOther {
		t.Fatal("seeds 7 and 9 produced identical queue-stall schedules")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestServingSitesNilAndDisabled pins the call-site contract: nil and
// rate-0 injectors inject nothing, so the serving layer needs no
// special-casing beyond its existing nil check.
func TestServingSitesNilAndDisabled(t *testing.T) {
	var nilInj *Injector
	for _, in := range []*Injector{nilInj, New(1, 0)} {
		for unit := int64(0); unit < 20; unit++ {
			if in.QueueStall(unit) != 0 {
				t.Fatal("disabled injector stalls the queue")
			}
			if in.TicketDrop(unit, 0) {
				t.Fatal("disabled injector drops tickets")
			}
			if in.SlowShard(0, unit) != 0 {
				t.Fatal("disabled injector slows shards")
			}
		}
		if s := in.Stats(); s.QueueStalls != 0 || s.TicketDrops != 0 || s.SlowShards != 0 {
			t.Fatalf("disabled injector counted serving faults: %+v", s)
		}
	}
}

// TestTicketDropBounded pins retry-termination: past MaxAttempts the
// drop site never fires, so drop-recovery loops always converge even at
// rate 0.9.
func TestTicketDropBounded(t *testing.T) {
	in := New(3, 0.9)
	fired := false
	for unit := int64(0); unit < 100; unit++ {
		if in.TicketDrop(unit, 0) {
			fired = true
		}
		if in.TicketDrop(unit, MaxAttempts) {
			t.Fatalf("unit %d: ticket drop fired at attempt %d (the recovery bound)", unit, MaxAttempts)
		}
	}
	if !fired {
		t.Fatal("rate-0.9 injector never dropped a ticket in 100 units")
	}
}

// TestServingLatenciesAndCounts pins the injected delays' magnitudes
// (they must stay bounded constants the latency ladder can absorb) and
// that delivered faults are counted in Stats.
func TestServingLatenciesAndCounts(t *testing.T) {
	in := New(5, 0.9)
	var stalls, slows int
	for unit := int64(0); unit < 100; unit++ {
		if d := in.QueueStall(unit); d != 0 {
			stalls++
			if d != QueueStallLatency {
				t.Fatalf("queue stall latency %v, want %v", d, QueueStallLatency)
			}
		}
		if d := in.SlowShard(1, unit); d != 0 {
			slows++
			if d != SlowShardLatency {
				t.Fatalf("slow-shard latency %v, want %v", d, SlowShardLatency)
			}
		}
	}
	if stalls == 0 || slows == 0 {
		t.Fatalf("rate-0.9 injector delivered stalls=%d slows=%d, want both > 0", stalls, slows)
	}
	st := in.Stats()
	if st.QueueStalls != int64(stalls) || st.SlowShards != int64(slows) {
		t.Fatalf("stats %+v disagree with delivered counts stalls=%d slows=%d", st, stalls, slows)
	}
	if QueueStallLatency <= 0 || QueueStallLatency > time.Millisecond {
		t.Fatalf("QueueStallLatency %v out of the sub-millisecond design range", QueueStallLatency)
	}
	if SlowShardLatency <= 0 || SlowShardLatency > 10*time.Millisecond {
		t.Fatalf("SlowShardLatency %v out of the few-millisecond design range", SlowShardLatency)
	}
}
