package faults

import "testing"

// TestDeterministicSchedule pins the determinism contract: two injectors
// with the same seed and rate produce identical decisions for every
// (site, step, unit, attempt) query, and a different seed produces a
// different schedule somewhere.
func TestDeterministicSchedule(t *testing.T) {
	a, b := New(7, 0.3), New(7, 0.3)
	other := New(8, 0.3)
	sameAsOther := true
	for step := int64(0); step < 50; step++ {
		fa, fb := a.StallFn(step), b.StallFn(step)
		fo := other.StallFn(step)
		for chunk := 0; chunk < 8; chunk++ {
			for attempt := 0; attempt < 3; attempt++ {
				x, y := fa(chunk, attempt), fb(chunk, attempt)
				if x != y {
					t.Fatalf("step %d chunk %d attempt %d: same seed disagrees", step, chunk, attempt)
				}
				if x != fo(chunk, attempt) {
					sameAsOther = false
				}
			}
		}
		d1, g1 := a.LinkFaults(step, int(step)%5)
		d2, g2 := b.LinkFaults(step, int(step)%5)
		if d1 != d2 || g1 != g2 {
			t.Fatalf("step %d: link schedule differs for same seed", step)
		}
		if a.StepTimeouts(step) != b.StepTimeouts(step) {
			t.Fatalf("step %d: timeout schedule differs for same seed", step)
		}
	}
	if sameAsOther {
		t.Fatal("seeds 7 and 8 produced identical stall schedules")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestNilAndDisabledInjectors checks the nil receiver and rate-0 paths
// machines rely on (no nil checks at call sites).
func TestNilAndDisabledInjectors(t *testing.T) {
	var nilInj *Injector
	for _, in := range []*Injector{nilInj, New(1, 0)} {
		if in.Enabled() {
			t.Fatal("disabled injector reports Enabled")
		}
		if in.Rate() != 0 {
			t.Fatal("disabled injector reports nonzero rate")
		}
		if in.StallFn(3) != nil {
			t.Fatal("disabled injector must return a nil stall predicate (pool fast path)")
		}
		if d, g := in.LinkFaults(3, 0); d != 0 || g != 0 {
			t.Fatal("disabled injector injects link faults")
		}
		if in.StepTimeouts(3) != 0 {
			t.Fatal("disabled injector injects timeouts")
		}
		if s := (in.Stats()); s != (Stats{}) {
			t.Fatalf("disabled injector has stats %+v", s)
		}
		_ = in.String()
	}
}

// TestRateClamp checks New clamps rates into [0, MaxRate].
func TestRateClamp(t *testing.T) {
	if r := New(1, -0.5).Rate(); r != 0 {
		t.Fatalf("negative rate clamped to %g, want 0", r)
	}
	if r := New(1, 5).Rate(); r != MaxRate {
		t.Fatalf("excess rate clamped to %g, want %g", r, MaxRate)
	}
}

// TestAttemptsBounded checks every retry loop terminates within
// MaxAttempts even at the maximum rate.
func TestAttemptsBounded(t *testing.T) {
	in := New(3, MaxRate)
	for step := int64(0); step < 200; step++ {
		f := in.StallFn(step)
		st := 0
		for a := 0; f(0, a); a++ {
			st++
		}
		if st > MaxAttempts {
			t.Fatalf("step %d: %d stalls exceeds MaxAttempts", step, st)
		}
		if d, g := in.LinkFaults(step, 1); d+g > MaxAttempts {
			t.Fatalf("step %d: %d link faults exceeds MaxAttempts", step, d+g)
		}
		if x := in.StepTimeouts(step); x > MaxAttempts {
			t.Fatalf("step %d: %d timeouts exceeds MaxAttempts", step, x)
		}
	}
}

// TestStatsCount checks delivered faults are counted.
func TestStatsCount(t *testing.T) {
	in := New(5, MaxRate)
	for step := int64(0); step < 100; step++ {
		f := in.StallFn(step)
		for a := 0; f(0, a); a++ {
		}
		in.LinkFaults(step, 0)
		in.StepTimeouts(step)
	}
	s := in.Stats()
	if s.Stalls+s.Drops+s.Garbles+s.Timeouts == 0 {
		t.Fatalf("rate %g over 100 steps delivered no faults: %+v", MaxRate, s)
	}
}

// TestBackoffTime pins the exponential backoff schedule and its per-retry
// cap.
func TestBackoffTime(t *testing.T) {
	cases := []struct {
		retries int
		want    int64
	}{
		{0, 0}, {1, 1}, {2, 3}, {3, 7}, {4, 15}, {10, 1023}, {11, 2047},
		// After the 2^10 per-retry cap the growth is linear.
		{12, 2047 + 1024}, {14, 2047 + 3*1024},
	}
	for _, c := range cases {
		if got := BackoffTime(c.retries); got != c.want {
			t.Fatalf("BackoffTime(%d) = %d, want %d", c.retries, got, c.want)
		}
	}
}
