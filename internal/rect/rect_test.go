package rect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/pram"
)

func randPts(rng *rand.Rand, n int, b Rect) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: b.X0 + rng.Float64()*(b.X1-b.X0),
			Y: b.Y0 + rng.Float64()*(b.Y1-b.Y0),
		}
	}
	return pts
}

var box = Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}

// strictlyInside checks interior membership with a safety margin: the
// coordinate transforms used by the anchored solver can round edges by an
// ulp, which is not a genuine violation.
func strictlyInside(r Rect, p Point) bool {
	const eps = 1e-9
	return p.X > r.X0+eps && p.X < r.X1-eps && p.Y > r.Y0+eps && p.Y < r.Y1-eps
}

func TestRectArea(t *testing.T) {
	if (Rect{X0: 1, Y0: 2, X1: 4, Y1: 6}).Area() != 12 {
		t.Fatal("area wrong")
	}
	if (Rect{X0: 4, Y0: 2, X1: 1, Y1: 6}).Area() != 0 {
		t.Fatal("degenerate rect must have area 0")
	}
}

func TestMaxCornerRectMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(60)
		pts := randPts(rng, n, box)
		got, gi, gj := MaxCornerRect(pts)
		want, _, _ := MaxCornerRectBrute(pts)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("trial %d (n=%d): got %v want %v", trial, n, got, want)
		}
		check := math.Abs(pts[gi].X-pts[gj].X) * math.Abs(pts[gi].Y-pts[gj].Y)
		if math.Abs(check-got) > 1e-9*math.Max(1, got) {
			t.Fatalf("returned pair does not realise the area: %v vs %v", check, got)
		}
	}
}

func TestMaxCornerRectPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(50)
		pts := randPts(rng, n, box)
		mach := pram.New(pram.CRCW, n)
		got, _, _ := MaxCornerRectPRAM(mach, pts)
		want, _, _ := MaxCornerRectBrute(pts)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		if mach.Time() == 0 {
			t.Fatal("machine must be charged")
		}
	}
}

func TestMaxCornerRectDegenerate(t *testing.T) {
	if a, _, _ := MaxCornerRect(nil); a != -1 {
		t.Fatal("n<2 should give -1")
	}
	if a, _, _ := MaxCornerRect([]Point{{X: 1, Y: 1}}); a != -1 {
		t.Fatal("n<2 should give -1")
	}
	// Collinear points: zero area is correct.
	a, _, _ := MaxCornerRect([]Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	if a != 0 {
		t.Fatalf("collinear points should give 0, got %v", a)
	}
}

// TestMaxCornerRectCRCWLogTime checks the application-2 shape claim:
// Theta(lg n) CRCW time with n processors.
func TestMaxCornerRectCRCWLogTime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	timeFor := func(n int) float64 {
		pts := randPts(rng, n, box)
		mach := pram.New(pram.CRCW, n)
		MaxCornerRectPRAM(mach, pts)
		return float64(mach.Time()) / float64(pram.Log2Ceil(n))
	}
	r256, r4096 := timeFor(256), timeFor(4096)
	if r4096 > 3*r256 {
		t.Fatalf("time/lg n grows too fast: %f -> %f", r256, r4096)
	}
}

func TestLargestEmptyRectMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(12)
		pts := randPts(rng, n, box)
		got := LargestEmptyRect(pts, box)
		want := LargestEmptyRectBrute(pts, box)
		if math.Abs(got.Area()-want.Area()) > 1e-9*math.Max(1, want.Area()) {
			t.Fatalf("trial %d (n=%d): got area %v (%+v) want %v (%+v)",
				trial, n, got.Area(), got, want.Area(), want)
		}
		for _, p := range pts {
			if strictlyInside(got, p) {
				t.Fatalf("returned rectangle contains point %+v", p)
			}
		}
	}
}

func TestLargestEmptyRectNoPoints(t *testing.T) {
	got := LargestEmptyRect(nil, box)
	if got != box {
		t.Fatalf("no points: whole box expected, got %+v", got)
	}
}

func TestLargestAnchoredRectMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		n := rng.Intn(10)
		pts := randPts(rng, n, box)
		got := LargestAnchoredRect(nil, pts, box)
		want := LargestAnchoredRectBrute(pts, box)
		if math.Abs(got.Area()-want.Area()) > 1e-9*math.Max(1, want.Area()) {
			t.Fatalf("trial %d (n=%d): got %v want %v", trial, n, got.Area(), want.Area())
		}
		for _, p := range pts {
			if strictlyInside(got, p) {
				t.Fatalf("anchored rectangle contains a point")
			}
		}
	}
}

func TestLargestAnchoredRectPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		pts := randPts(rng, n, box)
		mach := pram.New(pram.CRCW, n)
		got := LargestAnchoredRect(mach, pts, box)
		want := LargestAnchoredRect(nil, pts, box)
		if math.Abs(got.Area()-want.Area()) > 1e-9 {
			t.Fatalf("trial %d: PRAM %v vs seq %v", trial, got.Area(), want.Area())
		}
		if mach.Time() == 0 {
			t.Fatal("machine must be charged")
		}
	}
}

// TestAnchoredIsLowerBound: the anchored families always lower-bound the
// global optimum, and on sparse inputs they often realise it.
func TestAnchoredIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hits := 0
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(15)
		pts := randPts(rng, n, box)
		anch := LargestAnchoredRect(nil, pts, box)
		full := LargestEmptyRect(pts, box)
		if anch.Area() > full.Area()+1e-9 {
			t.Fatalf("anchored exceeds global optimum")
		}
		if math.Abs(anch.Area()-full.Area()) < 1e-9 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("anchored families never matched the optimum (suspicious)")
	}
}

func TestQuickEmptyRect(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randPts(rng, rng.Intn(9), box)
		got := LargestEmptyRect(pts, box)
		want := LargestEmptyRectBrute(pts, box)
		return math.Abs(got.Area()-want.Area()) < 1e-9*math.Max(1, want.Area())
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxCornerRect(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		pts := randPts(rng, n, box)
		got, _, _ := MaxCornerRect(pts)
		want, _, _ := MaxCornerRectBrute(pts)
		return math.Abs(got-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}
