package rect

import (
	"math"
	"sort"

	"monge/internal/pram"
)

// Rect is an axis-parallel rectangle [X0, X1] x [Y0, Y1].
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Area returns the rectangle's area (0 for degenerate rectangles).
func (r Rect) Area() float64 {
	if r.X1 <= r.X0 || r.Y1 <= r.Y0 {
		return 0
	}
	return (r.X1 - r.X0) * (r.Y1 - r.Y0)
}

// containsInterior reports whether p lies strictly inside r.
func (r Rect) containsInterior(p Point) bool {
	return p.X > r.X0 && p.X < r.X1 && p.Y > r.Y0 && p.Y < r.Y1
}

// LargestEmptyRect solves application 1 exactly and sequentially: the
// maximum-area axis-parallel rectangle inside bounds whose interior
// contains none of the points. The classical window-narrowing scan
// (Naamad-Lee-Hsu): every maximal empty rectangle has each side supported
// by a point or by the boundary, so scanning rightward from each left
// support (and leftward from each right support, for rectangles whose left
// side is the boundary) while narrowing the vertical window enumerates all
// candidates in O(n^2).
func LargestEmptyRect(pts []Point, bounds Rect) Rect {
	best := bounds // the whole box, for the point-free case
	bestArea := 0.0
	if len(pts) == 0 {
		return bounds
	}
	bestArea = -1.0
	improve := func(r Rect) {
		if a := r.Area(); a > bestArea {
			bestArea, best = a, r
		}
	}

	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].X < pts[order[b]].X })

	// Vertical slabs between x-consecutive points (and against the
	// boundary), full height.
	prevX := bounds.X0
	for _, id := range order {
		improve(Rect{X0: prevX, Y0: bounds.Y0, X1: pts[id].X, Y1: bounds.Y1})
		if pts[id].X > prevX {
			prevX = pts[id].X
		}
	}
	improve(Rect{X0: prevX, Y0: bounds.Y0, X1: bounds.X1, Y1: bounds.Y1})

	// Horizontal slabs, full width.
	ys := make([]float64, 0, len(pts)+2)
	ys = append(ys, bounds.Y0, bounds.Y1)
	for _, p := range pts {
		ys = append(ys, p.Y)
	}
	sort.Float64s(ys)
	for i := 1; i < len(ys); i++ {
		improve(Rect{X0: bounds.X0, Y0: ys[i-1], X1: bounds.X1, Y1: ys[i]})
	}

	// Left-support scans: rectangles whose left edge passes through point
	// i; the vertical window narrows at each point passed.
	for oi, id := range order {
		lo, hi := bounds.Y0, bounds.Y1
		for oj := oi + 1; oj < len(order); oj++ {
			jd := order[oj]
			if pts[jd].Y <= lo || pts[jd].Y >= hi {
				continue
			}
			improve(Rect{X0: pts[id].X, Y0: lo, X1: pts[jd].X, Y1: hi})
			if pts[jd].Y > pts[id].Y {
				hi = pts[jd].Y
			} else if pts[jd].Y < pts[id].Y {
				lo = pts[jd].Y
			} else {
				improve(Rect{X0: pts[id].X, Y0: lo, X1: pts[jd].X, Y1: hi})
				break // window collapses onto y_i
			}
			if hi-lo <= 0 {
				break
			}
		}
		improve(Rect{X0: pts[id].X, Y0: lo, X1: bounds.X1, Y1: hi})
	}

	// Right-support scans (catch rectangles whose left edge is the
	// boundary).
	for oi := len(order) - 1; oi >= 0; oi-- {
		id := order[oi]
		lo, hi := bounds.Y0, bounds.Y1
		for oj := oi - 1; oj >= 0; oj-- {
			jd := order[oj]
			if pts[jd].Y <= lo || pts[jd].Y >= hi {
				continue
			}
			improve(Rect{X0: pts[jd].X, Y0: lo, X1: pts[id].X, Y1: hi})
			if pts[jd].Y > pts[id].Y {
				hi = pts[jd].Y
			} else if pts[jd].Y < pts[id].Y {
				lo = pts[jd].Y
			} else {
				break
			}
			if hi-lo <= 0 {
				break
			}
		}
		improve(Rect{X0: bounds.X0, Y0: lo, X1: pts[id].X, Y1: hi})
	}
	return best
}

// LargestEmptyRectBrute checks all O(n^4) support combinations; exact but
// intended only for validating LargestEmptyRect on small inputs.
func LargestEmptyRectBrute(pts []Point, bounds Rect) Rect {
	xs := []float64{bounds.X0, bounds.X1}
	ys := []float64{bounds.Y0, bounds.Y1}
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	best := Rect{}
	bestArea := -1.0
	for _, x0 := range xs {
		for _, x1 := range xs {
			if x1 <= x0 {
				continue
			}
			for _, y0 := range ys {
				for _, y1 := range ys {
					if y1 <= y0 {
						continue
					}
					r := Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
					empty := true
					for _, p := range pts {
						if r.containsInterior(p) {
							empty = false
							break
						}
					}
					if empty {
						if a := r.Area(); a > bestArea {
							bestArea, best = a, r
						}
					}
				}
			}
		}
	}
	return best
}

// LargestAnchoredRect computes, in O(lg n) simulated parallel time with n
// processors, the largest empty rectangle ANCHORED on the given side of
// the boundary (its bottom edge lies on bounds' bottom side, etc., for
// each of the four sides in turn), using the histogram reduction: with the
// points sorted by x, the anchored-height profile is a histogram whose
// largest rectangle is found with All Nearest Smaller Values (the
// [BBG+89] primitive the paper's Lemma 2.2 uses). It returns the best
// rectangle over all four anchored families.
func LargestAnchoredRect(mach *pram.Machine, pts []Point, bounds Rect) Rect {
	best := Rect{}
	bestArea := -1.0
	improve := func(r Rect) {
		if a := r.Area(); a > bestArea {
			bestArea, best = a, r
		}
	}
	// Transform each side's family into the bottom-anchored frame, solve,
	// and map back.
	type frame struct {
		fwd func(Point) Point
		inv func(Rect) Rect
	}
	w := func(r Rect) Rect { return r }
	frames := []frame{
		{fwd: func(p Point) Point { return p }, inv: w}, // bottom
		{fwd: func(p Point) Point { return Point{X: p.X, Y: bounds.Y0 + bounds.Y1 - p.Y} },
			inv: func(r Rect) Rect {
				return Rect{X0: r.X0, X1: r.X1, Y0: bounds.Y0 + bounds.Y1 - r.Y1, Y1: bounds.Y0 + bounds.Y1 - r.Y0}
			}}, // top (flip y)
		{fwd: func(p Point) Point { return Point{X: p.Y, Y: p.X} },
			inv: func(r Rect) Rect {
				return Rect{X0: r.Y0, X1: r.Y1, Y0: r.X0, Y1: r.X1}
			}}, // left (transpose)
		{fwd: func(p Point) Point { return Point{X: p.Y, Y: bounds.X0 + bounds.X1 - p.X} },
			inv: func(r Rect) Rect {
				return Rect{X0: bounds.X0 + bounds.X1 - r.Y1, X1: bounds.X0 + bounds.X1 - r.Y0, Y0: r.X0, Y1: r.X1}
			}}, // right (transpose + flip)
	}
	boundsFor := []Rect{
		bounds,
		bounds,
		{X0: bounds.Y0, Y0: bounds.X0, X1: bounds.Y1, Y1: bounds.X1},
		{X0: bounds.Y0, Y0: bounds.X0, X1: bounds.Y1, Y1: bounds.X1},
	}
	for fi, fr := range frames {
		tp := make([]Point, len(pts))
		for i, p := range pts {
			tp[i] = fr.fwd(p)
		}
		r := bottomAnchored(mach, tp, boundsFor[fi])
		improve(fr.inv(r))
	}
	return best
}

// bottomAnchored finds the largest empty rectangle whose bottom edge lies
// on b.Y0: the histogram problem over the x-sorted points.
func bottomAnchored(mach *pram.Machine, pts []Point, b Rect) Rect {
	n := len(pts)
	if n == 0 {
		return b
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return pts[order[x]].X < pts[order[y]].X })
	if mach != nil {
		mach.StepCost(n, pram.Log2Ceil(n)+1, func(int) {}) // charged parallel sort
	}
	// Histogram bars: bar i at x-interval (x_{i-1}, x_{i+1}) has height
	// y_i - b.Y0; a rectangle of height h anchored at the bottom can span
	// horizontally until a bar lower than h on each side: exactly the
	// nearest-smaller-value structure.
	heights := make([]float64, n)
	xs := make([]float64, n)
	for i, id := range order {
		heights[i] = pts[id].Y - b.Y0
		xs[i] = pts[id].X
	}
	var left, right []int
	if mach != nil {
		arr := pram.NewArray[float64](mach, n)
		arr.Fill(heights)
		l, r := pram.ANSV(mach, arr)
		left, right = l.Snapshot(), r.Snapshot()
	} else {
		left, right = pram.ANSVSeq(heights)
	}
	best := Rect{}
	bestArea := -1.0
	improve := func(r Rect) {
		if a := r.Area(); a > bestArea {
			bestArea, best = a, r
		}
	}
	// Full-height slabs between consecutive bars and the boundary.
	prevX := b.X0
	for i := 0; i <= n; i++ {
		x1 := b.X1
		if i < n {
			x1 = xs[i]
		}
		improve(Rect{X0: prevX, Y0: b.Y0, X1: x1, Y1: b.Y1})
		if i < n {
			prevX = xs[i]
		}
	}
	// One rectangle per bar: height = bar height, width spans to the
	// nearest strictly lower bars (or the boundary).
	for i := 0; i < n; i++ {
		x0, x1 := b.X0, b.X1
		if left[i] >= 0 {
			x0 = xs[left[i]]
		}
		if right[i] < n {
			x1 = xs[right[i]]
		}
		improve(Rect{X0: x0, Y0: b.Y0, X1: x1, Y1: math.Min(pts[order[i]].Y, b.Y1)})
	}
	if mach != nil {
		mach.StepCost(n, 1, func(int) {}) // candidate evaluation
	}
	return best
}

// LargestAnchoredRectBrute validates LargestAnchoredRect: the best empty
// rectangle touching at least one boundary side, by brute force.
func LargestAnchoredRectBrute(pts []Point, bounds Rect) Rect {
	xs := []float64{bounds.X0, bounds.X1}
	ys := []float64{bounds.Y0, bounds.Y1}
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	best := Rect{}
	bestArea := -1.0
	for _, x0 := range xs {
		for _, x1 := range xs {
			if x1 <= x0 {
				continue
			}
			for _, y0 := range ys {
				for _, y1 := range ys {
					if y1 <= y0 {
						continue
					}
					touches := x0 == bounds.X0 || x1 == bounds.X1 || y0 == bounds.Y0 || y1 == bounds.Y1
					if !touches {
						continue
					}
					r := Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
					empty := true
					for _, p := range pts {
						if r.containsInterior(p) {
							empty = false
							break
						}
					}
					if empty {
						if a := r.Area(); a > bestArea {
							bestArea, best = a, r
						}
					}
				}
			}
		}
	}
	return best
}
