// Package rect implements the paper's two rectangle applications:
//
//   - application 2, the largest-area rectangle spanned by two of n points
//     as opposite corners (Melville's circuit-leakage problem), reduced to
//     row maxima of a staircase-shaped inverse-Monge array over the Pareto
//     staircases of the point set and solved in Theta(lg n) simulated CRCW
//     time with n processors;
//   - application 1, the largest empty rectangle among n points inside a
//     bounding rectangle: an exact O(n^2) sequential solver (the classical
//     window-narrowing scan), a brute-force validator, and the
//     boundary-anchored families solved in O(lg n) parallel time via the
//     All Nearest Smaller Values machinery (largest rectangle under a
//     histogram).
package rect

import (
	"math"
	"sort"

	"monge/internal/core"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// Point is a planar point.
type Point = marray.Point

// MaxCornerRect solves application 2: among all pairs of points taken as
// opposite corners of an axis-parallel rectangle, it returns the maximum
// area |dx|*|dy| and the two point indices. Sequential: Theta(n lg n) via
// sorting, Pareto-staircase extraction, and SMAWK row maxima on the
// inverse-Monge area array (blocked pairs at -Inf form a staircase pattern
// that preserves total monotonicity).
func MaxCornerRect(pts []Point) (area float64, pi, pj int) {
	return maxCornerRect(pts, nil)
}

// MaxCornerRectPRAM is the parallel version: the row-maxima searches run
// on the given machine (the paper's Theta(lg n)-time, n-processor CRCW
// bound; sorting and staircase extraction are charged as lg n steps).
func MaxCornerRectPRAM(mach *pram.Machine, pts []Point) (area float64, pi, pj int) {
	return maxCornerRect(pts, mach)
}

// MaxCornerRectBrute is the quadratic validator.
func MaxCornerRectBrute(pts []Point) (area float64, pi, pj int) {
	area, pi, pj = -1, -1, -1
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			a := math.Abs(pts[i].X-pts[j].X) * math.Abs(pts[i].Y-pts[j].Y)
			if a > area {
				area, pi, pj = a, i, j
			}
		}
	}
	return area, pi, pj
}

func maxCornerRect(pts []Point, mach *pram.Machine) (float64, int, int) {
	n := len(pts)
	if n < 2 {
		return -1, -1, -1
	}
	bestA, bestI, bestJ := -1.0, -1, -1
	improve := func(a float64, i, j int) {
		if a > bestA {
			bestA, bestI, bestJ = a, i, j
		}
	}
	// Positive-slope pairs on the original points, negative-slope pairs on
	// the y-negated points.
	slopeCase(pts, mach, func(a float64, i, j int) { improve(a, i, j) })
	neg := make([]Point, n)
	for i, p := range pts {
		neg[i] = Point{X: p.X, Y: -p.Y}
	}
	slopeCase(neg, mach, func(a float64, i, j int) { improve(a, i, j) })
	return bestA, bestI, bestJ
}

// slopeCase finds the best pair (i lower-left, j upper-right): maximising
// (x_j - x_i)(y_j - y_i) over pairs with x_j >= x_i, y_j >= y_i. Only
// Pareto-minimal points can serve as lower-left corners and Pareto-maximal
// points as upper-right corners; ordering both staircases by increasing x
// (hence decreasing y) makes the valid-pair area array inverse-Monge, with
// -Inf on invalid pairs forming left/right staircase borders that preserve
// total monotonicity.
func slopeCase(pts []Point, mach *pram.Machine, improve func(a float64, i, j int)) {
	n := len(pts)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	if mach != nil {
		// Charge the parallel sort and staircase extraction.
		mach.StepCost(n, pram.Log2Ceil(n)+1, func(int) {})
	}
	// Pareto-minimal staircase (lower-left candidates): scan by increasing
	// x, keep points whose y is below every earlier kept y.
	var mins []int // indices into pts
	minY := math.Inf(1)
	for _, id := range idx {
		if pts[id].Y < minY {
			mins = append(mins, id)
			minY = pts[id].Y
		}
	}
	// Pareto-maximal staircase (upper-right candidates): scan by
	// decreasing x, keep points whose y exceeds every later kept y; then
	// reverse to increasing x.
	var maxs []int
	maxY := math.Inf(-1)
	for t := n - 1; t >= 0; t-- {
		id := idx[t]
		if pts[id].Y > maxY {
			maxs = append(maxs, id)
			maxY = pts[id].Y
		}
	}
	for l, r := 0, len(maxs)-1; l < r; l, r = l+1, r-1 {
		maxs[l], maxs[r] = maxs[r], maxs[l]
	}

	a := marray.Func{
		M: len(mins), N: len(maxs),
		F: func(i, j int) float64 {
			lo, hi := pts[mins[i]], pts[maxs[j]]
			if hi.X < lo.X || hi.Y < lo.Y {
				return math.Inf(-1)
			}
			return (hi.X - lo.X) * (hi.Y - lo.Y)
		},
	}
	var arg []int
	if mach != nil {
		arg = core.RowMaxima(mach, a)
	} else {
		arg = smawk.RowMaxima(a)
	}
	for i, j := range arg {
		if v := a.At(i, j); !math.IsInf(v, -1) {
			improve(v, mins[i], maxs[j])
		}
	}
}
