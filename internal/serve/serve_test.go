package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"monge/internal/batch"
	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/pram"
)

// asFunc re-exposes a materialized matrix as an implicit one, so the
// pool's tile caches participate (Dense inputs bypass them by design).
func asFunc(d *marray.Dense) marray.Matrix {
	return marray.Func{M: d.Rows(), N: d.Cols(), F: d.At}
}

// queryMix builds a fuzz-seeded mix of all three query kinds over mixed
// shapes and backings (implicit and dense), the workload every
// conformance test in this file shards.
func queryMix(seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	var qs []Query
	for _, sh := range []struct{ m, n int }{{16, 16}, {1, 33}, {48, 9}, {16, 16}, {7, 25}} {
		qs = append(qs,
			Query{Kind: RowMinima, A: asFunc(marray.RandomMonge(rng, sh.m, sh.n))},
			Query{Kind: RowMinima, A: marray.RandomMongeInt(rng, sh.m, sh.n, 3)},
			Query{Kind: StaircaseRowMinima, A: asFunc(marray.RandomStaircaseMonge(rng, sh.m, sh.n))},
		)
	}
	for _, sh := range []struct{ p, q, r int }{{6, 6, 6}, {1, 9, 3}, {4, 2, 8}} {
		c := marray.RandomComposite(rng, sh.p, sh.q, sh.r)
		qs = append(qs, Query{Kind: TubeMaxima, C: marray.Composite{
			D: asFunc(c.D.(*marray.Dense)), E: asFunc(c.E.(*marray.Dense)),
		}})
	}
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

// sequential answers the mix on a single batch.Driver, the oracle the
// sharded pool must match index-exactly.
func sequential(t *testing.T, qs []Query) []Result {
	t.Helper()
	d := batch.New(pram.CRCW)
	defer d.Close()
	out := make([]Result, len(qs))
	for i, q := range qs {
		switch q.Kind {
		case RowMinima:
			out[i].Idx = d.RowMinima(q.A)
		case StaircaseRowMinima:
			out[i].Idx = d.StaircaseRowMinima(q.A)
		case TubeMaxima:
			out[i].TubeJ, out[i].TubeV = d.TubeMaxima(q.C)
		}
	}
	return out
}

func assertSame(t *testing.T, i int, got Result, want Result) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("query %d failed: %v", i, got.Err)
	}
	for r := range want.Idx {
		if got.Idx[r] != want.Idx[r] {
			t.Fatalf("query %d row %d: pool %d, sequential %d", i, r, got.Idx[r], want.Idx[r])
		}
	}
	for x := range want.TubeJ {
		for k := range want.TubeJ[x] {
			if got.TubeJ[x][k] != want.TubeJ[x][k] {
				t.Fatalf("query %d tube (%d,%d): pool j=%d, sequential j=%d",
					i, x, k, got.TubeJ[x][k], want.TubeJ[x][k])
			}
			if got.TubeV[x][k] != want.TubeV[x][k] {
				t.Fatalf("query %d tube (%d,%d): pool v=%g, sequential v=%g",
					i, x, k, got.TubeV[x][k], want.TubeV[x][k])
			}
		}
	}
}

// TestConcurrentPoolMatchesSequential is the conformance contract of the
// serving layer: a fuzz-seeded mix of all three query kinds, submitted
// from many goroutines at once, answers index-exact with a sequential
// batch.Driver — with and without fault injection at rate 0.05. Run
// under -race this also exercises every cross-goroutine handoff.
func TestConcurrentPoolMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"plain", Options{Workers: 4}},
		{"faults-0.05", Options{Workers: 4, Faults: faults.New(1, 0.05)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			qs := queryMix(99)
			want := sequential(t, qs)
			p := New(pram.CRCW, tc.opt)
			defer p.Close()

			got := make([]Result, len(qs))
			var wg sync.WaitGroup
			// Several submitters sharing the pool, each owning a stripe
			// of the mix — the concurrent-clients shape.
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < len(qs); i += 3 {
						tk, err := p.Submit(qs[i])
						if err != nil {
							t.Errorf("submit %d: %v", i, err)
							return
						}
						got[i] = tk.Result()
					}
				}(g)
			}
			wg.Wait()
			for i := range qs {
				assertSame(t, i, got[i], want[i])
			}
			if st := p.Stats(); st.Queries != int64(len(qs)) {
				t.Errorf("stats counted %d queries, want %d", st.Queries, len(qs))
			}
		})
	}
}

// TestConcurrentStreamMatchesSequential covers the ordered streaming
// front end under -race: results arrive in submission order and match
// the sequential oracle.
func TestConcurrentStreamMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var as []marray.Matrix
	for i := 0; i < 12; i++ {
		as = append(as, asFunc(marray.RandomMonge(rng, 20+i, 17)))
	}
	p := New(pram.CRCW, Options{Workers: 3})
	defer p.Close()
	i := 0
	for res := range p.RowMinimaStream(as) {
		if res.Err != nil {
			t.Fatalf("stream result %d: %v", i, res.Err)
		}
		d := batch.New(pram.CRCW)
		want := d.RowMinima(as[i])
		d.Close()
		for r := range want {
			if res.Idx[r] != want[r] {
				t.Fatalf("stream result %d row %d: %d, want %d", i, r, res.Idx[r], want[r])
			}
		}
		i++
	}
	if i != len(as) {
		t.Fatalf("stream yielded %d results, want %d", i, len(as))
	}
}

// waitGoroutines polls until the live goroutine count drops to limit,
// mirroring the exec.Pool leak tests.
func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still alive, want <= %d\n%s",
				runtime.NumGoroutine(), limit, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolGoroutineLeak pins the shutdown contract: after Close returns,
// every worker goroutine (and the machines' private pools) are gone.
func TestPoolGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	p := New(pram.CRCW, Options{Workers: 4})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		if _, err := p.Submit(Query{Kind: RowMinima, A: marray.RandomMonge(rng, 16, 16)}); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	p.Close()
	waitGoroutines(t, base)
}

// TestPoolDoubleClose pins idempotent shutdown: repeated and concurrent
// Closes all return after a complete drain, and Submit afterwards fails
// with ErrClosed instead of deadlocking or panicking.
func TestPoolDoubleClose(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 2})
	rng := rand.New(rand.NewSource(4))
	tk, err := p.Submit(Query{Kind: RowMinima, A: marray.RandomMonge(rng, 8, 8)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
	}
	wg.Wait()
	p.Close()
	if res := tk.Result(); res.Err != nil {
		t.Fatalf("query submitted before Close must still resolve, got %v", res.Err)
	}
	if _, err := p.Submit(Query{Kind: RowMinima, A: marray.RandomMonge(rng, 8, 8)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err=%v, want ErrClosed", err)
	}
	// Streams over a closed pool must stay aligned: every input yields an
	// in-band ErrClosed result.
	n := 0
	for res := range p.RowMinimaStream([]marray.Matrix{marray.RandomMonge(rng, 8, 8)}) {
		if !errors.Is(res.Err, ErrClosed) {
			t.Fatalf("stream on closed pool: err=%v, want ErrClosed", res.Err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("stream on closed pool yielded %d results, want 1", n)
	}
}

// TestPoolCancellation pins the context passthrough: queries on a
// cancelled pool resolve with ErrCanceled on their tickets — the pool
// itself stays drainable and closeable.
func TestPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(pram.CRCW, Options{Workers: 2, Context: ctx})
	defer p.Close()
	rng := rand.New(rand.NewSource(6))
	tk, err := p.Submit(Query{Kind: RowMinima, A: marray.RandomMonge(rng, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	if res := tk.Result(); !errors.Is(res.Err, merr.ErrCanceled) {
		t.Fatalf("cancelled query err=%v, want ErrCanceled", res.Err)
	}
}

// TestPoolUnknownKind pins the in-band failure contract for malformed
// queries.
func TestPoolUnknownKind(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 1})
	defer p.Close()
	tk, err := p.Submit(Query{Kind: Kind(99)})
	if err != nil {
		t.Fatal(err)
	}
	if res := tk.Result(); !errors.Is(res.Err, ErrUnknownKind) {
		t.Fatalf("unknown kind err=%v, want ErrUnknownKind", res.Err)
	}
}

// TestPoolStatsAndCaches checks the serving counters: shard counts sum
// to the query total, and implicit-matrix queries actually traffic the
// tile caches.
func TestPoolStatsAndCaches(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 2, CacheTiles: 64})
	defer p.Close()
	rng := rand.New(rand.NewSource(8))
	a := asFunc(marray.RandomMonge(rng, 64, 64))
	for i := 0; i < 6; i++ {
		if _, err := p.Submit(Query{Kind: RowMinima, A: a}); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	st := p.Stats()
	if st.Queries != 6 {
		t.Fatalf("Queries=%d, want 6", st.Queries)
	}
	var sum int64
	for _, n := range st.PerWorker {
		sum += n
	}
	if sum != st.Queries {
		t.Fatalf("per-worker counts sum to %d, want %d", sum, st.Queries)
	}
	if st.Imbalance > st.Queries {
		t.Fatalf("imbalance %d exceeds query count %d", st.Imbalance, st.Queries)
	}
	if st.CacheMisses == 0 {
		t.Fatal("implicit-matrix queries recorded no tile-cache fills")
	}
}
