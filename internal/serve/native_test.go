package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"monge/internal/batch"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/pram"
)

// This file mirrors the PR 5 concurrency suite with the native execution
// backend, and strengthens it: the oracle (sequential) still runs on a
// PRAM batch.Driver, so every assertion here is a cross-backend
// differential check under concurrent submission — the serving-layer
// slice of the native conformance harness.

// TestNativeConcurrentPoolMatchesSequential: 3 striped submitters on a
// 4-shard native pool, index-exact with the sequential PRAM oracle.
func TestNativeConcurrentPoolMatchesSequential(t *testing.T) {
	qs := queryMix(99)
	want := sequential(t, qs)
	p := New(pram.CRCW, Options{Workers: 4, Backend: batch.BackendNative})
	defer p.Close()

	got := make([]Result, len(qs))
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(qs); i += 3 {
				tk, err := p.Submit(qs[i])
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				got[i] = tk.Result()
			}
		}(g)
	}
	wg.Wait()
	for i := range qs {
		assertSame(t, i, got[i], want[i])
	}
	if st := p.Stats(); st.Queries != int64(len(qs)) {
		t.Errorf("stats counted %d queries, want %d", st.Queries, len(qs))
	}
}

// TestNativeStreamMatchesSequential covers ordered streaming on the
// native backend: results arrive in submission order and match the PRAM
// oracle.
func TestNativeStreamMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var as []marray.Matrix
	for i := 0; i < 12; i++ {
		as = append(as, asFunc(marray.RandomMonge(rng, 20+i, 17)))
	}
	oracle := batch.New(pram.CRCW)
	defer oracle.Close()
	p := New(pram.CRCW, Options{Workers: 3, Backend: batch.BackendNative})
	defer p.Close()
	i := 0
	for res := range p.RowMinimaStream(as) {
		if res.Err != nil {
			t.Fatalf("stream result %d: %v", i, res.Err)
		}
		want := oracle.RowMinima(as[i])
		for r := range want {
			if res.Idx[r] != want[r] {
				t.Fatalf("stream result %d row %d: native %d, pram %d", i, r, res.Idx[r], want[r])
			}
		}
		i++
	}
	if i != len(as) {
		t.Fatalf("stream yielded %d results, want %d", i, len(as))
	}
}

// TestNativePoolCancellation: a cancelled pool context resolves native
// tickets with ErrCanceled, same contract as the PRAM backend.
func TestNativePoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(pram.CRCW, Options{Workers: 2, Context: ctx, Backend: batch.BackendNative})
	defer p.Close()
	rng := rand.New(rand.NewSource(6))
	tk, err := p.Submit(Query{Kind: RowMinima, A: marray.RandomMonge(rng, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	if res := tk.Result(); !errors.Is(res.Err, merr.ErrCanceled) {
		t.Fatalf("cancelled query err=%v, want ErrCanceled", res.Err)
	}
}

// TestNativePoolDegenerateShapes: the degenerate-shape contract survives
// the serving layer — an empty query resolves its ticket with
// ErrDimensionMismatch in-band, on both backends.
func TestNativePoolDegenerateShapes(t *testing.T) {
	for _, be := range []batch.Backend{batch.BackendPRAM, batch.BackendNative} {
		t.Run(be.String(), func(t *testing.T) {
			p := New(pram.CRCW, Options{Workers: 1, Backend: be})
			defer p.Close()
			tk, err := p.Submit(Query{Kind: RowMinima, A: marray.NewDense(0, 7)})
			if err != nil {
				t.Fatal(err)
			}
			if res := tk.Result(); !errors.Is(res.Err, merr.ErrDimensionMismatch) {
				t.Fatalf("empty query err=%v, want ErrDimensionMismatch", res.Err)
			}
		})
	}
}

// TestNativePoolGoroutineLeak pins native shutdown: after Close, the
// workers and any native fan-out pools are gone.
func TestNativePoolGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	p := New(pram.CRCW, Options{Workers: 4, Backend: batch.BackendNative})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		if _, err := p.Submit(Query{Kind: RowMinima, A: marray.RandomMonge(rng, 16, 16)}); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	p.Close()
	waitGoroutines(t, base)
}
