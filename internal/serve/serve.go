// Package serve turns the repository's batched query drivers into a
// goroutine-safe serving layer. A batch.Driver reaches near-zero allocs
// per query but is single-threaded by design: its machines share scratch
// arenas. A Pool gets concurrency the only way that preserves that
// property — by sharding. It owns W worker goroutines, each with a
// private batch.Driver (machines keyed per shape class, exactly as a
// lone driver keys them) and private tile caches for implicit-matrix
// evaluation, and feeds them from one submission queue. Queries are
// answered index-exact with the sequential facade: sharding changes who
// computes an answer, never the answer.
//
// Each worker's machines run with a private one-worker pool
// (batch.Driver.SetMachineWorkers), so a W-worker Pool is W independent
// CPU-bound goroutines — supersteps execute inline on the worker, and
// workers never contend for the shared exec pool's cores. That is the
// right parallelism decomposition for a stream of many small queries:
// across queries, not within one.
//
// Robustness plumbing passes through: a pool context cancels in-flight
// and queued queries (their tickets resolve with merr.ErrCanceled), and
// drivers inherit the process-wide fault injector unless Options.Faults
// overrides it. Every query failure travels on its own ticket; one bad
// query cannot poison the pool.
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"monge/internal/batch"
	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/obs"
	"monge/internal/pram"
)

// ErrClosed reports a Submit after Close; test with errors.Is.
var ErrClosed = errors.New("monge: driver pool is closed")

// ErrUnknownKind reports a Query whose Kind is none of the defined
// problems; the ticket resolves with it.
var ErrUnknownKind = errors.New("monge: unknown query kind")

// Kind selects the problem a Query asks.
type Kind int

const (
	// RowMinima asks for the leftmost row minima of the Monge array A.
	RowMinima Kind = iota
	// StaircaseRowMinima asks for the leftmost finite row minima of the
	// staircase-Monge array A.
	StaircaseRowMinima
	// TubeMaxima asks for the per-(i,k) tube maxima of the composite C.
	TubeMaxima
)

// Query is one unit of work for a Pool: a problem kind plus its input
// (A for the row problems, C for the tube problem).
type Query struct {
	Kind Kind
	A    marray.Matrix
	C    marray.Composite
}

// Result is one query's answer. Idx is set for the row problems; TubeJ
// and TubeV for the tube problem. Err carries any typed condition the
// simulation threw (merr.ErrCanceled, fault-path errors, ...); the
// answer fields are nil when Err is non-nil.
type Result struct {
	Idx   []int
	TubeJ [][]int
	TubeV [][]float64
	Err   error
}

// Ticket is the handle Submit returns: a future for one query's Result.
type Ticket struct {
	q    Query
	done chan struct{}
	res  Result
}

// Done returns a channel closed when the result is ready, for select
// loops; Result is the blocking accessor.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Result blocks until the query has been answered and returns its
// result. It is safe to call from any goroutine, any number of times.
func (t *Ticket) Result() Result {
	<-t.done
	return t.res
}

// errTicket returns an already-resolved ticket carrying err, so stream
// consumers see submission failures in-band.
func errTicket(err error) *Ticket {
	t := &Ticket{done: make(chan struct{}), res: Result{Err: err}}
	close(t.done)
	return t
}

// Options configures a Pool. The zero value is usable: GOMAXPROCS
// workers, background context, inherited fault injector, default-sized
// tile caches.
type Options struct {
	// Workers is the shard count; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Context cancels the pool's queries: in-flight queries abort at
	// their next superstep and resolve with merr.ErrCanceled.
	Context context.Context
	// Faults overrides the fault injector attached to the workers'
	// machines. Nil keeps the default passthrough: machines attach the
	// process-wide faults.Global injector, exactly as facade calls do.
	Faults *faults.Injector
	// CacheTiles sizes each worker's tile caches (tiles per cache,
	// rounded up to a power of two; <= 0 means marray.DefaultTiles).
	// Implicit (non-Dense) matrices are evaluated through these caches.
	CacheTiles int
	// MachineWorkers sets each worker driver's private machine pool
	// width (batch.Driver.SetMachineWorkers); <= 0 means 1, the
	// one-core-per-shard decomposition described in the package comment.
	MachineWorkers int
	// Backend selects the worker drivers' execution engine: the zero
	// value batch.BackendPRAM serves on the simulated machines,
	// batch.BackendNative on the direct goroutine kernels of
	// internal/native. Answers are index-exact either way; a native pool
	// trades the simulator's charged-cost observability for raw speed,
	// and its drivers see no injected machine faults.
	Backend batch.Backend
}

// Pool is a goroutine-safe front end sharding queries across
// worker-owned batch.Drivers. Create with New, submit from any number
// of goroutines, Close when done.
type Pool struct {
	mode    pram.Mode
	opt     Options
	workers int

	queue    chan *Ticket
	mu       sync.RWMutex // guards closed against concurrent Submit
	closed   bool
	inflight sync.WaitGroup // submitted but unanswered queries
	done     sync.WaitGroup // running workers

	// caches[w] holds worker w's two tile caches: one for row-problem
	// matrices and tube factor D, one for tube factor E (separate so a
	// tube query's factors cannot evict each other's tiles — the
	// direct-mapped slot hash ignores which matrix a tile came from).
	caches [][2]*marray.TileCache
	served []shardCount

	obsC *obs.Counters
}

// shardCount is a per-worker query counter, padded to its own cache
// line so neighbouring shards don't false-share. Atomic so Stats can
// read mid-serve.
type shardCount struct {
	n   atomic.Int64
	pad [7]int64
}

func (s *shardCount) add(n int64) { s.n.Add(n) }
func (s *shardCount) load() int64 { return s.n.Load() }

// New returns a running Pool whose drivers use the given PRAM mode.
func New(mode pram.Mode, opt Options) *Pool {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		mode:    mode,
		opt:     opt,
		workers: w,
		// A buffer of one ticket per worker lets submitters run ahead
		// of the shards without unbounding the queue.
		queue:  make(chan *Ticket, w),
		caches: make([][2]*marray.TileCache, w),
		served: make([]shardCount, w),
	}
	for i := range p.caches {
		p.caches[i] = [2]*marray.TileCache{
			marray.NewTileCache(opt.CacheTiles),
			marray.NewTileCache(opt.CacheTiles),
		}
	}
	if o := obs.Global(); o != nil {
		p.obsC = o.Site("serve")
	}
	p.done.Add(w)
	for i := 0; i < w; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the shard count.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues q and returns its ticket, or ErrClosed after Close.
// Submit blocks only while every worker is busy and the queue buffer is
// full — the natural backpressure of a saturated pool.
func (p *Pool) Submit(q Query) (*Ticket, error) {
	t := &Ticket{q: q, done: make(chan struct{})}
	// The read lock is held across the enqueue so Close cannot observe
	// closed==true while a submit that passed the check is still trying
	// to send: Close's write lock waits for us, and workers drain the
	// queue without ever taking p.mu, so the send always completes.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	p.inflight.Add(1)
	if p.obsC != nil {
		obs.StoreMax(&p.obsC.QueueDepthPeak, int64(len(p.queue)+1))
	}
	p.queue <- t
	p.mu.RUnlock()
	return t, nil
}

// RowMinimaStream submits one row-minima query per matrix and returns a
// channel yielding results in submission order, closed after the last.
// Submission failures (a pool closed mid-stream) arrive in-band as
// results with Err set, keeping the channel aligned with the input.
func (p *Pool) RowMinimaStream(as []marray.Matrix) <-chan Result {
	tickets := make(chan *Ticket, p.workers)
	go func() {
		defer close(tickets)
		for _, a := range as {
			t, err := p.Submit(Query{Kind: RowMinima, A: a})
			if err != nil {
				t = errTicket(err)
			}
			tickets <- t
		}
	}()
	out := make(chan Result)
	go func() {
		defer close(out)
		for t := range tickets {
			out <- t.Result()
		}
	}()
	return out
}

// Wait blocks until every query submitted so far has resolved. The pool
// keeps serving; Wait is the batch barrier, Close the shutdown.
func (p *Pool) Wait() { p.inflight.Wait() }

// Close drains the pool and stops its workers: pending queries still
// resolve, Submits during and after Close return ErrClosed, and every
// worker goroutine has exited when Close returns. Close is idempotent
// and safe to call concurrently; late callers block until shutdown is
// complete.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		p.inflight.Wait()
		close(p.queue)
	}
	p.done.Wait()
	if !already && p.obsC != nil {
		st := p.Stats()
		p.obsC.ShardImbalance.Store(st.Imbalance)
		p.obsC.CacheHits.Store(st.CacheHits)
		p.obsC.CacheMisses.Store(st.CacheMisses)
	}
}

// Stats is a point-in-time view of the pool's serving counters.
type Stats struct {
	Workers                int
	Queries                int64   // total queries answered
	PerWorker              []int64 // queries answered by each shard
	Imbalance              int64   // max minus min of PerWorker
	CacheHits, CacheMisses int64   // summed over all shard caches
}

// Stats snapshots the serving counters. Safe to call at any time,
// including while queries are in flight (counts may be mid-update).
func (p *Pool) Stats() Stats {
	st := Stats{Workers: p.workers, PerWorker: make([]int64, p.workers)}
	min, max := int64(-1), int64(0)
	for i := range p.served {
		n := p.served[i].load()
		st.PerWorker[i] = n
		st.Queries += n
		if min < 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min >= 0 {
		st.Imbalance = max - min
	}
	for _, pair := range p.caches {
		for _, c := range pair {
			st.CacheHits += c.Hits()
			st.CacheMisses += c.Misses()
		}
	}
	return st
}

// worker is one shard: a private driver drained from the shared queue.
func (p *Pool) worker(id int) {
	defer p.done.Done()
	d := batch.NewWithBackend(p.mode, p.opt.Backend)
	mw := p.opt.MachineWorkers
	if mw <= 0 {
		mw = 1
	}
	d.SetMachineWorkers(mw)
	if p.opt.Context != nil {
		d.SetContext(p.opt.Context)
	}
	if p.opt.Faults != nil {
		d.SetFaults(p.opt.Faults)
	}
	defer d.Close()
	for t := range p.queue {
		t.res = p.answer(d, id, t.q)
		p.served[id].add(1)
		if p.obsC != nil {
			p.obsC.QueriesServed.Add(1)
		}
		close(t.done)
		p.inflight.Done()
	}
}

// answer runs one query on the shard's driver, converting any thrown
// merr condition into the ticket's error.
func (p *Pool) answer(d *batch.Driver, id int, q Query) (res Result) {
	defer merr.Catch(&res.Err)
	switch q.Kind {
	case RowMinima:
		res.Idx = d.RowMinima(p.cached(id, 0, q.A))
	case StaircaseRowMinima:
		res.Idx = d.StaircaseRowMinima(p.cached(id, 0, q.A))
	case TubeMaxima:
		c := marray.Composite{D: p.cached(id, 0, q.C.D), E: p.cached(id, 1, q.C.E)}
		res.TubeJ, res.TubeV = d.TubeMaxima(c)
	default:
		merr.Throwf(ErrUnknownKind, "serve: unknown query kind %d", int(q.Kind))
	}
	return res
}

// cached routes implicit matrices through the shard's tile cache.
// Dense inputs pass through untouched: their At is already one load,
// and memoizing it would only add a probe. Cache traffic is reported
// in aggregate by Stats and at Close; the At fast path stays free of
// obs counter writes.
func (p *Pool) cached(id, which int, a marray.Matrix) marray.Matrix {
	if _, dense := a.(*marray.Dense); dense {
		return a
	}
	return p.caches[id][which].View(a)
}
