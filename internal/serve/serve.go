// Package serve turns the repository's batched query drivers into a
// goroutine-safe serving layer. A batch.Driver reaches near-zero allocs
// per query but is single-threaded by design: its machines share scratch
// arenas. A Pool gets concurrency the only way that preserves that
// property — by sharding. It owns W worker goroutines, each with a
// private batch.Driver (machines keyed per shape class, exactly as a
// lone driver keys them) and private tile caches for implicit-matrix
// evaluation, and feeds them from one submission queue. Queries are
// answered index-exact with the sequential facade: sharding changes who
// computes an answer, never the answer.
//
// Each worker's machines run with a private one-worker pool
// (batch.Driver.SetMachineWorkers), so a W-worker Pool is W independent
// CPU-bound goroutines — supersteps execute inline on the worker, and
// workers never contend for the shared exec pool's cores. That is the
// right parallelism decomposition for a stream of many small queries:
// across queries, not within one.
//
// # Load discipline
//
// The submission boundary is deadline- and overload-aware. SubmitCtx
// attaches a caller context to the query: a submitter blocked on a full
// queue unblocks the moment its context is done, and a query whose
// context has expired by the time a worker picks it up is dropped
// before evaluation, its ticket resolving with ErrDeadlineExceeded (or
// merr.ErrCanceled for plain cancellation). TrySubmit never blocks at
// all — a full queue is ErrOverloaded, the fail-fast primitive the
// admission front (internal/admit) builds its bounded-queue policy on.
// Close transitions the pool through an observable draining state
// (Stats.State) before stopping the workers.
//
// # Robustness plumbing
//
// A pool context cancels in-flight and queued queries (their tickets
// resolve with merr.ErrCanceled), and drivers inherit the process-wide
// fault injector unless Options.Faults overrides it. The serving
// boundary itself is chaos-testable: Options.Chaos (defaulting to the
// same process-wide injector) injects deterministic queue stalls on the
// submit path and slow-shard latency on the dispatch path, and the
// admission front layers ticket drops on top. Every query failure
// travels on its own ticket; one bad query cannot poison the pool.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"monge/internal/batch"
	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/mindex"
	"monge/internal/minplus"
	"monge/internal/obs"
	"monge/internal/pram"
)

// ErrClosed reports a Submit after Close; test with errors.Is.
var ErrClosed = errors.New("monge: driver pool is closed")

// ErrUnknownKind reports a Query whose Kind is none of the defined
// problems; the ticket resolves with it.
var ErrUnknownKind = errors.New("monge: unknown query kind")

// ErrOverloaded reports a submission rejected by load discipline: a
// full queue on the fail-fast path, the admission front's inflight cap
// or a tenant quota, or low-priority work shed under load. Rejections
// are immediate — an overloaded pool never blocks the caller — and
// carry no partial answer. Test with errors.Is.
var ErrOverloaded = errors.New("monge: serving pool overloaded")

// ErrDeadlineExceeded reports a query whose context deadline expired
// before it produced an answer: at submission, while queued (the worker
// drops it before evaluation), or mid-evaluation (the machine aborts at
// its next superstep). Errors carrying it also match
// context.DeadlineExceeded via errors.Is.
var ErrDeadlineExceeded = errors.New("monge: query deadline exceeded")

// Kind selects the problem a Query asks.
type Kind int

const (
	// RowMinima asks for the leftmost row minima of the Monge array A.
	RowMinima Kind = iota
	// StaircaseRowMinima asks for the leftmost finite row minima of the
	// staircase-Monge array A.
	StaircaseRowMinima
	// TubeMaxima asks for the per-(i,k) tube maxima of the composite C.
	TubeMaxima
	// SubmatrixMax asks a prebuilt Index for the maximum of the
	// submatrix Rows R1..R2 × Cols C1..C2 (inclusive).
	SubmatrixMax
	// RangeRowMinima asks a prebuilt Index for the leftmost row-minima
	// columns of rows R1..R2 (inclusive).
	RangeRowMinima
	// MinPlus asks for the Monge (min,+) product A ⊗ B as a run-sparse
	// minplus.Product.
	MinPlus
	// MLinkPath asks for the cheapest exactly-M-link path 0 -> N under
	// the Monge link weight W.
	MLinkPath
)

// Query is one unit of work for a Pool: a problem kind plus its input
// (A for the row problems, C for the tube problem, Index plus the
// R1/R2/C1/C2 ranges for the index-backed point queries, A and B for
// the (min,+) product, N/W/M for the M-link path).
type Query struct {
	Kind  Kind
	A     marray.Matrix
	B     marray.Matrix // second (min,+) factor
	C     marray.Composite
	Index *mindex.Index
	W     minplus.Weight // M-link link weight over nodes 0..N
	N     int            // M-link node span
	M     int            // M-link link count
	R1    int
	R2    int
	C1    int
	C2    int
}

// Result is one query's answer. Idx is set for the row problems,
// RangeRowMinima, and MLinkPath (the node sequence; nil when no path
// exists); TubeJ and TubeV for the tube problem; Pos for SubmatrixMax;
// Prod for MinPlus; Cost for MLinkPath. Err carries any typed
// condition the simulation threw (merr.ErrCanceled,
// ErrDeadlineExceeded, fault-path errors, ...); the answer fields are
// zero when Err is non-nil.
type Result struct {
	Idx   []int
	TubeJ [][]int
	TubeV [][]float64
	Pos   mindex.Pos
	Prod  *minplus.Product
	Cost  float64
	Err   error
}

// Ticket is the handle Submit returns: a future for one query's Result.
type Ticket struct {
	q    Query
	ctx  context.Context // caller context from SubmitCtx; nil for background
	enq  time.Time       // enqueue instant, recorded only when obs is on
	done chan struct{}
	res  Result
}

// Done returns a channel closed when the result is ready, for select
// loops; Result is the blocking accessor.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Result blocks until the query has been answered and returns its
// result. It is safe to call from any goroutine, any number of times.
func (t *Ticket) Result() Result {
	<-t.done
	return t.res
}

// errTicket returns an already-resolved ticket carrying err, so stream
// consumers see submission failures in-band.
func errTicket(err error) *Ticket {
	t := &Ticket{done: make(chan struct{}), res: Result{Err: err}}
	close(t.done)
	return t
}

// Options configures a Pool. The zero value is usable: GOMAXPROCS
// workers, background context, inherited fault injector, default-sized
// tile caches.
type Options struct {
	// Workers is the shard count; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth is the submit-queue buffer — the number of queries that
	// can wait beyond the ones being served — and therefore the bound
	// TrySubmit's fail-fast admission enforces. <= 0 means one slot per
	// worker, the pre-admission default.
	QueueDepth int
	// Context cancels the pool's queries: in-flight queries abort at
	// their next superstep and resolve with merr.ErrCanceled.
	Context context.Context
	// Faults overrides the fault injector attached to the workers'
	// machines. Nil keeps the default passthrough: machines attach the
	// process-wide faults.Global injector, exactly as facade calls do.
	Faults *faults.Injector
	// Chaos overrides the fault injector of the serving boundary itself:
	// deterministic queue stalls before enqueue and slow-shard latency
	// before service (and, in the admission front, ticket drops). Nil
	// keeps the process-wide faults.Global passthrough, which is how the
	// CI chaos job injects the whole suite via FAULT_RATE. Injected
	// serving faults never change an answer — they only add latency the
	// retry/hedging layer must absorb.
	Chaos *faults.Injector
	// CacheTiles sizes each worker's tile caches (tiles per cache,
	// rounded up to a power of two; <= 0 means marray.DefaultTiles).
	// Implicit (non-Dense) matrices are evaluated through these caches.
	CacheTiles int
	// MachineWorkers sets each worker driver's private machine pool
	// width (batch.Driver.SetMachineWorkers); <= 0 means 1, the
	// one-core-per-shard decomposition described in the package comment.
	MachineWorkers int
	// Backend selects the worker drivers' execution engine: the zero
	// value batch.BackendPRAM serves on the simulated machines,
	// batch.BackendNative on the direct goroutine kernels of
	// internal/native. Answers are index-exact either way; a native pool
	// trades the simulator's charged-cost observability for raw speed,
	// and its drivers see no injected machine faults.
	Backend batch.Backend
	// Admission, when non-nil, asks the public facade (monge.DriverPool)
	// to wrap the pool in the load-discipline front of internal/admit —
	// inflight caps, per-tenant quotas, priority shedding, retries and
	// hedging. The Pool itself does not interpret it (admit builds on
	// the Pool, not inside it); it lives here so one options struct
	// configures the whole serving stack.
	Admission *Admission
}

// Admission is the load-discipline policy of the admission front
// (internal/admit). The zero value of every field selects a sane
// default, so &Admission{} is a usable fail-fast configuration with no
// quotas, no retries, and no hedging.
type Admission struct {
	// MaxInflight caps admitted-but-unresolved queries across all
	// tenants; admissions beyond it are rejected with ErrOverloaded.
	// <= 0 means 4 slots per pool worker.
	MaxInflight int
	// ShedFraction is the fraction of MaxInflight above which priority
	// <= 0 work is shed (rejected with ErrOverloaded while capacity is
	// reserved for higher-priority queries). Outside (0, 1] it defaults
	// to 0.75.
	ShedFraction float64
	// TenantRate and TenantBurst configure the per-tenant token bucket:
	// each tenant string earns TenantRate admissions per second up to a
	// bucket of TenantBurst. TenantRate <= 0 disables quotas.
	TenantRate  float64
	TenantBurst int
	// RetryMax is the maximum total attempts per Do call (first try
	// included); <= 0 means 1, i.e. no policy retries. Retries are
	// additionally budgeted: each completed request earns RetryBudget
	// retry tokens (default 0.1) and each retry spends one, so a
	// persistently failing workload cannot amplify itself more than
	// RetryBudget-fold.
	RetryMax     int
	RetryBudget  float64
	RetryBackoff time.Duration // base backoff between attempts; <= 0 means 1ms
	// HedgeAfter, when positive, issues one hedged second attempt if the
	// first has not resolved within this latency threshold; the first
	// result wins. Queries are pure, so hedging is index-exact by
	// construction.
	HedgeAfter time.Duration
}

// Pool states reported by Stats.State.
const (
	StateServing  = "serving"
	StateDraining = "draining"
	StateClosed   = "closed"
)

// Pool is a goroutine-safe front end sharding queries across
// worker-owned batch.Drivers. Create with New, submit from any number
// of goroutines, Close when done.
type Pool struct {
	mode    pram.Mode
	opt     Options
	workers int
	chaos   *faults.Injector

	queue    chan *Ticket
	mu       sync.RWMutex // guards closed against concurrent Submit
	closed   bool
	state    atomic.Int32   // 0 serving, 1 draining, 2 closed
	inflight sync.WaitGroup // submitted but unanswered queries
	done     sync.WaitGroup // running workers
	subSeq   atomic.Int64   // chaos unit ids for the submit path

	// caches[w] holds worker w's two tile caches: one for row-problem
	// matrices and tube factor D, one for tube factor E (separate so a
	// tube query's factors cannot evict each other's tiles — the
	// direct-mapped slot hash ignores which matrix a tile came from).
	caches [][2]*marray.TileCache
	served []shardCount

	obsC *obs.Counters
}

// shardCount is a per-worker query counter, padded to its own cache
// line so neighbouring shards don't false-share. Atomic so Stats can
// read mid-serve.
type shardCount struct {
	n   atomic.Int64
	pad [7]int64
}

func (s *shardCount) add(n int64) { s.n.Add(n) }
func (s *shardCount) load() int64 { return s.n.Load() }

// New returns a running Pool whose drivers use the given PRAM mode.
func New(mode pram.Mode, opt Options) *Pool {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	depth := opt.QueueDepth
	if depth <= 0 {
		// One buffered ticket per worker lets submitters run ahead of
		// the shards without unbounding the queue.
		depth = w
	}
	p := &Pool{
		mode:    mode,
		opt:     opt,
		workers: w,
		chaos:   opt.Chaos,
		queue:   make(chan *Ticket, depth),
		caches:  make([][2]*marray.TileCache, w),
		served:  make([]shardCount, w),
	}
	if p.chaos == nil {
		p.chaos = faults.Global()
	}
	for i := range p.caches {
		p.caches[i] = [2]*marray.TileCache{
			marray.NewTileCache(opt.CacheTiles),
			marray.NewTileCache(opt.CacheTiles),
		}
	}
	if o := obs.Global(); o != nil {
		p.obsC = o.Site("serve")
	}
	p.done.Add(w)
	for i := 0; i < w; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the shard count.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the submit-queue buffer size.
func (p *Pool) QueueDepth() int { return cap(p.queue) }

// Chaos returns the serving-boundary fault injector (nil when chaos is
// off), for the admission front to share.
func (p *Pool) Chaos() *faults.Injector { return p.chaos }

// ContextError converts a done context into the serving layer's typed
// error: ErrDeadlineExceeded (also matching context.DeadlineExceeded)
// when the deadline passed, merr.ErrCanceled otherwise. It is the one
// classification every layer of the serving stack (pool, admission
// front, HTTP front end) shares, so a deadline reads the same whether
// it expired at submission, in the queue, or mid-evaluation.
func ContextError(ctx context.Context) error { return ctxError(ctx) }

func ctxError(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) || errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, context.DeadlineExceeded)
	}
	return merr.Canceled(ctx.Err())
}

// Submit enqueues q and returns its ticket, or ErrClosed after Close.
// Submit blocks only while every worker is busy and the queue buffer is
// full — the natural backpressure of a saturated pool. Callers that
// must not block past a deadline use SubmitCtx; callers that must not
// block at all use TrySubmit.
func (p *Pool) Submit(q Query) (*Ticket, error) {
	return p.submit(context.Background(), q, true)
}

// SubmitCtx is Submit bounded by the caller's context: a submitter
// blocked on a full queue unblocks with ErrDeadlineExceeded or
// merr.ErrCanceled the moment ctx is done, and the context travels with
// the query — workers drop it before evaluation if it expires while
// queued, and abort it at the next superstep if it expires mid-run.
// An already-done ctx fails fast without enqueueing anything.
func (p *Pool) SubmitCtx(ctx context.Context, q Query) (*Ticket, error) {
	return p.submit(ctx, q, true)
}

// TrySubmit is SubmitCtx that never blocks: a full queue returns
// ErrOverloaded immediately. It is the admission primitive of the
// load-discipline front — rejection is instantaneous and typed, so an
// overloaded pool degrades into fast failures instead of a convoy of
// blocked submitters.
func (p *Pool) TrySubmit(ctx context.Context, q Query) (*Ticket, error) {
	return p.submit(ctx, q, false)
}

func (p *Pool) submit(ctx context.Context, q Query, wait bool) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, ctxError(ctx)
	}
	t := &Ticket{q: q, done: make(chan struct{})}
	if ctx != context.Background() {
		t.ctx = ctx
	}
	// The read lock covers only the closed check and the inflight
	// registration — never the enqueue — so Close's write lock is never
	// delayed by a submitter stuck on a full queue. The send below still
	// always has a live receiver: Close cannot close the queue until
	// inflight drains, and our registration is part of inflight, so the
	// workers keep draining until this query (once enqueued) is
	// answered.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	p.inflight.Add(1)
	p.mu.RUnlock()

	if p.chaos != nil {
		if d := p.chaos.QueueStall(p.subSeq.Add(1)); d > 0 {
			time.Sleep(d)
		}
	}
	if p.obsC != nil {
		t.enq = time.Now()
	}
	if wait {
		select {
		case p.queue <- t:
		case <-ctx.Done():
			p.inflight.Done()
			return nil, ctxError(ctx)
		}
	} else {
		select {
		case p.queue <- t:
		default:
			p.inflight.Done()
			return nil, fmt.Errorf("%w: queue full (%d waiting)", ErrOverloaded, cap(p.queue))
		}
	}
	if p.obsC != nil {
		// Depth is sampled at enqueue, after the send: the previous
		// pre-send sample systematically under-reported the peak under
		// contention (every concurrent submitter read the same length).
		depth := int64(len(p.queue))
		obs.StoreMax(&p.obsC.QueueDepthPeak, depth)
		p.obsC.QueueDepth.Store(depth)
	}
	return t, nil
}

// RowMinimaStream submits one row-minima query per matrix and returns a
// channel yielding results in submission order, closed after the last.
// Submission failures (a pool closed mid-stream) arrive in-band as
// results with Err set, keeping the channel aligned with the input.
func (p *Pool) RowMinimaStream(as []marray.Matrix) <-chan Result {
	tickets := make(chan *Ticket, p.workers)
	go func() {
		defer close(tickets)
		for _, a := range as {
			t, err := p.Submit(Query{Kind: RowMinima, A: a})
			if err != nil {
				t = errTicket(err)
			}
			tickets <- t
		}
	}()
	out := make(chan Result)
	go func() {
		defer close(out)
		for t := range tickets {
			out <- t.Result()
		}
	}()
	return out
}

// Wait blocks until every query submitted so far has resolved. The pool
// keeps serving; Wait is the batch barrier, Close the shutdown.
func (p *Pool) Wait() { p.inflight.Wait() }

// Close drains the pool and stops its workers: pending queries still
// resolve, Submits during and after Close return ErrClosed, and every
// worker goroutine has exited when Close returns. While the drain runs
// the pool reports StateDraining through Stats, then StateClosed. Close
// is idempotent and safe to call concurrently; late callers block until
// shutdown is complete.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		p.state.Store(1)
		p.inflight.Wait()
		close(p.queue)
	}
	p.done.Wait()
	if !already {
		p.state.Store(2)
		if p.obsC != nil {
			st := p.Stats()
			p.obsC.ShardImbalance.Store(st.Imbalance)
			p.obsC.CacheHits.Store(st.CacheHits)
			p.obsC.CacheMisses.Store(st.CacheMisses)
		}
	}
}

// Stats is a point-in-time view of the pool's serving counters.
type Stats struct {
	Workers                int
	State                  string  // StateServing, StateDraining, or StateClosed
	QueueDepth             int     // queries currently waiting in the submit queue
	Queries                int64   // total queries answered
	PerWorker              []int64 // queries answered by each shard
	Imbalance              int64   // max minus min of PerWorker
	CacheHits, CacheMisses int64   // summed over all shard caches
}

// Stats snapshots the serving counters. Safe to call at any time,
// including while queries are in flight (counts may be mid-update).
func (p *Pool) Stats() Stats {
	st := Stats{Workers: p.workers, PerWorker: make([]int64, p.workers)}
	switch p.state.Load() {
	case 0:
		st.State = StateServing
	case 1:
		st.State = StateDraining
	default:
		st.State = StateClosed
	}
	if st.State != StateClosed {
		st.QueueDepth = len(p.queue)
	}
	min, max := int64(-1), int64(0)
	for i := range p.served {
		n := p.served[i].load()
		st.PerWorker[i] = n
		st.Queries += n
		if min < 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min >= 0 {
		st.Imbalance = max - min
	}
	for _, pair := range p.caches {
		for _, c := range pair {
			st.CacheHits += c.Hits()
			st.CacheMisses += c.Misses()
		}
	}
	return st
}

// mergeCtx derives the context one query runs under when it carries its
// own caller context on top of a pool context: done when either is
// done, with the query context's cause preserved so deadline expiry
// classifies correctly. The release function must be called after the
// query resolves.
func mergeCtx(pool, query context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(pool)
	stop := context.AfterFunc(query, func() { cancel(context.Cause(query)) })
	return ctx, func() { stop(); cancel(nil) }
}

// worker is one shard: a private driver drained from the shared queue.
func (p *Pool) worker(id int) {
	defer p.done.Done()
	d := batch.NewWithBackend(p.mode, p.opt.Backend)
	mw := p.opt.MachineWorkers
	if mw <= 0 {
		mw = 1
	}
	d.SetMachineWorkers(mw)
	if p.opt.Context != nil {
		d.SetContext(p.opt.Context)
	}
	if p.opt.Faults != nil {
		d.SetFaults(p.opt.Faults)
	}
	defer d.Close()
	// The worker's (min,+) engine borrows its driver, so the engine's
	// witness scratch and the driver's machines stay shard-private.
	eng := minplus.NewWith(d)
	for t := range p.queue {
		if p.obsC != nil {
			p.obsC.QueueDepth.Store(int64(len(p.queue)))
			if !t.enq.IsZero() {
				p.obsC.QueueWait.Observe(time.Since(t.enq))
			}
		}
		if p.chaos != nil {
			if slow := p.chaos.SlowShard(id, p.served[id].load()); slow > 0 {
				time.Sleep(slow)
			}
		}
		t.res = p.resolve(d, eng, id, t)
		p.served[id].add(1)
		if p.obsC != nil {
			p.obsC.QueriesServed.Add(1)
		}
		close(t.done)
		p.inflight.Done()
	}
}

// resolve answers one dequeued ticket, enforcing its deadline around
// the evaluation: an already-expired query is dropped before any work,
// and a query aborted mid-run by its own context resolves with the
// deadline/cancel classification instead of the machine's raw
// cancellation error.
func (p *Pool) resolve(d *batch.Driver, eng *minplus.Engine, id int, t *Ticket) Result {
	if t.ctx == nil {
		return p.answer(d, eng, id, t.q)
	}
	if t.ctx.Err() != nil {
		if p.obsC != nil {
			p.obsC.DeadlineExpired.Add(1)
		}
		return Result{Err: ctxError(t.ctx)}
	}
	runCtx, release := t.ctx, func() {}
	if p.opt.Context != nil {
		runCtx, release = mergeCtx(p.opt.Context, t.ctx)
	}
	d.SetContext(runCtx)
	res := p.answer(d, eng, id, t.q)
	release()
	d.SetContext(p.opt.Context)
	if res.Err != nil && t.ctx.Err() != nil && errors.Is(res.Err, merr.ErrCanceled) {
		res.Err = ctxError(t.ctx)
	}
	return res
}

// answer runs one query on the shard's driver, converting any thrown
// merr condition into the ticket's error.
func (p *Pool) answer(d *batch.Driver, eng *minplus.Engine, id int, q Query) (res Result) {
	defer merr.Catch(&res.Err)
	switch q.Kind {
	case RowMinima:
		res.Idx = d.RowMinima(p.cached(id, 0, q.A))
	case StaircaseRowMinima:
		res.Idx = d.StaircaseRowMinima(p.cached(id, 0, q.A))
	case TubeMaxima:
		c := marray.Composite{D: p.cached(id, 0, q.C.D), E: p.cached(id, 1, q.C.E)}
		res.TubeJ, res.TubeV = d.TubeMaxima(c)
	case SubmatrixMax:
		if q.Index == nil {
			merr.Throwf(merr.ErrDimensionMismatch, "serve: SubmatrixMax query without an index")
		}
		res.Pos = q.Index.SubmatrixMax(q.R1, q.R2, q.C1, q.C2)
	case RangeRowMinima:
		if q.Index == nil {
			merr.Throwf(merr.ErrDimensionMismatch, "serve: RangeRowMinima query without an index")
		}
		res.Idx = q.Index.RangeRowMinima(q.R1, q.R2)
	case MinPlus:
		// The factors bypass the shard tile caches deliberately: the
		// returned Product retains them for on-demand At/Witness
		// evaluation, and a cache view escaping to the caller would race
		// with this worker's next query.
		res.Prod = eng.Multiply(q.A, q.B)
	case MLinkPath:
		if q.W == nil {
			merr.Throwf(merr.ErrDimensionMismatch, "serve: MLinkPath query without a weight function")
		}
		res.Cost, res.Idx = eng.MLinkPath(q.N, q.W, q.M)
	default:
		merr.Throwf(ErrUnknownKind, "serve: unknown query kind %d", int(q.Kind))
	}
	return res
}

// cached routes implicit matrices through the shard's tile cache.
// Dense inputs pass through untouched: their At is already one load,
// and memoizing it would only add a probe. Cache traffic is reported
// in aggregate by Stats and at Close; the At fast path stays free of
// obs counter writes.
func (p *Pool) cached(id, which int, a marray.Matrix) marray.Matrix {
	if _, dense := a.(*marray.Dense); dense {
		return a
	}
	return p.caches[id][which].View(a)
}
