package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/obs"
	"monge/internal/pram"
)

// slowMatrix is a Monge matrix whose entries take real wall time to
// evaluate, for tests that need queries to occupy workers long enough
// to observe queue/overload behavior.
func slowMatrix(m, n int, delay time.Duration) marray.Matrix {
	return marray.Func{M: m, N: n, F: func(i, j int) float64 {
		time.Sleep(delay)
		return float64(i*n+j) - float64(i)*float64(j) // Monge: -i*j has the right minor sign
	}}
}

func smallQuery(seed int64) Query {
	rng := rand.New(rand.NewSource(seed))
	return Query{Kind: RowMinima, A: marray.RandomMonge(rng, 12, 12)}
}

// TestSubmitCtxExpired pins fail-fast admission on an already-done
// context: nothing is enqueued, the error is typed, and a deadline
// classifies as ErrDeadlineExceeded while a plain cancel classifies as
// merr.ErrCanceled.
func TestSubmitCtxExpired(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 1})
	defer p.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := p.SubmitCtx(ctx, smallQuery(1)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: err=%v, want ErrDeadlineExceeded", err)
	}
	// The typed error must also match the stdlib sentinel so callers can
	// treat it uniformly with their own context plumbing.
	if _, err := p.SubmitCtx(ctx, smallQuery(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err=%v, want context.DeadlineExceeded match", err)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := p.SubmitCtx(cctx, smallQuery(1)); !errors.Is(err, merr.ErrCanceled) {
		t.Fatalf("canceled ctx: err=%v, want merr.ErrCanceled", err)
	}

	if st := p.Stats(); st.Queries != 0 {
		t.Fatalf("expired submissions reached the workers: %d queries served", st.Queries)
	}
}

// TestSubmitCtxUnblocksOnCancel pins the satellite fix: a submitter
// blocked on a full queue no longer holds the pool lock and unblocks
// the moment its context is done, with the typed error.
func TestSubmitCtxUnblocksOnCancel(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 1, QueueDepth: 1})
	defer p.Close()

	// Occupy the single worker with a slow query, then fill the queue.
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 2*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 2*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.SubmitCtx(ctx, Query{Kind: RowMinima, A: slowMatrix(8, 8, 2*time.Millisecond)})
		errc <- err
	}()
	// Give the submitter a moment to block on the full queue, then
	// cancel; it must return promptly even though the queue stays full.
	time.Sleep(time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		// Either the queue drained first (nil) or the cancel won; if the
		// cancel won the error must be typed.
		if err != nil && !errors.Is(err, merr.ErrCanceled) {
			t.Fatalf("canceled submitter: err=%v, want merr.ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitCtx stayed blocked after its context was canceled")
	}
}

// TestTrySubmitOverload pins the fail-fast admission primitive: with the
// worker busy and the queue full, TrySubmit returns ErrOverloaded
// immediately instead of blocking.
func TestTrySubmitOverload(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 5*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	// Saturate: worker + queue slot. TrySubmit keeps failing fast until
	// one lands in the freed slot; every failure must be typed and
	// immediate.
	sawOverload := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		start := time.Now()
		_, err := p.TrySubmit(context.Background(), Query{Kind: RowMinima, A: slowMatrix(8, 8, 5*time.Millisecond)})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("TrySubmit err=%v, want ErrOverloaded", err)
		}
		if took := time.Since(start); took > time.Second {
			t.Fatalf("fail-fast rejection took %v", took)
		}
		sawOverload = true
	}
	if !sawOverload {
		t.Fatal("TrySubmit never observed a full queue; the setup no longer saturates")
	}
	p.Wait()
}

// TestQueuedDeadlineDropsBeforeEvaluation pins the worker-side deadline
// check: a query whose context expires while queued resolves with
// ErrDeadlineExceeded without being evaluated.
func TestQueuedDeadlineDropsBeforeEvaluation(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 1, QueueDepth: 4})
	defer p.Close()

	// Block the worker long enough for the short-deadline query to
	// expire in the queue behind it.
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 3*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	evaluated := false
	poison := Query{Kind: RowMinima, A: marray.Func{M: 4, N: 4, F: func(i, j int) float64 {
		evaluated = true
		return float64(i + j)
	}}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	tk, err := p.SubmitCtx(ctx, poison)
	if err != nil {
		t.Fatal(err)
	}
	<-ctx.Done()
	res := tk.Result()
	if !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("queued-expired query err=%v, want ErrDeadlineExceeded", res.Err)
	}
	p.Wait()
	if evaluated {
		t.Fatal("expired query was evaluated; it must be dropped at dequeue")
	}
}

// TestCloseRacesSubmitCtx pins the shutdown contract under contention:
// concurrent SubmitCtx callers (some with expired or canceling
// contexts) racing Close must each get either a resolved ticket or a
// typed error, with no hangs and no goroutine leaks.
func TestCloseRacesSubmitCtx(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		p := New(pram.CRCW, Options{Workers: 2, QueueDepth: 2})
		expired, expCancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
		live, liveCancel := context.WithCancel(context.Background())

		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ctx := live
				if g%3 == 0 {
					ctx = expired
				}
				tk, err := p.SubmitCtx(ctx, smallQuery(int64(g)))
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDeadlineExceeded) &&
						!errors.Is(err, merr.ErrCanceled) {
						t.Errorf("round %d submitter %d: untyped error %v", round, g, err)
					}
					return
				}
				res := tk.Result()
				if res.Err != nil && !errors.Is(res.Err, ErrDeadlineExceeded) &&
					!errors.Is(res.Err, merr.ErrCanceled) {
					t.Errorf("round %d submitter %d: untyped result error %v", round, g, res.Err)
				}
			}(g)
		}
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
		wg.Add(1)
		go func() { defer wg.Done(); liveCancel() }()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Close racing SubmitCtx hung", round)
		}
		p.Close()
		expCancel()
	}
	waitGoroutines(t, base)
}

// TestRejectedTicketsLeakNothing pins the goroutine-leak regression for
// the new rejection paths: rejected (TrySubmit) and expired (SubmitCtx)
// submissions leave no goroutine and no inflight registration behind —
// Close does not wait on ghosts.
func TestRejectedTicketsLeakNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	p := New(pram.CRCW, Options{Workers: 1, QueueDepth: 1})
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 2*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	rejections := 0
	for i := 0; i < 200; i++ {
		if _, err := p.TrySubmit(context.Background(), smallQuery(int64(i))); err != nil {
			rejections++
		}
		if _, err := p.SubmitCtx(expired, smallQuery(int64(i))); err == nil {
			t.Fatal("expired SubmitCtx succeeded")
		}
	}
	if rejections == 0 {
		t.Fatal("no TrySubmit rejections; the saturation setup is broken")
	}
	// Close must return promptly: if a rejection leaked an inflight
	// registration, the drain would hang on it.
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung after rejected submissions: leaked inflight registration")
	}
	waitGoroutines(t, base)
}

// TestDrainingStateObservable pins the graceful-shutdown state machine:
// serving -> draining (while a slow query resolves) -> closed.
func TestDrainingStateObservable(t *testing.T) {
	p := New(pram.CRCW, Options{Workers: 1})
	if st := p.Stats().State; st != StateServing {
		t.Fatalf("fresh pool state %q, want %q", st, StateServing)
	}
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 2*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	go p.Close()
	deadline := time.Now().Add(10 * time.Second)
	sawDraining := false
	for time.Now().Before(deadline) {
		switch p.Stats().State {
		case StateDraining:
			sawDraining = true
		case StateClosed:
			if !sawDraining {
				// The drain can be too fast to observe on an unloaded
				// machine; that is not a failure of the state machine.
				t.Log("pool closed before draining was observed (fast drain)")
			}
			p.Close() // idempotent; also synchronizes with the goroutine above
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("pool never reached %q", StateClosed)
}

// TestQueueDepthAccounting pins the satellite obs fix: the queue-depth
// peak is recorded at enqueue (after the send), so a burst that fills
// the queue reports a nonzero peak, and the gauge returns to zero after
// the drain.
func TestQueueDepthAccounting(t *testing.T) {
	o := obs.NewObserver()
	prev := obs.Global()
	obs.SetGlobal(o)
	defer obs.SetGlobal(prev)

	p := New(pram.CRCW, Options{Workers: 1, QueueDepth: 8})
	// One slow query to occupy the worker, then a burst that sits in the
	// queue behind it.
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := p.Submit(smallQuery(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	p.Close()

	snap := o.Snapshot()["serve"]
	if snap.QueueDepthPeak < 2 {
		t.Fatalf("queue depth peak %d after a 6-deep burst, want >= 2 (pre-send sampling regression)",
			snap.QueueDepthPeak)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth gauge %d after drain, want 0", snap.QueueDepth)
	}
	var waits int64
	for _, b := range snap.QueueWaitUS {
		waits += b
	}
	if waits < 6 {
		t.Fatalf("queue-wait histogram recorded %d waits, want >= 6", waits)
	}
	if snap.QueueWaitP50 < 0 || snap.QueueWaitP99 < snap.QueueWaitP50 {
		t.Fatalf("queue-wait percentiles inconsistent: p50=%d p99=%d", snap.QueueWaitP50, snap.QueueWaitP99)
	}
}

// TestServeChaosConformance is the serving-boundary chaos contract:
// with queue stalls and slow shards injected at a visible rate, every
// query still answers index-exact against the sequential oracle —
// injected serving faults add latency, never wrong answers — and the
// whole run is watchdogged against hangs.
func TestServeChaosConformance(t *testing.T) {
	qs := queryMix(31)
	want := sequential(t, qs)

	inj := faults.New(7, 0.2)
	p := New(pram.CRCW, Options{Workers: 3, QueueDepth: 2, Chaos: inj})
	defer p.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		got := make([]Result, len(qs))
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(qs); i += 3 {
					tk, err := p.Submit(qs[i])
					if err != nil {
						t.Errorf("submit %d under chaos: %v", i, err)
						return
					}
					got[i] = tk.Result()
				}
			}(g)
		}
		wg.Wait()
		for i := range qs {
			assertSame(t, i, got[i], want[i])
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos conformance run hung")
	}
	st := inj.Stats()
	if st.QueueStalls == 0 && st.SlowShards == 0 {
		t.Fatalf("chaos injector delivered no serving faults at rate 0.2: %+v", st)
	}
}
