package serve

// Conformance suite for the index-backed query kinds (SubmatrixMax,
// RangeRowMinima): the serving pool must answer them index-exact against
// independent brute-force oracles while the full load discipline —
// ordering, cancellation, drain, shutdown — keeps holding. Everything
// here is meant to run under -race; the three-submitter shape matches
// the rest of the serve conformance tests.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/mindex"
	"monge/internal/pram"
)

// bruteRowMin is the O(n) leftmost-row-minimum oracle, -1 when the row
// is fully blocked — the RangeRowMinima contract.
func bruteRowMin(a marray.Matrix, r int) int {
	best, bj := math.Inf(1), -1
	for j := 0; j < a.Cols(); j++ {
		if v := a.At(r, j); v < best {
			best, bj = v, j
		}
	}
	return bj
}

// indexMix builds three shared indexes over distinct backings (dense
// integer ties, Func-backed reals, ∞-heavy staircase) plus a fuzz-seeded
// mix of index queries over them, with the brute-oracle answer for each.
// When inj is non-nil the index builds run with that injector on the
// build path, so the mix also proves fault-disciplined builds serve
// exact answers.
func indexMix(seed int64, inj *faults.Injector) ([]Query, []Result) {
	rng := rand.New(rand.NewSource(seed))
	stair := marray.RandomStaircaseMonge(rng, 40, 40)
	bound := make([]int, 40)
	for i := range bound {
		bound[i] = marray.BoundaryOf(stair, i)
	}
	mats := []marray.Matrix{
		marray.RandomMongeInt(rng, 64, 48, 3),
		asFunc(marray.RandomMonge(rng, 48, 64)),
		// StairFunc (not asFunc) so the index sees the Staircase interface,
		// as staircase serving inputs must.
		marray.StairFunc{M: 40, N: 40, F: stair.At, Bound: func(i int) int { return bound[i] }},
	}
	var qs []Query
	var want []Result
	for _, a := range mats {
		ix := mindex.Build(a, mindex.Opts{Faults: inj})
		m, n := a.Rows(), a.Cols()
		for k := 0; k < 12; k++ {
			r1 := rng.Intn(m)
			r2 := r1 + rng.Intn(m-r1)
			c1 := rng.Intn(n)
			c2 := c1 + rng.Intn(n-c1)
			qs = append(qs, Query{Kind: SubmatrixMax, Index: ix, R1: r1, R2: r2, C1: c1, C2: c2})
			want = append(want, Result{Pos: mindex.SubmatrixMaxBrute(a, r1, r2, c1, c2)})
		}
		for k := 0; k < 6; k++ {
			r1 := rng.Intn(m)
			r2 := r1 + rng.Intn(m-r1)
			idx := make([]int, 0, r2-r1+1)
			for r := r1; r <= r2; r++ {
				idx = append(idx, bruteRowMin(a, r))
			}
			qs = append(qs, Query{Kind: RangeRowMinima, Index: ix, R1: r1, R2: r2})
			want = append(want, Result{Idx: idx})
		}
	}
	rng.Shuffle(len(qs), func(i, j int) {
		qs[i], qs[j] = qs[j], qs[i]
		want[i], want[j] = want[j], want[i]
	})
	return qs, want
}

func assertIndexResult(t *testing.T, i int, q Query, got, want Result) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("query %d failed: %v", i, got.Err)
	}
	switch q.Kind {
	case SubmatrixMax:
		if got.Pos != want.Pos {
			t.Fatalf("query %d [%d:%d,%d:%d]: pool %+v, brute %+v",
				i, q.R1, q.R2, q.C1, q.C2, got.Pos, want.Pos)
		}
	case RangeRowMinima:
		for r := range want.Idx {
			if got.Idx[r] != want.Idx[r] {
				t.Fatalf("query %d row %d: pool %d, brute %d", i, q.R1+r, got.Idx[r], want.Idx[r])
			}
		}
	}
}

// TestIndexConcurrentPoolConformance is the index-kind analogue of
// TestConcurrentPoolMatchesSequential: three submitters sharing the
// pool, every answer index-exact against brute oracles, with and
// without fault injection at 0.05 on the index build path.
func TestIndexConcurrentPoolConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		inj  *faults.Injector
	}{
		{"plain", nil},
		{"build-faults-0.05", faults.New(1, 0.05)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			qs, want := indexMix(42, tc.inj)
			p := New(pram.CRCW, Options{Workers: 4})
			defer p.Close()

			got := make([]Result, len(qs))
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < len(qs); i += 3 {
						tk, err := p.Submit(qs[i])
						if err != nil {
							t.Errorf("submit %d: %v", i, err)
							return
						}
						got[i] = tk.Result()
					}
				}(g)
			}
			wg.Wait()
			for i := range qs {
				assertIndexResult(t, i, qs[i], got[i], want[i])
			}
			if tc.inj != nil && tc.inj.Stats().BuildFaults == 0 {
				t.Error("fault injector never fired on the build path")
			}
		})
	}
}

// TestIndexStreamOrdering pins ticket/answer association under
// concurrency: every ticket resolves with the answer to its own query,
// in submission order, even when the queries are distinguishable only
// by their answers.
func TestIndexStreamOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := marray.RandomMongeInt(rng, 128, 96, 5)
	ix := mindex.Build(a, mindex.Opts{})
	p := New(pram.CRCW, Options{Workers: 3})
	defer p.Close()

	const K = 64
	tks := make([]*Ticket, K)
	want := make([]mindex.Pos, K)
	for i := 0; i < K; i++ {
		r1, c1 := rng.Intn(128), rng.Intn(96)
		r2 := r1 + rng.Intn(128-r1)
		c2 := c1 + rng.Intn(96-c1)
		want[i] = mindex.SubmatrixMaxBrute(a, r1, r2, c1, c2)
		tk, err := p.Submit(Query{Kind: SubmatrixMax, Index: ix, R1: r1, R2: r2, C1: c1, C2: c2})
		if err != nil {
			t.Fatal(err)
		}
		tks[i] = tk
	}
	for i, tk := range tks {
		res := tk.Result()
		if res.Err != nil {
			t.Fatalf("ticket %d: %v", i, res.Err)
		}
		if res.Pos != want[i] {
			t.Fatalf("ticket %d resolved with %+v, its query's answer is %+v", i, res.Pos, want[i])
		}
	}
}

// TestIndexPoolCancellation covers cancellation around index queries: a
// context canceled while the query waits behind a busy worker resolves
// the ticket with the typed cancellation error, and an index query
// submitted with an expired deadline resolves with ErrDeadlineExceeded
// — in both cases without evaluating.
func TestIndexPoolCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ix := mindex.Build(marray.RandomMonge(rng, 32, 32), mindex.Opts{})
	p := New(pram.CRCW, Options{Workers: 1, QueueDepth: 4})
	defer p.Close()

	// Occupy the single worker, then cancel the queued index query.
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 3*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tk, err := p.SubmitCtx(ctx, Query{Kind: SubmatrixMax, Index: ix, R1: 0, R2: 31, C1: 0, C2: 31})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if res := tk.Result(); !errors.Is(res.Err, merr.ErrCanceled) {
		t.Fatalf("canceled index query err=%v, want merr.ErrCanceled", res.Err)
	}

	// Expired deadline while queued behind the busy worker.
	if _, err := p.Submit(Query{Kind: RowMinima, A: slowMatrix(8, 8, 3*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer dcancel()
	tk2, err := p.SubmitCtx(dctx, Query{Kind: RangeRowMinima, Index: ix, R1: 0, R2: 31})
	if err != nil {
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("expired submit err=%v, want ErrDeadlineExceeded", err)
		}
		return
	}
	if res := tk2.Result(); !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("expired index query err=%v, want ErrDeadlineExceeded", res.Err)
	}
}

// TestIndexPoolValidation pins the typed error mapping: a nil index and
// an out-of-range rectangle both resolve in-band with
// merr.ErrDimensionMismatch, never a panic.
func TestIndexPoolValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := mindex.Build(marray.RandomMonge(rng, 8, 8), mindex.Opts{})
	p := New(pram.CRCW, Options{Workers: 2})
	defer p.Close()

	for name, q := range map[string]Query{
		"nil-index-submax": {Kind: SubmatrixMax, R1: 0, R2: 0, C1: 0, C2: 0},
		"nil-index-range":  {Kind: RangeRowMinima, R1: 0, R2: 0},
		"bad-rect":         {Kind: SubmatrixMax, Index: ix, R1: 3, R2: 1, C1: 0, C2: 7},
		"col-overflow":     {Kind: SubmatrixMax, Index: ix, R1: 0, R2: 7, C1: 0, C2: 8},
		"bad-row-range":    {Kind: RangeRowMinima, Index: ix, R1: -1, R2: 3},
	} {
		tk, err := p.Submit(q)
		if err != nil {
			t.Fatalf("%s: submit: %v", name, err)
		}
		if res := tk.Result(); !errors.Is(res.Err, merr.ErrDimensionMismatch) {
			t.Fatalf("%s: err=%v, want merr.ErrDimensionMismatch", name, res.Err)
		}
	}
}

// TestIndexPoolShutdown pins the shutdown contract around index
// traffic: double (and concurrent) Close after index queries drains
// cleanly, Submit afterwards reports ErrClosed, and no goroutine
// outlives the pool.
func TestIndexPoolShutdown(t *testing.T) {
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(13))
	ix := mindex.Build(asFunc(marray.RandomMonge(rng, 64, 64)), mindex.Opts{})
	p := New(pram.CRCW, Options{Workers: 3})
	for i := 0; i < 16; i++ {
		if _, err := p.Submit(Query{Kind: SubmatrixMax, Index: ix, R1: 0, R2: 63, C1: i, C2: 63}); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
	}
	wg.Wait()
	p.Close()
	if _, err := p.Submit(Query{Kind: SubmatrixMax, Index: ix, R1: 0, R2: 0, C1: 0, C2: 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err=%v, want ErrClosed", err)
	}
	waitGoroutines(t, base)
}
