package serve

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"monge/internal/batch"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/minplus"
	"monge/internal/pram"
)

// TestPoolMinPlusConformance serves (min,+) products on both backends
// and checks every answer value- and witness-exact against the naive
// oracle, concurrently enough to exercise shard-private engines.
func TestPoolMinPlusConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	type job struct {
		a, b marray.Matrix
	}
	jobs := []job{
		{marray.RandomMonge(rng, 20, 24), marray.RandomMonge(rng, 24, 16)},
		{marray.RandomMongeInt(rng, 15, 15, 2), marray.RandomMongeInt(rng, 15, 15, 2)},
		{marray.RandomMongeInt(rng, 18, 22, 3), marray.RandomStaircaseMongeInt(rng, 22, 13, 3)},
		{marray.RandomMonge(rng, 1, 31), marray.RandomMonge(rng, 31, 9)},
	}
	for _, be := range []struct {
		name string
		bk   batch.Backend
	}{{"pram", batch.BackendPRAM}, {"native", batch.BackendNative}} {
		t.Run(be.name, func(t *testing.T) {
			p := New(pram.CRCW, Options{Workers: 3, Backend: be.bk})
			defer p.Close()
			tickets := make([]*Ticket, len(jobs))
			for i, j := range jobs {
				tk, err := p.Submit(Query{Kind: MinPlus, A: j.a, B: j.b})
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				tickets[i] = tk
			}
			for i, tk := range tickets {
				res := tk.Result()
				if res.Err != nil {
					t.Fatalf("job %d: %v", i, res.Err)
				}
				want, wit := minplus.MultiplyNaive(jobs[i].a, jobs[i].b)
				for r := 0; r < want.Rows(); r++ {
					for k := 0; k < want.Cols(); k++ {
						gv, wv := res.Prod.At(r, k), want.At(r, k)
						if gv != wv && !(math.IsInf(gv, 1) && math.IsInf(wv, 1)) {
							t.Fatalf("job %d C[%d][%d]=%g, naive %g", i, r, k, gv, wv)
						}
						if gj := res.Prod.Witness(r, k); gj != wit[r][k] {
							t.Fatalf("job %d witness[%d][%d]=%d, naive %d", i, r, k, gj, wit[r][k])
						}
					}
				}
			}
		})
	}
}

// TestPoolMLinkPathConformance serves M-link path queries against the
// reference DP, plus the no-path and malformed-query contracts.
func TestPoolMLinkPathConformance(t *testing.T) {
	const n = 26
	rng := rand.New(rand.NewSource(31))
	d := marray.RandomMongeInt(rng, n+1, n+1, 4)
	w := minplus.Weight(func(i, j int) float64 { return d.At(i, j) })
	p := New(pram.CRCW, Options{Workers: 2, Backend: batch.BackendNative})
	defer p.Close()
	for _, M := range []int{1, 3, 7, n} {
		tk, err := p.Submit(Query{Kind: MLinkPath, W: w, N: n, M: M})
		if err != nil {
			t.Fatalf("submit M=%d: %v", M, err)
		}
		res := tk.Result()
		if res.Err != nil {
			t.Fatalf("M=%d: %v", M, res.Err)
		}
		wantCost, _ := minplus.MLinkBrute(n, w, M)
		if math.Abs(res.Cost-wantCost) > 1e-6 {
			t.Fatalf("M=%d cost %g, brute %g", M, res.Cost, wantCost)
		}
		if len(res.Idx) != M+1 || res.Idx[0] != 0 || res.Idx[M] != n {
			t.Fatalf("M=%d path %v", M, res.Idx)
		}
	}
	// No path: cost +Inf, nil path, no error.
	tk, err := p.Submit(Query{Kind: MLinkPath, W: w, N: 4, M: 5})
	if err != nil {
		t.Fatalf("submit no-path: %v", err)
	}
	if res := tk.Result(); res.Err != nil || !math.IsInf(res.Cost, 1) || res.Idx != nil {
		t.Fatalf("no-path: %+v", res)
	}
	// Malformed queries resolve on the ticket with the typed error.
	tk, err = p.Submit(Query{Kind: MLinkPath, N: 4, M: 2})
	if err != nil {
		t.Fatalf("submit nil-weight: %v", err)
	}
	if res := tk.Result(); !errors.Is(res.Err, merr.ErrDimensionMismatch) {
		t.Fatalf("nil weight: err=%v, want ErrDimensionMismatch", res.Err)
	}
	tk, err = p.Submit(Query{Kind: MinPlus, A: marray.RandomMonge(rng, 3, 4), B: marray.RandomMonge(rng, 5, 3)})
	if err != nil {
		t.Fatalf("submit mismatched: %v", err)
	}
	if res := tk.Result(); !errors.Is(res.Err, merr.ErrDimensionMismatch) {
		t.Fatalf("inner mismatch: err=%v, want ErrDimensionMismatch", res.Err)
	}
}
