// Package merr defines the typed error vocabulary of the repository and
// the panic-based transport that carries those errors out of the simulated
// machines.
//
// # Why panic transport
//
// The simulators execute algorithm code through deeply nested callbacks
// (supersteps, ParallelDo branches, recursive subcube solvers) whose
// signatures carry no error returns — exactly like the idealized machines
// of the paper, where nothing fails. Threading an error value through
// every superstep body would contaminate all of them for conditions that
// occur only at API boundaries (bad input) or on explicit cancellation.
// Instead, failure sites call Throw, which panics with a *Failure wrapping
// a typed error, and the public error-returning entry points recover it
// with `defer merr.Catch(&err)`. Panics that are not *Failure — genuine
// bugs — propagate unchanged.
//
// # Error taxonomy
//
// The sentinels below are the stable, errors.Is-matchable contract:
// structural violations (ErrNotMonge, ErrNotInverseMonge, ErrNotStaircase),
// shape errors (ErrDimensionMismatch), capacity errors (ErrMachineTooSmall),
// model violations (ErrWriteConflict), problem-specific preconditions
// (ErrUnbalanced), and cooperative cancellation (ErrCanceled, which also
// matches the context error that triggered it). Wrapped details follow the
// repository-wide `monge: <pkg>: <condition>` message format; internal
// invariant violations that survive as panics use the same format.
package merr

import (
	"errors"
	"fmt"
)

// The typed error set. Every error produced by Errorf wraps exactly one of
// these, so callers dispatch with errors.Is.
var (
	// ErrNotMonge reports an input that violates the Monge inequality
	// a[i,j] + a[k,l] <= a[i,l] + a[k,j] (i < k, j < l).
	ErrNotMonge = errors.New("monge: array is not Monge")
	// ErrNotInverseMonge reports a violation of the reversed inequality.
	ErrNotInverseMonge = errors.New("monge: array is not inverse-Monge")
	// ErrNotStaircase reports +Inf entries that are not closed to the right
	// and downward (the boundary function increases somewhere).
	ErrNotStaircase = errors.New("monge: blocked entries are not a staircase")
	// ErrDimensionMismatch reports negative, ragged, out-of-range, or
	// otherwise incompatible shapes.
	ErrDimensionMismatch = errors.New("monge: dimension mismatch")
	// ErrMachineTooSmall reports a simulated machine with fewer processors
	// than the algorithm's allocation needs.
	ErrMachineTooSmall = errors.New("monge: machine too small")
	// ErrWriteConflict reports a CREW write conflict (two processors wrote
	// one cell in one superstep).
	ErrWriteConflict = errors.New("monge: CREW write conflict")
	// ErrUnbalanced reports a transportation problem whose supply and
	// demand totals differ.
	ErrUnbalanced = errors.New("monge: unbalanced transportation problem")
	// ErrCanceled reports a simulation stopped by its context. Errors
	// produced for a cancelled context also match the context's own error
	// (context.Canceled / context.DeadlineExceeded) via errors.Is.
	ErrCanceled = errors.New("monge: simulation canceled")
)

// Errorf wraps sentinel with a formatted detail message. The result
// matches the sentinel under errors.Is; the message reads
// "monge: <sentinel condition>: <detail>".
func Errorf(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{sentinel}, args...)...)
}

// Canceled wraps a context's error as a cancellation: the result matches
// both ErrCanceled and the cause (context.Canceled or
// context.DeadlineExceeded) under errors.Is.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Failure is the panic payload that carries a typed error across the
// simulator's callback frames. It implements error so an uncaught Failure
// still prints its condition.
type Failure struct{ Err error }

// Error returns the wrapped error's message.
func (f *Failure) Error() string { return f.Err.Error() }

// Unwrap exposes the wrapped error to errors.Is / errors.As.
func (f *Failure) Unwrap() error { return f.Err }

// Throw panics with a *Failure wrapping err. Call it only from the
// goroutine driving the simulation (superstep boundaries, input
// validation), never from inside a parallel loop body: a panic on a pool
// worker cannot be recovered by the caller.
func Throw(err error) { panic(&Failure{Err: err}) }

// Throwf is Throw(Errorf(sentinel, format, args...)).
func Throwf(sentinel error, format string, args ...any) {
	Throw(Errorf(sentinel, format, args...))
}

// Catch recovers a *Failure into *errp; any other panic value propagates
// unchanged. Use as `defer merr.Catch(&err)` in error-returning entry
// points. A Failure wrapping a nil error (never produced by Throw) is
// normalized so the entry point cannot return a typed nil.
func Catch(errp *error) {
	switch r := recover().(type) {
	case nil:
	case *Failure:
		if r.Err == nil {
			*errp = errors.New("monge: merr: Failure with nil error")
			return
		}
		*errp = r.Err
	default:
		panic(r)
	}
}
