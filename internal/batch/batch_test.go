package batch

import (
	"math/rand"
	"testing"

	"monge/internal/core"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// Batched answers must be index-exact with both the sequential oracle
// and a fresh-machine-per-query run, across mixed shapes (so the driver
// juggles several shape classes at once) and tie-heavy integer arrays.
func TestRowMinimaBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, n int }{
		{16, 16}, {1, 33}, {64, 5}, {16, 16}, {7, 7}, {64, 5},
	}
	var as []marray.Matrix
	for _, sh := range shapes {
		as = append(as, marray.RandomMonge(rng, sh.m, sh.n))
		as = append(as, marray.RandomMongeInt(rng, sh.m, sh.n, 3))
	}
	d := New(pram.CRCW)
	defer d.Close()
	got := d.RowMinimaBatch(as)
	for i, a := range as {
		want := smawk.RowMinima(a)
		fresh := core.RowMinima(pram.New(pram.CRCW, a.Cols()), a)
		for r := range want {
			if got[i][r] != want[r] {
				t.Fatalf("query %d row %d: batch %d, sequential %d", i, r, got[i][r], want[r])
			}
			if got[i][r] != fresh[r] {
				t.Fatalf("query %d row %d: batch %d, fresh machine %d", i, r, got[i][r], fresh[r])
			}
		}
	}
}

func TestTubeMaximaBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ p, q, r int }{{6, 6, 6}, {1, 9, 3}, {6, 6, 6}, {4, 2, 8}}
	var cs []marray.Composite
	for _, sh := range shapes {
		cs = append(cs, marray.RandomComposite(rng, sh.p, sh.q, sh.r))
	}
	d := New(pram.CREW)
	defer d.Close()
	argJ, vals := d.TubeMaximaBatch(cs)
	for i, c := range cs {
		wantJ, wantV := smawk.TubeMaxima(c)
		for x := range wantJ {
			for k := range wantJ[x] {
				if argJ[i][x][k] != wantJ[x][k] {
					t.Fatalf("query %d tube (%d,%d): batch j=%d, sequential j=%d",
						i, x, k, argJ[i][x][k], wantJ[x][k])
				}
				if vals[i][x][k] != wantV[x][k] {
					t.Fatalf("query %d tube (%d,%d): batch val %v, sequential %v",
						i, x, k, vals[i][x][k], wantV[x][k])
				}
			}
		}
	}
}

// Shape classes must share machines: two same-shape queries hit one
// machine, a different shape gets its own.
func TestDriverSharesMachinesByShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := New(pram.CRCW)
	defer d.Close()
	d.RowMinima(marray.RandomMonge(rng, 8, 16))
	m1 := d.Machine(16)
	if m1 == nil {
		t.Fatal("no machine retained for 16 cols")
	}
	t1 := m1.Time()
	d.RowMinima(marray.RandomMonge(rng, 8, 16))
	if d.Machine(16) != m1 {
		t.Fatal("same-shape query built a second machine")
	}
	if m1.Time() <= t1 {
		t.Fatal("second query charged no time on the shared machine")
	}
	d.RowMinima(marray.RandomMonge(rng, 8, 32))
	if d.Machine(32) == nil || d.Machine(32) == m1 {
		t.Fatal("different shape did not get its own machine")
	}
}

func TestDriverCloseAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := marray.RandomMonge(rng, 12, 12)
	d := New(pram.CRCW)
	before := d.RowMinima(a)
	d.Close()
	if d.Machine(12) != nil {
		t.Fatal("Close retained a machine")
	}
	after := d.RowMinima(a)
	defer d.Close()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("row %d: %d before Close, %d after", i, before[i], after[i])
		}
	}
}

// TestDriverCloseIdempotent pins the Close contract the serving layer
// relies on: repeated Closes are no-ops, not panics or double-releases,
// and the driver stays reusable between them.
func TestDriverCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := New(pram.CRCW)
	d.RowMinima(marray.RandomMonge(rng, 8, 8))
	d.Close()
	d.Close() // historically a second Reset pass over stale machines
	if d.Machine(8) != nil {
		t.Fatal("machine survived Close")
	}
	d.RowMinima(marray.RandomMonge(rng, 8, 8))
	d.Close()
	d.Close()
}

// TestDriverNormalizesProcs is the machineFor clamp regression: a
// degenerate query shape (procs < 1) must land in the same shape class
// the accessor and stats report, not a silently different key.
func TestDriverNormalizesProcs(t *testing.T) {
	if NormProcs(0) != 1 || NormProcs(-5) != 1 || NormProcs(3) != 3 {
		t.Fatalf("NormProcs: got (%d,%d,%d), want (1,1,3)",
			NormProcs(0), NormProcs(-5), NormProcs(3))
	}
	d := New(pram.CRCW)
	defer d.Close()
	m := d.machineFor(0)
	if m == nil || m.Procs() != 1 {
		t.Fatalf("machineFor(0) built a machine with %d procs, want 1", m.Procs())
	}
	if d.Machine(0) != m || d.Machine(1) != m || d.Machine(-3) != m {
		t.Fatal("accessor and machineFor disagree on the clamped shape class")
	}
	if got := len(d.machines); got != 1 {
		t.Fatalf("%d shape classes retained for clamped counts, want 1", got)
	}
	if st := d.QueryStats(0, func() {}); st.Procs != 1 {
		t.Fatalf("QueryStats reports procs=%d for a clamped shape, want 1", st.Procs)
	}
}

// TestQueryStats pins the per-query cost API: the diff matches a fresh
// machine running the same query, consecutive queries don't bleed into
// each other, and queries on other shape classes are excluded.
func TestQueryStats(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := marray.RandomMonge(rng, 24, 24)
	b := marray.RandomMonge(rng, 24, 24)
	other := marray.RandomMonge(rng, 24, 48)

	fresh := pram.New(pram.CRCW, a.Cols())
	core.RowMinima(fresh, a)

	d := New(pram.CRCW)
	defer d.Close()
	idx, st := d.RowMinimaStats(a)
	want := smawk.RowMinima(a)
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("row %d: stats-wrapped query %d, sequential %d", i, idx[i], want[i])
		}
	}
	if st.Procs != a.Cols() {
		t.Errorf("Procs=%d, want %d", st.Procs, a.Cols())
	}
	if st.Time != fresh.Time() || st.Work != fresh.Work() || st.Steps != fresh.Steps() {
		t.Errorf("first query stats %+v, fresh machine time=%d steps=%d work=%d",
			st, fresh.Time(), fresh.Steps(), fresh.Work())
	}
	// The second same-shape query diffs from the warm counters, and a
	// different-shape query inside the window is not charged to it.
	st2 := d.QueryStats(a.Cols(), func() {
		d.RowMinima(b)
		d.RowMinima(other)
	})
	if st2.Time <= 0 || st2.Work <= 0 {
		t.Errorf("warm query charged time=%d work=%d, want positive", st2.Time, st2.Work)
	}
	otherTime := d.Machine(other.Cols()).Time()
	if otherTime <= 0 {
		t.Error("other-shape query charged no time to its own machine")
	}
	if st2.Time >= st.Time+otherTime {
		t.Errorf("stats window absorbed the other shape class: %d >= %d+%d",
			st2.Time, st.Time, otherTime)
	}
}

// TestDriverStaircase pins the staircase entry point against the
// sequential algorithm.
func TestDriverStaircase(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := New(pram.CRCW)
	defer d.Close()
	for i := 0; i < 4; i++ {
		a := marray.RandomStaircaseMonge(rng, 14, 23)
		got := d.StaircaseRowMinima(a)
		want := smawk.StaircaseRowMinima(a)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("iter %d row %d: driver %d, sequential %d", i, r, got[r], want[r])
			}
		}
	}
}

// TestDriverMachineWorkers checks that SetMachineWorkers reaches both
// retained and future machines and leaves answers unchanged.
func TestDriverMachineWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := marray.RandomMonge(rng, 16, 16)
	b := marray.RandomMonge(rng, 16, 32)
	d := New(pram.CRCW)
	defer d.Close()
	seq := smawk.RowMinima(a)
	got := d.RowMinima(a) // retained machine on the shared pool
	d.SetMachineWorkers(1)
	got2 := d.RowMinima(a) // retained machine, rewired
	gotB := d.RowMinima(b) // future machine, created private
	seqB := smawk.RowMinima(b)
	for i := range seq {
		if got[i] != seq[i] || got2[i] != seq[i] {
			t.Fatalf("row %d: shared %d, private %d, sequential %d", i, got[i], got2[i], seq[i])
		}
	}
	for i := range seqB {
		if gotB[i] != seqB[i] {
			t.Fatalf("row %d: private-pool machine %d, sequential %d", i, gotB[i], seqB[i])
		}
	}
}
