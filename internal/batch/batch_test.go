package batch

import (
	"math/rand"
	"testing"

	"monge/internal/core"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// Batched answers must be index-exact with both the sequential oracle
// and a fresh-machine-per-query run, across mixed shapes (so the driver
// juggles several shape classes at once) and tie-heavy integer arrays.
func TestRowMinimaBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, n int }{
		{16, 16}, {1, 33}, {64, 5}, {16, 16}, {7, 7}, {64, 5},
	}
	var as []marray.Matrix
	for _, sh := range shapes {
		as = append(as, marray.RandomMonge(rng, sh.m, sh.n))
		as = append(as, marray.RandomMongeInt(rng, sh.m, sh.n, 3))
	}
	d := New(pram.CRCW)
	defer d.Close()
	got := d.RowMinimaBatch(as)
	for i, a := range as {
		want := smawk.RowMinima(a)
		fresh := core.RowMinima(pram.New(pram.CRCW, a.Cols()), a)
		for r := range want {
			if got[i][r] != want[r] {
				t.Fatalf("query %d row %d: batch %d, sequential %d", i, r, got[i][r], want[r])
			}
			if got[i][r] != fresh[r] {
				t.Fatalf("query %d row %d: batch %d, fresh machine %d", i, r, got[i][r], fresh[r])
			}
		}
	}
}

func TestTubeMaximaBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ p, q, r int }{{6, 6, 6}, {1, 9, 3}, {6, 6, 6}, {4, 2, 8}}
	var cs []marray.Composite
	for _, sh := range shapes {
		cs = append(cs, marray.RandomComposite(rng, sh.p, sh.q, sh.r))
	}
	d := New(pram.CREW)
	defer d.Close()
	argJ, vals := d.TubeMaximaBatch(cs)
	for i, c := range cs {
		wantJ, wantV := smawk.TubeMaxima(c)
		for x := range wantJ {
			for k := range wantJ[x] {
				if argJ[i][x][k] != wantJ[x][k] {
					t.Fatalf("query %d tube (%d,%d): batch j=%d, sequential j=%d",
						i, x, k, argJ[i][x][k], wantJ[x][k])
				}
				if vals[i][x][k] != wantV[x][k] {
					t.Fatalf("query %d tube (%d,%d): batch val %v, sequential %v",
						i, x, k, vals[i][x][k], wantV[x][k])
				}
			}
		}
	}
}

// Shape classes must share machines: two same-shape queries hit one
// machine, a different shape gets its own.
func TestDriverSharesMachinesByShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := New(pram.CRCW)
	defer d.Close()
	d.RowMinima(marray.RandomMonge(rng, 8, 16))
	m1 := d.Machine(16)
	if m1 == nil {
		t.Fatal("no machine retained for 16 cols")
	}
	t1 := m1.Time()
	d.RowMinima(marray.RandomMonge(rng, 8, 16))
	if d.Machine(16) != m1 {
		t.Fatal("same-shape query built a second machine")
	}
	if m1.Time() <= t1 {
		t.Fatal("second query charged no time on the shared machine")
	}
	d.RowMinima(marray.RandomMonge(rng, 8, 32))
	if d.Machine(32) == nil || d.Machine(32) == m1 {
		t.Fatal("different shape did not get its own machine")
	}
}

func TestDriverCloseAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := marray.RandomMonge(rng, 12, 12)
	d := New(pram.CRCW)
	before := d.RowMinima(a)
	d.Close()
	if d.Machine(12) != nil {
		t.Fatal("Close retained a machine")
	}
	after := d.RowMinima(a)
	defer d.Close()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("row %d: %d before Close, %d after", i, before[i], after[i])
		}
	}
}
