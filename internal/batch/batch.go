// Package batch amortizes simulated-machine construction across many
// searches. The facade entry points build a fresh PRAM per query, which
// means every query pays the machine's warm-up allocations: write-buffer
// shards, scratch arrays, child-machine shells. A Driver instead keeps
// one machine per shape class (one per distinct processor count) and
// routes every query of that shape through it, so the per-machine arenas
// (see internal/pram) reach steady state once and every later query of
// the same shape runs essentially allocation-free.
//
// A Driver is NOT goroutine-safe: queries share machines and their
// arenas. The serving layer (internal/serve) gets concurrency by giving
// each worker goroutine a private Driver and sharding the query stream
// across them. Batched results are index-exact with the one-at-a-time
// facade calls — the fuzz and table tests in this package and in the
// root package are the guard.
package batch

import (
	"context"

	"monge/internal/core"
	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/pram"
)

// Driver runs searching queries on recycled per-shape machines.
type Driver struct {
	mode pram.Mode
	ctx  context.Context
	// injector/haveInjector distinguish "never set" (machines keep the
	// process-wide faults.Global default that pram.New attaches) from an
	// explicit SetFaults(nil), which disables injection.
	injector     *faults.Injector
	haveInjector bool
	// machineWorkers, when positive, gives every machine a private
	// worker pool of that size instead of the shared exec.Default pool.
	machineWorkers int
	machines       map[int]*pram.Machine // keyed by normalized processor count
}

// New returns a Driver whose machines use the given PRAM mode. Close
// releases the retained machines' arenas when the batch is done.
func New(mode pram.Mode) *Driver {
	return &Driver{mode: mode}
}

// SetContext attaches ctx to every machine the driver holds or later
// creates; a cancelled context aborts the current query at its next
// superstep with merr.ErrCanceled.
func (d *Driver) SetContext(ctx context.Context) {
	d.ctx = ctx
	for _, m := range d.machines {
		m.SetContext(ctx)
	}
}

// SetFaults attaches the fault injector to every machine the driver
// holds or later creates (nil disables injection). Drivers that never
// call SetFaults keep the machines' default, the process-wide
// faults.Global injector — the passthrough the serving layer relies on.
func (d *Driver) SetFaults(in *faults.Injector) {
	d.injector, d.haveInjector = in, true
	for _, m := range d.machines {
		m.SetFaults(in)
	}
}

// SetMachineWorkers gives every retained and future machine a private
// worker pool of w workers (w < 1 is clamped to 1; a one-worker pool
// runs supersteps inline on the querying goroutine). The shared
// exec.Default pool is the right runtime for a lone driver; private
// single-worker pools are the right one when many drivers serve
// concurrently and each should stay on its own core instead of
// contending for the shared pool's workers. Charged costs and results
// are identical either way (the runtime's chunking contract).
func (d *Driver) SetMachineWorkers(w int) {
	if w < 1 {
		w = 1
	}
	d.machineWorkers = w
	for _, m := range d.machines {
		m.SetWorkers(w)
	}
}

// NormProcs returns the processor count a query's declared count is
// normalized to: counts below 1 are served by the 1-processor shape
// class, exactly as pram.New would clamp them. Shape-class keys, the
// Machine accessor, and QueryStats all agree on this normalization.
func NormProcs(procs int) int {
	if procs < 1 {
		return 1
	}
	return procs
}

// machineFor returns the retained machine for the shape class of procs
// declared processors, creating it on first use.
func (d *Driver) machineFor(procs int) *pram.Machine {
	procs = NormProcs(procs)
	if m, ok := d.machines[procs]; ok {
		return m
	}
	m := pram.New(d.mode, procs)
	if d.ctx != nil {
		m.SetContext(d.ctx)
	}
	if d.haveInjector {
		m.SetFaults(d.injector)
	}
	if d.machineWorkers > 0 {
		m.SetWorkers(d.machineWorkers)
	}
	if d.machines == nil {
		d.machines = make(map[int]*pram.Machine)
	}
	d.machines[procs] = m
	return m
}

// Machine exposes the retained machine for a shape class (procs as sized
// by the driver: Cols(a) for row queries, 2*q*r for tube queries), for
// counter inspection in tests and benchmarks. The count is normalized
// exactly as machineFor normalizes it, so Machine(0) and Machine(1) name
// the same shape class. Returns nil before the first query of that shape.
func (d *Driver) Machine(procs int) *pram.Machine { return d.machines[NormProcs(procs)] }

// QueryStats is the charged cost one query added to its shape-class
// machine: the per-query diff of the cumulative Machine counters.
type QueryStats struct {
	Procs int // normalized processor count of the shape class
	Steps int64
	Time  int64
	Work  int64
}

// QueryStats runs query and returns the simulated cost it charged to the
// shape class of procs declared processors (Cols(a) for row queries,
// 2*q*r for tube queries — the counts the driver itself uses). The
// machine counters are cumulative across a driver's queries; this helper
// is the per-query view, diffing Time/Work/Steps around the call.
// Queries routed to a different shape class inside query are not
// included in the diff.
func (d *Driver) QueryStats(procs int, query func()) QueryStats {
	m := d.machineFor(procs)
	before := m.CostSnapshot()
	query()
	delta := m.CostSnapshot().Sub(before)
	return QueryStats{Procs: m.Procs(), Steps: delta.Steps, Time: delta.Time, Work: delta.Work}
}

// RowMinima computes the leftmost row minima of the Monge array a on the
// machine retained for a's shape class.
func (d *Driver) RowMinima(a marray.Matrix) []int {
	return core.RowMinima(d.machineFor(a.Cols()), a)
}

// RowMinimaStats is RowMinima plus the per-query cost snapshot.
func (d *Driver) RowMinimaStats(a marray.Matrix) (idx []int, st QueryStats) {
	st = d.QueryStats(a.Cols(), func() { idx = d.RowMinima(a) })
	return idx, st
}

// StaircaseRowMinima computes the leftmost finite row minima of the
// staircase-Monge array a (Theorem 2.3) on the machine retained for a's
// shape class.
func (d *Driver) StaircaseRowMinima(a marray.Matrix) []int {
	return core.StaircaseRowMinima(d.machineFor(a.Cols()), a)
}

// RowMinimaBatch answers every query through the per-shape machines.
// Results are index-exact with len(as) independent facade calls.
func (d *Driver) RowMinimaBatch(as []marray.Matrix) [][]int {
	out := make([][]int, len(as))
	for i, a := range as {
		out[i] = d.RowMinima(a)
	}
	return out
}

// TubeMaxima solves the tube-maxima problem for the Monge-composite
// array c on the machine retained for c's shape class.
func (d *Driver) TubeMaxima(c marray.Composite) ([][]int, [][]float64) {
	return core.TubeMaxima(d.machineFor(2*c.Q()*c.R()), c)
}

// TubeMaximaBatch answers every tube query through the per-shape
// machines, index-exact with independent facade calls.
func (d *Driver) TubeMaximaBatch(cs []marray.Composite) ([][][]int, [][][]float64) {
	argJ := make([][][]int, len(cs))
	vals := make([][][]float64, len(cs))
	for i, c := range cs {
		argJ[i], vals[i] = d.TubeMaxima(c)
	}
	return argJ, vals
}

// Close resets every retained machine, releasing the scratch arenas and
// any machine-private pools. Close is idempotent; the Driver is reusable
// after it — the next query rebuilds its machine.
func (d *Driver) Close() {
	for _, m := range d.machines {
		m.Reset()
	}
	d.machines = nil
}
