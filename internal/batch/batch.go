// Package batch amortizes simulated-machine construction across many
// searches. The facade entry points build a fresh PRAM per query, which
// means every query pays the machine's warm-up allocations: write-buffer
// shards, scratch arrays, child-machine shells. A Driver instead keeps
// one machine per shape class (one per distinct processor count) and
// routes every query of that shape through it, so the per-machine arenas
// (see internal/pram) reach steady state once and every later query of
// the same shape runs essentially allocation-free.
//
// A Driver is NOT goroutine-safe: queries share machines and their
// arenas. Batched results are index-exact with the one-at-a-time facade
// calls — the fuzz and table tests in this package and in the root
// package are the guard.
package batch

import (
	"context"

	"monge/internal/core"
	"monge/internal/marray"
	"monge/internal/pram"
)

// Driver runs searching queries on recycled per-shape machines.
type Driver struct {
	mode     pram.Mode
	ctx      context.Context
	machines map[int]*pram.Machine // keyed by declared processor count
}

// New returns a Driver whose machines use the given PRAM mode. Close
// releases the retained machines' arenas when the batch is done.
func New(mode pram.Mode) *Driver {
	return &Driver{mode: mode, machines: make(map[int]*pram.Machine)}
}

// SetContext attaches ctx to every machine the driver holds or later
// creates; a cancelled context aborts the current query at its next
// superstep with merr.ErrCanceled.
func (d *Driver) SetContext(ctx context.Context) {
	d.ctx = ctx
	for _, m := range d.machines {
		m.SetContext(ctx)
	}
}

// machineFor returns the retained machine declaring procs processors,
// creating it on first use. Counters accumulate across queries; callers
// that need per-query costs should diff Machine.Time/Work around a call.
func (d *Driver) machineFor(procs int) *pram.Machine {
	if procs < 1 {
		procs = 1
	}
	if m, ok := d.machines[procs]; ok {
		return m
	}
	m := pram.New(d.mode, procs)
	if d.ctx != nil {
		m.SetContext(d.ctx)
	}
	d.machines[procs] = m
	return m
}

// Machine exposes the retained machine for a shape class (procs as sized
// by the driver: Cols(a) for row queries, 2*q*r for tube queries), for
// counter inspection in tests and benchmarks. Returns nil before the
// first query of that shape.
func (d *Driver) Machine(procs int) *pram.Machine { return d.machines[procs] }

// RowMinima computes the leftmost row minima of the Monge array a on the
// machine retained for a's shape class.
func (d *Driver) RowMinima(a marray.Matrix) []int {
	return core.RowMinima(d.machineFor(a.Cols()), a)
}

// RowMinimaBatch answers every query through the per-shape machines.
// Results are index-exact with len(as) independent facade calls.
func (d *Driver) RowMinimaBatch(as []marray.Matrix) [][]int {
	out := make([][]int, len(as))
	for i, a := range as {
		out[i] = d.RowMinima(a)
	}
	return out
}

// TubeMaxima solves the tube-maxima problem for the Monge-composite
// array c on the machine retained for c's shape class.
func (d *Driver) TubeMaxima(c marray.Composite) ([][]int, [][]float64) {
	return core.TubeMaxima(d.machineFor(2*c.Q()*c.R()), c)
}

// TubeMaximaBatch answers every tube query through the per-shape
// machines, index-exact with independent facade calls.
func (d *Driver) TubeMaximaBatch(cs []marray.Composite) ([][][]int, [][][]float64) {
	argJ := make([][][]int, len(cs))
	vals := make([][][]float64, len(cs))
	for i, c := range cs {
		argJ[i], vals[i] = d.TubeMaxima(c)
	}
	return argJ, vals
}

// Close resets every retained machine, releasing the scratch arenas and
// any machine-private pools. The Driver is reusable after Close; the
// next query rebuilds its machine.
func (d *Driver) Close() {
	for _, m := range d.machines {
		m.Reset()
	}
	d.machines = make(map[int]*pram.Machine)
}
