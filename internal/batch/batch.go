// Package batch amortizes simulated-machine construction across many
// searches. The facade entry points build a fresh PRAM per query, which
// means every query pays the machine's warm-up allocations: write-buffer
// shards, scratch arrays, child-machine shells. A Driver instead keeps
// one machine per shape class (one per distinct processor count) and
// routes every query of that shape through it, so the per-machine arenas
// (see internal/pram) reach steady state once and every later query of
// the same shape runs essentially allocation-free.
//
// A Driver is NOT goroutine-safe: queries share machines and their
// arenas. The serving layer (internal/serve) gets concurrency by giving
// each worker goroutine a private Driver and sharding the query stream
// across them. Batched results are index-exact with the one-at-a-time
// facade calls — the fuzz and table tests in this package and in the
// root package are the guard.
//
// A Driver also chooses the execution Backend: BackendPRAM routes
// queries through the simulated machines above, BackendNative through
// the direct goroutine kernels of internal/native. Answers are
// index-exact across backends (the differential suites enforce it);
// what changes is cost — native queries charge no simulated supersteps
// and see no injected machine faults, which is why the conformance CI
// job injects faults on the PRAM side only.
package batch

import (
	"context"

	"monge/internal/core"
	"monge/internal/exec"
	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/native"
	"monge/internal/pram"
)

// Backend selects the execution engine a Driver routes queries to.
type Backend int

const (
	// BackendPRAM answers queries on the simulated PRAM machines — the
	// paper's machine models, with charged supersteps, simulated shared
	// memory, and fault injection. This is the default and the
	// conformance oracle.
	BackendPRAM Backend = iota
	// BackendNative answers queries directly on goroutines via
	// internal/native: no simulation, index-exact with BackendPRAM by
	// the differential test suites.
	BackendNative
)

// String names the backend as the -backend flag spells it.
func (b Backend) String() string {
	if b == BackendNative {
		return "native"
	}
	return "pram"
}

// Driver runs searching queries on recycled per-shape machines.
type Driver struct {
	mode    pram.Mode
	backend Backend
	ctx     context.Context
	// injector/haveInjector distinguish "never set" (machines keep the
	// process-wide faults.Global default that pram.New attaches) from an
	// explicit SetFaults(nil), which disables injection.
	injector     *faults.Injector
	haveInjector bool
	// machineWorkers, when positive, gives every machine a private
	// worker pool of that size instead of the shared exec.Default pool.
	// A native driver sizes its kernel fan-out pool by the same knob.
	machineWorkers int
	machines       map[int]*pram.Machine // keyed by normalized processor count
	// npool is the native backend's lazily created private fan-out pool
	// (only when machineWorkers is set; otherwise kernels share
	// exec.Default, mirroring the machines' pool inheritance).
	npool *exec.Pool
}

// New returns a Driver whose machines use the given PRAM mode. Close
// releases the retained machines' arenas when the batch is done.
func New(mode pram.Mode) *Driver {
	return &Driver{mode: mode}
}

// NewWithBackend returns a Driver routing queries to the given backend.
// The PRAM mode still names the conformance oracle's machine model (and
// is what a native driver reports in QueryStats shape classes); a native
// driver touches no simulated machine unless a PRAM-only entry point
// (Machine, QueryStats' snapshot) asks for one.
func NewWithBackend(mode pram.Mode, be Backend) *Driver {
	return &Driver{mode: mode, backend: be}
}

// Backend reports which execution engine the driver routes queries to.
func (d *Driver) Backend() Backend { return d.backend }

// SetContext attaches ctx to every machine the driver holds or later
// creates; a cancelled context aborts the current query at its next
// superstep with merr.ErrCanceled.
func (d *Driver) SetContext(ctx context.Context) {
	d.ctx = ctx
	for _, m := range d.machines {
		m.SetContext(ctx)
	}
}

// SetFaults attaches the fault injector to every machine the driver
// holds or later creates (nil disables injection). Drivers that never
// call SetFaults keep the machines' default, the process-wide
// faults.Global injector — the passthrough the serving layer relies on.
// The native backend has no simulated processors to fault, so a native
// driver accepts but never consults the injector.
func (d *Driver) SetFaults(in *faults.Injector) {
	d.injector, d.haveInjector = in, true
	for _, m := range d.machines {
		m.SetFaults(in)
	}
}

// SetMachineWorkers gives every retained and future machine a private
// worker pool of w workers (w < 1 is clamped to 1; a one-worker pool
// runs supersteps inline on the querying goroutine). The shared
// exec.Default pool is the right runtime for a lone driver; private
// single-worker pools are the right one when many drivers serve
// concurrently and each should stay on its own core instead of
// contending for the shared pool's workers. Charged costs and results
// are identical either way (the runtime's chunking contract).
func (d *Driver) SetMachineWorkers(w int) {
	if w < 1 {
		w = 1
	}
	d.machineWorkers = w
	for _, m := range d.machines {
		m.SetWorkers(w)
	}
	if d.npool != nil {
		d.npool.Close()
		d.npool = nil // recreated lazily at the new width
	}
}

// nativePool returns the pool the native kernels fan out on: a private
// pool of machineWorkers workers when SetMachineWorkers was called
// (created lazily, so serve shards with width 1 never spawn a worker),
// otherwise the shared exec.Default pool.
func (d *Driver) nativePool() *exec.Pool {
	if d.machineWorkers > 0 {
		if d.npool == nil {
			d.npool = exec.NewPool(d.machineWorkers)
		}
		return d.npool
	}
	return exec.Default()
}

// checkRowQuery rejects degenerate row-query shapes at the driver seam,
// so both backends fail m=0 / n=0 inputs with the same typed error
// instead of backend-dependent silent answers (the PRAM core used to
// return all-zero indices for n=0).
func checkRowQuery(a marray.Matrix) {
	if a.Rows() <= 0 || a.Cols() <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"batch: %dx%d row query; both dimensions must be positive", a.Rows(), a.Cols())
	}
}

// checkTubeQuery is checkRowQuery for composite tube queries.
func checkTubeQuery(c marray.Composite) {
	if c.P() <= 0 || c.Q() <= 0 || c.R() <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"batch: %dx%dx%d tube query; all dimensions must be positive", c.P(), c.Q(), c.R())
	}
}

// NormProcs returns the processor count a query's declared count is
// normalized to: counts below 1 are served by the 1-processor shape
// class, exactly as pram.New would clamp them. Shape-class keys, the
// Machine accessor, and QueryStats all agree on this normalization.
func NormProcs(procs int) int {
	if procs < 1 {
		return 1
	}
	return procs
}

// machineFor returns the retained machine for the shape class of procs
// declared processors, creating it on first use.
func (d *Driver) machineFor(procs int) *pram.Machine {
	procs = NormProcs(procs)
	if m, ok := d.machines[procs]; ok {
		return m
	}
	m := pram.New(d.mode, procs)
	if d.ctx != nil {
		m.SetContext(d.ctx)
	}
	if d.haveInjector {
		m.SetFaults(d.injector)
	}
	if d.machineWorkers > 0 {
		m.SetWorkers(d.machineWorkers)
	}
	if d.machines == nil {
		d.machines = make(map[int]*pram.Machine)
	}
	d.machines[procs] = m
	return m
}

// Machine exposes the retained machine for a shape class (procs as sized
// by the driver: Cols(a) for row queries, 2*q*r for tube queries), for
// counter inspection in tests and benchmarks. The count is normalized
// exactly as machineFor normalizes it, so Machine(0) and Machine(1) name
// the same shape class. Returns nil before the first query of that shape.
func (d *Driver) Machine(procs int) *pram.Machine { return d.machines[NormProcs(procs)] }

// QueryStats is the charged cost one query added to its shape-class
// machine: the per-query diff of the cumulative Machine counters.
type QueryStats struct {
	Procs int // normalized processor count of the shape class
	Steps int64
	Time  int64
	Work  int64
}

// QueryStats runs query and returns the simulated cost it charged to the
// shape class of procs declared processors (Cols(a) for row queries,
// 2*q*r for tube queries — the counts the driver itself uses). The
// machine counters are cumulative across a driver's queries; this helper
// is the per-query view, diffing Time/Work/Steps around the call.
// Queries routed to a different shape class inside query are not
// included in the diff. On the native backend there is no machine and no
// charged cost: query still runs, and the stats carry the normalized
// shape class with zero Steps/Time/Work (simulation cost is a property
// of the simulated model, not of native execution).
func (d *Driver) QueryStats(procs int, query func()) QueryStats {
	if d.backend == BackendNative {
		query()
		return QueryStats{Procs: NormProcs(procs)}
	}
	m := d.machineFor(procs)
	before := m.CostSnapshot()
	query()
	delta := m.CostSnapshot().Sub(before)
	return QueryStats{Procs: m.Procs(), Steps: delta.Steps, Time: delta.Time, Work: delta.Work}
}

// RowMinima computes the leftmost row minima of the Monge array a on the
// machine retained for a's shape class (or natively, index-exact, on a
// native driver).
func (d *Driver) RowMinima(a marray.Matrix) []int {
	checkRowQuery(a)
	if d.backend == BackendNative {
		return native.RowMinima(d.ctx, d.nativePool(), a)
	}
	return core.RowMinima(d.machineFor(a.Cols()), a)
}

// RowMinimaInto is RowMinima writing into a caller-provided slice of
// length >= a.Rows(). On the native backend the call allocates nothing;
// on the PRAM backend the simulated machine's answer is copied into out,
// so streaming callers (the min-plus multiplication engine issues one
// same-shape query per output row) keep a single answer buffer either
// way.
func (d *Driver) RowMinimaInto(a marray.Matrix, out []int) {
	checkRowQuery(a)
	checkOut(a, out)
	if d.backend == BackendNative {
		native.RowMinimaInto(d.ctx, d.nativePool(), a, out)
		return
	}
	copy(out, core.RowMinima(d.machineFor(a.Cols()), a))
}

// StaircaseRowMinimaInto is StaircaseRowMinima writing into a
// caller-provided slice of length >= a.Rows().
func (d *Driver) StaircaseRowMinimaInto(a marray.Matrix, out []int) {
	checkRowQuery(a)
	checkOut(a, out)
	if d.backend == BackendNative {
		native.StaircaseRowMinimaInto(d.ctx, d.nativePool(), a, out)
		return
	}
	copy(out, core.StaircaseRowMinima(d.machineFor(a.Cols()), a))
}

// checkOut rejects an answer slice shorter than the query's row count,
// so both backends fail with the same typed error instead of a native
// bounds panic or a silent PRAM-side truncation.
func checkOut(a marray.Matrix, out []int) {
	if len(out) < a.Rows() {
		merr.Throwf(merr.ErrDimensionMismatch,
			"batch: answer slice holds %d rows, query has %d", len(out), a.Rows())
	}
}

// RowMinimaStats is RowMinima plus the per-query cost snapshot.
func (d *Driver) RowMinimaStats(a marray.Matrix) (idx []int, st QueryStats) {
	st = d.QueryStats(a.Cols(), func() { idx = d.RowMinima(a) })
	return idx, st
}

// StaircaseRowMinima computes the leftmost finite row minima of the
// staircase-Monge array a (Theorem 2.3) on the machine retained for a's
// shape class.
func (d *Driver) StaircaseRowMinima(a marray.Matrix) []int {
	checkRowQuery(a)
	if d.backend == BackendNative {
		return native.StaircaseRowMinima(d.ctx, d.nativePool(), a)
	}
	return core.StaircaseRowMinima(d.machineFor(a.Cols()), a)
}

// RowMinimaBatch answers every query through the per-shape machines.
// Results are index-exact with len(as) independent facade calls.
func (d *Driver) RowMinimaBatch(as []marray.Matrix) [][]int {
	out := make([][]int, len(as))
	for i, a := range as {
		out[i] = d.RowMinima(a)
	}
	return out
}

// TubeMaxima solves the tube-maxima problem for the Monge-composite
// array c on the machine retained for c's shape class.
func (d *Driver) TubeMaxima(c marray.Composite) ([][]int, [][]float64) {
	checkTubeQuery(c)
	if d.backend == BackendNative {
		return native.TubeMaxima(d.ctx, d.nativePool(), c)
	}
	return core.TubeMaxima(d.machineFor(2*c.Q()*c.R()), c)
}

// TubeMaximaBatch answers every tube query through the per-shape
// machines, index-exact with independent facade calls.
func (d *Driver) TubeMaximaBatch(cs []marray.Composite) ([][][]int, [][][]float64) {
	argJ := make([][][]int, len(cs))
	vals := make([][][]float64, len(cs))
	for i, c := range cs {
		argJ[i], vals[i] = d.TubeMaxima(c)
	}
	return argJ, vals
}

// Close resets every retained machine, releasing the scratch arenas and
// any machine-private pools, and stops a native driver's private fan-out
// pool. Close is idempotent; the Driver is reusable after it — the next
// query rebuilds its machine or pool.
func (d *Driver) Close() {
	for _, m := range d.machines {
		m.Reset()
	}
	d.machines = nil
	if d.npool != nil {
		d.npool.Close()
		d.npool = nil
	}
}
