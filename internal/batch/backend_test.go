package batch

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/pram"
	"monge/internal/smawk"
)

func catchErr(f func()) (err error) {
	defer merr.Catch(&err)
	f()
	return nil
}

// TestDriverBackendDifferential runs the same query set through a PRAM
// driver and a native driver and requires identical indices — the
// driver-seam slice of the differential harness (the kernels themselves
// are covered in internal/native, the concurrent path in internal/serve).
func TestDriverBackendDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pd := New(pram.CRCW)
	nd := NewWithBackend(pram.CRCW, BackendNative)
	defer pd.Close()
	defer nd.Close()
	if pd.Backend() != BackendPRAM || nd.Backend() != BackendNative {
		t.Fatalf("backend accessors: %v / %v", pd.Backend(), nd.Backend())
	}

	for _, sh := range []struct{ m, n int }{{1, 1}, {1, 40}, {40, 1}, {63, 65}, {200, 150}} {
		a := marray.RandomMonge(rng, sh.m, sh.n)
		s := marray.RandomStaircaseMonge(rng, sh.m, sh.n)
		pr, nr := pd.RowMinima(a), nd.RowMinima(a)
		ps, ns := pd.StaircaseRowMinima(s), nd.StaircaseRowMinima(s)
		for i := range pr {
			if pr[i] != nr[i] {
				t.Fatalf("%dx%d row %d: pram %d, native %d", sh.m, sh.n, i, pr[i], nr[i])
			}
			if ps[i] != ns[i] {
				t.Fatalf("%dx%d stair row %d: pram %d, native %d", sh.m, sh.n, i, ps[i], ns[i])
			}
		}
	}

	c := marray.RandomComposite(rng, 20, 12, 16)
	pj, pv := pd.TubeMaxima(c)
	nj, nv := nd.TubeMaxima(c)
	for i := range pj {
		for k := range pj[i] {
			if pj[i][k] != nj[i][k] || pv[i][k] != nv[i][k] {
				t.Fatalf("tube (%d,%d): pram (%d,%g), native (%d,%g)",
					i, k, pj[i][k], pv[i][k], nj[i][k], nv[i][k])
			}
		}
	}
}

// TestDriverDegenerateShapes pins the degenerate-shape contract at the
// driver seam for BOTH backends: m=0 or n=0 throws ErrDimensionMismatch
// (instead of the silent all-zero answers the PRAM core used to produce
// for empty column spaces), while single-row and single-column queries
// keep working and match the sequential baseline.
func TestDriverDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, be := range []Backend{BackendPRAM, BackendNative} {
		t.Run(be.String(), func(t *testing.T) {
			d := NewWithBackend(pram.CRCW, be)
			defer d.Close()
			bad := []struct {
				name string
				f    func()
			}{
				{"rows-0xN", func() { d.RowMinima(marray.NewDense(0, 4)) }},
				{"rows-Mx0", func() { d.RowMinima(marray.NewDense(4, 0)) }},
				{"rows-0x0", func() { d.RowMinima(marray.NewDense(0, 0)) }},
				{"stair-0xN", func() { d.StaircaseRowMinima(marray.NewDense(0, 4)) }},
				{"stair-Mx0", func() { d.StaircaseRowMinima(marray.NewDense(4, 0)) }},
				{"tube-q0", func() {
					d.TubeMaxima(marray.Composite{D: marray.NewDense(2, 0), E: marray.NewDense(0, 3)})
				}},
			}
			for _, tc := range bad {
				if err := catchErr(tc.f); !errors.Is(err, merr.ErrDimensionMismatch) {
					t.Errorf("%s: err = %v, want ErrDimensionMismatch", tc.name, err)
				}
			}
			for _, sh := range []struct{ m, n int }{{1, 30}, {30, 1}, {1, 1}} {
				a := marray.RandomMonge(rng, sh.m, sh.n)
				got := d.RowMinima(a)
				want := smawk.RowMinima(a)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%dx%d row %d: got %d, want %d", sh.m, sh.n, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestNativeDriverStats checks the native QueryStats contract: the query
// runs, the shape class is normalized, and no simulated cost is charged.
func TestNativeDriverStats(t *testing.T) {
	d := NewWithBackend(pram.CRCW, BackendNative)
	defer d.Close()
	a := marray.RandomMonge(rand.New(rand.NewSource(2)), 32, 48)
	idx, st := d.RowMinimaStats(a)
	want := smawk.RowMinima(a)
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("row %d: got %d, want %d", i, idx[i], want[i])
		}
	}
	if st.Procs != 48 || st.Steps != 0 || st.Time != 0 || st.Work != 0 {
		t.Fatalf("native stats = %+v; want normalized Procs=48 and zero charged cost", st)
	}
	if d.Machine(48) != nil {
		t.Fatalf("native driver retained a simulated machine")
	}
}

// TestNativeDriverMachineWorkers checks SetMachineWorkers re-sizes the
// native fan-out pool without changing answers, and that Close leaves
// the driver reusable.
func TestNativeDriverMachineWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := marray.RandomMonge(rng, 1024, 64)
	want := smawk.RowMinima(a)
	d := NewWithBackend(pram.CRCW, BackendNative)
	defer d.Close()
	for _, w := range []int{1, 4, 2} {
		d.SetMachineWorkers(w)
		got := d.RowMinima(a)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: answers changed", w)
		}
		d.Close() // reusable: next query rebuilds the pool
	}
}
