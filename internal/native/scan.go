package native

import (
	"math"

	"monge/internal/marray"
)

// denseScanCols bounds the width at which a straight row scan beats the
// SMAWK recursion on dense input: below it the O(rows*n) scan is all
// sequential loads the hardware prefetches, while SMAWK's O(rows+n)
// bound hides recursion and index-indirection constants. 32 columns of
// float64 is four cache lines per row.
const denseScanCols = 32

// scanDenseMinima fills out[lo:hi] with the leftmost-minimum column of
// each dense row, two passes per row over the zero-copy RowView: a
// value pass using the min builtin (lowered to a branch-free MINSD-style
// instruction on the common targets, so ties and data order cost no
// mispredictions), then an index pass that stops at the first entry
// equal to the minimum — which is the leftmost tie by construction.
func scanDenseMinima(d *marray.Dense, lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		row := d.RowView(i)
		bv := row[0]
		for _, v := range row[1:] {
			bv = min(bv, v)
		}
		for j, v := range row {
			if v == bv {
				out[i] = j
				break
			}
		}
	}
}

// scanDenseStairMinima is the staircase variant: blocked (+Inf) entries
// never win, and a row with no finite entry yields -1, matching
// smawk.StaircaseRowMinima. The value pass runs over the whole row —
// +Inf entries are absorbed by min — so no boundary lookup is needed.
func scanDenseStairMinima(d *marray.Dense, lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		row := d.RowView(i)
		out[i] = -1
		bv := math.Inf(1)
		for _, v := range row {
			bv = min(bv, v)
		}
		if math.IsInf(bv, 1) {
			continue
		}
		for j, v := range row {
			if v == bv {
				out[i] = j
				break
			}
		}
	}
}
