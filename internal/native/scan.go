package native

import (
	"math"

	"monge/internal/marray"
	"monge/internal/smawk"
)

// This file is the native backend's thin adapter onto the shared
// branchless scan core in internal/smawk (scan.go): whole-row scans
// for narrow dense inputs, and per-segment partial scans for the
// merge-path column split that dispatch.go uses on huge-aspect inputs.

// scanDenseMinima fills out[lo:hi] with the leftmost-minimum column of
// each dense row via the shared branchless kernel over zero-copy row
// views.
func scanDenseMinima(d *marray.Dense, lo, hi int, out []int) {
	smawk.ScanRowMinimaInto(d.RowView, lo, hi, out)
}

// scanDenseStairMinima is the staircase variant: blocked (+Inf)
// entries never win and a row with no finite entry yields -1, matching
// smawk.StaircaseRowMinima.
func scanDenseStairMinima(d *marray.Dense, lo, hi int, out []int) {
	smawk.ScanStairRowMinimaInto(d.RowView, lo, hi, out)
}

// segmentArgMin returns the leftmost-minimum column of row i of a
// restricted to columns [c0, c1), as a global column index. Under
// stair semantics, +Inf entries never win and -1 means the segment is
// fully blocked. Dense rows run the branchless kernel on the segment
// subslice; other representations pay one At per element, where the
// interface call dominates and a plain compare loop is the right
// shape.
func segmentArgMin(a marray.Matrix, d *marray.Dense, stair bool, i, c0, c1 int) int {
	if d != nil {
		seg := d.RowView(i)[c0:c1]
		if stair {
			j := smawk.ArgMinFinite(seg)
			if j < 0 {
				return -1
			}
			return c0 + j
		}
		return c0 + smawk.ArgMin(seg)
	}
	if stair {
		best, bv := -1, 0.0
		for j := c0; j < c1; j++ {
			v := a.At(i, j)
			if math.IsInf(v, 1) {
				continue
			}
			if best < 0 || v < bv {
				best, bv = j, v
			}
		}
		return best
	}
	best, bv := c0, a.At(i, c0)
	for j := c0 + 1; j < c1; j++ {
		if v := a.At(i, j); v < bv {
			best, bv = j, v
		}
	}
	return best
}

// ltTotal is the combine-step order: strict < extended so NaN never
// displaces a real value (matching the kernel total order). Monge
// inputs never contain NaN; the rule keeps segment combination
// deterministic if a corrupt entry slips in.
func ltTotal(a, b float64) bool {
	if math.IsNaN(b) {
		return !math.IsNaN(a)
	}
	return a < b
}
