// Package native is the direct execution backend: the same three
// searching kernels the simulated PRAM serves — SMAWK row minima,
// staircase-Monge row minima, and tube maxima — run straight on
// goroutines, with no charged supersteps and no simulated shared memory.
// The PRAM path is the product of the paper's machine models; this
// package is the serving engine, and the simulators become its
// conformance oracle: every kernel here is differentially tested to be
// index-exact with the PRAM answers (TestNativeMatchesPRAM, the fuzz
// harnesses, and the concurrent serve suite).
//
// # Why index-exactness is structural, not lucky
//
// Each row's leftmost optimum is a per-row function of the input — rows
// interact only for algorithmic speed, never for the answer. The kernels
// therefore partition the row space (the i-slice space, for tubes) into
// contiguous blocks and run the sequential internal/smawk solvers on
// each block: any row subset of a (staircase-)Monge array is
// (staircase-)Monge, and every block solver applies the same leftmost
// tie-breaking rule the PRAM algorithms are pinned to, so the
// concatenated answers equal the whole-array answers column for column.
//
// # Execution shape
//
// Dispatch splits by area, merge-path style: every work-stealing chunk
// covers roughly the same number of array entries, regardless of the
// query's aspect ratio. A parlay-style area threshold keeps small
// queries serial — below serialArea the dispatch overhead of any
// fan-out exceeds the kernel itself, so the query runs inline on the
// calling goroutine. Above it, rows are cut into blocks of
// chunkArea/n rows (capped at blockRows so a block stays one cache
// tile) and dispatched as one work-stealing loop on an
// internal/exec.Pool with Grain=1. When that yields fewer row chunks
// than workers — the huge-aspect regime, down to a single 1xn row —
// dispatch additionally splits columns into balanced segments, scans
// each (row block, segment) chunk independently into per-segment
// partial minima, and combines the partials sequentially in ascending
// column order, which preserves the leftmost tie rule exactly. Dense
// inputs run the shared branchless argmin kernels (internal/smawk
// scan.go) over zero-copy row views, both for narrow whole-row scans
// and for column segments. All recursion scratch comes from the pooled
// internal/scratch arenas behind smawk.RowMinimaInto, so a query
// allocates only its answer slice (plus one partials slice on the
// column-split path).
//
// Cancellation is cooperative: a done context aborts between blocks and
// the kernel throws merr.ErrCanceled, exactly as the simulated machines
// do at their superstep boundaries. Counters land on the process
// observer's "native" site.
package native

import (
	"context"

	"monge/internal/exec"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/obs"
	"monge/internal/smawk"
)

const (
	// serialArea is the query area (rows x cols) below which the kernel
	// runs inline: a fan-out costs a publish plus one atomic claim per
	// chunk, which only pays for itself once the scanned area dwarfs it.
	// 8192 entries keeps every pre-split shape that ran serially (up to
	// 128 rows at the old 64-column benchmark width) serial.
	serialArea = 8192
	// chunkArea is the target area of one work-stealing chunk: a row
	// block is chunkArea/n rows, so chunks carry equal work whether the
	// query is 1024x1024 or 4x262144.
	chunkArea = 1 << 16
	// blockRows caps the row-block height of the parallel split. 64
	// rows keeps a block's answer range and the SMAWK scratch within a
	// few KB — one block is one cache tile and one work-stealing unit.
	blockRows = 64
	// segMinCols is the narrowest column segment the huge-aspect split
	// will create: below ~512 columns the per-chunk claim and the
	// combine pass outweigh the scan itself.
	segMinCols = 512
	// serialSlices / blockSlices are the tube analogues: a tube i-slice
	// costs a full SMAWK pass over an r x q slice, so slices are coarser
	// units than rows and fan out at smaller counts.
	serialSlices = 16
	blockSlices  = 4
)

// counters returns the process observer's "native" site, or nil when
// observation is off (the disabled path is one atomic pointer load).
func counters() *obs.Counters {
	if o := obs.Global(); o != nil {
		return o.Site("native")
	}
	return nil
}

// checkShape rejects degenerate query shapes with the same typed error
// on every path, so backend choice can never change error behavior.
func checkShape(what string, m, n int) {
	if m <= 0 || n <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"native: %s on %dx%d array; both dimensions must be positive", what, m, n)
	}
}

// checkCtx throws merr.ErrCanceled if ctx is already done, mirroring the
// superstep-boundary cancellation of the simulated machines.
func checkCtx(ctx context.Context) {
	if ctx != nil && ctx.Err() != nil {
		merr.Throw(merr.Canceled(ctx.Err()))
	}
}

// RowMinima returns the leftmost row minima of the Monge array a,
// index-exact with the PRAM backend. pool supplies the fan-out workers
// (nil means the shared exec.Default pool); ctx, when non-nil, cancels
// between row blocks with merr.ErrCanceled.
func RowMinima(ctx context.Context, pool *exec.Pool, a marray.Matrix) []int {
	out := make([]int, a.Rows())
	RowMinimaInto(ctx, pool, a, out)
	return out
}

// RowMinimaInto is RowMinima writing into a caller-provided slice of
// length >= a.Rows(), so query streams (the min-plus multiplication
// engine runs one per output row) allocate nothing per call.
func RowMinimaInto(ctx context.Context, pool *exec.Pool, a marray.Matrix, out []int) {
	m, n := a.Rows(), a.Cols()
	checkShape("RowMinima", m, n)
	checkOut("RowMinima", len(out), m)
	solve := func(lo, hi int) {
		smawk.RowMinimaInto(marray.RowBand(a, lo, hi-lo), out[lo:hi])
	}
	if d, ok := a.(*marray.Dense); ok && n <= smawk.DenseScanCols {
		solve = func(lo, hi int) { scanDenseMinima(d, lo, hi, out) }
	}
	runRows(ctx, pool, a, m, n, false, solve, out)
}

// StaircaseRowMinima returns the leftmost finite row minima of the
// staircase-Monge array a (-1 for fully blocked rows), index-exact with
// the PRAM backend.
func StaircaseRowMinima(ctx context.Context, pool *exec.Pool, a marray.Matrix) []int {
	out := make([]int, a.Rows())
	StaircaseRowMinimaInto(ctx, pool, a, out)
	return out
}

// StaircaseRowMinimaInto is StaircaseRowMinima writing into a
// caller-provided slice of length >= a.Rows().
func StaircaseRowMinimaInto(ctx context.Context, pool *exec.Pool, a marray.Matrix, out []int) {
	m, n := a.Rows(), a.Cols()
	checkShape("StaircaseRowMinima", m, n)
	checkOut("StaircaseRowMinima", len(out), m)
	solve := func(lo, hi int) {
		smawk.StaircaseRowMinimaInto(marray.RowBand(a, lo, hi-lo), out[lo:hi])
	}
	if d, ok := a.(*marray.Dense); ok && n <= smawk.DenseScanCols {
		solve = func(lo, hi int) { scanDenseStairMinima(d, lo, hi, out) }
	}
	runRows(ctx, pool, a, m, n, true, solve, out)
}

// checkOut rejects an answer slice shorter than the row count with the
// same typed error the shape checks use.
func checkOut(what string, have, want int) {
	if have < want {
		merr.Throwf(merr.ErrDimensionMismatch,
			"native: %s answer slice holds %d rows, query has %d", what, have, want)
	}
}

// TubeMaxima solves the tube-maxima problem for the Monge-composite
// array c, index-exact with the PRAM backend: argJ[i][k] is the smallest
// maximising middle coordinate, vals[i][k] = c.At(i, argJ[i][k], k).
// The i-slices are independent (slice i is one Monge row-maxima problem
// over W_i[k][j] = d[i,j] + e[j,k]) and fan out across the pool.
func TubeMaxima(ctx context.Context, pool *exec.Pool, c marray.Composite) ([][]int, [][]float64) {
	p, q, r := c.P(), c.Q(), c.R()
	if p <= 0 || q <= 0 || r <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"native: TubeMaxima on %dx%dx%d composite; all dimensions must be positive", p, q, r)
	}
	// One backing array per output so a p-slice query costs four
	// allocations plus the row headers, regardless of p.
	argJ := make([][]int, p)
	vals := make([][]float64, p)
	jb := make([]int, p*r)
	vb := make([]float64, p*r)
	for i := range argJ {
		argJ[i] = jb[i*r : (i+1)*r : (i+1)*r]
		vals[i] = vb[i*r : (i+1)*r : (i+1)*r]
	}
	solve := func(i int) {
		wi := marray.Func{M: r, N: q, F: func(k, j int) float64 {
			return c.D.At(i, j) + c.E.At(j, k)
		}}
		smawk.MongeRowMaximaInto(wi, argJ[i])
		for k := 0; k < r; k++ {
			vals[i][k] = c.At(i, argJ[i][k], k)
		}
	}
	ct := counters()
	if ct != nil {
		ct.Searches.Add(1)
	}
	if pool == nil {
		pool = exec.Default()
	}
	if p <= serialSlices || pool.Workers() <= 1 {
		checkCtx(ctx)
		for i := 0; i < p; i++ {
			solve(i)
		}
		countRun(ct, exec.RunResult{Chunks: 1})
		return argJ, vals
	}
	res, err := pool.Run(exec.Loop{N: p, Grain: blockSlices, Ctx: ctx, Body: solve})
	countRun(ct, res)
	if err != nil {
		merr.Throw(merr.Canceled(err))
	}
	return argJ, vals
}

// runRows executes solve over [0, m) — inline below the serial area
// cutoff or on a one-worker pool, otherwise as area-balanced row
// blocks stolen from the pool, falling through to a column-segment
// split when the query is too flat for row blocks alone to feed every
// worker — and folds the dispatch shape into the "native" obs site.
func runRows(ctx context.Context, pool *exec.Pool, a marray.Matrix, m, n int, stair bool, solve func(lo, hi int), out []int) {
	ct := counters()
	if ct != nil {
		ct.Searches.Add(1)
	}
	if pool == nil {
		pool = exec.Default()
	}
	w := pool.Workers()
	if int64(m)*int64(n) <= serialArea || w <= 1 {
		checkCtx(ctx)
		solve(0, m)
		countRun(ct, exec.RunResult{Chunks: 1})
		return
	}
	rowsPer := chunkArea / n
	if rowsPer < 1 {
		rowsPer = 1
	}
	if rowsPer > blockRows {
		rowsPer = blockRows
	}
	rowChunks := (m + rowsPer - 1) / rowsPer
	if rowChunks < w && n >= 2*segMinCols {
		runColSegments(ctx, pool, ct, a, m, n, rowsPer, rowChunks, w, stair, out)
		return
	}
	res, err := pool.Run(exec.Loop{
		N: rowChunks, Grain: 1, Ctx: ctx,
		Body: func(b int) {
			lo := b * rowsPer
			hi := min(lo+rowsPer, m)
			solve(lo, hi)
		},
	})
	countRun(ct, res)
	if err != nil {
		merr.Throw(merr.Canceled(err))
	}
}

// runColSegments is the huge-aspect arm of the merge-path split: the
// row blocks alone cannot feed every worker (down to one block for a
// 1xn query), so each row block is further cut into column segments of
// equal width and every (row block, segment) pair becomes one
// work-stealing chunk. Workers write the leftmost minimum of each
// (row, segment) into a partials table; the combine pass then folds
// each row's partials in ascending column order under strict less,
// which is exactly the leftmost rule. The combine is sequential and
// touches m x segments entries — negligible against the m x n scanned.
func runColSegments(ctx context.Context, pool *exec.Pool, ct *obs.Counters, a marray.Matrix, m, n, rowsPer, rowChunks, w int, stair bool, out []int) {
	// Aim for a few chunks per worker so stealing can balance uneven
	// segment costs, bounded by the narrowest segment worth claiming.
	segs := (4*w + rowChunks - 1) / rowChunks
	if maxSegs := n / segMinCols; segs > maxSegs {
		segs = maxSegs
	}
	segW := (n + segs - 1) / segs
	part := make([]int, m*segs)
	d, _ := a.(*marray.Dense)
	res, err := pool.Run(exec.Loop{
		N: rowChunks * segs, Grain: 1, Ctx: ctx,
		Body: func(t int) {
			b, sg := t/segs, t%segs
			lo, hi := b*rowsPer, min(b*rowsPer+rowsPer, m)
			c0, c1 := sg*segW, min(sg*segW+segW, n)
			for i := lo; i < hi; i++ {
				part[i*segs+sg] = segmentArgMin(a, d, stair, i, c0, c1)
			}
		},
	})
	countRun(ct, res)
	if err != nil {
		merr.Throw(merr.Canceled(err))
	}
	for i := 0; i < m; i++ {
		best, bv := -1, 0.0
		for sg := 0; sg < segs; sg++ {
			c := part[i*segs+sg]
			if c < 0 {
				continue
			}
			if v := a.At(i, c); best < 0 || ltTotal(v, bv) {
				best, bv = c, v
			}
		}
		out[i] = best
	}
}

// countRun folds one kernel dispatch into the native obs site.
func countRun(ct *obs.Counters, res exec.RunResult) {
	if ct == nil {
		return
	}
	ct.PoolLoops.Add(1)
	ct.PoolChunks.Add(int64(res.Chunks))
	if res.Chunks == 1 {
		ct.PoolInline.Add(1)
	}
}
