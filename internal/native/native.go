// Package native is the direct execution backend: the same three
// searching kernels the simulated PRAM serves — SMAWK row minima,
// staircase-Monge row minima, and tube maxima — run straight on
// goroutines, with no charged supersteps and no simulated shared memory.
// The PRAM path is the product of the paper's machine models; this
// package is the serving engine, and the simulators become its
// conformance oracle: every kernel here is differentially tested to be
// index-exact with the PRAM answers (TestNativeMatchesPRAM, the fuzz
// harnesses, and the concurrent serve suite).
//
// # Why index-exactness is structural, not lucky
//
// Each row's leftmost optimum is a per-row function of the input — rows
// interact only for algorithmic speed, never for the answer. The kernels
// therefore partition the row space (the i-slice space, for tubes) into
// contiguous blocks and run the sequential internal/smawk solvers on
// each block: any row subset of a (staircase-)Monge array is
// (staircase-)Monge, and every block solver applies the same leftmost
// tie-breaking rule the PRAM algorithms are pinned to, so the
// concatenated answers equal the whole-array answers column for column.
//
// # Execution shape
//
// A parlay-style size threshold keeps small queries serial: below
// serialRows the dispatch overhead of any fan-out exceeds the kernel
// itself, so the query runs inline on the calling goroutine. Above it,
// rows are cut into blockRows-row blocks and dispatched as one
// work-stealing loop on an internal/exec.Pool with Grain=1 — one
// claimable chunk per block, so idle workers steal whole blocks. Each
// block is a cache tile (the output range plus the sequential solver's
// pooled scratch stay resident while the block is solved), and dense
// inputs narrow enough for a scan take a branchless two-pass row scan
// (see scan.go) instead of the SMAWK recursion. All recursion scratch
// comes from the pooled internal/scratch arenas behind
// smawk.RowMinimaInto, so a query allocates only its answer slice.
//
// Cancellation is cooperative: a done context aborts between blocks and
// the kernel throws merr.ErrCanceled, exactly as the simulated machines
// do at their superstep boundaries. Counters land on the process
// observer's "native" site.
package native

import (
	"context"

	"monge/internal/exec"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/obs"
	"monge/internal/smawk"
)

const (
	// serialRows is the query height below which the kernel runs inline:
	// a block fan-out costs a publish plus one atomic claim per block,
	// which only pays for itself once several blocks exist.
	serialRows = 128
	// blockRows is the row-block height of the parallel split. 64 rows
	// keeps a block's answer range and the SMAWK scratch within a few KB
	// — one block is one cache tile and one work-stealing unit.
	blockRows = 64
	// serialSlices / blockSlices are the tube analogues: a tube i-slice
	// costs a full SMAWK pass over an r x q slice, so slices are coarser
	// units than rows and fan out at smaller counts.
	serialSlices = 16
	blockSlices  = 4
)

// counters returns the process observer's "native" site, or nil when
// observation is off (the disabled path is one atomic pointer load).
func counters() *obs.Counters {
	if o := obs.Global(); o != nil {
		return o.Site("native")
	}
	return nil
}

// checkShape rejects degenerate query shapes with the same typed error
// on every path, so backend choice can never change error behavior.
func checkShape(what string, m, n int) {
	if m <= 0 || n <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"native: %s on %dx%d array; both dimensions must be positive", what, m, n)
	}
}

// checkCtx throws merr.ErrCanceled if ctx is already done, mirroring the
// superstep-boundary cancellation of the simulated machines.
func checkCtx(ctx context.Context) {
	if ctx != nil && ctx.Err() != nil {
		merr.Throw(merr.Canceled(ctx.Err()))
	}
}

// RowMinima returns the leftmost row minima of the Monge array a,
// index-exact with the PRAM backend. pool supplies the fan-out workers
// (nil means the shared exec.Default pool); ctx, when non-nil, cancels
// between row blocks with merr.ErrCanceled.
func RowMinima(ctx context.Context, pool *exec.Pool, a marray.Matrix) []int {
	m, n := a.Rows(), a.Cols()
	checkShape("RowMinima", m, n)
	out := make([]int, m)
	solve := func(lo, hi int) {
		smawk.RowMinimaInto(marray.RowBand(a, lo, hi-lo), out[lo:hi])
	}
	if d, ok := a.(*marray.Dense); ok && n <= denseScanCols {
		solve = func(lo, hi int) { scanDenseMinima(d, lo, hi, out) }
	}
	runRows(ctx, pool, m, solve)
	return out
}

// StaircaseRowMinima returns the leftmost finite row minima of the
// staircase-Monge array a (-1 for fully blocked rows), index-exact with
// the PRAM backend.
func StaircaseRowMinima(ctx context.Context, pool *exec.Pool, a marray.Matrix) []int {
	m, n := a.Rows(), a.Cols()
	checkShape("StaircaseRowMinima", m, n)
	out := make([]int, m)
	solve := func(lo, hi int) {
		smawk.StaircaseRowMinimaInto(marray.RowBand(a, lo, hi-lo), out[lo:hi])
	}
	if d, ok := a.(*marray.Dense); ok && n <= denseScanCols {
		solve = func(lo, hi int) { scanDenseStairMinima(d, lo, hi, out) }
	}
	runRows(ctx, pool, m, solve)
	return out
}

// TubeMaxima solves the tube-maxima problem for the Monge-composite
// array c, index-exact with the PRAM backend: argJ[i][k] is the smallest
// maximising middle coordinate, vals[i][k] = c.At(i, argJ[i][k], k).
// The i-slices are independent (slice i is one Monge row-maxima problem
// over W_i[k][j] = d[i,j] + e[j,k]) and fan out across the pool.
func TubeMaxima(ctx context.Context, pool *exec.Pool, c marray.Composite) ([][]int, [][]float64) {
	p, q, r := c.P(), c.Q(), c.R()
	if p <= 0 || q <= 0 || r <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch,
			"native: TubeMaxima on %dx%dx%d composite; all dimensions must be positive", p, q, r)
	}
	// One backing array per output so a p-slice query costs four
	// allocations plus the row headers, regardless of p.
	argJ := make([][]int, p)
	vals := make([][]float64, p)
	jb := make([]int, p*r)
	vb := make([]float64, p*r)
	for i := range argJ {
		argJ[i] = jb[i*r : (i+1)*r : (i+1)*r]
		vals[i] = vb[i*r : (i+1)*r : (i+1)*r]
	}
	solve := func(i int) {
		wi := marray.Func{M: r, N: q, F: func(k, j int) float64 {
			return c.D.At(i, j) + c.E.At(j, k)
		}}
		smawk.MongeRowMaximaInto(wi, argJ[i])
		for k := 0; k < r; k++ {
			vals[i][k] = c.At(i, argJ[i][k], k)
		}
	}
	ct := counters()
	if ct != nil {
		ct.Searches.Add(1)
	}
	if pool == nil {
		pool = exec.Default()
	}
	if p <= serialSlices || pool.Workers() <= 1 {
		checkCtx(ctx)
		for i := 0; i < p; i++ {
			solve(i)
		}
		countRun(ct, exec.RunResult{Chunks: 1})
		return argJ, vals
	}
	res, err := pool.Run(exec.Loop{N: p, Grain: blockSlices, Ctx: ctx, Body: solve})
	countRun(ct, res)
	if err != nil {
		merr.Throw(merr.Canceled(err))
	}
	return argJ, vals
}

// runRows executes solve over [0, m) — inline below the serial cutoff or
// on a one-worker pool, otherwise as blockRows-row blocks stolen from
// the pool — and folds the dispatch shape into the "native" obs site.
func runRows(ctx context.Context, pool *exec.Pool, m int, solve func(lo, hi int)) {
	ct := counters()
	if ct != nil {
		ct.Searches.Add(1)
	}
	if pool == nil {
		pool = exec.Default()
	}
	if m <= serialRows || pool.Workers() <= 1 {
		checkCtx(ctx)
		solve(0, m)
		countRun(ct, exec.RunResult{Chunks: 1})
		return
	}
	blocks := (m + blockRows - 1) / blockRows
	res, err := pool.Run(exec.Loop{
		N: blocks, Grain: 1, Ctx: ctx,
		Body: func(b int) {
			lo := b * blockRows
			hi := lo + blockRows
			if hi > m {
				hi = m
			}
			solve(lo, hi)
		},
	})
	countRun(ct, res)
	if err != nil {
		merr.Throw(merr.Canceled(err))
	}
}

// countRun folds one kernel dispatch into the native obs site.
func countRun(ct *obs.Counters, res exec.RunResult) {
	if ct == nil {
		return
	}
	ct.PoolLoops.Add(1)
	ct.PoolChunks.Add(int64(res.Chunks))
	if res.Chunks == 1 {
		ct.PoolInline.Add(1)
	}
}
