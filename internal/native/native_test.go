package native_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"monge/internal/core"
	"monge/internal/exec"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/native"
	"monge/internal/obs"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// catch runs f and returns the typed condition it threw, if any.
func catch(f func()) (err error) {
	defer merr.Catch(&err)
	f()
	return nil
}

// diffIdx returns the first index where two answer vectors differ, or -1.
func diffIdx(a, b []int) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// infHeavy imposes an aggressive nonincreasing boundary on a Monge array:
// most of the area is blocked and the later rows are blocked entirely, so
// the -1 answers and the tie-breaking at the staircase edge both get
// exercised. Imposing any nonincreasing boundary on a Monge array yields a
// staircase-Monge array (the Monge inequality is only required on fully
// finite minors).
func infHeavy(d *marray.Dense, m, n int) marray.StairFunc {
	return marray.StairFunc{M: m, N: n, F: d.At, Bound: func(i int) int {
		b := n/4 - i
		if b < 0 {
			b = 0
		}
		return b
	}}
}

// rowCase is one (matrix family) x (expected-equal oracle) input for the
// row-minima differential tests.
type rowCase struct {
	name string
	a    marray.Matrix
}

func rowFamilies(rng *rand.Rand, m, n int) []rowCase {
	dense := marray.RandomMonge(rng, m, n)
	ties := marray.RandomMongeInt(rng, m, n, 2)
	nearTie := marray.RandomNearTieMonge(rng, m, n)
	return []rowCase{
		{"dense", dense},
		{"func", marray.Func{M: m, N: n, F: dense.At}},
		{"ties", ties},
		{"all-ties", marray.Func{M: m, N: n, F: func(int, int) float64 { return 7 }}},
		// Ties split at the 1e-9 scale: exact comparison and exact
		// leftmost tie-breaking are the only way through. Run dense so
		// the branchless scan kernels face it, and Func-backed so the
		// generic At path faces the identical input.
		{"near-tie", nearTie},
		{"near-tie-func", marray.Func{M: m, N: n, F: nearTie.At}},
		// All-ties again, but every entry in an odd column is -0.0:
		// IEEE order makes -0.0 == +0.0, so the leftmost rule must pick
		// column 0 everywhere — a kernel whose key map distinguishes the
		// zero signs answers an odd column instead.
		{"signed-zeros", marray.Func{M: m, N: n, F: func(_, j int) float64 {
			if j%2 == 1 {
				return math.Copysign(0, -1)
			}
			return 0
		}}},
	}
}

func stairFamilies(rng *rand.Rand, m, n int) []rowCase {
	dense := marray.RandomStaircaseMonge(rng, m, n)
	heavy := infHeavy(marray.RandomMonge(rng, m, n), m, n)
	infRand := marray.RandomInfHeavyStaircase(rng, m, n)
	return []rowCase{
		{"dense", dense},
		{"func", marray.Func{M: m, N: n, F: dense.At}},
		{"inf-heavy", heavy},
		{"inf-heavy-dense", marray.Materialize(heavy)},
		{"ties", marray.RandomStaircaseMongeInt(rng, m, n, 2)},
		// The generator variant of the inf-heavy family: tie-dense
		// finite core under a falling boundary, plus its materialized
		// +Inf-dense form so the scan kernels see literal +Inf runs.
		{"inf-heavy-rand", infRand},
		{"inf-heavy-rand-dense", marray.Materialize(infRand)},
	}
}

// TestNativeMatchesPRAM is the differential conformance table: every
// kernel x shape x input family runs through the native backend (on a
// 4-worker pool, so the block fan-out engages even on one CPU) and
// through the PRAM oracle, and any index mismatch fails. Under the CI
// fault matrix the oracle additionally runs with injected machine faults,
// so this test also proves the oracle stays usable as a conformance
// reference under recovery.
func TestNativeMatchesPRAM(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	shapes := []struct{ m, n int }{
		{1, 1}, {1, 33}, {33, 1}, {63, 63}, {64, 64}, {1024, 1024},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(sh.m)*1000 + int64(sh.n)))
		for _, tc := range rowFamilies(rng, sh.m, sh.n) {
			t.Run(fmt.Sprintf("smawk/%dx%d/%s", sh.m, sh.n, tc.name), func(t *testing.T) {
				got := native.RowMinima(context.Background(), pool, tc.a)
				want := core.RowMinima(pram.New(pram.CRCW, sh.n), tc.a)
				if i := diffIdx(got, want); i >= 0 {
					t.Fatalf("row %d: native %d, PRAM %d", i, got[i], want[i])
				}
			})
		}
		for _, tc := range stairFamilies(rng, sh.m, sh.n) {
			t.Run(fmt.Sprintf("staircase/%dx%d/%s", sh.m, sh.n, tc.name), func(t *testing.T) {
				got := native.StaircaseRowMinima(context.Background(), pool, tc.a)
				want := core.StaircaseRowMinima(pram.New(pram.CRCW, sh.n), tc.a)
				if i := diffIdx(got, want); i >= 0 {
					t.Fatalf("row %d: native %d, PRAM %d", i, got[i], want[i])
				}
			})
		}
	}

	tubeShapes := []struct{ p, q, r int }{
		{1, 1, 1}, {1, 17, 5}, {33, 5, 1}, {24, 24, 24}, {48, 16, 8},
	}
	for _, sh := range tubeShapes {
		rng := rand.New(rand.NewSource(int64(sh.p)*100 + int64(sh.q)*10 + int64(sh.r)))
		c := marray.RandomComposite(rng, sh.p, sh.q, sh.r)
		t.Run(fmt.Sprintf("tube/%dx%dx%d", sh.p, sh.q, sh.r), func(t *testing.T) {
			gotJ, gotV := native.TubeMaxima(context.Background(), pool, c)
			wantJ, wantV := core.TubeMaxima(pram.New(pram.CRCW, 2*sh.q*sh.r), c)
			for i := range wantJ {
				for k := range wantJ[i] {
					if gotJ[i][k] != wantJ[i][k] || gotV[i][k] != wantV[i][k] {
						t.Fatalf("tube (%d,%d): native (%d,%g), PRAM (%d,%g)",
							i, k, gotJ[i][k], gotV[i][k], wantJ[i][k], wantV[i][k])
					}
				}
			}
		})
	}
}

// TestNativeDegenerateShapes pins the typed error for m=0 / n=0 inputs:
// the kernels throw merr.ErrDimensionMismatch instead of returning
// backend-dependent silent answers.
func TestNativeDegenerateShapes(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	cases := []struct {
		name string
		f    func()
	}{
		{"rows-0xN", func() { native.RowMinima(nil, pool, marray.NewDense(0, 5)) }},
		{"rows-Mx0", func() { native.RowMinima(nil, pool, marray.NewDense(5, 0)) }},
		{"stair-0xN", func() { native.StaircaseRowMinima(nil, pool, marray.NewDense(0, 5)) }},
		{"stair-Mx0", func() { native.StaircaseRowMinima(nil, pool, marray.NewDense(5, 0)) }},
		{"tube-p0", func() {
			native.TubeMaxima(nil, pool, marray.Composite{D: marray.NewDense(0, 3), E: marray.NewDense(3, 4)})
		}},
		{"tube-r0", func() {
			native.TubeMaxima(nil, pool, marray.Composite{D: marray.NewDense(2, 3), E: marray.NewDense(3, 0)})
		}},
	}
	for _, tc := range cases {
		if err := catch(tc.f); !errors.Is(err, merr.ErrDimensionMismatch) {
			t.Errorf("%s: err = %v, want ErrDimensionMismatch", tc.name, err)
		}
	}
}

// TestNativeCancellation covers both cancellation sites: the entry check
// on the serial path and the between-blocks poll on the fan-out path.
func TestNativeCancellation(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(9))
	small := marray.RandomMonge(rng, 8, 8)
	big := marray.RandomMonge(rng, 1024, 64)
	for name, f := range map[string]func(){
		"serial":  func() { native.RowMinima(ctx, pool, small) },
		"fan-out": func() { native.RowMinima(ctx, pool, big) },
		"stair":   func() { native.StaircaseRowMinima(ctx, pool, marray.RandomStaircaseMonge(rng, 1024, 64)) },
		"tube":    func() { native.TubeMaxima(ctx, pool, marray.RandomComposite(rng, 48, 8, 8)) },
	} {
		if err := catch(f); !errors.Is(err, merr.ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
	}
}

// TestNativeObsCounters checks the kernels land their dispatch counters
// on the observer's "native" site.
func TestNativeObsCounters(t *testing.T) {
	prev := obs.Global()
	o := obs.NewObserver()
	obs.SetGlobal(o)
	defer obs.SetGlobal(prev)

	pool := exec.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(3))
	native.RowMinima(nil, pool, marray.RandomMonge(rng, 1024, 32))
	c := o.Site("native")
	if c.Searches.Load() != 1 {
		t.Fatalf("Searches = %d, want 1", c.Searches.Load())
	}
	if c.PoolLoops.Load() != 1 || c.PoolChunks.Load() < 2 {
		t.Fatalf("PoolLoops = %d, PoolChunks = %d; want one fan-out loop of several chunks",
			c.PoolLoops.Load(), c.PoolChunks.Load())
	}
}

// TestNativeHugeAspectChunks is the regression test for the
// huge-aspect serialization bug: before the merge-path area split, a
// 1xn query had a single row block and therefore one chunk no matter
// how wide the row, so every worker but one sat idle. The area split
// must produce at least W chunks whenever the area permits, on both
// the flat (1xn) and the tall (nx1) extreme, and the answers must stay
// index-exact with the sequential solver.
func TestNativeHugeAspectChunks(t *testing.T) {
	prev := obs.Global()
	o := obs.NewObserver()
	obs.SetGlobal(o)
	defer obs.SetGlobal(prev)

	const workers = 4
	pool := exec.NewPool(workers)
	defer pool.Close()
	rng := rand.New(rand.NewSource(9))

	flat := marray.RandomMonge(rng, 1, 1<<16)
	got := native.RowMinima(nil, pool, flat)
	want := smawk.RowMinima(flat)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flat row %d: native %d, smawk %d", i, got[i], want[i])
		}
	}
	c := o.Site("native")
	if c.PoolChunks.Load() < workers {
		t.Fatalf("1x%d query ran as %d chunks; want >= %d so no worker idles",
			flat.Cols(), c.PoolChunks.Load(), workers)
	}

	chunksBefore := c.PoolChunks.Load()
	tall := marray.RandomMonge(rng, 1<<16, 1)
	got = native.RowMinima(nil, pool, tall)
	want = smawk.RowMinima(tall)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tall row %d: native %d, smawk %d", i, got[i], want[i])
		}
	}
	if delta := c.PoolChunks.Load() - chunksBefore; delta < workers {
		t.Fatalf("%dx1 query ran as %d chunks; want >= %d", tall.Rows(), delta, workers)
	}
}

// TestNativeColumnSplitExact pins the column-segment combine against
// the sequential solvers on flat shapes that exercise every arm:
// dense, Func-backed (the generic At loop), and staircase with blocked
// tails (including fully blocked rows), at widths that do and do not
// divide evenly into segments.
func TestNativeColumnSplitExact(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(10))

	for _, shape := range [][2]int{{1, 1 << 14}, {2, 12289}, {3, 4099}, {5, 2048}} {
		m, n := shape[0], shape[1]
		d := marray.RandomMonge(rng, m, n)
		got := native.RowMinima(nil, pool, d)
		want := smawk.RowMinima(d)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dense %dx%d row %d: native %d, smawk %d", m, n, i, got[i], want[i])
			}
		}
		f := marray.Func{M: m, N: n, F: d.At}
		got = native.RowMinima(nil, pool, f)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("func %dx%d row %d: native %d, smawk %d", m, n, i, got[i], want[i])
			}
		}
		st := marray.RandomStaircaseMonge(rng, m, n)
		gotS := native.StaircaseRowMinima(nil, pool, st)
		wantS := smawk.StaircaseRowMinima(st)
		for i := range wantS {
			if gotS[i] != wantS[i] {
				t.Fatalf("stair %dx%d row %d: native %d, smawk %d", m, n, i, gotS[i], wantS[i])
			}
		}
	}
}
