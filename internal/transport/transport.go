// Package transport implements Hoffman's 1961 observation [Hof61], the
// historical root of the Monge property: for a transportation problem
// whose cost array is Monge, the greedy northwest-corner rule is optimal.
// The greedy solver runs in O(m + n); a successive-shortest-path min-cost
// flow solver provides the optimality oracle for tests.
package transport

import (
	"math"

	"monge/internal/marray"
	"monge/internal/merr"
)

// Flow is one shipment: amount units from source i to sink j.
type Flow struct {
	I, J   int
	Amount float64
}

// Greedy solves the balanced transportation problem with supplies a,
// demands b (sums must match), and Monge cost array c, by the
// northwest-corner rule: repeatedly ship as much as possible on the
// current (i, j) and advance whichever of supply/demand was exhausted.
// For Monge costs the result is optimal (Hoffman). O(m+n) time.
// An unbalanced problem returns an error matching merr.ErrUnbalanced.
func Greedy(a, b []float64, c marray.Matrix) (cost float64, flows []Flow, err error) {
	sa, sb := 0.0, 0.0
	for _, v := range a {
		sa += v
	}
	for _, v := range b {
		sb += v
	}
	if math.Abs(sa-sb) > 1e-9*math.Max(1, math.Abs(sa)) {
		return 0, nil, merr.Errorf(merr.ErrUnbalanced, "transport: supply %v, demand %v", sa, sb)
	}
	ra := append([]float64(nil), a...)
	rb := append([]float64(nil), b...)
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		amt := math.Min(ra[i], rb[j])
		if amt > 0 {
			cost += amt * c.At(i, j)
			flows = append(flows, Flow{I: i, J: j, Amount: amt})
		}
		ra[i] -= amt
		rb[j] -= amt
		if ra[i] <= 1e-12 {
			i++
		}
		if rb[j] <= 1e-12 {
			j++
		}
	}
	return cost, flows, nil
}

// MustGreedy is Greedy for callers with statically balanced inputs; it
// panics (with the typed error) on an unbalanced problem.
func MustGreedy(a, b []float64, c marray.Matrix) (cost float64, flows []Flow) {
	cost, flows, err := Greedy(a, b, c)
	if err != nil {
		merr.Throw(err)
	}
	return cost, flows
}

// Optimal solves the transportation problem exactly by successive
// shortest paths (Bellman-Ford with potentials), for arbitrary costs.
// Intended as the test oracle; O(V*E*flow-phases).
func Optimal(a, b []float64, c marray.Matrix) float64 {
	m, n := len(a), len(b)
	// Node ids: 0 = source, 1..m = supplies, m+1..m+n = demands,
	// m+n+1 = sink.
	V := m + n + 2
	src, snk := 0, m+n+1
	type edge struct {
		to, rev int
		cap     float64
		cost    float64
	}
	graph := make([][]edge, V)
	addEdge := func(u, v int, cap, cost float64) {
		graph[u] = append(graph[u], edge{to: v, rev: len(graph[v]), cap: cap, cost: cost})
		graph[v] = append(graph[v], edge{to: u, rev: len(graph[u]) - 1, cap: 0, cost: -cost})
	}
	total := 0.0
	for i := 0; i < m; i++ {
		addEdge(src, 1+i, a[i], 0)
		total += a[i]
	}
	for j := 0; j < n; j++ {
		addEdge(m+1+j, snk, b[j], 0)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			addEdge(1+i, m+1+j, math.Inf(1), c.At(i, j))
		}
	}
	costTotal := 0.0
	maxPhases := m*n + m + n + 10
	for phase := 0; total > 1e-12 && phase < maxPhases; phase++ {
		// Bellman-Ford: V-1 full relaxation rounds (deterministic
		// termination; an epsilon guards against float-noise cycling).
		dist := make([]float64, V)
		prevV := make([]int, V)
		prevE := make([]int, V)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		for round := 0; round < V-1; round++ {
			changed := false
			for u := 0; u < V; u++ {
				if math.IsInf(dist[u], 1) {
					continue
				}
				for ei, e := range graph[u] {
					if e.cap > 1e-12 && dist[u]+e.cost < dist[e.to]-1e-9 {
						dist[e.to] = dist[u] + e.cost
						prevV[e.to] = u
						prevE[e.to] = ei
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		if math.IsInf(dist[snk], 1) {
			break
		}
		// Bottleneck along the path.
		push := total
		for v := snk; v != src; v = prevV[v] {
			if cp := graph[prevV[v]][prevE[v]].cap; cp < push {
				push = cp
			}
		}
		for v := snk; v != src; v = prevV[v] {
			e := &graph[prevV[v]][prevE[v]]
			e.cap -= push
			graph[v][e.rev].cap += push
		}
		costTotal += push * dist[snk]
		total -= push
	}
	return costTotal
}
