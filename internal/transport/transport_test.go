package transport

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
	"monge/internal/merr"
)

func randInstance(rng *rand.Rand, m, n int) (a, b []float64) {
	a = make([]float64, m)
	b = make([]float64, n)
	total := 0.0
	for i := range a {
		a[i] = float64(1 + rng.Intn(20))
		total += a[i]
	}
	// random composition of total into n parts
	rest := total
	for j := 0; j < n-1; j++ {
		take := math.Floor(rest * rng.Float64())
		b[j] = take
		rest -= take
	}
	b[n-1] = rest
	return a, b
}

func TestGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a, b := randInstance(rng, m, n)
		c := marray.RandomMonge(rng, m, n)
		_, flows := MustGreedy(a, b, c)
		// Shipments respect supplies and demands exactly.
		sa := make([]float64, m)
		sb := make([]float64, n)
		for _, f := range flows {
			if f.Amount <= 0 {
				t.Fatal("nonpositive flow recorded")
			}
			sa[f.I] += f.Amount
			sb[f.J] += f.Amount
		}
		for i := range a {
			if math.Abs(sa[i]-a[i]) > 1e-9 {
				t.Fatalf("supply %d: shipped %v of %v", i, sa[i], a[i])
			}
		}
		for j := range b {
			if math.Abs(sb[j]-b[j]) > 1e-9 {
				t.Fatalf("demand %d: received %v of %v", j, sb[j], b[j])
			}
		}
	}
}

func TestGreedyOptimalOnMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		m, n := 1+rng.Intn(7), 1+rng.Intn(7)
		a, b := randInstance(rng, m, n)
		c := marray.RandomMonge(rng, m, n)
		// Shift costs to be nonnegative (min-cost-flow with Bellman-Ford
		// handles negatives, but nonnegative keeps it robust); shifting
		// all entries by a constant preserves both Monge-ness and the
		// optimal flow structure, changing both objectives equally.
		lo := math.Inf(1)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				lo = math.Min(lo, c.At(i, j))
			}
		}
		shifted := marray.Func{M: m, N: n, F: func(i, j int) float64 {
			return c.At(i, j) - lo
		}}
		gc, _ := MustGreedy(a, b, shifted)
		oc := Optimal(a, b, shifted)
		if math.Abs(gc-oc) > 1e-6*math.Max(1, oc) {
			t.Fatalf("trial %d: greedy %v vs optimal %v", trial, gc, oc)
		}
	}
}

func TestGreedySuboptimalOnNonMonge(t *testing.T) {
	// The anti-Monge 2x2 instance where the greedy rule fails,
	// demonstrating that Monge-ness is what makes Hoffman's rule work.
	a := []float64{1, 1}
	b := []float64{1, 1}
	c := marray.FromRows([][]float64{
		{10, 0},
		{0, 10},
	})
	gc, _ := MustGreedy(a, b, c)
	oc := Optimal(a, b, c)
	if gc <= oc {
		t.Fatalf("expected greedy (%v) to lose to optimal (%v) on anti-Monge costs", gc, oc)
	}
}

func TestGreedyUnbalancedError(t *testing.T) {
	_, _, err := Greedy([]float64{1}, []float64{2}, marray.NewDense(1, 1))
	if !errors.Is(err, merr.ErrUnbalanced) {
		t.Fatalf("err = %v, want merr.ErrUnbalanced", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced instance must panic through MustGreedy")
		}
	}()
	MustGreedy([]float64{1}, []float64{2}, marray.NewDense(1, 1))
}

func TestQuickGreedyOptimal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := randInstance(rng, m, n)
		c := marray.RandomMonge(rng, m, n)
		lo := math.Inf(1)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				lo = math.Min(lo, c.At(i, j))
			}
		}
		sh := marray.Func{M: m, N: n, F: func(i, j int) float64 { return c.At(i, j) - lo }}
		gc, _ := MustGreedy(a, b, sh)
		oc := Optimal(a, b, sh)
		return math.Abs(gc-oc) < 1e-6*math.Max(1, oc)
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}
