package stredit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/pram"
)

func randString(rng *rand.Rand, n, alphabet int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(rune('a' + rng.Intn(alphabet)))
	}
	return sb.String()
}

// randCosts builds a random nonnegative cost model with zero-cost exact
// matches (substitution must not beat delete+insert by construction is NOT
// required; the algorithms handle arbitrary nonnegative costs).
func randCosts(rng *rand.Rand) Costs {
	del := make(map[rune]float64)
	ins := make(map[rune]float64)
	sub := make(map[[2]rune]float64)
	get := func(m map[rune]float64, r rune) float64 {
		if v, ok := m[r]; ok {
			return v
		}
		v := 1 + float64(rng.Intn(9))
		m[r] = v
		return v
	}
	return Costs{
		Delete: func(r rune) float64 { return get(del, r) },
		Insert: func(r rune) float64 { return get(ins, r) },
		Sub: func(a, b rune) float64 {
			if a == b {
				return 0
			}
			k := [2]rune{a, b}
			if v, ok := sub[k]; ok {
				return v
			}
			v := 1 + float64(rng.Intn(9))
			sub[k] = v
			return v
		},
	}
}

func TestDistanceUnitSmall(t *testing.T) {
	c := UnitCosts()
	cases := []struct {
		x, y string
		d    float64
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
	}
	for _, cse := range cases {
		if got := Distance(cse.x, cse.y, c); got != cse.d {
			t.Fatalf("Distance(%q,%q) = %v, want %v", cse.x, cse.y, got, cse.d)
		}
	}
}

func TestDistanceWithScript(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := UnitCosts()
	for trial := 0; trial < 50; trial++ {
		x := randString(rng, rng.Intn(12), 3)
		y := randString(rng, rng.Intn(12), 3)
		d, ops := DistanceWithScript(x, y, c)
		if d != Distance(x, y, c) {
			t.Fatalf("script distance differs")
		}
		if ScriptCost(ops, c) != d {
			t.Fatalf("script cost %v != distance %v", ScriptCost(ops, c), d)
		}
		// replay the script to verify it transforms x into y
		var out strings.Builder
		xi := 0
		xs := []rune(x)
		for _, op := range ops {
			switch op.Kind {
			case "del":
				xi++
			case "ins":
				out.WriteRune(op.Y)
			default:
				out.WriteRune(op.Y)
				xi++
			}
		}
		if xi != len(xs) || out.String() != y {
			t.Fatalf("script does not transform %q into %q (got %q)", x, y, out.String())
		}
	}
}

func TestStripDistIsMongeAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		c := randCosts(rng)
		y := randString(rng, 1+rng.Intn(10), 3)
		xc := rune('a' + rng.Intn(3))
		s := NewStripDist(xc, []rune(y), c)
		// Correctness against a tiny DP across the strip.
		want := Distance(string(xc), y, c)
		if got := s.At(0, len([]rune(y))); math.Abs(got-want) > 1e-9 {
			t.Fatalf("strip corner mismatch: %v vs %v", got, want)
		}
		// Monge on finite entries, +Inf below the diagonal.
		d := marray.Materialize(s)
		for u := 0; u < d.Rows(); u++ {
			for v := 0; v < d.Cols(); v++ {
				if v < u && !math.IsInf(d.At(u, v), 1) {
					t.Fatal("lower triangle must be +Inf")
				}
			}
		}
		if !mongeOnFinite(d) {
			t.Fatalf("strip matrix not Monge on finite entries")
		}
	}
}

func mongeOnFinite(a marray.Matrix) bool {
	m, n := a.Rows(), a.Cols()
	for i := 0; i+1 < m; i++ {
		for j := 0; j+1 < n; j++ {
			x00, x01 := a.At(i, j), a.At(i, j+1)
			x10, x11 := a.At(i+1, j), a.At(i+1, j+1)
			if math.IsInf(x00, 1) || math.IsInf(x01, 1) || math.IsInf(x10, 1) || math.IsInf(x11, 1) {
				continue
			}
			if x00+x11 > x01+x10+1e-9 {
				return false
			}
		}
	}
	return true
}

func TestDistanceGridDAGMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		c := randCosts(rng)
		x := randString(rng, rng.Intn(15), 3)
		y := randString(rng, rng.Intn(15), 3)
		got := DistanceGridDAG(x, y, c)
		want := Distance(x, y, c)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (%q,%q): grid-DAG %v vs DP %v", trial, x, y, got, want)
		}
	}
}

func TestDistancePRAMMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		c := randCosts(rng)
		x := randString(rng, 1+rng.Intn(12), 3)
		y := randString(rng, 1+rng.Intn(12), 3)
		mach := pram.New(pram.CRCW, len(x)*len(y)+1)
		got := DistancePRAM(mach, x, y, c)
		want := Distance(x, y, c)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (%q,%q): PRAM %v vs DP %v", trial, x, y, got, want)
		}
		if mach.Time() == 0 {
			t.Fatal("machine must be charged")
		}
	}
}

func TestDistanceWavefront(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		c := randCosts(rng)
		x := randString(rng, rng.Intn(12), 3)
		y := randString(rng, rng.Intn(12), 3)
		mach := pram.New(pram.CRCW, len(x)+len(y)+1)
		got := DistanceWavefront(mach, x, y, c)
		want := Distance(x, y, c)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: wavefront %v vs DP %v", trial, got, want)
		}
	}
}

func TestDistanceHypercube(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		c := randCosts(rng)
		x := randString(rng, 1+rng.Intn(8), 3)
		y := randString(rng, 1+rng.Intn(8), 3)
		got, rep := DistanceHypercube(hc.Cube, x, y, c)
		want := Distance(x, y, c)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (%q,%q): hypercube %v vs DP %v", trial, x, y, got, want)
		}
		if len(x) > 1 && rep.Time == 0 {
			t.Fatal("hypercube run must charge time")
		}
	}
}

func TestDistanceEmptyCases(t *testing.T) {
	c := UnitCosts()
	mach := pram.New(pram.CRCW, 4)
	if DistancePRAM(mach, "", "abc", c) != 3 {
		t.Fatal("empty x")
	}
	if DistancePRAM(mach, "ab", "", c) != 2 {
		t.Fatal("empty y")
	}
	if d, _ := DistanceHypercube(hc.Cube, "", "", c); d != 0 {
		t.Fatal("both empty")
	}
}

// TestPRAMTimePolylog checks the application-4 shape: the Monge engine's
// parallel time grows polylogarithmically while the wavefront baseline
// grows linearly, so their ratio must widen with n.
func TestPRAMTimePolylog(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := UnitCosts()
	ratio := func(n int) float64 {
		x := randString(rng, n, 4)
		y := randString(rng, n, 4)
		m1 := pram.New(pram.CRCW, n*n)
		DistancePRAM(m1, x, y, c)
		m2 := pram.New(pram.CRCW, n*n)
		DistanceWavefront(m2, x, y, c)
		return float64(m2.Time()) / float64(m1.Time())
	}
	r16, r128 := ratio(16), ratio(128)
	if r128 <= r16 {
		t.Fatalf("wavefront/monge time ratio should widen: %f -> %f", r16, r128)
	}
}

func TestQuickGridDAG(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randCosts(rng)
		x := randString(rng, rng.Intn(20), 4)
		y := randString(rng, rng.Intn(20), 4)
		return math.Abs(DistanceGridDAG(x, y, c)-Distance(x, y, c)) < 1e-9
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLCSLength(t *testing.T) {
	cases := []struct {
		x, y string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 3},
		{"abc", "def", 0},
		{"ABCBDAB", "BDCABA", 4},
		{"AGGTAB", "GXTXAYB", 4},
	}
	for _, c := range cases {
		if got := LCSLength(c.x, c.y); got != c.want {
			t.Fatalf("LCS(%q,%q) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestLCSLengthRandomAgainstDP(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	lcsDP := func(x, y string) int {
		xs, ys := []rune(x), []rune(y)
		prev := make([]int, len(ys)+1)
		cur := make([]int, len(ys)+1)
		for i := 1; i <= len(xs); i++ {
			for j := 1; j <= len(ys); j++ {
				if xs[i-1] == ys[j-1] {
					cur[j] = prev[j-1] + 1
				} else if prev[j] >= cur[j-1] {
					cur[j] = prev[j]
				} else {
					cur[j] = cur[j-1]
				}
			}
			prev, cur = cur, prev
		}
		return prev[len(ys)]
	}
	for trial := 0; trial < 60; trial++ {
		x := randString(rng, rng.Intn(25), 3)
		y := randString(rng, rng.Intn(25), 3)
		if got, want := LCSLength(x, y), lcsDP(x, y); got != want {
			t.Fatalf("LCS(%q,%q) = %d, want %d", x, y, got, want)
		}
	}
}
