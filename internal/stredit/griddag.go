package stredit

import (
	"context"

	"monge/internal/hcmonge"
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/smawk"
)

// This file contains the grid-DAG substrate: single-row strip DIST
// matrices (implicit, O(1) entry evaluation after sparse-table
// preprocessing) and the hypercube string-editing driver of Section 1.3(4).

// StripDist is the boundary-to-boundary shortest-path matrix of a
// single-row strip of the edit grid-DAG: entry (u, v) is the cheapest way
// to move from column u on the row above to column v on the row below,
// consuming one source character xc. Unreachable pairs (v < u) are +Inf.
//
// A path goes right along the top row to some column, then takes the
// delete (down) or substitute (diagonal) edge, then right along the bottom
// row. With P the prefix sums of the insert costs, the cost is
// P[v]-P[u] + min(Delete(xc), min_{u<w<=v} M[w]) where
// M[w] = Sub(xc, y_w) - Insert(y_w); the inner min is a range-minimum
// query answered in O(1) by a sparse table. StripDist matrices are Monge
// on their finite entries (paths in a planar DAG cannot cross), with the
// +Inf entries forming per-row interval supports that preserve total
// monotonicity.
type StripDist struct {
	t      int
	del    float64
	prefix []float64 // prefix[j] = cost of inserting y_1..y_j
	rmq    *sparseTable
}

// NewStripDist builds the strip matrix for source character xc over
// target runes ys. O(t lg t) preprocessing.
func NewStripDist(xc rune, ys []rune, c Costs) *StripDist {
	t := len(ys)
	prefix := make([]float64, t+1)
	m := make([]float64, t) // M[w-1] for w = 1..t
	for j := 1; j <= t; j++ {
		ins := c.Insert(ys[j-1])
		prefix[j] = prefix[j-1] + ins
		m[j-1] = c.Sub(xc, ys[j-1]) - ins
	}
	return &StripDist{t: t, del: c.Delete(xc), prefix: prefix, rmq: newSparseTable(m)}
}

// Rows returns t+1 boundary columns.
func (s *StripDist) Rows() int { return s.t + 1 }

// Cols returns t+1 boundary columns.
func (s *StripDist) Cols() int { return s.t + 1 }

// At returns the strip distance from top column u to bottom column v.
func (s *StripDist) At(u, v int) float64 {
	if v < u {
		return infD
	}
	best := s.del
	if v > u {
		if m := s.rmq.min(u, v-1); m < best {
			best = m
		}
	}
	return s.prefix[v] - s.prefix[u] + best
}

// sparseTable answers range-minimum queries in O(1) after O(n lg n)
// preprocessing.
type sparseTable struct {
	n    int
	logs []int
	tab  [][]float64
}

func newSparseTable(vals []float64) *sparseTable {
	n := len(vals)
	st := &sparseTable{n: n, logs: make([]int, n+1)}
	for i := 2; i <= n; i++ {
		st.logs[i] = st.logs[i/2] + 1
	}
	levels := 1
	if n > 0 {
		levels = st.logs[n] + 1
	}
	st.tab = make([][]float64, levels)
	st.tab[0] = append([]float64(nil), vals...)
	for k := 1; k < levels; k++ {
		width := n - (1 << k) + 1
		st.tab[k] = make([]float64, width)
		for i := 0; i < width; i++ {
			a, b := st.tab[k-1][i], st.tab[k-1][i+(1<<(k-1))]
			if b < a {
				a = b
			}
			st.tab[k][i] = a
		}
	}
	return st
}

// min returns the minimum of vals[lo..hi] (inclusive).
func (st *sparseTable) min(lo, hi int) float64 {
	if lo > hi || lo < 0 || hi >= st.n {
		return infD
	}
	k := st.logs[hi-lo+1]
	a, b := st.tab[k][lo], st.tab[k][hi-(1<<k)+1]
	if b < a {
		a = b
	}
	return a
}

// smawkRowMinima searches a (min,+) slice with SMAWK; the interval +Inf
// supports of DIST matrices preserve total monotonicity.
func smawkRowMinima(a marray.Matrix) []int {
	return smawk.RowMinima(a)
}

// HypercubeReport aggregates the charged time of a hypercube string-edit
// run: the combination tree's levels run sequentially, each level's
// combines simultaneously, and each combine's slices simultaneously; the
// reported time is the sum over levels of the maximum combine time.
type HypercubeReport struct {
	Time int64
	Comm int64
}

// DistanceHypercube computes the edit distance with the strip combination
// running on simulated networks of the given kind (Theorem 3.4 machinery:
// one Monge row-minima search per slice, each on its own subcube).
func DistanceHypercube(kind hc.Kind, x, y string, c Costs) (float64, HypercubeReport) {
	return DistanceHypercubeCtx(nil, kind, x, y, c)
}

// DistanceHypercubeCtx is DistanceHypercube with a context attached to
// every simulated machine the combination tree creates: cancellation
// (e.g. a caller deadline) throws merr.ErrCanceled at the next superstep
// boundary instead of letting the run finish silently. A nil ctx runs
// uncancellable.
func DistanceHypercubeCtx(ctx context.Context, kind hc.Kind, x, y string, c Costs) (float64, HypercubeReport) {
	xs, ys := []rune(x), []rune(y)
	s, t := len(xs), len(ys)
	var rep HypercubeReport
	if s == 0 || t == 0 {
		return degenerate(xs, ys, c), rep
	}
	strips := make([]marray.Matrix, s)
	for i := 0; i < s; i++ {
		strips[i] = NewStripDist(xs[i], ys, c)
	}
	for len(strips) > 1 {
		next := make([]marray.Matrix, 0, (len(strips)+1)/2)
		var levelTime int64
		for p := 0; p+1 < len(strips); p += 2 {
			dense, ct, cc := combineHC(ctx, kind, strips[p], strips[p+1])
			next = append(next, dense)
			if ct > levelTime {
				levelTime = ct
			}
			rep.Comm += cc
		}
		rep.Time += levelTime
		if len(strips)%2 == 1 {
			next = append(next, strips[len(strips)-1])
		}
		strips = next
	}
	return strips[0].At(0, t), rep
}

// combineHC computes the (min,+) product with one hypercube row-minima
// search per slice; the slices run simultaneously, so the charged time is
// the slowest slice.
func combineHC(ctx context.Context, kind hc.Kind, a, b marray.Matrix) (*marray.Dense, int64, int64) {
	n := a.Rows()
	out := marray.NewDense(n, n)
	rows := make([]int, n)
	for v := range rows {
		rows[v] = v
	}
	var maxTime, comm int64
	for u := 0; u < n; u++ {
		uu := u
		mach := hcmonge.MachineFor(kind, n, n)
		if ctx != nil {
			mach.SetContext(ctx)
		}
		idx := hcmonge.RowMinimaOn(mach, rows, rows, func(v, w int) float64 {
			return a.At(uu, w) + b.At(w, v)
		})
		if mach.Time() > maxTime {
			maxTime = mach.Time()
		}
		comm += mach.Comm()
		for v := 0; v < n; v++ {
			out.Set(uu, v, a.At(uu, idx[v])+b.At(idx[v], v))
		}
	}
	return out, maxTime, comm
}
