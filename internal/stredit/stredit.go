// Package stredit implements application 4 of the paper: the string
// editing problem.
//
//   - Distance is the Wagner-Fischer O(st) dynamic program [WF74], the
//     sequential baseline.
//   - DistancePRAM and DistanceHypercube reduce string editing to a
//     shortest-path problem in the edit grid-DAG and solve it by the
//     divide-and-conquer of [AP89a, AALM88]: the DAG is cut into
//     single-row strips whose boundary-to-boundary DIST matrices are Monge,
//     and adjacent strips are combined with the (min,+) product computed by
//     Monge array searching (one row-minima search per slice of the
//     Monge-composite array). The combination tree has lg s levels and each
//     level's searches run on parallel processor groups, giving the
//     O(lg s lg t) parallel time of the paper's Section 1.3(4).
//   - DistanceWavefront is the classical anti-diagonal parallel DP (the
//     pre-Monge approach, standing in for the Ranka-Sahni SIMD-hypercube
//     baseline the paper compares against): O(s + t) parallel time.
package stredit

import (
	"math"

	"monge/internal/core"
	"monge/internal/marray"
	"monge/internal/pram"
)

// Costs defines the three edit operations' costs. All costs must be
// nonnegative for the shortest-path formulation.
type Costs struct {
	// Delete is the cost of deleting rune r from the source string.
	Delete func(r rune) float64
	// Insert is the cost of inserting rune r of the target string.
	Insert func(r rune) float64
	// Sub is the cost of substituting source rune a by target rune b.
	Sub func(a, b rune) float64
}

// UnitCosts returns the Levenshtein cost model: unit insert/delete,
// zero-cost matches, unit substitutions.
func UnitCosts() Costs {
	return Costs{
		Delete: func(rune) float64 { return 1 },
		Insert: func(rune) float64 { return 1 },
		Sub: func(a, b rune) float64 {
			if a == b {
				return 0
			}
			return 1
		},
	}
}

// Distance computes the edit distance from x to y under c with the
// Wagner-Fischer dynamic program. O(|x|*|y|) time, O(|y|) space.
func Distance(x, y string, c Costs) float64 {
	xs, ys := []rune(x), []rune(y)
	t := len(ys)
	prev := make([]float64, t+1)
	cur := make([]float64, t+1)
	for j := 1; j <= t; j++ {
		prev[j] = prev[j-1] + c.Insert(ys[j-1])
	}
	for i := 1; i <= len(xs); i++ {
		cur[0] = prev[0] + c.Delete(xs[i-1])
		for j := 1; j <= t; j++ {
			best := prev[j] + c.Delete(xs[i-1])
			if v := cur[j-1] + c.Insert(ys[j-1]); v < best {
				best = v
			}
			if v := prev[j-1] + c.Sub(xs[i-1], ys[j-1]); v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[t]
}

// LCSLength returns the length of a longest common subsequence of x and y,
// via the classical identity |LCS| = (|x| + |y| - d)/2 where d is the edit
// distance under indel-only costs (substitution priced as delete+insert).
func LCSLength(x, y string) int {
	c := Costs{
		Delete: func(rune) float64 { return 1 },
		Insert: func(rune) float64 { return 1 },
		Sub: func(a, b rune) float64 {
			if a == b {
				return 0
			}
			return 2
		},
	}
	d := Distance(x, y, c)
	return (len([]rune(x)) + len([]rune(y)) - int(d)) / 2
}

// Op is one step of an edit script.
type Op struct {
	// Kind is "match", "sub", "del", or "ins".
	Kind string
	// X and Y are the runes involved (zero when not applicable).
	X, Y rune
}

// DistanceWithScript additionally recovers an optimal edit script.
// O(|x|*|y|) time and space.
func DistanceWithScript(x, y string, c Costs) (float64, []Op) {
	xs, ys := []rune(x), []rune(y)
	s, t := len(xs), len(ys)
	d := make([][]float64, s+1)
	for i := range d {
		d[i] = make([]float64, t+1)
	}
	for j := 1; j <= t; j++ {
		d[0][j] = d[0][j-1] + c.Insert(ys[j-1])
	}
	for i := 1; i <= s; i++ {
		d[i][0] = d[i-1][0] + c.Delete(xs[i-1])
		for j := 1; j <= t; j++ {
			best := d[i-1][j] + c.Delete(xs[i-1])
			if v := d[i][j-1] + c.Insert(ys[j-1]); v < best {
				best = v
			}
			if v := d[i-1][j-1] + c.Sub(xs[i-1], ys[j-1]); v < best {
				best = v
			}
			d[i][j] = best
		}
	}
	var ops []Op
	i, j := s, t
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && d[i][j] == d[i-1][j-1]+c.Sub(xs[i-1], ys[j-1]):
			kind := "sub"
			if xs[i-1] == ys[j-1] && c.Sub(xs[i-1], ys[j-1]) == 0 {
				kind = "match"
			}
			ops = append(ops, Op{Kind: kind, X: xs[i-1], Y: ys[j-1]})
			i, j = i-1, j-1
		case i > 0 && d[i][j] == d[i-1][j]+c.Delete(xs[i-1]):
			ops = append(ops, Op{Kind: "del", X: xs[i-1]})
			i--
		default:
			ops = append(ops, Op{Kind: "ins", Y: ys[j-1]})
			j--
		}
	}
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	return d[s][t], ops
}

// ScriptCost sums an edit script's cost under c (validation helper).
func ScriptCost(ops []Op, c Costs) float64 {
	total := 0.0
	for _, op := range ops {
		switch op.Kind {
		case "del":
			total += c.Delete(op.X)
		case "ins":
			total += c.Insert(op.Y)
		case "sub", "match":
			total += c.Sub(op.X, op.Y)
		}
	}
	return total
}

// DistanceWavefront is the anti-diagonal parallel DP on the given machine:
// s+t supersteps of up to min(s,t)+1 processors. It is the baseline the
// Monge approach improves on (O(s+t) versus O(lg s lg t) time).
func DistanceWavefront(mach *pram.Machine, x, y string, c Costs) float64 {
	xs, ys := []rune(x), []rune(y)
	s, t := len(xs), len(ys)
	d := pram.NewArray[float64](mach, (s+1)*(t+1))
	at := func(i, j int) int { return i*(t+1) + j }
	mach.Step(1, func(int) {})
	d.Set(at(0, 0), 0)
	for j := 1; j <= t; j++ {
		d.Set(at(0, j), d.Read(at(0, j-1))+c.Insert(ys[j-1]))
	}
	for i := 1; i <= s; i++ {
		d.Set(at(i, 0), d.Read(at(i-1, 0))+c.Delete(xs[i-1]))
	}
	// Anti-diagonal k holds cells (i, j) with i+j == k, i,j >= 1.
	for k := 2; k <= s+t; k++ {
		lo := 1
		if k-t > lo {
			lo = k - t
		}
		hi := s
		if k-1 < hi {
			hi = k - 1
		}
		if lo > hi {
			continue
		}
		kk := k
		mach.Step(hi-lo+1, func(id int) {
			i := lo + id
			j := kk - i
			best := d.Read(at(i-1, j)) + c.Delete(xs[i-1])
			if v := d.Read(at(i, j-1)) + c.Insert(ys[j-1]); v < best {
				best = v
			}
			if v := d.Read(at(i-1, j-1)) + c.Sub(xs[i-1], ys[j-1]); v < best {
				best = v
			}
			d.Write(id, at(i, j), best)
		})
	}
	return d.Read(at(s, t))
}

// DistancePRAM computes the edit distance by the grid-DAG strip
// combination on the given machine, returning the distance. Parallel time
// is O(lg s lg t) with ~s*t processors (each of the lg s combination
// levels runs its (min,+) products through parallel Monge row-minima
// searches).
func DistancePRAM(mach *pram.Machine, x, y string, c Costs) float64 {
	xs, ys := []rune(x), []rune(y)
	s, t := len(xs), len(ys)
	if s == 0 || t == 0 {
		return degenerate(xs, ys, c)
	}
	// Build the s single-row strip DIST matrices (implicit; entries O(1)
	// after O(t lg t) sparse-table preprocessing per strip, charged).
	strips := make([]marray.Matrix, s)
	mach.StepCost(s*(t+1), pram.Log2Ceil(t+1)+1, func(int) {})
	for i := 0; i < s; i++ {
		strips[i] = NewStripDist(xs[i], ys, c)
	}
	// Binary combination tree.
	for len(strips) > 1 {
		next := make([]marray.Matrix, 0, (len(strips)+1)/2)
		pairs := len(strips) / 2
		results := make([]marray.Matrix, pairs)
		procs := make([]int, pairs)
		for p := 0; p < pairs; p++ {
			procs[p] = (t + 1) * 2
		}
		mach.ParallelDo(procs, func(p int, sub *pram.Machine) {
			results[p] = CombinePRAM(sub, strips[2*p], strips[2*p+1])
		})
		for p := 0; p < pairs; p++ {
			next = append(next, results[p])
		}
		if len(strips)%2 == 1 {
			next = append(next, strips[len(strips)-1])
		}
		strips = next
	}
	return strips[0].At(0, t)
}

// degenerate handles empty-string cases.
func degenerate(xs, ys []rune, c Costs) float64 {
	total := 0.0
	for _, r := range xs {
		total += c.Delete(r)
	}
	for _, r := range ys {
		total += c.Insert(r)
	}
	return total
}

// CombinePRAM computes the (min,+) product C[u][v] = min_w A[u][w] +
// B[w][v] of two Monge DIST matrices on the machine: one Monge row-minima
// search per slice u, all slices on parallel processor groups.
func CombinePRAM(mach *pram.Machine, a, b marray.Matrix) *marray.Dense {
	n := a.Rows()
	out := marray.NewDense(n, n)
	procs := make([]int, n)
	for u := range procs {
		procs[u] = 2 * n
	}
	rows := make([][]float64, n)
	mach.ParallelDo(procs, func(u int, sub *pram.Machine) {
		w := marray.Func{M: n, N: n, F: func(v, wj int) float64 {
			return a.At(u, wj) + b.At(wj, v)
		}}
		idx := core.RowMinima(sub, w)
		row := make([]float64, n)
		for v := 0; v < n; v++ {
			row[v] = w.At(v, idx[v])
		}
		rows[u] = row
	})
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			out.Set(u, v, rows[u][v])
		}
	}
	return out
}

// CombineSeq is the sequential (min,+) product via SMAWK, used by tests
// and by the sequential grid-DAG driver.
func CombineSeq(a, b marray.Matrix) *marray.Dense {
	n := a.Rows()
	out := marray.NewDense(n, n)
	for u := 0; u < n; u++ {
		w := marray.Func{M: n, N: n, F: func(v, wj int) float64 {
			return a.At(u, wj) + b.At(wj, v)
		}}
		idx := rowMinimaWithInf(w)
		for v := 0; v < n; v++ {
			out.Set(u, v, w.At(v, idx[v]))
		}
	}
	return out
}

// rowMinimaWithInf runs SMAWK; the +Inf unreachable entries of DIST
// matrices preserve total monotonicity (interval support per row), so the
// plain algorithm applies.
func rowMinimaWithInf(a marray.Matrix) []int {
	return smawkRowMinima(a)
}

// DistanceGridDAG is the sequential strip-combination driver (the same
// algorithm as DistancePRAM without a machine), used to validate the
// reduction itself.
func DistanceGridDAG(x, y string, c Costs) float64 {
	xs, ys := []rune(x), []rune(y)
	s, t := len(xs), len(ys)
	if s == 0 || t == 0 {
		return degenerate(xs, ys, c)
	}
	strips := make([]marray.Matrix, s)
	for i := 0; i < s; i++ {
		strips[i] = NewStripDist(xs[i], ys, c)
	}
	for len(strips) > 1 {
		next := make([]marray.Matrix, 0, (len(strips)+1)/2)
		for p := 0; p+1 < len(strips); p += 2 {
			next = append(next, CombineSeq(strips[p], strips[p+1]))
		}
		if len(strips)%2 == 1 {
			next = append(next, strips[len(strips)-1])
		}
		strips = next
	}
	return strips[0].At(0, t)
}

var infD = math.Inf(1)
