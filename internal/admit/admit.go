// Package admit is the load-discipline front of the serving layer: it
// wraps a serve.Pool in admission control, per-tenant quotas, priority
// shedding, per-query deadlines, and a retry/hedging policy, so that an
// overloaded pool degrades into fast typed rejections instead of
// convoys of blocked callers.
//
// # Admission
//
// Every request passes four gates before it reaches the pool's queue:
// the caller's context must not already be done (ErrDeadlineExceeded /
// merr.ErrCanceled), the front's inflight cap must have room
// (ErrOverloaded), low-priority work is shed early when inflight load
// crosses the shed threshold (ErrOverloaded, counted separately as
// "shed" — capacity above the threshold is reserved for priority > 0),
// and the tenant's token bucket must hold a token (ErrOverloaded).
// The enqueue itself is the pool's fail-fast TrySubmit: a full queue is
// an immediate ErrOverloaded, never a block. Admission therefore never
// blocks past the caller's context — in fact it never blocks at all.
//
// # Retries and hedging
//
// Do runs the full request lifecycle. Failed attempts with a retryable
// condition (overload) are retried up to Options.RetryMax attempts with
// exponential backoff (the same doubling schedule the machine fault
// layer charges via faults.BackoffTime), but only while the retry
// budget holds: each arriving request earns Options.RetryBudget tokens
// and each retry spends one, bounding retry amplification under
// sustained overload. With Options.HedgeAfter set, a request that has
// not resolved within the threshold issues one hedged second attempt
// and takes whichever answer lands first — index-exact by construction,
// because queries are pure.
//
// # Chaos
//
// The front consults the pool's serving-boundary fault injector
// (serve.Options.Chaos, defaulting to the process-wide faults.Global):
// injected "ticket drops" simulate a result lost between worker and
// caller, which the front recovers by resubmitting. Together with the
// pool's injected queue stalls and slow shards, this makes the entire
// socket-to-kernel path chaos-testable: the conformance suite proves
// that under injection every admitted query still completes index-exact
// or fails with a typed error — no hangs, no silent zeros.
package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"monge/internal/faults"
	"monge/internal/obs"
	"monge/internal/serve"
)

// Re-exported sentinels, so callers holding only an admit handle can
// errors.Is against the serving error vocabulary.
var (
	ErrOverloaded       = serve.ErrOverloaded
	ErrDeadlineExceeded = serve.ErrDeadlineExceeded
)

// Options is the load-discipline policy; it aliases serve.Admission so
// the whole serving stack is configured through one options struct
// (monge.PoolOptions.Admission).
type Options = serve.Admission

// Request is one admitted unit of work: the query plus its admission
// metadata. Tenant keys the per-tenant token bucket (the empty string
// is a valid shared tenant). Priority orders shedding under load:
// priority <= 0 work is shed first when the front approaches its
// inflight cap, priority > 0 work keeps being admitted until the hard
// cap.
type Request struct {
	Query    serve.Query
	Tenant   string
	Priority int
}

// Stats is a point-in-time view of the front's admission counters (the
// same counts are mirrored into the obs "serve" site when an observer
// is installed).
type Stats struct {
	Inflight        int64 // admitted queries not yet resolved
	Admitted        int64
	Rejected        int64 // hard rejections: inflight cap, quota, full queue
	Shed            int64 // low-priority rejections below the hard cap
	Hedged          int64 // hedged second attempts issued
	Retried         int64 // resubmissions: policy retries + recovered ticket drops
	DeadlineExpired int64 // requests rejected at admission with a done context
}

// tokenScale is the fixed-point scale of the retry budget (one retry
// token = tokenScale units in the atomic accumulator).
const tokenScale = 1000

// Front wraps a serve.Pool in the admission policy. Create with New;
// a Front is safe for concurrent use by any number of goroutines.
type Front struct {
	pool *serve.Pool

	maxInflight int64
	shedAt      int64
	rate        float64
	burst       float64
	retryMax    int
	backoff     time.Duration
	hedgeAfter  time.Duration
	earn        int64 // budget tokens earned per request, scaled
	budgetCap   int64 // scaled

	inflight atomic.Int64
	budget   atomic.Int64
	seq      atomic.Int64 // chaos unit ids (ticket drops)
	watchers sync.WaitGroup

	mu      sync.Mutex
	tenants map[string]*bucket

	st   Stats // atomic fields accessed via atomic helpers on int64
	stMu struct {
		admitted, rejected, shed, hedged, retried, deadline atomic.Int64
	}

	obsC *obs.Counters
}

// bucket is one tenant's token bucket; guarded by Front.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// New returns a Front applying opt on top of pool. A nil opt is the
// zero policy: fail-fast admission with the default inflight cap, no
// quotas, no retries, no hedging.
func New(pool *serve.Pool, opt *Options) *Front {
	var o Options
	if opt != nil {
		o = *opt
	}
	f := &Front{
		pool:       pool,
		rate:       o.TenantRate,
		burst:      float64(o.TenantBurst),
		retryMax:   o.RetryMax,
		backoff:    o.RetryBackoff,
		hedgeAfter: o.HedgeAfter,
		tenants:    make(map[string]*bucket),
	}
	f.maxInflight = int64(o.MaxInflight)
	if f.maxInflight <= 0 {
		f.maxInflight = int64(4 * pool.Workers())
	}
	shed := o.ShedFraction
	if shed <= 0 || shed > 1 {
		shed = 0.75
	}
	f.shedAt = int64(shed * float64(f.maxInflight))
	if f.shedAt < 1 {
		f.shedAt = 1
	}
	if f.rate > 0 && f.burst < 1 {
		f.burst = 1
	}
	if f.retryMax < 1 {
		f.retryMax = 1
	}
	if f.backoff <= 0 {
		f.backoff = time.Millisecond
	}
	budget := o.RetryBudget
	if budget <= 0 {
		budget = 0.1
	}
	f.earn = int64(budget * tokenScale)
	f.budgetCap = 10 * tokenScale // at most 10 banked retries
	f.budget.Store(f.budgetCap)   // start full so cold-start faults can retry
	if ob := obs.Global(); ob != nil {
		f.obsC = ob.Site("serve")
	}
	return f
}

// Pool returns the wrapped serving pool.
func (f *Front) Pool() *serve.Pool { return f.pool }

// bump increments a local stat and, when an observer is installed, its
// obs mirror.
func (f *Front) bump(local *atomic.Int64, global *atomic.Int64) {
	local.Add(1)
	if f.obsC != nil {
		global.Add(1)
	}
}

// Admit passes req through the admission gates and enqueues it,
// returning the query's ticket. It never blocks: every rejection is an
// immediate typed error (ErrOverloaded, ErrDeadlineExceeded,
// merr.ErrCanceled, serve.ErrClosed). The inflight slot is released
// when the ticket resolves, whether or not the caller awaits it.
func (f *Front) Admit(ctx context.Context, req Request) (*serve.Ticket, error) {
	if ctx.Err() != nil {
		f.bump(&f.stMu.deadline, f.obsDeadline())
		return nil, serve.ContextError(ctx)
	}
	n := f.inflight.Add(1)
	if n > f.maxInflight {
		f.inflight.Add(-1)
		f.bump(&f.stMu.rejected, f.obsRejected())
		return nil, fmt.Errorf("%w: inflight cap %d reached", ErrOverloaded, f.maxInflight)
	}
	if req.Priority <= 0 && n > f.shedAt {
		f.inflight.Add(-1)
		f.bump(&f.stMu.shed, f.obsShed())
		return nil, fmt.Errorf("%w: low-priority work shed at load %d/%d", ErrOverloaded, n, f.maxInflight)
	}
	if f.rate > 0 && !f.takeTenantToken(req.Tenant) {
		f.inflight.Add(-1)
		f.bump(&f.stMu.rejected, f.obsRejected())
		return nil, fmt.Errorf("%w: tenant %q quota exhausted", ErrOverloaded, req.Tenant)
	}
	tk, err := f.pool.TrySubmit(ctx, req.Query)
	if err != nil {
		f.inflight.Add(-1)
		if errors.Is(err, ErrOverloaded) {
			f.bump(&f.stMu.rejected, f.obsRejected())
		}
		return nil, err
	}
	f.bump(&f.stMu.admitted, f.obsAdmitted())
	f.watchers.Add(1)
	go func() {
		defer f.watchers.Done()
		<-tk.Done()
		f.inflight.Add(-1)
	}()
	return tk, nil
}

// obs accessor helpers: nil-safe targets for bump when no observer is
// installed (bump checks obsC before touching them).
func (f *Front) obsAdmitted() *atomic.Int64 {
	return obsField(f.obsC, func(c *obs.Counters) *atomic.Int64 { return &c.Admitted })
}
func (f *Front) obsRejected() *atomic.Int64 {
	return obsField(f.obsC, func(c *obs.Counters) *atomic.Int64 { return &c.Rejected })
}
func (f *Front) obsShed() *atomic.Int64 {
	return obsField(f.obsC, func(c *obs.Counters) *atomic.Int64 { return &c.Shed })
}
func (f *Front) obsHedged() *atomic.Int64 {
	return obsField(f.obsC, func(c *obs.Counters) *atomic.Int64 { return &c.Hedged })
}
func (f *Front) obsRetried() *atomic.Int64 {
	return obsField(f.obsC, func(c *obs.Counters) *atomic.Int64 { return &c.Retried })
}
func (f *Front) obsDeadline() *atomic.Int64 {
	return obsField(f.obsC, func(c *obs.Counters) *atomic.Int64 { return &c.DeadlineExpired })
}

func obsField(c *obs.Counters, get func(*obs.Counters) *atomic.Int64) *atomic.Int64 {
	if c == nil {
		return nil
	}
	return get(c)
}

// takeTenantToken refills and debits tenant's bucket.
func (f *Front) takeTenantToken(tenant string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	b := f.tenants[tenant]
	if b == nil {
		b = &bucket{tokens: f.burst, last: now}
		f.tenants[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * f.rate
	if b.tokens > f.burst {
		b.tokens = f.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// takeRetryToken spends one budgeted retry token if the budget holds.
func (f *Front) takeRetryToken() bool {
	for {
		cur := f.budget.Load()
		if cur < tokenScale {
			return false
		}
		if f.budget.CompareAndSwap(cur, cur-tokenScale) {
			return true
		}
	}
}

// earnBudget credits the per-request retry allowance, capped.
func (f *Front) earnBudget() {
	if f.budget.Add(f.earn) > f.budgetCap {
		f.budget.Store(f.budgetCap)
	}
}

// retryable reports whether err is worth a budgeted retry: overload is
// (capacity frees up), deadlines, cancellations, and structural errors
// are not.
func retryable(err error) bool { return errors.Is(err, ErrOverloaded) }

// backoffSleep waits the attempt-th backoff interval (doubling from the
// base, capped at 1024x — the schedule faults.BackoffTime charges the
// simulated machines), or less if ctx is done first.
func (f *Front) backoffSleep(ctx context.Context, attempt int) {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 10 {
		shift = 10
	}
	t := time.NewTimer(f.backoff << uint(shift))
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Do runs the full lifecycle of one request: admission, await, policy
// retries under the budget, hedging past the latency threshold, and
// chaos ticket-drop recovery. The returned Result either carries an
// index-exact answer or a typed error (ErrOverloaded,
// ErrDeadlineExceeded, merr.ErrCanceled, serve.ErrClosed, or a
// structural error thrown by the query itself); Do never blocks past
// ctx.
func (f *Front) Do(ctx context.Context, req Request) serve.Result {
	f.earnBudget()
	unit := f.seq.Add(1)
	attempt := 0    // policy retries consumed
	redelivery := 0 // chaos ticket-drop redeliveries (bounded by faults.MaxAttempts)
	chaos := f.pool.Chaos()
	for {
		tk, err := f.Admit(ctx, req)
		if err != nil {
			if retryable(err) && attempt+1 < f.retryMax && ctx.Err() == nil && f.takeRetryToken() {
				attempt++
				f.bump(&f.stMu.retried, f.obsRetried())
				f.backoffSleep(ctx, attempt)
				continue
			}
			return serve.Result{Err: err}
		}
		res := f.await(ctx, req, tk)
		if res.Err == nil && chaos.Enabled() && chaos.TicketDrop(unit, redelivery) {
			// The answer was computed but lost on the way back — the
			// injected transport fault. Queries are pure: resubmit and
			// recompute; the redelivered answer is identical.
			redelivery++
			f.bump(&f.stMu.retried, f.obsRetried())
			continue
		}
		if res.Err != nil && retryable(res.Err) && attempt+1 < f.retryMax && ctx.Err() == nil && f.takeRetryToken() {
			attempt++
			f.bump(&f.stMu.retried, f.obsRetried())
			f.backoffSleep(ctx, attempt)
			continue
		}
		return res
	}
}

// await blocks until tk resolves, ctx is done, or the hedging threshold
// passes — in which case one hedged second attempt races the first and
// the earlier answer wins.
func (f *Front) await(ctx context.Context, req Request, tk *serve.Ticket) serve.Result {
	if f.hedgeAfter <= 0 {
		select {
		case <-tk.Done():
			return tk.Result()
		case <-ctx.Done():
			return serve.Result{Err: serve.ContextError(ctx)}
		}
	}
	timer := time.NewTimer(f.hedgeAfter)
	defer timer.Stop()
	select {
	case <-tk.Done():
		return tk.Result()
	case <-ctx.Done():
		return serve.Result{Err: serve.ContextError(ctx)}
	case <-timer.C:
	}
	// Past the latency threshold: hedge. Failure to admit the hedge
	// (no capacity) is not an error — the first attempt keeps running.
	tk2, err := f.Admit(ctx, req)
	if err != nil {
		select {
		case <-tk.Done():
			return tk.Result()
		case <-ctx.Done():
			return serve.Result{Err: serve.ContextError(ctx)}
		}
	}
	f.bump(&f.stMu.hedged, f.obsHedged())
	select {
	case <-tk.Done():
		return tk.Result()
	case <-tk2.Done():
		return tk2.Result()
	case <-ctx.Done():
		return serve.Result{Err: serve.ContextError(ctx)}
	}
}

// Stats snapshots the admission counters.
func (f *Front) Stats() Stats {
	return Stats{
		Inflight:        f.inflight.Load(),
		Admitted:        f.stMu.admitted.Load(),
		Rejected:        f.stMu.rejected.Load(),
		Shed:            f.stMu.shed.Load(),
		Hedged:          f.stMu.hedged.Load(),
		Retried:         f.stMu.retried.Load(),
		DeadlineExpired: f.stMu.deadline.Load(),
	}
}

// Drain blocks until every admitted query's inflight slot has been
// released (all ticket watchers exited). Call after the pool has
// drained (pool.Wait or pool.Close) to guarantee no front goroutine
// outlives the serving stack.
func (f *Front) Drain() { f.watchers.Wait() }

// mustNotBlock is a compile-time reminder that faults.MaxAttempts
// bounds chaos redeliveries; referenced here so the contract is
// documented next to the import.
var _ = faults.MaxAttempts
