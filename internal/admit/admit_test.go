package admit

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"monge/internal/batch"
	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/pram"
	"monge/internal/serve"
	"monge/internal/smawk"
)

// slowMatrix's entries take real wall time, so tests can hold workers
// busy long enough to drive the front into its overload regimes.
func slowMatrix(n int, delay time.Duration) marray.Matrix {
	return marray.Func{M: n, N: n, F: func(i, j int) float64 {
		time.Sleep(delay)
		return float64(i*n+j) - float64(i)*float64(j)
	}}
}

func fastQuery(seed int64) serve.Query {
	rng := rand.New(rand.NewSource(seed))
	return serve.Query{Kind: serve.RowMinima, A: marray.RandomMonge(rng, 10, 10)}
}

// waitGoroutines polls the goroutine count down to limit, as the serve
// and exec leak tests do.
func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still alive, want <= %d\n%s",
				runtime.NumGoroutine(), limit, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInflightCap pins the hard admission gate: with MaxInflight slots
// occupied by slow queries, the next Admit fails immediately with
// ErrOverloaded and the rejection is counted.
func TestInflightCap(t *testing.T) {
	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 8})
	defer p.Close()
	f := New(p, &Options{MaxInflight: 2, ShedFraction: 1})

	slow := serve.Query{Kind: serve.RowMinima, A: slowMatrix(8, 2*time.Millisecond)}
	for i := 0; i < 2; i++ {
		if _, err := f.Admit(context.Background(), Request{Query: slow, Priority: 1}); err != nil {
			t.Fatalf("admit %d under cap: %v", i, err)
		}
	}
	start := time.Now()
	_, err := f.Admit(context.Background(), Request{Query: slow, Priority: 1})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap admit err=%v, want ErrOverloaded", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("over-cap rejection took %v; admission must never block", took)
	}
	st := f.Stats()
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("stats admitted=%d rejected=%d, want 2/1", st.Admitted, st.Rejected)
	}
	p.Wait()
	f.Drain()
	if got := f.Stats().Inflight; got != 0 {
		t.Fatalf("inflight=%d after drain, want 0", got)
	}
}

// TestPriorityShedding pins graceful degradation: above the shed
// threshold, priority <= 0 work is rejected while priority > 0 work
// keeps being admitted up to the hard cap.
func TestPriorityShedding(t *testing.T) {
	p := serve.New(pram.CRCW, serve.Options{Workers: 1, QueueDepth: 8})
	defer p.Close()
	f := New(p, &Options{MaxInflight: 4, ShedFraction: 0.5})

	slow := serve.Query{Kind: serve.RowMinima, A: slowMatrix(8, 2*time.Millisecond)}
	// Fill to the shed threshold (2 of 4) with high-priority work.
	for i := 0; i < 2; i++ {
		if _, err := f.Admit(context.Background(), Request{Query: slow, Priority: 1}); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	// Low-priority is now shed...
	if _, err := f.Admit(context.Background(), Request{Query: slow, Priority: 0}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("low-priority above threshold: err=%v, want ErrOverloaded", err)
	}
	// ...while high-priority still fits.
	if _, err := f.Admit(context.Background(), Request{Query: slow, Priority: 1}); err != nil {
		t.Fatalf("high-priority above threshold: %v", err)
	}
	st := f.Stats()
	if st.Shed != 1 {
		t.Fatalf("shed=%d, want 1", st.Shed)
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected=%d, want 0 (shed is counted separately)", st.Rejected)
	}
	p.Wait()
	f.Drain()
}

// TestTenantQuota pins per-tenant token buckets: a tenant burns its
// burst and is rejected while another tenant is unaffected.
func TestTenantQuota(t *testing.T) {
	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 16})
	defer p.Close()
	// 1 token/hour effectively: no refill within the test.
	f := New(p, &Options{MaxInflight: 16, TenantRate: 1.0 / 3600, TenantBurst: 2})

	for i := 0; i < 2; i++ {
		if _, err := f.Admit(context.Background(), Request{Query: fastQuery(int64(i)), Tenant: "a", Priority: 1}); err != nil {
			t.Fatalf("tenant a admit %d: %v", i, err)
		}
	}
	if _, err := f.Admit(context.Background(), Request{Query: fastQuery(9), Tenant: "a", Priority: 1}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("tenant a over quota: err=%v, want ErrOverloaded", err)
	}
	if _, err := f.Admit(context.Background(), Request{Query: fastQuery(10), Tenant: "b", Priority: 1}); err != nil {
		t.Fatalf("tenant b must be unaffected: %v", err)
	}
	p.Wait()
	f.Drain()
}

// TestAdmitDeadline pins fail-fast on a done context: typed error,
// nothing admitted, counter incremented.
func TestAdmitDeadline(t *testing.T) {
	p := serve.New(pram.CRCW, serve.Options{Workers: 1})
	defer p.Close()
	f := New(p, nil)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()
	if _, err := f.Admit(ctx, Request{Query: fastQuery(1)}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired admit err=%v, want ErrDeadlineExceeded", err)
	}
	res := f.Do(ctx, Request{Query: fastQuery(1)})
	if !errors.Is(res.Err, ErrDeadlineExceeded) {
		t.Fatalf("expired Do err=%v, want ErrDeadlineExceeded", res.Err)
	}
	if st := f.Stats(); st.DeadlineExpired != 2 || st.Admitted != 0 {
		t.Fatalf("stats deadline=%d admitted=%d, want 2/0", st.DeadlineExpired, st.Admitted)
	}
}

// TestRetryRecoversOverload pins the budgeted retry policy: a Do call
// that first meets a saturated front succeeds on a later attempt once
// capacity frees up, and the retry is counted.
func TestRetryRecoversOverload(t *testing.T) {
	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 8})
	defer p.Close()
	f := New(p, &Options{
		MaxInflight:  1,
		ShedFraction: 1,
		RetryMax:     16,
		RetryBudget:  4,
		RetryBackoff: 500 * time.Microsecond,
	})

	// Saturate the single slot with a slow query, then Do a fast one:
	// its first attempts are rejected, a later one lands. The backoff
	// schedule (doubling from 500us, ~10 budgeted retries) spans far
	// longer than the slow query's evaluation, so a retry must land.
	if _, err := f.Admit(context.Background(), Request{Query: serve.Query{Kind: serve.RowMinima, A: slowMatrix(8, 100*time.Microsecond)}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	res := f.Do(context.Background(), Request{Query: fastQuery(3), Priority: 1})
	if res.Err != nil {
		t.Fatalf("Do with retries failed: %v", res.Err)
	}
	if st := f.Stats(); st.Retried == 0 {
		t.Log("Do succeeded without needing a retry (slot freed first); retry path covered elsewhere")
	}
	p.Wait()
	f.Drain()
}

// TestRetryBudgetBounds pins retry amplification: with a zero budget
// earn rate and a drained bucket, overloaded Do calls fail after the
// first attempt instead of retrying forever.
func TestRetryBudgetBounds(t *testing.T) {
	p := serve.New(pram.CRCW, serve.Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	f := New(p, &Options{MaxInflight: 1, ShedFraction: 1, RetryMax: 4, RetryBudget: 0.001, RetryBackoff: 100 * time.Microsecond})
	// Drain the starting budget.
	f.budget.Store(0)

	if _, err := f.Admit(context.Background(), Request{Query: serve.Query{Kind: serve.RowMinima, A: slowMatrix(8, time.Millisecond)}, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res := f.Do(context.Background(), Request{Query: fastQuery(4), Priority: 1})
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("budget-drained Do err=%v, want ErrOverloaded", res.Err)
	}
	// Without budget there is no backoff loop: the failure is prompt.
	if took := time.Since(start); took > time.Second {
		t.Fatalf("budget-drained Do took %v; it must fail fast", took)
	}
	if st := f.Stats(); st.Retried != 0 {
		t.Fatalf("retried=%d with an empty budget, want 0", st.Retried)
	}
	p.Wait()
	f.Drain()
}

// TestHedging pins the tail-latency hedge: a slow first attempt past
// HedgeAfter triggers one hedged second attempt, the first answer wins,
// and the result stays index-exact.
func TestHedging(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := marray.RandomMonge(rng, 24, 24)
	want := smawk.RowMinima(a)
	// Implicit backing with a small per-entry delay: slow enough to trip
	// the hedge threshold, fast enough for the test.
	slow := marray.Func{M: 24, N: 24, F: func(i, j int) float64 {
		time.Sleep(20 * time.Microsecond)
		return a.At(i, j)
	}}

	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 8})
	defer p.Close()
	f := New(p, &Options{MaxInflight: 8, HedgeAfter: time.Millisecond})

	res := f.Do(context.Background(), Request{Query: serve.Query{Kind: serve.RowMinima, A: slow}, Priority: 1})
	if res.Err != nil {
		t.Fatalf("hedged Do failed: %v", res.Err)
	}
	for r := range want {
		if res.Idx[r] != want[r] {
			t.Fatalf("hedged answer row %d: %d, want %d", r, res.Idx[r], want[r])
		}
	}
	if st := f.Stats(); st.Hedged == 0 {
		t.Fatalf("hedged=%d, want >= 1 (first attempt slower than HedgeAfter)", st.Hedged)
	}
	p.Wait()
	f.Drain()
}

// TestTicketDropRecovery pins the chaos transport fault: with injected
// ticket drops at a high rate, Do transparently recomputes and still
// returns the index-exact answer, counting the redeliveries.
func TestTicketDropRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := marray.RandomMonge(rng, 16, 16)
	want := smawk.RowMinima(a)

	inj := faults.New(3, 0.9)
	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 8, Chaos: inj})
	defer p.Close()
	f := New(p, &Options{MaxInflight: 8})

	sawRetry := false
	for i := 0; i < 16; i++ {
		res := f.Do(context.Background(), Request{Query: serve.Query{Kind: serve.RowMinima, A: a}, Priority: 1})
		if res.Err != nil {
			t.Fatalf("Do %d under ticket drops: %v", i, res.Err)
		}
		for r := range want {
			if res.Idx[r] != want[r] {
				t.Fatalf("Do %d row %d: %d, want %d", i, r, res.Idx[r], want[r])
			}
		}
	}
	if f.Stats().Retried > 0 {
		sawRetry = true
	}
	if !sawRetry {
		t.Fatalf("rate-0.9 ticket drops produced no redeliveries: %+v", inj.Stats())
	}
	if inj.Stats().TicketDrops == 0 {
		t.Fatalf("injector recorded no ticket drops: %+v", inj.Stats())
	}
	p.Wait()
	f.Drain()
}

// TestChaosConformance is the front's end-to-end chaos contract: queue
// stalls, slow shards, and ticket drops all injected at once, many
// concurrent Do callers with mixed priorities, tenants, and deadlines —
// every call either returns an index-exact answer or a typed error, no
// hangs (watchdog), no goroutine leaks after drain.
func TestChaosConformance(t *testing.T) {
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(17))
	type job struct {
		q   serve.Query
		idx []int
	}
	var jobs []job
	for i := 0; i < 6; i++ {
		a := marray.RandomMonge(rng, 12+i, 15)
		jobs = append(jobs, job{q: serve.Query{Kind: serve.RowMinima, A: a}, idx: smawk.RowMinima(a)})
	}
	s := marray.RandomStaircaseMonge(rng, 14, 14)
	jobs = append(jobs, job{q: serve.Query{Kind: serve.StaircaseRowMinima, A: s}, idx: smawk.StaircaseRowMinima(s)})

	inj := faults.New(7, 0.25)
	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 2, Chaos: inj})
	f := New(p, &Options{
		MaxInflight:  6,
		ShedFraction: 0.5,
		RetryMax:     3,
		RetryBudget:  1,
		RetryBackoff: 200 * time.Microsecond,
		HedgeAfter:   5 * time.Millisecond,
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 12; i++ {
					j := jobs[(g+i)%len(jobs)]
					ctx := context.Background()
					var cancel context.CancelFunc
					if i%4 == 3 {
						// A quarter of the load carries tight deadlines.
						ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i%3)*time.Millisecond)
					}
					res := f.Do(ctx, Request{Query: j.q, Tenant: string(rune('a' + g%3)), Priority: g % 2})
					if cancel != nil {
						cancel()
					}
					if res.Err != nil {
						if !errors.Is(res.Err, ErrOverloaded) &&
							!errors.Is(res.Err, ErrDeadlineExceeded) &&
							!errors.Is(res.Err, merr.ErrCanceled) {
							t.Errorf("goroutine %d call %d: untyped error %v", g, i, res.Err)
						}
						continue
					}
					for r := range j.idx {
						if res.Idx[r] != j.idx[r] {
							t.Errorf("goroutine %d call %d row %d: %d, want %d (silent corruption under chaos)",
								g, i, r, res.Idx[r], j.idx[r])
							break
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos conformance hung: admitted work neither completed nor failed typed")
	}
	p.Close()
	f.Drain()
	st := f.Stats()
	if st.Inflight != 0 {
		t.Fatalf("inflight=%d after drain, want 0", st.Inflight)
	}
	if st.Admitted == 0 {
		t.Fatal("chaos run admitted nothing; the workload no longer exercises the front")
	}
	waitGoroutines(t, base)
}

// TestFrontDrainLeak pins the watcher lifecycle: after the pool closes
// and Drain returns, no front goroutine survives — including watchers
// of tickets nobody awaited.
func TestFrontDrainLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	p := serve.New(pram.CRCW, serve.Options{Workers: 2, QueueDepth: 32})
	f := New(p, &Options{MaxInflight: 32})
	for i := 0; i < 12; i++ {
		// Fire-and-forget: nobody reads these tickets.
		if _, err := f.Admit(context.Background(), Request{Query: fastQuery(int64(i)), Priority: 1}); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	p.Close()
	f.Drain()
	waitGoroutines(t, base)
	if got := f.Stats().Inflight; got != 0 {
		t.Fatalf("inflight=%d after drain, want 0", got)
	}
}

// TestDoAgainstOracle is the front's differential conformance: a mix of
// all three kinds through Do (no chaos) answers index-exact with a
// sequential batch.Driver.
func TestDoAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := batch.New(pram.CRCW)
	defer d.Close()

	p := serve.New(pram.CRCW, serve.Options{Workers: 3})
	defer p.Close()
	f := New(p, &Options{MaxInflight: 32})

	for i := 0; i < 8; i++ {
		a := marray.RandomMonge(rng, 10+i, 13)
		want := d.RowMinima(a)
		res := f.Do(context.Background(), Request{Query: serve.Query{Kind: serve.RowMinima, A: a}, Priority: 1})
		if res.Err != nil {
			t.Fatalf("Do %d: %v", i, res.Err)
		}
		for r := range want {
			if res.Idx[r] != want[r] {
				t.Fatalf("Do %d row %d: %d, want %d", i, r, res.Idx[r], want[r])
			}
		}
	}
	c := marray.RandomComposite(rng, 5, 6, 7)
	wantJ, wantV := d.TubeMaxima(c)
	res := f.Do(context.Background(), Request{Query: serve.Query{Kind: serve.TubeMaxima, C: c}, Priority: 1})
	if res.Err != nil {
		t.Fatalf("tube Do: %v", res.Err)
	}
	for x := range wantJ {
		for k := range wantJ[x] {
			if res.TubeJ[x][k] != wantJ[x][k] || res.TubeV[x][k] != wantV[x][k] {
				t.Fatalf("tube (%d,%d): j=%d v=%g, want j=%d v=%g",
					x, k, res.TubeJ[x][k], res.TubeV[x][k], wantJ[x][k], wantV[x][k])
			}
		}
	}
	f.Drain()
}
