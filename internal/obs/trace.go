package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCap bounds the spans a tracer retains (about 64 bytes
// each); spans past the cap are counted in Dropped instead of stored, so
// a long run cannot exhaust memory while still reporting how much of its
// tail is missing.
const DefaultTraceCap = 1 << 20

// Span is one traced superstep (or driver-level phase): where it ran,
// what it was, when it started relative to the tracer's epoch, how long
// it took in wall time, and the charged quantities of the step. Wall
// time is real profiling data about the simulator itself; the charged
// fields tie each span back to the cost model.
type Span struct {
	// Site is the emitting site ("pram", "hypercube", ..., "hcmonge").
	Site string `json:"site"`
	// Name is the step flavour ("step", "local", "exchange") or the
	// driver phase ("RowMinima", "TubeMaxima", ...).
	Name string `json:"name"`
	// Start is the offset from the tracer's epoch; Dur is the wall-clock
	// duration of the span.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// N is the activated processor count, Cost the per-processor charge,
	// Chunks the pool dispatch width (all zero on driver-phase spans).
	N      int `json:"n,omitempty"`
	Cost   int `json:"cost,omitempty"`
	Chunks int `json:"chunks,omitempty"`
}

// Tracer collects spans. One tracer is shared by every machine of a run
// (children inherit it), so the exported trace interleaves all sites on
// a common clock. Safe for concurrent use; spans are recorded at step
// barriers, never inside loop bodies.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	spans   []Span
	cap     int
	dropped int64
}

func newTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracer{epoch: time.Now(), cap: cap}
}

// Begin returns the span start time. It exists so call sites read
// naturally (t0 := tr.Begin()); a nil tracer must be checked by the
// caller before paying for the clock read.
func (t *Tracer) Begin() time.Time { return time.Now() }

// End records a span that started at t0 with the given identity and
// charged quantities.
func (t *Tracer) End(site, name string, t0 time.Time, n, cost, chunks int) {
	now := time.Now()
	s := Span{
		Site: site, Name: name,
		Start: t0.Sub(t.epoch), Dur: now.Sub(t0),
		N: n, Cost: cost, Chunks: chunks,
	}
	t.mu.Lock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// Dropped returns how many spans were discarded after the cap filled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	d := t.dropped
	t.mu.Unlock()
	return d
}

// WriteJSON writes the raw span list as an indented JSON document:
//
//	{"spans": [{"site": ..., "name": ..., "start_ns": ..., ...}], "dropped": 0}
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	doc := struct {
		Spans   []Span `json:"spans"`
		Dropped int64  `json:"dropped"`
	}{Spans: t.spans, Dropped: t.dropped}
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace_event
// format; timestamps and durations are microseconds as floats. Loadable
// in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]int `json:"args,omitempty"`
}

// chromeMeta is a metadata ("ph":"M") event naming a thread lane.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace writes the spans in Chrome trace_event JSON format
// ({"traceEvents": [...]}), one thread lane per site, so the superstep
// timeline of a run can be inspected in chrome://tracing or Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// One stable tid per site, in order of first appearance.
	tids := map[string]int{}
	var events []any
	for _, s := range spans {
		tid, ok := tids[s.Site]
		if !ok {
			tid = len(tids) + 1
			tids[s.Site] = tid
			events = append(events, chromeMeta{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]string{"name": s.Site},
			})
		}
		ev := chromeEvent{
			Name: s.Name, Cat: s.Site, Ph: "X",
			Ts:  float64(s.Start) / float64(time.Microsecond),
			Dur: float64(s.Dur) / float64(time.Microsecond),
			Pid: 1, Tid: tid,
		}
		if s.N > 0 {
			ev.Args = map[string]int{"n": s.N, "cost": s.Cost, "chunks": s.Chunks}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents []any  `json:"traceEvents"`
		Unit        string `json:"displayTimeUnit"`
	}{TraceEvents: events, Unit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
