package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSiteRegistryAndSnapshot(t *testing.T) {
	o := NewObserver()
	c := o.Site("pram")
	if c == nil {
		t.Fatal("Site returned nil on a live observer")
	}
	if o.Site("pram") != c {
		t.Fatal("Site is not cached per name")
	}
	c.Supersteps.Add(3)
	c.SharedReads.Add(10)
	c.ConflictsPriority.Add(2)
	snap := o.Snapshot()
	got := snap["pram"]
	if got.Supersteps != 3 || got.SharedReads != 10 || got.ConflictsPriority != 2 {
		t.Fatalf("snapshot = %+v, want supersteps=3 reads=10 priority=2", got)
	}

	var nilObs *Observer
	if nilObs.Site("x") != nil || nilObs.Tracer() != nil {
		t.Fatal("nil observer must hand out nil handles")
	}
}

func TestCountersConcurrent(t *testing.T) {
	o := NewObserver()
	c := o.Site("pram")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.SharedReads.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.SharedReads.Load(); got != 8000 {
		t.Fatalf("SharedReads = %d, want 8000", got)
	}
}

func TestWriteJSONAndTable(t *testing.T) {
	o := NewObserver()
	o.Site("pram").Supersteps.Add(5)
	o.Site("hypercube").LinkMessages.Add(7)
	o.Site("hypercube").LinkBytes.Add(7 * WordBytes)

	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sites map[string]CounterSnapshot `json:"sites"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
	}
	if doc.Sites["pram"].Supersteps != 5 || doc.Sites["hypercube"].LinkMessages != 7 {
		t.Fatalf("JSON round-trip lost counters: %+v", doc.Sites)
	}

	buf.Reset()
	if err := o.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"site", "supersteps", "link-msgs", "pram", "hypercube"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSpansAndCap(t *testing.T) {
	o := NewObserver()
	tr := o.EnableTracing(2)
	if o.EnableTracing(5) != tr {
		t.Fatal("EnableTracing is not idempotent")
	}
	for i := 0; i < 3; i++ {
		t0 := tr.Begin()
		tr.End("pram", "step", t0, 128, 1, 4)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want cap of 2", len(spans))
	}
	if tr.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", tr.Dropped())
	}
	s := spans[0]
	if s.Site != "pram" || s.Name != "step" || s.N != 128 || s.Chunks != 4 {
		t.Fatalf("span = %+v", s)
	}
	if s.Dur < 0 || s.Start < 0 {
		t.Fatalf("negative span timing: %+v", s)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	o := NewObserver()
	tr := o.EnableTracing(0)
	t0 := tr.Begin()
	time.Sleep(time.Microsecond)
	tr.End("pram", "step", t0, 64, 2, 1)
	t0 = tr.Begin()
	tr.End("hypercube", "exchange", t0, 32, 1, 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is invalid JSON: %v", err)
	}
	// 2 thread_name metadata events + 2 complete events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	var metas, completes int
	tids := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			completes++
			tids[ev["cat"].(string)] = ev["tid"].(float64)
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if metas != 2 || completes != 2 {
		t.Fatalf("metas=%d completes=%d, want 2/2", metas, completes)
	}
	if tids["pram"] == tids["hypercube"] {
		t.Fatal("sites share a tid lane")
	}
}

func TestGlobalObserverAndExpvar(t *testing.T) {
	if Global() != nil {
		t.Fatal("global observer must start nil")
	}
	o := NewObserver()
	SetGlobal(o)
	defer SetGlobal(nil)
	if Global() != o {
		t.Fatal("SetGlobal did not install")
	}
	if name := PublishExpvar(); name != "monge_obs" {
		t.Fatalf("PublishExpvar = %q", name)
	}
	PublishExpvar() // idempotent
	SetGlobal(nil)
	if Global() != nil {
		t.Fatal("SetGlobal(nil) did not detach")
	}
}
