package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the bucket count of a Hist: bucket i counts
// observations whose microsecond value v satisfies 2^(i-1) <= v < 2^i
// (bucket 0 holds v == 0), so the histogram spans sub-microsecond waits
// up to ~2.3 minutes before clamping into the last bucket.
const HistBuckets = 28

// Hist is a fixed power-of-two latency histogram with atomic buckets —
// the queue-wait / service-latency companion of the Counters block. Like
// the counters it is lock-free, allocation-free, and safe for concurrent
// Observe from any number of goroutines; quantiles are approximate (the
// upper edge of the bucket the quantile falls in), which is exactly
// enough resolution for load-discipline gates (p99 within 2x).
type Hist struct {
	count   atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 for 0, k for [2^(k-1), 2^k)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Snapshot returns the bucket counts (index i = observations in
// [2^(i-1), 2^i) microseconds; index 0 = sub-microsecond), trimmed of
// trailing empty buckets so the JSON export stays short. Returns nil
// for an empty histogram.
func (h *Hist) Snapshot() []int64 {
	last := -1
	var out [HistBuckets]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
		if out[i] != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	snap := make([]int64, last+1)
	copy(snap, out[:last+1])
	return snap
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of the
// recorded durations: the upper edge of the bucket the quantile falls
// in. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			// Upper edge of bucket i: 2^i - 1 microseconds (bucket 0 is
			// the sub-microsecond bucket, reported as 1us).
			return time.Duration(int64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<uint(HistBuckets)) * time.Microsecond
}
