package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHistBuckets pins the power-of-two bucket mapping at its edges.
func TestHistBuckets(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // clamped, not a panic
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},
		{time.Hour, HistBuckets - 1}, // clamped into the last bucket
	} {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestHistQuantile pins the quantile contract: an upper bound within
// one bucket (2x) of the true value, monotone in q, zero when empty.
func TestHistQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 90 observations at ~100us, 10 at ~10ms.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count %d, want 100", got)
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Fatalf("p50 = %v, want upper bucket edge of ~100us (within 2x)", p50)
	}
	if p95 < 10*time.Millisecond || p95 > 20*time.Millisecond {
		t.Fatalf("p95 = %v, want upper bucket edge of ~10ms (within 2x)", p95)
	}
	if p99 < p95 || p95 < p50 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// Out-of-range q is clamped, not a panic.
	if h.Quantile(-1) <= 0 || h.Quantile(2) <= 0 {
		t.Fatal("clamped quantiles must still return bucket edges")
	}
}

// TestHistSnapshotTrimmed pins the JSON export shape: trailing empties
// trimmed, nil for an empty histogram.
func TestHistSnapshotTrimmed(t *testing.T) {
	var h Hist
	if h.Snapshot() != nil {
		t.Fatal("empty histogram snapshot != nil")
	}
	h.Observe(3 * time.Microsecond) // bucket 2
	snap := h.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d, want 3 (trimmed after last non-empty bucket)", len(snap))
	}
	if snap[2] != 1 {
		t.Fatalf("bucket 2 = %d, want 1", snap[2])
	}
}

// TestHistConcurrent exercises concurrent Observe under -race and pins
// that no observation is lost.
func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count %d, want 8000", got)
	}
	var sum int64
	for _, b := range h.Snapshot() {
		sum += b
	}
	if sum != 8000 {
		t.Fatalf("bucket sum %d, want 8000", sum)
	}
}
