// Package obs is the observability layer of the simulated machines: a
// zero-dependency (stdlib-only) set of per-site metric counters and a
// span-based superstep tracer, threaded through the execution runtime
// (internal/exec), both machine families (internal/pram and
// internal/hypercube, including the cube-connected-cycles and
// shuffle-exchange kinds), and the hcmonge driver layer.
//
// # Sites and counters
//
// A site is one instrumented component — a machine model ("pram",
// "hypercube", "cube-connected-cycles", "shuffle-exchange") or a driver
// layer ("hcmonge") — and owns one Counters block of atomic counters:
// charged supersteps/time/work, shared-memory reads and writes, write
// conflicts by resolution mode, link messages and bytes, pool dispatch
// chunks, and the fault recoveries charged at that site. The counters
// are cumulative across every machine of the site that observed the same
// Observer (the recursive children of ParallelDo/Subcubes inherit their
// parent's handles), so one Observer sees a whole algorithm run.
//
// # Cost contract
//
// Everything here is designed around "free when off": a machine holds a
// nil *Counters / nil *Tracer when no observer is installed, and every
// instrumentation point is a single nil check on that cached field — no
// global load, no interface call, no allocation. When counting is on,
// each point is one atomic add; when tracing is on, each charged
// superstep additionally records one fixed-size span under a mutex at
// the step barrier (never inside a parallel loop body).
// BenchmarkObsOverhead in the repository root guards the disabled path
// against regressions.
//
// # Process-wide observer
//
// SetGlobal installs the Observer that newly created machines attach by
// default, mirroring exec.SetGlobalSink and faults.SetGlobal; this is
// how whole-process harnesses (mongebench -metrics / -trace-out)
// observe the machines that algorithms size and create internally.
// Tests should prefer per-machine SetObserver.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counters is the per-site counter block. All fields are atomic;
// increment them directly (c.SharedReads.Add(1)) after a nil check on
// the *Counters handle. Fields that do not apply to a site stay zero:
// the network machines never touch the shared-memory fields, the PRAM
// never touches the link fields.
type Counters struct {
	// Supersteps counts charged superstep barriers (PRAM Step/StepCost,
	// network Local and Exchange/CondSwap steps).
	Supersteps atomic.Int64
	// ChargedTime and ChargedWork accumulate the simulated cost model's
	// time and work charges, including fault-recovery inflation — the
	// quantities the complexity tables measure.
	ChargedTime atomic.Int64
	ChargedWork atomic.Int64

	// SharedReads counts committed-state reads through pram.Array.Read;
	// SharedWrites counts buffered writes flushed at step barriers.
	SharedReads  atomic.Int64
	SharedWrites atomic.Int64

	// Write conflicts by resolution mode: SamePid is a later write by the
	// same processor overwriting its own earlier one (legal in both
	// modes, resolved by program order), Priority is a CRCW lowest-pid
	// resolution between distinct processors, CREW is a detected CREW
	// violation (thrown as merr.ErrWriteConflict after counting).
	ConflictsSamePid  atomic.Int64
	ConflictsPriority atomic.Int64
	ConflictsCREW     atomic.Int64

	// LinkMessages counts values carried across network edges, including
	// fault retransmissions; LinkBytes charges WordBytes per message.
	LinkMessages atomic.Int64
	LinkBytes    atomic.Int64

	// PoolChunks counts worker-pool chunks the site's loops were
	// dispatched as (1 per inline loop); PoolLoops counts the loops and
	// PoolInline the subset that ran inline on the calling goroutine
	// (below the serial cutoff or a single chunk). The "exec.pool" site
	// aggregates these across all machines.
	PoolChunks atomic.Int64
	PoolLoops  atomic.Int64
	PoolInline atomic.Int64

	// Fault recoveries charged at this site (subset of the injector's
	// process-wide totals): chunk stalls re-dispatched, link messages
	// retransmitted after drops/garbles, supersteps re-run on timeout.
	FaultStalls   atomic.Int64
	FaultDrops    atomic.Int64
	FaultGarbles  atomic.Int64
	FaultTimeouts atomic.Int64

	// Searches counts top-level algorithm invocations (the hcmonge driver
	// entry points).
	Searches atomic.Int64

	// Arena recycling efficacy: ArenaHits counts scratch-arena checkouts
	// served from a free-list, ArenaMisses the checkouts that fell through
	// to the allocator, and BytesRecycled the backing bytes the hits
	// reissued instead of allocating. A healthy steady state shows misses
	// plateauing (warm-up only) while hits and bytes keep growing.
	ArenaHits     atomic.Int64
	ArenaMisses   atomic.Int64
	BytesRecycled atomic.Int64

	// Query-serving counters (the "serve" site, internal/serve driver
	// pool). QueriesServed counts completed pool queries; QueueDepthPeak
	// is a high-water gauge of the submit queue (raise with StoreMax);
	// ShardImbalance is the spread between the busiest and idlest
	// worker's served-query counts, recorded when the pool closes.
	// CacheHits/CacheMisses count tile-cache probes of the memoized
	// matrix views the pool's workers evaluate queries through.
	QueriesServed  atomic.Int64
	QueueDepthPeak atomic.Int64
	ShardImbalance atomic.Int64
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64

	// QueueDepth is a point-in-time gauge of the submit queue (stored,
	// not accumulated, at every enqueue and dequeue), complementing the
	// QueueDepthPeak high-water mark in the expvar snapshot.
	QueueDepth atomic.Int64

	// Load-discipline counters (internal/admit front over the serve
	// pool). Admitted counts queries that passed every admission check;
	// Rejected counts hard rejections (inflight cap, tenant quota, full
	// queue); Shed the subset of rejections that dropped low-priority
	// work under load before the hard cap; Hedged issued second
	// attempts; Retried re-submissions (policy retries and recovered
	// injected ticket drops); DeadlineExpired queries dropped, at
	// admission or before evaluation, because their context had already
	// expired.
	Admitted        atomic.Int64
	Rejected        atomic.Int64
	Shed            atomic.Int64
	Hedged          atomic.Int64
	Retried         atomic.Int64
	DeadlineExpired atomic.Int64

	// QueueWait is the enqueue-to-dequeue latency histogram of the
	// serve pool's submit queue, recorded only while an observer is
	// installed (the wall-clock reads stay off the default path).
	QueueWait Hist
}

// StoreMax raises the counter to v if v exceeds its current value — the
// idiom for high-water gauges (queue depth peaks) kept in an otherwise
// monotonic counter block.
func StoreMax(c *atomic.Int64, v int64) {
	for {
		cur := c.Load()
		if v <= cur || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WordBytes is the simulated size of one exchanged value: every machine
// word in the model is charged as a 64-bit quantity.
const WordBytes = 8

// CounterSnapshot is a plain-value copy of a Counters block, the JSON
// export schema of the metrics layer.
type CounterSnapshot struct {
	Supersteps        int64 `json:"supersteps"`
	ChargedTime       int64 `json:"charged_time"`
	ChargedWork       int64 `json:"charged_work"`
	SharedReads       int64 `json:"shared_reads,omitempty"`
	SharedWrites      int64 `json:"shared_writes,omitempty"`
	ConflictsSamePid  int64 `json:"conflicts_same_pid,omitempty"`
	ConflictsPriority int64 `json:"conflicts_priority,omitempty"`
	ConflictsCREW     int64 `json:"conflicts_crew,omitempty"`
	LinkMessages      int64 `json:"link_messages,omitempty"`
	LinkBytes         int64 `json:"link_bytes,omitempty"`
	PoolChunks        int64 `json:"pool_chunks,omitempty"`
	PoolLoops         int64 `json:"pool_loops,omitempty"`
	PoolInline        int64 `json:"pool_inline,omitempty"`
	FaultStalls       int64 `json:"fault_stalls,omitempty"`
	FaultDrops        int64 `json:"fault_drops,omitempty"`
	FaultGarbles      int64 `json:"fault_garbles,omitempty"`
	FaultTimeouts     int64 `json:"fault_timeouts,omitempty"`
	Searches          int64 `json:"searches,omitempty"`
	ArenaHits         int64 `json:"arena_hits,omitempty"`
	ArenaMisses       int64 `json:"arena_misses,omitempty"`
	BytesRecycled     int64 `json:"bytes_recycled,omitempty"`
	QueriesServed     int64 `json:"queries_served,omitempty"`
	QueueDepthPeak    int64 `json:"queue_depth_peak,omitempty"`
	ShardImbalance    int64 `json:"shard_imbalance,omitempty"`
	CacheHits         int64 `json:"cache_hits,omitempty"`
	CacheMisses       int64 `json:"cache_misses,omitempty"`

	QueueDepth      int64 `json:"queue_depth,omitempty"`
	Admitted        int64 `json:"admitted,omitempty"`
	Rejected        int64 `json:"rejected,omitempty"`
	Shed            int64 `json:"shed,omitempty"`
	Hedged          int64 `json:"hedged,omitempty"`
	Retried         int64 `json:"retried,omitempty"`
	DeadlineExpired int64 `json:"deadline_expired,omitempty"`

	// QueueWaitUS are the queue-wait histogram buckets (bucket i counts
	// waits in [2^(i-1), 2^i) microseconds; bucket 0 is sub-microsecond),
	// with the approximate p50/p95/p99 alongside for dashboards that do
	// not want to fold buckets themselves.
	QueueWaitUS  []int64 `json:"queue_wait_us,omitempty"`
	QueueWaitP50 int64   `json:"queue_wait_p50_us,omitempty"`
	QueueWaitP95 int64   `json:"queue_wait_p95_us,omitempty"`
	QueueWaitP99 int64   `json:"queue_wait_p99_us,omitempty"`
}

// Snapshot returns a point-in-time copy of the counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Supersteps:        c.Supersteps.Load(),
		ChargedTime:       c.ChargedTime.Load(),
		ChargedWork:       c.ChargedWork.Load(),
		SharedReads:       c.SharedReads.Load(),
		SharedWrites:      c.SharedWrites.Load(),
		ConflictsSamePid:  c.ConflictsSamePid.Load(),
		ConflictsPriority: c.ConflictsPriority.Load(),
		ConflictsCREW:     c.ConflictsCREW.Load(),
		LinkMessages:      c.LinkMessages.Load(),
		LinkBytes:         c.LinkBytes.Load(),
		PoolChunks:        c.PoolChunks.Load(),
		PoolLoops:         c.PoolLoops.Load(),
		PoolInline:        c.PoolInline.Load(),
		FaultStalls:       c.FaultStalls.Load(),
		FaultDrops:        c.FaultDrops.Load(),
		FaultGarbles:      c.FaultGarbles.Load(),
		FaultTimeouts:     c.FaultTimeouts.Load(),
		Searches:          c.Searches.Load(),
		ArenaHits:         c.ArenaHits.Load(),
		ArenaMisses:       c.ArenaMisses.Load(),
		BytesRecycled:     c.BytesRecycled.Load(),
		QueriesServed:     c.QueriesServed.Load(),
		QueueDepthPeak:    c.QueueDepthPeak.Load(),
		ShardImbalance:    c.ShardImbalance.Load(),
		CacheHits:         c.CacheHits.Load(),
		CacheMisses:       c.CacheMisses.Load(),
		QueueDepth:        c.QueueDepth.Load(),
		Admitted:          c.Admitted.Load(),
		Rejected:          c.Rejected.Load(),
		Shed:              c.Shed.Load(),
		Hedged:            c.Hedged.Load(),
		Retried:           c.Retried.Load(),
		DeadlineExpired:   c.DeadlineExpired.Load(),
		QueueWaitUS:       c.QueueWait.Snapshot(),
		QueueWaitP50:      c.QueueWait.Quantile(0.50).Microseconds(),
		QueueWaitP95:      c.QueueWait.Quantile(0.95).Microseconds(),
		QueueWaitP99:      c.QueueWait.Quantile(0.99).Microseconds(),
	}
}

// Observer owns the per-site counter registry and the optional tracer of
// one instrumented run. The zero value is not usable; create observers
// with NewObserver. Safe for concurrent use.
type Observer struct {
	mu     sync.Mutex
	sites  map[string]*Counters
	tracer *Tracer

	poolOnce sync.Once
	pool     *Counters
}

// NewObserver returns an empty observer with tracing off.
func NewObserver() *Observer {
	return &Observer{sites: make(map[string]*Counters)}
}

// Site returns the counter block for the named site, creating it on
// first use. Returns nil on a nil observer, so machines can write
// `m.obs = o.Site(model)` unconditionally.
func (o *Observer) Site(name string) *Counters {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	c := o.sites[name]
	if c == nil {
		c = &Counters{}
		o.sites[name] = c
	}
	o.mu.Unlock()
	return c
}

// Pool returns the cached counter block of the "exec.pool" site — the
// worker-pool dispatch path is hot enough that the Site map lookup (a
// mutex acquisition) matters, so the handle is resolved once.
func (o *Observer) Pool() *Counters {
	if o == nil {
		return nil
	}
	o.poolOnce.Do(func() { o.pool = o.Site("exec.pool") })
	return o.pool
}

// EnableTracing attaches a span tracer holding at most cap spans
// (DefaultTraceCap when cap <= 0) and returns it. Idempotent: a second
// call returns the existing tracer.
func (o *Observer) EnableTracing(cap int) *Tracer {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.tracer == nil {
		o.tracer = newTracer(cap)
	}
	return o.tracer
}

// Tracer returns the attached tracer, or nil when tracing is off. Nil
// receivers return nil, matching Site.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	t := o.tracer
	o.mu.Unlock()
	return t
}

// Snapshot returns the per-site counter values keyed by site name.
func (o *Observer) Snapshot() map[string]CounterSnapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]CounterSnapshot, len(o.sites))
	for name, c := range o.sites {
		out[name] = c.Snapshot()
	}
	return out
}

// WriteJSON writes the per-site counters as an indented JSON document:
//
//	{"sites": {"pram": {"supersteps": ..., ...}, ...}}
func (o *Observer) WriteJSON(w io.Writer) error {
	doc := struct {
		Sites map[string]CounterSnapshot `json:"sites"`
	}{Sites: o.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteTable writes the per-site counters as an aligned human-readable
// table (the mongebench -metrics report), sites sorted by name. The
// column set is fixed so harnesses can parse it.
func (o *Observer) WriteTable(w io.Writer) error {
	snap := o.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "%-22s %10s %12s %14s %12s %12s %10s %12s %12s %10s %10s %8s %8s %10s %10s %12s %8s %8s %6s %10s %10s\n",
		"site", "supersteps", "time", "work", "reads", "writes", "conflicts", "link-msgs", "link-bytes", "loops", "chunks", "faults", "searches", "arena-hit", "arena-miss", "recycled-B",
		"queries", "queue-pk", "imbal", "cache-hit", "cache-miss"); err != nil {
		return err
	}
	for _, name := range names {
		s := snap[name]
		conflicts := s.ConflictsSamePid + s.ConflictsPriority + s.ConflictsCREW
		faultsTotal := s.FaultStalls + s.FaultDrops + s.FaultGarbles + s.FaultTimeouts
		if _, err := fmt.Fprintf(w, "%-22s %10d %12d %14d %12d %12d %10d %12d %12d %10d %10d %8d %8d %10d %10d %12d %8d %8d %6d %10d %10d\n",
			name, s.Supersteps, s.ChargedTime, s.ChargedWork, s.SharedReads, s.SharedWrites,
			conflicts, s.LinkMessages, s.LinkBytes, s.PoolLoops, s.PoolChunks, faultsTotal, s.Searches,
			s.ArenaHits, s.ArenaMisses, s.BytesRecycled,
			s.QueriesServed, s.QueueDepthPeak, s.ShardImbalance, s.CacheHits, s.CacheMisses); err != nil {
			return err
		}
	}
	return nil
}

// global is the process-wide observer newly created machines attach by
// default; nil (the default) keeps instrumentation fully off.
var global atomic.Pointer[Observer]

// SetGlobal installs the process-wide observer (nil detaches). Existing
// machines keep the handles they already captured; only machines created
// afterwards attach o.
func SetGlobal(o *Observer) {
	if o == nil {
		global.Store(nil)
		return
	}
	global.Store(o)
}

// Global returns the process-wide observer, or nil when observability is
// off. The nil fast path is one atomic pointer load.
func Global() *Observer { return global.Load() }

var expvarOnce sync.Once

// PublishExpvar publishes the process-wide observer's counter snapshot
// as the expvar variable "monge_obs" (visible on /debug/vars when an
// HTTP server runs). Idempotent; the published function re-reads
// Global() on every access, so it tracks observer swaps. Returns the
// variable name.
func PublishExpvar() string {
	expvarOnce.Do(func() {
		expvar.Publish("monge_obs", expvar.Func(func() any {
			o := Global()
			if o == nil {
				return map[string]CounterSnapshot{}
			}
			return o.Snapshot()
		}))
	})
	return "monge_obs"
}
