package smawk

import (
	"math/rand"
	"testing"

	"monge/internal/marray"
)

func TestRowMinimaDCMatchesSMAWK(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 100; trial++ {
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		a := marray.RandomMonge(rng, m, n)
		got := RowMinimaDC(a)
		want := RowMinima(a)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): DC %v vs SMAWK %v", trial, m, n, got, want)
		}
	}
}

func TestRowMinimaDCTies(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 150; trial++ {
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		a := intMonge(rng, m, n)
		if !marray.IsMonge(a) {
			continue
		}
		if got, want := RowMinimaDC(a), RowMinimaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
	}
}

func TestRowMaximaDCMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 100; trial++ {
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		a := marray.RandomInverseMonge(rng, m, n)
		if got, want := RowMaximaDC(a), RowMaximaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
	}
}

func TestRowMinimaDCEmpty(t *testing.T) {
	if got := RowMinimaDC(marray.NewDense(0, 0)); len(got) != 0 {
		t.Fatal("empty input")
	}
	if got := RowMaximaDC(marray.NewDense(0, 0)); len(got) != 0 {
		t.Fatal("empty input")
	}
}

// BenchmarkSeqBaselines contrasts SMAWK's Theta(m+n) with the divide-and-
// conquer O((m+n) lg m) and the brute force Theta(mn), the three
// sequential reference points of Table 1.1.
func BenchmarkSeqBaselines(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	n := 2048
	a := marray.RandomMonge(rng, n, n)
	b.Run("smawk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RowMinima(a)
		}
	})
	b.Run("divide-conquer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RowMinimaDC(a)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RowMinimaBrute(a)
		}
	})
}
