package smawk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
)

func TestStaircaseRowMinimaSmall(t *testing.T) {
	inf := marray.Inf
	a := marray.FromRows([][]float64{
		{4, 2, 7, 9},
		{5, 1, 6, inf},
		{4, 0, inf, inf},
		{inf, inf, inf, inf},
	})
	if !marray.IsStaircaseMonge(a) {
		t.Fatal("test array should be staircase-Monge")
	}
	got := StaircaseRowMinima(a)
	want := []int{1, 1, 1, -1}
	if !eqInts(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestStaircaseRowMinimaMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 400; trial++ {
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		a := marray.RandomStaircaseMonge(rng, m, n)
		got := StaircaseRowMinima(a)
		want := StaircaseRowMinimaBrute(a)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestStaircaseRowMinimaLargerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][2]int{{200, 10}, {10, 200}, {128, 128}, {333, 77}, {1, 50}, {50, 1}}
	for _, sh := range shapes {
		for trial := 0; trial < 5; trial++ {
			a := marray.RandomStaircaseMonge(rng, sh[0], sh[1])
			got := StaircaseRowMinima(a)
			want := StaircaseRowMinimaBrute(a)
			if !eqInts(got, want) {
				t.Fatalf("shape %v trial %d: mismatch", sh, trial)
			}
		}
	}
}

func TestStaircaseRowMinimaPlainMonge(t *testing.T) {
	// A plain Monge array is a staircase-Monge array with empty blocked
	// region; the staircase algorithm must agree with SMAWK.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomMonge(rng, m, n)
		if got, want := StaircaseRowMinima(a), RowMinima(a); !eqInts(got, want) {
			t.Fatalf("trial %d: staircase %v, smawk %v", trial, got, want)
		}
	}
}

func TestStaircaseRowMinimaTies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		d := intMonge(rng, m, n)
		if !marray.IsMonge(d) {
			continue
		}
		bounds := marray.RandomStaircaseBoundary(rng, m, n)
		for i := 0; i < m; i++ {
			for j := bounds[i]; j < n; j++ {
				d.Set(i, j, marray.Inf)
			}
		}
		got := StaircaseRowMinima(d)
		want := StaircaseRowMinimaBrute(d)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestStaircaseRowMinimaExtremeBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// All blocked.
	allBlocked := marray.StairFunc{
		M: 5, N: 5,
		F:     func(i, j int) float64 { return 0 },
		Bound: func(i int) int { return 0 },
	}
	got := StaircaseRowMinima(allBlocked)
	for _, g := range got {
		if g != -1 {
			t.Fatalf("all-blocked rows must give -1, got %v", got)
		}
	}
	// Single finite column, boundary drops immediately.
	steep := marray.StairFunc{
		M: 6, N: 6,
		F:     func(i, j int) float64 { return float64(j - i) },
		Bound: func(i int) int { return maxI(0, 1-i) },
	}
	got = StaircaseRowMinima(steep)
	want := StaircaseRowMinimaBrute(steep)
	if !eqInts(got, want) {
		t.Fatalf("steep: got %v want %v", got, want)
	}
	_ = rng
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestStaircaseRowMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		a := marray.Negate(marray.RandomStaircaseMonge(rng, m, n))
		got := StaircaseRowMaxima(a)
		// brute: leftmost finite maximum, blocked entries are -Inf
		want := make([]int, m)
		for i := 0; i < m; i++ {
			best, bv := -1, math.Inf(-1)
			for j := 0; j < n; j++ {
				v := a.At(i, j)
				if math.IsInf(v, -1) {
					break
				}
				if v > bv {
					best, bv = j, v
				}
			}
			want[i] = best
		}
		if !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestQuickStaircaseAgainstBrute(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(50), 1+rng.Intn(50)
		a := marray.RandomStaircaseMonge(rng, m, n)
		return eqInts(StaircaseRowMinima(a), StaircaseRowMinimaBrute(a))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntSqrt(t *testing.T) {
	for x := 0; x < 2000; x++ {
		r := intSqrt(x)
		if r*r > x || (r+1)*(r+1) <= x {
			t.Fatalf("intSqrt(%d) = %d", x, r)
		}
	}
}
