package smawk

// The branchless dense scan core. Every dense scan in the repository —
// the native backend's narrow row scans and column-segment partials,
// the mindex boundary cuts, and the smawk facade's own narrow fast
// paths — routes through the kernels here, so a single optimized loop
// serves both execution backends.
//
// # Why bit-tricked selects
//
// A scalar argmin loop ("if v < best { best, arg = v, j }") carries a
// data-dependent branch per element (floating compares do not lower to
// conditional moves) and a loop-carried dependency on best. The
// kernels instead map each float64 to a uint64 whose unsigned order is
// a total order consistent with < on the values the Monge contracts
// allow (see minKey) — the key maps turn their boolean special-value
// tests into all-ones/all-zeros masks via boolMask (SETcc + negate) —
// and fold candidates with integer selects: a single unsigned compare
// whose two conditional assignments the compiler's branch elimination
// lowers to CMOVcc/CSEL, so tie density and data order cost no
// mispredictions. (The only conditional jumps left in the fold loops
// are loop control and slice bounds checks, both index-dependent and
// perfectly predicted.) Four independent lanes (indices j, j+1, j+2,
// j+3) break the dependency chain; the lanes merge at the end under
// (key, then smaller index) order, which is exactly the leftmost rule
// because a total order makes leftmost-min decomposable across any
// index partition. The three scan loops are spelled out per key map
// rather than parameterized: a key callback would put an uninlinable
// indirect call on every element, which is the entire cost the kernels
// exist to remove.
//
// # Special values, by construction
//
//   - ties (exact or 1e-9-near): keys are injective on distinct values,
//     so near-ties never merge; exact ties resolve leftmost via the
//     strict key compare in-lane and the index tie-break across lanes.
//   - -0.0: canonicalized by adding +0.0 before keying (-0.0 + 0.0 is
//     +0.0 in IEEE round-to-nearest; every other value is unchanged),
//     so -0.0 and +0.0 compare equal and the leftmost one wins, exactly
//     as a < scan treats them.
//   - ±Inf: ordinary ordered values under the key map; ArgMinFinite /
//     ArgMaxFinite additionally demote +Inf (the staircase blocked
//     marker) to "never wins", with -1 for fully blocked ranges.
//   - NaN: keyed above +Inf for minima (below everything for maxima),
//     so a NaN can never displace a real optimum and an all-NaN input
//     returns index 0 — one fixed rule, not the position-dependent
//     poisoning of a naive < scan. Monge inputs never contain NaN; the
//     rule exists so a corrupt entry degrades deterministically.

import (
	"math"
	"math/bits"
)

// DenseScanCols bounds the width at which a straight branchless row
// scan beats the SMAWK recursion on dense input: below it the
// O(rows*n) scan is all sequential loads the hardware prefetches (and
// four independent compare lanes), while SMAWK's O(rows+n) bound hides
// recursion and index-indirection constants. 32 columns of float64 is
// four cache lines per row.
const DenseScanCols = 32

const (
	signBit = uint64(1) << 63
	absMask = ^signBit // abs-value bits; > infBits means NaN
	infBits = uint64(0x7ff0000000000000)
)

// boolMask converts a comparison result into an all-ones (true) or
// all-zeros (false) select mask without a data-dependent branch: the
// compiler lowers the assignment to a flag materialization (SETcc /
// CSET) and the negation spreads it.
func boolMask(c bool) uint64 {
	var b uint64
	if c {
		b = 1
	}
	return -b
}

// minKey maps v to a uint64 whose unsigned order is the kernels' total
// order for minima: -Inf < finite < +Inf < NaN, with -0.0 == +0.0. The
// standard sign-flip trick (negative floats flip all bits, positive
// floats flip the sign bit) after canonicalizing -0.0 by adding +0.0,
// with every NaN forced to the top so it never wins a minimum.
func minKey(v float64) uint64 {
	u := math.Float64bits(v + 0)
	k := u ^ (uint64(int64(u)>>63) | signBit)
	return k | boolMask(u&absMask > infBits)
}

// maxKey is the mirror map for maxima: larger values get smaller keys
// (argmax = leftmost smallest maxKey), and NaN is again forced to the
// top so it never wins.
func maxKey(v float64) uint64 {
	u := math.Float64bits(v + 0)
	k := ^(u ^ (uint64(int64(u)>>63) | signBit))
	return k | boolMask(u&absMask > infBits)
}

// skipInfKey is maxKey with +Inf also mapped to the largest key, so
// blocked staircase entries can never win a maximum and an all-blocked
// range is detectable as key == ^0 (no real value maps there: the
// smallest real value, -Inf, keys to ^0 - 1 under the flip).
func skipInfKey(v float64) uint64 {
	u := math.Float64bits(v + 0)
	k := ^(u ^ (uint64(int64(u)>>63) | signBit))
	return k | boolMask(u == infBits) | boolMask(u&absMask > infBits)
}

// ArgMin returns the leftmost index of the minimum of row under the
// kernel total order: on inputs without NaN this is exactly the
// leftmost strict minimum a sequential < scan (RowMinimaBrute) finds.
// row must be non-empty.
func ArgMin(row []float64) int {
	n := len(row)
	if n < 8 {
		bk, bj := minKey(row[0]), uint64(0)
		for j := 1; j < n; j++ {
			c := minKey(row[j])
			if c < bk {
				bk, bj = c, uint64(j)
			}
		}
		return int(bj)
	}
	k0, k1, k2, k3 := minKey(row[0]), minKey(row[1]), minKey(row[2]), minKey(row[3])
	var j0, j1, j2, j3 uint64 = 0, 1, 2, 3
	j := 4
	for ; j+3 < n; j += 4 {
		c0, c1, c2, c3 := minKey(row[j]), minKey(row[j+1]), minKey(row[j+2]), minKey(row[j+3])
		if c0 < k0 {
			k0, j0 = c0, uint64(j)
		}
		if c1 < k1 {
			k1, j1 = c1, uint64(j+1)
		}
		if c2 < k2 {
			k2, j2 = c2, uint64(j+2)
		}
		if c3 < k3 {
			k3, j3 = c3, uint64(j+3)
		}
	}
	k0, j0 = mergeLanes(k0, j0, k1, j1, k2, j2, k3, j3)
	for ; j < n; j++ {
		c := minKey(row[j])
		if c < k0 {
			k0, j0 = c, uint64(j)
		}
	}
	return int(j0)
}

// ArgMax returns the leftmost index of the maximum of row under the
// kernel total order; NaN never wins. row must be non-empty.
func ArgMax(row []float64) int {
	n := len(row)
	if n < 8 {
		bk, bj := maxKey(row[0]), uint64(0)
		for j := 1; j < n; j++ {
			c := maxKey(row[j])
			if c < bk {
				bk, bj = c, uint64(j)
			}
		}
		return int(bj)
	}
	k0, k1, k2, k3 := maxKey(row[0]), maxKey(row[1]), maxKey(row[2]), maxKey(row[3])
	var j0, j1, j2, j3 uint64 = 0, 1, 2, 3
	j := 4
	for ; j+3 < n; j += 4 {
		c0, c1, c2, c3 := maxKey(row[j]), maxKey(row[j+1]), maxKey(row[j+2]), maxKey(row[j+3])
		if c0 < k0 {
			k0, j0 = c0, uint64(j)
		}
		if c1 < k1 {
			k1, j1 = c1, uint64(j+1)
		}
		if c2 < k2 {
			k2, j2 = c2, uint64(j+2)
		}
		if c3 < k3 {
			k3, j3 = c3, uint64(j+3)
		}
	}
	k0, j0 = mergeLanes(k0, j0, k1, j1, k2, j2, k3, j3)
	for ; j < n; j++ {
		c := maxKey(row[j])
		if c < k0 {
			k0, j0 = c, uint64(j)
		}
	}
	return int(j0)
}

// argMaxSkipInf is the scan under skipInfKey; it returns the winning
// (key, index) so callers can detect the all-blocked sentinel.
func argMaxSkipInf(row []float64) (uint64, uint64) {
	n := len(row)
	if n < 8 {
		bk, bj := skipInfKey(row[0]), uint64(0)
		for j := 1; j < n; j++ {
			c := skipInfKey(row[j])
			if c < bk {
				bk, bj = c, uint64(j)
			}
		}
		return bk, bj
	}
	k0, k1, k2, k3 := skipInfKey(row[0]), skipInfKey(row[1]), skipInfKey(row[2]), skipInfKey(row[3])
	var j0, j1, j2, j3 uint64 = 0, 1, 2, 3
	j := 4
	for ; j+3 < n; j += 4 {
		c0, c1, c2, c3 := skipInfKey(row[j]), skipInfKey(row[j+1]), skipInfKey(row[j+2]), skipInfKey(row[j+3])
		if c0 < k0 {
			k0, j0 = c0, uint64(j)
		}
		if c1 < k1 {
			k1, j1 = c1, uint64(j+1)
		}
		if c2 < k2 {
			k2, j2 = c2, uint64(j+2)
		}
		if c3 < k3 {
			k3, j3 = c3, uint64(j+3)
		}
	}
	k0, j0 = mergeLanes(k0, j0, k1, j1, k2, j2, k3, j3)
	for ; j < n; j++ {
		c := skipInfKey(row[j])
		if c < k0 {
			k0, j0 = c, uint64(j)
		}
	}
	return k0, j0
}

// mergeLanes folds the four lane minima into one under strict key
// order with the smaller index winning key ties — the leftmost rule
// across the lane partition.
func mergeLanes(k0, j0, k1, j1, k2, j2, k3, j3 uint64) (uint64, uint64) {
	if k1 < k0 || (k1 == k0 && j1 < j0) {
		k0, j0 = k1, j1
	}
	if k3 < k2 || (k3 == k2 && j3 < j2) {
		k2, j2 = k3, j3
	}
	if k2 < k0 || (k2 == k0 && j2 < j0) {
		k0, j0 = k2, j2
	}
	return k0, j0
}

// ArgMinFinite returns the leftmost index of the minimum among entries
// that are not +Inf, or -1 when every entry is blocked — the staircase
// row-minima contract (+Inf is the blocked marker and never wins).
func ArgMinFinite(row []float64) int {
	j := ArgMin(row)
	if math.IsInf(row[j], 1) {
		return -1
	}
	return j
}

// ArgMaxFinite returns the leftmost index of the maximum among entries
// that are not +Inf, or -1 when every entry is +Inf or NaN — the
// submatrix-maximum contract (mindex maps blocked +Inf entries to -Inf
// so they never win; this kernel skips them outright).
func ArgMaxFinite(row []float64) int {
	k, j := argMaxSkipInf(row)
	if k == ^uint64(0) {
		return -1
	}
	return int(j)
}

// ScanRowMinimaInto fills out[lo:hi] with the leftmost-minimum column
// of each row of rows(i) — the shared dense row-scan entry the native
// backend's block solvers and the smawk facade both use. rows must
// return a full row slice for every i in [lo, hi).
func ScanRowMinimaInto(rows func(i int) []float64, lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		out[i] = ArgMin(rows(i))
	}
}

// ScanStairRowMinimaInto is the staircase variant of ScanRowMinimaInto:
// blocked (+Inf) entries never win and fully blocked rows yield -1,
// matching StaircaseRowMinima.
func ScanStairRowMinimaInto(rows func(i int) []float64, lo, hi int, out []int) {
	for i := lo; i < hi; i++ {
		out[i] = ArgMinFinite(rows(i))
	}
}

// Rank64 returns the number of set bits of w at positions <= pos — the
// predecessor-rank primitive the mindex packed breakpoint bitmaps use
// (one popcount per query block).
func Rank64(w uint64, pos uint) int {
	return bits.OnesCount64(w & (^uint64(0) >> (63 - pos)))
}
