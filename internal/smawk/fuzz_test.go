package smawk_test

import (
	"math"
	"math/rand"
	"testing"

	"monge/internal/exec"
	"monge/internal/marray"
	"monge/internal/native"
	"monge/internal/smawk"
)

// The fuzz targets drive the searching algorithms with the seeded
// generators of internal/marray and check them index-for-index against
// the brute-force oracles. Exact index equality is the leftmost-tie
// check: the brute scans keep the first optimum of each row, so any
// tie-breaking drift in the recursive algorithms is a mismatch, not just
// a different-but-equal optimum. Each input is exercised twice, once with
// real-valued entries (ties essentially never) and once with small
// integer entries (ties constantly), so both the generic path and the
// tie-handling path stay covered. Every kernel additionally runs through
// the native execution backend (internal/native) on the same inputs —
// one shared corpus exercises the sequential algorithm, the brute
// oracle, and the native backend per target.
//
// This file is an external test package (smawk_test) so it can import
// internal/native, which itself depends on smawk; the corpora under
// testdata/fuzz are keyed by target name and replay unchanged.
//
// Run locally with
//
//	go test ./internal/smawk -run='^$' -fuzz=FuzzSMAWKMatchesBrute -fuzztime=30s
//	go test ./internal/smawk -run='^$' -fuzz=FuzzStaircaseRowMinima -fuzztime=30s
//	go test ./internal/smawk -run='^$' -fuzz=FuzzTubeMaximaMatchesBrute -fuzztime=30s
//
// The committed corpora under testdata/fuzz keep the interesting shapes
// (square, wide, tall, single row/column, tie/∞-heavy) replaying as
// plain tests.

// fuzzPool fans out the native kernels on a fixed width so the fuzz
// inputs execute the same dispatch logic regardless of host CPUs.
var fuzzPool = exec.NewPool(3)

// fuzzDim maps an arbitrary fuzzed int to a usable dimension in [1, 96].
func fuzzDim(x int) int {
	if x < 0 {
		x = -x
	}
	return x%96 + 1
}

func diffIdx(got, want []int) int {
	for i := range want {
		if got[i] != want[i] {
			return i
		}
	}
	return -1
}

func eq2D(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if diffIdx(a[i], b[i]) >= 0 || len(a[i]) != len(b[i]) {
			return false
		}
	}
	return true
}

func FuzzSMAWKMatchesBrute(f *testing.F) {
	f.Add(int64(1), 8, 8)
	f.Add(int64(2), 1, 33)
	f.Add(int64(3), 64, 5)
	f.Add(int64(4), 96, 96)
	f.Add(int64(5), 2, 1)
	// Adversarial tie seeds: spread-2 integer entries at the dimensions
	// where the reduce stack and interpolation scans change shape.
	f.Add(int64(6), 63, 64)
	f.Add(int64(7), 96, 2)
	// Huge-aspect-ratio seeds: a single long row and a single tall
	// column, where the reduce stack degenerates entirely.
	f.Add(int64(8), 1, 96)
	f.Add(int64(9), 96, 1)
	f.Fuzz(func(t *testing.T, seed int64, rawM, rawN int) {
		m, n := fuzzDim(rawM), fuzzDim(rawN)
		rng := rand.New(rand.NewSource(seed))
		for _, a := range []marray.Matrix{
			marray.RandomMonge(rng, m, n),
			marray.RandomMongeInt(rng, m, n, 3),
			marray.RandomMongeInt(rng, m, n, 2),  // tie-dense
			marray.RandomNearTieMonge(rng, m, n), // near-degenerate 1e-9 ties
		} {
			want := smawk.RowMinimaBrute(a)
			if i := diffIdx(smawk.RowMinima(a), want); i >= 0 {
				t.Fatalf("seed=%d %dx%d: RowMinima differs from brute at row %d", seed, m, n, i)
			}
			if i := diffIdx(native.RowMinima(nil, fuzzPool, a), want); i >= 0 {
				t.Fatalf("seed=%d %dx%d: native.RowMinima differs from brute at row %d", seed, m, n, i)
			}
			if i := diffIdx(smawk.MongeRowMaxima(a), smawk.RowMaximaBrute(a)); i >= 0 {
				t.Fatalf("seed=%d %dx%d: MongeRowMaxima differs from brute at row %d", seed, m, n, i)
			}
			inv := marray.Negate(a) // inverse-Monge: totally monotone for maxima
			if i := diffIdx(smawk.RowMaxima(inv), smawk.RowMaximaBrute(inv)); i >= 0 {
				t.Fatalf("seed=%d %dx%d: RowMaxima differs from brute at row %d", seed, m, n, i)
			}
			if i := diffIdx(smawk.InverseMongeRowMinima(inv), smawk.RowMinimaBrute(inv)); i >= 0 {
				t.Fatalf("seed=%d %dx%d: InverseMongeRowMinima differs from brute at row %d", seed, m, n, i)
			}
		}
	})
}

// fuzzTubeDim maps an arbitrary fuzzed int to a tube dimension in
// [1, 24] — the brute oracle is O(p*q*r) per orientation.
func fuzzTubeDim(x int) int {
	if x < 0 {
		x = -x
	}
	return x%24 + 1
}

func FuzzTubeMaximaMatchesBrute(f *testing.F) {
	f.Add(int64(1), 6, 6, 6)
	f.Add(int64(2), 1, 17, 3)
	f.Add(int64(3), 24, 1, 24)
	f.Add(int64(4), 5, 24, 1)
	f.Add(int64(5), 2, 2, 2)
	f.Fuzz(func(t *testing.T, seed int64, rawP, rawQ, rawR int) {
		p, q, r := fuzzTubeDim(rawP), fuzzTubeDim(rawQ), fuzzTubeDim(rawR)
		rng := rand.New(rand.NewSource(seed))
		// Exact argJ equality against the first-optimum brute scan is the
		// smallest-middle-coordinate tie check; the integer composites
		// make ties constant rather than accidental.
		check := func(what string, gotJ, wantJ [][]int, gotV, wantV [][]float64) {
			t.Helper()
			if !eq2D(gotJ, wantJ) {
				t.Fatalf("seed=%d %dx%dx%d %s: argJ mismatch (tie must pick smallest j)\n got %v\nwant %v",
					seed, p, q, r, what, gotJ, wantJ)
			}
			for i := range wantV {
				for k := range wantV[i] {
					if gotV[i][k] != wantV[i][k] {
						t.Fatalf("seed=%d %dx%dx%d %s: value mismatch at (%d,%d)", seed, p, q, r, what, i, k)
					}
				}
			}
		}
		for name, c := range map[string]marray.Composite{
			"maxima/real": marray.RandomComposite(rng, p, q, r),
			"maxima/int": marray.NewComposite(
				marray.RandomMongeInt(rng, p, q, 3),
				marray.RandomMongeInt(rng, q, r, 3)),
		} {
			gotJ, gotV := smawk.TubeMaxima(c)
			wantJ, wantV := smawk.TubeMaximaBrute(c)
			check(name, gotJ, wantJ, gotV, wantV)
			natJ, natV := native.TubeMaxima(nil, fuzzPool, c)
			check(name+"/native", natJ, wantJ, natV, wantV)
		}
		for name, c := range map[string]marray.Composite{
			"minima/real": marray.NewComposite(
				marray.RandomInverseMonge(rng, p, q),
				marray.RandomInverseMonge(rng, q, r)),
			"minima/int": marray.NewComposite(
				marray.Negate(marray.RandomMongeInt(rng, p, q, 3)),
				marray.Negate(marray.RandomMongeInt(rng, q, r, 3))),
		} {
			gotJ, gotV := smawk.TubeMinima(c)
			wantJ, wantV := smawk.TubeMinimaBrute(c)
			check(name, gotJ, wantJ, gotV, wantV)
		}
	})
}

func FuzzStaircaseRowMinima(f *testing.F) {
	f.Add(int64(1), 8, 8)
	f.Add(int64(2), 1, 50)
	f.Add(int64(3), 50, 1)
	f.Add(int64(4), 96, 96)
	f.Add(int64(5), 40, 9)
	// Adversarial ∞-heavy seeds: wide windows with mostly blocked rows.
	f.Add(int64(6), 64, 63)
	f.Add(int64(7), 96, 24)
	// Huge-aspect ∞-heavy seeds: one long mostly-blocked row, and a tall
	// single column where every row past the boundary answers -1.
	f.Add(int64(8), 1, 96)
	f.Add(int64(9), 96, 1)
	f.Fuzz(func(t *testing.T, seed int64, rawM, rawN int) {
		m, n := fuzzDim(rawM), fuzzDim(rawN)
		rng := rand.New(rand.NewSource(seed))
		heavy := marray.RandomInfHeavyStaircase(rng, m, n)
		for _, a := range []marray.Matrix{
			marray.RandomStaircaseMonge(rng, m, n),
			marray.RandomStaircaseMongeInt(rng, m, n, 3),
			heavy,
			marray.Materialize(heavy), // dense: exercises the native scan path
		} {
			want := smawk.StaircaseRowMinimaBrute(a) // leftmost; -1 on all-blocked rows
			got := smawk.StaircaseRowMinima(a)
			if i := diffIdx(got, want); i >= 0 {
				t.Fatalf("seed=%d %dx%d: StaircaseRowMinima = %d at row %d, brute says %d",
					seed, m, n, got[i], i, want[i])
			}
			nat := native.StaircaseRowMinima(nil, fuzzPool, a)
			if i := diffIdx(nat, want); i >= 0 {
				t.Fatalf("seed=%d %dx%d: native.StaircaseRowMinima = %d at row %d, brute says %d",
					seed, m, n, nat[i], i, want[i])
			}
		}
	})
}

// sanity for the generator itself: boundaries must be valid
// (nonincreasing) or the staircase solvers' preconditions would be
// violated silently.
func TestInfHeavyStaircaseIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := marray.RandomInfHeavyStaircase(rng, 20, 30)
	prev := math.MaxInt
	for i := 0; i < 20; i++ {
		b := a.Boundary(i)
		if b > prev {
			t.Fatalf("boundary increased at row %d: %d after %d", i, b, prev)
		}
		prev = b
	}
}
