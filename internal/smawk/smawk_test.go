package smawk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
)

// intMonge returns a random integer-valued Monge array; integer entries
// force ties, exercising the leftmost tie-breaking rule.
func intMonge(rng *rand.Rand, m, n int) *marray.Dense {
	d := marray.NewDense(m, n)
	prefix := make([]float64, n)
	for i := 0; i < m; i++ {
		acc := 0.0
		for j := 0; j < n; j++ {
			acc -= float64(rng.Intn(3)) // small integers => frequent ties
			prefix[j] += acc
			d.Set(i, j, prefix[j]+float64(rng.Intn(2)))
		}
	}
	// NOTE: the +rng.Intn(2) noise can break Monge-ness, so fix it by
	// rebuilding without noise when the check fails.
	if !marray.IsMonge(d) {
		d = marray.NewDense(m, n)
		for j := range prefix {
			prefix[j] = 0
		}
		for i := 0; i < m; i++ {
			acc := 0.0
			for j := 0; j < n; j++ {
				acc -= float64(rng.Intn(3))
				prefix[j] += acc
				d.Set(i, j, prefix[j])
			}
		}
	}
	return d
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRowMinimaSmall(t *testing.T) {
	a := marray.FromRows([][]float64{
		{4, 5, 6},
		{3, 3, 4},
		{2, 1, 1},
	})
	if !marray.IsMonge(a) {
		t.Fatal("test array should be Monge")
	}
	got := RowMinima(a)
	want := RowMinimaBrute(a)
	if !eqInts(got, want) {
		t.Fatalf("RowMinima = %v, want %v", got, want)
	}
}

func TestRowMinimaMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomMonge(rng, m, n)
		if got, want := RowMinima(a), RowMinimaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestRowMinimaLeftmostTies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		a := intMonge(rng, m, n)
		if !marray.IsMonge(a) {
			continue
		}
		if got, want := RowMinima(a), RowMinimaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestRowMaximaMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := marray.RandomInverseMonge(rng, m, n)
		if got, want := RowMaxima(a), RowMaximaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestRowMaximaLeftmostTies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		a := marray.Negate(intMonge(rng, m, n))
		if !marray.IsInverseMonge(a) {
			continue
		}
		if got, want := RowMaxima(a), RowMaximaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestMongeRowMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		var a marray.Matrix = marray.RandomMonge(rng, m, n)
		if trial%2 == 0 {
			a = intMonge(rng, m, n)
			if !marray.IsMonge(a) {
				continue
			}
		}
		if got, want := MongeRowMaxima(a), RowMaximaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestInverseMongeRowMinima(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		m, n := 1+rng.Intn(25), 1+rng.Intn(25)
		var a marray.Matrix = marray.RandomInverseMonge(rng, m, n)
		if trial%2 == 0 {
			a = marray.Negate(intMonge(rng, m, n))
			if !marray.IsInverseMonge(a) {
				continue
			}
		}
		if got, want := InverseMongeRowMinima(a), RowMinimaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d (%dx%d): got %v want %v", trial, m, n, got, want)
		}
	}
}

func TestRowMinimaDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{1, 1}, {1, 17}, {17, 1}, {2, 2}, {64, 3}, {3, 64}}
	for _, sh := range shapes {
		a := marray.RandomMonge(rng, sh[0], sh[1])
		if got, want := RowMinima(a), RowMinimaBrute(a); !eqInts(got, want) {
			t.Fatalf("shape %v: got %v want %v", sh, got, want)
		}
	}
	empty := marray.NewDense(0, 0)
	if got := RowMinima(empty); len(got) != 0 {
		t.Fatal("empty matrix should give empty result")
	}
}

func TestValuesAndSameOptima(t *testing.T) {
	a := marray.FromRows([][]float64{{3, 1}, {2, 2}})
	idx := []int{1, 0}
	v := Values(a, idx)
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("Values = %v", v)
	}
	if !SameOptima(a, []int{1, 0}, []int{1, 1}) {
		t.Fatal("SameOptima should compare values, row 1 is tied")
	}
	if SameOptima(a, []int{0, 0}, []int{1, 0}) {
		t.Fatal("row 0 values differ")
	}
	if SameOptima(a, []int{0}, []int{0, 0}) {
		t.Fatal("length mismatch should be false")
	}
}

func TestQuickSMAWKAgainstBrute(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		a := marray.RandomMonge(rng, m, n)
		return eqInts(RowMinima(a), RowMinimaBrute(a))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSMAWKOnFigure11DistanceArray(t *testing.T) {
	// The paper's introductory example: distances between two chains of a
	// convex polygon form an inverse-Monge array whose row maxima give
	// all-farthest neighbors.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		m, n := 2+rng.Intn(40), 2+rng.Intn(40)
		p, q := marray.ConvexChainPair(rng, m, n)
		a := marray.ChainDistanceMatrix(p, q)
		if got, want := RowMaxima(a), RowMaximaBrute(a); !eqInts(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}
