package smawk

import "monge/internal/marray"

// RowMinimaDC is the O((m+n) lg m) divide-and-conquer row-minima algorithm
// for totally monotone (min) arrays: solve the middle row by a scan, then
// recurse on the two halves with bracketed column ranges. It predates
// SMAWK and serves as the secondary sequential baseline in the benchmark
// harness.
func RowMinimaDC(a marray.Matrix) []int {
	m, n := a.Rows(), a.Cols()
	out := make([]int, m)
	if m == 0 || n == 0 {
		return out
	}
	var rec func(rLo, rHi, cLo, cHi int)
	rec = func(rLo, rHi, cLo, cHi int) {
		if rLo > rHi {
			return
		}
		mid := (rLo + rHi) / 2
		best, bv := cLo, a.At(mid, cLo)
		for j := cLo + 1; j <= cHi; j++ {
			if v := a.At(mid, j); v < bv {
				best, bv = j, v
			}
		}
		out[mid] = best
		rec(rLo, mid-1, cLo, best)
		rec(mid+1, rHi, best, cHi)
	}
	rec(0, m-1, 0, n-1)
	return out
}

// RowMaximaDC is the maxima analogue for totally monotone (max) arrays
// (inverse-Monge), with leftmost tie-breaking.
func RowMaximaDC(a marray.Matrix) []int {
	m, n := a.Rows(), a.Cols()
	out := make([]int, m)
	if m == 0 || n == 0 {
		return out
	}
	var rec func(rLo, rHi, cLo, cHi int)
	rec = func(rLo, rHi, cLo, cHi int) {
		if rLo > rHi {
			return
		}
		mid := (rLo + rHi) / 2
		best, bv := cLo, a.At(mid, cLo)
		for j := cLo + 1; j <= cHi; j++ {
			if v := a.At(mid, j); v > bv {
				best, bv = j, v
			}
		}
		out[mid] = best
		rec(rLo, mid-1, cLo, best)
		rec(mid+1, rHi, best, cHi)
	}
	rec(0, m-1, 0, n-1)
	return out
}
