package smawk

import (
	"monge/internal/marray"
)

// TubeMaxima solves the tube-maxima problem for a p x q x r Monge-composite
// array c[i,j,k] = d[i,j] + e[j,k] (D, E Monge): for every (i, k) it finds
// the middle coordinate j minimising ties (smallest j) among those
// maximising c[i,j,k]. Runs in O(p*(q+r)) time: for each fixed i the slice
// W_i[k][j] = e[j,k] + d[i,j] is a Monge array in (k, j) (it is the
// transpose of E plus a column offset), so its row maxima come from one
// SMAWK pass.
//
// The returned argJ has p rows and r columns; vals[i][k] = c[i, argJ[i][k], k].
func TubeMaxima(c marray.Composite) (argJ [][]int, vals [][]float64) {
	return tubeSolve(c, true)
}

// TubeMinima is the minimisation analogue of TubeMaxima: for every (i, k)
// it finds the smallest j among those minimising c[i,j,k]. It requires D
// and E inverse-Monge (so each W_i slice is inverse-Monge and its row
// minima are SMAWK-searchable). This is the orientation used by the
// shortest-path (string editing) application, where DIST matrices are
// inverse-Monge.
func TubeMinima(c marray.Composite) (argJ [][]int, vals [][]float64) {
	return tubeSolve(c, false)
}

func tubeSolve(c marray.Composite, maxima bool) ([][]int, [][]float64) {
	p, q, r := c.P(), c.Q(), c.R()
	argJ := make([][]int, p)
	vals := make([][]float64, p)
	for i := 0; i < p; i++ {
		wi := marray.Func{M: r, N: q, F: func(k, j int) float64 {
			return c.D.At(i, j) + c.E.At(j, k)
		}}
		var idx []int
		if maxima {
			// W_i is Monge; its leftmost row maxima need the
			// column-reversal adapter.
			idx = MongeRowMaxima(wi)
		} else {
			// W_i is inverse-Monge; its leftmost row minima need the
			// symmetric adapter.
			idx = InverseMongeRowMinima(wi)
		}
		argJ[i] = idx
		v := make([]float64, r)
		for k := 0; k < r; k++ {
			v[k] = c.At(i, idx[k], k)
		}
		vals[i] = v
	}
	return argJ, vals
}

// TubeMaximaBrute scans all q middle coordinates for every tube. O(p*q*r),
// for validation.
func TubeMaximaBrute(c marray.Composite) ([][]int, [][]float64) {
	return tubeBrute(c, true)
}

// TubeMinimaBrute is the minimisation analogue of TubeMaximaBrute.
func TubeMinimaBrute(c marray.Composite) ([][]int, [][]float64) {
	return tubeBrute(c, false)
}

func tubeBrute(c marray.Composite, maxima bool) ([][]int, [][]float64) {
	p, q, r := c.P(), c.Q(), c.R()
	argJ := make([][]int, p)
	vals := make([][]float64, p)
	for i := 0; i < p; i++ {
		argJ[i] = make([]int, r)
		vals[i] = make([]float64, r)
		for k := 0; k < r; k++ {
			best, bv := 0, c.At(i, 0, k)
			for j := 1; j < q; j++ {
				v := c.At(i, j, k)
				if (maxima && v > bv) || (!maxima && v < bv) {
					best, bv = j, v
				}
			}
			argJ[i][k] = best
			vals[i][k] = bv
		}
	}
	return argJ, vals
}
