// Package smawk implements the sequential array-searching algorithms that
// the paper builds on and compares against: the Theta(m+n) SMAWK algorithm
// of Aggarwal, Klawe, Moran, Shor, and Wilber [AKM+87] for row minima and
// row maxima of totally monotone arrays, a sequential staircase-Monge
// row-minima algorithm in the spirit of Aggarwal and Klawe [AK88], and
// sequential tube maxima/minima for Monge-composite arrays.
//
// These are the sequential baselines for Tables 1.1-1.3 of the paper; the
// parallel algorithms in internal/core and internal/hcmonge are validated
// against them, and they in turn are validated against brute force.
package smawk

import (
	"math"

	"monge/internal/marray"
)

// RowMinima returns, for each row of a, the column index of its leftmost
// minimum. The array must be totally monotone with respect to row minima
// (every Monge array qualifies). Runs in O(m + n) time via SMAWK.
func RowMinima(a marray.Matrix) []int {
	return run(a, less)
}

// RowMaxima returns, for each row of a, the column index of its leftmost
// maximum. The array must be totally monotone with respect to row maxima
// (every inverse-Monge array qualifies). Runs in O(m + n) time via SMAWK.
func RowMaxima(a marray.Matrix) []int {
	return run(a, greater)
}

// RowMinimaInto is RowMinima writing into a caller-provided slice of
// length >= a.Rows(). Recursion scratch comes from a pooled workspace, so
// the call allocates nothing; out is not touched for rows beyond a.Rows().
// The native backend's block solvers use this to keep the per-query alloc
// budget at the answer slice alone.
func RowMinimaInto(a marray.Matrix, out []int) {
	// Narrow dense arrays skip the recursion: the branchless row scan
	// (scan.go) over zero-copy row views beats SMAWK's O(m+n) bound
	// until the row no longer fits a handful of cache lines, and it
	// applies the identical leftmost tie rule.
	if d, ok := a.(*marray.Dense); ok && d.Cols() <= DenseScanCols {
		ScanRowMinimaInto(d.RowView, 0, d.Rows(), out)
		return
	}
	w := getWS()
	defer putWS(w)
	runInto(w, a, less, out)
}

// MongeRowMaxima returns the leftmost row maxima of a Monge array. A Monge
// array is totally monotone for maxima only after column reversal, so this
// adapter reverses, searches, and maps indices back, preserving the
// leftmost tie-breaking rule of the original array.
func MongeRowMaxima(a marray.Matrix) []int {
	out := make([]int, a.Rows())
	MongeRowMaximaInto(a, out)
	return out
}

// MongeRowMaximaInto is MongeRowMaxima writing into a caller-provided
// slice of length >= a.Rows(), allocation-free like RowMinimaInto.
func MongeRowMaximaInto(a marray.Matrix, out []int) {
	// Narrow dense arrays scan directly: ArgMax is already the leftmost
	// maximum, so the reverse-and-remap detour below is unnecessary.
	if d, ok := a.(*marray.Dense); ok && d.Cols() <= DenseScanCols {
		for i := range out[:d.Rows()] {
			out[i] = ArgMax(d.RowView(i))
		}
		return
	}
	// In the reversed array, the leftmost maximum corresponds to the
	// rightmost maximum of a. To recover a's leftmost maxima we instead
	// search the reversed array for its rightmost maxima.
	rev := marray.ReverseCols(a)
	out = out[:a.Rows()]
	runRightmostInto(rev, greater, out)
	n := a.Cols()
	for i := range out {
		out[i] = n - 1 - out[i]
	}
}

// InverseMongeRowMinima returns the leftmost row minima of an inverse-Monge
// array, by the symmetric adapter.
func InverseMongeRowMinima(a marray.Matrix) []int {
	rev := marray.ReverseCols(a)
	idx := runRightmost(rev, less)
	n := a.Cols()
	for i := range idx {
		idx[i] = n - 1 - idx[i]
	}
	return idx
}

// less reports x strictly better than y for minima.
func less(x, y float64) bool { return x < y }

// greater reports x strictly better than y for maxima.
func greater(x, y float64) bool { return x > y }

// run executes SMAWK returning leftmost best entries per row.
func run(a marray.Matrix, better func(x, y float64) bool) []int {
	out := make([]int, a.Rows())
	w := getWS()
	defer putWS(w)
	runInto(w, a, better, out)
	return out
}

// runInto executes SMAWK into a caller-provided answer slice, drawing all
// recursion scratch from w. The staircase solver routes its Monge feasible
// regions through here so one workspace serves the whole decomposition.
func runInto(w *workspace, a marray.Matrix, better func(x, y float64) bool, out []int) {
	m, n := a.Rows(), a.Cols()
	if m == 0 || n == 0 {
		return
	}
	mark := w.mark()
	defer w.rewind(mark)
	rows := w.ints.Alloc(m)
	cols := w.ints.Alloc(n)
	for i := range rows {
		rows[i] = i
	}
	for j := range cols {
		cols[j] = j
	}
	solve(w, a, better, rows, cols, out)
}

// runRightmost executes SMAWK with rightmost tie-breaking, used by the
// column-reversal adapters.
func runRightmost(a marray.Matrix, better func(x, y float64) bool) []int {
	out := make([]int, a.Rows())
	runRightmostInto(a, better, out)
	return out
}

// runRightmostInto is runRightmost into a caller-provided answer slice of
// length a.Rows().
func runRightmostInto(a marray.Matrix, better func(x, y float64) bool, out []int) {
	// Rightmost-best of a = leftmost-best under "strictly better or equal"
	// comparisons. Using >= (resp. <=) as the kill test in SMAWK yields the
	// rightmost optimum; total monotonicity holds in the same direction.
	betterEq := func(x, y float64) bool { return !better(y, x) }
	m, n := a.Rows(), a.Cols()
	if m == 0 || n == 0 {
		return
	}
	w := getWS()
	defer putWS(w)
	rows := w.ints.Alloc(m)
	cols := w.ints.Alloc(n)
	for i := range rows {
		rows[i] = i
	}
	for j := range cols {
		cols[j] = j
	}
	solveRightmost(w, a, better, betterEq, rows, cols, out)
}

// solve is the classic SMAWK recursion: REDUCE discards columns that cannot
// contain any row's leftmost optimum, the recursion solves odd-indexed
// rows, and INTERPOLATE fills even-indexed rows with a linear scan between
// the neighbouring odd answers.
func solve(w *workspace, a marray.Matrix, better func(x, y float64) bool, rows, cols []int, out []int) {
	if len(rows) == 0 {
		return
	}
	mark := w.mark()
	defer w.rewind(mark)
	// REDUCE: maintain a stack of surviving columns; column c kills the top
	// of the stack if c is strictly better at the row indexed by the
	// current stack height. Strictness keeps the leftmost optimum.
	stack := w.ints.Alloc(len(rows))[:0]
	for _, c := range cols {
		for len(stack) > 0 && better(a.At(rows[len(stack)-1], c), a.At(rows[len(stack)-1], stack[len(stack)-1])) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) < len(rows) {
			stack = append(stack, c)
		}
	}
	cols = stack

	// Recurse on odd-indexed rows.
	odd := w.ints.Alloc(len(rows) / 2)[:0]
	for i := 1; i < len(rows); i += 2 {
		odd = append(odd, rows[i])
	}
	solve(w, a, better, odd, cols, out)

	// INTERPOLATE: row 2i's optimum lies between the optima of rows 2i-1
	// and 2i+1 (inclusive), by monotonicity of the leftmost optimum.
	ci := 0
	for ri := 0; ri < len(rows); ri += 2 {
		r := rows[ri]
		hi := cols[len(cols)-1]
		if ri+1 < len(rows) {
			hi = out[rows[ri+1]]
		}
		best := cols[ci]
		bv := a.At(r, best)
		j := ci
		for cols[j] != hi {
			j++
			if v := a.At(r, cols[j]); better(v, bv) {
				best, bv = cols[j], v
			}
		}
		out[r] = best
		ci = j
	}
}

// solveRightmost mirrors solve but keeps the rightmost optimum: the kill
// test uses better-or-equal and the interpolation scan prefers later
// columns on ties.
func solveRightmost(w *workspace, a marray.Matrix, better, betterEq func(x, y float64) bool, rows, cols []int, out []int) {
	if len(rows) == 0 {
		return
	}
	mark := w.mark()
	defer w.rewind(mark)
	stack := w.ints.Alloc(len(rows))[:0]
	for _, c := range cols {
		for len(stack) > 0 && betterEq(a.At(rows[len(stack)-1], c), a.At(rows[len(stack)-1], stack[len(stack)-1])) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) < len(rows) {
			stack = append(stack, c)
		}
	}
	cols = stack

	odd := w.ints.Alloc(len(rows) / 2)[:0]
	for i := 1; i < len(rows); i += 2 {
		odd = append(odd, rows[i])
	}
	solveRightmost(w, a, better, betterEq, odd, cols, out)

	ci := 0
	for ri := 0; ri < len(rows); ri += 2 {
		r := rows[ri]
		hi := cols[len(cols)-1]
		if ri+1 < len(rows) {
			hi = out[rows[ri+1]]
		}
		best := cols[ci]
		bv := a.At(r, best)
		j := ci
		for cols[j] != hi {
			j++
			if v := a.At(r, cols[j]); betterEq(v, bv) {
				best, bv = cols[j], v
			}
		}
		out[r] = best
		ci = j
	}
}

// RowMinimaBrute returns leftmost row minima by exhaustive scan, for
// validation. O(m*n).
func RowMinimaBrute(a marray.Matrix) []int {
	return brute(a, less)
}

// RowMaximaBrute returns leftmost row maxima by exhaustive scan, for
// validation. O(m*n).
func RowMaximaBrute(a marray.Matrix) []int {
	return brute(a, greater)
}

func brute(a marray.Matrix, better func(x, y float64) bool) []int {
	m, n := a.Rows(), a.Cols()
	out := make([]int, m)
	for i := 0; i < m; i++ {
		best, bv := 0, a.At(i, 0)
		for j := 1; j < n; j++ {
			if v := a.At(i, j); better(v, bv) {
				best, bv = j, v
			}
		}
		out[i] = best
	}
	return out
}

// Values returns a[i, idx[i]] for each row i, pairing an argmin/argmax
// vector with its entry values.
func Values(a marray.Matrix, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = a.At(i, j)
	}
	return out
}

// SameOptima reports whether two answer vectors select entries of equal
// value in every row of a (they may differ in tie columns only if the
// caller allows it; this helper compares values, not indices).
func SameOptima(a marray.Matrix, x, y []int) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		vx, vy := a.At(i, x[i]), a.At(i, y[i])
		if vx != vy && !(math.IsNaN(vx) && math.IsNaN(vy)) {
			return false
		}
	}
	return true
}
