package smawk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
)

func eq2D(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eqInts(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestTubeMaximaMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 100; trial++ {
		p, q, r := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		c := marray.RandomComposite(rng, p, q, r)
		gotJ, gotV := TubeMaxima(c)
		wantJ, wantV := TubeMaximaBrute(c)
		if !eq2D(gotJ, wantJ) {
			t.Fatalf("trial %d (%d,%d,%d): argJ mismatch\n got %v\nwant %v", trial, p, q, r, gotJ, wantJ)
		}
		for i := range gotV {
			for k := range gotV[i] {
				if gotV[i][k] != wantV[i][k] {
					t.Fatalf("value mismatch at (%d,%d)", i, k)
				}
			}
		}
	}
}

func TestTubeMinimaMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		p, q, r := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		c := marray.NewComposite(
			marray.RandomInverseMonge(rng, p, q),
			marray.RandomInverseMonge(rng, q, r),
		)
		gotJ, _ := TubeMinima(c)
		wantJ, _ := TubeMinimaBrute(c)
		if !eq2D(gotJ, wantJ) {
			t.Fatalf("trial %d: argJ mismatch\n got %v\nwant %v", trial, gotJ, wantJ)
		}
	}
}

func TestTubeMaximaTiesToSmallestJ(t *testing.T) {
	// Constant factors force every middle coordinate to tie; the smallest j
	// must win everywhere.
	d := marray.NewDense(3, 4) // all zeros: Monge
	e := marray.NewDense(4, 3)
	c := marray.NewComposite(d, e)
	argJ, _ := TubeMaxima(c)
	for i := range argJ {
		for k := range argJ[i] {
			if argJ[i][k] != 0 {
				t.Fatalf("tie should pick j=0, got %d at (%d,%d)", argJ[i][k], i, k)
			}
		}
	}
}

func TestQuickTubeMaxima(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q, r := 1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16)
		c := marray.RandomComposite(rng, p, q, r)
		gotJ, _ := TubeMaxima(c)
		wantJ, _ := TubeMaximaBrute(c)
		return eq2D(gotJ, wantJ)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTubeArgMonotonicity(t *testing.T) {
	// Structural check exploited by the divide-and-conquer parallel
	// algorithm: for a Monge-composite array (D, E Monge) the leftmost
	// maximising j is NONINCREASING in k for fixed i and nonincreasing in i
	// for fixed k, because each slice is a Monge array and Monge row maxima
	// move left as the row index grows.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		p, q, r := 2+rng.Intn(10), 2+rng.Intn(10), 2+rng.Intn(10)
		c := marray.RandomComposite(rng, p, q, r)
		argJ, _ := TubeMaximaBrute(c)
		for i := 0; i < p; i++ {
			for k := 1; k < r; k++ {
				if argJ[i][k] > argJ[i][k-1] {
					t.Fatalf("argJ not nonincreasing in k at i=%d k=%d: %v", i, k, argJ[i])
				}
			}
		}
		for k := 0; k < r; k++ {
			for i := 1; i < p; i++ {
				if argJ[i][k] > argJ[i-1][k] {
					t.Fatalf("argJ not nonincreasing in i at i=%d k=%d", i, k)
				}
			}
		}
	}
}
