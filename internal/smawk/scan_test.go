package smawk

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// lessTotal is the scalar reference order for minima, written with
// explicit branches and no bit tricks: NaN sorts above everything (it
// never wins a minimum), -0.0 equals +0.0, and everything else is <.
// The kernels' documented contract is "leftmost minimum under this
// order"; on NaN-free inputs it coincides with a plain < scan.
func lessTotal(a, b float64) bool {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	if an || bn {
		return !an && bn
	}
	return a < b
}

// refScan is the scalar reference scan: leftmost index never displaced
// except by a strictly better entry.
func refScan(row []float64, better func(a, b float64) bool) int {
	best := 0
	for j := 1; j < len(row); j++ {
		if better(row[j], row[best]) {
			best = j
		}
	}
	return best
}

func refArgMin(row []float64) int { return refScan(row, lessTotal) }

// greaterTotal is the scalar reference order for maxima: NaN sorts
// below everything (it never wins a maximum), mirroring lessTotal.
func greaterTotal(a, b float64) bool {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	if an || bn {
		return !an && bn
	}
	return a > b
}

func refArgMax(row []float64) int { return refScan(row, greaterTotal) }

func refArgMinFinite(row []float64) int {
	j := refArgMin(row)
	if math.IsInf(row[j], 1) {
		return -1
	}
	return j
}

func refArgMaxFinite(row []float64) int {
	best := -1
	for j, v := range row {
		if math.IsInf(v, 1) || math.IsNaN(v) {
			continue
		}
		if best < 0 || v > row[best] {
			best = j
		}
	}
	return best
}

// scanLens covers every code path: the short-row scalar loop (< 8),
// exact multiples of the 4-wide unroll, each tail length, and long
// rows.
var scanLens = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 15, 16, 17, 31, 32, 33, 63, 64, 100, 257, 1024}

// specials are the values the satellite task names: ±Inf, -0.0, NaN,
// and near-tie magnitudes around exact integer ties.
var specials = []float64{
	math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, math.NaN(),
	1, 1 + 1e-9, 1 - 1e-9, -1, -1 - 1e-9, 2, -2,
}

// scanRows generates adversarial rows of length n: all-ties, near-tie
// (integer base split by 1e-9 deltas), special-value-dense, and mixes
// with leading/trailing NaN and Inf runs.
func scanRows(rng *rand.Rand, n int) [][]float64 {
	rows := [][]float64{make([]float64, n)} // all zero: the total tie
	allSeven := make([]float64, n)
	nearTie := make([]float64, n)
	specialMix := make([]float64, n)
	negZero := make([]float64, n)
	for j := 0; j < n; j++ {
		allSeven[j] = 7
		nearTie[j] = float64(3+rng.Intn(2)) + 1e-9*float64(rng.Intn(3))
		specialMix[j] = specials[rng.Intn(len(specials))]
		if rng.Intn(2) == 0 {
			negZero[j] = math.Copysign(0, -1)
		}
	}
	rows = append(rows, allSeven, nearTie, specialMix, negZero)
	leadNaN := append([]float64{math.NaN()}, nearTie[:n-1]...)
	allNaN := make([]float64, n)
	allInf := make([]float64, n)
	for j := range allNaN {
		allNaN[j] = math.NaN()
		allInf[j] = math.Inf(1)
	}
	rows = append(rows, leadNaN, allNaN, allInf)
	random := make([]float64, n)
	for j := range random {
		random[j] = rng.NormFloat64() * 100
	}
	rows = append(rows, random)
	return rows
}

// TestScanKernelsMatchScalarReference pins all four kernels against
// the scalar reference on every adversarial family and length.
func TestScanKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range scanLens {
		for fi, row := range scanRows(rng, n) {
			if got, want := ArgMin(row), refArgMin(row); got != want {
				t.Fatalf("ArgMin(n=%d, family=%d) = %d, want %d (row=%v)", n, fi, got, want, clip(row))
			}
			if got, want := ArgMax(row), refArgMax(row); got != want {
				t.Fatalf("ArgMax(n=%d, family=%d) = %d, want %d (row=%v)", n, fi, got, want, clip(row))
			}
			if got, want := ArgMinFinite(row), refArgMinFinite(row); got != want {
				t.Fatalf("ArgMinFinite(n=%d, family=%d) = %d, want %d (row=%v)", n, fi, got, want, clip(row))
			}
			if got, want := ArgMaxFinite(row), refArgMaxFinite(row); got != want {
				t.Fatalf("ArgMaxFinite(n=%d, family=%d) = %d, want %d (row=%v)", n, fi, got, want, clip(row))
			}
		}
	}
}

// TestArgMinAgreesWithBruteOnNaNFreeInput pins the documented
// coincidence: without NaN the kernel order is the < order, so ArgMin
// must equal the classic brute scan used as the repository's oracle.
func TestArgMinAgreesWithBruteOnNaNFreeInput(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range scanLens {
		for trial := 0; trial < 20; trial++ {
			row := make([]float64, n)
			for j := range row {
				switch rng.Intn(5) {
				case 0:
					row[j] = float64(rng.Intn(3)) // exact ties
				case 1:
					row[j] = math.Inf(1)
				case 2:
					row[j] = math.Copysign(0, -1)
				default:
					row[j] = float64(rng.Intn(4)) + 1e-9*float64(rng.Intn(3))
				}
			}
			want := 0
			for j := 1; j < n; j++ {
				if row[j] < row[want] {
					want = j
				}
			}
			if got := ArgMin(row); got != want {
				t.Fatalf("ArgMin(n=%d) = %d, want brute %d (row=%v)", n, got, want, clip(row))
			}
		}
	}
}

// TestRank64 pins the predecessor-rank primitive on exhaustive small
// words and random wide ones.
func TestRank64(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 2000; trial++ {
		w := rng.Uint64()
		pos := uint(rng.Intn(64))
		want := 0
		for b := uint(0); b <= pos; b++ {
			if w&(1<<b) != 0 {
				want++
			}
		}
		if got := Rank64(w, pos); got != want {
			t.Fatalf("Rank64(%#x, %d) = %d, want %d", w, pos, got, want)
		}
	}
}

// FuzzArgMinKernels feeds arbitrary byte-derived float64 rows — any
// bit pattern, including every NaN payload — through all four kernels
// against the scalar reference.
func FuzzArgMinKernels(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 0, 0, 0, 0, 0, 0xf0, 0xff})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0x80, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0xf8, 0x7f, 2, 0, 0, 0, 0, 0, 0xf0, 0x3f, 3, 0, 0, 0, 0, 0, 0xf0, 0x3f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		row := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			row = append(row, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		}
		if got, want := ArgMin(row), refArgMin(row); got != want {
			t.Fatalf("ArgMin = %d, want %d (row=%v)", got, want, clip(row))
		}
		if got, want := ArgMax(row), refArgMax(row); got != want {
			t.Fatalf("ArgMax = %d, want %d (row=%v)", got, want, clip(row))
		}
		if got, want := ArgMinFinite(row), refArgMinFinite(row); got != want {
			t.Fatalf("ArgMinFinite = %d, want %d (row=%v)", got, want, clip(row))
		}
		if got, want := ArgMaxFinite(row), refArgMaxFinite(row); got != want {
			t.Fatalf("ArgMaxFinite = %d, want %d (row=%v)", got, want, clip(row))
		}
	})
}

func clip(row []float64) []float64 {
	if len(row) > 16 {
		return row[:16]
	}
	return row
}

// twoPassArgMin is the PR 8 dense-scan kernel kept verbatim as the
// benchmark baseline: a value pass with the min builtin, then an index
// pass stopping at the first equal entry.
func twoPassArgMin(row []float64) int {
	bv := row[0]
	for _, v := range row[1:] {
		bv = min(bv, v)
	}
	for j, v := range row {
		if v == bv {
			return j
		}
	}
	return 0
}

// branchyArgMaxSkipInf is the PR 8 mindex boundary-scan loop shape:
// per-entry IsInf test plus a compare branch.
func branchyArgMaxSkipInf(row []float64) int {
	best, barg := math.Inf(-1), -1
	for j, v := range row {
		if math.IsInf(v, 1) {
			continue
		}
		if v > best {
			best, barg = v, j
		}
	}
	return barg
}

// BenchmarkScanKernels is the before/after table for EXPERIMENTS.md
// ("Kernel microbenchmarks"): the PR 8 scalar loops versus the
// branchless 4-wide kernels. Each iteration scans a different row from
// a 16-row rotation — a single fixed row would let the branch
// predictor memorize the scalar loops' decision sequence, a luxury the
// real scans (a fresh row per call) never get.
func BenchmarkScanKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const rot = 16
	for _, n := range []int{32, 256, 4096} {
		rows := make([][]float64, rot)
		stairs := make([][]float64, rot)
		for r := range rows {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(8)) + 1e-9*float64(rng.Intn(3))
			}
			rows[r] = row
			stair := append([]float64(nil), row...)
			for j := 3 * n / 4; j < n; j++ {
				stair[j] = math.Inf(1)
			}
			stairs[r] = stair
		}
		sink := 0
		b.Run(fmt.Sprintf("argmin-twopass/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += twoPassArgMin(rows[i%rot])
			}
		})
		b.Run(fmt.Sprintf("argmin-branchless/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += ArgMin(rows[i%rot])
			}
		})
		b.Run(fmt.Sprintf("argmax-branchy-skipinf/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += branchyArgMaxSkipInf(stairs[i%rot])
			}
		})
		b.Run(fmt.Sprintf("argmax-branchless-skipinf/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += ArgMaxFinite(stairs[i%rot])
			}
		})
		// Hostile family: ascending drift plus noise makes "new maximum
		// found" an unpredictable ~coin flip per element, the worst case
		// for the branchy loop and a no-op for the branchless one.
		hostile := make([][]float64, rot)
		for r := range hostile {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(j)*0.5 + rng.NormFloat64()*8
			}
			hostile[r] = row
		}
		b.Run(fmt.Sprintf("argmax-branchy-hostile/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += branchyArgMaxSkipInf(hostile[i%rot])
			}
		})
		b.Run(fmt.Sprintf("argmax-branchless-hostile/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += ArgMaxFinite(hostile[i%rot])
			}
		})
		if sink == math.MinInt {
			b.Fatal("impossible")
		}
	}
}
