package smawk

import (
	"math"

	"monge/internal/marray"
)

// StaircaseRowMinima returns, for each row of the staircase-Monge array a,
// the column index of its leftmost finite minimum, or -1 if the row is
// entirely blocked (+Inf). This is the sequential baseline for Theorem 2.3,
// implementing the Aggarwal-Klawe [AK88] style decomposition the paper's
// Lemma 2.2 builds on: sample rows, solve them recursively, and observe
// that the remaining rows' minima lie either in fully finite Monge
// "feasible regions" between consecutive sampled minima (searched with
// SMAWK) or in staircase "tail" regions beyond the next sampled row's
// boundary (solved recursively), exactly the two feasible-region classes of
// Figure 2.2.
func StaircaseRowMinima(a marray.Matrix) []int {
	out := make([]int, a.Rows())
	StaircaseRowMinimaInto(a, out)
	return out
}

// StaircaseRowMinimaInto is StaircaseRowMinima writing into a
// caller-provided slice of length >= a.Rows(), drawing all scratch from a
// pooled workspace so the call itself allocates nothing. The native
// backend's block solvers rely on this to keep alloc budgets intact.
func StaircaseRowMinimaInto(a marray.Matrix, out []int) {
	m, n := a.Rows(), a.Cols()
	if m == 0 {
		return
	}
	// Narrow dense arrays take the branchless finite-minimum scan: +Inf
	// (blocked) entries lose by key order rather than by boundary
	// bookkeeping, so no BoundaryOf pass is needed either.
	if d, ok := a.(*marray.Dense); ok && n <= DenseScanCols {
		ScanStairRowMinimaInto(d.RowView, 0, m, out)
		return
	}
	w := getWS()
	defer putWS(w)
	f := w.ints.Alloc(m)
	for i := 0; i < m; i++ {
		f[i] = marray.BoundaryOf(a, i)
	}
	s := &stairSolver{a: a, f: f, n: n, w: w}
	rows := w.ints.Alloc(m)
	for i := range rows {
		rows[i] = i
	}
	res := s.solve(rows, 0, n)
	for i := range rows {
		out[i] = res[i].col
	}
}

// StaircaseRowMinimaBrute scans every finite entry. O(m*n), for validation.
func StaircaseRowMinimaBrute(a marray.Matrix) []int {
	m, n := a.Rows(), a.Cols()
	out := make([]int, m)
	for i := 0; i < m; i++ {
		best, bv := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			if math.IsInf(v, 1) {
				break // staircase: rest of the row is blocked
			}
			if v < bv {
				best, bv = j, v
			}
		}
		out[i] = best
	}
	return out
}

// StaircaseRowMaxima returns leftmost finite row maxima of a
// staircase-inverse-Monge array whose blocked entries are -Inf, by negating
// into the row-minima problem. Rows that are entirely blocked yield -1.
func StaircaseRowMaxima(a marray.Matrix) []int {
	return StaircaseRowMinima(marray.Negate(a))
}

// cand is a window-local answer: the leftmost minimising column of a row
// within the current column window, and its value. col == -1 means the row
// has no finite entry in the window.
type cand struct {
	col int
	val float64
}

func worst() cand { return cand{col: -1, val: math.Inf(1)} }

// betterCand reports whether x improves on y under (value, then leftmost
// column) order.
func (x cand) better(y cand) bool {
	if x.col == -1 {
		return false
	}
	if y.col == -1 {
		return true
	}
	if x.val != y.val {
		return x.val < y.val
	}
	return x.col < y.col
}

type stairSolver struct {
	a marray.Matrix
	f []int // first blocked column per global row
	n int
	w *workspace
}

// eff returns the exclusive end of row r's finite range inside a window
// ending at c1.
func (s *stairSolver) eff(r, c1 int) int {
	if s.f[r] < c1 {
		return s.f[r]
	}
	return c1
}

// solve returns window-local minima for the given (increasing) global rows
// over columns [c0, c1). The sub-array induced by any increasing row subset
// and column window of a staircase-Monge array is staircase-Monge.
func (s *stairSolver) solve(rows []int, c0, c1 int) []cand {
	// res is the frame's result: allocated before the mark so it survives
	// into the caller, whose own rewind reclaims it after the merge.
	res := s.w.cands.Alloc(len(rows))
	for i := range res {
		res[i] = worst()
	}
	if len(rows) == 0 || c0 >= c1 {
		return res
	}
	// Base case: few rows, or a narrow window -- scan directly.
	if len(rows) <= 2 || c1-c0 <= 4 {
		for i, r := range rows {
			res[i] = s.scanRow(r, c0, c1)
		}
		return res
	}
	mark := s.w.mark()
	defer s.w.rewind(mark)

	step := intSqrt(len(rows)) // sample every step-th row
	if step < 2 {
		step = 2
	}
	nS := 0
	for p := step - 1; p < len(rows); p += step {
		nS++
	}
	sampledPos := s.w.ints.Alloc(nS)
	sampledRows := s.w.ints.Alloc(nS)
	for i, p := 0, step-1; p < len(rows); i, p = i+1, p+step {
		sampledPos[i] = p
		sampledRows[i] = rows[p]
	}
	sres := s.solve(sampledRows, c0, c1)
	for i, p := range sampledPos {
		res[p] = sres[i]
	}

	// Process each gap of unsampled rows between consecutive sampled rows
	// (plus the prefix gap before the first and the suffix gap after the
	// last sampled row).
	gapStart := 0
	for g := 0; g <= len(sampledPos); g++ {
		gapEnd := len(rows) // exclusive
		if g < len(sampledPos) {
			gapEnd = sampledPos[g]
		}
		if gapStart < gapEnd {
			s.solveGap(rows, res, gapStart, gapEnd, g, sampledPos, sres, c0, c1)
		}
		if g < len(sampledPos) {
			gapStart = sampledPos[g] + 1
		}
	}
	return res
}

// solveGap fills res[gapStart:gapEnd] (positions within rows) given the
// window-local minima of the sampled rows bracketing the gap. g is the
// index of the sampled row below the gap (g == len(sampledPos) means none).
func (s *stairSolver) solveGap(rows []int, res []cand, gapStart, gapEnd, g int, sampledPos []int, sres []cand, c0, c1 int) {
	mark := s.w.mark()
	defer s.w.rewind(mark)
	// Lower bound from the sampled row above the gap (claim: for a row x
	// with f_x > cp, the leftmost window minimum is >= cp, by a Monge
	// exchange with the row above).
	lb := c0
	haveAbove := g > 0
	if haveAbove && sres[g-1].col >= 0 {
		lb = sres[g-1].col
	}
	// Upper bound from the sampled row below (claim: columns in (cq, effq)
	// are dominated by cq for every gap row; columns >= effq form the
	// staircase tail region).
	haveBelow := g < len(sampledPos) && sres[g].col >= 0
	var cq, effq int
	if haveBelow {
		cq = sres[g].col
		effq = s.eff(rows[sampledPos[g]], c1)
	}

	// Split gap rows into "clean" rows whose own boundary stays right of lb
	// (the Monge lower bound applies) and "crossed" rows whose boundary has
	// cut at or left of lb (their whole finite range reopens; these are the
	// staircase feasible regions of Figure 2.2 and recurse).
	nClean, nCrossed := 0, 0
	for p := gapStart; p < gapEnd; p++ {
		if e := s.eff(rows[p], c1); e <= c0 {
			continue // fully blocked in the window; stays -1
		} else if e > lb {
			nClean++
		} else {
			nCrossed++
		}
	}
	cleanPos := s.w.ints.Alloc(nClean)[:0]
	crossedPos := s.w.ints.Alloc(nCrossed)[:0]
	for p := gapStart; p < gapEnd; p++ {
		if e := s.eff(rows[p], c1); e <= c0 {
			continue
		} else if e > lb {
			cleanPos = append(cleanPos, p)
		} else {
			crossedPos = append(crossedPos, p)
		}
	}

	if haveBelow {
		// Monge feasible region: clean rows x columns [lb, cq], fully
		// finite because cq < effq <= eff(x) for clean rows... eff(x) >= effq
		// holds since x is above the sampled row q and boundaries are
		// nonincreasing.
		if len(cleanPos) > 0 && lb <= cq {
			s.mongeRegion(rows, res, cleanPos, lb, cq)
		}
		// Staircase tail region: columns [effq, c1), rows whose boundary
		// extends past effq.
		if effq < c1 {
			all := s.w.ints.Alloc(len(cleanPos) + len(crossedPos))
			copy(all, cleanPos)
			copy(all[len(cleanPos):], crossedPos)
			s.recurseInto(rows, res, all, effq, c1)
		}
		// Crossed rows also reopen columns [c0, cq+1) up to their own
		// boundary.
		if len(crossedPos) > 0 {
			hi := cq + 1
			if hi > c1 {
				hi = c1
			}
			s.recurseInto(rows, res, crossedPos, c0, hi)
		}
	} else {
		// No usable sampled row below: recurse on the full remaining
		// windows (the suffix gap has fewer than step rows, so this
		// terminates).
		if len(cleanPos) > 0 {
			s.recurseInto(rows, res, cleanPos, lb, c1)
		}
		if len(crossedPos) > 0 {
			s.recurseInto(rows, res, crossedPos, c0, c1)
		}
	}
}

// mongeRegion runs SMAWK on the fully finite rectangle (rows at positions
// pos) x (columns [jLo, jHi]) and merges the answers into res.
func (s *stairSolver) mongeRegion(rows []int, res []cand, pos []int, jLo, jHi int) {
	sub := marray.Func{
		M: len(pos),
		N: jHi - jLo + 1,
		F: func(i, j int) float64 { return s.a.At(rows[pos[i]], jLo+j) },
	}
	idx := s.w.ints.Alloc(len(pos))
	runInto(s.w, sub, less, idx)
	for i, p := range pos {
		col := jLo + idx[i]
		c := cand{col: col, val: s.a.At(rows[p], col)}
		if c.better(res[p]) {
			res[p] = c
		}
	}
}

// recurseInto solves a sub-window for the rows at the given positions and
// merges the answers into res.
func (s *stairSolver) recurseInto(rows []int, res []cand, pos []int, c0, c1 int) {
	if len(pos) == 0 || c0 >= c1 {
		return
	}
	subRows := s.w.ints.Alloc(len(pos))
	for i, p := range pos {
		subRows[i] = rows[p]
	}
	sub := s.solve(subRows, c0, c1)
	for i, p := range pos {
		if sub[i].better(res[p]) {
			res[p] = sub[i]
		}
	}
}

// scanRow scans row r over [c0, min(f_r, c1)) and returns its leftmost
// minimum.
func (s *stairSolver) scanRow(r, c0, c1 int) cand {
	hi := s.eff(r, c1)
	best := worst()
	for j := c0; j < hi; j++ {
		v := s.a.At(r, j)
		if v < best.val || best.col == -1 {
			best = cand{col: j, val: v}
		}
	}
	return best
}

func intSqrt(x int) int {
	r := int(math.Sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}
