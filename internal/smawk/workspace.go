package smawk

import (
	"sync"

	"monge/internal/scratch"
)

// workspace bundles the scratch arenas behind one sequential search: the
// SMAWK recursion's row/column/stack index slices and the staircase
// solver's candidate frames all come from here instead of per-level make.
// Workspaces are pooled, so back-to-back queries of the same shape run
// allocation-free after the first; the arena blocks persist across
// checkouts and are rewound, not freed.
//
// Discipline: every recursion level marks on entry and rewinds on exit;
// a callee's result slice is allocated BEFORE its mark so it survives
// into the caller, whose own rewind reclaims it after the merge.
type workspace struct {
	ints  scratch.Arena[int]
	cands scratch.Arena[cand]
}

type wsMark struct{ ints, cands scratch.Mark }

func (w *workspace) mark() wsMark { return wsMark{w.ints.Mark(), w.cands.Mark()} }

func (w *workspace) rewind(m wsMark) {
	w.ints.Rewind(m.ints)
	w.cands.Rewind(m.cands)
}

var wsPool = sync.Pool{New: func() any { return new(workspace) }}

func getWS() *workspace { return wsPool.Get().(*workspace) }

func putWS(w *workspace) {
	w.ints.Reset()
	w.cands.Reset()
	wsPool.Put(w)
}
