// Package scratch provides the allocation-recycling building blocks used
// by the simulators and the sequential searching kernels: a generic bump
// Arena with stack-discipline marks for recursion workspaces, and a
// generic slice FreeList for superstep buffers that are checked out at
// step start and returned at the barrier.
//
// Both containers trade a tiny amount of bookkeeping for steady-state
// freedom from the Go allocator: after a warm-up call at peak problem
// size, repeated runs of the same shape perform no heap allocation. They
// are deliberately not goroutine-safe — callers either own them outright
// (Arena inside a single recursion) or serialize access externally
// (FreeList behind the machine arena mutex).
package scratch

// Arena is a bump allocator over a list of geometrically growing blocks.
// Alloc returns zeroed scratch slices carved from the current block;
// Mark/Rewind give LIFO discipline so a recursive algorithm reclaims a
// whole frame at once when it returns. Block storage is never shrunk, so
// an arena that has seen its peak size stops allocating entirely.
type Arena[T any] struct {
	blocks [][]T
	bi     int // index of the block currently being bumped
	used   int // elements consumed from blocks[bi]
}

// Mark is a position in an Arena; Rewind(mark) frees every allocation
// made after the matching Mark call.
type Mark struct{ bi, used int }

// minBlock is the smallest block ever allocated; growth doubles from
// there, so the block list stays logarithmic in the peak footprint.
const minBlock = 1024

// Alloc returns a zeroed slice of length n with capacity exactly n, so a
// caller's append can never bleed into a neighbouring allocation.
func (a *Arena[T]) Alloc(n int) []T {
	if n == 0 {
		return nil
	}
	for {
		if a.bi < len(a.blocks) {
			if blk := a.blocks[a.bi]; len(blk)-a.used >= n {
				s := blk[a.used : a.used+n : a.used+n]
				a.used += n
				clear(s)
				return s
			}
			if a.bi+1 < len(a.blocks) {
				// The remainder of this block is abandoned until the next
				// Rewind below it; later blocks are larger, so the waste is
				// bounded by a constant factor.
				a.bi++
				a.used = 0
				continue
			}
		}
		size := minBlock
		if n := len(a.blocks); n > 0 {
			size = 2 * len(a.blocks[n-1])
		}
		if size < n {
			size = n
		}
		a.blocks = append(a.blocks, make([]T, size))
		a.bi = len(a.blocks) - 1
		a.used = 0
	}
}

// Mark returns the current allocation position.
func (a *Arena[T]) Mark() Mark { return Mark{a.bi, a.used} }

// Rewind frees everything allocated after m. Slices handed out above the
// mark must be dead; their storage is reissued (zeroed) by later Allocs.
func (a *Arena[T]) Rewind(m Mark) { a.bi, a.used = m.bi, m.used }

// Reset rewinds the arena to empty, retaining block storage for reuse.
func (a *Arena[T]) Reset() { a.bi, a.used = 0, 0 }

// Footprint reports the total element capacity held by the arena.
func (a *Arena[T]) Footprint() int {
	n := 0
	for _, b := range a.blocks {
		n += len(b)
	}
	return n
}

// FreeList is a LIFO recycler for equal-typed slices. Get prefers the
// most recently Put slice whose capacity covers the request (scanning at
// most scanLimit candidates so a pathological size mix stays O(1)), and
// Put retains at most listCap slices, dropping the excess for the
// garbage collector.
type FreeList[T any] struct {
	free [][]T

	// Hits, Misses and Bytes count checkout outcomes: a hit recycles a
	// retained slice (Bytes accumulates the recycled backing size), a miss
	// falls through to make. The machine arenas mirror these into the obs
	// counter site.
	Hits, Misses, Bytes int64
}

const (
	scanLimit = 16
	listCap   = 64
)

// Get returns a slice of length n, recycled when possible. The contents
// are NOT zeroed — callers that expose zero-value semantics must clear
// the slice themselves (the machine arenas do). The second result
// reports whether the slice was recycled.
func (f *FreeList[T]) Get(n int, elemSize uintptr) ([]T, bool) {
	for i, scanned := len(f.free)-1, 0; i >= 0 && scanned < scanLimit; i, scanned = i-1, scanned+1 {
		if s := f.free[i]; cap(s) >= n {
			last := len(f.free) - 1
			f.free[i] = f.free[last]
			f.free[last] = nil
			f.free = f.free[:last]
			f.Hits++
			f.Bytes += int64(n) * int64(elemSize)
			return s[:n], true
		}
	}
	f.Misses++
	return make([]T, n), false
}

// Put returns a slice to the free list. Nil and zero-capacity slices are
// ignored; beyond listCap the slice is dropped.
func (f *FreeList[T]) Put(s []T) {
	if cap(s) == 0 || len(f.free) >= listCap {
		return
	}
	f.free = append(f.free, s[:0])
}

// Len reports how many slices are currently retained.
func (f *FreeList[T]) Len() int { return len(f.free) }
