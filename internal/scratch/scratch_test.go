package scratch

import (
	"testing"
	"unsafe"
)

func TestArenaStackDiscipline(t *testing.T) {
	var a Arena[int]
	outer := a.Alloc(10)
	for i := range outer {
		outer[i] = i
	}
	m := a.Mark()
	inner := a.Alloc(2000) // forces a second block
	for i := range inner {
		inner[i] = -1
	}
	a.Rewind(m)
	again := a.Alloc(5)
	for _, v := range again {
		if v != 0 {
			t.Fatalf("Alloc after Rewind not zeroed: %v", again)
		}
	}
	for i, v := range outer {
		if v != i {
			t.Fatalf("outer allocation clobbered at %d: %d", i, v)
		}
	}
}

func TestArenaCapExact(t *testing.T) {
	var a Arena[int]
	s := a.Alloc(7)
	if cap(s) != 7 {
		t.Fatalf("cap = %d, want 7", cap(s))
	}
	t2 := a.Alloc(3)
	s = append(s, 99) // must reallocate, not overlap t2
	s[len(s)-1] = 42
	for _, v := range t2 {
		if v != 0 {
			t.Fatalf("append bled into neighbour: %v", t2)
		}
	}
}

func TestArenaSteadyStateNoAlloc(t *testing.T) {
	var a Arena[int]
	run := func() {
		m := a.Mark()
		for i := 0; i < 20; i++ {
			s := a.Alloc(100)
			s[0] = i
		}
		a.Rewind(m)
	}
	run() // warm-up grows the blocks
	run()
	allocs := testing.AllocsPerRun(50, run)
	if allocs != 0 {
		t.Fatalf("steady-state Arena.Alloc allocates: %v allocs/run", allocs)
	}
}

func TestFreeListRecycles(t *testing.T) {
	var f FreeList[int]
	elem := unsafe.Sizeof(int(0))
	s, hit := f.Get(8, elem)
	if hit {
		t.Fatal("first Get reported a hit")
	}
	f.Put(s)
	s2, hit := f.Get(4, elem)
	if !hit {
		t.Fatal("Get after Put missed")
	}
	if len(s2) != 4 || cap(s2) < 8 {
		t.Fatalf("recycled slice len=%d cap=%d", len(s2), cap(s2))
	}
	if f.Hits != 1 || f.Misses != 1 || f.Bytes != int64(4*elem) {
		t.Fatalf("counters hits=%d misses=%d bytes=%d", f.Hits, f.Misses, f.Bytes)
	}
}

func TestFreeListTooSmallIsMiss(t *testing.T) {
	var f FreeList[byte]
	s, _ := f.Get(4, 1)
	f.Put(s)
	_, hit := f.Get(1024, 1)
	if hit {
		t.Fatal("undersized slice reported as hit")
	}
	if f.Len() != 1 {
		t.Fatalf("undersized slice evicted: len=%d", f.Len())
	}
}
