// Package geom implements the paper's geometric applications:
//
//   - the introductory Figure 1.1 example: all-farthest-neighbors between
//     the two chains of a split convex polygon, an inverse-Monge row-maxima
//     problem solved sequentially in Theta(m+n) and in parallel on the
//     simulated PRAM;
//   - application 3: the nearest-visible-, nearest-invisible-,
//     farthest-visible-, and farthest-invisible-neighbors problems for two
//     non-intersecting convex polygons, where the invisible cases reduce to
//     staircase-Monge row minima/maxima (Theorem 2.3).
//
// The visibility structure is computed exactly; the staircase reductions
// are applied to the mask families whose staircase shape the code verifies
// (the standard facing-chains configuration), with a per-row exact
// fallback that keeps the answers correct on any input and is counted so
// benchmarks can report coverage.
package geom

import (
	"math"

	"monge/internal/core"
	"monge/internal/marray"
	"monge/internal/pram"
	"monge/internal/smawk"
)

// Point is a planar point.
type Point = marray.Point

// AllFarthestNeighbors solves the Figure 1.1 problem sequentially: given
// the two chains P and Q of a convex polygon (both counterclockwise), it
// returns for every vertex of P the index of the farthest vertex of Q.
// Theta(m+n) time via SMAWK row maxima on the inverse-Monge distance
// array.
func AllFarthestNeighbors(p, q []Point) []int {
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	return smawk.RowMaxima(marray.ChainDistanceMatrix(p, q))
}

// AllFarthestNeighborsPRAM is the parallel version on the given machine.
func AllFarthestNeighborsPRAM(mach *pram.Machine, p, q []Point) []int {
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	return core.RowMaxima(mach, marray.ChainDistanceMatrix(p, q))
}

// AllFarthestNeighborsBrute is the quadratic reference.
func AllFarthestNeighborsBrute(p, q []Point) []int {
	out := make([]int, len(p))
	for i := range p {
		best, bv := 0, -1.0
		for j := range q {
			if d := marray.Dist(p[i], q[j]); d > bv {
				best, bv = j, d
			}
		}
		out[i] = best
	}
	return out
}

// Polygon is a convex polygon given by its vertices in counterclockwise
// order.
type Polygon []Point

// cross returns the z-component of (b-a) x (c-a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// IsConvexCCW reports whether the polygon is strictly convex and
// counterclockwise.
func (pg Polygon) IsConvexCCW() bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if cross(pg[i], pg[(i+1)%n], pg[(i+2)%n]) <= 0 {
			return false
		}
	}
	return true
}

// Contains reports whether x lies strictly inside the polygon.
func (pg Polygon) Contains(x Point) bool {
	n := len(pg)
	for i := 0; i < n; i++ {
		if cross(pg[i], pg[(i+1)%n], x) <= 0 {
			return false
		}
	}
	return true
}

// segIntersectsInterior reports whether the open segment (a, b) intersects
// the interior of the polygon. Exact for strictly convex polygons: it
// clips the segment parameter interval against every edge's half-plane and
// checks whether a nonempty open sub-interval survives.
func (pg Polygon) segIntersectsInterior(a, b Point) bool {
	// Points of segment: a + t*(b-a), t in [0,1]. Interior of the convex
	// polygon = intersection of open half-planes cross(e_i, e_{i+1}, x)>0.
	lo, hi := 0.0, 1.0
	n := len(pg)
	for i := 0; i < n; i++ {
		p0, p1 := pg[i], pg[(i+1)%n]
		// f(t) = cross(p0, p1, a + t*(b-a)) is affine in t.
		fa := cross(p0, p1, a)
		fb := cross(p0, p1, b)
		df := fb - fa
		const eps = 1e-12
		if math.Abs(df) < eps {
			if fa <= eps {
				return false // entire segment outside this half-plane
			}
			continue
		}
		t := -fa / df
		if df > 0 {
			// inside for t > t0
			if t > lo {
				lo = t
			}
		} else {
			if t < hi {
				hi = t
			}
		}
		if lo >= hi {
			return false
		}
	}
	// Require a genuinely interior sub-interval (not just touching).
	const tiny = 1e-9
	return hi-lo > tiny
}

// Visible reports whether vertex q is visible from point x given convex
// polygonal obstacles: the open segment must avoid every interior.
func Visible(x, q Point, obstacles []Polygon) bool {
	for _, ob := range obstacles {
		if ob.segIntersectsInterior(x, q) {
			return false
		}
	}
	return true
}

// NeighborKind selects which of the four application-3 problems to solve.
type NeighborKind int

const (
	// NearestVisible finds, per vertex of P, the nearest visible vertex of Q.
	NearestVisible NeighborKind = iota
	// NearestInvisible finds the nearest invisible vertex of Q.
	NearestInvisible
	// FarthestVisible finds the farthest visible vertex of Q.
	FarthestVisible
	// FarthestInvisible finds the farthest invisible vertex of Q.
	FarthestInvisible
)

// String names the problem.
func (k NeighborKind) String() string {
	switch k {
	case NearestVisible:
		return "nearest-visible"
	case NearestInvisible:
		return "nearest-invisible"
	case FarthestVisible:
		return "farthest-visible"
	case FarthestInvisible:
		return "farthest-invisible"
	}
	return "unknown"
}

// NeighborResult carries the answers plus solver statistics.
type NeighborResult struct {
	// Index[i] is the answer vertex of Q for vertex i of P, or -1 when the
	// relevant (in)visible set is empty.
	Index []int
	// StaircaseRows counts rows solved through the staircase-Monge
	// machinery; FallbackRows counts rows that needed the exact per-row
	// scan because their mask was not covered by the staircase families.
	StaircaseRows, FallbackRows int
}

// Neighbors solves one of the four neighbor problems for two chains p and
// q of one convex polygon (so that distances are inverse-Monge by the
// quadrangle inequality), with visibility blocked by the given convex
// obstacles. The mask of (in)visible pairs is decomposed into a prefix
// family and a suffix family; each family whose boundary vector is
// staircase-shaped (monotone) is searched with the staircase-Monge
// machinery of Theorem 2.3 on the given machine (mach == nil solves
// sequentially), and remaining rows fall back to exact scans.
func Neighbors(kind NeighborKind, mach *pram.Machine, p, q []Point, obstacles []Polygon) NeighborResult {
	m, n := len(p), len(q)
	out := NeighborResult{Index: make([]int, m)}
	if m == 0 || n == 0 {
		return out
	}
	wantVisible := kind == NearestVisible || kind == FarthestVisible
	nearest := kind == NearestVisible || kind == NearestInvisible

	// Exact mask: mask[i][j] == true when pair (i,j) participates.
	mask := make([][]bool, m)
	for i := range mask {
		mask[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			mask[i][j] = Visible(p[i], q[j], obstacles) == wantVisible
		}
	}

	dist := marray.ChainDistanceMatrix(p, q) // inverse-Monge

	// Decompose each row's mask into a prefix run and a suffix run; rows
	// whose mask is exactly prefix ∪ suffix (possibly empty) are eligible.
	prefixLen := make([]int, m) // mask true on [0, prefixLen)
	suffixLen := make([]int, m) // mask true on [n-suffixLen, n)
	eligible := make([]bool, m)
	for i := 0; i < m; i++ {
		a := 0
		for a < n && mask[i][a] {
			a++
		}
		b := 0
		for b < n-a && mask[i][n-1-b] {
			b++
		}
		covered := true
		for j := a; j < n-b; j++ {
			if mask[i][j] {
				covered = false
				break
			}
		}
		prefixLen[i], suffixLen[i], eligible[i] = a, b, covered
	}

	best := make([]float64, m)
	arg := make([]int, m)
	for i := range arg {
		arg[i] = -1
	}
	offer := func(i, j int, d float64) {
		if j < 0 {
			return
		}
		if arg[i] == -1 || (nearest && d < best[i]) || (!nearest && d > best[i]) {
			best[i], arg[i] = d, j
		}
	}

	// To apply the staircase-Monge row-minima machinery (Theorem 2.3) the
	// masked array must be Monge with a nonincreasing prefix boundary in
	// the transformed index space. The distance array is inverse-Monge, so
	// each (objective, mask family) pair fixes a transformation:
	//
	//   farthest + prefix masks:  negate            -> boundaries must be nonincreasing
	//   farthest + suffix masks:  negate + reverse rows and columns
	//                                               -> suffix lengths must be nondecreasing
	//   nearest + prefix masks:   reverse rows      -> boundaries must be nondecreasing
	//   nearest + suffix masks:   reverse columns   -> suffix lengths must be nonincreasing
	//
	// Eligible rows are batched into maximal runs with the required
	// monotonicity; everything else falls back to an exact scan.
	type run struct {
		rows   []int
		lenOf  []int
		suffix bool
	}
	buildStair := func(rn run) (marray.StairFunc, func(r int) int, func(j int) int) {
		k := len(rn.rows)
		revRows := (nearest && !rn.suffix) || (!nearest && rn.suffix)
		revCols := rn.suffix
		sign := 1.0
		if !nearest {
			sign = -1.0
		}
		rowAt := func(r int) int {
			if revRows {
				return rn.rows[k-1-r]
			}
			return rn.rows[r]
		}
		colAt := func(j int) int {
			if revCols {
				return n - 1 - j
			}
			return j
		}
		sub := marray.StairFunc{
			M: k, N: n,
			F: func(r, j int) float64 {
				return sign * dist.At(rowAt(r), colAt(j))
			},
			Bound: func(r int) int { return rn.lenOf[rowAt(r)] },
		}
		return sub, rowAt, colAt
	}
	var runs []run

	handled := make([]bool, m) // row fully covered by staircase families?
	prefHandled := make([]bool, m)
	sufHandled := make([]bool, m)

	batch := func(lenOf []int, suffix bool, mark []bool) {
		// required direction of the boundary sequence in ORIGINAL row order
		needNonInc := (!nearest && !suffix) || (nearest && suffix)
		i := 0
		for i < m {
			if !eligible[i] {
				i++
				continue
			}
			jEnd := i + 1
			for jEnd < m && eligible[jEnd] {
				ok := lenOf[jEnd] <= lenOf[jEnd-1]
				if !needNonInc {
					ok = lenOf[jEnd] >= lenOf[jEnd-1]
				}
				if !ok {
					break
				}
				jEnd++
			}
			rows := make([]int, 0, jEnd-i)
			for r := i; r < jEnd; r++ {
				rows = append(rows, r)
				mark[r] = true
			}
			runs = append(runs, run{rows: rows, lenOf: lenOf, suffix: suffix})
			i = jEnd
		}
	}
	batch(prefixLen, false, prefHandled)
	batch(suffixLen, true, sufHandled)

	// The runs are independent searches; on a machine they execute on
	// parallel processor groups (the paper's allocation argument), so the
	// charged time is the slowest run, not the sum.
	results := make([][]int, len(runs))
	if mach != nil {
		procs := make([]int, len(runs))
		for b, rn := range runs {
			procs[b] = len(rn.rows) + n
		}
		mach.ParallelDo(procs, func(b int, sub *pram.Machine) {
			stair, _, _ := buildStair(runs[b])
			results[b] = core.StaircaseRowMinima(sub, stair)
		})
	} else {
		for b := range runs {
			stair, _, _ := buildStair(runs[b])
			results[b] = smawk.StaircaseRowMinima(stair)
		}
	}
	for b, rn := range runs {
		_, rowAt, colAt := buildStair(rn)
		for r, j := range results[b] {
			out.StaircaseRows++
			if j >= 0 {
				i, jj := rowAt(r), colAt(j)
				offer(i, jj, dist.At(i, jj))
			}
		}
	}
	for i := 0; i < m; i++ {
		handled[i] = eligible[i] && prefHandled[i] && sufHandled[i]
	}

	// Fallback for rows not fully covered.
	for i := 0; i < m; i++ {
		if handled[i] {
			continue
		}
		out.FallbackRows++
		arg[i] = -1
		for j := 0; j < n; j++ {
			if mask[i][j] {
				offer(i, j, dist.At(i, j))
			}
		}
	}
	copy(out.Index, arg)
	return out
}

// NeighborsBrute solves any of the four problems by exhaustive scan,
// for validation.
func NeighborsBrute(kind NeighborKind, p, q []Point, obstacles []Polygon) []int {
	wantVisible := kind == NearestVisible || kind == FarthestVisible
	nearest := kind == NearestVisible || kind == NearestInvisible
	out := make([]int, len(p))
	for i := range p {
		bestJ := -1
		bestV := 0.0
		for j := range q {
			if Visible(p[i], q[j], obstacles) != wantVisible {
				continue
			}
			d := marray.Dist(p[i], q[j])
			if bestJ == -1 || (nearest && d < bestV) || (!nearest && d > bestV) {
				bestJ, bestV = j, d
			}
		}
		out[i] = bestJ
	}
	return out
}
