package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"monge/internal/marray"
	"monge/internal/pram"
)

func TestAllFarthestNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		m, n := 2+rng.Intn(40), 2+rng.Intn(40)
		p, q := marray.ConvexChainPair(rng, m, n)
		got := AllFarthestNeighbors(p, q)
		want := AllFarthestNeighborsBrute(p, q)
		for i := range got {
			if got[i] != want[i] {
				// allow value ties
				if marray.Dist(p[i], q[got[i]]) != marray.Dist(p[i], q[want[i]]) {
					t.Fatalf("trial %d row %d: got %d want %d", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAllFarthestNeighborsPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		m, n := 2+rng.Intn(30), 2+rng.Intn(30)
		p, q := marray.ConvexChainPair(rng, m, n)
		mach := pram.New(pram.CRCW, m+n)
		got := AllFarthestNeighborsPRAM(mach, p, q)
		want := AllFarthestNeighborsBrute(p, q)
		for i := range got {
			if got[i] != want[i] && marray.Dist(p[i], q[got[i]]) != marray.Dist(p[i], q[want[i]]) {
				t.Fatalf("trial %d row %d mismatch", trial, i)
			}
		}
		if mach.Time() == 0 {
			t.Fatal("PRAM version should charge time")
		}
	}
}

func TestAllFarthestNeighborsEmpty(t *testing.T) {
	if AllFarthestNeighbors(nil, nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestPolygonPredicates(t *testing.T) {
	sq := Polygon{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	if !sq.IsConvexCCW() {
		t.Fatal("square should be convex CCW")
	}
	cw := Polygon{{X: 0, Y: 0}, {X: 0, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 0}}
	if cw.IsConvexCCW() {
		t.Fatal("clockwise square should be rejected")
	}
	if !sq.Contains(Point{X: 1, Y: 1}) {
		t.Fatal("center should be inside")
	}
	if sq.Contains(Point{X: 3, Y: 1}) || sq.Contains(Point{X: 2, Y: 1}) {
		t.Fatal("outside/boundary points should not be strictly inside")
	}
}

func TestSegIntersectsInterior(t *testing.T) {
	sq := Polygon{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	if !sq.segIntersectsInterior(Point{X: -1, Y: 1}, Point{X: 3, Y: 1}) {
		t.Fatal("crossing segment must intersect")
	}
	if sq.segIntersectsInterior(Point{X: -1, Y: 3}, Point{X: 3, Y: 3}) {
		t.Fatal("segment above must not intersect")
	}
	if sq.segIntersectsInterior(Point{X: -1, Y: 2}, Point{X: 3, Y: 2}) {
		t.Fatal("tangent segment along the top edge must not count as interior")
	}
	// Segment ending on the boundary from outside.
	if sq.segIntersectsInterior(Point{X: -1, Y: 1}, Point{X: 0, Y: 1}) {
		t.Fatal("segment reaching the boundary must not count")
	}
	// Segment through the interior ending on the far boundary.
	if !sq.segIntersectsInterior(Point{X: -1, Y: 1}, Point{X: 2, Y: 1}) {
		t.Fatal("segment passing through must count")
	}
}

func TestObstructedChainsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m, n := 4+rng.Intn(20), 4+rng.Intn(20)
		p, q, ob := ObstructedChains(rng, m, n)
		if len(p) != m || len(q) != n {
			t.Fatal("chain sizes wrong")
		}
		if !ob.IsConvexCCW() {
			t.Fatal("obstacle must be convex CCW")
		}
		for _, pt := range append(append([]Point{}, p...), q...) {
			if ob.Contains(pt) {
				t.Fatal("obstacle must not contain chain vertices")
			}
		}
		// Chains of one convex polygon: distances are inverse-Monge.
		if !marray.IsInverseMonge(marray.ChainDistanceMatrix(p, q)) {
			t.Fatal("chain distances must be inverse-Monge")
		}
	}
}

func sameAnswers(t *testing.T, kind NeighborKind, p, q []Point, got, want []int) {
	t.Helper()
	for i := range got {
		if got[i] == want[i] {
			continue
		}
		if got[i] == -1 || want[i] == -1 {
			t.Fatalf("%v row %d: got %d want %d", kind, i, got[i], want[i])
		}
		dg := marray.Dist(p[i], q[got[i]])
		dw := marray.Dist(p[i], q[want[i]])
		if math.Abs(dg-dw) > 1e-9 {
			t.Fatalf("%v row %d: got %d (%.6f) want %d (%.6f)", kind, i, got[i], dg, want[i], dw)
		}
	}
}

func TestNeighborsAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	kinds := []NeighborKind{NearestVisible, NearestInvisible, FarthestVisible, FarthestInvisible}
	staircaseUses, fallbacks := 0, 0
	for trial := 0; trial < 25; trial++ {
		p, q, ob := ObstructedChains(rng, 4+rng.Intn(25), 4+rng.Intn(25))
		obs := []Polygon{ob}
		for _, kind := range kinds {
			res := Neighbors(kind, nil, p, q, obs)
			want := NeighborsBrute(kind, p, q, obs)
			sameAnswers(t, kind, p, q, res.Index, want)
			staircaseUses += res.StaircaseRows
			fallbacks += res.FallbackRows
		}
	}
	if staircaseUses == 0 {
		t.Fatal("staircase path never fired on the standard configuration")
	}
	t.Logf("staircase rows: %d, fallback rows: %d", staircaseUses, fallbacks)
}

func TestNeighborsOnPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		p, q, ob := ObstructedChains(rng, 4+rng.Intn(20), 4+rng.Intn(20))
		obs := []Polygon{ob}
		for _, kind := range []NeighborKind{NearestInvisible, FarthestInvisible} {
			mach := pram.New(pram.CRCW, len(p)+len(q))
			res := Neighbors(kind, mach, p, q, obs)
			want := NeighborsBrute(kind, p, q, obs)
			sameAnswers(t, kind, p, q, res.Index, want)
		}
	}
}

func TestNeighborsEmpty(t *testing.T) {
	res := Neighbors(NearestVisible, nil, nil, nil, nil)
	if len(res.Index) != 0 {
		t.Fatal("empty input should give empty result")
	}
}

func TestNeighborKindString(t *testing.T) {
	names := map[NeighborKind]string{
		NearestVisible:    "nearest-visible",
		NearestInvisible:  "nearest-invisible",
		FarthestVisible:   "farthest-visible",
		FarthestInvisible: "farthest-invisible",
		NeighborKind(9):   "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d: %q != %q", k, k.String(), want)
		}
	}
}

func TestQuickNeighbors(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q, ob := ObstructedChains(rng, 4+rng.Intn(15), 4+rng.Intn(15))
		obs := []Polygon{ob}
		kind := NeighborKind(rng.Intn(4))
		res := Neighbors(kind, nil, p, q, obs)
		want := NeighborsBrute(kind, p, q, obs)
		for i := range want {
			if res.Index[i] != want[i] {
				if res.Index[i] == -1 || want[i] == -1 {
					return false
				}
				if math.Abs(marray.Dist(p[i], q[res.Index[i]])-marray.Dist(p[i], q[want[i]])) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Fatal(err)
	}
}
