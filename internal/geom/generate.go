package geom

import (
	"math/rand"

	"monge/internal/marray"
)

// ObstructedChains generates the workload for the neighbor problems of
// application 3: a convex polygon split into chains P (m vertices) and Q
// (n vertices), plus a small convex occluder placed strictly inside the
// hull near the cut between the chains, so that from each vertex of P a
// boundary-anchored arc of Q is hidden.
//
// Substitution note (see DESIGN.md): the paper poses the problem for two
// non-intersecting convex polygons and omits the reduction's details. The
// array structure its algorithm relies on -- an inverse-Monge distance
// array (quadrangle inequality on points in convex position) whose blocked
// entries form a staircase -- is exactly reproduced by this configuration;
// the two-polygon chain-splitting case analysis is not reconstructed.
func ObstructedChains(rng *rand.Rand, m, n int) (p, q []Point, obstacle Polygon) {
	pts := marray.ConvexPolygon(rng, m+n)
	p, q = pts[:m], pts[m:]
	// Hull centroid.
	var cx, cy float64
	for _, pt := range pts {
		cx += pt.X
		cy += pt.Y
	}
	cx /= float64(m + n)
	cy /= float64(m + n)
	// Place the occluder between the cut edge (p[m-1], q[0]) and the
	// centroid, scaled down until it contains no chain vertex.
	mid := Point{X: (p[m-1].X + q[0].X) / 2, Y: (p[m-1].Y + q[0].Y) / 2}
	ox := mid.X + 0.45*(cx-mid.X)
	oy := mid.Y + 0.45*(cy-mid.Y)
	base := marray.ConvexPolygon(rng, 3+rng.Intn(5))
	var bx, by float64
	for _, b := range base {
		bx += b.X
		by += b.Y
	}
	bx /= float64(len(base))
	by /= float64(len(base))
	for scale := 0.30; scale > 0.001; scale *= 0.6 {
		obstacle = make(Polygon, len(base))
		for i, b := range base {
			obstacle[i] = Point{X: ox + scale*(b.X-bx), Y: oy + scale*(b.Y-by)}
		}
		ok := true
		for _, pt := range pts {
			if obstacle.Contains(pt) {
				ok = false
				break
			}
		}
		if ok && obstacle.IsConvexCCW() {
			return p, q, obstacle
		}
	}
	// Degenerate fallback: a tiny triangle at the chosen center.
	obstacle = Polygon{
		{X: ox - 0.01, Y: oy - 0.01},
		{X: ox + 0.01, Y: oy - 0.01},
		{X: ox, Y: oy + 0.01},
	}
	return p, q, obstacle
}
