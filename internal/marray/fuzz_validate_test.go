package marray

import (
	"errors"
	"math/rand"
	"testing"

	"monge/internal/merr"
)

// bruteMongeByDefinition checks the quadruple-inequality definition
// directly: a[i,j] + a[k,l] <= a[i,l] + a[k,j] for all i < k, j < l.
// O(m^2 n^2), exact arithmetic on integer-valued inputs.
func bruteMongeByDefinition(a Matrix) bool {
	m, n := a.Rows(), a.Cols()
	for i := 0; i < m; i++ {
		for k := i + 1; k < m; k++ {
			for j := 0; j < n; j++ {
				for l := j + 1; l < n; l++ {
					if a.At(i, j)+a.At(k, l) > a.At(i, l)+a.At(k, j) {
						return false
					}
				}
			}
		}
	}
	return true
}

// FuzzValidatorAgreesWithDefinition fuzzes the boundary validators
// against the quadruple-inequality definition on integer-valued arrays
// (exact float64 arithmetic, so the adjacent-minor characterization the
// full validator uses must agree with the definition exactly):
//
//   - CheckMonge accepts iff the definition holds;
//   - CheckMongeSampled never rejects a true Monge array (it is a
//     screen: accepting proves nothing, rejecting must be sound);
//   - a corrupted array is rejected by the full validator with the typed
//     ErrNotMonge sentinel.
func FuzzValidatorAgreesWithDefinition(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5), uint8(0), false)
	f.Add(int64(2), uint8(2), uint8(2), uint8(3), true)
	f.Add(int64(99), uint8(13), uint8(7), uint8(200), true)
	f.Fuzz(func(t *testing.T, seed int64, m8, n8 uint8, corrupt uint8, bigSpread bool) {
		m := 2 + int(m8%14)
		n := 2 + int(n8%14)
		spread := 3
		if bigSpread {
			spread = 60
		}
		rng := rand.New(rand.NewSource(seed))
		a := RandomMongeInt(rng, m, n, spread)

		if corrupt%4 != 0 {
			// Raise one interior-minor corner enough to break its minor:
			// the array is then non-Monge by definition.
			i := int(corrupt) % (m - 1)
			j := int(corrupt>>4) % (n - 1)
			a.Set(i, j, a.At(i, j)+1e6)
		}

		def := bruteMongeByDefinition(a)
		err := CheckMonge(a)
		if def && err != nil {
			t.Fatalf("definition holds but CheckMonge rejects: %v", err)
		}
		if !def {
			if err == nil {
				t.Fatal("definition violated but CheckMonge accepts")
			}
			if !errors.Is(err, merr.ErrNotMonge) {
				t.Fatalf("CheckMonge error %v must match ErrNotMonge", err)
			}
		}
		if def {
			if serr := CheckMongeSampled(a); serr != nil {
				t.Fatalf("sampled validator rejected a true Monge array: %v", serr)
			}
		}

		// The inverse validators must agree on the negated array: negation
		// maps Monge to inverse-Monge exactly.
		neg := Negate(a)
		if def != (CheckInverseMonge(neg) == nil) {
			t.Fatal("CheckInverseMonge(−a) disagrees with CheckMonge(a)")
		}
		if def {
			if serr := CheckInverseMongeSampled(neg); serr != nil {
				t.Fatalf("sampled inverse validator rejected a true inverse-Monge array: %v", serr)
			}
		}
	})
}

// FuzzStaircaseValidatorSound fuzzes the staircase screen: it must never
// reject an array drawn from the staircase-Monge generator, and the
// blocked pattern it accepts must be a genuine staircase.
func FuzzStaircaseValidatorSound(f *testing.F) {
	f.Add(int64(3), uint8(6), uint8(6))
	f.Add(int64(17), uint8(2), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, m8, n8 uint8) {
		m := 2 + int(m8%14)
		n := 2 + int(n8%14)
		rng := rand.New(rand.NewSource(seed))
		a := RandomStaircaseMongeInt(rng, m, n, 5)
		if err := CheckStaircaseMonge(a); err != nil {
			t.Fatalf("full staircase screen rejected a generated staircase-Monge array: %v", err)
		}
		if err := CheckStaircaseMongeSampled(a); err != nil {
			t.Fatalf("sampled staircase screen rejected a generated staircase-Monge array: %v", err)
		}
	})
}
