package marray

// Tile-memoized evaluation for Func-backed matrices.
//
// The PRAM and network algorithms re-evaluate implicit entries a[i,j]
// many times across a query's supersteps (sampled-row recursions revisit
// the same columns, staircase decompositions re-probe boundary regions),
// and in the repeated-query regime of the serving layer that cost is paid
// per superstep rather than once. A TileCache turns any Matrix into a
// memoized view: entries are computed a whole power-of-two tile at a
// time, tiles live in a fixed-size direct-mapped slot table, and a
// per-slot mutex makes the fill single-flight — when several goroutines
// of one superstep race for a cold tile, exactly one computes it and the
// rest read the published result. The cache never stores stale data
// across queries: View bumps a generation stamp, so tiles of a previous
// matrix simply miss and are overwritten in place (no clearing pass).
//
// Dense matrices gain nothing from memoization (At is one bounds-checked
// load); callers should wrap only function-backed inputs — the serving
// layer's wrapCached does exactly that type test.

import (
	"sync"
	"sync/atomic"
)

const (
	// tileBits is lg of the tile side: 8x8 tiles, 64 entries, 512 B of
	// values per tile — small enough that a partially used tile wastes
	// little fill work, large enough to amortize the slot probe.
	tileBits = 3
	tileSide = 1 << tileBits
	tileMask = tileSide - 1

	// DefaultTiles is the slot count used when a caller passes a
	// non-positive capacity: 2048 tiles ≈ 1.1 MiB of cached values,
	// covering a 360x360 implicit matrix entirely.
	DefaultTiles = 2048

	// TileSide is the exported tile side length, for callers sizing a
	// cache to cover a given matrix shape.
	TileSide = tileSide
)

// tile is one filled block of entries. ti/tj are the tile coordinates
// (i>>tileBits, j>>tileBits) and gen the View generation that filled it;
// a slot hit requires all three to match.
type tile struct {
	gen    uint64
	ti, tj int32
	vals   [tileSide * tileSide]float64
}

// slot is one direct-mapped cache line: the published tile plus the
// single-flight fill lock.
type slot struct {
	mu  sync.Mutex
	cur atomic.Pointer[tile]
}

// TileCache is a fixed-size memoization arena for matrix entries. It is
// safe for concurrent use; one cache should be owned by one serving
// shard (worker) so its working set tracks that shard's queries. The
// zero value is not usable; create caches with NewTileCache.
type TileCache struct {
	mask   uint32
	slots  []slot
	gen    atomic.Uint64
	hits   atomic.Int64
	misses atomic.Int64
}

// NewTileCache returns a cache with capacity for at least tiles tiles,
// rounded up to a power of two (DefaultTiles when tiles <= 0).
func NewTileCache(tiles int) *TileCache {
	if tiles <= 0 {
		tiles = DefaultTiles
	}
	cap := 1
	for cap < tiles {
		cap <<= 1
	}
	return &TileCache{mask: uint32(cap - 1), slots: make([]slot, cap)}
}

// Hits returns the number of probes served from a filled tile.
func (c *TileCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of probes that filled (or re-filled) a tile.
func (c *TileCache) Misses() int64 { return c.misses.Load() }

// View returns a memoized view of a. Each call starts a new generation,
// invalidating every tile of previous views without touching them, so a
// long-lived cache can be re-bound to each query's matrix for free.
// The view preserves the Staircase interface: wrapping a staircase
// matrix keeps Boundary (and therefore the staircase algorithms' blocked
// -region structure) intact, while At — including the +Inf entries — is
// served through the cache.
func (c *TileCache) View(a Matrix) Matrix {
	v := cachedView{c: c, a: a, gen: c.gen.Add(1)}
	if s, ok := a.(Staircase); ok {
		return cachedStair{cachedView: v, s: s}
	}
	return v
}

// cachedView is the Matrix facade over one (cache, matrix, generation)
// binding.
type cachedView struct {
	c   *TileCache
	a   Matrix
	gen uint64
}

// Rows returns the number of rows of the wrapped matrix.
func (v cachedView) Rows() int { return v.a.Rows() }

// Cols returns the number of columns of the wrapped matrix.
func (v cachedView) Cols() int { return v.a.Cols() }

// At returns the wrapped entry, computing its whole tile on first touch.
func (v cachedView) At(i, j int) float64 {
	ti, tj := int32(i>>tileBits), int32(j>>tileBits)
	h := uint32(ti)*2654435761 ^ uint32(tj)*2246822519
	s := &v.c.slots[h&v.c.mask]
	if t := s.cur.Load(); t != nil && t.gen == v.gen && t.ti == ti && t.tj == tj {
		v.c.hits.Add(1)
		return t.vals[(i&tileMask)<<tileBits|(j&tileMask)]
	}
	return v.fill(s, i, j, ti, tj)
}

// fill computes the tile containing (i, j) under the slot's single-flight
// lock and publishes it, then answers the probe. A goroutine that lost
// the race finds the tile already current and reads it as a hit.
func (v cachedView) fill(s *slot, i, j int, ti, tj int32) float64 {
	s.mu.Lock()
	if t := s.cur.Load(); t != nil && t.gen == v.gen && t.ti == ti && t.tj == tj {
		s.mu.Unlock()
		v.c.hits.Add(1)
		return t.vals[(i&tileMask)<<tileBits|(j&tileMask)]
	}
	nt := &tile{gen: v.gen, ti: ti, tj: tj}
	iLo, jLo := int(ti)<<tileBits, int(tj)<<tileBits
	iHi, jHi := iLo+tileSide, jLo+tileSide
	if m := v.a.Rows(); iHi > m {
		iHi = m
	}
	if n := v.a.Cols(); jHi > n {
		jHi = n
	}
	for ii := iLo; ii < iHi; ii++ {
		row := nt.vals[(ii-iLo)<<tileBits:]
		for jj := jLo; jj < jHi; jj++ {
			row[jj-jLo] = v.a.At(ii, jj)
		}
	}
	s.cur.Store(nt)
	s.mu.Unlock()
	v.c.misses.Add(1)
	return nt.vals[(i&tileMask)<<tileBits|(j&tileMask)]
}

// cachedStair is cachedView for staircase matrices: the boundary is
// forwarded so the view still satisfies Staircase.
type cachedStair struct {
	cachedView
	s Staircase
}

// Boundary returns the wrapped matrix's first blocked column of row i.
func (v cachedStair) Boundary(i int) int { return v.s.Boundary(i) }
