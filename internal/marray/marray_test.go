package marray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 0, 1)
	d.Set(1, 2, 7)
	if d.Rows() != 2 || d.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", d.Rows(), d.Cols())
	}
	if d.At(0, 0) != 1 || d.At(1, 2) != 7 || d.At(0, 1) != 0 {
		t.Fatalf("unexpected entries: %v %v %v", d.At(0, 0), d.At(1, 2), d.At(0, 1))
	}
	r := d.Row(1)
	if len(r) != 3 || r[2] != 7 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 99
	if d.At(1, 0) == 99 {
		t.Fatal("Row must return a copy")
	}
}

func TestFromRowsAndMaterialize(t *testing.T) {
	d := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if d.Rows() != 3 || d.Cols() != 2 || d.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %v", d)
	}
	f := Func{M: 3, N: 2, F: func(i, j int) float64 { return float64(10*i + j) }}
	m := Materialize(f)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != f.At(i, j) {
				t.Fatalf("Materialize mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRows should panic on ragged input")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestNewDenseNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense should panic on negative dims")
		}
	}()
	NewDense(-1, 2)
}

func TestAdapters(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := Transpose(a)
	if tr.Rows() != 3 || tr.Cols() != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("Transpose wrong")
	}
	if Transpose(tr) != Matrix(a) {
		t.Fatal("double Transpose should unwrap")
	}
	ng := Negate(a)
	if ng.At(1, 2) != -6 {
		t.Fatal("Negate wrong")
	}
	if Negate(ng) != Matrix(a) {
		t.Fatal("double Negate should unwrap")
	}
	rc := ReverseCols(a)
	if rc.At(0, 0) != 3 || rc.At(1, 2) != 4 {
		t.Fatal("ReverseCols wrong")
	}
	if ReverseCols(rc) != Matrix(a) {
		t.Fatal("double ReverseCols should unwrap")
	}
	rr := ReverseRows(a)
	if rr.At(0, 0) != 4 || rr.At(1, 2) != 3 {
		t.Fatal("ReverseRows wrong")
	}
	if ReverseRows(rr) != Matrix(a) {
		t.Fatal("double ReverseRows should unwrap")
	}
}

func TestWindow(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	w := Window(a, 1, 1, 2, 2)
	if w.Rows() != 2 || w.Cols() != 2 || w.At(0, 0) != 5 || w.At(1, 1) != 9 {
		t.Fatal("Window wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Window should panic")
		}
	}()
	Window(a, 2, 2, 2, 2)
}

func TestRowColSelection(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := RowsOf(a, []int{0, 2})
	if r.Rows() != 2 || r.At(1, 0) != 7 {
		t.Fatal("RowsOf wrong")
	}
	c := ColsOf(a, []int{2, 0})
	if c.Cols() != 2 || c.At(0, 0) != 3 || c.At(1, 1) != 4 {
		t.Fatal("ColsOf wrong")
	}
	idx := []int{0, 2}
	v := RowsOf(a, idx)
	idx[0] = 1 // mutation after the call must not affect the view
	if v.At(0, 0) != 1 {
		t.Fatal("RowsOf must copy its index slice")
	}
}

func TestSampleRows(t *testing.T) {
	a := Func{M: 10, N: 1, F: func(i, j int) float64 { return float64(i) }}
	s := SampleRows(a, 3)
	if s.Rows() != 3 {
		t.Fatalf("SampleRows rows = %d, want 3", s.Rows())
	}
	// every 3rd row, one-based: rows 2, 5, 8 (zero-based).
	for i, want := range []float64{2, 5, 8} {
		if s.At(i, 0) != want {
			t.Fatalf("sampled row %d = %v, want %v", i, s.At(i, 0), want)
		}
	}
}

func TestStairFuncAndBoundary(t *testing.T) {
	s := StairFunc{
		M: 4, N: 5,
		F:     func(i, j int) float64 { return float64(i + j) },
		Bound: func(i int) int { return 4 - i },
	}
	if !math.IsInf(s.At(0, 4), 1) || s.At(0, 3) != 3 {
		t.Fatal("StairFunc blocking wrong")
	}
	if s.Boundary(2) != 2 {
		t.Fatal("Boundary wrong")
	}
	if BoundaryOf(s, 2) != 2 {
		t.Fatal("BoundaryOf should use Staircase fast path")
	}
	// BoundaryOf via binary search on a plain matrix.
	d := Materialize(s)
	for i := 0; i < 4; i++ {
		if got, want := BoundaryOf(d, i), 4-i; got != want {
			t.Fatalf("BoundaryOf(row %d) = %d, want %d", i, got, want)
		}
	}
	full := FromRows([][]float64{{1, 2}, {3, 4}})
	if BoundaryOf(full, 0) != 2 {
		t.Fatal("BoundaryOf on fully finite row should return Cols()")
	}
}

func TestMongePredicatesOnKnownArrays(t *testing.T) {
	a := Func{M: 5, N: 5, F: func(i, j int) float64 {
		return float64((i - j) * (i - j)) // convex in i-j, hence Monge
	}}
	if !IsMonge(a) {
		t.Fatal("(i-j)^2 should be Monge")
	}
	if !IsInverseMonge(Negate(a)) {
		t.Fatal("negation should be inverse-Monge")
	}
	if !IsInverseMonge(ReverseCols(a)) {
		t.Fatal("column reversal should turn Monge into inverse-Monge")
	}
	if !IsInverseMonge(ReverseRows(a)) {
		t.Fatal("row reversal should turn Monge into inverse-Monge")
	}
	// An anti-diagonal "bowl" violates the Monge condition: 10+10 > 0+0.
	notMonge := FromRows([][]float64{{10, 0}, {0, 10}})
	if IsMonge(notMonge) {
		t.Fatal("anti-diagonal bowl accepted as Monge")
	}
	if !IsInverseMonge(notMonge) {
		t.Fatal("anti-diagonal bowl is inverse-Monge and should be accepted")
	}
}

func TestRandomMongeIsMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		m, n := 1+rng.Intn(12), 1+rng.Intn(12)
		a := RandomMonge(rng, m, n)
		if !IsMonge(a) {
			t.Fatalf("RandomMonge(%d,%d) not Monge (trial %d)", m, n, trial)
		}
		if !IsTotallyMonotoneMin(a) {
			t.Fatalf("RandomMonge(%d,%d) not totally monotone for minima", m, n)
		}
		b := RandomInverseMonge(rng, m, n)
		if !IsInverseMonge(b) {
			t.Fatalf("RandomInverseMonge(%d,%d) not inverse-Monge", m, n)
		}
		if !IsTotallyMonotoneMax(b) {
			t.Fatalf("RandomInverseMonge(%d,%d) not totally monotone for maxima", m, n)
		}
	}
}

func TestRandomStaircaseMongeIsStaircaseMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := RandomStaircaseMonge(rng, m, n)
		if !IsStaircaseMonge(a) {
			t.Fatalf("RandomStaircaseMonge(%d,%d) invalid (trial %d)", m, n, trial)
		}
	}
}

func TestStaircasePatternRejectsBadPatterns(t *testing.T) {
	inf := Inf
	bad1 := FromRows([][]float64{
		{1, inf, 2}, // finite to the right of Inf
		{1, 1, 1},
	})
	if IsStaircasePattern(bad1) {
		t.Fatal("finite entry right of Inf accepted")
	}
	bad2 := FromRows([][]float64{
		{1, inf},
		{1, 1}, // row below has finite where row above blocked
	})
	if IsStaircasePattern(bad2) {
		t.Fatal("non-downward-closed pattern accepted")
	}
	good := FromRows([][]float64{
		{1, 2, inf},
		{1, inf, inf},
	})
	if !IsStaircasePattern(good) {
		t.Fatal("valid staircase rejected")
	}
}

func TestStaircaseMongeRejectsNonMongeFinitePart(t *testing.T) {
	inf := Inf
	// Minor rows (0,1) x cols (0,2): 0 + 50 <= 1*0 + 0 fails, so the finite
	// part is not Monge even though the Inf pattern is a valid staircase.
	f := FromRows([][]float64{
		{0, 1, 0},
		{0, 1, 50},
		{40, 1, inf},
	})
	if !IsStaircasePattern(f) {
		t.Fatal("pattern of f should be valid")
	}
	if IsStaircaseMonge(f) {
		t.Fatal("IsStaircaseMonge must reject a finite-minor violation")
	}
}

func TestComposite(t *testing.T) {
	d := FromRows([][]float64{{1, 2}, {3, 4}})
	e := FromRows([][]float64{{10, 20, 30}, {40, 50, 60}})
	c := NewComposite(d, e)
	if c.P() != 2 || c.Q() != 2 || c.R() != 3 {
		t.Fatalf("dims = %d,%d,%d", c.P(), c.Q(), c.R())
	}
	if c.At(1, 0, 2) != 3+30 {
		t.Fatalf("At(1,0,2) = %v", c.At(1, 0, 2))
	}
	tm := c.TubeMatrix(1, 2)
	if tm.Rows() != 1 || tm.Cols() != 2 || tm.At(0, 1) != 4+60 {
		t.Fatal("TubeMatrix wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewComposite should panic on dim mismatch")
		}
	}()
	NewComposite(d, FromRows([][]float64{{1}}))
}

func TestConvexPolygonIsConvexCCW(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(40)
		pts := ConvexPolygon(rng, n)
		if len(pts) != n {
			t.Fatalf("got %d points, want %d", len(pts), n)
		}
		for i := 0; i < n; i++ {
			a, b, c := pts[i], pts[(i+1)%n], pts[(i+2)%n]
			cross := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
			if cross <= 0 {
				t.Fatalf("not strictly convex CCW at %d (cross=%v)", i, cross)
			}
		}
	}
}

func TestChainDistanceMatrixInverseMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		m, n := 2+rng.Intn(15), 2+rng.Intn(15)
		p, q := ConvexChainPair(rng, m, n)
		a := ChainDistanceMatrix(p, q)
		if a.Rows() != m || a.Cols() != n {
			t.Fatal("dims wrong")
		}
		if !IsInverseMonge(a) {
			t.Fatalf("chain distance matrix not inverse-Monge (trial %d)", trial)
		}
	}
}

// Property: windows, row samples and increasing row/col selections of Monge
// arrays remain Monge.
func TestQuickMongeClosedUnderViews(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(10), 2+rng.Intn(10)
		a := RandomMonge(rng, m, n)
		i0, j0 := rng.Intn(m), rng.Intn(n)
		h, w := 1+rng.Intn(m-i0), 1+rng.Intn(n-j0)
		if !IsMonge(Window(a, i0, j0, h, w)) {
			return false
		}
		stride := 1 + rng.Intn(m)
		if a.Rows()/stride > 0 && !IsMonge(SampleRows(a, stride)) {
			return false
		}
		// random increasing row subset
		var rows []int
		for i := 0; i < m; i++ {
			if rng.Intn(2) == 0 {
				rows = append(rows, i)
			}
		}
		if len(rows) > 0 && !IsMonge(RowsOf(a, rows)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRandomStaircaseBoundaryMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		f := RandomStaircaseBoundary(rng, m, n)
		for i := 1; i < m; i++ {
			if f[i] > f[i-1] {
				t.Fatalf("boundary increases at %d: %v", i, f)
			}
			if f[i] < 0 || f[i] > n {
				t.Fatalf("boundary out of range: %v", f)
			}
		}
	}
}

func TestConvexGapMonge(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 30; trial++ {
		m, n := 2+rng.Intn(15), 2+rng.Intn(15)
		rows := make([]float64, m)
		cols := make([]float64, n)
		for i := range rows {
			rows[i] = rng.Float64() * 10
		}
		for j := range cols {
			cols[j] = rng.Float64() * 10
		}
		a := rng.Float64() * 3
		h := func(gap int) float64 { return a * float64(gap) * float64(gap) }
		g := ConvexGapMonge(rows, cols, h)
		if g.Rows() != m || g.Cols() != n {
			t.Fatal("dims wrong")
		}
		if !IsMonge(g) {
			t.Fatalf("trial %d: convex-gap array not Monge", trial)
		}
	}
}
