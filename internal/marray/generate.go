package marray

import (
	"math"
	"math/rand"
)

// RandomMonge returns a dense m x n Monge array built by the cumulative-sum
// construction: a[i,j] = r[i] + c[j] + sum_{k<=i, l<=j} q[k][l] with every
// q[k][l] <= 0. The cross difference of any 2x2 minor is then the sum of a
// rectangle of q values, so the Monge inequality holds with equality exactly
// when the rectangle is empty. r and c are arbitrary, which exercises
// searching code against non-monotone rows and columns.
func RandomMonge(rng *rand.Rand, m, n int) *Dense {
	d := NewDense(m, n)
	rowOff := make([]float64, m)
	colOff := make([]float64, n)
	for i := range rowOff {
		rowOff[i] = rng.Float64()*200 - 100
	}
	for j := range colOff {
		colOff[j] = rng.Float64()*200 - 100
	}
	// After processing row i, prefix[j] = sum_{k<=i, l<=j} q[k][l].
	prefix := make([]float64, n)
	for i := 0; i < m; i++ {
		acc := 0.0
		for j := 0; j < n; j++ {
			q := -rng.Float64() * 10 // q <= 0
			acc += q
			prefix[j] += acc
			d.Set(i, j, rowOff[i]+colOff[j]+prefix[j])
		}
	}
	return d
}

// RandomMongeInt returns a dense m x n Monge array with small integer
// entries, by the same cumulative-sum construction as RandomMonge with
// q[k][l] drawn from {0, -1, ..., -(spread-1)}. Integer sums are exact in
// float64 and collide often, so equal-value ties are plentiful — the input
// family that exercises leftmost-tie-breaking rules (the fuzz harness
// leans on it; random real-valued arrays essentially never tie).
func RandomMongeInt(rng *rand.Rand, m, n, spread int) *Dense {
	if spread < 1 {
		spread = 1
	}
	d := NewDense(m, n)
	rowOff := make([]float64, m)
	colOff := make([]float64, n)
	for i := range rowOff {
		rowOff[i] = float64(rng.Intn(2 * spread))
	}
	for j := range colOff {
		colOff[j] = float64(rng.Intn(2 * spread))
	}
	prefix := make([]float64, n)
	for i := 0; i < m; i++ {
		acc := 0.0
		for j := 0; j < n; j++ {
			acc -= float64(rng.Intn(spread))
			prefix[j] += acc
			d.Set(i, j, rowOff[i]+colOff[j]+prefix[j])
		}
	}
	return d
}

// RandomStaircaseMongeInt is RandomStaircaseMonge over an integer-valued
// Monge core: a tie-rich staircase-Monge array (with probability ~1/4 the
// boundary is all-n, i.e. a plain Monge array).
func RandomStaircaseMongeInt(rng *rand.Rand, m, n, spread int) *Dense {
	d := RandomMongeInt(rng, m, n, spread)
	if rng.Intn(4) == 0 {
		return d
	}
	bounds := RandomStaircaseBoundary(rng, m, n)
	for i := 0; i < m; i++ {
		for j := bounds[i]; j < n; j++ {
			d.Set(i, j, Inf)
		}
	}
	return d
}

// RandomInverseMonge returns a dense m x n inverse-Monge array (the
// negation of a RandomMonge array, re-centered so values stay in a similar
// range).
func RandomInverseMonge(rng *rand.Rand, m, n int) *Dense {
	d := RandomMonge(rng, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, -d.At(i, j))
		}
	}
	return d
}

// RandomStaircaseMonge returns a dense m x n staircase-Monge array: a
// RandomMonge core with entries at and beyond a random nonincreasing
// per-row boundary replaced by +Inf. With probability ~1/4 the boundary is
// all-n (a plain Monge array), since plain Monge arrays are a special case
// the paper's algorithms must handle.
func RandomStaircaseMonge(rng *rand.Rand, m, n int) *Dense {
	d := RandomMonge(rng, m, n)
	if rng.Intn(4) == 0 {
		return d
	}
	bounds := RandomStaircaseBoundary(rng, m, n)
	for i := 0; i < m; i++ {
		for j := bounds[i]; j < n; j++ {
			d.Set(i, j, Inf)
		}
	}
	return d
}

// RandomStaircaseBoundary returns a nonincreasing boundary vector f of
// length m with 0 <= f[i] <= n and f[0] biased high so most of the array
// stays finite.
func RandomStaircaseBoundary(rng *rand.Rand, m, n int) []int {
	f := make([]int, m)
	cur := n - rng.Intn(n/4+1)
	for i := 0; i < m; i++ {
		if rng.Intn(3) == 0 && cur > 0 {
			cur -= rng.Intn(minInt(cur, maxInt(1, n/m+1)) + 1)
		}
		if cur < 0 {
			cur = 0
		}
		f[i] = cur
	}
	return f
}

// RandomComposite returns a p x q x r Monge-composite array with random
// Monge factors.
func RandomComposite(rng *rand.Rand, p, q, r int) Composite {
	return NewComposite(RandomMonge(rng, p, q), RandomMonge(rng, q, r))
}

// ConvexGapMonge returns the implicit m x n Monge array
// a[i,j] = r[i] + c[j] + h(j - i) for a convex gap penalty h, the standard
// Monge family of the sequence-alignment literature ([LS89, EGGI90]):
// convexity of h in the gap makes every 2x2 minor satisfy the Monge
// inequality.
func ConvexGapMonge(rowOff, colOff []float64, h func(gap int) float64) Matrix {
	return Func{M: len(rowOff), N: len(colOff), F: func(i, j int) float64 {
		return rowOff[i] + colOff[j] + h(j-i)
	}}
}

// Point is a planar point, used by the geometric generators.
type Point struct{ X, Y float64 }

// ConvexChainPair samples a convex polygon with m+n vertices on an ellipse
// (randomly perturbed radii kept convex by construction on sorted angles of
// a circle) and splits it into two chains P (counterclockwise, m vertices)
// and Q (counterclockwise, n vertices), as in Figure 1.1 of the paper.
func ConvexChainPair(rng *rand.Rand, m, n int) (p, q []Point) {
	total := m + n
	pts := ConvexPolygon(rng, total)
	return pts[:m], pts[m:]
}

// ConvexPolygon returns total >= 3 points in convex position, in
// counterclockwise order, sampled as distinct angles on a circle of random
// radius with a random center. Points on a circle are always in convex
// position.
func ConvexPolygon(rng *rand.Rand, total int) []Point {
	angles := make([]float64, total)
	// Distinct sorted angles in [0, 2*pi): take random positive gaps.
	sum := 0.0
	for i := range angles {
		g := rng.Float64() + 0.05
		sum += g
		angles[i] = sum
	}
	scale := 2 * math.Pi / (sum + rng.Float64() + 0.05)
	r := 50 + rng.Float64()*50
	cx, cy := rng.Float64()*20-10, rng.Float64()*20-10
	pts := make([]Point, total)
	for i, a := range angles {
		t := a * scale
		pts[i] = Point{X: cx + r*math.Cos(t), Y: cy + r*math.Sin(t)}
	}
	return pts
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// ChainDistanceMatrix returns the implicit m x n array of Euclidean
// distances a[i][j] = d(p[i], q[j]) between two convex chains obtained by
// splitting one convex polygon. By the quadrangle inequality this array is
// inverse-Monge (paper, Section 1.2).
func ChainDistanceMatrix(p, q []Point) Matrix {
	return Func{M: len(p), N: len(q), F: func(i, j int) float64 {
		return Dist(p[i], q[j])
	}}
}

// RandomNearTieMonge returns a Monge array whose entries collide at two
// scales: a spread-1 integer Monge base (exact ties everywhere) plus a
// second integer Monge term scaled down to 1e-9, which splits most exact
// ties by amounts that vanish under naive float tolerance. Exact
// comparisons (and exact leftmost tie-breaking on the surviving ties)
// are the only way through such inputs — any epsilon-based shortcut in
// a kernel shows up as an index mismatch. The sum of two Monge arrays
// is Monge, so the construction is valid by design.
func RandomNearTieMonge(rng *rand.Rand, m, n int) *Dense {
	base := RandomMongeInt(rng, m, n, 1)
	tiny := RandomMongeInt(rng, m, n, 2)
	d := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, base.At(i, j)+1e-9*tiny.At(i, j))
		}
	}
	return d
}

// RandomInfHeavyStaircase returns a staircase-Monge array dominated by
// its blocked region: the boundary starts at roughly n/2 at row 0 and
// falls by one per row, so most entries are +Inf and the lower rows are
// fully blocked (-1 answers dominate row minima). The finite core is a
// tie-dense integer Monge array; imposing a nonincreasing boundary on a
// Monge array yields a staircase-Monge array. The result carries the
// Staircase interface; use Materialize for the dense +Inf form.
func RandomInfHeavyStaircase(rng *rand.Rand, m, n int) Staircase {
	d := RandomMongeInt(rng, m, n, 2)
	b0 := rng.Intn(n/2 + 1)
	return StairFunc{M: m, N: n, F: d.At, Bound: func(i int) int {
		b := b0 - i
		if b < 0 {
			b = 0
		}
		return b
	}}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
