// Package marray provides the array abstractions underlying all searching
// algorithms in this repository: implicit (function-backed) and dense
// two-dimensional arrays, staircase variants whose blocked entries are +Inf,
// three-dimensional Monge-composite views, adapters that convert between the
// row-minima and row-maxima problems, and property predicates used by tests.
//
// Terminology follows Aggarwal, Kravets, Park, and Sen (SPAA 1990):
//
//   - An m x n array A is Monge if a[i,j] + a[k,l] <= a[i,l] + a[k,j]
//     whenever i < k and j < l.
//   - A is inverse-Monge if the inequality is flipped.
//   - A staircase-Monge array may contain +Inf entries, closed to the right
//     and downward, with the Monge inequality required only when all four
//     entries involved are finite.
//   - A p x q x r Monge-composite array has c[i,j,k] = d[i,j] + e[j,k] for
//     Monge arrays D and E.
//
// All algorithms in this repository access arrays through the Matrix
// interface, so entries may be computed on demand in O(1) time, exactly as
// the paper's PRAM model assumes.
package marray

import (
	"math"

	"monge/internal/merr"
)

// Inf is the sentinel used for blocked entries of staircase arrays.
var Inf = math.Inf(1)

// NegInf is the sentinel used for blocked entries when searching for maxima.
var NegInf = math.Inf(-1)

// Matrix is a read-only two-dimensional array whose entries can be computed
// on demand. Implementations must be safe for concurrent calls to At: the
// parallel machines in this repository evaluate entries from many goroutines.
type Matrix interface {
	// Rows returns the number of rows m.
	Rows() int
	// Cols returns the number of columns n.
	Cols() int
	// At returns the entry in row i, column j, both zero-based.
	At(i, j int) float64
}

// Func is an implicit matrix backed by a function. It is the workhorse
// representation: entries are computed on demand, never stored.
type Func struct {
	M, N int
	F    func(i, j int) float64
}

// Rows returns the number of rows.
func (f Func) Rows() int { return f.M }

// Cols returns the number of columns.
func (f Func) Cols() int { return f.N }

// At returns F(i, j).
func (f Func) At(i, j int) float64 { return f.F(i, j) }

// Dense is a fully materialized matrix.
type Dense struct {
	m, n int
	data []float64
}

// NewDense returns an m x n dense matrix with all entries zero.
func NewDense(m, n int) *Dense {
	if m < 0 || n < 0 {
		merr.Throwf(merr.ErrDimensionMismatch, "marray: NewDense(%d, %d): negative dimension", m, n)
	}
	return &Dense{m: m, n: n, data: make([]float64, m*n)}
}

// FromRows builds a dense matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	m := len(rows)
	n := 0
	if m > 0 {
		n = len(rows[0])
	}
	d := NewDense(m, n)
	for i, r := range rows {
		if len(r) != n {
			merr.Throwf(merr.ErrDimensionMismatch, "marray: FromRows: row %d has length %d, want %d", i, len(r), n)
		}
		copy(d.data[i*n:(i+1)*n], r)
	}
	return d
}

// Materialize copies an arbitrary Matrix into a Dense one.
func Materialize(a Matrix) *Dense {
	d := NewDense(a.Rows(), a.Cols())
	for i := 0; i < d.m; i++ {
		for j := 0; j < d.n; j++ {
			d.Set(i, j, a.At(i, j))
		}
	}
	return d
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.m }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.n }

// At returns the entry in row i, column j.
func (d *Dense) At(i, j int) float64 { return d.data[i*d.n+j] }

// Set assigns the entry in row i, column j.
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.n+j] = v }

// Row returns a copy of row i.
func (d *Dense) Row(i int) []float64 {
	out := make([]float64, d.n)
	copy(out, d.data[i*d.n:(i+1)*d.n])
	return out
}

// RowView returns row i as a zero-copy slice sharing the matrix's
// backing store. Callers must treat it as read-only; the native
// backend's dense scan kernels use it to stream rows without the
// per-entry At indirection.
func (d *Dense) RowView(i int) []float64 { return d.data[i*d.n : (i+1)*d.n] }

// transposed flips rows and columns.
type transposed struct{ a Matrix }

func (t transposed) Rows() int           { return t.a.Cols() }
func (t transposed) Cols() int           { return t.a.Rows() }
func (t transposed) At(i, j int) float64 { return t.a.At(j, i) }

// Transpose returns a view of a with rows and columns exchanged. The
// transpose of a Monge array is Monge; of an inverse-Monge array,
// inverse-Monge.
func Transpose(a Matrix) Matrix {
	if t, ok := a.(transposed); ok {
		return t.a
	}
	return transposed{a}
}

// negated flips the sign of every entry.
type negated struct{ a Matrix }

func (t negated) Rows() int           { return t.a.Rows() }
func (t negated) Cols() int           { return t.a.Cols() }
func (t negated) At(i, j int) float64 { return -t.a.At(i, j) }

// Negate returns a view of a with every entry negated. Negation exchanges
// the Monge and inverse-Monge properties and exchanges the row-minima and
// row-maxima problems.
func Negate(a Matrix) Matrix {
	if t, ok := a.(negated); ok {
		return t.a
	}
	return negated{a}
}

// colReversed reverses the column order.
type colReversed struct{ a Matrix }

func (t colReversed) Rows() int           { return t.a.Rows() }
func (t colReversed) Cols() int           { return t.a.Cols() }
func (t colReversed) At(i, j int) float64 { return t.a.At(i, t.a.Cols()-1-j) }

// ReverseCols returns a view of a with columns in reverse order. Reversal
// exchanges the Monge and inverse-Monge properties while preserving each
// row's multiset of values.
func ReverseCols(a Matrix) Matrix {
	if t, ok := a.(colReversed); ok {
		return t.a
	}
	return colReversed{a}
}

// rowReversed reverses the row order.
type rowReversed struct{ a Matrix }

func (t rowReversed) Rows() int           { return t.a.Rows() }
func (t rowReversed) Cols() int           { return t.a.Cols() }
func (t rowReversed) At(i, j int) float64 { return t.a.At(t.a.Rows()-1-i, j) }

// ReverseRows returns a view of a with rows in reverse order. Reversal
// exchanges the Monge and inverse-Monge properties.
func ReverseRows(a Matrix) Matrix {
	if t, ok := a.(rowReversed); ok {
		return t.a
	}
	return rowReversed{a}
}

// Sub is a rectangular window into a parent matrix.
type Sub struct {
	A            Matrix
	I0, J0, M, N int
}

// Rows returns the window height.
func (s Sub) Rows() int { return s.M }

// Cols returns the window width.
func (s Sub) Cols() int { return s.N }

// At returns the parent entry offset by the window origin.
func (s Sub) At(i, j int) float64 { return s.A.At(s.I0+i, s.J0+j) }

// Window returns the m x n sub-matrix of a whose top-left corner is (i0, j0).
// Any contiguous window of a Monge array is Monge.
func Window(a Matrix, i0, j0, m, n int) Matrix {
	if i0 < 0 || j0 < 0 || m < 0 || n < 0 || i0+m > a.Rows() || j0+n > a.Cols() {
		merr.Throwf(merr.ErrDimensionMismatch, "marray: Window(%d,%d,%d,%d) out of range for %dx%d matrix",
			i0, j0, m, n, a.Rows(), a.Cols())
	}
	return Sub{A: a, I0: i0, J0: j0, M: m, N: n}
}

// stairBand is a full-width row window of a Staircase matrix: the window
// keeps every column, so the parent's precomputed boundary applies
// directly (offset by the window origin) and BoundaryOf stays O(1)
// instead of falling back to per-row binary search.
type stairBand struct {
	Sub
	s Staircase
}

// Boundary returns the parent's boundary for the windowed row.
func (b stairBand) Boundary(i int) int { return b.s.Boundary(b.I0 + i) }

// RowBand returns the m-row, full-width window of a starting at row i0.
// Row windows preserve the Monge, inverse-Monge, and staircase-Monge
// properties (boundaries of a row subset stay nonincreasing), and unlike
// Window the result keeps a Staircase parent's cheap Boundary. The native
// backend cuts queries into these bands for its block-parallel solvers.
func RowBand(a Matrix, i0, m int) Matrix {
	w := Window(a, i0, 0, m, a.Cols())
	if s, ok := a.(Staircase); ok {
		return stairBand{Sub: w.(Sub), s: s}
	}
	return w
}

// RowsOf returns a view of a restricted to the given row indices, in order.
// Row selection preserves the Monge and inverse-Monge properties as long as
// the indices are increasing.
func RowsOf(a Matrix, rows []int) Matrix {
	idx := make([]int, len(rows))
	copy(idx, rows)
	n := a.Cols()
	return Func{M: len(idx), N: n, F: func(i, j int) float64 { return a.At(idx[i], j) }}
}

// ColsOf returns a view of a restricted to the given column indices, in
// order. Column selection preserves the Monge and inverse-Monge properties
// as long as the indices are increasing.
func ColsOf(a Matrix, cols []int) Matrix {
	idx := make([]int, len(cols))
	copy(idx, cols)
	m := a.Rows()
	return Func{M: m, N: len(idx), F: func(i, j int) float64 { return a.At(i, idx[j]) }}
}

// SampleRows returns the view of a consisting of rows stride-1, 2*stride-1,
// ... (i.e. every stride-th row, one-based as in the paper's "R_i is the
// (i*s)-th row"). stride must be positive.
func SampleRows(a Matrix, stride int) Matrix {
	if stride <= 0 {
		merr.Throwf(merr.ErrDimensionMismatch, "marray: SampleRows: stride %d must be positive", stride)
	}
	m := a.Rows() / stride
	return Func{M: m, N: a.Cols(), F: func(i, j int) float64 {
		return a.At((i+1)*stride-1, j)
	}}
}

// Staircase describes a two-dimensional array that may contain +Inf entries
// forming a right/down-closed blocked region. Boundary(i) returns the first
// blocked column f_i of row i (== Cols() if row i is fully finite). For a
// valid staircase array Boundary is nonincreasing in i.
type Staircase interface {
	Matrix
	// Boundary returns the smallest j with At(i, j) == +Inf, or Cols() if
	// row i has no blocked entry.
	Boundary(i int) int
}

// StairFunc is an implicit staircase matrix: F supplies finite entries and
// Bound supplies the per-row blocked boundary. At returns +Inf for j >=
// Bound(i) without consulting F.
type StairFunc struct {
	M, N  int
	F     func(i, j int) float64
	Bound func(i int) int
}

// Rows returns the number of rows.
func (s StairFunc) Rows() int { return s.M }

// Cols returns the number of columns.
func (s StairFunc) Cols() int { return s.N }

// At returns the entry, which is +Inf at and beyond the row boundary.
func (s StairFunc) At(i, j int) float64 {
	if j >= s.Bound(i) {
		return Inf
	}
	return s.F(i, j)
}

// Boundary returns the first blocked column of row i.
func (s StairFunc) Boundary(i int) int { return s.Bound(i) }

// BoundaryOf computes the first +Inf column of row i for an arbitrary
// matrix by binary search, assuming the row is (finite..., +Inf...). For
// matrices implementing Staircase the precomputed boundary is returned.
func BoundaryOf(a Matrix, i int) int {
	if s, ok := a.(Staircase); ok {
		return s.Boundary(i)
	}
	lo, hi := 0, a.Cols() // invariant: cols < lo finite, cols >= hi blocked
	for lo < hi {
		mid := (lo + hi) / 2
		if math.IsInf(a.At(i, mid), 1) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Composite is a p x q x r Monge-composite array c[i,j,k] = d[i,j] + e[j,k].
//
// Note on tube orientation: the SPAA '90 extended abstract defines the
// (i,j)-tube as varying the third coordinate, but with c[i,j,k] = d[i,j] +
// e[j,k] that maximum is d[i,j] + max_k e[j,k], which is independent of the
// searching structure and inconsistent with the tie-breaking rule stated in
// the same paragraph. The intended problem -- the one used by the string
// editing application and by [AP89a, AALM88] -- fixes (i,k) and searches
// over the middle coordinate j, i.e. computes the (max,+) product of D and
// E. This repository implements that version: Tube(i, k) is the vector
// {d[i,j] + e[j,k] : 0 <= j < q}.
type Composite struct {
	D, E Matrix // D is p x q, E is q x r
}

// NewComposite validates dimensions and returns the composite view.
func NewComposite(d, e Matrix) Composite {
	if d.Cols() != e.Rows() {
		merr.Throwf(merr.ErrDimensionMismatch, "marray: NewComposite: inner dimensions %d and %d differ",
			d.Cols(), e.Rows())
	}
	return Composite{D: d, E: e}
}

// P returns the first dimension (rows of D).
func (c Composite) P() int { return c.D.Rows() }

// Q returns the middle dimension (cols of D == rows of E).
func (c Composite) Q() int { return c.D.Cols() }

// R returns the third dimension (cols of E).
func (c Composite) R() int { return c.E.Cols() }

// At returns c[i,j,k] = d[i,j] + e[j,k].
func (c Composite) At(i, j, k int) float64 { return c.D.At(i, j) + c.E.At(j, k) }

// TubeMatrix returns the q-entry tube for fixed (i, k) as a 1 x q Matrix,
// convenient for reusing one-dimensional reductions.
func (c Composite) TubeMatrix(i, k int) Matrix {
	return Func{M: 1, N: c.Q(), F: func(_, j int) float64 { return c.At(i, j, k) }}
}
